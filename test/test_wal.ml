(* Durability: the WAL/checkpoint format, crash recovery, and the
   session integration — every acknowledged mutation must be recoverable,
   no unacknowledged mutation may survive, and a torn final record (the
   debris of a crash mid-append) must never stop the server from
   starting. *)

module Wal = Obda_service.Wal
module Session = Obda_service.Session
module Serve = Obda_service.Serve
module Abox = Obda_data.Abox
module Parse = Obda_parse.Parse
module Symbol = Obda_syntax.Symbol
module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault
module Omq = Obda_rewriting.Omq

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* fixtures *)

let temp_root = Filename.get_temp_dir_name ()
let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun entry -> rm_rf (Filename.concat path entry))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir f =
  incr dir_counter;
  let dir =
    Filename.concat temp_root
      (Printf.sprintf "obda-wal-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let sym = Symbol.intern
let fa c = Abox.Concept_assertion (sym "A", sym c)
let fr c d = Abox.Role_assertion (sym "R", sym c, sym d)

(* canonical string form of an ABox's content, for byte-identical
   comparisons across recovery *)
let facts_key abox =
  Abox.to_facts abox
  |> List.map (Format.asprintf "%a" Abox.pp_fact)
  |> List.sort compare |> String.concat ";"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let wal_path dir = Filename.concat dir "wal.log"

(* ------------------------------------------------------------------ *)
(* format *)

let test_crc32_vectors () =
  (* the standard IEEE CRC32 check value *)
  check_int "check vector" 0xCBF43926 (Wal.crc32 "123456789");
  check_int "empty string" 0 (Wal.crc32 "");
  check "order-sensitive" true (Wal.crc32 "ab" <> Wal.crc32 "ba")

let test_sync_policy_spellings () =
  check "always" true (Wal.sync_policy_of_string "always" = Ok Wal.Always);
  check "never" true (Wal.sync_policy_of_string "never" = Ok Wal.Never);
  (match Wal.sync_policy_of_string "interval:250" with
  | Ok (Wal.Interval s) ->
    check "250 ms in seconds" true (abs_float (s -. 0.25) < 1e-9)
  | _ -> Alcotest.fail "interval:250 should parse");
  let is_error s =
    match Wal.sync_policy_of_string s with Error _ -> true | Ok _ -> false
  in
  check "bad word" true (is_error "sometimes");
  check "bad interval" true (is_error "interval:soon");
  check "negative interval" true (is_error "interval:-5");
  List.iter
    (fun p ->
      check "to_string round-trips" true
        (Wal.sync_policy_of_string (Wal.sync_policy_to_string p) = Ok p))
    [ Wal.Always; Wal.Never; Wal.Interval 0.1 ]

let test_abox_codec_roundtrip () =
  let a = Abox.create () in
  Abox.add_fact a (fa "a");
  Abox.add_fact a (fa "b");
  Abox.add_fact a (fr "a" "b");
  Abox.add_fact a (fr "b" "a");
  Abox.add_unary a (sym "B") (sym "weird name \xffwith bytes");
  let b = Abox.deserialize (Abox.serialize a) in
  check_str "same facts" (facts_key a) (facts_key b);
  check_int "same atom count" (Abox.num_atoms a) (Abox.num_atoms b);
  (* empty instance round-trips too *)
  let e = Abox.deserialize (Abox.serialize (Abox.create ())) in
  check_int "empty" 0 (Abox.num_atoms e)

let test_abox_codec_rejects_corruption () =
  let blob = Abox.serialize (Abox.of_facts [ fa "a"; fr "a" "b" ]) in
  let corrupt s =
    match Abox.deserialize s with
    | _ -> false
    | exception Abox.Corrupt _ -> true
  in
  check "bad magic" true (corrupt ("XXXX" ^ String.sub blob 4 (String.length blob - 4)));
  check "truncated" true (corrupt (String.sub blob 0 (String.length blob - 3)));
  check "trailing garbage" true (corrupt (blob ^ "x"));
  let bumped = Bytes.of_string blob in
  (* bump the version byte *)
  Bytes.set bumped 4 '\xfe';
  check "unknown version" true (corrupt (Bytes.to_string bumped))

(* ------------------------------------------------------------------ *)
(* recovery *)

let test_recover_empty_and_missing_dir () =
  with_temp_dir (fun dir ->
      (* the dir does not even exist yet *)
      let missing = Filename.concat dir "never-created" in
      let r = Wal.recover missing in
      check "no checkpoint" true (r.Wal.checkpoint_seq = None);
      check_int "nothing replayed" 0 r.Wal.replayed;
      check_int "no tear" 0 r.Wal.torn_bytes;
      check_int "empty state" 0 (Abox.num_atoms r.Wal.abox);
      check "no ontology" true (r.Wal.tbox = None);
      (* an existing but empty dir behaves the same *)
      Unix.mkdir dir 0o755;
      let r = Wal.recover dir in
      check_int "empty dir replays nothing" 0 r.Wal.replayed)

let test_append_recover_roundtrip () =
  with_temp_dir (fun dir ->
      let wal, r0 = Wal.open_ dir in
      check_int "fresh log" 0 r0.Wal.replayed;
      Wal.append wal (Wal.Assert [ fa "a"; fr "a" "b" ]) ~revision:2;
      Wal.append wal (Wal.Load_ontology (Parse.ontology_of_string "A(x) -> B(x)"))
        ~revision:2;
      Wal.append wal (Wal.Retract [ fr "a" "b" ]) ~revision:3;
      Wal.close wal;
      let r = Wal.recover dir in
      check "no checkpoint" true (r.Wal.checkpoint_seq = None);
      check_int "three records" 3 r.Wal.replayed;
      check_int "last seq" 3 r.Wal.last_seq;
      check "ontology recovered" true (r.Wal.tbox <> None);
      check_str "facts recovered" (facts_key (Abox.of_facts [ fa "a" ]))
        (facts_key r.Wal.abox);
      (* recovery is idempotent: a second run sees the same state *)
      check_str "idempotent" (facts_key r.Wal.abox)
        (facts_key (Wal.recover dir).Wal.abox))

let test_load_data_resets_store () =
  with_temp_dir (fun dir ->
      let wal, _ = Wal.open_ dir in
      Wal.append wal (Wal.Assert [ fa "a"; fa "b" ]) ~revision:2;
      Wal.append wal (Wal.Load_data (Abox.of_facts [ fr "x" "y" ]))
        ~revision:1;
      Wal.append wal (Wal.Assert [ fa "c" ]) ~revision:2;
      Wal.close wal;
      let r = Wal.recover dir in
      check_str "LOAD DATA replaces, later asserts apply on top"
        (facts_key (Abox.of_facts [ fr "x" "y"; fa "c" ]))
        (facts_key r.Wal.abox);
      (* the log's own sequence keeps counting across the reset *)
      check_int "seq survives the reset" 3 r.Wal.last_seq)

let test_checkpoint_and_tail () =
  with_temp_dir (fun dir ->
      let wal, _ = Wal.open_ dir in
      let tbox = Parse.ontology_of_string "A(x) -> B(x)" in
      Wal.append wal (Wal.Assert [ fa "a" ]) ~revision:1;
      Wal.append wal (Wal.Assert [ fa "b" ]) ~revision:2;
      let abox = Abox.of_facts [ fa "a"; fa "b" ] in
      let seq = Wal.checkpoint wal ~tbox:(Some tbox) ~abox ~prepared:[] in
      check_int "checkpoint covers both records" 2 seq;
      check_int "log truncated" 0
        (Unix.stat (wal_path dir)).Unix.st_size;
      (* tail on top of the checkpoint *)
      Wal.append wal (Wal.Assert [ fa "c" ]) ~revision:3;
      Wal.close wal;
      let r = Wal.recover dir in
      check "restored from the checkpoint" true
        (r.Wal.checkpoint_seq = Some 2);
      check_int "only the tail replays" 1 r.Wal.replayed;
      check "ontology from the checkpoint" true (r.Wal.tbox <> None);
      check_str "checkpoint + tail"
        (facts_key (Abox.of_facts [ fa "a"; fa "b"; fa "c" ]))
        (facts_key r.Wal.abox))

let test_checkpoint_without_tail () =
  with_temp_dir (fun dir ->
      let wal, _ = Wal.open_ dir in
      Wal.append wal (Wal.Assert [ fa "a" ]) ~revision:1;
      ignore
        (Wal.checkpoint wal ~tbox:None
           ~abox:(Abox.of_facts [ fa "a" ])
           ~prepared:[]);
      Wal.close wal;
      let r = Wal.recover dir in
      check "checkpoint restored" true (r.Wal.checkpoint_seq = Some 1);
      check_int "no tail" 0 r.Wal.replayed;
      check_str "state is the checkpoint"
        (facts_key (Abox.of_facts [ fa "a" ]))
        (facts_key r.Wal.abox))

let test_old_checkpoints_retired () =
  with_temp_dir (fun dir ->
      let wal, _ = Wal.open_ dir in
      Wal.append wal (Wal.Assert [ fa "a" ]) ~revision:1;
      ignore
        (Wal.checkpoint wal ~tbox:None
           ~abox:(Abox.of_facts [ fa "a" ])
           ~prepared:[]);
      Wal.append wal (Wal.Assert [ fa "b" ]) ~revision:2;
      ignore
        (Wal.checkpoint wal ~tbox:None
           ~abox:(Abox.of_facts [ fa "a"; fa "b" ])
           ~prepared:[]);
      Wal.close wal;
      let checkpoints =
        Sys.readdir dir |> Array.to_list
        |> List.filter (String.starts_with ~prefix:"checkpoint.")
      in
      Alcotest.(check (list string))
        "only the newest file remains" [ "checkpoint.2" ]
        (List.sort compare checkpoints))

(* Build a 3-record log and return (dir is rebuilt by the callback) the
   raw bytes plus the byte length of the final frame. *)
let three_record_log dir =
  let wal, _ = Wal.open_ dir in
  Wal.append wal (Wal.Assert [ fa "a" ]) ~revision:1;
  Wal.append wal (Wal.Assert [ fa "b"; fr "a" "b" ]) ~revision:3;
  let before_last = (Unix.stat (wal_path dir)).Unix.st_size in
  Wal.append wal (Wal.Retract [ fa "a" ]) ~revision:4;
  Wal.close wal;
  let bytes = read_file (wal_path dir) in
  (bytes, before_last)

let test_torn_final_record_every_offset () =
  with_temp_dir (fun build_dir ->
      let bytes, before_last = three_record_log build_dir in
      let total = String.length bytes in
      check "the last frame is non-trivial" true (total - before_last > 12);
      let after_two = facts_key (Abox.of_facts [ fa "a"; fa "b"; fr "a" "b" ]) in
      with_temp_dir (fun dir ->
          Unix.mkdir dir 0o755;
          (* every truncation point inside the final record, from "only
             its first byte survived" to "one byte short of complete" *)
          for cut = before_last + 1 to total - 1 do
            write_file (wal_path dir) (String.sub bytes 0 cut);
            let r = Wal.recover dir in
            check ("dry run reports the tear at cut " ^ string_of_int cut)
              true
              (r.Wal.torn_bytes = cut - before_last);
            check_int "the acknowledged prefix survives" 2 r.Wal.replayed;
            check_str "prefix state" after_two (facts_key r.Wal.abox);
            check "dry run does not touch the file" true
              ((Unix.stat (wal_path dir)).Unix.st_size = cut);
            (* repair physically truncates the tear *)
            let r = Wal.recover ~repair:true dir in
            check "repair reports the tear" true (r.Wal.torn_bytes > 0);
            check_int "repair truncates to the valid prefix" before_last
              (Unix.stat (wal_path dir)).Unix.st_size;
            check_int "after repair the tear is gone" 0
              (Wal.recover dir).Wal.torn_bytes
          done;
          (* a clean cut exactly between records is not a tear *)
          write_file (wal_path dir) (String.sub bytes 0 before_last);
          let r = Wal.recover dir in
          check_int "clean prefix has no tear" 0 r.Wal.torn_bytes;
          check_int "clean prefix replays" 2 r.Wal.replayed))

let test_interior_corruption_is_fatal () =
  with_temp_dir (fun build_dir ->
      let bytes, before_last = three_record_log build_dir in
      with_temp_dir (fun dir ->
          Unix.mkdir dir 0o755;
          (* flip one payload byte of the FIRST record: valid bytes follow
             the damage, so this is not a torn tail *)
          let damaged = Bytes.of_string bytes in
          Bytes.set damaged 10
            (Char.chr (Char.code (Bytes.get damaged 10) lxor 0xff));
          write_file (wal_path dir) (Bytes.to_string damaged);
          (match Wal.recover dir with
          | _ -> Alcotest.fail "interior corruption must raise"
          | exception Error.Obda_error err ->
            check "typed internal error" true
              (match err with Error.Internal _ -> true | _ -> false));
          (* the same damage in the LAST record is a torn tail instead:
             nothing valid follows it *)
          let damaged = Bytes.of_string bytes in
          Bytes.set damaged (before_last + 9)
            (Char.chr
               (Char.code (Bytes.get damaged (before_last + 9)) lxor 0xff));
          write_file (wal_path dir) (Bytes.to_string damaged);
          let r = Wal.recover dir in
          check "trailing damage is a tear, not corruption" true
            (r.Wal.torn_bytes > 0);
          check_int "prefix still recovered" 2 r.Wal.replayed))

let test_corrupt_checkpoint_handling () =
  with_temp_dir (fun dir ->
      let wal, _ = Wal.open_ dir in
      Wal.append wal (Wal.Assert [ fa "a" ]) ~revision:1;
      ignore
        (Wal.checkpoint wal ~tbox:None
           ~abox:(Abox.of_facts [ fa "a" ])
           ~prepared:[]);
      Wal.close wal;
      (* a newer-but-garbage checkpoint is skipped with a warning in
         favour of the valid older one *)
      write_file (Filename.concat dir "checkpoint.99") "not a checkpoint";
      let r = Wal.recover dir in
      check "fell back to the valid checkpoint" true
        (r.Wal.checkpoint_seq = Some 1);
      check "warned about the garbage" true (r.Wal.warnings <> []);
      check_str "state intact"
        (facts_key (Abox.of_facts [ fa "a" ]))
        (facts_key r.Wal.abox);
      (* with no valid checkpoint left, refusing beats silently starting
         empty *)
      Unix.unlink (Filename.concat dir "checkpoint.1");
      check "all checkpoints invalid raises" true
        (match Wal.recover dir with
        | _ -> false
        | exception Error.Obda_error (Error.Internal _) -> true))

let test_prepared_queries_survive_checkpoint () =
  with_temp_dir (fun dir ->
      let wal, _ = Wal.open_ dir in
      let tbox = Parse.ontology_of_string "A(x) -> B(x)" in
      Wal.append wal (Wal.Load_ontology tbox) ~revision:0;
      ignore
        (Wal.checkpoint wal ~tbox:(Some tbox) ~abox:(Abox.create ())
           ~prepared:[ ("q1", Omq.Ucq, "q(x) <- A(x)") ]);
      Wal.close wal;
      let r = Wal.recover dir in
      (match r.Wal.prepared with
      | [ (name, alg, text) ] ->
        check_str "name" "q1" name;
        check "algorithm" true (alg = Omq.Ucq);
        check_str "query text" "q(x) <- A(x)" text
      | other ->
        Alcotest.failf "expected one prepared query, got %d"
          (List.length other)))

(* ------------------------------------------------------------------ *)
(* session integration *)

let ok_first lines =
  match lines with
  | line :: _ -> line
  | [] -> Alcotest.fail "expected a response line"

let test_session_wal_hook_end_to_end () =
  with_temp_dir (fun dir ->
      let session = Session.create () in
      let wal, _ = Wal.open_ dir in
      Serve.attach_wal session wal;
      Fun.protect
        ~finally:(fun () ->
          Serve.detach_wal session;
          Wal.close wal;
          Session.close session)
        (fun () ->
          let exec line = fst (Serve.handle_line session line) in
          check "assert acked" true
            (String.starts_with ~prefix:"OK asserted"
               (ok_first (exec "ASSERT A(a) A(b) R(a,b)")));
          check "retract acked" true
            (String.starts_with ~prefix:"OK retracted"
               (ok_first (exec "RETRACT A(b)")));
          (* an assert of already-present facts is a no-op: it must not
             append a record *)
          let seq_before = Wal.last_seq wal in
          check_str "no-op assert" "OK asserted added=0 atoms=2"
            (ok_first (exec "ASSERT A(a)"));
          check_int "no record for a no-op" seq_before (Wal.last_seq wal);
          (* with the hook installed, STATS grows the wal rows *)
          (match exec "STATS" with
          | status :: rows ->
            check_str "stats row count" "OK stats=20" status;
            check "wal seq row" true
              (List.exists
                 (String.starts_with ~prefix:"server.wal.seq ")
                 rows)
          | [] -> Alcotest.fail "no stats");
          (* PING answers with the revision *)
          check "pong" true
            (String.starts_with ~prefix:"OK pong rev="
               (ok_first (exec "PING")));
          (* CHECKPOINT compacts the log *)
          check "checkpoint verb" true
            (String.starts_with ~prefix:"OK checkpoint seq="
               (ok_first (exec "CHECKPOINT")));
          check_int "log truncated by the checkpoint" 0
            (Unix.stat (wal_path dir)).Unix.st_size;
          (* what a restart would see = exactly the live state *)
          let r = Wal.recover dir in
          check_str "recovered state matches the session"
            (facts_key (Session.abox session))
            (facts_key r.Wal.abox)))

let test_wal_append_fault_keeps_store_untouched () =
  with_temp_dir (fun dir ->
      let session = Session.create () in
      let wal, _ = Wal.open_ dir in
      Serve.attach_wal session wal;
      Fun.protect
        ~finally:(fun () ->
          Fault.disarm ();
          Serve.detach_wal session;
          Wal.close wal;
          Session.close session)
        (fun () ->
          let exec line = fst (Serve.handle_line session line) in
          check "seed fact acked" true
            (String.starts_with ~prefix:"OK"
               (ok_first (exec "ASSERT A(seed)")));
          (match Fault.parse_plan "wal.append@1" with
          | Error e -> Alcotest.fail e
          | Ok plan -> Fault.arm plan);
          let line = ok_first (exec "ASSERT A(lost) A(gone)") in
          check "mutation fails in protocol" true
            (String.starts_with ~prefix:"ERR class=internal" line);
          (* log-before-apply: the store must NOT contain the facts the
             client never got an OK for *)
          check_str "store untouched"
            (facts_key (Abox.of_facts [ fa "seed" ]))
            (facts_key (Session.abox session));
          Fault.disarm ();
          (* ... and neither does recovery *)
          check_str "recovery agrees"
            (facts_key (Abox.of_facts [ fa "seed" ]))
            (facts_key (Wal.recover dir).Wal.abox);
          (* the session is still usable after the fault *)
          check "session usable after the fault" true
            (String.starts_with ~prefix:"OK"
               (ok_first (exec "ASSERT A(after)")))))

(* ------------------------------------------------------------------ *)
(* the crash-recovery property *)

(* Random mutation streams applied through the serve loop with the WAL
   attached; after EVERY acknowledged request the recovered state must be
   byte-identical to the live store (which itself equals the sequential
   replay of the acknowledged prefix, by construction of the serve
   loop).  Faults injected at the wal.append site must drop exactly the
   unacknowledged mutation. *)

let random_mutation rng =
  let const () = Printf.sprintf "c%d" (Random.State.int rng 6) in
  match Random.State.int rng 4 with
  | 0 -> Printf.sprintf "ASSERT A(%s)" (const ())
  | 1 -> Printf.sprintf "ASSERT R(%s,%s)" (const ()) (const ())
  | 2 -> Printf.sprintf "RETRACT A(%s)" (const ())
  | _ -> Printf.sprintf "RETRACT R(%s,%s)" (const ()) (const ())

let test_crash_recovery_property () =
  List.iter
    (fun seed ->
      with_temp_dir (fun dir ->
          let rng = Random.State.make [| seed |] in
          let session = Session.create () in
          let wal, _ = Wal.open_ dir in
          Serve.attach_wal session wal;
          Fun.protect
            ~finally:(fun () ->
              Serve.detach_wal session;
              Wal.close wal;
              Session.close session)
            (fun () ->
              for step = 1 to 25 do
                let line = random_mutation rng in
                let response =
                  ok_first (fst (Serve.handle_line session line))
                in
                check ("mutation acked at step " ^ string_of_int step) true
                  (String.starts_with ~prefix:"OK" response);
                (* recover as a crash right now would: the state must be
                   byte-identical to the acknowledged one *)
                let r = Wal.recover dir in
                check_str
                  (Printf.sprintf "seed %d step %d recoverable" seed step)
                  (facts_key (Session.abox session))
                  (facts_key r.Wal.abox)
              done)))
    [ 1; 7; 42 ]

let test_crash_recovery_with_injected_append_faults () =
  (* every possible kill point: for a 12-mutation stream, fail the k-th
     append for each k; acknowledged requests (and only those) recover *)
  let stream rng n = List.init n (fun _ -> random_mutation rng) in
  List.iter
    (fun kill_at ->
      with_temp_dir (fun dir ->
          let rng = Random.State.make [| 1000 + kill_at |] in
          let session = Session.create () in
          let wal, _ = Wal.open_ dir in
          Serve.attach_wal session wal;
          Fun.protect
            ~finally:(fun () ->
              Fault.disarm ();
              Serve.detach_wal session;
              Wal.close wal;
              Session.close session)
            (fun () ->
              (match
                 Fault.parse_plan (Printf.sprintf "wal.append@%d" kill_at)
               with
              | Error e -> Alcotest.fail e
              | Ok plan -> Fault.arm plan);
              (* replay the acknowledged prefix into a shadow store *)
              let shadow = Session.create () in
              Fun.protect
                ~finally:(fun () -> Session.close shadow)
                (fun () ->
                  List.iter
                    (fun line ->
                      let response =
                        ok_first (fst (Serve.handle_line session line))
                      in
                      if String.starts_with ~prefix:"OK" response then
                        ignore (Serve.handle_line shadow line))
                    (stream rng 12);
                  Fault.disarm ();
                  let r = Wal.recover dir in
                  check_str
                    (Printf.sprintf
                       "kill at append %d: recovery = acknowledged prefix"
                       kill_at)
                    (facts_key (Session.abox shadow))
                    (facts_key r.Wal.abox);
                  check_str "live session agrees"
                    (facts_key (Session.abox session))
                    (facts_key r.Wal.abox)))))
    (List.init 8 (fun i -> i + 1))

let test_interval_and_never_policies () =
  List.iter
    (fun policy ->
      with_temp_dir (fun dir ->
          let wal, _ = Wal.open_ ~policy dir in
          Wal.append wal (Wal.Assert [ fa "a" ]) ~revision:1;
          Wal.append wal (Wal.Assert [ fa "b" ]) ~revision:2;
          Wal.close wal;
          let r = Wal.recover dir in
          check_str
            ("policy " ^ Wal.sync_policy_to_string policy)
            (facts_key (Abox.of_facts [ fa "a"; fa "b" ]))
            (facts_key r.Wal.abox)))
    [ Wal.Interval 0.05; Wal.Never ]

let test_checkpoint_every_trigger () =
  with_temp_dir (fun dir ->
      let session = Session.create () in
      let wal, _ = Wal.open_ ~checkpoint_every:2 dir in
      Serve.attach_wal session wal;
      Fun.protect
        ~finally:(fun () ->
          Serve.detach_wal session;
          Wal.close wal;
          Session.close session)
        (fun () ->
          let exec line = ignore (Serve.handle_line session line) in
          exec "ASSERT A(a)";
          exec "ASSERT A(b)";
          (* the second mutation crossed the threshold: the serve loop
             checkpoints after acknowledging it *)
          check "a checkpoint file appeared" true
            (Array.exists
               (String.starts_with ~prefix:"checkpoint.")
               (Sys.readdir dir));
          check_int "log truncated" 0 (Unix.stat (wal_path dir)).Unix.st_size;
          let r = Wal.recover dir in
          check_str "state preserved across the auto-checkpoint"
            (facts_key (Session.abox session))
            (facts_key r.Wal.abox)))

let suites =
  [
    ( "wal",
      [
        Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
        Alcotest.test_case "sync-policy spellings" `Quick
          test_sync_policy_spellings;
        Alcotest.test_case "abox codec round-trip" `Quick
          test_abox_codec_roundtrip;
        Alcotest.test_case "abox codec rejects corruption" `Quick
          test_abox_codec_rejects_corruption;
        Alcotest.test_case "recover: empty and missing dir" `Quick
          test_recover_empty_and_missing_dir;
        Alcotest.test_case "append/recover round-trip" `Quick
          test_append_recover_roundtrip;
        Alcotest.test_case "LOAD DATA resets the store" `Quick
          test_load_data_resets_store;
        Alcotest.test_case "checkpoint + tail replay" `Quick
          test_checkpoint_and_tail;
        Alcotest.test_case "checkpoint without tail" `Quick
          test_checkpoint_without_tail;
        Alcotest.test_case "old checkpoints retired" `Quick
          test_old_checkpoints_retired;
        Alcotest.test_case "torn final record at every offset" `Quick
          test_torn_final_record_every_offset;
        Alcotest.test_case "interior corruption is fatal" `Quick
          test_interior_corruption_is_fatal;
        Alcotest.test_case "corrupt checkpoint handling" `Quick
          test_corrupt_checkpoint_handling;
        Alcotest.test_case "prepared queries survive checkpoints" `Quick
          test_prepared_queries_survive_checkpoint;
        Alcotest.test_case "session hook end to end" `Quick
          test_session_wal_hook_end_to_end;
        Alcotest.test_case "append fault keeps the store untouched" `Quick
          test_wal_append_fault_keeps_store_untouched;
        Alcotest.test_case "crash-recovery property" `Quick
          test_crash_recovery_property;
        Alcotest.test_case "crash recovery under injected append faults"
          `Quick test_crash_recovery_with_injected_append_faults;
        Alcotest.test_case "interval and never sync policies" `Quick
          test_interval_and_never_policies;
        Alcotest.test_case "--checkpoint-every trigger" `Quick
          test_checkpoint_every_trigger;
      ] );
  ]
