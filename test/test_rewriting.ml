open Obda_syntax
open Obda_ontology
open Obda_cq
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
open Helpers

let check = Alcotest.(check bool)

let marker t r = Symbol.name (Tbox.exists_name t (role r))

(* All rewriting algorithms must agree with the chase on every data
   instance.  This is the central soundness/completeness test. *)
let agreement_on ?(algorithms = Omq.all_algorithms) omq abox name =
  let expected = certain_answers omq abox in
  List.iter
    (fun alg ->
      if Omq.applicable alg omq then
        Alcotest.(check (list (list string)))
          (Printf.sprintf "%s/%s" name (Omq.algorithm_name alg))
          expected (answers_via alg omq abox))
    algorithms

let example11_aboxes t =
  [
    ("direct", abox_of_facts [ `B ("R", "a", "b"); `B ("S", "b", "c"); `B ("R", "c", "d") ]);
    ( "via P",
      abox_of_facts
        [ `B ("P", "b", "a"); `B ("R", "b", "c"); `B ("P", "d", "c") ] );
    ( "markers",
      let a = abox_of_facts [ `B ("R", "a", "b"); `B ("R", "b", "c") ] in
      Obda_data.Abox.add_unary a (Tbox.exists_name t (role "P-")) (sym "a");
      Obda_data.Abox.add_unary a (Tbox.exists_name t (role "P")) (sym "b");
      a );
    ( "random",
      random_abox ~seed:3 ~consts:7
        ~unary:[ marker t "P"; marker t "P-" ]
        ~binary:[ "R"; "S"; "P" ] ~unary_atoms:5 ~binary_atoms:18 );
  ]

let test_example_omq_all_prefixes () =
  let t = example11_tbox () in
  let letters = [ "R"; "S"; "R"; "R"; "S"; "R"; "R" ] in
  for n = 1 to List.length letters do
    let prefix = List.filteri (fun i _ -> i < n) letters in
    let q = word_cq prefix in
    let omq = Omq.make t q in
    List.iter
      (fun (name, abox) ->
        agreement_on omq abox (Printf.sprintf "%d-atom/%s" n name))
      (example11_aboxes t)
  done

let test_boolean_queries () =
  let t = example11_tbox () in
  List.iter
    (fun letters ->
      let q = word_cq ~answer:`Boolean letters in
      let omq = Omq.make t q in
      List.iter
        (fun (name, abox) -> agreement_on omq abox ("bool/" ^ name))
        (example11_aboxes t))
    [ [ "S"; "R" ]; [ "R"; "S" ]; [ "S" ]; [ "R"; "S"; "R" ] ]

let test_one_answer_var () =
  let t = example11_tbox () in
  List.iter
    (fun letters ->
      let q = word_cq ~answer:`First letters in
      let omq = Omq.make t q in
      List.iter
        (fun (name, abox) -> agreement_on omq abox ("half/" ^ name))
        (example11_aboxes t))
    [ [ "R"; "S" ]; [ "S"; "R"; "R" ] ]

(* a deeper ontology: depth 2 *)
let deep_tbox () =
  Tbox.make
    [
      Tbox.Concept_incl (Concept.Name (sym "A"), Concept.Exists (role "P"));
      Tbox.Concept_incl (Concept.Exists (role "P-"), Concept.Exists (role "S"));
      Tbox.Concept_incl (Concept.Exists (role "S-"), Concept.Name (sym "B"));
      Tbox.Role_incl (role "P", role "R");
    ]

let test_deep_ontology () =
  let t = deep_tbox () in
  check "depth 2" true (Tbox.depth t = Tbox.Finite 2);
  let aboxes =
    [
      ("seed", abox_of_facts [ `U ("A", "a"); `B ("R", "a", "b") ]);
      ( "rand",
        random_abox ~seed:11 ~consts:6 ~unary:[ "A"; "B" ]
          ~binary:[ "R"; "S"; "P" ] ~unary_atoms:6 ~binary_atoms:12 );
    ]
  in
  List.iter
    (fun (q, qname) ->
      let omq = Omq.make t q in
      List.iter
        (fun (name, abox) ->
          agreement_on omq abox (Printf.sprintf "deep/%s/%s" qname name))
        aboxes)
    [
      (word_cq ~answer:`First [ "R"; "S" ], "RS");
      (word_cq ~answer:`Boolean [ "R"; "S" ], "bRS");
      (word_cq ~answer:`First [ "P"; "S" ], "PS");
      ( Cq.make ~answer:[ "x" ]
          [ Cq.Unary (sym "A", "x"); Cq.Binary (sym "R", "x", "y"); Cq.Unary (sym "B", "y") ],
        "AxRB" );
    ]

(* a star-shaped (3-leaf) query *)
let test_star_query () =
  let t = deep_tbox () in
  let q =
    Cq.make ~answer:[ "c" ]
      [
        Cq.Binary (sym "R", "c", "l1");
        Cq.Binary (sym "S", "c", "l2");
        Cq.Binary (sym "R", "l3", "c");
      ]
  in
  let omq = Omq.make t q in
  let aboxes =
    [
      ( "rand1",
        random_abox ~seed:21 ~consts:6 ~unary:[ "A"; "B" ]
          ~binary:[ "R"; "S"; "P" ] ~unary_atoms:6 ~binary_atoms:14 );
      ( "rand2",
        random_abox ~seed:22 ~consts:5 ~unary:[ "A" ] ~binary:[ "R"; "S" ]
          ~unary_atoms:4 ~binary_atoms:10 );
    ]
  in
  List.iter (fun (name, abox) -> agreement_on omq abox ("star/" ^ name)) aboxes

(* infinite-depth ontology: only Tw (and the UCQ baselines on finite
   fragments) apply; UCQ would not terminate, so restrict to Tw *)
let test_infinite_depth_tw () =
  let t =
    Tbox.make
      [
        Tbox.Concept_incl (Concept.Name (sym "A"), Concept.Exists (role "P"));
        Tbox.Concept_incl (Concept.Exists (role "P-"), Concept.Exists (role "P"));
        Tbox.Role_incl (role "P", role "R");
      ]
  in
  let q = word_cq ~answer:`First [ "R"; "R"; "R" ] in
  let omq = Omq.make t q in
  let aboxes =
    [
      ("seed", abox_of_facts [ `U ("A", "a"); `B ("R", "b", "a") ]);
      ( "rand",
        random_abox ~seed:31 ~consts:5 ~unary:[ "A" ] ~binary:[ "R"; "P" ]
          ~unary_atoms:4 ~binary_atoms:8 );
    ]
  in
  List.iter
    (fun (name, abox) ->
      agreement_on ~algorithms:[ Omq.Tw ] omq abox ("inf/" ^ name))
    aboxes

(* treewidth-2 query: only Log (and UCQ) apply *)
let test_cyclic_query_log () =
  let t = example11_tbox () in
  let q =
    Cq.make ~answer:[ "x" ]
      [
        Cq.Binary (sym "R", "x", "y");
        Cq.Binary (sym "S", "y", "z");
        Cq.Binary (sym "R", "x", "z");
      ]
  in
  let omq = Omq.make t q in
  check "log applicable" true (Omq.applicable Omq.Log omq);
  check "lin not applicable" false (Omq.applicable Omq.Lin omq);
  let aboxes =
    [
      ( "seed",
        abox_of_facts
          [ `B ("R", "a", "b"); `B ("S", "b", "c"); `B ("R", "a", "c") ] );
      ("viaP", abox_of_facts [ `B ("R", "a", "b"); `B ("P", "b", "c"); `B ("R", "a", "c") ]);
      ( "rand",
        random_abox ~seed:41 ~consts:5
          ~unary:[ marker t "P"; marker t "P-" ]
          ~binary:[ "R"; "S"; "P" ] ~unary_atoms:4 ~binary_atoms:14 );
    ]
  in
  List.iter
    (fun (name, abox) ->
      agreement_on ~algorithms:[ Omq.Log; Omq.Ucq ] omq abox ("cyc/" ^ name))
    aboxes

let test_structural_properties () =
  let t = example11_tbox () in
  let q = example8_cq () in
  let omq = Omq.make t q in
  let lin = Omq.rewrite ~over:`Arbitrary Omq.Lin omq in
  check "Lin rewriting is linear NDL" true (Ndl.is_linear lin);
  check "Lin width ≤ 2ℓ+1" true (Ndl.width lin <= (2 * 2) + 1);
  let lin_complete = Omq.rewrite ~over:`Complete Omq.Lin omq in
  check "Lin (complete) width ≤ 2ℓ" true (Ndl.width lin_complete <= 2 * 2);
  let log = Omq.rewrite ~over:`Complete Omq.Log omq in
  check "Log width ≤ 3(t+1)" true (Ndl.width log <= 3 * 2);
  let tw = Omq.rewrite ~over:`Complete Omq.Tw omq in
  check "Tw width ≤ ℓ+1+answers" true (Ndl.width tw <= 2 + 1 + 2);
  (* all rewritings are well-formed NDL *)
  List.iter
    (fun alg ->
      match Ndl.check (Omq.rewrite alg omq) with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s rewriting ill-formed: %s" (Omq.algorithm_name alg) e)
    Omq.all_algorithms

let test_classification () =
  let t = example11_tbox () in
  let omq = Omq.make t (example8_cq ()) in
  let c = Omq.classify omq in
  check "depth 1" true (c.Omq.ontology_depth = Tbox.Finite 1);
  check "tree" true c.Omq.tree_shaped;
  check "linear" true c.Omq.linear;
  check "leaves 2" true (c.Omq.leaves = Some 2);
  check "in OMQ(1,1,2)" true (List.mem "OMQ(1,1,2)" c.Omq.classes)

(* property-based agreement: random linear OMQs over example11 × random data *)
let qcheck_agreement alg =
  QCheck.Test.make ~count:30
    ~name:(Printf.sprintf "agreement %s vs chase" (Omq.algorithm_name alg))
    QCheck.(
      triple (int_bound 1000) (int_bound 3)
        (list_of_size Gen.(1 -- 5) (QCheck.make Gen.(oneofl [ "R"; "S"; "P" ]))))
    (fun (seed, answer_kind, letters) ->
      QCheck.assume (letters <> []);
      let t = example11_tbox () in
      let answer =
        match answer_kind with 0 -> `Both | 1 -> `Boolean | _ -> `First
      in
      let q = word_cq ~answer letters in
      let omq = Omq.make t q in
      if not (Omq.applicable alg omq) then true
      else begin
        let abox =
          random_abox ~seed ~consts:5
            ~unary:[ marker t "P"; marker t "P-" ]
            ~binary:[ "R"; "S"; "P" ] ~unary_atoms:4 ~binary_atoms:10
        in
        let expected = certain_answers omq abox in
        let got = answers_via alg omq abox in
        if expected <> got then
          QCheck.Test.fail_reportf "OMQ %s: expected %d answers, got %d"
            (String.concat "" letters)
            (List.length expected) (List.length got)
        else true
      end)

(* disconnected CQs: component-wise rewriting, including a Boolean
   component that can map entirely into the anonymous part *)
let test_disconnected_queries () =
  let t = deep_tbox () in
  let q =
    Cq.make ~answer:[ "x" ]
      [
        Cq.Binary (sym "R", "x", "y");
        (* a separate Boolean component *)
        Cq.Binary (sym "S", "u", "v");
      ]
  in
  let omq = Omq.make t q in
  check "Lin applicable on disconnected" true (Omq.applicable Omq.Lin omq);
  check "Log applicable on disconnected" true (Omq.applicable Omq.Log omq);
  let aboxes =
    [
      ("both", abox_of_facts [ `B ("R", "a", "b"); `B ("S", "c", "d") ]);
      (* S-component satisfied only through A ⊑ ∃P, ∃P⁻ ⊑ ∃S *)
      ("anon", abox_of_facts [ `B ("R", "a", "b"); `U ("A", "c") ]);
      ("half", abox_of_facts [ `B ("R", "a", "b") ]);
      ( "rand",
        random_abox ~seed:77 ~consts:6 ~unary:[ "A"; "B" ]
          ~binary:[ "R"; "S"; "P" ] ~unary_atoms:4 ~binary_atoms:10 );
    ]
  in
  List.iter
    (fun (name, abox) -> agreement_on omq abox ("disc/" ^ name))
    aboxes

(* The telemetry gauges a rewriter reports must be the measurements of the
   program it returns — and, for a pinned OMQ, exact known values: the Lin
   rewriting of Example 8's word query over Example 11's ontology. *)
let test_lin_metrics () =
  let module Obs = Obda_obs.Obs in
  let omq = { Omq.tbox = example11_tbox (); cq = example8_cq () } in
  let q, c = Obs.collecting (fun () -> Omq.rewrite Omq.Lin omq) in
  let gauge name = Obs.Collector.gauge_int c name in
  Alcotest.(check (option int))
    "clauses gauge = program clauses" (Some (Ndl.num_clauses q))
    (gauge "ndl.clauses");
  Alcotest.(check (option int))
    "width gauge = program width" (Some (Ndl.width q)) (gauge "ndl.width");
  Alcotest.(check (option int))
    "size gauge = program size" (Some (Ndl.size q)) (gauge "ndl.size");
  (* exact values for this pinned OMQ *)
  Alcotest.(check (option int)) "Lin clause count" (Some 51) (gauge "ndl.clauses");
  Alcotest.(check (option int)) "Lin width" (Some 3) (gauge "ndl.width");
  Alcotest.(check int) "clauses emitted before pruning" 33
    (Obs.Collector.counter c "ndl.clauses_emitted");
  (* the complete-data program of Theorem (Lin) really is width ≤ 2 *)
  let q_complete, c_complete =
    Obs.collecting (fun () -> Omq.rewrite ~over:`Complete Omq.Lin omq)
  in
  check "complete-level width ≤ 2" true (Ndl.width q_complete <= 2);
  Alcotest.(check (option int))
    "complete-level width gauge" (Some (Ndl.width q_complete))
    (Obs.Collector.gauge_int c_complete "ndl.width")

let suites =
  [
    ( "rewriting",
      [
        Alcotest.test_case "example OMQ, all prefixes, all algorithms" `Quick
          test_example_omq_all_prefixes;
        Alcotest.test_case "boolean queries" `Quick test_boolean_queries;
        Alcotest.test_case "one answer variable" `Quick test_one_answer_var;
        Alcotest.test_case "deep ontology" `Quick test_deep_ontology;
        Alcotest.test_case "star query" `Quick test_star_query;
        Alcotest.test_case "infinite depth (Tw)" `Quick test_infinite_depth_tw;
        Alcotest.test_case "cyclic query (Log)" `Quick test_cyclic_query_log;
        Alcotest.test_case "structural properties" `Quick
          test_structural_properties;
        Alcotest.test_case "classification" `Quick test_classification;
        Alcotest.test_case "disconnected queries" `Quick
          test_disconnected_queries;
        Alcotest.test_case "Lin telemetry metrics" `Quick test_lin_metrics;
        QCheck_alcotest.to_alcotest (qcheck_agreement Omq.Tw);
        QCheck_alcotest.to_alcotest (qcheck_agreement Omq.Lin);
        QCheck_alcotest.to_alcotest (qcheck_agreement Omq.Log);
        QCheck_alcotest.to_alcotest (qcheck_agreement Omq.Ucq);
        QCheck_alcotest.to_alcotest (qcheck_agreement Omq.Presto_like);
      ] );
  ]
