(* Chaos suite: inject a fault at every registered fault site on the Fig. 2
   example OMQ (the RSR-prefix of sequence q1 over an example-11-style
   ontology) and check the failure invariants hold site by site:

   - the process exits with the documented code of the site's error class;
   - stdout carries no partial answer rows;
   - the trace file is flushed and every line re-parses via [Obda_obs.Json];
   - a fault-free rerun still produces the baseline answers.

   The site [eval.linear.round] is not reachable from the CLI (the linear
   engine is a library-level cross-check), so it is exercised in-process;
   the suite ends with an exhaustiveness check that fails when a site
   registered in [Obda_runtime.Fault] has no chaos case here.

   Usage: test_chaos <obda-exe> <chaos-dir> *)

module Fault = Obda_runtime.Fault
module Error = Obda_runtime.Error
module Budget = Obda_runtime.Budget

let total = ref 0
let failures = ref 0

let check name ok detail =
  incr total;
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    Printf.printf "FAIL %s: %s\n%!" name detail;
    incr failures
  end

let read_lines path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  loop []

let non_json_lines path =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match Obda_obs.Json.parse line with
        | Ok _ -> None
        | Error e -> Some (Printf.sprintf "%S: %s" line e))
    (read_lines path)

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: test_chaos <obda-exe> <chaos-dir>";
    exit 2
  end

let exe = Sys.argv.(1)
let dir = Sys.argv.(2)
let data file = Filename.concat dir file

let base_args =
  [
    "answer"; "-o"; data "seq.onto"; "-q"; data "seq.cq"; "-d"; data "seq.data";
  ]

(* run [exe args], returning (exit code, stdout lines) *)
let run ?stderr_to args =
  let out = Filename.temp_file "obda-chaos" ".out" in
  let err = match stderr_to with Some f -> f | None -> "/dev/null" in
  let cmd =
    Printf.sprintf "%s %s >%s 2>%s" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let lines = read_lines out in
  Sys.remove out;
  (code, lines)

(* a CLI chaos case: one site, the args that make it fire at activation 1 *)
let cli_case site_name extra_args =
  let site =
    match Fault.find_site site_name with
    | Some s -> s
    | None -> failwith ("unregistered site in case table: " ^ site_name)
  in
  let args = base_args @ extra_args in
  let expected_exit = Fault.cls_exit_code (Fault.site_default site) in
  (* baseline, fault-free *)
  let base_code, baseline = run args in
  check
    (site_name ^ ": fault-free baseline")
    (base_code = 0 && baseline <> [])
    (Printf.sprintf "exit %d, %d stdout lines" base_code
       (List.length baseline));
  (* injected run: fault at the first activation, trace requested *)
  let trace = Filename.temp_file "obda-chaos" ".jsonl" in
  let errf = Filename.temp_file "obda-chaos" ".err" in
  let code, stdout_lines =
    run ~stderr_to:errf
      (args @ [ "--inject"; site_name ^ "@1"; "--trace=" ^ trace ])
  in
  check
    (site_name ^ ": documented exit code")
    (code = expected_exit)
    (Printf.sprintf "exit %d, want %d" code expected_exit);
  check
    (site_name ^ ": no partial answer rows")
    (stdout_lines = [])
    (Printf.sprintf "%d stdout lines" (List.length stdout_lines));
  let bad = non_json_lines trace in
  check
    (site_name ^ ": trace flushed and re-parses")
    (bad = [])
    (String.concat "; " bad);
  let fired_line = Printf.sprintf "# fault: fired %s@1" site_name in
  check
    (site_name ^ ": fired activation reported")
    (List.mem fired_line (read_lines errf))
    ("no " ^ fired_line ^ " on stderr");
  Sys.remove trace;
  Sys.remove errf;
  (* fault-free rerun: no poisoned state, seed answers are back *)
  let rerun_code, rerun = run args in
  check
    (site_name ^ ": fault-free rerun restores answers")
    (rerun_code = 0 && rerun = baseline)
    (Printf.sprintf "exit %d, %d lines (want %d)" rerun_code
       (List.length rerun) (List.length baseline));
  site_name

(* [eval.linear.round] has no CLI surface: drive the linear engine
   in-process with an armed plan, then fault-free with the plan disarmed *)
let linear_case () =
  let site_name = "eval.linear.round" in
  let tbox = Obda_parse.Parse.ontology_of_file (data "seq.onto") in
  let cq = Obda_parse.Parse.query_of_file (data "seq.cq") in
  let abox = Obda_parse.Parse.data_of_file (data "seq.data") in
  let omq = Obda_rewriting.Omq.make tbox cq in
  let q = Obda_rewriting.Omq.rewrite Obda_rewriting.Omq.Lin omq in
  let baseline = Obda_ndl.Linear_eval.answers q abox in
  check
    (site_name ^ ": fault-free baseline")
    (baseline <> []) "no baseline answers";
  (match Fault.parse_plan (site_name ^ "@1") with
  | Error e -> check (site_name ^ ": plan parses") false e
  | Ok plan -> (
    Fault.arm plan;
    (match Obda_ndl.Linear_eval.answers q abox with
    | _ ->
      Fault.disarm ();
      check (site_name ^ ": injected fault raises") false "returned answers"
    | exception Error.Obda_error (Error.Budget_exhausted _ as e) ->
      let fired = Fault.fired () in
      Fault.disarm ();
      check
        (site_name ^ ": documented exit code")
        (Error.exit_code e = Fault.cls_exit_code Fault.Budget)
        (Printf.sprintf "exit %d" (Error.exit_code e));
      check
        (site_name ^ ": fired activation recorded")
        (List.exists
           (fun (s, n) -> Fault.site_name s = site_name && n = 1)
           fired)
        "activation 1 not in Fault.fired ()"
    | exception e ->
      Fault.disarm ();
      check
        (site_name ^ ": injected fault raises")
        false
        ("unexpected exception " ^ Printexc.to_string e));
    check
      (site_name ^ ": fault-free rerun restores answers")
      (Obda_ndl.Linear_eval.answers q abox = baseline)
      "rerun differs from baseline"));
  site_name

(* The service sites are in-protocol: a fault at [service.request] or
   [service.cache] surfaces as an [ERR class=...] line from the serve loop,
   never as a process exit — and the session absorbs it, so the same
   request succeeds on retry while the plan is still armed. *)
let service_case site_name =
  let module Session = Obda_service.Session in
  let module Serve = Obda_service.Serve in
  let site =
    match Fault.find_site site_name with
    | Some s -> s
    | None -> failwith ("unregistered site in case table: " ^ site_name)
  in
  let cq_text = String.trim (String.concat " " (read_lines (data "seq.cq"))) in
  let prepare_line = "PREPARE q " ^ cq_text in
  let fresh () =
    let s = Session.create () in
    Session.load_ontology s
      (Obda_parse.Parse.ontology_of_file (data "seq.onto"));
    Session.load_data s (Obda_parse.Parse.data_of_file (data "seq.data"));
    s
  in
  let transcript session =
    (* sequence explicitly: [@] evaluates its right operand first *)
    let prepared = fst (Serve.handle_line session prepare_line) in
    let answered = fst (Serve.handle_line session "ANSWER q") in
    prepared @ answered
  in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let baseline = transcript (fresh ()) in
  check
    (site_name ^ ": fault-free baseline")
    (baseline <> [] && List.for_all (fun l -> not (starts_with "ERR" l)) baseline)
    (String.concat " | " baseline);
  (match Fault.parse_plan (site_name ^ "@1") with
  | Error e -> check (site_name ^ ": plan parses") false e
  | Ok plan ->
    let session = fresh () in
    Fault.arm plan;
    let lines, stop = Serve.handle_line session prepare_line in
    let expected = "ERR class=" ^ Fault.cls_name (Fault.site_default site) in
    let got = match lines with l :: _ -> l | [] -> "<no response>" in
    check
      (site_name ^ ": in-protocol ERR line")
      (starts_with expected got)
      (Printf.sprintf "%S, want prefix %S" got expected);
    check (site_name ^ ": loop continues past the fault") (not stop)
      "QUIT signalled";
    (* activation 1 has passed: the same request now succeeds with the
       plan still armed, proving the session was not poisoned *)
    let retry = transcript session in
    let fired = Fault.fired () in
    Fault.disarm ();
    check
      (site_name ^ ": session usable after fault")
      (retry = baseline) "retry transcript differs from baseline";
    check
      (site_name ^ ": fired activation recorded")
      (List.exists
         (fun (s, n) -> Fault.site_name s = site_name && n = 1)
         fired)
      "activation 1 not in Fault.fired ()");
  (* fault-free rerun from scratch *)
  check
    (site_name ^ ": fault-free rerun restores answers")
    (transcript (fresh ()) = baseline)
    "rerun differs from baseline";
  site_name

(* [abox.snapshot] fires inside the freeze an ANSWER takes before
   evaluating: an in-protocol ERR, the serve loop continues, and the same
   request succeeds on retry — the session is never poisoned mid-freeze. *)
let snapshot_case () =
  let site_name = "abox.snapshot" in
  let module Session = Obda_service.Session in
  let module Serve = Obda_service.Serve in
  let cq_text = String.trim (String.concat " " (read_lines (data "seq.cq"))) in
  let fresh () =
    let s = Session.create () in
    Session.load_ontology s
      (Obda_parse.Parse.ontology_of_file (data "seq.onto"));
    Session.load_data s (Obda_parse.Parse.data_of_file (data "seq.data"));
    ignore (Serve.handle_line s ("PREPARE q " ^ cq_text));
    s
  in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let session = fresh () in
  let baseline = fst (Serve.handle_line session "ANSWER q") in
  check
    (site_name ^ ": fault-free baseline")
    (match baseline with l :: _ -> starts_with "OK answers=" l | [] -> false)
    (String.concat " | " baseline);
  (match Fault.parse_plan (site_name ^ "@1") with
  | Error e -> check (site_name ^ ": plan parses") false e
  | Ok plan ->
    Fault.arm plan;
    let lines, stop = Serve.handle_line session "ANSWER q" in
    check
      (site_name ^ ": in-protocol ERR on the freeze")
      (match lines with l :: _ -> starts_with "ERR class=internal" l | [] -> false)
      (String.concat " | " lines);
    check (site_name ^ ": loop continues past the fault") (not stop)
      "QUIT signalled";
    let retry = fst (Serve.handle_line session "ANSWER q") in
    let fired = Fault.fired () in
    Fault.disarm ();
    check
      (site_name ^ ": retry answers at the live revision")
      (retry = baseline) "retry differs from baseline";
    check
      (site_name ^ ": fired activation recorded")
      (List.exists
         (fun (s, n) -> Fault.site_name s = site_name && n = 1)
         fired)
      "activation 1 not in Fault.fired ()");
  site_name

(* [obs.export] fires at the top of the METRICS exposition render: the
   request fails with an in-protocol ERR, the serve loop continues, and
   the next METRICS renders the same exposition shape — telemetry export
   can fail without taking the session with it. *)
let obs_export_case () =
  let site_name = "obs.export" in
  let module Session = Obda_service.Session in
  let module Serve = Obda_service.Serve in
  let fresh () =
    let s = Session.create () in
    Session.load_ontology s
      (Obda_parse.Parse.ontology_of_file (data "seq.onto"));
    Session.load_data s (Obda_parse.Parse.data_of_file (data "seq.data"));
    s
  in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  (* successive METRICS responses differ in gauge values (the session's
     request counter, for one) but announce the same line count *)
  let announced = function
    | l :: _ when starts_with "OK metrics=" l ->
      int_of_string_opt (String.sub l 11 (String.length l - 11))
    | _ -> None
  in
  let session = fresh () in
  let baseline = fst (Serve.handle_line session "METRICS") in
  check
    (site_name ^ ": fault-free baseline")
    (match announced baseline with
    | Some n -> n > 0 && List.length baseline = n + 1
    | None -> false)
    (String.concat " | " baseline);
  (match Fault.parse_plan (site_name ^ "@1") with
  | Error e -> check (site_name ^ ": plan parses") false e
  | Ok plan ->
    Fault.arm plan;
    let lines, stop = Serve.handle_line session "METRICS" in
    check
      (site_name ^ ": in-protocol ERR on the render")
      (match lines with
      | l :: _ -> starts_with "ERR class=internal" l
      | [] -> false)
      (String.concat " | " lines);
    check (site_name ^ ": loop continues past the fault") (not stop)
      "QUIT signalled";
    let retry = fst (Serve.handle_line session "METRICS") in
    let fired = Fault.fired () in
    Fault.disarm ();
    check
      (site_name ^ ": retry renders the same exposition shape")
      (announced retry = announced baseline)
      "retry line count differs from baseline";
    check
      (site_name ^ ": fired activation recorded")
      (List.exists
         (fun (s, n) -> Fault.site_name s = site_name && n = 1)
         fired)
      "activation 1 not in Fault.fired ()");
  (* the session is still usable for ordinary requests afterwards *)
  check
    (site_name ^ ": session usable after the fault")
    (match fst (Serve.handle_line session "STATS") with
    | l :: _ -> starts_with "OK stats=" l
    | [] -> false)
    "STATS failed after the METRICS fault";
  site_name

(* The network-server sites guard the accept loop ([serve.accept]) and the
   per-connection handler ([serve.connection]): an injected fault shears
   off exactly one connection — the shed client reads a single ERR line
   and then EOF — while the listener survives and keeps serving.  Driven
   against an in-process server over a Unix socket. *)
let server_case site_name =
  let module Session = Obda_service.Session in
  let module Server = Obda_service.Server in
  let module Client = Obda_service.Client in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let session = Session.create () in
  Session.load_ontology session
    (Obda_parse.Parse.ontology_of_file (data "seq.onto"));
  Session.load_data session (Obda_parse.Parse.data_of_file (data "seq.data"));
  let path = Filename.temp_file "obda-chaos" ".sock" in
  Sys.remove path;
  let address = Server.Unix_socket path in
  let server = Server.create ~connections:2 address session in
  let code = ref (-2) in
  let thread = Thread.create (fun () -> code := Server.run server) () in
  (* fault-free baseline connection *)
  let c = Client.connect address in
  let baseline = Client.request c "STATS" in
  check
    (site_name ^ ": fault-free baseline")
    (match baseline with l :: _ -> starts_with "OK stats=" l | [] -> false)
    (String.concat " | " baseline);
  ignore (Client.request c "QUIT");
  Client.close c;
  (match Fault.parse_plan (site_name ^ "@1") with
  | Error e -> check (site_name ^ ": plan parses") false e
  | Ok plan ->
    Fault.arm plan;
    Thread.delay 0.05;
    (* the faulted connection gets one ERR line, then EOF *)
    let c1 = Client.connect address in
    let shed = Client.read_response c1 in
    check
      (site_name ^ ": exactly one connection killed with an ERR line")
      (match shed with [ l ] -> starts_with "ERR class=internal" l | _ -> false)
      (String.concat " | " shed);
    check
      (site_name ^ ": killed connection reads EOF")
      (Client.read_response c1 = [])
      "more data after the ERR";
    Client.close c1;
    (* activation 1 has passed: the next connection is served normally
       with the plan still armed — the listener survived *)
    let c2 = Client.connect address in
    let again = Client.request c2 "STATS" in
    check
      (site_name ^ ": server keeps serving")
      (match again with l :: _ -> starts_with "OK stats=" l | [] -> false)
      (String.concat " | " again);
    ignore (Client.request c2 "QUIT");
    Client.close c2;
    (* the hit counter was bumped on another domain; give the publication
       a moment before reading it from this one *)
    let rec fired_eventually tries =
      let hit =
        List.exists
          (fun (s, n) -> Fault.site_name s = site_name && n = 1)
          (Fault.fired ())
      in
      if hit || tries = 0 then hit
      else begin
        Thread.delay 0.02;
        fired_eventually (tries - 1)
      end
    in
    let hit = fired_eventually 50 in
    Fault.disarm ();
    check (site_name ^ ": fired activation recorded") hit
      "activation 1 not in Fault.fired ()");
  Server.stop server;
  Thread.join thread;
  check
    (site_name ^ ": graceful stop after the fault")
    (!code = 0)
    (Printf.sprintf "run returned %d" !code);
  Session.close session;
  site_name

(* The durability sites.  [wal.append] and [wal.sync] guard the mutation
   path of a durable session: an injected fault surfaces as the mutation
   request's in-protocol ERR, the store does NOT apply the mutation
   (log-before-apply), recovery agrees with the live store, and the next
   mutation succeeds with the plan still armed. *)
let wal_mutation_case site_name =
  let module Session = Obda_service.Session in
  let module Serve = Obda_service.Serve in
  let module Wal = Obda_service.Wal in
  let module Abox = Obda_data.Abox in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let dir =
    let d = Filename.temp_file "obda-chaos-wal" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d
  in
  let facts_key abox =
    Abox.to_facts abox
    |> List.map (Format.asprintf "%a" Abox.pp_fact)
    |> List.sort compare |> String.concat ";"
  in
  let session = Session.create () in
  let wal, _ = Wal.open_ dir in
  Serve.attach_wal session wal;
  let exec line = fst (Serve.handle_line session line) in
  let ok = function l :: _ -> starts_with "OK" l | [] -> false in
  check (site_name ^ ": fault-free baseline mutation")
    (ok (exec "ASSERT A(seed)"))
    "seed assert failed";
  (match Fault.parse_plan (site_name ^ "@1") with
  | Error e -> check (site_name ^ ": plan parses") false e
  | Ok plan ->
    Fault.arm plan;
    let lines, stop = Serve.handle_line session "ASSERT A(lost)" in
    check
      (site_name ^ ": in-protocol ERR on the mutation")
      (match lines with
      | l :: _ -> starts_with "ERR class=internal" l
      | [] -> false)
      (String.concat " | " lines);
    check (site_name ^ ": loop continues past the fault") (not stop)
      "QUIT signalled";
    check
      (site_name ^ ": store does not apply the unacknowledged mutation")
      (not (Abox.mem_unary (Session.abox session)
              (Obda_syntax.Symbol.intern "A")
              (Obda_syntax.Symbol.intern "lost")))
      "A(lost) is in the store";
    (* activation 1 has passed: mutations work again, plan still armed *)
    let retried = ok (exec "ASSERT A(retry)") in
    let fired = Fault.fired () in
    Fault.disarm ();
    check (site_name ^ ": session usable after the fault") retried
      "retry mutation failed";
    check
      (site_name ^ ": fired activation recorded")
      (List.exists
         (fun (s, n) -> Fault.site_name s = site_name && n = 1)
         fired)
      "activation 1 not in Fault.fired ()");
  (* recovery sees exactly the acknowledged mutations *)
  let live = facts_key (Session.abox session) in
  Serve.detach_wal session;
  Wal.close wal;
  let recovered = Wal.recover dir in
  check
    (site_name ^ ": recovery equals the acknowledged state")
    (facts_key recovered.Wal.abox = live)
    "recovered store differs from the live one";
  Session.close session;
  site_name

(* [wal.recover] guards the recovery entry point: the injected fault is a
   typed startup error with the internal exit code — never a silent empty
   start — and the fault-free retry recovers the state. *)
let wal_recover_case () =
  let site_name = "wal.recover" in
  let module Wal = Obda_service.Wal in
  let module Abox = Obda_data.Abox in
  let dir =
    let d = Filename.temp_file "obda-chaos-wal" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d
  in
  let wal, _ = Wal.open_ dir in
  Wal.append wal (Wal.Assert [ Abox.Concept_assertion (Obda_syntax.Symbol.intern "A", Obda_syntax.Symbol.intern "a") ]) ~revision:1;
  Wal.close wal;
  (match Fault.parse_plan (site_name ^ "@1") with
  | Error e -> check (site_name ^ ": plan parses") false e
  | Ok plan ->
    Fault.arm plan;
    (match Wal.recover dir with
    | _ ->
      Fault.disarm ();
      check (site_name ^ ": injected fault raises") false "recover succeeded"
    | exception Error.Obda_error e ->
      let fired = Fault.fired () in
      Fault.disarm ();
      check
        (site_name ^ ": typed error with the internal exit code")
        (Error.exit_code e = Fault.cls_exit_code Fault.Internal)
        (Printf.sprintf "exit %d" (Error.exit_code e));
      check
        (site_name ^ ": fired activation recorded")
        (List.exists
           (fun (s, n) -> Fault.site_name s = site_name && n = 1)
           fired)
        "activation 1 not in Fault.fired ()"
    | exception e ->
      Fault.disarm ();
      check (site_name ^ ": injected fault raises Obda_error") false
        ("unexpected exception " ^ Printexc.to_string e)));
  (* fault-free rerun restores the record *)
  let recovered = Wal.recover dir in
  check
    (site_name ^ ": fault-free rerun recovers the state")
    (recovered.Wal.replayed = 1 && Abox.num_atoms recovered.Wal.abox = 1)
    (Printf.sprintf "replayed %d, atoms %d" recovered.Wal.replayed
       (Abox.num_atoms recovered.Wal.abox));
  site_name

let () =
  let covered =
    [
      (* chase layer: apply-step and null creation, on the chase oracle *)
      cli_case "chase.step" [ "--chase" ];
      cli_case "chase.null" [ "--chase" ];
      (* one case per rewriter's emission point *)
      cli_case "rewrite.tw.emit" [ "-a"; "tw" ];
      cli_case "rewrite.lin.emit" [ "-a"; "lin" ];
      cli_case "rewrite.log.emit" [ "-a"; "log" ];
      cli_case "rewrite.ucq.emit" [ "-a"; "ucq" ];
      cli_case "rewrite.ucq_condensed.emit" [ "-a"; "ucq-condensed" ];
      cli_case "rewrite.presto.emit" [ "-a"; "presto" ];
      (* evaluator round boundaries *)
      cli_case "eval.ndl.round" [ "-a"; "tw" ];
      linear_case ();
      (* the three parser entry points *)
      cli_case "parse.tbox" [];
      cli_case "parse.cq" [];
      cli_case "parse.abox" [];
      (* trace-sink write: the injected run always passes --trace *)
      cli_case "obs.sink.write" [];
      (* service layer: faults become in-protocol ERR lines *)
      service_case "service.request";
      service_case "service.cache";
      snapshot_case ();
      (* telemetry export: METRICS render fails in protocol *)
      obs_export_case ();
      (* network-server sites: an in-process server over a Unix socket *)
      server_case "serve.accept";
      server_case "serve.connection";
      (* durability: WAL appends/syncs fail in protocol, recovery fails
         typed at startup *)
      wal_mutation_case "wal.append";
      wal_mutation_case "wal.sync";
      wal_recover_case ();
    ]
  in
  (* exhaustiveness: every registered site must have a chaos case *)
  let uncovered =
    List.filter
      (fun s -> not (List.mem (Fault.site_name s) covered))
      (Fault.sites ())
  in
  check "every registered fault site has a chaos case" (uncovered = [])
    (String.concat ", " (List.map Fault.site_name uncovered));
  Printf.printf "chaos: %d checks, %d failures\n%!" !total !failures;
  exit (if !failures = 0 then 0 else 1)
