(* Property-based tests over random ontologies and random tree-shaped CQs:
   every rewriting agrees with the chase; the completion transformations
   commute with ABox completion; the optimiser preserves semantics. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval
module Optimize = Obda_ndl.Optimize
module Skinny = Obda_ndl.Skinny
open Helpers

(* ------------------------------------------------------------------ *)
(* Generators *)

let concept_pool = [ "A"; "B"; "C" ]
let role_pool = [ "P"; "Q"; "R"; "S" ]

(* a random ontology over the small signature; roughly half come out with
   finite depth *)
let random_tbox rng =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let random_role () =
    let r = Role.of_string (pick role_pool) in
    if Random.State.bool rng then Role.inv r else r
  in
  let random_basic () =
    if Random.State.bool rng then Concept.Name (sym (pick concept_pool))
    else Concept.Exists (random_role ())
  in
  let n_axioms = 2 + Random.State.int rng 5 in
  let axioms =
    List.init n_axioms (fun _ ->
        match Random.State.int rng 3 with
        | 0 -> Tbox.Concept_incl (random_basic (), random_basic ())
        | 1 -> Tbox.Role_incl (random_role (), random_role ())
        | _ ->
          Tbox.Concept_incl
            (Concept.Name (sym (pick concept_pool)), random_basic ()))
  in
  Tbox.make axioms

(* a random tree-shaped CQ with n+1 variables *)
let random_tree_cq rng n =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let v i = Printf.sprintf "t%d" i in
  let binary =
    List.init n (fun i ->
        let parent = Random.State.int rng (i + 1) in
        let p = sym (pick role_pool) in
        if Random.State.bool rng then Cq.Binary (p, v parent, v (i + 1))
        else Cq.Binary (p, v (i + 1), v parent))
  in
  let unary =
    List.init
      (Random.State.int rng 3)
      (fun _ -> Cq.Unary (sym (pick concept_pool), v (Random.State.int rng (n + 1))))
  in
  let answer =
    List.filter (fun _ -> Random.State.int rng 3 = 0) (List.init (n + 1) v)
  in
  Cq.make ~answer (binary @ unary)

let random_instance rng tbox =
  let consts = 4 + Random.State.int rng 3 in
  let markers =
    List.filter_map (fun r -> Tbox.exists_name_opt tbox r) (Tbox.roles tbox)
    |> List.map Symbol.name
  in
  random_abox
    ~seed:(Random.State.int rng 1_000_000)
    ~consts
    ~unary:(concept_pool @ markers)
    ~binary:role_pool ~unary_atoms:(3 + Random.State.int rng 4)
    ~binary_atoms:(6 + Random.State.int rng 8)

(* ------------------------------------------------------------------ *)
(* 1. agreement of every applicable algorithm with the chase, on random
      ontologies and random tree CQs *)

let agreement_random_omqs alg =
  QCheck.Test.make ~count:40
    ~name:
      (Printf.sprintf "random OMQs: %s agrees with chase"
         (Omq.algorithm_name alg))
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, qsize) ->
      let rng = Random.State.make [| seed; 77 |] in
      let tbox = random_tbox rng in
      let q = random_tree_cq rng qsize in
      let omq = Omq.make tbox q in
      if not (Omq.applicable alg omq) then true
      else begin
        let abox = random_instance rng tbox in
        let expected = certain_answers omq abox in
        let got = answers_via alg omq abox in
        if expected <> got then
          QCheck.Test.fail_reportf "tbox=%s q=%s: %d vs %d answers"
            (String.concat "; "
               (List.map
                  (Format.asprintf "%a" Tbox.pp_axiom)
                  (Tbox.axioms tbox)))
            (Format.asprintf "%a" Cq.pp q)
            (List.length expected) (List.length got)
        else true
      end)

(* ------------------------------------------------------------------ *)
(* 2. the ∗-transformation: rewriting over complete instances evaluated on
      the completed ABox = rewriting over arbitrary instances on the raw
      ABox *)

let star_commutes alg =
  QCheck.Test.make ~count:25
    ~name:
      (Printf.sprintf "complete-on-completed = arbitrary-on-raw (%s)"
         (Omq.algorithm_name alg))
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, qsize) ->
      let rng = Random.State.make [| seed; 78 |] in
      let tbox = random_tbox rng in
      let q = random_tree_cq rng qsize in
      let omq = Omq.make tbox q in
      if not (Omq.applicable alg omq) then true
      else begin
        let abox = random_instance rng tbox in
        let completed = Abox.complete tbox abox in
        let over_complete = Omq.rewrite ~over:`Complete alg omq in
        let over_arbitrary = Omq.rewrite ~over:`Arbitrary alg omq in
        Eval.answers over_complete completed = Eval.answers over_arbitrary abox
      end)

(* ------------------------------------------------------------------ *)
(* 3. the optimiser and the skinny transformation preserve semantics of the
      produced rewritings *)

let transform_preserves name transform =
  QCheck.Test.make ~count:25 ~name
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, qsize) ->
      let rng = Random.State.make [| seed; 79 |] in
      let tbox = random_tbox rng in
      let q = random_tree_cq rng qsize in
      let omq = Omq.make tbox q in
      if not (Omq.applicable Omq.Tw omq) then true
      else begin
        let abox = random_instance rng tbox in
        let base = Omq.rewrite ~over:`Arbitrary Omq.Tw omq in
        Eval.answers base abox = Eval.answers (transform base) abox
      end)

let inline_preserves =
  transform_preserves "Tw* inlining preserves answers" (fun q ->
      Optimize.inline_single_use q)

let skinny_preserves =
  transform_preserves "skinny transformation preserves answers" (fun q ->
      Skinny.transform q)

let skinny_is_skinny =
  QCheck.Test.make ~count:25 ~name:"skinny transformation yields skinny NDL"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, qsize) ->
      let rng = Random.State.make [| seed; 80 |] in
      let tbox = random_tbox rng in
      let q = random_tree_cq rng qsize in
      let omq = Omq.make tbox q in
      if not (Omq.applicable Omq.Log omq) then true
      else
        let r = Omq.rewrite ~over:`Complete Omq.Log omq in
        Ndl.is_skinny (Skinny.transform r))

(* ------------------------------------------------------------------ *)
(* 4. pure CQ evaluation (empty ontology): the NDL engine vs the chase *)

let plain_cq_eval =
  QCheck.Test.make ~count:40 ~name:"NDL engine = chase on plain CQs"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 5))
    (fun (seed, qsize) ->
      let rng = Random.State.make [| seed; 81 |] in
      let tbox = Tbox.make [] in
      let q = random_tree_cq rng qsize in
      let omq = Omq.make tbox q in
      let abox = random_instance rng tbox in
      certain_answers omq abox = answers_via Omq.Tw omq abox)

(* ------------------------------------------------------------------ *)
(* 5. monotonicity of certain answers in the data *)

let monotone_in_data =
  QCheck.Test.make ~count:25 ~name:"certain answers are monotone in the data"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 3))
    (fun (seed, qsize) ->
      let rng = Random.State.make [| seed; 82 |] in
      let tbox = random_tbox rng in
      let q = random_tree_cq rng qsize in
      let omq = Omq.make tbox q in
      let abox = random_instance rng tbox in
      let bigger = Abox.copy abox in
      Abox.add_binary bigger (sym "R") (sym "c0") (sym "c1");
      Abox.add_unary bigger (sym "A") (sym "c2");
      let smaller_answers = Omq.answer_certain omq abox in
      let bigger_answers = Omq.answer_certain omq bigger in
      List.for_all (fun t -> List.mem t bigger_answers) smaller_answers)

(* ------------------------------------------------------------------ *)
(* 6. the planned semi-naïve engine is a drop-in for the naïve baseline:
      random NDL programs — recursive and non-recursive strata, repeated
      variables, constants — answer byte-identically under both engines,
      sequentially and under 4 workers *)

(* a random NDL program over the shared EDB signature: IDB predicates
   I0..I{n-1}, each defined by one or two clauses whose bodies mix EDB
   atoms with IDB atoms of index ≤ i+1 (an atom over I{i} or I{i+1} makes
   the stratum recursive, possibly mutually) *)
let random_ndl_program rng =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let npreds = 1 + Random.State.int rng 3 in
  let ipred i = sym (Printf.sprintf "I%d" i) in
  let vars = [ "x0"; "x1"; "x2"; "x3" ] in
  let rvar () = Ndl.Var (pick vars) in
  let rterm () =
    if Random.State.int rng 10 = 0 then
      Ndl.Cst (sym (Printf.sprintf "c%d" (Random.State.int rng 4)))
    else rvar ()
  in
  let clause i =
    (* always one EDB binary atom with two variables, so heads are safe *)
    let first = Ndl.Pred (sym (pick role_pool), [ rvar (); rvar () ]) in
    let extra =
      List.init (Random.State.int rng 3) (fun _ ->
          match Random.State.int rng 5 with
          | 0 | 1 -> Ndl.Pred (sym (pick role_pool), [ rterm (); rterm () ])
          | 2 -> Ndl.Pred (sym (pick concept_pool), [ rterm () ])
          | _ ->
            let j = Random.State.int rng (min npreds (i + 2)) in
            Ndl.Pred (ipred j, [ rterm (); rterm () ]))
    in
    let body = first :: extra in
    let body_vars =
      List.concat_map
        (function
          | Ndl.Pred (_, ts) ->
            List.filter_map (function Ndl.Var v -> Some v | _ -> None) ts
          | _ -> [])
        body
    in
    let hv () = Ndl.Var (pick body_vars) in
    { Ndl.head = (ipred i, [ hv (); hv () ]); body }
  in
  let clauses =
    List.concat
      (List.init npreds (fun i ->
           List.init (1 + Random.State.int rng 2) (fun _ -> clause i)))
  in
  Ndl.make ~goal:(ipred (npreds - 1)) ~goal_args:[ "ax"; "ay" ] clauses

let planner_differential =
  QCheck.Test.make ~count:30
    ~name:"semi-naïve + planner = naïve baseline (jobs 1 and 4)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 83 |] in
      let q = random_ndl_program rng in
      let abox =
        random_abox
          ~seed:(Random.State.int rng 1_000_000)
          ~consts:(4 + Random.State.int rng 3)
          ~unary:concept_pool ~binary:role_pool
          ~unary_atoms:(4 + Random.State.int rng 4)
          ~binary_atoms:(8 + Random.State.int rng 6)
      in
      let planned = Eval.answers q abox in
      let naive = Eval.answers ~naive:true q abox in
      let par, par_naive =
        Obda_runtime.Pool.with_pool ~jobs:4 (fun pool ->
            (Eval.answers ~pool q abox, Eval.answers ~pool ~naive:true q abox))
      in
      if planned <> naive then
        QCheck.Test.fail_reportf "planned vs naive: %d vs %d answers"
          (List.length planned) (List.length naive)
      else if planned <> par then
        QCheck.Test.fail_reportf "sequential vs 4 workers: %d vs %d answers"
          (List.length planned) (List.length par)
      else if naive <> par_naive then
        QCheck.Test.fail_reportf "naive sequential vs 4 workers: %d vs %d"
          (List.length naive) (List.length par_naive)
      else true)

(* ------------------------------------------------------------------ *)
(* 7. consistency handling: inconsistent data returns all tuples *)

let inconsistent_all_tuples () =
  let tbox =
    Tbox.make
      [
        Tbox.Concept_disj (Concept.Name (sym "A"), Concept.Name (sym "B"));
      ]
  in
  let q = Cq.make ~answer:[ "x" ] [ Cq.Unary (sym "C", "x") ] in
  let omq = Omq.make tbox q in
  let abox = abox_of_facts [ `U ("A", "c1"); `U ("B", "c1"); `U ("C", "c2") ] in
  let answers = Omq.answer omq abox in
  Alcotest.(check int) "all individuals returned" 2 (List.length answers);
  Alcotest.(check bool)
    "chase path agrees" true
    (Omq.answer_certain omq abox = answers)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest (agreement_random_omqs Omq.Tw);
        QCheck_alcotest.to_alcotest (agreement_random_omqs Omq.Lin);
        QCheck_alcotest.to_alcotest (agreement_random_omqs Omq.Log);
        QCheck_alcotest.to_alcotest (agreement_random_omqs Omq.Ucq);
        QCheck_alcotest.to_alcotest (agreement_random_omqs Omq.Ucq_condensed);
        QCheck_alcotest.to_alcotest (agreement_random_omqs Omq.Presto_like);
        QCheck_alcotest.to_alcotest (star_commutes Omq.Tw);
        QCheck_alcotest.to_alcotest (star_commutes Omq.Lin);
        QCheck_alcotest.to_alcotest (star_commutes Omq.Log);
        QCheck_alcotest.to_alcotest inline_preserves;
        QCheck_alcotest.to_alcotest skinny_preserves;
        QCheck_alcotest.to_alcotest skinny_is_skinny;
        QCheck_alcotest.to_alcotest plain_cq_eval;
        QCheck_alcotest.to_alcotest monotone_in_data;
        QCheck_alcotest.to_alcotest planner_differential;
        Alcotest.test_case "inconsistent data returns all tuples" `Quick
          inconsistent_all_tuples;
      ] );
  ]
