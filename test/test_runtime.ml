(* The resource-governed execution layer: typed parse errors over a
   malformed-input corpus, budget exhaustion in the chase / rewriting /
   evaluation loops, and the graceful-degradation chain of Omq. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_parse
module Error = Obda_runtime.Error
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Omq = Obda_rewriting.Omq
module Obs = Obda_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let sym s = Symbol.intern s

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Typed parse errors on malformed input *)

let parse_error_of f =
  match f () with
  | _ -> None
  | exception Error.Obda_error (Error.Parse_error { loc; msg; source_line }) ->
    Some (loc, msg, source_line)
  | exception _ -> None

let test_malformed_corpus () =
  (* each case: description, thunk, expected (line, column option) *)
  let cases =
    [
      ( "bad token",
        (fun () -> ignore (Parse.ontology_of_string "A(x) -> %B(x)\n")),
        Some (1, Some 9) );
      ( "bad token, later line",
        (fun () ->
          ignore (Parse.ontology_of_string "A(x) -> B(x)\nB(x) -> C(x)!\n")),
        Some (2, Some 13) );
      ( "truncated axiom",
        (fun () -> ignore (Parse.ontology_of_string "A(x) ->\n")),
        Some (1, None) );
      ( "arity clash in one axiom",
        (fun () -> ignore (Parse.ontology_of_string "A(x,y,z) -> B(x)\n")),
        Some (1, None) );
      ( "dangling inverse role",
        (fun () -> ignore (Parse.ontology_of_string "P(x,y) -> R(y,\n")),
        Some (1, None) );
      ( "truncated query",
        (fun () -> ignore (Parse.query_of_string "q(x) <- R(x,")),
        Some (1, None) );
      ( "query keyword misuse",
        (fun () -> ignore (Parse.query_of_string "q(x) <- false")),
        Some (1, None) );
      ( "non-ground fact",
        (fun () -> ignore (Parse.data_of_string "A(a)\nR(b,_)\n")),
        Some (2, None) );
      ( "truncated source row",
        (fun () -> ignore (Parse.source_of_string "t(a,")),
        Some (1, None) );
      ( "mapping without arrow",
        (fun () -> ignore (Parse.mapping_of_string "Employee(x) employees(x)")),
        Some (1, None) );
    ]
  in
  List.iter
    (fun (name, thunk, expected) ->
      match (parse_error_of thunk, expected) with
      | Some (loc, msg, source_line), Some (line, col) ->
        let e = Error.Parse_error { loc; msg; source_line } in
        check_int (name ^ ": line") line loc.Error.line;
        (match col with
        | Some c -> check (name ^ ": column") true (loc.Error.column = Some c)
        | None -> ());
        check_str (name ^ ": class slug") "parse" (Error.class_name e);
        check_int (name ^ ": exit code") 2 (Error.exit_code e)
      | None, Some _ -> Alcotest.failf "%s: expected a typed parse error" name
      | _, None -> ())
    cases

let test_parse_error_payload () =
  (* file name and the verbatim offending line are recorded *)
  match
    parse_error_of (fun () ->
        ignore (Parse.ontology_of_string ~file:"bad.onto" "A(x) -> ?B(x)\n"))
  with
  | None -> Alcotest.fail "expected a parse error"
  | Some (loc, msg, source_line) ->
    check "file recorded" true (loc.Error.file = Some "bad.onto");
    check "source line recorded" true (source_line = Some "A(x) -> ?B(x)");
    let s = Error.to_string (Error.Parse_error { loc; msg; source_line }) in
    check "machine line has class" true (contains s "class=parse");
    check "machine line has file" true (contains s "file=bad.onto")

let test_duplicate_answer_vars_are_parse_errors () =
  (* Cq.make rejects duplicated answer variables with Invalid_argument; the
     parser converts that to the parse class so the CLI exits 2, not 1 *)
  match parse_error_of (fun () -> ignore (Parse.query_of_string "q(x,x) <- A(x)")) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a typed parse error"

(* ------------------------------------------------------------------ *)
(* Budgets *)

let deep_tbox () =
  (* A ⊑ ∃R, ∃R⁻ ⊑ A: the canonical model is an infinite R-chain *)
  Tbox.make
    [
      Tbox.Concept_incl
        (Concept.Name (sym "A"), Concept.Exists (Role.of_string "R"));
      Tbox.Concept_incl
        (Concept.Exists (Role.of_string "R-"), Concept.Name (sym "A"));
    ]

let budget_error f =
  match f () with
  | _ -> None
  | exception Error.Obda_error ((Error.Budget_exhausted _) as e) -> Some e
  | exception _ -> None

let test_chase_step_budget () =
  let tbox = deep_tbox () in
  let abox = Obda_data.Abox.create () in
  Obda_data.Abox.add_unary abox (sym "A") (sym "a");
  let budget = Budget.create ~max_steps:50 () in
  match
    budget_error (fun () ->
        Obda_chase.Canonical.make ~budget tbox abox ~depth:10_000)
  with
  | Some (Error.Budget_exhausted { resource = Error.Steps; spent; limit }) ->
    check_int "limit echoed" 50 limit;
    check "stopped promptly" true (spent <= limit + 1)
  | _ -> Alcotest.fail "expected Budget_exhausted {resource = Steps}"

let test_chase_size_budget () =
  let tbox = deep_tbox () in
  let abox = Obda_data.Abox.create () in
  Obda_data.Abox.add_unary abox (sym "A") (sym "a");
  let budget = Budget.create ~max_size:20 () in
  match
    budget_error (fun () ->
        Obda_chase.Canonical.make ~budget tbox abox ~depth:10_000)
  with
  | Some (Error.Budget_exhausted { resource = Error.Size; _ }) -> ()
  | _ -> Alcotest.fail "expected Budget_exhausted {resource = Size}"

let test_deadline_budget () =
  (* an already-expired deadline fires within one check interval (1024
     steps), without waiting for the step or size caps *)
  let budget = Budget.create ~timeout:0.0 () in
  let fired = ref false in
  (try
     for _ = 1 to 5000 do
       Budget.step budget
     done
   with Error.Obda_error (Error.Budget_exhausted { resource = Error.Wall_clock; _ })
   -> fired := true);
  check "expired deadline detected" true !fired

let test_rewriter_budget () =
  let tbox = deep_tbox () in
  let q =
    Cq.make ~answer:[ "x" ]
      [ Cq.Binary (sym "R", "x", "y"); Cq.Unary (sym "A", "y") ]
  in
  let omq = Omq.make tbox q in
  (* unbudgeted baseline works *)
  check "Tw rewriting exists" true
    (Obda_ndl.Ndl.num_clauses (Omq.rewrite Omq.Tw omq) > 0);
  match
    budget_error (fun () ->
        Omq.rewrite ~budget:(Budget.create ~max_steps:1 ()) Omq.Tw omq)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "expected the Tw rewriter to hit a 1-step budget"

let test_eval_budget () =
  let tbox = Tbox.make [] in
  let q =
    Cq.make ~answer:[ "x"; "z" ]
      [ Cq.Binary (sym "R", "x", "y"); Cq.Binary (sym "R", "y", "z") ]
  in
  let omq = Omq.make tbox q in
  let abox = Obda_data.Abox.create () in
  for i = 0 to 40 do
    for j = 0 to 40 do
      if (i + j) mod 3 = 0 then
        Obda_data.Abox.add_binary abox (sym "R")
          (sym (Printf.sprintf "c%d" i))
          (sym (Printf.sprintf "c%d" j))
    done
  done;
  let unbudgeted = Omq.answer ~algorithm:Omq.Tw omq abox in
  check "unbudgeted evaluation answers" true (unbudgeted <> []);
  match
    budget_error (fun () ->
        Omq.answer
          ~budget:(Budget.create ~max_steps:100 ())
          ~algorithm:Omq.Tw omq abox)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "expected evaluation to hit a 100-step budget"

let test_sub_budget_shares_deadline () =
  (* a step cap far beyond the 1024-step clock-check interval, so the
     expired shared deadline is what fires in the child *)
  let b = Budget.create ~timeout:0.0 ~max_steps:100_000 () in
  let child = Budget.sub b in
  let fired = ref false in
  (try
     for _ = 1 to 5000 do
       Budget.step child
     done
   with
   | Error.Obda_error (Error.Budget_exhausted { resource = Error.Wall_clock; _ })
   -> fired := true);
  check "sub-budget inherits the parent deadline" true !fired;
  (* but counters restart: a fresh sub-budget of an unlimited-clock parent
     can spend its full step allowance again *)
  let b = Budget.create ~max_steps:10 () in
  (try
     for _ = 1 to 10 do
       Budget.step b
     done
   with _ -> Alcotest.fail "parent should afford 10 steps");
  check_int "parent spent" 10 (Budget.steps_spent b);
  let child = Budget.sub b in
  check_int "child counters restart" 0 (Budget.steps_spent child)

(* ------------------------------------------------------------------ *)
(* Graceful degradation *)

let cyclic_omq () =
  let tbox =
    Tbox.make
      [
        Tbox.Role_incl (Role.of_string "P", Role.of_string "R");
        Tbox.Concept_incl
          (Concept.Name (sym "A"), Concept.Exists (Role.of_string "R"));
      ]
  in
  (* a triangle: not tree-shaped, so Tw / Presto* are not applicable *)
  let q =
    Cq.make ~answer:[ "x" ]
      [
        Cq.Binary (sym "R", "x", "y");
        Cq.Binary (sym "R", "y", "z");
        Cq.Binary (sym "R", "z", "x");
      ]
  in
  Omq.make tbox q

let triangle_abox () =
  let abox = Obda_data.Abox.create () in
  Obda_data.Abox.add_binary abox (sym "P") (sym "a") (sym "b");
  Obda_data.Abox.add_binary abox (sym "R") (sym "b") (sym "c");
  Obda_data.Abox.add_binary abox (sym "P") (sym "c") (sym "a");
  abox

let test_fallback_recovers () =
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  let r = Omq.answer_with_fallback ~chain:[ Omq.Tw; Omq.Ucq ] omq abox in
  check "fell through to UCQ" true (r.Omq.answered_by = Some Omq.Ucq);
  check_int "both attempts recorded" 2 (List.length r.Omq.attempts);
  (match r.Omq.attempts with
  | [
   { Omq.algorithm = Omq.Tw; outcome = Error (Error.Not_applicable _); _ };
   { Omq.algorithm = Omq.Ucq; outcome = Ok (); _ };
  ] ->
    ()
  | _ ->
    Alcotest.fail
      "expected a failed Tw attempt followed by a successful Ucq one");
  List.iter
    (fun (a : Omq.attempt) ->
      check "attempt duration is non-negative" true (a.Omq.duration >= 0.))
    r.Omq.attempts;
  check "answers found" true (r.Omq.answers <> []);
  (* the fallback answers agree with the chase ground truth *)
  let expected = List.sort compare (Omq.answer_certain omq abox) in
  check "agrees with certain answers" true
    (List.sort compare r.Omq.answers = expected)

let test_default_chain_covers_every_omq () =
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  (* no explicit chain: the default one must route around Tw by itself *)
  let r = Omq.answer_with_fallback omq abox in
  check "answered" true (r.Omq.answered_by <> None);
  check "not by a tree-witness algorithm" true
    (r.Omq.answered_by <> Some Omq.Tw && r.Omq.answered_by <> Some Omq.Presto_like)

let test_fallback_reports_budget_failures () =
  (* applicable algorithm, hopeless budget: the chain records the budget
     failure of the first attempt and answers with the second (which gets a
     fresh step allowance) — here both get no step cap because only wall
     clock is limited, so instead cap steps and rely on the UCQ engine
     being cheaper than the step cap on this tiny input *)
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  match
    Omq.answer_with_fallback
      ~budget:(Budget.create ~max_steps:2 ())
      ~chain:[ Omq.Ucq_condensed; Omq.Ucq ] omq abox
  with
  | r ->
    (* whichever attempt answered, every recorded failure must be typed *)
    List.iter
      (fun (a : Omq.attempt) ->
        match a.Omq.outcome with
        | Ok () | Error (Error.Budget_exhausted _ | Error.Not_applicable _) ->
          ()
        | Error _ -> Alcotest.fail "unexpected attempt error class")
      r.Omq.attempts
  | exception Error.Obda_error (Error.Budget_exhausted _) ->
    (* every algorithm ran out of its (tiny) allowance: also acceptable,
       and the error is the typed one *)
    ()

let test_empty_chain_rejected () =
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  check "empty chain is a caller bug" true
    (try
       ignore (Omq.answer_with_fallback ~chain:[] omq abox);
       false
     with Invalid_argument _ -> true)

let test_inconsistent_error_mode () =
  let tbox =
    Tbox.make
      [ Tbox.Concept_disj (Concept.Name (sym "A"), Concept.Name (sym "B")) ]
  in
  let q = Cq.make ~answer:[ "x" ] [ Cq.Unary (sym "A", "x") ] in
  let omq = Omq.make tbox q in
  let abox = Obda_data.Abox.create () in
  Obda_data.Abox.add_unary abox (sym "A") (sym "a");
  Obda_data.Abox.add_unary abox (sym "B") (sym "a");
  (* default: the paper's every-tuple convention *)
  check "convention returns ind(A)" true (Omq.answer omq abox = [ [ sym "a" ] ]);
  (* error mode: typed Inconsistent_data, exit code 5 *)
  match Omq.answer ~on_inconsistent:`Error omq abox with
  | _ -> Alcotest.fail "expected Inconsistent_data"
  | exception Error.Obda_error ((Error.Inconsistent_data _) as e) ->
    check_int "exit code 5" 5 (Error.exit_code e);
    check_str "class slug" "inconsistent" (Error.class_name e)

(* ------------------------------------------------------------------ *)
(* The error type itself *)

let test_error_rendering () =
  check_str "budget line"
    "class=budget resource=steps spent=1001 limit=1000"
    (Error.to_string
       (Error.Budget_exhausted
          { resource = Error.Steps; spent = 1001; limit = 1000 }));
  check_str "not-applicable line"
    "class=not-applicable algorithm=Tw reason=\"CQ is not tree-shaped\""
    (Error.to_string
       (Error.Not_applicable
          { algorithm = "Tw"; reason = "CQ is not tree-shaped" }));
  check_int "internal exit code" 1 (Error.exit_code (Error.Internal "boom"));
  (* of_exn maps stray stdlib exceptions into the taxonomy *)
  (match Error.of_exn (Invalid_argument "x") with
  | Some (Error.Internal "x") -> ()
  | _ -> Alcotest.fail "Invalid_argument should map to Internal");
  check "unknown exceptions stay unknown" true (Error.of_exn Exit = None);
  match Error.protect (fun () -> failwith "kaput") with
  | Error (Error.Internal "kaput") -> ()
  | _ -> Alcotest.fail "protect should catch Failure"

(* ------------------------------------------------------------------ *)
(* Budget edge cases: zero allowances, the wall-clock clamp, escalation *)

let test_zero_budgets () =
  (* a zero-step budget fails on the very first unit of work *)
  (match budget_error (fun () -> Budget.step (Budget.create ~max_steps:0 ())) with
  | Some (Error.Budget_exhausted { resource = Error.Steps; spent; limit }) ->
    check_int "zero-step limit echoed" 0 limit;
    check_int "zero-step spent" 1 spent
  | _ -> Alcotest.fail "a zero-step budget should fail on the first step");
  (* likewise a zero-size budget on the first unit of output *)
  (match budget_error (fun () -> Budget.grow (Budget.create ~max_size:0 ())) with
  | Some (Error.Budget_exhausted { resource = Error.Size; spent; limit }) ->
    check_int "zero-size limit echoed" 0 limit;
    check_int "zero-size spent" 1 spent
  | _ -> Alcotest.fail "a zero-size budget should fail on the first grow");
  (* and the whole pipeline survives them as typed errors *)
  match
    budget_error (fun () ->
        Omq.answer
          ~budget:(Budget.create ~max_steps:0 ())
          ~algorithm:Omq.Ucq (cyclic_omq ()) (triangle_abox ()))
  with
  | Some _ -> ()
  | None -> Alcotest.fail "expected the pipeline to trip a zero-step budget"

let test_wall_remaining_clamps () =
  (* an expired deadline reads as zero headroom, never negative *)
  let b = Budget.create ~timeout:0.0 () in
  check "wall_remaining clamped at 0" true (Budget.wall_remaining b = Some 0.);
  check "wall_exhausted on an expired deadline" true (Budget.wall_exhausted b);
  (* no deadline: unlimited headroom, never exhausted *)
  check "no timeout has no remaining" true
    (Budget.wall_remaining Budget.none = None);
  check "no timeout is never exhausted" true
    (not (Budget.wall_exhausted Budget.none));
  (* a generous deadline reports positive, bounded headroom *)
  let b = Budget.create ~timeout:3600.0 () in
  match Budget.wall_remaining b with
  | Some r -> check "headroom positive and bounded" true (r > 0. && r <= 3600.)
  | None -> Alcotest.fail "a timeout budget should report headroom"

let test_sub_scaled () =
  let b = Budget.create ~max_steps:10 ~max_size:4 () in
  for _ = 1 to 7 do
    Budget.step b
  done;
  let child = Budget.sub_scaled ~factor:2.5 b in
  let l = Budget.limits child in
  check "steps scaled up (ceil)" true (l.Budget.max_steps = Some 25);
  check "size scaled up (ceil)" true (l.Budget.max_size = Some 10);
  check_int "child counters restart" 0 (Budget.steps_spent child);
  check_int "parent counters untouched" 7 (Budget.steps_spent b);
  (* an unlimited budget stays unlimited *)
  let l = Budget.limits (Budget.sub_scaled ~factor:8. Budget.none) in
  check "unlimited stays unlimited" true
    (l.Budget.max_steps = None && l.Budget.max_size = None);
  (* de-escalation is a caller bug *)
  check "factor below 1 rejected" true
    (try
       ignore (Budget.sub_scaled ~factor:0.5 b);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fault injection: plan language, selector semantics, replay *)

let test_fault_plan_language () =
  (match
     Fault.parse_plan
       "chase.step@17=budget, parse.cq@nth:1, eval.ndl.round@every:3=internal, \
        chase.null@random:0.5:7"
   with
  | Error e -> Alcotest.failf "plan should parse: %s" e
  | Ok plan ->
    check_int "four directives" 4 (List.length plan);
    (* round-trips; classes equal to the site default are elided *)
    check_str "round-trip"
      "chase.step@17,parse.cq@1,eval.ndl.round@every:3=internal,chase.null@random:0.5:7"
      (Fault.plan_to_string plan));
  let rejected s =
    match Fault.parse_plan s with Error _ -> true | Ok _ -> false
  in
  check "unknown site rejected" true (rejected "nosuch.site@1");
  check "duplicate site rejected" true (rejected "chase.step@1,chase.step@2");
  check "bad selector rejected" true (rejected "chase.step@zero");
  check "activation 0 rejected" true (rejected "chase.step@0");
  check "unknown class rejected" true (rejected "chase.step@1=kaboom");
  check "empty plan rejected" true (rejected "");
  (* the registry is static and closed over the documented site names *)
  check_int "registry size" 23 (List.length (Fault.sites ()));
  List.iter
    (fun s ->
      check
        (Fault.site_name s ^ " resolves to itself")
        true
        (Fault.find_site (Fault.site_name s) = Some s))
    (Fault.sites ())

let test_fault_selectors () =
  let site = Fault.chase_step in
  (* Nth fires exactly once, on the named activation, as a transient
     (step-resource) budget error *)
  Fault.arm [ Fault.directive site (Fault.Nth 3) ];
  let fires = ref 0 in
  for i = 1 to 5 do
    try Fault.hit site
    with Error.Obda_error (Error.Budget_exhausted { spent; limit; _ }) ->
      incr fires;
      check_int "fires on the 3rd activation" 3 i;
      check_int "spent is the activation" 3 spent;
      check_int "limit is one less" 2 limit
  done;
  check_int "nth fires exactly once" 1 !fires;
  check_int "every activation counted" 5 (Fault.activations site);
  check "fired record" true
    (List.map (fun (s, n) -> (Fault.site_name s, n)) (Fault.fired ())
    = [ ("chase.step", 3) ]);
  Fault.disarm ();
  (* Every fires on each multiple *)
  Fault.arm [ Fault.directive site (Fault.Every 2) ];
  let fires = ref 0 in
  for _ = 1 to 6 do
    try Fault.hit site with Error.Obda_error _ -> incr fires
  done;
  check_int "every-2 fires on activations 2, 4, 6" 3 !fires;
  Fault.disarm ();
  (* a seeded Random plan replays identically ... *)
  let run () =
    Fault.arm [ Fault.directive site (Fault.Random { prob = 0.3; seed = 11 }) ];
    for _ = 1 to 200 do
      try Fault.hit site with Error.Obda_error _ -> ()
    done;
    let f = List.map snd (Fault.fired ()) in
    Fault.disarm ();
    f
  in
  let f1 = run () in
  check "random fired at least once" true (f1 <> []);
  check "seeded random replays identically" true (f1 = run ());
  (* ... and its record replays as a deterministic @N directive *)
  let first = List.hd f1 in
  Fault.arm [ Fault.directive site (Fault.Nth first) ];
  let refired = ref false in
  for _ = 1 to first do
    try Fault.hit site with Error.Obda_error _ -> refired := true
  done;
  Fault.disarm ();
  check "recorded activation replays via @N" true !refired

let test_fault_classes () =
  (* a site's default class decides the raised error... *)
  Fault.arm [ Fault.directive Fault.parse_tbox (Fault.Nth 1) ];
  (match Fault.hit Fault.parse_tbox with
  | () ->
    Fault.disarm ();
    Alcotest.fail "parse.tbox@1 should raise"
  | exception Error.Obda_error (Error.Parse_error _ as e) ->
    Fault.disarm ();
    check_int "parse default exits 2" 2 (Error.exit_code e));
  (* ...unless the directive overrides it *)
  match Fault.parse_plan "chase.step@1=inconsistent" with
  | Error e -> Alcotest.failf "plan should parse: %s" e
  | Ok plan -> (
    Fault.arm plan;
    match Fault.hit Fault.chase_step with
    | () ->
      Fault.disarm ();
      Alcotest.fail "chase.step@1 should raise"
    | exception Error.Obda_error (Error.Inconsistent_data _ as e) ->
      Fault.disarm ();
      check_int "inconsistent override exits 5" 5 (Error.exit_code e))

let test_fault_disabled_is_noop () =
  Fault.disarm ();
  check "disarmed" true (not (Fault.armed ()));
  (* with no plan armed, hits neither raise nor count *)
  for _ = 1 to 1000 do
    Fault.hit Fault.chase_step
  done;
  check_int "no counting when disarmed" 0 (Fault.activations Fault.chase_step);
  check "nothing fired" true (Fault.fired () = [])

(* ------------------------------------------------------------------ *)
(* Retry with escalation *)

let test_retry_escalates_to_success () =
  (* trial 1 trips an injected transient step fault at the first evaluator
     round; the policy retries with an escalated sub-budget and trial 2 runs
     clean (the site counts activations across trials, so @1 fires once) *)
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  Fault.arm [ Fault.directive Fault.eval_ndl_round (Fault.Nth 1) ];
  let r =
    Fun.protect ~finally:Fault.disarm (fun () ->
        Omq.answer_with_fallback
          ~retry:{ Omq.max_retries = 3; escalation = 2. }
          ~chain:[ Omq.Ucq ] omq abox)
  in
  check "answered by the retried algorithm" true
    (r.Omq.answered_by = Some Omq.Ucq);
  (match r.Omq.attempts with
  | [ a1; a2 ] ->
    check_int "first trial numbered 1" 1 a1.Omq.trial;
    check_int "retry numbered 2" 2 a2.Omq.trial;
    check "both trials on the same algorithm" true
      (a1.Omq.algorithm = Omq.Ucq && a2.Omq.algorithm = Omq.Ucq);
    (match a1.Omq.outcome with
    | Error (Error.Budget_exhausted { resource = Error.Steps; _ }) -> ()
    | _ -> Alcotest.fail "trial 1 should fail on a transient step fault");
    check "trial 2 succeeds" true (a2.Omq.outcome = Ok ())
  | l -> Alcotest.failf "expected exactly 2 attempts, got %d" (List.length l));
  check "answers agree with certain answers" true
    (List.sort compare r.Omq.answers
    = List.sort compare (Omq.answer_certain omq abox))

let test_retry_stops_at_the_wall () =
  (* an already-expired deadline: transient failures must not be retried,
     however generous max_retries is — each algorithm in the chain gets
     exactly one trial and the typed error propagates *)
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  Fault.arm [ Fault.directive Fault.eval_ndl_round (Fault.Every 1) ];
  let result, c =
    Obs.collecting (fun () ->
        Fun.protect ~finally:Fault.disarm (fun () ->
            match
              Omq.answer_with_fallback
                ~budget:(Budget.create ~timeout:0.0 ())
                ~retry:{ Omq.max_retries = 1_000; escalation = 2. }
                ~chain:[ Omq.Ucq_condensed; Omq.Ucq ] omq abox
            with
            | _ -> `Answered
            | exception Error.Obda_error (Error.Budget_exhausted _) ->
              `Exhausted))
  in
  check "typed exhaustion propagates" true (result = `Exhausted);
  let attempts =
    List.filter
      (fun (s : Obs.span) -> s.Obs.name = "omq.attempt")
      (Obs.Collector.spans c)
  in
  check_int "one trial per algorithm, no retries" 2 (List.length attempts)

let test_retry_bounded_by_deadline () =
  (* with every trial failing transiently, retries stop at the wall: the
     sum of attempt durations never exceeds the request's allowance by more
     than one step-check granule *)
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  let allowance = 0.15 in
  Fault.arm [ Fault.directive Fault.eval_ndl_round (Fault.Every 1) ];
  let result, c =
    Obs.collecting (fun () ->
        Fun.protect ~finally:Fault.disarm (fun () ->
            match
              Omq.answer_with_fallback
                ~budget:(Budget.create ~timeout:allowance ())
                ~retry:{ Omq.max_retries = 1_000_000; escalation = 1. }
                ~chain:[ Omq.Ucq ] omq abox
            with
            | _ -> `Answered
            | exception Error.Obda_error (Error.Budget_exhausted _) ->
              `Exhausted))
  in
  check "exhausts once the deadline passes" true (result = `Exhausted);
  let attempts =
    List.filter
      (fun (s : Obs.span) -> s.Obs.name = "omq.attempt")
      (Obs.Collector.spans c)
  in
  check "kept retrying until the wall" true (List.length attempts > 2);
  let total =
    List.fold_left (fun acc (s : Obs.span) -> acc +. s.Obs.duration) 0. attempts
  in
  check "attempt durations sum within the allowance" true
    (total <= allowance +. 0.05)

(* ------------------------------------------------------------------ *)
(* Parser diagnostics at buffer boundaries *)

let test_parser_buffer_boundaries () =
  (* CRLF endings: the caret column counts characters of the logical line *)
  (match
     parse_error_of (fun () ->
         ignore (Parse.ontology_of_string "A(x) -> B(x)\r\nB(x) -> %C(x)\r\n"))
   with
  | Some (loc, _, _) ->
    check_int "crlf: line" 2 loc.Error.line;
    check "crlf: column" true (loc.Error.column = Some 9)
  | None -> Alcotest.fail "expected a parse error on the CRLF input");
  (* empty inputs: vacuous ontology and data are fine, a query is not *)
  check_int "empty ontology is vacuous" 0
    (List.length (Tbox.axioms (Parse.ontology_of_string "")));
  check_int "empty data is vacuous" 0
    (Obda_data.Abox.num_atoms (Parse.data_of_string ""));
  (match parse_error_of (fun () -> ignore (Parse.query_of_string "")) with
  | Some _ -> ()
  | None -> Alcotest.fail "an empty query should be a typed parse error");
  (* an error on the final, unterminated line still carets correctly *)
  match
    parse_error_of (fun () ->
        ignore (Parse.ontology_of_string "A(x) -> B(x)\nC(x) -> $"))
  with
  | Some (loc, _, source_line) ->
    check_int "unterminated: line" 2 loc.Error.line;
    check "unterminated: column" true (loc.Error.column = Some 9);
    check "unterminated: source line captured" true
      (source_line = Some "C(x) -> $")
  | None -> Alcotest.fail "expected a parse error on the unterminated line"

(* ------------------------------------------------------------------ *)
(* Generated data is deterministic by default *)

let test_generate_default_seed () =
  let params =
    { Obda_data.Generate.vertices = 40; edge_prob = 0.15; concept_prob = 0.3 }
  in
  let gen ?seed () =
    Parse.data_to_string
      (Obda_data.Generate.erdos_renyi ?seed ~edge_pred:(sym "R")
         ~concepts:[ sym "A" ] params)
  in
  (* the default seed is a fixed constant, not time-derived: two calls give
     the same instance, and it is the seed-42 instance *)
  check "default seed is deterministic" true (gen () = gen ());
  check "default seed is 42" true (gen () = gen ~seed:42 ());
  check "the seed actually matters" true (gen () <> gen ~seed:43 ())

(* ------------------------------------------------------------------ *)
(* The worker pool and per-worker budget slices *)

module Pool = Obda_runtime.Pool

let test_pool_runs_every_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check_int "jobs" 4 (Pool.jobs pool);
      let hits = Array.make 4 0 in
      Pool.run pool (fun i -> hits.(i) <- hits.(i) + 1);
      check "every index ran once" true (hits = [| 1; 1; 1; 1 |]);
      (* the pool is reusable across runs *)
      Pool.run pool (fun i -> hits.(i) <- hits.(i) + 10);
      check "reused pool ran every index again" true (hits = [| 11; 11; 11; 11 |]))

let test_pool_single_job_is_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let d = Domain.self () in
      let same = ref false in
      Pool.run pool (fun i -> same := i = 0 && Domain.self () = d);
      check "jobs=1 runs on the calling domain" true !same);
  check "jobs < 1 rejected" true
    (match Pool.create ~jobs:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

exception Boom of int

let test_pool_propagates_failure () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let ran = Array.make 3 false in
      (match
         Pool.run pool (fun i ->
             ran.(i) <- true;
             if i = 1 then raise (Boom i))
       with
      | () -> Alcotest.fail "worker exception was swallowed"
      | exception Boom 1 -> ()
      | exception e -> raise e);
      check "other workers still ran" true (ran = [| true; true; true |]);
      (* the failed run must not poison the pool *)
      let ok = ref 0 in
      Pool.run pool (fun _ -> incr ok);
      check_int "pool survives a failing run" 3 !ok);
  (* shutdown is idempotent and run-after-shutdown is rejected *)
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  check "run after shutdown rejected" true
    (match Pool.run pool (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_budget_slice () =
  let b = Budget.create ~max_steps:10 ~max_size:7 () in
  Budget.step b;
  (* ceil(10/4) = 3 steps, ceil(7/4) = 2 size per slice *)
  let s = Budget.slice ~parts:4 b in
  check "slice counters restart" true
    (Budget.steps_spent s = 0 && Budget.size_spent s = 0);
  check "slice step limit is ceil(limit/parts)" true
    (Budget.steps_remaining s = Some 3);
  check "slice size limit is ceil(limit/parts)" true
    (Budget.size_remaining s = Some 2);
  check "parts below one rejected" true
    (match Budget.slice ~parts:0 b with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* a slice of an unlimited budget stays unlimited *)
  let u = Budget.slice ~parts:8 Budget.none in
  check "slice of none is unlimited" true (not (Budget.is_limited u));
  (* absorb adds worker spend back for reporting, without enforcing *)
  Budget.step s;
  Budget.step s;
  Budget.grow s;
  Budget.absorb b ~from:s;
  check_int "absorb accumulates steps" 3 (Budget.steps_spent b);
  check_int "absorb accumulates size" 1 (Budget.size_spent b);
  (* absorbing into the shared [none] must not mutate it *)
  let before = Budget.steps_spent Budget.none in
  Budget.absorb Budget.none ~from:s;
  check_int "absorb into none is a no-op" before (Budget.steps_spent Budget.none)

let test_slice_shares_deadline () =
  let b = Budget.create ~timeout:0.02 () in
  let s = Budget.slice ~parts:2 b in
  Unix.sleepf 0.03;
  check "slice shares the absolute deadline" true
    (match Budget.check_deadline s with
    | exception Error.Obda_error (Error.Budget_exhausted _) -> true
    | () -> false)

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "malformed corpus" `Quick test_malformed_corpus;
        Alcotest.test_case "parse error payload" `Quick
          test_parse_error_payload;
        Alcotest.test_case "duplicate answer vars" `Quick
          test_duplicate_answer_vars_are_parse_errors;
        Alcotest.test_case "chase step budget" `Quick test_chase_step_budget;
        Alcotest.test_case "chase size budget" `Quick test_chase_size_budget;
        Alcotest.test_case "wall-clock budget" `Quick test_deadline_budget;
        Alcotest.test_case "rewriter budget" `Quick test_rewriter_budget;
        Alcotest.test_case "evaluation budget" `Quick test_eval_budget;
        Alcotest.test_case "sub-budget semantics" `Quick
          test_sub_budget_shares_deadline;
        Alcotest.test_case "fallback recovers" `Quick test_fallback_recovers;
        Alcotest.test_case "default chain" `Quick
          test_default_chain_covers_every_omq;
        Alcotest.test_case "fallback budget attempts" `Quick
          test_fallback_reports_budget_failures;
        Alcotest.test_case "empty chain" `Quick test_empty_chain_rejected;
        Alcotest.test_case "inconsistent error mode" `Quick
          test_inconsistent_error_mode;
        Alcotest.test_case "error rendering" `Quick test_error_rendering;
        Alcotest.test_case "zero budgets" `Quick test_zero_budgets;
        Alcotest.test_case "wall-clock clamp" `Quick test_wall_remaining_clamps;
        Alcotest.test_case "scaled sub-budgets" `Quick test_sub_scaled;
        Alcotest.test_case "fault plan language" `Quick
          test_fault_plan_language;
        Alcotest.test_case "fault selectors" `Quick test_fault_selectors;
        Alcotest.test_case "fault classes" `Quick test_fault_classes;
        Alcotest.test_case "fault disabled path" `Quick
          test_fault_disabled_is_noop;
        Alcotest.test_case "retry escalates" `Quick
          test_retry_escalates_to_success;
        Alcotest.test_case "retry wall gate" `Quick test_retry_stops_at_the_wall;
        Alcotest.test_case "retry deadline bound" `Quick
          test_retry_bounded_by_deadline;
        Alcotest.test_case "parser buffer boundaries" `Quick
          test_parser_buffer_boundaries;
        Alcotest.test_case "generator default seed" `Quick
          test_generate_default_seed;
        Alcotest.test_case "pool runs every index" `Quick
          test_pool_runs_every_index;
        Alcotest.test_case "pool single job inline" `Quick
          test_pool_single_job_is_inline;
        Alcotest.test_case "pool failure propagation" `Quick
          test_pool_propagates_failure;
        Alcotest.test_case "budget slices" `Quick test_budget_slice;
        Alcotest.test_case "slice deadline shared" `Quick
          test_slice_shares_deadline;
      ] );
  ]
