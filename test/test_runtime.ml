(* The resource-governed execution layer: typed parse errors over a
   malformed-input corpus, budget exhaustion in the chase / rewriting /
   evaluation loops, and the graceful-degradation chain of Omq. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_parse
module Error = Obda_runtime.Error
module Budget = Obda_runtime.Budget
module Omq = Obda_rewriting.Omq

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let sym s = Symbol.intern s

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Typed parse errors on malformed input *)

let parse_error_of f =
  match f () with
  | _ -> None
  | exception Error.Obda_error (Error.Parse_error { loc; msg; source_line }) ->
    Some (loc, msg, source_line)
  | exception _ -> None

let test_malformed_corpus () =
  (* each case: description, thunk, expected (line, column option) *)
  let cases =
    [
      ( "bad token",
        (fun () -> ignore (Parse.ontology_of_string "A(x) -> %B(x)\n")),
        Some (1, Some 9) );
      ( "bad token, later line",
        (fun () ->
          ignore (Parse.ontology_of_string "A(x) -> B(x)\nB(x) -> C(x)!\n")),
        Some (2, Some 13) );
      ( "truncated axiom",
        (fun () -> ignore (Parse.ontology_of_string "A(x) ->\n")),
        Some (1, None) );
      ( "arity clash in one axiom",
        (fun () -> ignore (Parse.ontology_of_string "A(x,y,z) -> B(x)\n")),
        Some (1, None) );
      ( "dangling inverse role",
        (fun () -> ignore (Parse.ontology_of_string "P(x,y) -> R(y,\n")),
        Some (1, None) );
      ( "truncated query",
        (fun () -> ignore (Parse.query_of_string "q(x) <- R(x,")),
        Some (1, None) );
      ( "query keyword misuse",
        (fun () -> ignore (Parse.query_of_string "q(x) <- false")),
        Some (1, None) );
      ( "non-ground fact",
        (fun () -> ignore (Parse.data_of_string "A(a)\nR(b,_)\n")),
        Some (2, None) );
      ( "truncated source row",
        (fun () -> ignore (Parse.source_of_string "t(a,")),
        Some (1, None) );
      ( "mapping without arrow",
        (fun () -> ignore (Parse.mapping_of_string "Employee(x) employees(x)")),
        Some (1, None) );
    ]
  in
  List.iter
    (fun (name, thunk, expected) ->
      match (parse_error_of thunk, expected) with
      | Some (loc, msg, source_line), Some (line, col) ->
        let e = Error.Parse_error { loc; msg; source_line } in
        check_int (name ^ ": line") line loc.Error.line;
        (match col with
        | Some c -> check (name ^ ": column") true (loc.Error.column = Some c)
        | None -> ());
        check_str (name ^ ": class slug") "parse" (Error.class_name e);
        check_int (name ^ ": exit code") 2 (Error.exit_code e)
      | None, Some _ -> Alcotest.failf "%s: expected a typed parse error" name
      | _, None -> ())
    cases

let test_parse_error_payload () =
  (* file name and the verbatim offending line are recorded *)
  match
    parse_error_of (fun () ->
        ignore (Parse.ontology_of_string ~file:"bad.onto" "A(x) -> ?B(x)\n"))
  with
  | None -> Alcotest.fail "expected a parse error"
  | Some (loc, msg, source_line) ->
    check "file recorded" true (loc.Error.file = Some "bad.onto");
    check "source line recorded" true (source_line = Some "A(x) -> ?B(x)");
    let s = Error.to_string (Error.Parse_error { loc; msg; source_line }) in
    check "machine line has class" true (contains s "class=parse");
    check "machine line has file" true (contains s "file=bad.onto")

let test_duplicate_answer_vars_are_parse_errors () =
  (* Cq.make rejects duplicated answer variables with Invalid_argument; the
     parser converts that to the parse class so the CLI exits 2, not 1 *)
  match parse_error_of (fun () -> ignore (Parse.query_of_string "q(x,x) <- A(x)")) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a typed parse error"

(* ------------------------------------------------------------------ *)
(* Budgets *)

let deep_tbox () =
  (* A ⊑ ∃R, ∃R⁻ ⊑ A: the canonical model is an infinite R-chain *)
  Tbox.make
    [
      Tbox.Concept_incl
        (Concept.Name (sym "A"), Concept.Exists (Role.of_string "R"));
      Tbox.Concept_incl
        (Concept.Exists (Role.of_string "R-"), Concept.Name (sym "A"));
    ]

let budget_error f =
  match f () with
  | _ -> None
  | exception Error.Obda_error ((Error.Budget_exhausted _) as e) -> Some e
  | exception _ -> None

let test_chase_step_budget () =
  let tbox = deep_tbox () in
  let abox = Obda_data.Abox.create () in
  Obda_data.Abox.add_unary abox (sym "A") (sym "a");
  let budget = Budget.create ~max_steps:50 () in
  match
    budget_error (fun () ->
        Obda_chase.Canonical.make ~budget tbox abox ~depth:10_000)
  with
  | Some (Error.Budget_exhausted { resource = Error.Steps; spent; limit }) ->
    check_int "limit echoed" 50 limit;
    check "stopped promptly" true (spent <= limit + 1)
  | _ -> Alcotest.fail "expected Budget_exhausted {resource = Steps}"

let test_chase_size_budget () =
  let tbox = deep_tbox () in
  let abox = Obda_data.Abox.create () in
  Obda_data.Abox.add_unary abox (sym "A") (sym "a");
  let budget = Budget.create ~max_size:20 () in
  match
    budget_error (fun () ->
        Obda_chase.Canonical.make ~budget tbox abox ~depth:10_000)
  with
  | Some (Error.Budget_exhausted { resource = Error.Size; _ }) -> ()
  | _ -> Alcotest.fail "expected Budget_exhausted {resource = Size}"

let test_deadline_budget () =
  (* an already-expired deadline fires within one check interval (1024
     steps), without waiting for the step or size caps *)
  let budget = Budget.create ~timeout:0.0 () in
  let fired = ref false in
  (try
     for _ = 1 to 5000 do
       Budget.step budget
     done
   with Error.Obda_error (Error.Budget_exhausted { resource = Error.Wall_clock; _ })
   -> fired := true);
  check "expired deadline detected" true !fired

let test_rewriter_budget () =
  let tbox = deep_tbox () in
  let q =
    Cq.make ~answer:[ "x" ]
      [ Cq.Binary (sym "R", "x", "y"); Cq.Unary (sym "A", "y") ]
  in
  let omq = Omq.make tbox q in
  (* unbudgeted baseline works *)
  check "Tw rewriting exists" true
    (Obda_ndl.Ndl.num_clauses (Omq.rewrite Omq.Tw omq) > 0);
  match
    budget_error (fun () ->
        Omq.rewrite ~budget:(Budget.create ~max_steps:1 ()) Omq.Tw omq)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "expected the Tw rewriter to hit a 1-step budget"

let test_eval_budget () =
  let tbox = Tbox.make [] in
  let q =
    Cq.make ~answer:[ "x"; "z" ]
      [ Cq.Binary (sym "R", "x", "y"); Cq.Binary (sym "R", "y", "z") ]
  in
  let omq = Omq.make tbox q in
  let abox = Obda_data.Abox.create () in
  for i = 0 to 40 do
    for j = 0 to 40 do
      if (i + j) mod 3 = 0 then
        Obda_data.Abox.add_binary abox (sym "R")
          (sym (Printf.sprintf "c%d" i))
          (sym (Printf.sprintf "c%d" j))
    done
  done;
  let unbudgeted = Omq.answer ~algorithm:Omq.Tw omq abox in
  check "unbudgeted evaluation answers" true (unbudgeted <> []);
  match
    budget_error (fun () ->
        Omq.answer
          ~budget:(Budget.create ~max_steps:100 ())
          ~algorithm:Omq.Tw omq abox)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "expected evaluation to hit a 100-step budget"

let test_sub_budget_shares_deadline () =
  (* a step cap far beyond the 1024-step clock-check interval, so the
     expired shared deadline is what fires in the child *)
  let b = Budget.create ~timeout:0.0 ~max_steps:100_000 () in
  let child = Budget.sub b in
  let fired = ref false in
  (try
     for _ = 1 to 5000 do
       Budget.step child
     done
   with
   | Error.Obda_error (Error.Budget_exhausted { resource = Error.Wall_clock; _ })
   -> fired := true);
  check "sub-budget inherits the parent deadline" true !fired;
  (* but counters restart: a fresh sub-budget of an unlimited-clock parent
     can spend its full step allowance again *)
  let b = Budget.create ~max_steps:10 () in
  (try
     for _ = 1 to 10 do
       Budget.step b
     done
   with _ -> Alcotest.fail "parent should afford 10 steps");
  check_int "parent spent" 10 (Budget.steps_spent b);
  let child = Budget.sub b in
  check_int "child counters restart" 0 (Budget.steps_spent child)

(* ------------------------------------------------------------------ *)
(* Graceful degradation *)

let cyclic_omq () =
  let tbox =
    Tbox.make
      [
        Tbox.Role_incl (Role.of_string "P", Role.of_string "R");
        Tbox.Concept_incl
          (Concept.Name (sym "A"), Concept.Exists (Role.of_string "R"));
      ]
  in
  (* a triangle: not tree-shaped, so Tw / Presto* are not applicable *)
  let q =
    Cq.make ~answer:[ "x" ]
      [
        Cq.Binary (sym "R", "x", "y");
        Cq.Binary (sym "R", "y", "z");
        Cq.Binary (sym "R", "z", "x");
      ]
  in
  Omq.make tbox q

let triangle_abox () =
  let abox = Obda_data.Abox.create () in
  Obda_data.Abox.add_binary abox (sym "P") (sym "a") (sym "b");
  Obda_data.Abox.add_binary abox (sym "R") (sym "b") (sym "c");
  Obda_data.Abox.add_binary abox (sym "P") (sym "c") (sym "a");
  abox

let test_fallback_recovers () =
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  let r = Omq.answer_with_fallback ~chain:[ Omq.Tw; Omq.Ucq ] omq abox in
  check "fell through to UCQ" true (r.Omq.answered_by = Some Omq.Ucq);
  check_int "both attempts recorded" 2 (List.length r.Omq.attempts);
  (match r.Omq.attempts with
  | [
   { Omq.algorithm = Omq.Tw; outcome = Error (Error.Not_applicable _); _ };
   { Omq.algorithm = Omq.Ucq; outcome = Ok (); _ };
  ] ->
    ()
  | _ ->
    Alcotest.fail
      "expected a failed Tw attempt followed by a successful Ucq one");
  List.iter
    (fun (a : Omq.attempt) ->
      check "attempt duration is non-negative" true (a.Omq.duration >= 0.))
    r.Omq.attempts;
  check "answers found" true (r.Omq.answers <> []);
  (* the fallback answers agree with the chase ground truth *)
  let expected = List.sort compare (Omq.answer_certain omq abox) in
  check "agrees with certain answers" true
    (List.sort compare r.Omq.answers = expected)

let test_default_chain_covers_every_omq () =
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  (* no explicit chain: the default one must route around Tw by itself *)
  let r = Omq.answer_with_fallback omq abox in
  check "answered" true (r.Omq.answered_by <> None);
  check "not by a tree-witness algorithm" true
    (r.Omq.answered_by <> Some Omq.Tw && r.Omq.answered_by <> Some Omq.Presto_like)

let test_fallback_reports_budget_failures () =
  (* applicable algorithm, hopeless budget: the chain records the budget
     failure of the first attempt and answers with the second (which gets a
     fresh step allowance) — here both get no step cap because only wall
     clock is limited, so instead cap steps and rely on the UCQ engine
     being cheaper than the step cap on this tiny input *)
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  match
    Omq.answer_with_fallback
      ~budget:(Budget.create ~max_steps:2 ())
      ~chain:[ Omq.Ucq_condensed; Omq.Ucq ] omq abox
  with
  | r ->
    (* whichever attempt answered, every recorded failure must be typed *)
    List.iter
      (fun (a : Omq.attempt) ->
        match a.Omq.outcome with
        | Ok () | Error (Error.Budget_exhausted _ | Error.Not_applicable _) ->
          ()
        | Error _ -> Alcotest.fail "unexpected attempt error class")
      r.Omq.attempts
  | exception Error.Obda_error (Error.Budget_exhausted _) ->
    (* every algorithm ran out of its (tiny) allowance: also acceptable,
       and the error is the typed one *)
    ()

let test_empty_chain_rejected () =
  let omq = cyclic_omq () in
  let abox = triangle_abox () in
  check "empty chain is a caller bug" true
    (try
       ignore (Omq.answer_with_fallback ~chain:[] omq abox);
       false
     with Invalid_argument _ -> true)

let test_inconsistent_error_mode () =
  let tbox =
    Tbox.make
      [ Tbox.Concept_disj (Concept.Name (sym "A"), Concept.Name (sym "B")) ]
  in
  let q = Cq.make ~answer:[ "x" ] [ Cq.Unary (sym "A", "x") ] in
  let omq = Omq.make tbox q in
  let abox = Obda_data.Abox.create () in
  Obda_data.Abox.add_unary abox (sym "A") (sym "a");
  Obda_data.Abox.add_unary abox (sym "B") (sym "a");
  (* default: the paper's every-tuple convention *)
  check "convention returns ind(A)" true (Omq.answer omq abox = [ [ sym "a" ] ]);
  (* error mode: typed Inconsistent_data, exit code 5 *)
  match Omq.answer ~on_inconsistent:`Error omq abox with
  | _ -> Alcotest.fail "expected Inconsistent_data"
  | exception Error.Obda_error ((Error.Inconsistent_data _) as e) ->
    check_int "exit code 5" 5 (Error.exit_code e);
    check_str "class slug" "inconsistent" (Error.class_name e)

(* ------------------------------------------------------------------ *)
(* The error type itself *)

let test_error_rendering () =
  check_str "budget line"
    "class=budget resource=steps spent=1001 limit=1000"
    (Error.to_string
       (Error.Budget_exhausted
          { resource = Error.Steps; spent = 1001; limit = 1000 }));
  check_str "not-applicable line"
    "class=not-applicable algorithm=Tw reason=\"CQ is not tree-shaped\""
    (Error.to_string
       (Error.Not_applicable
          { algorithm = "Tw"; reason = "CQ is not tree-shaped" }));
  check_int "internal exit code" 1 (Error.exit_code (Error.Internal "boom"));
  (* of_exn maps stray stdlib exceptions into the taxonomy *)
  (match Error.of_exn (Invalid_argument "x") with
  | Some (Error.Internal "x") -> ()
  | _ -> Alcotest.fail "Invalid_argument should map to Internal");
  check "unknown exceptions stay unknown" true (Error.of_exn Exit = None);
  match Error.protect (fun () -> failwith "kaput") with
  | Error (Error.Internal "kaput") -> ()
  | _ -> Alcotest.fail "protect should catch Failure"

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "malformed corpus" `Quick test_malformed_corpus;
        Alcotest.test_case "parse error payload" `Quick
          test_parse_error_payload;
        Alcotest.test_case "duplicate answer vars" `Quick
          test_duplicate_answer_vars_are_parse_errors;
        Alcotest.test_case "chase step budget" `Quick test_chase_step_budget;
        Alcotest.test_case "chase size budget" `Quick test_chase_size_budget;
        Alcotest.test_case "wall-clock budget" `Quick test_deadline_budget;
        Alcotest.test_case "rewriter budget" `Quick test_rewriter_budget;
        Alcotest.test_case "evaluation budget" `Quick test_eval_budget;
        Alcotest.test_case "sub-budget semantics" `Quick
          test_sub_budget_shares_deadline;
        Alcotest.test_case "fallback recovers" `Quick test_fallback_recovers;
        Alcotest.test_case "default chain" `Quick
          test_default_chain_covers_every_omq;
        Alcotest.test_case "fallback budget attempts" `Quick
          test_fallback_reports_budget_failures;
        Alcotest.test_case "empty chain" `Quick test_empty_chain_rejected;
        Alcotest.test_case "inconsistent error mode" `Quick
          test_inconsistent_error_mode;
        Alcotest.test_case "error rendering" `Quick test_error_rendering;
      ] );
  ]
