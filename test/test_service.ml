(* The query service layer: protocol parsing, the LRU rewriting cache,
   session dirty-tracking, the serve loop's request execution, and the
   prepare-once/answer-many contract (exactly one rewrite for any number
   of PREPARE/ANSWER pairs of the same OMQ). *)

module Cache = Obda_service.Cache
module Prepared = Obda_service.Prepared
module Session = Obda_service.Session
module Protocol = Obda_service.Protocol
module Serve = Obda_service.Serve
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
module Parse = Obda_parse.Parse
module Abox = Obda_data.Abox
module Symbol = Obda_syntax.Symbol
module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Obs = Obda_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tbox_text = "A(x) -> R(x,_)\nR(_,x) -> A(x)"
let tbox () = Parse.ontology_of_string tbox_text
let cq_a () = Parse.query_of_string "q(x) <- A(x)"
let abox () = Parse.data_of_string "A(a) R(a,b)"

(* A tiny NDL query to populate cache entries without running a rewriter. *)
let dummy_query name =
  Omq.rewrite Omq.Ucq (Omq.make (tbox ()) (Parse.query_of_string name))

(* ------------------------------------------------------------------ *)
(* Protocol *)

let ok_some line =
  match Protocol.parse line with
  | Ok (Some r) -> r
  | Ok None -> Alcotest.failf "expected a request from %S" line
  | Error m -> Alcotest.failf "parse of %S failed: %s" line m

let test_protocol_verbs () =
  (match ok_some "LOAD ONTOLOGY o.txt" with
  | Protocol.Load_ontology f -> check_str "ontology file" "o.txt" f
  | _ -> Alcotest.fail "expected Load_ontology");
  (match ok_some "load data d.txt" with
  | Protocol.Load_data f -> check_str "data file (case-insensitive)" "d.txt" f
  | _ -> Alcotest.fail "expected Load_data");
  (match ok_some "PREPARE q1 q(x) <- A(x)" with
  | Protocol.Prepare { name; algorithm; cq } ->
    check_str "name" "q1" name;
    check "no algorithm" true (algorithm = None);
    check_str "cq text" "q(x) <- A(x)" cq
  | _ -> Alcotest.fail "expected Prepare");
  (match ok_some "PREPARE q2 ALG ucq q(x) <- A(x)" with
  | Protocol.Prepare { algorithm = Some a; _ } ->
    check "explicit algorithm" true (a = Omq.Ucq)
  | _ -> Alcotest.fail "expected Prepare with algorithm");
  (match ok_some "ANSWER q1" with
  | Protocol.Answer n -> check_str "answer name" "q1" n
  | _ -> Alcotest.fail "expected Answer");
  (match ok_some "ASSERT A(a) R(a,b)" with
  | Protocol.Assert_facts t -> check_str "assert payload" "A(a) R(a,b)" t
  | _ -> Alcotest.fail "expected Assert_facts");
  (match ok_some "RETRACT A(a)" with
  | Protocol.Retract_facts t -> check_str "retract payload" "A(a)" t
  | _ -> Alcotest.fail "expected Retract_facts");
  check "stats" true (ok_some "STATS" = Protocol.Stats);
  check "quit" true (ok_some "QUIT" = Protocol.Quit);
  check "exit alias" true (ok_some "exit" = Protocol.Quit)

let test_protocol_skips_and_errors () =
  check "blank" true (Protocol.parse "" = Ok None);
  check "spaces" true (Protocol.parse "   " = Ok None);
  check "comment" true (Protocol.parse "# hello" = Ok None);
  let is_error line =
    match Protocol.parse line with Error _ -> true | _ -> false
  in
  check "unknown verb" true (is_error "FROBNICATE x");
  check "LOAD without kind" true (is_error "LOAD");
  check "LOAD bad kind" true (is_error "LOAD TBOX o.txt");
  check "PREPARE without query" true (is_error "PREPARE q1");
  check "PREPARE bad algorithm" true (is_error "PREPARE q ALG nope q(x) <- A(x)");
  check "ANSWER without name" true (is_error "ANSWER");
  check "ANSWER extra args" true (is_error "ANSWER q1 q2");
  check "ASSERT empty" true (is_error "ASSERT");
  check "STATS with args" true (is_error "STATS now")

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_hit_miss () =
  let c = Cache.create () in
  let builds = ref 0 in
  let build () = incr builds; dummy_query "q(x) <- A(x)" in
  let q1, o1 = Cache.find_or_add c ~key:"k1" build in
  check "first lookup misses" true (o1 = `Miss);
  let q2, o2 = Cache.find_or_add c ~key:"k1" build in
  check "second lookup hits" true (o2 = `Hit);
  check "hit returns the same rewriting" true (q1 == q2);
  check_int "one build" 1 !builds;
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c);
  check_int "entries" 1 (Cache.length c);
  check_int "weight is Ndl.size" (Ndl.size q1) (Cache.weight c)

let test_cache_lru_eviction () =
  let c = Cache.create ~max_entries:2 () in
  let add key = ignore (Cache.find_or_add c ~key (fun () -> dummy_query "q(x) <- A(x)")) in
  add "k1";
  add "k2";
  (* touch k1 so k2 becomes the LRU victim *)
  add "k1";
  add "k3";
  check_int "bounded to 2 entries" 2 (Cache.length c);
  check "k2 evicted" false (Cache.mem c "k2");
  check "k1 kept (recently used)" true (Cache.mem c "k1");
  check "k3 kept (new)" true (Cache.mem c "k3");
  check_int "one eviction" 1 (Cache.evictions c);
  Alcotest.(check (list string))
    "MRU order" [ "k3"; "k1" ] (Cache.keys_mru_first c)

let test_cache_weight_bound () =
  let w = Ndl.size (dummy_query "q(x) <- A(x)") in
  (* room for exactly one resident rewriting *)
  let c = Cache.create ~max_weight:w () in
  let add key = ignore (Cache.find_or_add c ~key (fun () -> dummy_query "q(x) <- A(x)")) in
  add "k1";
  add "k2";
  check_int "one resident entry" 1 (Cache.length c);
  check "k2 is the resident one" true (Cache.mem c "k2");
  check_int "weight within bound" w (Cache.weight c);
  check_int "evicted k1" 1 (Cache.evictions c)

let test_cache_counters_reach_obs () =
  let (), coll =
    Obs.collecting (fun () ->
        let c = Cache.create ~max_entries:1 () in
        let add key =
          ignore (Cache.find_or_add c ~key (fun () -> dummy_query "q(x) <- A(x)"))
        in
        add "k1";
        add "k1";
        add "k2")
  in
  check_int "obs hit" 1 (Obs.Collector.counter coll "service.cache.hit");
  check_int "obs miss" 2 (Obs.Collector.counter coll "service.cache.miss");
  check_int "obs evict" 1 (Obs.Collector.counter coll "service.cache.evict")

(* ------------------------------------------------------------------ *)
(* Session *)

let test_session_consistency_memo () =
  let s = Session.create () in
  Session.load_ontology s (Parse.ontology_of_string "A(x), B(x) -> false");
  Session.load_data s (Parse.data_of_string "A(a)");
  check "no verdict yet" true (Session.consistency_cached s = None);
  check "consistent" true (Session.consistent s);
  check "verdict memoised" true (Session.consistency_cached s = Some true);
  (* unchanged data: the memo answers *)
  check "still consistent" true (Session.consistent s);
  (* a mutation invalidates the memo through the revision counter *)
  check "assert new fact" true
    (Session.assert_fact s
       (Abox.Concept_assertion (Symbol.intern "B", Symbol.intern "a")));
  check "memo invalidated" true (Session.consistency_cached s = None);
  check "now inconsistent" false (Session.consistent s);
  check "retract restores" true
    (Session.retract_fact s
       (Abox.Concept_assertion (Symbol.intern "B", Symbol.intern "a")));
  check "consistent again" true (Session.consistent s);
  (* re-asserting an already-present fact is a no-op: memo survives *)
  check "duplicate assert is a no-op" false
    (Session.assert_fact s
       (Abox.Concept_assertion (Symbol.intern "A", Symbol.intern "a")));
  check "memo survives no-op" true (Session.consistency_cached s = Some true)

let test_session_answer_runs_check_once () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  let p, _ = Session.prepare s ~name:"q" (cq_a ()) in
  let (), coll =
    Obs.collecting (fun () ->
        for _ = 1 to 50 do
          ignore (Session.answer s p)
        done)
  in
  let consistency_spans =
    List.length
      (List.filter
         (fun (sp : Obs.span) -> sp.Obs.name = "chase.consistency")
         (Obs.Collector.spans coll))
  in
  check_int "consistency checked once for 50 answers" 1 consistency_spans

let test_session_load_ontology_drops_prepared () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  let _ = Session.prepare s ~name:"q" (cq_a ()) in
  check "prepared registered" true (Session.find_prepared s "q" <> None);
  Session.load_ontology s (tbox ());
  check "reload drops prepared" true (Session.find_prepared s "q" = None);
  Alcotest.(check (list string)) "no names" [] (Session.prepared_names s)

let test_session_answer_inconsistent_convention () =
  let s = Session.create () in
  Session.load_ontology s
    (Parse.ontology_of_string "A(x), B(x) -> false\nA(x) -> C(x)");
  Session.load_data s (Parse.data_of_string "A(a) B(a) C(b)");
  let p, _ = Session.prepare s ~name:"q" (Parse.query_of_string "q(x) <- C(x)") in
  let answers = Session.answer s p in
  (* inconsistent (T, A): every individual is an answer *)
  check_int "all tuples over ind(A)" 2 (List.length answers)

(* ------------------------------------------------------------------ *)
(* Serve *)

let with_temp_file content f =
  let path = Filename.temp_file "obda_service" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let first = function
  | line :: _ -> line
  | [] -> Alcotest.fail "expected at least one response line"

let test_serve_every_verb () =
  with_temp_file tbox_text (fun onto_file ->
      with_temp_file "A(a) R(a,b)" (fun data_file ->
          let s = Session.create () in
          let exec line = fst (Serve.handle_line s line) in
          check "load ontology OK" true
            (String.length (first (exec ("LOAD ONTOLOGY " ^ onto_file))) > 2);
          check_str "load data" "OK data atoms=2 individuals=2"
            (first (exec ("LOAD DATA " ^ data_file)));
          let prep = first (exec "PREPARE q1 q(x) <- A(x)") in
          check "prepare miss" true
            (String.length prep > 0
            && String.sub prep 0 2 = "OK"
            && String.length prep > 30);
          (match exec "ANSWER q1" with
          | status :: tuples ->
            check_str "answer status" "OK answers=2" status;
            Alcotest.(check (list string))
              "tuples" [ "a"; "b" ] (List.sort compare tuples)
          | [] -> Alcotest.fail "no answer response");
          check_str "assert" "OK asserted added=1 atoms=3"
            (first (exec "ASSERT A(c)"));
          check_str "answer sees the new fact" "OK answers=3"
            (first (exec "ANSWER q1"));
          check_str "retract" "OK retracted removed=1 atoms=2"
            (first (exec "RETRACT A(c)"));
          (match exec "STATS" with
          | status :: kvs ->
            check_str "stats status" "OK stats=13" status;
            check "stats payload lines" true (List.length kvs = 13)
          | [] -> Alcotest.fail "no stats response");
          (* boolean query *)
          ignore (exec "PREPARE b q() <- A(x)");
          Alcotest.(check (list string))
            "boolean answer" [ "OK boolean=true" ] (exec "ANSWER b");
          let lines, stop = Serve.handle_line s "QUIT" in
          check "quit stops" true stop;
          Alcotest.(check (list string)) "quit response" [ "OK bye" ] lines))

let err_class line =
  (* "ERR class=parse msg=..." -> "parse" *)
  match String.split_on_char ' ' line with
  | "ERR" :: kv :: _ when String.length kv > 6 && String.sub kv 0 6 = "class=" ->
    String.sub kv 6 (String.length kv - 6)
  | _ -> Alcotest.failf "expected an ERR line, got %S" line

let test_serve_err_leaves_session_usable () =
  let s = Session.create ~budget:(Budget.create ~max_steps:1 ()) () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  (* the rewrite exhausts the 1-step request sub-budget -> in-protocol ERR *)
  let lines, stop = Serve.handle_line s "PREPARE q q(x) <- A(x)" in
  check_str "budget error class" "budget" (err_class (first lines));
  check "budget error does not stop the loop" false stop;
  (* the session survives: requests that fit the per-request allowance
     still succeed (each request gets a FRESH sub-budget) *)
  let lines, _ = Serve.handle_line s "STATS" in
  check_str "stats after failed request" "OK stats=13" (first lines);
  (* parse errors in payloads are in-protocol too *)
  let lines, _ = Serve.handle_line s "ASSERT A(" in
  check_str "payload parse error" "parse" (err_class (first lines));
  let lines, _ = Serve.handle_line s "ANSWER nosuch" in
  check_str "unknown prepared name" "internal" (err_class (first lines))

let test_serve_prepare_once_answer_many () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  let (), coll =
    Obs.collecting (fun () ->
        for _ = 1 to 100 do
          let lines, _ = Serve.handle_line s "PREPARE q q(x) <- A(x)" in
          check "prepare OK" true (String.sub (first lines) 0 2 = "OK");
          let lines, _ = Serve.handle_line s "ANSWER q" in
          check_str "answer OK" "OK answers=2" (first lines)
        done)
  in
  (* the acceptance contract: one rewrite for the whole session *)
  check_int "exactly one cache miss" 1
    (Obs.Collector.counter coll "service.cache.miss");
  check_int "99 cache hits" 99
    (Obs.Collector.counter coll "service.cache.hit");
  check_int "no evictions" 0
    (Obs.Collector.counter coll "service.cache.evict");
  check_int "session cache agrees (miss)" 1 (Cache.misses (Session.cache s));
  check_int "session cache agrees (hit)" 99 (Cache.hits (Session.cache s));
  (* every request ran under its own service.request span *)
  let request_spans =
    List.filter
      (fun (sp : Obs.span) -> sp.Obs.name = "service.request")
      (Obs.Collector.spans coll)
  in
  check_int "one span per request" 200 (List.length request_spans)

let test_serve_digest_shares_cache_across_names () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  (* same OMQ modulo atom order and name: one cache entry *)
  let _ = fst (Serve.handle_line s "PREPARE q1 q(x) <- A(x), R(x,y)") in
  let _ = fst (Serve.handle_line s "PREPARE q2 q(x) <- R(x,y), A(x)") in
  check_int "one cache entry for both names" 1 (Cache.length (Session.cache s));
  check_int "second prepare hit" 1 (Cache.hits (Session.cache s));
  Alcotest.(check (list string))
    "both names registered" [ "q1"; "q2" ] (Session.prepared_names s)

let suites =
  [
    ( "service",
      [
        Alcotest.test_case "protocol verbs" `Quick test_protocol_verbs;
        Alcotest.test_case "protocol skips and errors" `Quick
          test_protocol_skips_and_errors;
        Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "cache weight bound" `Quick test_cache_weight_bound;
        Alcotest.test_case "cache counters reach obs" `Quick
          test_cache_counters_reach_obs;
        Alcotest.test_case "session consistency memo" `Quick
          test_session_consistency_memo;
        Alcotest.test_case "session answers run check once" `Quick
          test_session_answer_runs_check_once;
        Alcotest.test_case "load ontology drops prepared" `Quick
          test_session_load_ontology_drops_prepared;
        Alcotest.test_case "inconsistent-data convention" `Quick
          test_session_answer_inconsistent_convention;
        Alcotest.test_case "serve: every verb" `Quick test_serve_every_verb;
        Alcotest.test_case "serve: ERR leaves session usable" `Quick
          test_serve_err_leaves_session_usable;
        Alcotest.test_case "serve: prepare once, answer many" `Quick
          test_serve_prepare_once_answer_many;
        Alcotest.test_case "serve: digest shares cache across names" `Quick
          test_serve_digest_shares_cache_across_names;
      ] );
  ]
