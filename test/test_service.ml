(* The query service layer: protocol parsing, the LRU rewriting cache,
   session dirty-tracking, the serve loop's request execution, and the
   prepare-once/answer-many contract (exactly one rewrite for any number
   of PREPARE/ANSWER pairs of the same OMQ). *)

module Cache = Obda_service.Cache
module Prepared = Obda_service.Prepared
module Session = Obda_service.Session
module Protocol = Obda_service.Protocol
module Serve = Obda_service.Serve
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
module Parse = Obda_parse.Parse
module Abox = Obda_data.Abox
module Symbol = Obda_syntax.Symbol
module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault
module Obs = Obda_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tbox_text = "A(x) -> R(x,_)\nR(_,x) -> A(x)"
let tbox () = Parse.ontology_of_string tbox_text
let cq_a () = Parse.query_of_string "q(x) <- A(x)"
let abox () = Parse.data_of_string "A(a) R(a,b)"

(* A tiny NDL query to populate cache entries without running a rewriter. *)
let dummy_query name =
  Omq.rewrite Omq.Ucq (Omq.make (tbox ()) (Parse.query_of_string name))

(* ------------------------------------------------------------------ *)
(* Protocol *)

let ok_some line =
  match Protocol.parse line with
  | Ok (Some r) -> r
  | Ok None -> Alcotest.failf "expected a request from %S" line
  | Error m -> Alcotest.failf "parse of %S failed: %s" line m

let test_protocol_verbs () =
  (match ok_some "LOAD ONTOLOGY o.txt" with
  | Protocol.Load_ontology f -> check_str "ontology file" "o.txt" f
  | _ -> Alcotest.fail "expected Load_ontology");
  (match ok_some "load data d.txt" with
  | Protocol.Load_data f -> check_str "data file (case-insensitive)" "d.txt" f
  | _ -> Alcotest.fail "expected Load_data");
  (match ok_some "PREPARE q1 q(x) <- A(x)" with
  | Protocol.Prepare { name; algorithm; cq } ->
    check_str "name" "q1" name;
    check "no algorithm" true (algorithm = None);
    check_str "cq text" "q(x) <- A(x)" cq
  | _ -> Alcotest.fail "expected Prepare");
  (match ok_some "PREPARE q2 ALG ucq q(x) <- A(x)" with
  | Protocol.Prepare { algorithm = Some a; _ } ->
    check "explicit algorithm" true (a = Omq.Ucq)
  | _ -> Alcotest.fail "expected Prepare with algorithm");
  (match ok_some "ANSWER q1" with
  | Protocol.Answer n -> check_str "answer name" "q1" n
  | _ -> Alcotest.fail "expected Answer");
  (match ok_some "ASSERT A(a) R(a,b)" with
  | Protocol.Assert_facts t -> check_str "assert payload" "A(a) R(a,b)" t
  | _ -> Alcotest.fail "expected Assert_facts");
  (match ok_some "RETRACT A(a)" with
  | Protocol.Retract_facts t -> check_str "retract payload" "A(a)" t
  | _ -> Alcotest.fail "expected Retract_facts");
  check "stats" true (ok_some "STATS" = Protocol.Stats);
  check "ping" true (ok_some "PING" = Protocol.Ping);
  check "ping (case-insensitive)" true (ok_some "ping" = Protocol.Ping);
  check "checkpoint" true (ok_some "CHECKPOINT" = Protocol.Checkpoint);
  check "quit" true (ok_some "QUIT" = Protocol.Quit);
  check "exit alias" true (ok_some "exit" = Protocol.Quit)

let test_protocol_skips_and_errors () =
  check "blank" true (Protocol.parse "" = Ok None);
  check "spaces" true (Protocol.parse "   " = Ok None);
  check "comment" true (Protocol.parse "# hello" = Ok None);
  let is_error line =
    match Protocol.parse line with Error _ -> true | _ -> false
  in
  check "unknown verb" true (is_error "FROBNICATE x");
  check "LOAD without kind" true (is_error "LOAD");
  check "LOAD bad kind" true (is_error "LOAD TBOX o.txt");
  check "PREPARE without query" true (is_error "PREPARE q1");
  check "PREPARE bad algorithm" true (is_error "PREPARE q ALG nope q(x) <- A(x)");
  check "ANSWER without name" true (is_error "ANSWER");
  check "ANSWER extra args" true (is_error "ANSWER q1 q2");
  check "ASSERT empty" true (is_error "ASSERT");
  check "STATS with args" true (is_error "STATS now");
  check "PING with args" true (is_error "PING pong");
  check "CHECKPOINT with args" true (is_error "CHECKPOINT now")

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_hit_miss () =
  let c = Cache.create () in
  let builds = ref 0 in
  let build () = incr builds; dummy_query "q(x) <- A(x)" in
  let q1, o1 = Cache.find_or_add c ~key:"k1" build in
  check "first lookup misses" true (o1 = `Miss);
  let q2, o2 = Cache.find_or_add c ~key:"k1" build in
  check "second lookup hits" true (o2 = `Hit);
  check "hit returns the same rewriting" true (q1 == q2);
  check_int "one build" 1 !builds;
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c);
  check_int "entries" 1 (Cache.length c);
  check_int "weight is Ndl.size" (Ndl.size q1) (Cache.weight c)

let test_cache_lru_eviction () =
  let c = Cache.create ~max_entries:2 () in
  let add key = ignore (Cache.find_or_add c ~key (fun () -> dummy_query "q(x) <- A(x)")) in
  add "k1";
  add "k2";
  (* touch k1 so k2 becomes the LRU victim *)
  add "k1";
  add "k3";
  check_int "bounded to 2 entries" 2 (Cache.length c);
  check "k2 evicted" false (Cache.mem c "k2");
  check "k1 kept (recently used)" true (Cache.mem c "k1");
  check "k3 kept (new)" true (Cache.mem c "k3");
  check_int "one eviction" 1 (Cache.evictions c);
  Alcotest.(check (list string))
    "MRU order" [ "k3"; "k1" ] (Cache.keys_mru_first c)

let test_cache_weight_bound () =
  let w = Ndl.size (dummy_query "q(x) <- A(x)") in
  (* room for exactly one resident rewriting *)
  let c = Cache.create ~max_weight:w () in
  let add key = ignore (Cache.find_or_add c ~key (fun () -> dummy_query "q(x) <- A(x)")) in
  add "k1";
  add "k2";
  check_int "one resident entry" 1 (Cache.length c);
  check "k2 is the resident one" true (Cache.mem c "k2");
  check_int "weight within bound" w (Cache.weight c);
  check_int "evicted k1" 1 (Cache.evictions c)

let test_cache_counters_reach_obs () =
  let (), coll =
    Obs.collecting (fun () ->
        let c = Cache.create ~max_entries:1 () in
        let add key =
          ignore (Cache.find_or_add c ~key (fun () -> dummy_query "q(x) <- A(x)"))
        in
        add "k1";
        add "k1";
        add "k2")
  in
  check_int "obs hit" 1 (Obs.Collector.counter coll "service.cache.hit");
  check_int "obs miss" 2 (Obs.Collector.counter coll "service.cache.miss");
  check_int "obs evict" 1 (Obs.Collector.counter coll "service.cache.evict")

let test_cache_mru_fast_path () =
  let c = Cache.create () in
  let add key =
    ignore (Cache.find_or_add c ~key (fun () -> dummy_query "q(x) <- A(x)"))
  in
  add "k1";
  add "k2";
  add "k3";
  check_int "inserts are not relinks" 0 (Cache.relinks c);
  (* repeated hits on the MRU entry must take the fast path: no splice,
     and the recency order is left exactly as it was *)
  add "k3";
  add "k3";
  check_int "MRU hits do not relink" 0 (Cache.relinks c);
  Alcotest.(check (list string))
    "order unchanged by MRU hits" [ "k3"; "k2"; "k1" ] (Cache.keys_mru_first c);
  (* a hit on a non-MRU entry is the slow path: one splice, promoted *)
  add "k1";
  check_int "non-MRU hit relinks once" 1 (Cache.relinks c);
  Alcotest.(check (list string))
    "promoted to the front" [ "k1"; "k3"; "k2" ] (Cache.keys_mru_first c);
  (* and the freshly promoted entry is back on the fast path *)
  add "k1";
  check_int "promoted entry hits the fast path" 1 (Cache.relinks c)

let test_cache_failed_build_counts_nothing () =
  let (), coll =
    Obs.collecting (fun () ->
        let c = Cache.create () in
        check "build failure propagates" true
          (try
             ignore (Cache.find_or_add c ~key:"k" (fun () -> failwith "boom"));
             false
           with Failure _ -> true);
        check_int "no resident entry" 0 (Cache.length c);
        check_int "failed build is not a miss" 0 (Cache.misses c);
        check_int "nor a hit" 0 (Cache.hits c);
        (* the retry builds for real and is the first (and only) miss *)
        let _, o =
          Cache.find_or_add c ~key:"k" (fun () -> dummy_query "q(x) <- A(x)")
        in
        check "retry misses" true (o = `Miss);
        check_int "one miss after the retry" 1 (Cache.misses c))
  in
  check_int "telemetry agrees with the counter" 1
    (Obs.Collector.counter coll "service.cache.miss")

let test_cache_fault_site_counts_nothing () =
  (* an injected fault at service.cache fires before the table is probed:
     like a failed build, it must leave every counter untouched *)
  let c = Cache.create () in
  match Fault.parse_plan "service.cache@1" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Fault.arm plan;
    Fun.protect ~finally:Fault.disarm (fun () ->
        check "injected fault raises Obda_error" true
          (try
             ignore
               (Cache.find_or_add c ~key:"k" (fun () ->
                    dummy_query "q(x) <- A(x)"));
             false
           with Error.Obda_error _ -> true);
        check_int "no miss counted" 0 (Cache.misses c);
        check_int "no resident entry" 0 (Cache.length c);
        (* the plan selects activation 1 only: the retry goes through *)
        let _, o =
          Cache.find_or_add c ~key:"k" (fun () -> dummy_query "q(x) <- A(x)")
        in
        check "retry succeeds with the plan still armed" true (o = `Miss))

(* ------------------------------------------------------------------ *)
(* Session *)

let test_session_consistency_memo () =
  let s = Session.create () in
  Session.load_ontology s (Parse.ontology_of_string "A(x), B(x) -> false");
  Session.load_data s (Parse.data_of_string "A(a)");
  check "no verdict yet" true (Session.consistency_cached s = None);
  check "consistent" true (Session.consistent s);
  check "verdict memoised" true (Session.consistency_cached s = Some true);
  (* unchanged data: the memo answers *)
  check "still consistent" true (Session.consistent s);
  (* a mutation invalidates the memo through the revision counter *)
  check "assert new fact" true
    (Session.assert_fact s
       (Abox.Concept_assertion (Symbol.intern "B", Symbol.intern "a")));
  check "memo invalidated" true (Session.consistency_cached s = None);
  check "now inconsistent" false (Session.consistent s);
  check "retract restores" true
    (Session.retract_fact s
       (Abox.Concept_assertion (Symbol.intern "B", Symbol.intern "a")));
  check "consistent again" true (Session.consistent s);
  (* re-asserting an already-present fact is a no-op: memo survives *)
  check "duplicate assert is a no-op" false
    (Session.assert_fact s
       (Abox.Concept_assertion (Symbol.intern "A", Symbol.intern "a")));
  check "memo survives no-op" true (Session.consistency_cached s = Some true)

let test_session_answer_runs_check_once () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  let p, _ = Session.prepare s ~name:"q" (cq_a ()) in
  let (), coll =
    Obs.collecting (fun () ->
        for _ = 1 to 50 do
          ignore (Session.answer s p)
        done)
  in
  let consistency_spans =
    List.length
      (List.filter
         (fun (sp : Obs.span) -> sp.Obs.name = "chase.consistency")
         (Obs.Collector.spans coll))
  in
  check_int "consistency checked once for 50 answers" 1 consistency_spans

let test_session_load_ontology_drops_prepared () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  let _ = Session.prepare s ~name:"q" (cq_a ()) in
  check "prepared registered" true (Session.find_prepared s "q" <> None);
  Session.load_ontology s (tbox ());
  check "reload drops prepared" true (Session.find_prepared s "q" = None);
  Alcotest.(check (list string)) "no names" [] (Session.prepared_names s)

let test_session_answer_inconsistent_convention () =
  let s = Session.create () in
  Session.load_ontology s
    (Parse.ontology_of_string "A(x), B(x) -> false\nA(x) -> C(x)");
  Session.load_data s (Parse.data_of_string "A(a) B(a) C(b)");
  let p, _ = Session.prepare s ~name:"q" (Parse.query_of_string "q(x) <- C(x)") in
  let answers = Session.answer s p in
  (* inconsistent (T, A): every individual is an answer *)
  check_int "all tuples over ind(A)" 2 (List.length answers)

(* ------------------------------------------------------------------ *)
(* Serve *)

let with_temp_file content f =
  let path = Filename.temp_file "obda_service" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let first = function
  | line :: _ -> line
  | [] -> Alcotest.fail "expected at least one response line"

let test_serve_every_verb () =
  with_temp_file tbox_text (fun onto_file ->
      with_temp_file "A(a) R(a,b)" (fun data_file ->
          let s = Session.create () in
          let exec line = fst (Serve.handle_line s line) in
          check "load ontology OK" true
            (String.length (first (exec ("LOAD ONTOLOGY " ^ onto_file))) > 2);
          check_str "load data" "OK data atoms=2 individuals=2"
            (first (exec ("LOAD DATA " ^ data_file)));
          let prep = first (exec "PREPARE q1 q(x) <- A(x)") in
          check "prepare miss" true
            (String.length prep > 0
            && String.sub prep 0 2 = "OK"
            && String.length prep > 30);
          (match exec "ANSWER q1" with
          | status :: tuples ->
            check_str "answer status" "OK answers=2" status;
            Alcotest.(check (list string))
              "tuples" [ "a"; "b" ] (List.sort compare tuples)
          | [] -> Alcotest.fail "no answer response");
          check_str "assert" "OK asserted added=1 atoms=3"
            (first (exec "ASSERT A(c)"));
          check_str "answer sees the new fact" "OK answers=3"
            (first (exec "ANSWER q1"));
          check_str "retract" "OK retracted removed=1 atoms=2"
            (first (exec "RETRACT A(c)"));
          (match exec "STATS" with
          | status :: kvs ->
            check_str "stats status" "OK stats=14" status;
            check "stats payload lines" true (List.length kvs = 14)
          | [] -> Alcotest.fail "no stats response");
          (* boolean query *)
          ignore (exec "PREPARE b q() <- A(x)");
          Alcotest.(check (list string))
            "boolean answer" [ "OK boolean=true" ] (exec "ANSWER b");
          let lines, stop = Serve.handle_line s "QUIT" in
          check "quit stops" true stop;
          Alcotest.(check (list string)) "quit response" [ "OK bye" ] lines))

let err_class line =
  (* "ERR class=parse msg=..." -> "parse" *)
  match String.split_on_char ' ' line with
  | "ERR" :: kv :: _ when String.length kv > 6 && String.sub kv 0 6 = "class=" ->
    String.sub kv 6 (String.length kv - 6)
  | _ -> Alcotest.failf "expected an ERR line, got %S" line

let test_serve_err_leaves_session_usable () =
  let s = Session.create ~budget:(Budget.create ~max_steps:1 ()) () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  (* the rewrite exhausts the 1-step request sub-budget -> in-protocol ERR *)
  let lines, stop = Serve.handle_line s "PREPARE q q(x) <- A(x)" in
  check_str "budget error class" "budget" (err_class (first lines));
  check "budget error does not stop the loop" false stop;
  (* the session survives: requests that fit the per-request allowance
     still succeed (each request gets a FRESH sub-budget) *)
  let lines, _ = Serve.handle_line s "STATS" in
  check_str "stats after failed request" "OK stats=14" (first lines);
  (* parse errors in payloads are in-protocol too *)
  let lines, _ = Serve.handle_line s "ASSERT A(" in
  check_str "payload parse error" "parse" (err_class (first lines));
  let lines, _ = Serve.handle_line s "ANSWER nosuch" in
  check_str "unknown prepared name" "internal" (err_class (first lines))

let test_serve_prepare_once_answer_many () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  let (), coll =
    Obs.collecting (fun () ->
        for _ = 1 to 100 do
          let lines, _ = Serve.handle_line s "PREPARE q q(x) <- A(x)" in
          check "prepare OK" true (String.sub (first lines) 0 2 = "OK");
          let lines, _ = Serve.handle_line s "ANSWER q" in
          check_str "answer OK" "OK answers=2" (first lines)
        done)
  in
  (* the acceptance contract: one rewrite for the whole session *)
  check_int "exactly one cache miss" 1
    (Obs.Collector.counter coll "service.cache.miss");
  check_int "99 cache hits" 99
    (Obs.Collector.counter coll "service.cache.hit");
  check_int "no evictions" 0
    (Obs.Collector.counter coll "service.cache.evict");
  check_int "session cache agrees (miss)" 1 (Cache.misses (Session.cache s));
  check_int "session cache agrees (hit)" 99 (Cache.hits (Session.cache s));
  (* every request ran under its own service.request span *)
  let request_spans =
    List.filter
      (fun (sp : Obs.span) -> sp.Obs.name = "service.request")
      (Obs.Collector.spans coll)
  in
  check_int "one span per request" 200 (List.length request_spans)

let test_serve_digest_shares_cache_across_names () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  (* same OMQ modulo atom order and name: one cache entry *)
  let _ = fst (Serve.handle_line s "PREPARE q1 q(x) <- A(x), R(x,y)") in
  let _ = fst (Serve.handle_line s "PREPARE q2 q(x) <- R(x,y), A(x)") in
  check_int "one cache entry for both names" 1 (Cache.length (Session.cache s));
  check_int "second prepare hit" 1 (Cache.hits (Session.cache s));
  Alcotest.(check (list string))
    "both names registered" [ "q1"; "q2" ] (Session.prepared_names s)

(* ------------------------------------------------------------------ *)
(* CRLF input and BATCH *)

let test_serve_crlf_input () =
  with_temp_file tbox_text (fun onto_file ->
      let script =
        String.concat "\r\n"
          [
            "LOAD ONTOLOGY " ^ onto_file;
            "PREPARE q q(x) <- A(x)";
            "ANSWER q";
            "QUIT";
            "";
          ]
      in
      with_temp_file script (fun script_file ->
          with_temp_file "" (fun out_file ->
              let s = Session.create () in
              Session.load_data s (abox ());
              let ic = open_in_bin script_file in
              let oc = open_out out_file in
              Fun.protect
                ~finally:(fun () ->
                  close_in_noerr ic;
                  close_out_noerr oc)
                (fun () -> Serve.run_channels s ic oc);
              let lines =
                In_channel.with_open_text out_file In_channel.input_lines
              in
              check "no ERR despite CRLF line endings" true
                (List.for_all
                   (fun l ->
                     not (String.length l >= 3 && String.sub l 0 3 = "ERR"))
                   lines);
              check "query answered" true
                (List.mem "OK answers=2" lines);
              check "loop reached QUIT" true
                (match List.rev lines with "OK bye" :: _ -> true | _ -> false))))

let test_protocol_batch () =
  (match ok_some "BATCH q1 q2 q1" with
  | Protocol.Batch names ->
    Alcotest.(check (list string)) "names in order" [ "q1"; "q2"; "q1" ] names
  | _ -> Alcotest.fail "expected Batch");
  (match ok_some "batch  q1" with
  | Protocol.Batch names ->
    Alcotest.(check (list string))
      "single name, case-insensitive verb" [ "q1" ] names
  | _ -> Alcotest.fail "expected Batch");
  check "BATCH without names is an error" true
    (match Protocol.parse "BATCH" with Error _ -> true | _ -> false)

(* One session per worker count: prepare two queries (one boolean), read
   their individual ANSWER responses, and require the BATCH response to be
   exactly "OK batch=N" followed by those responses retagged with
   "name=..." — in request order, byte for byte, sequential or pooled. *)
let test_serve_batch_matches_individual () =
  let run jobs =
    let s = Session.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Session.close s)
      (fun () ->
        Session.load_ontology s (tbox ());
        Session.load_data s (abox ());
        ignore (Serve.handle_line s "PREPARE q1 q(x) <- A(x)");
        ignore (Serve.handle_line s "PREPARE qb q() <- R(x,y)");
        let individual name = fst (Serve.handle_line s ("ANSWER " ^ name)) in
        let q1 = individual "q1" and qb = individual "qb" in
        (fst (Serve.handle_line s "BATCH q1 qb q1"), q1, qb))
  in
  let retag name = function
    | status :: tuples
      when String.length status > 3 && String.sub status 0 3 = "OK " ->
      Printf.sprintf "OK name=%s %s" name
        (String.sub status 3 (String.length status - 3))
      :: tuples
    | other -> other
  in
  List.iter
    (fun jobs ->
      let batch, q1, qb = run jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "batch at jobs=%d matches individual answers" jobs)
        (("OK batch=3" :: retag "q1" q1) @ retag "qb" qb @ retag "q1" q1)
        batch)
    [ 1; 2 ]

let test_serve_batch_errors () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  ignore (Serve.handle_line s "PREPARE q1 q(x) <- A(x)");
  let lines, stop = Serve.handle_line s "BATCH q1 nosuch" in
  check "unknown name is in-protocol" false stop;
  check_str "names resolve before anything evaluates" "internal"
    (err_class (first lines));
  (* the session survives the failed batch *)
  check_str "session still answers" "OK batch=1"
    (first (fst (Serve.handle_line s "BATCH q1")))

let test_serve_batch_fault_armed_forces_sequential () =
  (* with a pool, batch queries run on worker domains with telemetry off;
     an armed fault plan must force the sequential observed path so
     activation counts stay deterministic *)
  let s = Session.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Session.close s)
    (fun () ->
      Session.load_ontology s (tbox ());
      Session.load_data s (abox ());
      ignore (Serve.handle_line s "PREPARE q1 q(x) <- A(x)");
      check "consistency settled before collecting" true (Session.consistent s);
      let eval_spans f =
        let (), coll = Obs.collecting f in
        List.length
          (List.filter
             (fun (sp : Obs.span) -> sp.Obs.name = "eval.ndl")
             (Obs.Collector.spans coll))
      in
      let pooled =
        eval_spans (fun () -> ignore (Serve.handle_line s "BATCH q1 q1"))
      in
      check_int "pooled batch keeps workers off the global sink" 0 pooled;
      match Fault.parse_plan "service.request@999" with
      | Error e -> Alcotest.fail e
      | Ok plan ->
        Fault.arm plan;
        Fun.protect ~finally:Fault.disarm (fun () ->
            let sequential =
              eval_spans (fun () -> ignore (Serve.handle_line s "BATCH q1 q1"))
            in
            check_int "armed plan forces the observed sequential path" 2
              sequential))

(* ------------------------------------------------------------------ *)
(* Snapshots and the stats hook *)

let test_session_freeze_isolation () =
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  let p, _ = Session.prepare s ~name:"q" (cq_a ()) in
  let snap = Session.freeze s in
  check_int "frozen answers" 2 (List.length (Session.answer_at s p snap));
  check_int "writer adds one fact" 1
    (fst
       (Session.assert_facts s
          [ Abox.Concept_assertion (Symbol.intern "A", Symbol.intern "c") ]));
  (* the snapshot is immune to the concurrent write... *)
  check_int "snapshot still answers 2" 2
    (List.length (Session.answer_at s p snap));
  (* ...while a fresh freeze sees it *)
  check_int "live store answers 3" 3 (List.length (Session.answer s p));
  match Session.frozen_span s with
  | Some (lo, hi) ->
    check "span covers both served revisions" true (hi > lo)
  | None -> Alcotest.fail "no frozen span after two freezes"

let test_session_stats_hook () =
  let s = Session.create () in
  check_int "plain session: exactly 14 rows" 14 (List.length (Session.stats s));
  Session.set_stats_hook s (fun () -> [ ("x.one", "1"); ("x.two", "2") ]);
  let rows = Session.stats s in
  check_int "hook rows appended" 16 (List.length rows);
  check_str "base rows first" "requests" (fst (List.hd rows));
  check_str "hook rows last" "x.two" (fst (List.hd (List.rev rows)))

let test_budget_sub_timeout () =
  let b = Budget.create ~timeout:10. () in
  (match Budget.wall_remaining (Budget.sub ~timeout:0.05 b) with
  | Some r -> check "tighter request deadline wins" true (r <= 0.05 +. 1e-3)
  | None -> Alcotest.fail "sub-budget lost the deadline");
  (match Budget.wall_remaining (Budget.sub ~timeout:30. b) with
  | Some r -> check "parent deadline kept when tighter" true (r <= 10.)
  | None -> Alcotest.fail "sub-budget lost the deadline");
  match Budget.wall_remaining (Budget.sub ~timeout:0.05 Budget.none) with
  | Some r -> check "timeout applies to an unlimited parent" true (r <= 0.05 +. 1e-3)
  | None -> Alcotest.fail "timeout dropped on unlimited parent"

(* Property: every answer set observed by a reader racing the writers
   equals the sequential evaluation at SOME revision the writer actually
   produced — the snapshot-isolation acceptance criterion. *)
let test_race_readers_vs_writers () =
  let module Pool = Obda_runtime.Pool in
  let n_ops = 40 in
  let readers = 3 in
  let reads_per_reader = 60 in
  let mk () =
    let s = Session.create () in
    Session.load_ontology s (tbox ());
    Session.load_data s (abox ());
    s
  in
  let fact i =
    Abox.Concept_assertion (Symbol.intern "A", Symbol.intern (Printf.sprintf "w%d" i))
  in
  (* op k asserts a fresh fact (even k) or retracts the previous one (odd
     k): every op is effective, so the revision sequence is dense and
     identical across replays *)
  let apply s k =
    if k mod 2 = 0 then ignore (Session.assert_facts s [ fact k ])
    else ignore (Session.retract_facts s [ fact (k - 1) ])
  in
  (* sequential replay: expected sorted answer set per revision *)
  let expected = Hashtbl.create 64 in
  let ref_s = mk () in
  let ref_p, _ = Session.prepare ref_s ~name:"q" (cq_a ()) in
  let record () =
    let snap = Session.freeze ref_s in
    Hashtbl.replace expected
      (Session.snapshot_revision snap)
      (List.sort compare (Session.answer_at ref_s ref_p snap))
  in
  record ();
  for k = 0 to n_ops - 1 do
    apply ref_s k;
    record ()
  done;
  (* the race: one writer domain against [readers] reader domains *)
  let s = mk () in
  let p, _ = Session.prepare s ~name:"q" (cq_a ()) in
  let observations = Array.make readers [] in
  Pool.with_pool ~jobs:(readers + 1) (fun pool ->
      Pool.run pool (fun w ->
          if w = 0 then
            for k = 0 to n_ops - 1 do
              apply s k
            done
          else begin
            let mine = ref [] in
            for _ = 1 to reads_per_reader do
              let snap = Session.freeze s in
              let answers = Session.answer_at s p snap in
              mine :=
                (Session.snapshot_revision snap, List.sort compare answers)
                :: !mine
            done;
            observations.(w - 1) <- !mine
          end));
  let total = ref 0 and bad = ref [] in
  Array.iter
    (List.iter (fun (rev, answers) ->
         incr total;
         match Hashtbl.find_opt expected rev with
         | Some e when e = answers -> ()
         | Some e ->
           bad :=
             Printf.sprintf "rev %d: %d answers, want %d" rev
               (List.length answers) (List.length e)
             :: !bad
         | None -> bad := Printf.sprintf "rev %d never produced" rev :: !bad))
    observations;
  check ("every observation matches sequential replay at its revision: "
         ^ String.concat "; " !bad)
    true (!bad = []);
  check_int "all reads accounted for" (readers * reads_per_reader) !total

(* ------------------------------------------------------------------ *)
(* The network server, in-process over a Unix socket *)

module Server = Obda_service.Server
module Client = Obda_service.Client

let with_server ?connections ?backlog ?max_inflight ?idle_timeout f =
  let session = Session.create () in
  Session.load_ontology session (tbox ());
  Session.load_data session (abox ());
  let path = Filename.temp_file "obda_test" ".sock" in
  Sys.remove path;
  let address = Server.Unix_socket path in
  let server =
    Server.create ?connections ?backlog ?max_inflight ?idle_timeout address
      session
  in
  let t = Thread.create (fun () -> ignore (Server.run server)) () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join t;
      Session.close session)
    (fun () -> f address server)

let starts_with prefix s = String.starts_with ~prefix s

let test_server_end_to_end () =
  with_server (fun address server ->
      let c = Client.connect address in
      check "prepare over the wire" true
        (starts_with "OK prepared" (first (Client.request c "PREPARE q q(x) <- A(x)")));
      (match Client.request c "ANSWER q" with
      | status :: tuples ->
        check_str "answer status" "OK answers=2" status;
        check_int "tuples follow" 2 (List.length tuples)
      | [] -> Alcotest.fail "no answer response");
      check_str "assert" "OK asserted added=1 atoms=3"
        (first (Client.request c "ASSERT A(c)"));
      (match Client.request c "STATS" with
      | status :: rows ->
        check_str "stats with the server rows" "OK stats=25" status;
        check "snapshot-span row present" true
          (List.exists (starts_with "server.snapshot.revisions ") rows);
        check "shed counter present and zero" true
          (List.mem "server.requests.shed 0" rows);
        check "latency quantile rows present" true
          (List.exists (starts_with "server.p50-ms ") rows
          && List.exists (starts_with "server.p95-ms ") rows
          && List.exists (starts_with "server.p99-ms ") rows)
      | [] -> Alcotest.fail "no stats response");
      (* a second concurrent connection shares the session *)
      let c2 = Client.connect address in
      check_str "second connection sees the assert" "OK answers=3"
        (first (Client.request c2 "ANSWER q"));
      (* EOF without QUIT: clean end, session stays reusable *)
      Client.close c;
      Client.close c2;
      let c3 = Client.connect address in
      check_str "session reusable after bare EOF" "OK answers=3"
        (first (Client.request c3 "ANSWER q"));
      Alcotest.(check (list string))
        "quit" [ "OK bye" ] (Client.request c3 "QUIT");
      Client.close c3;
      ignore server)

let test_server_overload () =
  (* max_inflight = 0: every real request is shed, in protocol *)
  with_server ~max_inflight:0 (fun address server ->
      let c = Client.connect address in
      let shed = first (Client.request c "STATS") in
      check "request shed with ERR class=overloaded" true
        (starts_with "ERR class=overloaded" shed);
      check "connection survives the shed" true
        (starts_with "ERR class=overloaded" (first (Client.request c "ANSWER q")));
      let rows = Server.stats_rows server in
      check "shed counter advanced" true
        (match List.assoc_opt "server.requests.shed" rows with
        | Some n -> int_of_string n >= 2
        | None -> false);
      (* QUIT is exempt from admission: clients can always leave *)
      Alcotest.(check (list string))
        "QUIT exempt from admission" [ "OK bye" ] (Client.request c "QUIT");
      Client.close c)

let test_server_idle_timeout () =
  with_server ~idle_timeout:0.3 (fun address _server ->
      let c = Client.connect address in
      (* send nothing: the server closes the connection with a budget ERR *)
      (match Client.read_response c with
      | line :: _ -> check "idle ERR line" true (starts_with "ERR class=budget" line)
      | [] -> Alcotest.fail "connection closed without the idle ERR");
      check "EOF after the idle close" true (Client.read_response c = []);
      Client.close c)

let test_server_graceful_stop () =
  let session = Session.create () in
  Session.load_ontology session (tbox ());
  Session.load_data session (abox ());
  let path = Filename.temp_file "obda_test" ".sock" in
  Sys.remove path;
  let address = Server.Unix_socket path in
  let server = Server.create ~connections:2 address session in
  let code = ref (-2) in
  let t = Thread.create (fun () -> code := Server.run server) () in
  let c = Client.connect address in
  check "served before the stop" true
    (starts_with "OK stats=" (first (Client.request c "STATS")));
  Server.request_stop server ~code:143;
  Thread.join t;
  check_int "run returns the requested code" 143 !code;
  check "socket path unlinked on the way out" false (Sys.file_exists path);
  Client.close c;
  Session.close session

(* METRICS: the Prometheus-text exposition must announce its own line
   count, parse line by line, and keep every histogram family internally
   consistent (cumulative buckets ending at +Inf = _count). *)
let test_metrics_roundtrip () =
  let module Histogram = Obda_obs.Histogram in
  let prev = Histogram.recording () in
  Histogram.set_enabled true;
  Fun.protect ~finally:(fun () -> Histogram.set_enabled prev) @@ fun () ->
  let s = Session.create () in
  Session.load_ontology s (tbox ());
  Session.load_data s (abox ());
  let exec line = fst (Serve.handle_line s line) in
  ignore (exec "PREPARE q1 q(x) <- A(x)");
  ignore (exec "ANSWER q1");
  ignore (exec "ANSWER q1");
  ignore (exec "ASSERT A(zz)");
  match exec "METRICS" with
  | [] -> Alcotest.fail "no METRICS response"
  | status :: payload ->
    let n =
      match String.split_on_char '=' status with
      | [ "OK metrics"; n ] -> int_of_string n
      | _ -> Alcotest.failf "unexpected METRICS status %S" status
    in
    check_int "announced line count matches payload" n (List.length payload);
    check "payload is non-trivial" true (n > 20);
    (* re-parse every line; accumulate histogram families *)
    let buckets = Hashtbl.create 16
    and counts = Hashtbl.create 16
    and sums = Hashtbl.create 16 in
    List.iter
      (fun line ->
        check "no blank payload lines" true (line <> "");
        if line.[0] <> '#' then begin
          let i =
            match String.rindex_opt line ' ' with
            | Some i -> i
            | None -> Alcotest.failf "unparsable metrics line %S" line
          in
          let key = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          let v =
            match float_of_string_opt v with
            | Some v -> v
            | None -> Alcotest.failf "non-numeric value in %S" line
          in
          match String.index_opt key '{' with
          | Some brace
            when brace >= 7 && String.sub key (brace - 7) 7 = "_bucket" ->
            let family = String.sub key 0 (brace - 7) in
            let le = String.sub key brace (String.length key - brace) in
            let cums =
              Option.value ~default:[] (Hashtbl.find_opt buckets family)
            in
            Hashtbl.replace buckets family ((le, v) :: cums)
          | _ ->
            let suffix tbl suf =
              let n = String.length suf in
              if
                String.length key > n
                && String.sub key (String.length key - n) n = suf
              then begin
                Hashtbl.replace tbl (String.sub key 0 (String.length key - n)) v;
                true
              end
              else false
            in
            ignore (suffix counts "_count" || suffix sums "_sum")
        end)
      payload;
    check "at least one histogram family" true (Hashtbl.length buckets > 0);
    check "serve.answer.latency exposed" true
      (Hashtbl.mem buckets "obda_serve_answer_latency");
    Hashtbl.iter
      (fun family cums_rev ->
        let cums = List.rev cums_rev in
        (* cumulative counts never decrease in emission order *)
        ignore
          (List.fold_left
             (fun prev (_, v) ->
               check (family ^ " cumulative non-decreasing") true (v >= prev);
               v)
             0. cums);
        (match List.rev cums with
        | (le, last) :: _ ->
          check (family ^ " ends at +Inf") true
            (le = "{le=\"+Inf\"}" || le = "{le=\"+Inf\"} ");
          check
            (family ^ " count consistent with +Inf bucket")
            true
            (Hashtbl.find_opt counts family = Some last)
        | [] -> Alcotest.failf "%s has no buckets" family);
        check (family ^ " has a _sum") true (Hashtbl.mem sums family))
      buckets;
    (* the ANSWER latencies we just recorded are in there *)
    (match Hashtbl.find_opt counts "obda_serve_answer_latency" with
    | Some c -> check "answer latency count >= 2" true (c >= 2.)
    | None -> Alcotest.fail "obda_serve_answer_latency_count missing");
    Session.close s

(* ------------------------------------------------------------------ *)
(* access-log resilience *)

let test_access_log_write_failure () =
  let s = Session.create () in
  Session.load_data s (abox ());
  let calls = ref 0 in
  Serve.set_access_log (fun _ ->
      incr calls;
      raise (Sys_error "disk full"));
  Fun.protect
    ~finally:(fun () ->
      Serve.clear_access_log ();
      Session.close s)
    (fun () ->
      let errors_before = Serve.access_log_error_count () in
      (* the failing writer must not fail the request *)
      let lines, stop = Serve.handle_line s "ASSERT A(x)" in
      check "request still succeeds" true
        (match lines with l :: _ -> String.sub l 0 2 = "OK" | [] -> false);
      check "loop continues" false stop;
      check_int "writer was attempted once" 1 !calls;
      check_int "failure counted" (errors_before + 1)
        (Serve.access_log_error_count ());
      (* the log is disabled after the failure: no further attempts *)
      ignore (Serve.handle_line s "ASSERT A(y)");
      check_int "logging disabled after the failure" 1 !calls;
      check_int "no further failures counted" (errors_before + 1)
        (Serve.access_log_error_count ()))

let test_serve_ping_and_checkpoint_without_wal () =
  let s = Session.create () in
  Fun.protect
    ~finally:(fun () -> Session.close s)
    (fun () ->
      Session.load_data s (abox ());
      (match fst (Serve.handle_line s "PING") with
      | [ pong ] ->
        check "pong carries the revision" true
          (String.starts_with ~prefix:"OK pong rev=2 uptime=" pong)
      | other ->
        Alcotest.failf "expected one pong line, got %d" (List.length other));
      (* CHECKPOINT without --data-dir is a typed in-protocol error *)
      let lines, stop = Serve.handle_line s "CHECKPOINT" in
      check_str "checkpoint without durability" "internal"
        (err_class (first lines));
      check "loop continues" false stop)

let suites =
  [
    ( "service",
      [
        Alcotest.test_case "protocol verbs" `Quick test_protocol_verbs;
        Alcotest.test_case "protocol skips and errors" `Quick
          test_protocol_skips_and_errors;
        Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "cache weight bound" `Quick test_cache_weight_bound;
        Alcotest.test_case "cache counters reach obs" `Quick
          test_cache_counters_reach_obs;
        Alcotest.test_case "session consistency memo" `Quick
          test_session_consistency_memo;
        Alcotest.test_case "session answers run check once" `Quick
          test_session_answer_runs_check_once;
        Alcotest.test_case "load ontology drops prepared" `Quick
          test_session_load_ontology_drops_prepared;
        Alcotest.test_case "inconsistent-data convention" `Quick
          test_session_answer_inconsistent_convention;
        Alcotest.test_case "serve: every verb" `Quick test_serve_every_verb;
        Alcotest.test_case "serve: ERR leaves session usable" `Quick
          test_serve_err_leaves_session_usable;
        Alcotest.test_case "serve: prepare once, answer many" `Quick
          test_serve_prepare_once_answer_many;
        Alcotest.test_case "serve: digest shares cache across names" `Quick
          test_serve_digest_shares_cache_across_names;
        Alcotest.test_case "cache MRU fast path" `Quick test_cache_mru_fast_path;
        Alcotest.test_case "cache failed build counts nothing" `Quick
          test_cache_failed_build_counts_nothing;
        Alcotest.test_case "cache fault site counts nothing" `Quick
          test_cache_fault_site_counts_nothing;
        Alcotest.test_case "serve: CRLF input" `Quick test_serve_crlf_input;
        Alcotest.test_case "protocol BATCH" `Quick test_protocol_batch;
        Alcotest.test_case "serve: BATCH matches individual answers" `Quick
          test_serve_batch_matches_individual;
        Alcotest.test_case "serve: BATCH errors" `Quick test_serve_batch_errors;
        Alcotest.test_case "serve: BATCH under an armed fault plan" `Quick
          test_serve_batch_fault_armed_forces_sequential;
        Alcotest.test_case "session: freeze isolation" `Quick
          test_session_freeze_isolation;
        Alcotest.test_case "session: stats hook" `Quick test_session_stats_hook;
        Alcotest.test_case "budget: per-request sub-deadline" `Quick
          test_budget_sub_timeout;
        Alcotest.test_case "race: readers vs writers (snapshot property)"
          `Quick test_race_readers_vs_writers;
        Alcotest.test_case "server: end to end over a socket" `Quick
          test_server_end_to_end;
        Alcotest.test_case "server: admission control sheds in protocol"
          `Quick test_server_overload;
        Alcotest.test_case "server: idle timeout" `Quick
          test_server_idle_timeout;
        Alcotest.test_case "server: graceful stop returns the code" `Quick
          test_server_graceful_stop;
        Alcotest.test_case "METRICS exposition round-trip" `Quick
          test_metrics_roundtrip;
        Alcotest.test_case "access log absorbs write failures" `Quick
          test_access_log_write_failure;
        Alcotest.test_case "PING and CHECKPOINT without durability" `Quick
          test_serve_ping_and_checkpoint_without_wal;
      ] );
  ]
