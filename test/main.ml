let () =
  Alcotest.run "obda"
    (Test_ontology.suites @ Test_cq.suites @ Test_data.suites
   @ Test_chase.suites @ Test_reductions.suites @ Test_ndl.suites @ Test_rewriting.suites @ Test_parse.suites @ Test_properties.suites @ Test_appendix.suites @ Test_extensions.suites @ Test_internals.suites @ Test_ucq_internals.suites @ Test_mapping.suites
   @ Test_runtime.suites @ Test_obs.suites @ Test_service.suites
   @ Test_wal.suites)
