(* The telemetry layer: span nesting, counter/gauge aggregation, the
   JSON-lines sink (round-tripped through our own parser), the disabled
   fast path, and span outcomes under typed errors. *)

module Obs = Obda_obs.Obs
module Json = Obda_obs.Json
module Error = Obda_runtime.Error

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let (), c =
    Obs.collecting (fun () ->
        Obs.with_span "root" (fun () ->
            Obs.with_span "child1" (fun () -> ());
            Obs.with_span "child2" (fun () ->
                Obs.with_span "grandchild" (fun () -> ()))))
  in
  (* completion order: a parent closes after its children *)
  let names = List.map (fun (s : Obs.span) -> s.Obs.name) (Obs.Collector.spans c) in
  Alcotest.(check (list string))
    "completion order"
    [ "child1"; "grandchild"; "child2"; "root" ]
    names;
  let find name =
    List.find (fun (s : Obs.span) -> s.Obs.name = name) (Obs.Collector.spans c)
  in
  let root = find "root" in
  let child1 = find "child1" in
  let child2 = find "child2" in
  let grandchild = find "grandchild" in
  check "root has no parent" true (root.Obs.parent = None);
  check_int "root depth" 0 root.Obs.depth;
  check "child1 parented to root" true (child1.Obs.parent = Some root.Obs.id);
  check "child2 parented to root" true (child2.Obs.parent = Some root.Obs.id);
  check "grandchild parented to child2" true
    (grandchild.Obs.parent = Some child2.Obs.id);
  check_int "grandchild depth" 2 grandchild.Obs.depth;
  List.iter
    (fun (s : Obs.span) ->
      check "span completed" true (s.Obs.outcome = Obs.Completed);
      check "span duration non-negative" true (s.Obs.duration >= 0.))
    (Obs.Collector.spans c)

let test_counter_aggregation () =
  let (), c =
    Obs.collecting (fun () ->
        Obs.incr "t.hits";
        Obs.count "t.hits" 4;
        Obs.incr "t.hits";
        Obs.incr "t.other";
        (* gauges: last write wins *)
        Obs.set_int "t.gauge" 3;
        Obs.set_int "t.gauge" 42;
        Obs.set_float "t.ratio" 0.5;
        check_int "counter readable while collecting" 6
          (Obs.counter_value "t.hits"))
  in
  check_int "hits total" 6 (Obs.Collector.counter c "t.hits");
  check_int "other total" 1 (Obs.Collector.counter c "t.other");
  check_int "absent counter is 0" 0 (Obs.Collector.counter c "t.absent");
  check "gauge last write wins" true
    (Obs.Collector.gauge_int c "t.gauge" = Some 42);
  check "float gauge" true (Obs.Collector.gauge_float c "t.ratio" = Some 0.5);
  (* metrics are flushed sorted by name *)
  let names = List.map (fun (n, _, _) -> n) (Obs.Collector.metrics c) in
  Alcotest.(check (list string))
    "sorted metric names"
    [ "t.gauge"; "t.hits"; "t.other"; "t.ratio" ]
    names

let test_json_lines_roundtrip () =
  let buf = Buffer.create 256 in
  let sink = Obs.json_sink (fun line -> Buffer.add_string buf (line ^ "\n")) in
  Obs.install sink;
  Obs.with_span "outer" ~attrs:[ ("algorithm", "Tw") ] (fun () ->
      Obs.with_span "inner" (fun () -> Obs.incr "t.events"));
  Obs.set_int "t.final" 7;
  Obs.uninstall ();
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check "several lines written" true (List.length lines >= 4);
  let parsed =
    List.map
      (fun line ->
        match Json.parse line with
        | Ok v -> v
        | Error e -> Alcotest.failf "unparsable trace line %S: %s" line e)
      lines
  in
  let mem k v = Option.value ~default:Json.Null (Json.member k v) in
  let typ v = Json.to_string_opt (mem "type" v) in
  let spans = List.filter (fun v -> typ v = Some "span") parsed in
  let metrics = List.filter (fun v -> typ v = Some "metric") parsed in
  check_int "two spans" 2 (List.length spans);
  check "every line is a span or metric" true
    (List.length spans + List.length metrics = List.length parsed);
  (* the inner span closes first and points at the outer one *)
  (match spans with
  | [ inner; outer ] ->
    check "inner name" true
      (Json.to_string_opt (mem "name" inner) = Some "inner");
    check "outer name" true
      (Json.to_string_opt (mem "name" outer) = Some "outer");
    check "inner.parent = outer.id" true
      (Json.to_int_opt (mem "parent" inner)
      = Json.to_int_opt (mem "id" outer));
    check "outcome ok" true
      (Json.to_string_opt (mem "outcome" outer) = Some "ok");
    check "attrs survive" true
      (Json.to_string_opt (mem "algorithm" (mem "attrs" outer))
      = Some "Tw")
  | _ -> Alcotest.fail "expected exactly two span lines");
  let metric name =
    List.find_opt
      (fun v -> Json.to_string_opt (mem "name" v) = Some name)
      metrics
  in
  (match metric "t.events" with
  | Some v ->
    check "counter kind" true
      (Json.to_string_opt (mem "kind" v) = Some "counter");
    check "counter value" true (Json.to_int_opt (mem "value" v) = Some 1)
  | None -> Alcotest.fail "t.events metric missing");
  match metric "t.final" with
  | Some v ->
    check "gauge kind" true
      (Json.to_string_opt (mem "kind" v) = Some "gauge");
    check "gauge value" true (Json.to_int_opt (mem "value" v) = Some 7)
  | None -> Alcotest.fail "t.final metric missing"

let test_disabled_noop () =
  check "disabled by default" false (Obs.enabled ());
  (* recording is a no-op and allocates no visible state *)
  Obs.incr "t.ghost";
  Obs.count "t.ghost" 10;
  Obs.set_int "t.ghost_gauge" 5;
  check_int "counter invisible when disabled" 0 (Obs.counter_value "t.ghost");
  check "gauge invisible when disabled" true
    (Obs.gauge_value "t.ghost_gauge" = None);
  check_int "with_span is transparent" 41 (Obs.with_span "t" (fun () -> 41));
  (* ...and nothing recorded while disabled leaks into a later collector *)
  let (), c = Obs.collecting (fun () -> ()) in
  check_int "no leakage" 0 (Obs.Collector.counter c "t.ghost");
  check "no spans" true (Obs.Collector.spans c = [])

let test_span_outcome_on_error () =
  let c = Obs.Collector.create () in
  Obs.install (Obs.Collector.sink c);
  (try
     Obs.with_span "doomed" (fun () ->
         Error.not_applicable ~algorithm:"X" "shape is wrong")
   with Error.Obda_error (Error.Not_applicable _) -> ());
  (try Obs.with_span "broken" (fun () -> failwith "boom") with Failure _ -> ());
  (try Obs.with_span "foreign" (fun () -> raise Exit) with Exit -> ());
  Obs.uninstall ();
  check "disabled again after uninstall" false (Obs.enabled ());
  match Obs.Collector.spans c with
  | [ doomed; broken; foreign ] ->
    check "typed error class" true
      (doomed.Obs.outcome = Obs.Failed "not-applicable");
    check "Failure maps to the internal class" true
      (broken.Obs.outcome = Obs.Failed "internal");
    check "foreign exception class" true
      (foreign.Obs.outcome = Obs.Failed "exception")
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_collecting_restores_outer_sink () =
  let outer = Obs.Collector.create () in
  Obs.install (Obs.Collector.sink outer);
  Obs.incr "t.outer";
  let (), inner = Obs.collecting (fun () -> Obs.incr "t.inner") in
  Obs.incr "t.outer";
  Obs.uninstall ();
  check_int "inner sees only inner" 0 (Obs.Collector.counter inner "t.outer");
  check_int "inner counted" 1 (Obs.Collector.counter inner "t.inner");
  check_int "outer kept counting" 2 (Obs.Collector.counter outer "t.outer");
  check_int "outer missed the bracket" 0 (Obs.Collector.counter outer "t.inner")

(* ------------------------------------------------------------------ *)
(* the zero-dependency JSON parser used by the sinks and the corpus *)

let test_json_parser () =
  let roundtrip v = Json.parse (Json.to_string v) in
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.String "a \"quoted\" line\nwith\tescapes";
      Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ];
      Json.Assoc
        [ ("name", Json.String "ndl.size"); ("value", Json.Int 65) ];
    ]
  in
  List.iter
    (fun v ->
      match roundtrip v with
      | Ok v' ->
        check_str "roundtrip" (Json.to_string v) (Json.to_string v')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    cases;
  check "trailing garbage rejected" true
    (match Json.parse "{\"a\":1} x" with Error _ -> true | Ok _ -> false);
  check "truncated object rejected" true
    (match Json.parse "{\"a\":" with Error _ -> true | Ok _ -> false);
  check "unicode escapes decode" true
    (match Json.parse "\"\\u0041\\u00e9\"" with
    | Ok (Json.String "Aé") -> true
    | _ -> false)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "counter aggregation" `Quick
          test_counter_aggregation;
        Alcotest.test_case "json-lines round-trip" `Quick
          test_json_lines_roundtrip;
        Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "span outcome on typed error" `Quick
          test_span_outcome_on_error;
        Alcotest.test_case "collecting restores outer sink" `Quick
          test_collecting_restores_outer_sink;
        Alcotest.test_case "json parser" `Quick test_json_parser;
      ] );
  ]
