(* The telemetry layer: span nesting, counter/gauge aggregation, the
   JSON-lines sink (round-tripped through our own parser), the disabled
   fast path, and span outcomes under typed errors. *)

module Obs = Obda_obs.Obs
module Json = Obda_obs.Json
module Error = Obda_runtime.Error

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let (), c =
    Obs.collecting (fun () ->
        Obs.with_span "root" (fun () ->
            Obs.with_span "child1" (fun () -> ());
            Obs.with_span "child2" (fun () ->
                Obs.with_span "grandchild" (fun () -> ()))))
  in
  (* completion order: a parent closes after its children *)
  let names = List.map (fun (s : Obs.span) -> s.Obs.name) (Obs.Collector.spans c) in
  Alcotest.(check (list string))
    "completion order"
    [ "child1"; "grandchild"; "child2"; "root" ]
    names;
  let find name =
    List.find (fun (s : Obs.span) -> s.Obs.name = name) (Obs.Collector.spans c)
  in
  let root = find "root" in
  let child1 = find "child1" in
  let child2 = find "child2" in
  let grandchild = find "grandchild" in
  check "root has no parent" true (root.Obs.parent = None);
  check_int "root depth" 0 root.Obs.depth;
  check "child1 parented to root" true (child1.Obs.parent = Some root.Obs.id);
  check "child2 parented to root" true (child2.Obs.parent = Some root.Obs.id);
  check "grandchild parented to child2" true
    (grandchild.Obs.parent = Some child2.Obs.id);
  check_int "grandchild depth" 2 grandchild.Obs.depth;
  List.iter
    (fun (s : Obs.span) ->
      check "span completed" true (s.Obs.outcome = Obs.Completed);
      check "span duration non-negative" true (s.Obs.duration >= 0.))
    (Obs.Collector.spans c)

let test_counter_aggregation () =
  let (), c =
    Obs.collecting (fun () ->
        Obs.incr "t.hits";
        Obs.count "t.hits" 4;
        Obs.incr "t.hits";
        Obs.incr "t.other";
        (* gauges: last write wins *)
        Obs.set_int "t.gauge" 3;
        Obs.set_int "t.gauge" 42;
        Obs.set_float "t.ratio" 0.5;
        check_int "counter readable while collecting" 6
          (Obs.counter_value "t.hits"))
  in
  check_int "hits total" 6 (Obs.Collector.counter c "t.hits");
  check_int "other total" 1 (Obs.Collector.counter c "t.other");
  check_int "absent counter is 0" 0 (Obs.Collector.counter c "t.absent");
  check "gauge last write wins" true
    (Obs.Collector.gauge_int c "t.gauge" = Some 42);
  check "float gauge" true (Obs.Collector.gauge_float c "t.ratio" = Some 0.5);
  (* metrics are flushed sorted by name *)
  let names = List.map (fun (n, _, _) -> n) (Obs.Collector.metrics c) in
  Alcotest.(check (list string))
    "sorted metric names"
    [ "t.gauge"; "t.hits"; "t.other"; "t.ratio" ]
    names

let test_json_lines_roundtrip () =
  let buf = Buffer.create 256 in
  let sink = Obs.json_sink (fun line -> Buffer.add_string buf (line ^ "\n")) in
  Obs.install sink;
  Obs.with_span "outer" ~attrs:[ ("algorithm", "Tw") ] (fun () ->
      Obs.with_span "inner" (fun () -> Obs.incr "t.events"));
  Obs.set_int "t.final" 7;
  Obs.uninstall ();
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check "several lines written" true (List.length lines >= 4);
  let parsed =
    List.map
      (fun line ->
        match Json.parse line with
        | Ok v -> v
        | Error e -> Alcotest.failf "unparsable trace line %S: %s" line e)
      lines
  in
  let mem k v = Option.value ~default:Json.Null (Json.member k v) in
  let typ v = Json.to_string_opt (mem "type" v) in
  let spans = List.filter (fun v -> typ v = Some "span") parsed in
  let metrics = List.filter (fun v -> typ v = Some "metric") parsed in
  check_int "two spans" 2 (List.length spans);
  check "every line is a span or metric" true
    (List.length spans + List.length metrics = List.length parsed);
  (* the inner span closes first and points at the outer one *)
  (match spans with
  | [ inner; outer ] ->
    check "inner name" true
      (Json.to_string_opt (mem "name" inner) = Some "inner");
    check "outer name" true
      (Json.to_string_opt (mem "name" outer) = Some "outer");
    check "inner.parent = outer.id" true
      (Json.to_int_opt (mem "parent" inner)
      = Json.to_int_opt (mem "id" outer));
    check "outcome ok" true
      (Json.to_string_opt (mem "outcome" outer) = Some "ok");
    check "attrs survive" true
      (Json.to_string_opt (mem "algorithm" (mem "attrs" outer))
      = Some "Tw")
  | _ -> Alcotest.fail "expected exactly two span lines");
  let metric name =
    List.find_opt
      (fun v -> Json.to_string_opt (mem "name" v) = Some name)
      metrics
  in
  (match metric "t.events" with
  | Some v ->
    check "counter kind" true
      (Json.to_string_opt (mem "kind" v) = Some "counter");
    check "counter value" true (Json.to_int_opt (mem "value" v) = Some 1)
  | None -> Alcotest.fail "t.events metric missing");
  match metric "t.final" with
  | Some v ->
    check "gauge kind" true
      (Json.to_string_opt (mem "kind" v) = Some "gauge");
    check "gauge value" true (Json.to_int_opt (mem "value" v) = Some 7)
  | None -> Alcotest.fail "t.final metric missing"

let test_disabled_noop () =
  check "disabled by default" false (Obs.enabled ());
  (* recording is a no-op and allocates no visible state *)
  Obs.incr "t.ghost";
  Obs.count "t.ghost" 10;
  Obs.set_int "t.ghost_gauge" 5;
  check_int "counter invisible when disabled" 0 (Obs.counter_value "t.ghost");
  check "gauge invisible when disabled" true
    (Obs.gauge_value "t.ghost_gauge" = None);
  check_int "with_span is transparent" 41 (Obs.with_span "t" (fun () -> 41));
  (* ...and nothing recorded while disabled leaks into a later collector *)
  let (), c = Obs.collecting (fun () -> ()) in
  check_int "no leakage" 0 (Obs.Collector.counter c "t.ghost");
  check "no spans" true (Obs.Collector.spans c = [])

let test_span_outcome_on_error () =
  let c = Obs.Collector.create () in
  Obs.install (Obs.Collector.sink c);
  (try
     Obs.with_span "doomed" (fun () ->
         Error.not_applicable ~algorithm:"X" "shape is wrong")
   with Error.Obda_error (Error.Not_applicable _) -> ());
  (try Obs.with_span "broken" (fun () -> failwith "boom") with Failure _ -> ());
  (try Obs.with_span "foreign" (fun () -> raise Exit) with Exit -> ());
  Obs.uninstall ();
  check "disabled again after uninstall" false (Obs.enabled ());
  match Obs.Collector.spans c with
  | [ doomed; broken; foreign ] ->
    check "typed error class" true
      (doomed.Obs.outcome = Obs.Failed "not-applicable");
    check "Failure maps to the internal class" true
      (broken.Obs.outcome = Obs.Failed "internal");
    check "foreign exception class" true
      (foreign.Obs.outcome = Obs.Failed "exception")
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_collecting_restores_outer_sink () =
  let outer = Obs.Collector.create () in
  Obs.install (Obs.Collector.sink outer);
  Obs.incr "t.outer";
  let (), inner = Obs.collecting (fun () -> Obs.incr "t.inner") in
  Obs.incr "t.outer";
  Obs.uninstall ();
  check_int "inner sees only inner" 0 (Obs.Collector.counter inner "t.outer");
  check_int "inner counted" 1 (Obs.Collector.counter inner "t.inner");
  check_int "outer kept counting" 2 (Obs.Collector.counter outer "t.outer");
  check_int "outer missed the bracket" 0 (Obs.Collector.counter outer "t.inner")

(* ------------------------------------------------------------------ *)
(* the zero-dependency JSON parser used by the sinks and the corpus *)

let test_json_parser () =
  let roundtrip v = Json.parse (Json.to_string v) in
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.String "a \"quoted\" line\nwith\tescapes";
      Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ];
      Json.Assoc
        [ ("name", Json.String "ndl.size"); ("value", Json.Int 65) ];
    ]
  in
  List.iter
    (fun v ->
      match roundtrip v with
      | Ok v' ->
        check_str "roundtrip" (Json.to_string v) (Json.to_string v')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    cases;
  check "trailing garbage rejected" true
    (match Json.parse "{\"a\":1} x" with Error _ -> true | Ok _ -> false);
  check "truncated object rejected" true
    (match Json.parse "{\"a\":" with Error _ -> true | Ok _ -> false);
  check "unicode escapes decode" true
    (match Json.parse "\"\\u0041\\u00e9\"" with
    | Ok (Json.String "Aé") -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* the latency histograms and their Prometheus-text exposition *)

module Histogram = Obda_obs.Histogram
module Exposition = Obda_obs.Exposition

let with_histograms f =
  let prev = Histogram.recording () in
  Histogram.set_enabled true;
  Fun.protect ~finally:(fun () -> Histogram.set_enabled prev) f

(* a deterministic LCG stream of latencies spanning ~6 decades, so every
   run exercises the same buckets *)
let samples n seed =
  let state = ref seed in
  List.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      let r = !state mod 1000 in
      1e-7 *. (1.015 ** float_of_int r))

let test_histogram_empty () =
  let h = Histogram.create "t.hist.empty" in
  let s = Histogram.snapshot h in
  check_int "bucket array length" Histogram.buckets
    (Array.length s.Histogram.scounts);
  check_int "zero total" 0 s.Histogram.total;
  check "zero sum" true (s.Histogram.sum = 0.);
  List.iter
    (fun q ->
      check "empty quantile is 0" true (Histogram.quantile s q = 0.))
    [ 0.; 0.5; 0.99; 1. ]

let test_histogram_disabled () =
  let h = Histogram.create "t.hist.off" in
  check "recording off by default in tests" false (Histogram.recording ());
  Histogram.record h 0.001;
  Histogram.record h 1.0;
  check_int "disarmed record is invisible" 0 (Histogram.snapshot h).Histogram.total

let test_histogram_bucket_invariant () =
  List.iter
    (fun v ->
      let i = Histogram.bucket_of v in
      check "bucket index in range" true (i >= 0 && i < Histogram.buckets);
      let upper = Histogram.bucket_upper i in
      check
        (Printf.sprintf "v=%g inside its bucket (%g, %g]" v
           (upper /. Histogram.ratio) upper)
        true
        (v <= upper && v > upper /. Histogram.ratio *. (1. -. 1e-12)))
    (samples 2_000 5 @ [ 1e-6; 0.001; 1.; 3.7; 1000. ])

let test_histogram_merge_across_domains () =
  with_histograms (fun () ->
      let streams = List.init 4 (fun i -> samples 5_000 ((17 * i) + 3)) in
      (* reference: all four streams recorded sequentially *)
      let seq = Histogram.create ~scale:1e9 "t.hist.seq" in
      List.iter (List.iter (Histogram.record seq)) streams;
      (* four real domains, one private histogram each *)
      let parts =
        List.map
          (fun vs ->
            Domain.spawn (fun () ->
                let h = Histogram.create ~scale:1e9 "t.hist.part" in
                List.iter (Histogram.record h) vs;
                h))
          streams
        |> List.map Domain.join
      in
      let merge order =
        let m = Histogram.create ~scale:1e9 "t.hist.merged" in
        List.iter (fun h -> Histogram.merge_into ~into:m h) order;
        Histogram.snapshot m
      in
      let s_seq = Histogram.snapshot seq in
      let s1 = merge parts in
      let s2 = merge (List.rev parts) in
      check_int "all events counted" 20_000 s_seq.Histogram.total;
      check "merged buckets = sequential buckets" true
        (s1.Histogram.scounts = s_seq.Histogram.scounts);
      check "merge is order-independent" true
        (s2.Histogram.scounts = s1.Histogram.scounts);
      check "merged sum = sequential sum (exact)" true
        (s1.Histogram.sum = s_seq.Histogram.sum);
      check "reverse-order sum agrees" true
        (s2.Histogram.sum = s1.Histogram.sum))

let test_histogram_quantiles () =
  with_histograms (fun () ->
      let n = 2_000 in
      let vs = samples n 7 in
      let h = Histogram.create ~scale:1e9 "t.hist.q" in
      List.iter (Histogram.record h) vs;
      let s = Histogram.snapshot h in
      let sorted = Array.of_list vs in
      Array.sort compare sorted;
      let prev = ref 0. in
      List.iter
        (fun q ->
          let hq = Histogram.quantile s q in
          check (Printf.sprintf "quantile monotone at q=%g" q) true
            (hq >= !prev);
          prev := hq;
          (* the exact order statistic at the same rank lies within one
             bucket ratio below the histogram's answer *)
          let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
          let exact = sorted.(rank - 1) in
          check
            (Printf.sprintf "q=%g within one bucket (exact %g, hist %g)" q
               exact hq)
            true
            (exact <= hq && exact > hq /. Histogram.ratio *. (1. -. 1e-9)))
        [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1. ])

(* one exposition line: NAME{labels} VALUE / NAME VALUE, value split off
   the last space *)
let split_sample line =
  match String.rindex_opt line ' ' with
  | None -> Alcotest.failf "unparsable exposition line %S" line
  | Some i ->
    ( String.sub line 0 i,
      String.sub line (i + 1) (String.length line - i - 1) )

let le_of key =
  match String.index_opt key '{' with
  | None -> None
  | Some _ ->
    let marker = "le=\"" in
    let rec find i =
      if i + String.length marker > String.length key then None
      else if String.sub key i (String.length marker) = marker then
        let start = i + String.length marker in
        let close = String.index_from key start '"' in
        Some (String.sub key start (close - start))
      else find (i + 1)
    in
    find 0

let test_exposition_roundtrip () =
  with_histograms (fun () ->
      let h = Histogram.registered ~scale:1e9 "t.expo.latency" in
      Histogram.reset h;
      List.iter (Histogram.record h) (samples 500 11);
      let stats =
        [
          ("t.expo.rows", "3");
          ("t.expo.flag", "yes");
          ("t.expo.span", "2-9");
          ("t.expo.dash", "-");
        ]
      in
      let text = Exposition.render stats in
      let lines =
        String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
      in
      check "render is non-empty" true (lines <> []);
      let values = Hashtbl.create 64 in
      List.iter
        (fun line ->
          if line.[0] <> '#' then begin
            let key, v = split_sample line in
            check ("numeric value in " ^ line) true
              (v = "+Inf" || float_of_string_opt v <> None);
            Hashtbl.replace values key (float_of_string v)
          end)
        lines;
      let value key =
        match Hashtbl.find_opt values key with
        | Some v -> v
        | None -> Alcotest.failf "missing exposition sample %s" key
      in
      (* stats rows: numeric pass-through, yes/no, lo-hi spans, dashes
         skipped *)
      check "numeric row" true (value "obda_t_expo_rows" = 3.);
      check "yes maps to 1" true (value "obda_t_expo_flag" = 1.);
      check "span lo" true (value "obda_t_expo_span_lo" = 2.);
      check "span hi" true (value "obda_t_expo_span_hi" = 9.);
      check "dash rows are skipped" true
        (not (Hashtbl.mem values "obda_t_expo_dash"));
      (* the histogram series: cumulative non-decreasing buckets ending in
         +Inf, with a _count that equals the +Inf bucket *)
      let prefix = "obda_t_expo_latency_bucket{" in
      let bucket_lines =
        List.filter
          (fun l -> l.[0] <> '#' && String.starts_with ~prefix l)
          lines
      in
      check "histogram emits buckets" true (bucket_lines <> []);
      let last_cum = ref 0. and last_le = ref neg_infinity in
      let saw_inf = ref false in
      List.iter
        (fun line ->
          let key, v = split_sample line in
          let cum = float_of_string v in
          let le =
            match le_of key with
            | Some "+Inf" ->
              saw_inf := true;
              infinity
            | Some le -> float_of_string le
            | None -> Alcotest.failf "bucket sample without le: %s" key
          in
          check "le strictly increasing" true (le > !last_le);
          check "cumulative non-decreasing" true (cum >= !last_cum);
          last_le := le;
          last_cum := cum)
        bucket_lines;
      check "+Inf bucket present" true !saw_inf;
      check "count = +Inf cumulative" true
        (value "obda_t_expo_latency_count" = !last_cum);
      check "count = recorded events" true
        (value "obda_t_expo_latency_count" = 500.);
      check "sum positive" true (value "obda_t_expo_latency_sum" > 0.))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "counter aggregation" `Quick
          test_counter_aggregation;
        Alcotest.test_case "json-lines round-trip" `Quick
          test_json_lines_roundtrip;
        Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "span outcome on typed error" `Quick
          test_span_outcome_on_error;
        Alcotest.test_case "collecting restores outer sink" `Quick
          test_collecting_restores_outer_sink;
        Alcotest.test_case "json parser" `Quick test_json_parser;
        Alcotest.test_case "histogram: empty snapshot" `Quick
          test_histogram_empty;
        Alcotest.test_case "histogram: disarmed record is a no-op" `Quick
          test_histogram_disabled;
        Alcotest.test_case "histogram: bucket invariant" `Quick
          test_histogram_bucket_invariant;
        Alcotest.test_case "histogram: merge across 4 domains" `Quick
          test_histogram_merge_across_domains;
        Alcotest.test_case "histogram: quantiles vs exact percentiles" `Quick
          test_histogram_quantiles;
        Alcotest.test_case "exposition round-trip" `Quick
          test_exposition_roundtrip;
      ] );
  ]
