open Obda_syntax
open Obda_ontology
open Obda_data
open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_basics () =
  let a = abox_of_facts [ `U ("A", "c1"); `B ("R", "c1", "c2") ] in
  check_int "2 atoms" 2 (Abox.num_atoms a);
  check_int "2 individuals" 2 (Abox.num_individuals a);
  check "unary member" true (Abox.mem_unary a (sym "A") (sym "c1"));
  check "binary member" true (Abox.mem_binary a (sym "R") (sym "c1") (sym "c2"));
  check "inverse role member" true
    (Abox.mem_role a (role "R-") (sym "c2") (sym "c1"));
  check "no duplicate" true
    (Abox.add_unary a (sym "A") (sym "c1");
     Abox.num_atoms a = 2)

let test_role_successors () =
  let a = abox_of_facts [ `B ("R", "c1", "c2"); `B ("R", "c1", "c3") ] in
  check_int "2 successors" 2 (List.length (Abox.role_successors a (role "R") (sym "c1")));
  check_int "1 predecessor of c2" 1
    (List.length (Abox.role_successors a (role "R-") (sym "c2")))

let test_complete () =
  let t = example11_tbox () in
  let a = abox_of_facts [ `B ("P", "c1", "c2") ] in
  let c = Abox.complete t a in
  check "S(c1,c2) derived" true (Abox.mem_binary c (sym "S") (sym "c1") (sym "c2"));
  check "R(c2,c1) derived" true (Abox.mem_binary c (sym "R") (sym "c2") (sym "c1"));
  check "A_P(c1) derived" true
    (Abox.mem_unary c (Tbox.exists_name t (role "P")) (sym "c1"));
  check "A_{S⁻}(c2) derived" true
    (Abox.mem_unary c (Tbox.exists_name t (role "S-")) (sym "c2"));
  check "complete instance is complete" true (Abox.is_complete t c);
  check "original not complete" false (Abox.is_complete t a)

let test_complete_reflexive () =
  let t = Tbox.make [ Tbox.Reflexive (role "R") ] in
  let a = abox_of_facts [ `U ("A", "c1") ] in
  let c = Abox.complete t a in
  check "reflexive loop added" true
    (Abox.mem_binary c (sym "R") (sym "c1") (sym "c1"))

let test_satisfies_concept () =
  let t = example11_tbox () in
  let a = abox_of_facts [ `B ("P", "c1", "c2") ] in
  check "c1 satisfies ∃S" true
    (Abox.satisfies_concept t a (sym "c1") (Concept.Exists (role "S")));
  check "c2 satisfies ∃R" true
    (Abox.satisfies_concept t a (sym "c2") (Concept.Exists (role "R")));
  check "c2 does not satisfy ∃P" false
    (Abox.satisfies_concept t a (sym "c2") (Concept.Exists (role "P")))

let test_consistency () =
  let t =
    Tbox.make
      [
        Tbox.Concept_disj (Concept.Name (sym "A"), Concept.Name (sym "B"));
        Tbox.Concept_incl (Concept.Name (sym "C"), Concept.Name (sym "B"));
      ]
  in
  check "consistent" true
    (Abox.consistent t (abox_of_facts [ `U ("A", "c1"); `U ("B", "c2") ]));
  check "direct clash" false
    (Abox.consistent t (abox_of_facts [ `U ("A", "c1"); `U ("B", "c1") ]));
  check "derived clash (C ⊑ B)" false
    (Abox.consistent t (abox_of_facts [ `U ("A", "c1"); `U ("C", "c1") ]))

let test_consistency_roles () =
  let t =
    Tbox.make
      [
        Tbox.Role_disj (role "R", role "S");
        Tbox.Irreflexive (role "R");
        Tbox.Role_incl (role "Sub", role "R");
      ]
  in
  check "role clash" false
    (Abox.consistent t
       (abox_of_facts [ `B ("R", "c1", "c2"); `B ("S", "c1", "c2") ]));
  check "no clash on different pairs" true
    (Abox.consistent t
       (abox_of_facts [ `B ("R", "c1", "c2"); `B ("S", "c2", "c1") ]));
  check "irreflexive violation" false
    (Abox.consistent t (abox_of_facts [ `B ("Sub", "c1", "c1") ]))

let test_generator () =
  let params =
    { Generate.vertices = 200; edge_prob = 0.05; concept_prob = 0.1 }
  in
  let a =
    Generate.erdos_renyi ~seed:7 ~edge_pred:(sym "R")
      ~concepts:[ sym "M1"; sym "M2" ]
      params
  in
  let n_edges =
    List.length (Abox.binary_members a (sym "R"))
  in
  (* expectation: 200·199·0.05 ≈ 1990 directed edges *)
  check "edge count in expected range" true (n_edges > 1400 && n_edges < 2600);
  let a' =
    Generate.erdos_renyi ~seed:7 ~edge_pred:(sym "R")
      ~concepts:[ sym "M1"; sym "M2" ]
      params
  in
  check_int "deterministic for a fixed seed" (Abox.num_atoms a)
    (Abox.num_atoms a')

(* Copy-on-write snapshots: a snapshot is a frozen view — mutations on
   either side never show through, no-op mutations stay cheap no-ops, and
   revisions advance only on the mutated store. *)
let test_snapshot_isolation () =
  let a = abox_of_facts [ `U ("A", "c1"); `B ("R", "c1", "c2") ] in
  let r0 = Abox.revision a in
  let s = Abox.snapshot a in
  check_int "snapshot shares the revision" r0 (Abox.revision s);
  check_int "snapshot shares the atoms" 2 (Abox.num_atoms s);
  (* writer side: the live store moves on, the snapshot does not *)
  Abox.add_unary a (sym "A") (sym "c3");
  check "live store sees the add" true (Abox.mem_unary a (sym "A") (sym "c3"));
  check "snapshot does not" false (Abox.mem_unary s (sym "A") (sym "c3"));
  check_int "snapshot atom count frozen" 2 (Abox.num_atoms s);
  check_int "snapshot revision frozen" r0 (Abox.revision s);
  check "live revision advanced" true (Abox.revision a > r0);
  (* removals do not reach the snapshot either *)
  check "retract from the live store" true
    (Abox.remove_binary a (sym "R") (sym "c1") (sym "c2"));
  check "snapshot keeps the edge" true
    (Abox.mem_binary s (sym "R") (sym "c1") (sym "c2"));
  check "and the inverse adjacency" true
    (Abox.mem_role s (role "R-") (sym "c2") (sym "c1"))

let test_snapshot_mutable_both_ways () =
  let a = abox_of_facts [ `U ("A", "c1") ] in
  let s = Abox.snapshot a in
  (* the snapshot itself is a first-class store: mutating it unshares
     without disturbing the original *)
  Abox.add_unary s (sym "B") (sym "c1");
  check "snapshot sees its own write" true (Abox.mem_unary s (sym "B") (sym "c1"));
  check "original does not" false (Abox.mem_unary a (sym "B") (sym "c1"));
  check_int "original atom count untouched" 1 (Abox.num_atoms a);
  (* snapshot-of-snapshot chains behave the same way *)
  let s2 = Abox.snapshot s in
  Abox.add_unary s2 (sym "C") (sym "c1");
  check "grandchild write is private" false (Abox.mem_unary s (sym "C") (sym "c1"));
  check_int "grandchild has all three atoms" 3 (Abox.num_atoms s2)

let test_snapshot_noop_mutations () =
  let a = abox_of_facts [ `U ("A", "c1"); `B ("R", "c1", "c2") ] in
  let r0 = Abox.revision a in
  let s = Abox.snapshot a in
  (* ineffective mutations must not bump the revision (and, internally,
     must not pay the unshare copy) *)
  Abox.add_unary a (sym "A") (sym "c1");
  check "removing an absent fact is false" false
    (Abox.remove_unary a (sym "B") (sym "c1"));
  check "removing from an absent relation is false" false
    (Abox.remove_binary a (sym "S") (sym "c1") (sym "c2"));
  check_int "no-ops leave the revision alone" r0 (Abox.revision a);
  check_int "snapshot untouched" 2 (Abox.num_atoms s);
  (* individuals recompute correctly on the unshared copy after a retract *)
  check "retract c2's only atom" true
    (Abox.remove_binary a (sym "R") (sym "c1") (sym "c2"));
  check_int "live individuals recomputed" 1 (Abox.num_individuals a);
  check_int "snapshot individuals frozen" 2 (Abox.num_individuals s)

let test_scale () =
  let p = { Generate.vertices = 1000; edge_prob = 0.05; concept_prob = 0.1 } in
  let s = Generate.scale 0.1 p in
  check_int "scaled vertices" 100 s.Generate.vertices;
  check "average degree preserved" true
    (abs_float ((s.Generate.edge_prob *. 100.) -. 50.) < 1e-6)

let suites =
  [
    ( "data",
      [
        Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "role successors" `Quick test_role_successors;
        Alcotest.test_case "completion" `Quick test_complete;
        Alcotest.test_case "completion (reflexive)" `Quick
          test_complete_reflexive;
        Alcotest.test_case "instance checking" `Quick test_satisfies_concept;
        Alcotest.test_case "concept consistency" `Quick test_consistency;
        Alcotest.test_case "role consistency" `Quick test_consistency_roles;
        Alcotest.test_case "random generator" `Quick test_generator;
        Alcotest.test_case "scaling" `Quick test_scale;
        Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
        Alcotest.test_case "snapshot mutable both ways" `Quick
          test_snapshot_mutable_both_ways;
        Alcotest.test_case "snapshot no-op mutations" `Quick
          test_snapshot_noop_mutations;
      ] );
  ]
