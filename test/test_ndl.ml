open Obda_syntax
open Obda_ontology
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval
module Star = Obda_ndl.Star
module Skinny = Obda_ndl.Skinny
module Optimize = Obda_ndl.Optimize
open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v x = Ndl.Var x
let p name ts = Ndl.Pred (sym name, ts)

(* G(x) ← R(x,y) ∧ Q(x);  Q(x) ← R(y,x)   (Example 1 of the paper) *)
let example1 =
  Ndl.make ~goal:(sym "G1") ~goal_args:[ "x" ]
    ~params:(Symbol.Map.singleton (sym "G1") 1 |> Symbol.Map.add (sym "Q1") 1)
    [
      { Ndl.head = (sym "G1", [ v "x" ]); body = [ p "R" [ v "x"; v "y" ]; p "Q1" [ v "x" ] ] };
      { Ndl.head = (sym "Q1", [ v "x" ]); body = [ p "R" [ v "y"; v "x" ] ] };
    ]

let test_example1_analysis () =
  check "nonrecursive" true (Ndl.is_nonrecursive example1);
  check "linear" true (Ndl.is_linear example1);
  check_int "width 1 (x is a parameter)" 1 (Ndl.width example1);
  check_int "depth 2" 2 (Ndl.depth example1);
  match Ndl.strata example1 with
  | [ ([ q1 ], false); ([ g1 ], false) ] ->
    check "strata dependencies first" true
      (Symbol.equal q1 (sym "Q1") && Symbol.equal g1 (sym "G1"))
  | _ -> Alcotest.fail "unexpected strata for example 1"

let test_example1_eval () =
  let a = abox_of_facts [ `B ("R", "c1", "c2"); `B ("R", "c2", "c1") ] in
  let r = Eval.run example1 a in
  Alcotest.(check (list (list string)))
    "answers"
    [ [ "c1" ]; [ "c2" ] ]
    (show_tuples r.Eval.answers)

let test_eval_equality_and_dom () =
  let q =
    Ndl.make ~goal:(sym "G3") ~goal_args:[ "x"; "y" ]
      [
        {
          Ndl.head = (sym "G3", [ v "x"; v "y" ]);
          body = [ p "A" [ v "x" ]; Ndl.Eq (v "x", v "y"); Ndl.Dom (v "y") ];
        };
      ]
  in
  let a = abox_of_facts [ `U ("A", "c1"); `U ("B", "c2") ] in
  Alcotest.(check (list (list string)))
    "equality binds"
    [ [ "c1"; "c1" ] ]
    (show_tuples (Eval.answers q a))

let test_eval_constants () =
  let q =
    Ndl.make ~goal:(sym "G4") ~goal_args:[ "x" ]
      [
        {
          Ndl.head = (sym "G4", [ v "x" ]);
          body = [ p "R" [ Ndl.Cst (sym "c1"); v "x" ] ];
        };
      ]
  in
  let a = abox_of_facts [ `B ("R", "c1", "c2"); `B ("R", "c3", "c4") ] in
  Alcotest.(check (list (list string)))
    "constant filter" [ [ "c2" ] ]
    (show_tuples (Eval.answers q a))

let test_eval_boolean_goal () =
  let q =
    Ndl.make ~goal:(sym "G5") ~goal_args:[]
      [ { Ndl.head = (sym "G5", []); body = [ p "A" [ v "x" ] ] } ]
  in
  check "true" true (Eval.boolean q (abox_of_facts [ `U ("A", "c1") ]));
  check "false" false (Eval.boolean q (abox_of_facts [ `U ("B", "c1") ]))

let test_generated_tuples () =
  let a = abox_of_facts [ `B ("R", "c1", "c2"); `B ("R", "c2", "c1") ] in
  let r = Eval.run example1 a in
  (* Q1 = {c1,c2}, G1 = {c1,c2} *)
  check_int "generated tuples" 4 r.Eval.generated_tuples

let test_weight_and_skinny_depth () =
  (* chain with two IDB atoms per clause: weights grow *)
  let clauses =
    [
      { Ndl.head = (sym "W0", [ v "x" ]); body = [ p "E" [ v "x" ] ] };
      {
        Ndl.head = (sym "W1", [ v "x" ]);
        body = [ p "W0" [ v "x" ]; p "W0" [ v "x" ] ];
      };
      {
        Ndl.head = (sym "W2", [ v "x" ]);
        body = [ p "W1" [ v "x" ]; p "W1" [ v "x" ] ];
      };
    ]
  in
  let q = Ndl.make ~goal:(sym "W2") ~goal_args:[ "x" ] clauses in
  let w = Ndl.weight q in
  check_int "ν(W0)=1" 1 (Symbol.Map.find (sym "W0") w);
  check_int "ν(W1)=2" 2 (Symbol.Map.find (sym "W1") w);
  check_int "ν(W2)=4" 4 (Symbol.Map.find (sym "W2") w);
  check "skinny depth finite" true (Ndl.skinny_depth q > 0.0)

let test_skinny_transform_equivalence () =
  (* wide clause: G(x) ← A(x) ∧ R(x,y) ∧ S(y,z) ∧ B(z) ∧ Q(x) ∧ Q2(z) *)
  let clauses =
    [
      {
        Ndl.head = (sym "G6", [ v "x" ]);
        body =
          [
            p "A" [ v "x" ];
            p "R" [ v "x"; v "y" ];
            p "S" [ v "y"; v "z" ];
            p "B" [ v "z" ];
            p "Q6" [ v "x" ];
            p "Q7" [ v "z" ];
          ];
      };
      { Ndl.head = (sym "Q6", [ v "x" ]); body = [ p "A" [ v "x" ] ] };
      { Ndl.head = (sym "Q7", [ v "x" ]); body = [ p "B" [ v "x" ] ] };
    ]
  in
  let q = Ndl.make ~goal:(sym "G6") ~goal_args:[ "x" ] clauses in
  let sk = Skinny.transform q in
  check "result is skinny" true (Ndl.is_skinny sk);
  check "depth within skinny bound" true
    (float_of_int (Ndl.depth sk) <= Ndl.skinny_depth q +. 1.0);
  for seed = 0 to 9 do
    let a =
      random_abox ~seed ~consts:6 ~unary:[ "A"; "B" ] ~binary:[ "R"; "S" ]
        ~unary_atoms:8 ~binary_atoms:12
    in
    Alcotest.(check (list (list string)))
      "same answers"
      (show_tuples (Eval.answers q a))
      (show_tuples (Eval.answers sk a))
  done

let test_prune () =
  let clauses =
    [
      { Ndl.head = (sym "G8", [ v "x" ]); body = [ p "A" [ v "x" ] ] };
      (* dead: references an IDB predicate with no definition *)
      { Ndl.head = (sym "G8", [ v "x" ]); body = [ p "Dead8" [ v "x" ] ] };
      (* unreachable from the goal *)
      { Ndl.head = (sym "Orphan8", [ v "x" ]); body = [ p "A" [ v "x" ] ] };
    ]
  in
  let q = Ndl.make ~goal:(sym "G8") ~goal_args:[ "x" ] clauses in
  let edb pr = Symbol.equal pr (sym "A") in
  let pruned = Optimize.prune ~edb q in
  check_int "one clause remains" 1 (Ndl.num_clauses pruned)

let test_inline () =
  let clauses =
    [
      {
        Ndl.head = (sym "G9", [ v "x"; v "y" ]);
        body = [ p "H9" [ v "x"; v "z" ]; p "R" [ v "z"; v "y" ] ];
      };
      {
        Ndl.head = (sym "H9", [ v "x"; v "z" ]);
        body = [ p "R" [ v "x"; v "w" ]; p "R" [ v "w"; v "z" ] ];
      };
    ]
  in
  let q = Ndl.make ~goal:(sym "G9") ~goal_args:[ "x"; "y" ] clauses in
  let inlined = Optimize.inline_single_use q in
  check_int "single clause after inlining" 1 (Ndl.num_clauses inlined);
  for seed = 0 to 9 do
    let a =
      random_abox ~seed ~consts:5 ~unary:[] ~binary:[ "R" ] ~unary_atoms:0
        ~binary_atoms:10
    in
    Alcotest.(check (list (list string)))
      "same answers"
      (show_tuples (Eval.answers q a))
      (show_tuples (Eval.answers inlined a))
  done

let test_star_generic () =
  let t =
    Tbox.make
      [
        Tbox.Concept_incl (Concept.Name (sym "B"), Concept.Name (sym "A"));
        Tbox.Role_incl (role "P", role "R");
      ]
  in
  let q =
    Ndl.make ~goal:(sym "G10") ~goal_args:[ "x" ]
      [
        {
          Ndl.head = (sym "G10", [ v "x" ]);
          body = [ p "A" [ v "x" ]; p "R" [ v "x"; v "y" ] ];
        };
      ]
  in
  let starred = Star.complete_to_arbitrary t q in
  let a = abox_of_facts [ `U ("B", "c1"); `B ("P", "c1", "c2") ] in
  Alcotest.(check (list (list string)))
    "complete-level program misses"
    []
    (show_tuples (Eval.answers q a));
  Alcotest.(check (list (list string)))
    "starred program answers"
    [ [ "c1" ] ]
    (show_tuples (Eval.answers starred a))

let test_star_linear () =
  let t =
    Tbox.make
      [
        Tbox.Concept_incl (Concept.Name (sym "B"), Concept.Name (sym "A"));
        Tbox.Concept_incl (Concept.Exists (role "P-"), Concept.Name (sym "A"));
        Tbox.Role_incl (role "P", role "R");
      ]
  in
  let q =
    Ndl.make ~goal:(sym "G11") ~goal_args:[ "x" ]
      ~params:(Symbol.Map.singleton (sym "G11") 1)
      [
        {
          Ndl.head = (sym "G11", [ v "x" ]);
          body = [ p "A" [ v "x" ]; p "R" [ v "x"; v "y" ] ];
        };
      ]
  in
  let starred = Star.complete_to_arbitrary_linear t q in
  check "still linear" true (Ndl.is_linear starred);
  check "width grows by at most 1" true
    (Ndl.width starred <= Ndl.width q + 1 + 1);
  let a = abox_of_facts [ `B ("P", "c2", "c1"); `B ("P", "c1", "c3") ] in
  (* A(c1) via ∃P⁻ ⊑ A, R(c1,c3) via P ⊑ R *)
  Alcotest.(check (list (list string)))
    "lemma 3 program answers"
    [ [ "c1" ] ]
    (show_tuples (Eval.answers starred a))

(* Satellite regression tests for the CPred binding/undo paths: every case
   is checked sequentially and under a 4-worker pool, and the two runs must
   agree tuple for tuple (the parallel driver partitions the first body
   atom's search space, so these shapes exercise every partition scheme). *)
let check_seq_par msg q a expected =
  let seq = show_tuples (Eval.answers q a) in
  let par =
    Obda_runtime.Pool.with_pool ~jobs:4 (fun pool ->
        show_tuples (Eval.answers ~pool q a))
  in
  Alcotest.(check (list (list string))) (msg ^ " (sequential)") expected seq;
  Alcotest.(check (list (list string))) (msg ^ " (4 workers)") expected par

let test_repeated_vars_in_atom () =
  (* R(x,x): the second occurrence of x is bound when the first position
     binds it, so matching R(a,b) must fail and undo the binding of x. *)
  let q =
    Ndl.make ~goal:(sym "G12") ~goal_args:[ "x" ]
      [ { Ndl.head = (sym "G12", [ v "x" ]); body = [ p "R" [ v "x"; v "x" ] ] } ]
  in
  let a =
    abox_of_facts
      [ `B ("R", "a", "a"); `B ("R", "a", "b"); `B ("R", "b", "a"); `B ("R", "c", "c") ]
  in
  check_seq_par "diagonal only" q a [ [ "a" ]; [ "c" ] ];
  (* the failed R(a,b) probe must not leave x bound: a second atom over the
     same variable still enumerates freely *)
  let q2 =
    Ndl.make ~goal:(sym "G13") ~goal_args:[ "x"; "y" ]
      [
        {
          Ndl.head = (sym "G13", [ v "x"; v "y" ]);
          body = [ p "R" [ v "x"; v "x" ]; p "R" [ v "x"; v "y" ] ];
        };
      ]
  in
  check_seq_par "binding undone after mismatch" q2 a
    [ [ "a"; "a" ]; [ "a"; "b" ]; [ "c"; "c" ] ]

let test_constants_at_indexed_positions () =
  (* A bound constant at an indexed position of a non-leading atom: the
     lookup uses the index, and a mismatch must undo only the variables
     bound by this atom, not the constant check's context. *)
  let q =
    Ndl.make ~goal:(sym "G14") ~goal_args:[ "x" ]
      [
        {
          Ndl.head = (sym "G14", [ v "x" ]);
          body = [ p "A" [ v "x" ]; p "R" [ v "x"; Ndl.Cst (sym "b") ] ];
        };
      ]
  in
  let a =
    abox_of_facts
      [
        `U ("A", "a"); `U ("A", "c"); `U ("A", "d");
        `B ("R", "a", "b"); `B ("R", "c", "z"); `B ("R", "d", "b"); `B ("R", "d", "z");
      ]
  in
  check_seq_par "constant at indexed position" q a [ [ "a" ]; [ "d" ] ];
  (* constants in the leading atom: the first-atom partition filter must
     still see every matching tuple exactly once *)
  let q2 =
    Ndl.make ~goal:(sym "G15") ~goal_args:[ "y" ]
      [
        {
          Ndl.head = (sym "G15", [ v "y" ]);
          body = [ p "R" [ Ndl.Cst (sym "d"); v "y" ] ];
        };
      ]
  in
  check_seq_par "constant in leading atom" q2 a [ [ "b" ]; [ "z" ] ]

let test_unbound_unbound_eq_sweep () =
  (* x = y with both sides unbound sweeps the active domain; the parallel
     driver partitions that sweep by constant. *)
  let q =
    Ndl.make ~goal:(sym "G16") ~goal_args:[ "x"; "y" ]
      [
        {
          Ndl.head = (sym "G16", [ v "x"; v "y" ]);
          body = [ Ndl.Eq (v "x", v "y"); p "A" [ v "x" ] ];
        };
      ]
  in
  let a = abox_of_facts [ `U ("A", "a"); `U ("A", "b"); `U ("B", "c") ] in
  check_seq_par "unbound-unbound Eq sweep" q a [ [ "a"; "a" ]; [ "b"; "b" ] ];
  (* x = x: one variable, still a domain sweep, each constant once *)
  let q2 =
    Ndl.make ~goal:(sym "G17") ~goal_args:[ "x" ]
      [ { Ndl.head = (sym "G17", [ v "x" ]); body = [ Ndl.Eq (v "x", v "x") ] } ]
  in
  check_seq_par "x = x sweeps the domain once" q2 a
    [ [ "a" ]; [ "b" ]; [ "c" ] ]

(* Recursion is supported now: a recursive stratum runs a semi-naïve
   fixpoint.  [Ndl.topo_order] keeps its old contract (it stratifies
   nonrecursive programs only), and a recursive stratum with no base case
   converges to the empty fixpoint instead of raising. *)
let test_recursive_fixpoint () =
  let bad =
    Ndl.make ~goal:(sym "G2") ~goal_args:[]
      [
        { Ndl.head = (sym "G2", []); body = [ p "H2" [] ] };
        { Ndl.head = (sym "H2", []); body = [ p "G2" [] ] };
      ]
  in
  check "recursive detected" false (Ndl.is_nonrecursive bad);
  check "topo_order still rejects recursion" true
    (try
       ignore (Ndl.topo_order bad);
       false
     with Invalid_argument _ -> true);
  (match Ndl.strata bad with
  | [ (scc, true) ] ->
    check "one recursive stratum of G2 and H2" true
      (List.exists (Symbol.equal (sym "G2")) scc
      && List.exists (Symbol.equal (sym "H2")) scc
      && List.length scc = 2)
  | _ -> Alcotest.fail "expected a single recursive stratum");
  check "no base case: empty fixpoint, not an error" false
    (Eval.boolean bad (abox_of_facts [ `U ("A", "c1") ]));
  (* transitive closure of a chain, with a quadratic recursive clause so
     the full relation is probed while it grows across rounds *)
  let tc =
    Ndl.make ~goal:(sym "T") ~goal_args:[ "x"; "y" ]
      [
        { Ndl.head = (sym "T", [ v "x"; v "y" ]); body = [ p "E" [ v "x"; v "y" ] ] };
        {
          Ndl.head = (sym "T", [ v "x"; v "z" ]);
          body = [ p "T" [ v "x"; v "y" ]; p "T" [ v "y"; v "z" ] ];
        };
      ]
  in
  check "tc is recursive" false (Ndl.is_nonrecursive tc);
  let n = 24 in
  let name i = Printf.sprintf "n%02d" i in
  let a =
    abox_of_facts (List.init (n - 1) (fun i -> `B ("E", name i, name (i + 1))))
  in
  let expected =
    List.concat
      (List.init n (fun i ->
           List.init (n - 1 - i) (fun k -> [ name i; name (i + k + 1) ])))
  in
  (* answers come back sorted by symbol id, which depends on global intern
     order; pin byte-identity across engines and set equality by name *)
  let seq = show_tuples (Eval.answers tc a) in
  let par =
    Obda_runtime.Pool.with_pool ~jobs:4 (fun pool ->
        show_tuples (Eval.answers ~pool tc a))
  in
  Alcotest.(check (list (list string)))
    "4 workers byte-identical to sequential" seq par;
  Alcotest.(check (list (list string)))
    "naive fixpoint byte-identical" seq
    (show_tuples (Eval.answers ~naive:true tc a));
  Alcotest.(check (list (list string)))
    "transitive closure of a chain" expected
    (List.sort compare seq);
  (* the delta rounds must not thrash the full relation's indexes: one
     full-scan build per position list, maintained incrementally as the
     fixpoint grows the relation *)
  let r = Eval.run tc a in
  let module I = Eval.Internal in
  let trel = Symbol.Map.find (sym "T") r.Eval.idb_relations in
  check_int "one index build per position list on the full relation"
    (List.length (I.index_positions trel))
    (I.index_builds trel);
  check "full relation was probed via a maintained index" true
    (I.index_builds trel >= 1);
  check "rounds did not rebuild indexes" true (I.index_builds trel <= 2)

let test_mutual_recursion () =
  let q =
    Ndl.make ~goal:(sym "Even") ~goal_args:[ "x" ]
      [
        { Ndl.head = (sym "Even", [ v "x" ]); body = [ p "Zero" [ v "x" ] ] };
        {
          Ndl.head = (sym "Even", [ v "y" ]);
          body = [ p "Odd" [ v "x" ]; p "E" [ v "x"; v "y" ] ];
        };
        {
          Ndl.head = (sym "Odd", [ v "y" ]);
          body = [ p "Even" [ v "x" ]; p "E" [ v "x"; v "y" ] ];
        };
      ]
  in
  (match Ndl.strata q with
  | [ (scc, true) ] ->
    check "Even and Odd share a recursive stratum" true
      (List.exists (Symbol.equal (sym "Even")) scc
      && List.exists (Symbol.equal (sym "Odd")) scc)
  | _ -> Alcotest.fail "expected a single recursive stratum");
  let a =
    abox_of_facts
      [
        `U ("Zero", "mr0"); `B ("E", "mr0", "mr1"); `B ("E", "mr1", "mr2");
        `B ("E", "mr2", "mr3"); `B ("E", "mr3", "mr4");
      ]
  in
  let seq = show_tuples (Eval.answers q a) in
  let par =
    Obda_runtime.Pool.with_pool ~jobs:4 (fun pool ->
        show_tuples (Eval.answers ~pool q a))
  in
  Alcotest.(check (list (list string)))
    "4 workers byte-identical to sequential" seq par;
  Alcotest.(check (list (list string)))
    "naive fixpoint byte-identical" seq
    (show_tuples (Eval.answers ~naive:true q a));
  Alcotest.(check (list (list string)))
    "mutual recursion fixpoint"
    [ [ "mr0" ]; [ "mr2" ]; [ "mr4" ] ]
    (List.sort compare seq)

(* The planner must rescue a deliberately pessimal written order: a large
   unbound relation first, the selective unary filter last. *)
let test_planner_reorders () =
  let q =
    Ndl.make ~goal:(sym "G18") ~goal_args:[ "x" ]
      [
        {
          Ndl.head = (sym "G18", [ v "x" ]);
          body = [ p "R" [ v "x"; v "y" ]; p "A" [ v "x" ] ];
        };
      ]
  in
  let a =
    abox_of_facts
      (`U ("A", "r00")
      :: List.init 20 (fun i ->
             `B ("R", Printf.sprintf "r%02d" i, Printf.sprintf "s%02d" i)))
  in
  let index_of hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go 0
  in
  (match Eval.explain q a with
  | [ line ] ->
    check "plan marked as reordered" true (index_of line "(reordered)" <> None);
    (match (index_of line "A(x)", index_of line "R(x,y)") with
    | Some ia, Some ir -> check "selective atom runs first" true (ia < ir)
    | _ -> Alcotest.fail ("atoms missing from plan line: " ^ line))
  | lines ->
    Alcotest.fail
      (Printf.sprintf "expected one plan line, got %d" (List.length lines)));
  (match Eval.explain ~naive:true q a with
  | [ line ] ->
    check "naive plan keeps the written order" true
      (index_of line "(reordered)" = None)
  | _ -> Alcotest.fail "expected one naive plan line");
  let planned = Eval.run q a in
  let naive = Eval.run ~naive:true q a in
  Alcotest.(check (list (list string)))
    "planned and naive agree"
    (show_tuples naive.Eval.answers)
    (show_tuples planned.Eval.answers);
  check "reorder reads strictly fewer tuples" true
    (planned.Eval.tuples_read < naive.Eval.tuples_read);
  let par =
    Obda_runtime.Pool.with_pool ~jobs:4 (fun pool -> Eval.run ~pool q a)
  in
  Alcotest.(check (list (list string)))
    "answers identical under 4 workers"
    (show_tuples planned.Eval.answers)
    (show_tuples par.Eval.answers);
  check_int "tuples_read identical under 4 workers" planned.Eval.tuples_read
    par.Eval.tuples_read

(* Pinned cost-model behaviour on synthetic statistics: greedy reorder,
   index probes for large maintained relations, hash joins for transient
   (delta) relations, scans for tiny ones. *)
let test_plan_cost_model () =
  let module Plan = Obda_ndl.Plan in
  let big = sym "Big19" and small = sym "Small19" and delta = sym "Delta19" in
  let stats =
    {
      Plan.card =
        (fun s ->
          if Symbol.equal s big then 1000
          else if Symbol.equal s delta then 40
          else 2);
      distinct = (fun _ _ -> None);
      transient = (fun s -> Symbol.equal s delta);
      domain = 50;
    }
  in
  let atoms =
    [
      Plan.CPred (big, [| Plan.CV 0; Plan.CV 1 |]);
      Plan.CPred (small, [| Plan.CV 0 |]);
      Plan.CPred (delta, [| Plan.CV 1; Plan.CV 2 |]);
    ]
  in
  let plan = Plan.make stats ~nvars:3 atoms in
  check "pessimal body reordered" true plan.Plan.reordered;
  (match plan.Plan.steps with
  | [ s1; s2; s3 ] ->
    let pred_of s =
      match s.Plan.atom with
      | Plan.CPred (pr, _) -> pr
      | _ -> Alcotest.fail "expected predicate steps"
    in
    check "tiny relation leads" true (Symbol.equal (pred_of s1) small);
    check "tiny relation scanned" true (s1.Plan.strategy = Plan.Scan);
    check "large relation second" true (Symbol.equal (pred_of s2) big);
    check "large relation probed on the bound position" true
      (s2.Plan.probe = [ 0 ]);
    check "large maintained relation uses the index" true
      (s2.Plan.strategy = Plan.Index);
    check "delta joined last" true (Symbol.equal (pred_of s3) delta);
    check "delta probed on its bound position" true (s3.Plan.probe = [ 0 ]);
    check "transient delta gets a transient hash join" true
      (s3.Plan.strategy = Plan.Hash)
  | _ -> Alcotest.fail "expected three steps");
  let trivial = Plan.trivial ~nvars:3 atoms in
  check "trivial plan keeps written order" true (not trivial.Plan.reordered);
  match trivial.Plan.steps with
  | s :: _ ->
    check "trivial plan starts with the written first atom" true
      (match s.Plan.atom with
      | Plan.CPred (pr, _) -> Symbol.equal pr big
      | _ -> false)
  | [] -> Alcotest.fail "trivial plan has no steps"

let test_plan_cache_reuse () =
  let cache = Eval.plan_cache () in
  let a = abox_of_facts [ `B ("R", "c1", "c2"); `B ("R", "c2", "c1") ] in
  let r1 = Eval.run ~plan:cache example1 a in
  let r2 = Eval.run ~plan:cache example1 a in
  Alcotest.(check (list (list string)))
    "cached run agrees"
    (show_tuples r1.Eval.answers)
    (show_tuples r2.Eval.answers);
  (* grow the store past the 2x replan threshold: the next run must replan
     against the new sizes and still answer correctly *)
  let big =
    abox_of_facts
      (List.init 6 (fun i ->
           let c j = Printf.sprintf "d%02d" j in
           `B ("R", c i, c (i + 1))))
  in
  let r3 = Eval.run ~plan:cache example1 big in
  Alcotest.(check (list (list string)))
    "replanned run answers the new store"
    (show_tuples (Eval.answers example1 big))
    (show_tuples r3.Eval.answers)

(* The relation-internals contract behind evaluator rounds: one full-scan
   index build per position list (later additions maintain it in place and
   lookups reuse it), and a sorted tuple view that is memoised until the
   next mutation. *)
let test_relation_index_reuse () =
  let module I = Eval.Internal in
  let s = Symbol.intern in
  let r = I.relation_create 2 in
  check "first add" true (I.relation_add r [ s "a"; s "b" ]);
  check "second add" true (I.relation_add r [ s "a"; s "c" ]);
  check "duplicate add rejected" false (I.relation_add r [ s "a"; s "b" ]);
  check_int "no index before first lookup" 0 (I.index_builds r);
  let m1 = I.relation_lookup r [ 0 ] [ s "a" ] in
  check_int "lookup matches" 2 (List.length m1);
  check_int "one full-scan build" 1 (I.index_builds r);
  ignore (I.relation_lookup r [ 0 ] [ s "a" ]);
  ignore (I.relation_lookup r [ 0 ] [ s "z" ]);
  check_int "repeat lookups reuse the index" 1 (I.index_builds r);
  (* an addition after the build is visible without a rescan *)
  check "post-index add" true (I.relation_add r [ s "a"; s "d" ]);
  check_int "incremental maintenance, no rebuild" 1 (I.index_builds r);
  check_int "maintained index sees the new tuple" 3
    (List.length (I.relation_lookup r [ 0 ] [ s "a" ]));
  (* a second position list is one more build, not a rebuild of the first *)
  ignore (I.relation_lookup r [ 1 ] [ s "b" ]);
  check_int "second position list builds once more" 2 (I.index_builds r)

let test_relation_sorted_view_memoised () =
  let module I = Eval.Internal in
  let s = Symbol.intern in
  let r = I.relation_create 1 in
  let names ts = List.sort compare (List.map (List.map Symbol.name) ts) in
  ignore (I.relation_add r [ s "v2" ]);
  ignore (I.relation_add r [ s "v1" ]);
  check "no view before first read" false (I.sorted_view_memoised r);
  let v1 = Eval.relation_tuples r in
  Alcotest.(check (list (list string)))
    "view contents" [ [ "v1" ]; [ "v2" ] ] (names v1);
  check "view memoised after read" true (I.sorted_view_memoised r);
  let v2 = Eval.relation_tuples r in
  check "repeat read returns the memoised list" true (v1 == v2);
  ignore (I.relation_add r [ s "v0" ]);
  check "mutation invalidates the view" false (I.sorted_view_memoised r);
  Alcotest.(check (list (list string)))
    "fresh view after mutation"
    [ [ "v0" ]; [ "v1" ]; [ "v2" ] ]
    (names (Eval.relation_tuples r))

let suites =
  [
    ( "ndl",
      [
        Alcotest.test_case "example 1 analysis" `Quick test_example1_analysis;
        Alcotest.test_case "example 1 evaluation" `Quick test_example1_eval;
        Alcotest.test_case "recursion detection and fixpoint" `Quick
          test_recursive_fixpoint;
        Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
        Alcotest.test_case "planner reorders pessimal clause" `Quick
          test_planner_reorders;
        Alcotest.test_case "plan cost model (pinned)" `Quick
          test_plan_cost_model;
        Alcotest.test_case "plan cache reuse and replan" `Quick
          test_plan_cache_reuse;
        Alcotest.test_case "equality and domain atoms" `Quick
          test_eval_equality_and_dom;
        Alcotest.test_case "constants" `Quick test_eval_constants;
        Alcotest.test_case "boolean goal" `Quick test_eval_boolean_goal;
        Alcotest.test_case "generated tuples" `Quick test_generated_tuples;
        Alcotest.test_case "weight function" `Quick test_weight_and_skinny_depth;
        Alcotest.test_case "skinny transform" `Quick
          test_skinny_transform_equivalence;
        Alcotest.test_case "prune" `Quick test_prune;
        Alcotest.test_case "inline (Tw*)" `Quick test_inline;
        Alcotest.test_case "star (generic)" `Quick test_star_generic;
        Alcotest.test_case "star (linear, Lemma 3)" `Quick test_star_linear;
        Alcotest.test_case "repeated variables in one atom" `Quick
          test_repeated_vars_in_atom;
        Alcotest.test_case "constants at indexed positions" `Quick
          test_constants_at_indexed_positions;
        Alcotest.test_case "unbound-unbound Eq domain sweep" `Quick
          test_unbound_unbound_eq_sweep;
        Alcotest.test_case "relation index reuse" `Quick
          test_relation_index_reuse;
        Alcotest.test_case "relation sorted view memoised" `Quick
          test_relation_sorted_view_memoised;
      ] );
  ]
