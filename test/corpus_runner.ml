(* Drives the obda CLI over the exit-code corpus: every MANIFEST line is
   [<expected-exit> <arguments>]; a case fails when the observed exit code
   differs — in particular, an uncaught exception (exit 2 from the OCaml
   runtime with a backtrace) shows up as a mismatch on the 0/3/4/5 cases.

   A line starting with the [json] directive instead asserts that the CLI
   exits 0 AND that every line it writes to stdout parses as JSON — this is
   how the corpus pins down the machine-readable contract of
   [--metrics-json -] and [--trace].

   Usage: corpus_runner <obda-exe> <corpus-dir> *)

let read_lines path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  loop []

(* every non-empty stdout line must be a standalone JSON value *)
let check_json_lines path =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match Obda_obs.Json.parse line with
        | Ok _ -> None
        | Error e -> Some (Printf.sprintf "%S: %s" line e))
    (read_lines path)

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: corpus_runner <obda-exe> <corpus-dir>";
    exit 2
  end;
  let exe = Sys.argv.(1) and dir = Sys.argv.(2) in
  let ic = open_in (Filename.concat dir "MANIFEST") in
  let total = ref 0 and failures = ref 0 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         incr total;
         match String.index_opt line ' ' with
         | None ->
           Printf.printf "FAIL (malformed manifest line): %s\n%!" line;
           incr failures
         | Some i ->
           let directive = String.sub line 0 i in
           let args = String.sub line (i + 1) (String.length line - i - 1) in
           if directive = "json" then begin
             let out = Filename.temp_file "obda-corpus" ".jsonl" in
             let cmd =
               Printf.sprintf "%s %s >%s 2>/dev/null" (Filename.quote exe) args
                 (Filename.quote out)
             in
             let code = Sys.command cmd in
             let bad = if code = 0 then check_json_lines out else [] in
             (match (code, bad) with
             | 0, [] -> Printf.printf "ok   (json stdout): obda %s\n%!" args
             | 0, errs ->
               Printf.printf "FAIL (%d non-JSON stdout lines): obda %s\n%!"
                 (List.length errs) args;
               List.iter (Printf.printf "       %s\n%!") errs;
               incr failures
             | code, _ ->
               Printf.printf "FAIL (exit %d, want 0): obda %s\n%!" code args;
               incr failures);
             Sys.remove out
           end
           else begin
             let expected = int_of_string directive in
             let cmd =
               Printf.sprintf "%s %s >/dev/null 2>/dev/null"
                 (Filename.quote exe) args
             in
             let code = Sys.command cmd in
             if code = expected then
               Printf.printf "ok   (exit %d): obda %s\n%!" code args
             else begin
               Printf.printf "FAIL (exit %d, want %d): obda %s\n%!" code
                 expected args;
               incr failures
             end
           end
       end
     done
   with End_of_file -> ());
  close_in ic;
  Printf.printf "corpus: %d cases, %d failures\n%!" !total !failures;
  exit (if !failures = 0 then 0 else 1)
