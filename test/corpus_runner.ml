(* Drives the obda CLI over the exit-code corpus: every MANIFEST line is
   [<expected-exit> <arguments>]; a case fails when the observed exit code
   differs — in particular, an uncaught exception (exit 2 from the OCaml
   runtime with a backtrace) shows up as a mismatch on the 0/3/4/5 cases.

   Usage: corpus_runner <obda-exe> <corpus-dir> *)

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: corpus_runner <obda-exe> <corpus-dir>";
    exit 2
  end;
  let exe = Sys.argv.(1) and dir = Sys.argv.(2) in
  let ic = open_in (Filename.concat dir "MANIFEST") in
  let total = ref 0 and failures = ref 0 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         incr total;
         match String.index_opt line ' ' with
         | None ->
           Printf.printf "FAIL (malformed manifest line): %s\n%!" line;
           incr failures
         | Some i ->
           let expected = int_of_string (String.sub line 0 i) in
           let args = String.sub line (i + 1) (String.length line - i - 1) in
           let cmd =
             Printf.sprintf "%s %s >/dev/null 2>/dev/null" (Filename.quote exe)
               args
           in
           let code = Sys.command cmd in
           if code = expected then
             Printf.printf "ok   (exit %d): obda %s\n%!" code args
           else begin
             Printf.printf "FAIL (exit %d, want %d): obda %s\n%!" code expected
               args;
             incr failures
           end
       end
     done
   with End_of_file -> ());
  close_in ic;
  Printf.printf "corpus: %d cases, %d failures\n%!" !total !failures;
  exit (if !failures = 0 then 0 else 1)
