(* Drives the obda CLI over the exit-code corpus: every MANIFEST line is
   [<expected-exit> <arguments>]; a case fails when the observed exit code
   differs — in particular, an uncaught exception (exit 2 from the OCaml
   runtime with a backtrace) shows up as a mismatch on the 0/3/4/5 cases.

   A line starting with the [json] directive instead asserts that the CLI
   exits 0 AND that every line it writes to stdout parses as JSON — this is
   how the corpus pins down the machine-readable contract of
   [--metrics-json -] and [--trace].

   [chaos <exit> <args>] runs the command with an extra [--trace=FILE] and
   asserts the expected exit code, an empty stdout (no partial answer rows
   under an injected fault) and that every trace line re-parses as JSON.

   [sigpipe <args>] pipes the command into a consumer that closes the pipe
   immediately and asserts the CLI exits 141 (128+SIGPIPE) rather than
   dying with a backtrace.

   Usage: corpus_runner <obda-exe> <corpus-dir> *)

let read_lines path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  loop []

(* every non-empty stdout line must be a standalone JSON value *)
let check_json_lines path =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match Obda_obs.Json.parse line with
        | Ok _ -> None
        | Error e -> Some (Printf.sprintf "%S: %s" line e))
    (read_lines path)

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: corpus_runner <obda-exe> <corpus-dir>";
    exit 2
  end;
  let exe = Sys.argv.(1) and dir = Sys.argv.(2) in
  let ic = open_in (Filename.concat dir "MANIFEST") in
  let total = ref 0 and failures = ref 0 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         incr total;
         match String.index_opt line ' ' with
         | None ->
           Printf.printf "FAIL (malformed manifest line): %s\n%!" line;
           incr failures
         | Some i ->
           let directive = String.sub line 0 i in
           let args = String.sub line (i + 1) (String.length line - i - 1) in
           if directive = "json" then begin
             let out = Filename.temp_file "obda-corpus" ".jsonl" in
             let cmd =
               Printf.sprintf "%s %s >%s 2>/dev/null" (Filename.quote exe) args
                 (Filename.quote out)
             in
             let code = Sys.command cmd in
             let bad = if code = 0 then check_json_lines out else [] in
             (match (code, bad) with
             | 0, [] -> Printf.printf "ok   (json stdout): obda %s\n%!" args
             | 0, errs ->
               Printf.printf "FAIL (%d non-JSON stdout lines): obda %s\n%!"
                 (List.length errs) args;
               List.iter (Printf.printf "       %s\n%!") errs;
               incr failures
             | code, _ ->
               Printf.printf "FAIL (exit %d, want 0): obda %s\n%!" code args;
               incr failures);
             Sys.remove out
           end
           else if directive = "chaos" then begin
             let expected, args =
               match String.index_opt args ' ' with
               | Some j ->
                 ( int_of_string (String.sub args 0 j),
                   String.sub args (j + 1) (String.length args - j - 1) )
               | None -> failwith ("malformed chaos line: " ^ line)
             in
             let out = Filename.temp_file "obda-corpus" ".out" in
             let trace = Filename.temp_file "obda-corpus" ".jsonl" in
             let cmd =
               Printf.sprintf "%s %s --trace=%s >%s 2>/dev/null"
                 (Filename.quote exe) args (Filename.quote trace)
                 (Filename.quote out)
             in
             let code = Sys.command cmd in
             let stdout_lines =
               List.filter (fun l -> String.trim l <> "") (read_lines out)
             in
             let bad_trace = check_json_lines trace in
             if code = expected && stdout_lines = [] && bad_trace = [] then
               Printf.printf "ok   (chaos exit %d): obda %s\n%!" code args
             else begin
               Printf.printf
                 "FAIL (chaos: exit %d want %d, %d stdout lines, %d bad \
                  trace lines): obda %s\n\
                  %!"
                 code expected
                 (List.length stdout_lines)
                 (List.length bad_trace) args;
               incr failures
             end;
             Sys.remove out;
             Sys.remove trace
           end
           else if directive = "sigpipe" then begin
             let codefile = Filename.temp_file "obda-corpus" ".code" in
             (* the subshell records the CLI's own exit code; head closes
                the pipe before the writer is done *)
             let cmd =
               Printf.sprintf
                 "sh -c '( %s %s; echo $? > %s ) | head -c 64 >/dev/null'"
                 (Filename.quote exe) args (Filename.quote codefile)
             in
             ignore (Sys.command cmd);
             let code =
               match read_lines codefile with
               | first :: _ -> int_of_string_opt (String.trim first)
               | [] -> None
             in
             (match code with
             | Some 141 ->
               Printf.printf "ok   (sigpipe exit 141): obda %s\n%!" args
             | other ->
               Printf.printf "FAIL (sigpipe: exit %s, want 141): obda %s\n%!"
                 (match other with
                 | Some c -> string_of_int c
                 | None -> "unknown")
                 args;
               incr failures);
             Sys.remove codefile
           end
           else begin
             let expected = int_of_string directive in
             let cmd =
               Printf.sprintf "%s %s >/dev/null 2>/dev/null"
                 (Filename.quote exe) args
             in
             let code = Sys.command cmd in
             if code = expected then
               Printf.printf "ok   (exit %d): obda %s\n%!" code args
             else begin
               Printf.printf "FAIL (exit %d, want %d): obda %s\n%!" code
                 expected args;
               incr failures
             end
           end
       end
     done
   with End_of_file -> ());
  close_in ic;
  Printf.printf "corpus: %d cases, %d failures\n%!" !total !failures;
  exit (if !failures = 0 then 0 else 1)
