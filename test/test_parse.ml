open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
open Obda_parse
open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let example11_text =
  {|
# the ontology of Example 11
P(x,y) -> S(x,y)
P(x,y) -> R(y,x)
|}

let test_parse_example11 () =
  let t = Parse.ontology_of_string example11_text in
  check "P ⊑ S" true (Tbox.sub_role t ~sub:(role "P") ~sup:(role "S"));
  check "P ⊑ R⁻" true (Tbox.sub_role t ~sub:(role "P") ~sup:(role "R-"));
  check "depth 1" true (Tbox.depth t = Tbox.Finite 1)

let test_parse_concepts () =
  let t =
    Parse.ontology_of_string
      {|
A(x) -> B(x)
A(x) -> P(x,_)
P(_,x) -> C(x)
Q(x,_) -> P(x,_)
refl W
A(x), C(x) -> false
P(x,y), Q(x,y) -> false
irrefl V
|}
  in
  check "A ⊑ B" true
    (Tbox.subsumes t ~sub:(Concept.Name (sym "A")) ~sup:(Concept.Name (sym "B")));
  check "A ⊑ ∃P" true
    (Tbox.subsumes t ~sub:(Concept.Name (sym "A")) ~sup:(Concept.Exists (role "P")));
  check "∃P⁻ ⊑ C" true
    (Tbox.subsumes t ~sub:(Concept.Exists (role "P-")) ~sup:(Concept.Name (sym "C")));
  check "∃Q ⊑ ∃P" true
    (Tbox.subsumes t ~sub:(Concept.Exists (role "Q")) ~sup:(Concept.Exists (role "P")));
  check "refl W" true (Tbox.reflexive t (role "W"));
  check_int "2 bottom axioms + irrefl" 3
    (List.length (Tbox.disjoint_concept_axioms t)
    + List.length (Tbox.disjoint_role_axioms t)
    + List.length (Tbox.irreflexive_axioms t))

let test_parse_inverse_role_incl () =
  let t = Parse.ontology_of_string "P(x,y) -> R(y,x)\n" in
  check "P ⊑ R⁻" true (Tbox.sub_role t ~sub:(role "P") ~sup:(role "R-"));
  check "P⁻ ⊑ R" true (Tbox.sub_role t ~sub:(role "P-") ~sup:(role "R"))

let test_parse_query () =
  let q = Parse.query_of_string "q(x0,x2) <- R(x0,x1), S(x1,x2), A(x1)" in
  check_int "3 atoms" 3 (Cq.size q);
  check "answer vars" true (Cq.answer_vars q = [ "x0"; "x2" ]);
  check "tree" true (Cq.is_tree_shaped q);
  let b = Parse.query_of_string "q() <- A(x), R(x,_)" in
  check "boolean" true (Cq.is_boolean b);
  check_int "underscore becomes a variable" 2 (List.length (Cq.vars b))

let test_parse_data () =
  let a = Parse.data_of_string "A(c1). R(c1,c2).\nB(c2) R(c2,c3)" in
  check_int "4 atoms" 4 (Abox.num_atoms a);
  check "R(c2,c3)" true (Abox.mem_binary a (sym "R") (sym "c2") (sym "c3"))

let test_roundtrip () =
  let t = example11_tbox () in
  let t' = Parse.ontology_of_string (Parse.ontology_to_string t) in
  check "axiom count preserved" true
    (List.length (Tbox.axioms t) = List.length (Tbox.axioms t'));
  let q = example8_cq () in
  let q' = Parse.query_of_string (Parse.query_to_string q) in
  check "query round-trip" true (Cq.compare q q' = 0);
  let a = abox_of_facts [ `U ("A", "c1"); `B ("R", "c1", "c2") ] in
  let a' = Parse.data_of_string (Parse.data_to_string a) in
  check_int "data round-trip" (Abox.num_atoms a) (Abox.num_atoms a')

let test_parse_errors () =
  let fails f =
    try
      ignore (f ());
      false
    with
    | Obda_runtime.Error.Obda_error (Obda_runtime.Error.Parse_error _) -> true
  in
  check "garbage rejected" true
    (fails (fun () -> Parse.ontology_of_string "A(x) ->"));
  check "bad arity" true
    (fails (fun () -> Parse.ontology_of_string "A(x,y,z) -> B(x)"));
  check "unknown construct" true
    (fails (fun () -> Parse.query_of_string "not a query"))

let test_end_to_end () =
  (* parse everything and answer through the full pipeline *)
  let t = Parse.ontology_of_string example11_text in
  let q = Parse.query_of_string "q(x0,x3) <- R(x0,x1), S(x1,x2), R(x2,x3)" in
  let a = Parse.data_of_string "P(b,a) R(b,c) P(d,c)" in
  let omq = Obda_rewriting.Omq.make t q in
  let expected = certain_answers omq a in
  Alcotest.(check (list (list string)))
    "pipeline agrees with chase" expected
    (answers_via Obda_rewriting.Omq.Tw omq a)

let test_parse_mapping () =
  let m =
    Parse.mapping_of_string
      {|
# comments work here too
Employee(x) <- employees(x,n,d,m)
worksOn(x,p) <- contracts(x,p,_), active(p)
|}
  in
  check_int "two rules" 2 (List.length m);
  check "validates" true (Obda_mapping.Mapping.validate m = Ok ());
  let src =
    Parse.source_of_string
      "employees(e1,ada,research,e2). contracts(e1,warp,lead)
active(warp)"
  in
  check_int "three relations" 3
    (List.length (Obda_mapping.Source.relations src));
  let md = Obda_mapping.Mapping.materialise m src in
  check "Employee(e1)" true (Abox.mem_unary md (sym "Employee") (sym "e1"));
  check "worksOn(e1,warp)" true
    (Abox.mem_binary md (sym "worksOn") (sym "e1") (sym "warp"))

let test_parse_mapping_errors () =
  let fails f =
    try
      ignore (f ());
      false
    with
    | Obda_runtime.Error.Obda_error (Obda_runtime.Error.Parse_error _)
    | Invalid_argument _ -> true
  in
  check "missing arrow" true
    (fails (fun () -> Parse.mapping_of_string "Employee(x) employees(x)"));
  check "dangling head var" true
    (fails (fun () -> Parse.mapping_of_string "Employee(y) <- employees(x)"));
  check "source rows must be ground-ish" true
    (fails (fun () -> Parse.source_of_string "t(a,"))

let suites =
  [
    ( "parse",
      [
        Alcotest.test_case "example 11" `Quick test_parse_example11;
        Alcotest.test_case "concept axioms" `Quick test_parse_concepts;
        Alcotest.test_case "inverse role inclusion" `Quick
          test_parse_inverse_role_incl;
        Alcotest.test_case "query" `Quick test_parse_query;
        Alcotest.test_case "data" `Quick test_parse_data;
        Alcotest.test_case "round-trip" `Quick test_roundtrip;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "end to end" `Quick test_end_to_end;
        Alcotest.test_case "mapping files" `Quick test_parse_mapping;
        Alcotest.test_case "mapping errors" `Quick test_parse_mapping_errors;
      ] );
  ]
