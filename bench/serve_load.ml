(* serve-load: a closed-loop load generator against the concurrent network
   server.  1/8/64 clients hammer one shared session over a Unix socket
   with a mixed workload — every fourth client alternates ASSERT/RETRACT of
   its own fact, everyone else issues ANSWER — and the harness reports
   req/s with p50/p95/p99 latency per level.

   The workload doubles as a snapshot-correctness check: the prepared
   query is qsq(x,y) <- A(x), A(y), whose certain-answer count over any
   frozen ABox is n² for n resident A-facts.  A torn read — evaluation
   overlapping a writer's mutation — would produce a non-square count
   (n·(n+1) and the like), so "every response was a perfect square" is
   exactly "every ANSWER saw one frozen revision". *)

open Bench_support
module Server = Obda_service.Server
module Client = Obda_service.Client
module Session = Obda_service.Session
module Abox = Obda_data.Abox
module Symbol = Obda_syntax.Symbol
module Histogram = Obda_obs.Histogram

(* exact sorted-array percentile at the same rank convention as
   [Histogram.quantile] (rank = max 1 (ceil (q * n)), 1-based), so the
   two estimates bracket the same order statistic and must agree within
   one bucket's relative error *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
    sorted.(min (n - 1) (rank - 1))

let is_square n =
  n >= 0
  &&
  let r = int_of_float (sqrt (float_of_int n) +. 0.5) in
  r * r = n

let connections = 8
let ops_per_client = 40
let seed_facts = 10

(* The same mixed workload without the latency instrumentation: the
   throughput probe for the durability leg. *)
let run_clients address clients =
  let non_square = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let client_body ci =
    let cl = Client.connect address in
    let fact = Printf.sprintf "A(w%d_%d)" clients ci in
    let present = ref false in
    for op = 0 to ops_per_client - 1 do
      let req =
        if ci mod 4 = 0 && op mod 2 = 1 then
          if !present then begin
            present := false;
            "RETRACT " ^ fact
          end
          else begin
            present := true;
            "ASSERT " ^ fact
          end
        else "ANSWER qsq"
      in
      match Client.request cl req with
      | first :: _ when String.starts_with ~prefix:"OK answers=" first -> (
        match
          int_of_string_opt (String.sub first 11 (String.length first - 11))
        with
        | Some n when is_square n -> ()
        | _ -> Atomic.incr non_square)
      | first :: _ when String.starts_with ~prefix:"OK" first -> ()
      | _ -> Atomic.incr errors
    done;
    ignore (Client.request cl "QUIT");
    Client.close cl
  in
  let threads = List.init clients (fun ci -> Thread.create client_body ci) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  ( float_of_int (clients * ops_per_client) /. wall,
    Atomic.get non_square,
    Atomic.get errors )

(* One 8-client throughput measurement on a fresh server, with or without
   a WAL: identical session/server config, one discarded warmup pass, then
   the measured pass via the uninstrumented probe.  Returns
   (rate, non_square, errors) accumulated over BOTH passes. *)
let measure_8_clients ~durable =
  let module Wal = Obda_service.Wal in
  let module Serve = Obda_service.Serve in
  let session = Session.create () in
  Session.load_ontology session (example11 ());
  let wal =
    if not durable then None
    else begin
      let dir = Filename.temp_file "obda-bench-wal" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let wal, _ = Wal.open_ ~policy:(Wal.Interval 0.1) dir in
      Serve.attach_wal session wal;
      Some wal
    end
  in
  ignore
    (Session.assert_facts session
       (List.init seed_facts (fun i ->
            Abox.Concept_assertion
              (Symbol.intern "A", Symbol.intern (Printf.sprintf "base%d" i)))));
  let path = Filename.temp_file "obda-bench" ".sock" in
  Sys.remove path;
  let address = Server.Unix_socket path in
  let server =
    Server.create ~connections ~backlog:128 ~max_inflight:connections address
      session
  in
  let server_thread = Thread.create (fun () -> ignore (Server.run server)) () in
  let c0 = Client.connect address in
  (match Client.request c0 "PREPARE qsq q(x,y) <- A(x), A(y)" with
  | first :: _ when String.starts_with ~prefix:"OK" first -> ()
  | other -> failwith ("PREPARE failed: " ^ String.concat " | " other));
  ignore (Client.request c0 "QUIT");
  Client.close c0;
  let _, warm_ns, warm_errs = run_clients address 8 in
  let rate, non_square, errors = run_clients address 8 in
  Server.stop server;
  Thread.join server_thread;
  (match wal with
  | Some wal ->
    Serve.detach_wal session;
    Wal.close wal
  | None -> ());
  Session.close session;
  (rate, non_square + warm_ns, errors + warm_errs)

(* Durability leg: the 8-client level against a session whose mutations go
   through a WAL with --durability=interval:100.  ANSWERs dominate the mix
   and never touch the log, and the interval policy bounds fsyncs to one
   per 100 ms window, so the acknowledged-durable server must stay within
   1.5x of the in-memory baseline.

   Honest pairing: the baseline is re-measured here, back-to-back with the
   durable leg, using the same uninstrumented probe and the same warmed
   config.  (An earlier revision reused the instrumented latency loop's
   8-client rate as the baseline — two clock reads and a histogram record
   per request — which made the durable leg look faster than in-memory,
   slowdown 0.84x.  A slowdown below 0.9x now fails the bench as a pairing
   bias.) *)
let durable_leg () =
  let mem_rate, mem_ns, mem_errs = measure_8_clients ~durable:false in
  let dur_rate, dur_ns, dur_errs = measure_8_clients ~durable:true in
  let slowdown = mem_rate /. dur_rate in
  record_float "durable.baseline_req_s" mem_rate;
  record_float "durable.req_s" dur_rate;
  record_float "durable.slowdown" slowdown;
  record_int "durable.non_square" (mem_ns + dur_ns);
  record_int "durable.errors" (mem_errs + dur_errs);
  Printf.printf
    "durable (8 clients, interval:100): %.0f req/s vs %.0f req/s in-memory \
     — %.2fx slowdown (acceptance: within [0.9x, 1.5x], squares intact)\n"
    dur_rate mem_rate slowdown;
  if mem_ns + dur_ns > 0 then
    failwith "snapshot isolation violated (durable leg)";
  if mem_errs + dur_errs > 0 then failwith "request errors on the durable leg";
  if slowdown > 1.5 then
    failwith
      (Printf.sprintf "durability slowdown %.2fx exceeds the 1.5x budget"
         slowdown);
  if slowdown < 0.9 then
    failwith
      (Printf.sprintf
         "durability slowdown %.2fx is implausibly low: the legs are not \
          measuring the same workload (pairing bias)"
         slowdown)

let run () =
  print_header
    "serve-load: closed-loop clients over a Unix socket, mixed \
     ASSERT/RETRACT + ANSWER (answer counts must stay perfect squares)";
  let session = Session.create () in
  Session.load_ontology session (example11 ());
  ignore
    (Session.assert_facts session
       (List.init seed_facts (fun i ->
            Abox.Concept_assertion
              (Symbol.intern "A", Symbol.intern (Printf.sprintf "base%d" i)))));
  let path = Filename.temp_file "obda-bench" ".sock" in
  Sys.remove path;
  let address = Server.Unix_socket path in
  let server =
    Server.create ~connections ~backlog:128 ~max_inflight:connections address
      session
  in
  let server_thread = Thread.create (fun () -> ignore (Server.run server)) () in
  let c0 = Client.connect address in
  (match Client.request c0 "PREPARE qsq q(x,y) <- A(x), A(y)" with
  | first :: _ when String.starts_with ~prefix:"OK" first -> ()
  | other -> failwith ("PREPARE failed: " ^ String.concat " | " other));
  ignore (Client.request c0 "QUIT");
  Client.close c0;
  Printf.printf
    "server: connections=%d backlog=128 max-inflight=%d; %d seed facts, %d \
     ops/client\n"
    connections connections seed_facts ops_per_client;
  let widths = [ 9; 7; 9; 10; 10; 10; 9; 7 ] in
  print_row widths
    [ "clients"; "reqs"; "req/s"; "p50(ms)"; "p95(ms)"; "p99(ms)"; "squares"; "errs" ];
  let all_square = ref true in
  let all_agree = ref true in
  let prev_recording = Histogram.recording () in
  Histogram.set_enabled true;
  List.iter
    (fun clients ->
      let latencies = Array.make (clients * ops_per_client) 0. in
      (* one histogram per client thread, merged after the join: the same
         shape the server uses per connection, so this doubles as a merge
         correctness check under real contention *)
      let hists =
        Array.init clients (fun ci ->
            Histogram.create ~scale:1e9
              (Printf.sprintf "load.c%d.%d" clients ci))
      in
      let non_square = Atomic.make 0 in
      let errors = Atomic.make 0 in
      let t0 = Unix.gettimeofday () in
      let client_body ci =
        let cl = Client.connect address in
        let fact = Printf.sprintf "A(w%d_%d)" clients ci in
        let present = ref false in
        for op = 0 to ops_per_client - 1 do
          let req =
            if ci mod 4 = 0 && op mod 2 = 1 then
              if !present then begin
                present := false;
                "RETRACT " ^ fact
              end
              else begin
                present := true;
                "ASSERT " ^ fact
              end
            else "ANSWER qsq"
          in
          let t = Unix.gettimeofday () in
          let resp = Client.request cl req in
          let dt = Unix.gettimeofday () -. t in
          latencies.((ci * ops_per_client) + op) <- dt;
          Histogram.record hists.(ci) dt;
          match resp with
          | first :: _ when String.starts_with ~prefix:"OK answers=" first -> (
            match int_of_string_opt (String.sub first 11 (String.length first - 11)) with
            | Some n when is_square n -> ()
            | _ -> Atomic.incr non_square)
          | first :: _ when String.starts_with ~prefix:"OK" first -> ()
          | _ -> Atomic.incr errors
        done;
        ignore (Client.request cl "QUIT");
        Client.close cl
      in
      let threads =
        List.init clients (fun ci -> Thread.create client_body ci)
      in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t0 in
      let reqs = clients * ops_per_client in
      Array.sort compare latencies;
      let merged =
        Histogram.create ~scale:1e9 (Printf.sprintf "load.c%d" clients)
      in
      Array.iter (fun h -> Histogram.merge_into ~into:merged h) hists;
      let snap = Histogram.snapshot merged in
      (* histogram quantile (bucket upper bound) vs the exact order
         statistic at the same rank: the exact value must lie inside the
         quantile's bucket, i.e. in (hq/ratio, hq] *)
      let quantile_ms q =
        let hq = Histogram.quantile snap q in
        let exact = percentile latencies q in
        if not (exact <= hq *. 1.000001 && exact > hq /. Histogram.ratio *. 0.999999)
        then begin
          all_agree := false;
          Printf.printf
            "DISAGREE c%d q%.2f: histogram %.6fs vs exact %.6fs\n" clients q
            hq exact
        end;
        hq *. 1000.
      in
      let p50 = quantile_ms 0.50
      and p95 = quantile_ms 0.95
      and p99 = quantile_ms 0.99 in
      let rate = float_of_int reqs /. wall in
      let squares_ok = Atomic.get non_square = 0 in
      if not squares_ok then all_square := false;
      let tag fmt = Printf.sprintf "c%d.%s" clients fmt in
      record_float (tag "req_s") rate;
      record_float (tag "p50_ms") p50;
      record_float (tag "p95_ms") p95;
      record_float (tag "p99_ms") p99;
      record_float (tag "exact_p50_ms") (percentile latencies 0.50 *. 1000.);
      record_float (tag "exact_p95_ms") (percentile latencies 0.95 *. 1000.);
      record_float (tag "exact_p99_ms") (percentile latencies 0.99 *. 1000.);
      record_int (tag "non_square") (Atomic.get non_square);
      record_int (tag "errors") (Atomic.get errors);
      print_row widths
        [
          string_of_int clients;
          string_of_int reqs;
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.2f" p50;
          Printf.sprintf "%.2f" p95;
          Printf.sprintf "%.2f" p99;
          (if squares_ok then "yes" else "NO");
          string_of_int (Atomic.get errors);
        ])
    [ 1; 8; 64 ];
  Histogram.set_enabled prev_recording;
  Server.stop server;
  Thread.join server_thread;
  Session.close session;
  durable_leg ();
  Printf.printf
    "(squares=yes on every level: no ANSWER ever saw a torn revision; \
     quantiles from merged per-client histograms, checked against exact \
     sorted-array percentiles within one bucket; acceptance: all yes, errs \
     0)\n";
  if not !all_square then failwith "snapshot isolation violated";
  if not !all_agree then
    failwith "histogram quantile disagrees with exact percentile"
