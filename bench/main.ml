(* The experiment harness: regenerates every table and figure of the paper
   (Fig. 1 classification, Fig. 2 / Table 1 rewriting sizes, Table 2
   datasets, Tables 3-5 evaluation) plus the Section 4/5 hardness
   constructions, and a Bechamel micro-benchmark per table. *)

open Bench_support
open Obda_syntax
open Obda_ontology
open Obda_cq
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
open Obda_reductions

let scale = ref 0.05
let timeout = ref 3.0
let max_len = ref 15
let max_cqs = ref 10_000

(* ------------------------------------------------------------------ *)
(* Fig. 1: the complexity landscape, witnessed by our rewritings *)

let fig1 () =
  print_header
    "Fig. 1: OMQ classification and rewriting witnesses (combined complexity)";
  let t1 = example11 () in
  let deep =
    Tbox.make
      [
        Tbox.Concept_incl (Concept.Name (Symbol.intern "A"),
                           Concept.Exists (Role.of_string "P"));
        Tbox.Concept_incl (Concept.Exists (Role.of_string "P-"),
                           Concept.Exists (Role.of_string "S"));
      ]
  in
  let infinite = Sat.t_dagger () in
  let linear_q = prefix_query sequence1 6 in
  let tree_q =
    Cq.make ~answer:[ "c" ]
      [
        Cq.Binary (Symbol.intern "R", "c", "l1");
        Cq.Binary (Symbol.intern "S", "c", "l2");
        Cq.Binary (Symbol.intern "R", "l3", "c");
      ]
  in
  let cyclic_q =
    Cq.make ~answer:[ "x" ]
      [
        Cq.Binary (Symbol.intern "R", "x", "y");
        Cq.Binary (Symbol.intern "S", "y", "z");
        Cq.Binary (Symbol.intern "R", "x", "z");
      ]
  in
  let widths = [ 22; 30; 9; 7; 7; 9; 9 ] in
  print_row widths
    [ "ontology"; "classes"; "alg"; "claus"; "width"; "linear"; "sd" ];
  List.iter
    (fun (tname, tbox) ->
      List.iter
        (fun (qname, q) ->
          let omq = Omq.make tbox q in
          let c = Omq.classify omq in
          List.iter
            (fun alg ->
              if Omq.applicable alg omq then begin
                let r = Omq.rewrite ~over:`Complete alg omq in
                print_row widths
                  [
                    tname ^ "/" ^ qname;
                    String.concat " " c.Omq.classes;
                    Omq.algorithm_name alg;
                    string_of_int (Ndl.num_clauses r);
                    string_of_int (Ndl.width r);
                    string_of_bool (Ndl.is_linear r);
                    Printf.sprintf "%.1f" (Ndl.skinny_depth r);
                  ]
              end)
            [ Omq.Lin; Omq.Log; Omq.Tw ])
        [ ("linear(l=2)", linear_q); ("tree(l=3)", tree_q); ("tw=2", cyclic_q) ])
    [ ("depth1", t1); ("depth2", deep); ("depth-inf(Tdag)", infinite) ];
  print_endline
    "(NL cell = Lin linear rewriting; LOGCFL cells = Log/Tw with log skinny \
     depth)"

(* ------------------------------------------------------------------ *)
(* Fig. 2 / Table 1: rewriting sizes on the three sequences *)

let table1 () =
  print_header
    "Table 1 / Fig. 2: number of clauses of the NDL-rewritings (arbitrary \
     instances)";
  let tbox = example11 () in
  List.iter
    (fun (i, letters) ->
      Printf.printf "\nSequence %d: %s\n" i letters;
      let widths = 6 :: List.map (fun _ -> 9) table1_algorithms in
      print_row widths ("atoms" :: List.map algorithm_label table1_algorithms);
      (* once a baseline hits its limit, longer prefixes only get worse *)
      let dead = Hashtbl.create 8 in
      for n = 1 to min !max_len (String.length letters) do
        let q = prefix_query letters n in
        let omq = Omq.make tbox q in
        let cells =
          List.map
            (fun alg ->
              if Hashtbl.mem dead alg then "-"
              else
                match
                  rewriting_size
                    ~budget:(Obda_runtime.Budget.create ~timeout:!timeout ())
                    ~max_cqs:!max_cqs alg omq
                with
                | Some k -> string_of_int k
                | None ->
                  Hashtbl.replace dead alg ();
                  "-")
            table1_algorithms
        in
        print_row widths (string_of_int n :: cells)
      done)
    sequences

(* ------------------------------------------------------------------ *)
(* Table 2: datasets *)

let table2 () =
  print_header
    (Printf.sprintf "Table 2: generated datasets (scale %g of the paper's)"
       !scale);
  let tbox = example11 () in
  let widths = [ 8; 9; 9; 9; 12; 12; 6 ] in
  print_row widths [ "dataset"; "V"; "p"; "q"; "avg.deg"; "atoms"; "seed" ];
  List.iter
    (fun (name, (params : Obda_data.Generate.graph_params), abox) ->
      print_row widths
        [
          name;
          string_of_int params.Obda_data.Generate.vertices;
          Printf.sprintf "%.4f" params.Obda_data.Generate.edge_prob;
          Printf.sprintf "%.4f" params.Obda_data.Generate.concept_prob;
          Printf.sprintf "%.1f"
            (params.Obda_data.Generate.edge_prob
            *. float_of_int params.Obda_data.Generate.vertices);
          string_of_int (Obda_data.Abox.num_atoms abox);
          string_of_int default_seed;
        ])
    (datasets ~scale:!scale tbox)

(* ------------------------------------------------------------------ *)
(* Tables 3-5: evaluating the rewritings *)

let eval_table ~table_no ~letters () =
  print_header
    (Printf.sprintf
       "Table %d: evaluation on sequence %s (time s | answers | generated \
        tuples; scale %g, timeout %gs)"
       table_no letters !scale !timeout);
  let tbox = example11 () in
  let ds = datasets ~scale:!scale tbox in
  let len = min !max_len (String.length letters) in
  (* compute each rewriting once, shared across the datasets *)
  let dead = Hashtbl.create 8 in
  let rewritings =
    Array.init (len + 1) (fun n ->
        if n = 0 then []
        else
          let q = prefix_query letters n in
          let omq = Omq.make tbox q in
          List.map
            (fun alg ->
              if Hashtbl.mem dead alg then (alg, None)
              else
                match
                  rewrite
                    ~budget:(Obda_runtime.Budget.create ~timeout:!timeout ())
                    ~max_cqs:!max_cqs alg omq
                with
                | query -> (alg, Some query)
                | exception Skipped _ ->
                  Hashtbl.replace dead alg ();
                  (alg, None))
            eval_algorithms)
  in
  List.iter
    (fun (dname, _, abox) ->
      Printf.printf "\ndataset %s (%d atoms, seed %d)\n" dname
        (Obda_data.Abox.num_atoms abox)
        default_seed;
      let widths =
        6 :: List.concat_map (fun _ -> [ 8; 9; 10 ]) eval_algorithms
      in
      print_row widths
        ("atoms"
        :: List.concat_map
             (fun alg -> [ algorithm_label alg; "#ans"; "#tup" ])
             eval_algorithms);
      for n = 1 to len do
        let cells =
          List.concat_map
            (fun (_, rewriting) ->
              let o =
                match rewriting with
                | None -> Not_available "limit"
                | Some query -> evaluate ~timeout:!timeout query abox
              in
              [
                cell_of_outcome `Time o;
                cell_of_outcome `Answers o;
                cell_of_outcome `Tuples o;
              ])
            rewritings.(n)
        in
        print_row widths (string_of_int n :: cells)
      done)
    ds

let table3 = eval_table ~table_no:3 ~letters:sequence1
let table4 = eval_table ~table_no:4 ~letters:sequence2
let table5 = eval_table ~table_no:5 ~letters:sequence3

(* ------------------------------------------------------------------ *)
(* Section 4.1 / Theorem 15: hitting set *)

let thm15 () =
  print_header
    "Theorem 15 (W[2]-hardness): p-HittingSet via OMQs with depth-2k \
     ontologies";
  let widths = [ 6; 6; 6; 6; 6; 7; 10 ] in
  print_row widths [ "n"; "m"; "k"; "hit?"; "omq?"; "agree"; "time(s)" ];
  List.iter
    (fun (seed, n, m, k) ->
      let h = Hitting_set.random ~seed ~n ~m ~max_edge:3 in
      let expected = Hitting_set.has_hitting_set h ~k in
      let t0 = Unix.gettimeofday () in
      let got = Hitting_set.answer_via_omq h ~k in
      let dt = Unix.gettimeofday () -. t0 in
      print_row widths
        [
          string_of_int n;
          string_of_int m;
          string_of_int k;
          string_of_bool expected;
          string_of_bool got;
          string_of_bool (expected = got);
          Printf.sprintf "%.3f" dt;
        ])
    [
      (1, 3, 2, 1); (2, 3, 2, 2); (3, 4, 3, 1); (4, 4, 3, 2); (5, 5, 3, 2);
      (6, 4, 4, 3);
    ]

(* Section 4.2 / Theorem 16: partitioned clique *)

let thm16 () =
  print_header
    "Theorem 16 (W[1]-hardness): PartitionedClique via bounded-leaf OMQs";
  let widths = [ 12; 8; 8; 7; 10 ] in
  print_row widths [ "parts"; "clique?"; "omq?"; "agree"; "time(s)" ];
  List.iter
    (fun (seed, part_sizes, prob) ->
      let g = Clique.random ~seed ~part_sizes ~edge_prob:prob in
      let expected = Clique.has_partitioned_clique g in
      let t0 = Unix.gettimeofday () in
      let got = Clique.answer_via_omq g in
      let dt = Unix.gettimeofday () -. t0 in
      print_row widths
        [
          String.concat "+" (List.map string_of_int part_sizes);
          string_of_bool expected;
          string_of_bool got;
          string_of_bool (expected = got);
          Printf.sprintf "%.3f" dt;
        ])
    [
      (1, [ 2; 2 ], 0.5); (2, [ 2; 2 ], 0.9); (3, [ 2; 2 ], 0.2);
      (4, [ 1; 2 ], 1.0); (5, [ 2; 1; 2 ], 0.9);
    ]

(* Section 5 / Theorem 17: SAT with the fixed ontology T† *)

let thm17 () =
  print_header
    "Theorem 17 (NP-hardness, fixed T†): SAT as OMQ answering over {A(a)}";
  let widths = [ 6; 6; 6; 6; 7; 10 ] in
  print_row widths [ "vars"; "claus"; "sat?"; "omq?"; "agree"; "time(s)" ];
  List.iter
    (fun (seed, nvars, nclauses) ->
      let cnf = Dpll.random_3cnf ~seed ~nvars ~nclauses in
      let expected = Dpll.satisfiable cnf in
      let t0 = Unix.gettimeofday () in
      let got = Sat.satisfiable_via_omq cnf in
      let dt = Unix.gettimeofday () -. t0 in
      print_row widths
        [
          string_of_int nvars;
          string_of_int nclauses;
          string_of_bool expected;
          string_of_bool got;
          string_of_bool (expected = got);
          Printf.sprintf "%.3f" dt;
        ])
    [ (1, 2, 3); (2, 2, 4); (3, 3, 4); (4, 3, 6); (5, 3, 8); (6, 4, 6) ];
  (* Lemma 26 spot check *)
  let cnf =
    { Dpll.nvars = 2; clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ] }
  in
  let agree = ref true in
  for bits = 0 to 15 do
    let alpha = Array.init 4 (fun i -> (bits lsr i) land 1 = 1) in
    if Sat.qbar_answer cnf alpha <> Sat.f_phi cnf alpha then agree := false
  done;
  Printf.printf "Lemma 26 (qbar over tree instances, all 16 alpha): agree=%b\n"
    !agree

(* Section 5 / Theorem 22: hardest CFL with the fixed ontology T‡ *)

let thm22 () =
  print_header
    "Theorem 22 (LOGCFL-hardness, fixed T‡): hardest CFL as linear OMQs";
  let widths = [ 26; 6; 6; 7; 10 ] in
  print_row widths [ "word"; "inL?"; "omq?"; "agree"; "time(s)" ];
  List.iter
    (fun w ->
      let expected = Cfl.in_hardest_language w in
      let t0 = Unix.gettimeofday () in
      let got = Cfl.answer_via_omq w in
      let dt = Unix.gettimeofday () -. t0 in
      print_row widths
        [
          w;
          string_of_bool expected;
          string_of_bool got;
          string_of_bool (expected = got);
          Printf.sprintf "%.3f" dt;
        ])
    [
      "[a1a2#b2b1]";
      "[a1a2#b2b1][b2b1]";
      "[a1a2#b2b1][a1b1]";
      "[#a1a2#b2b1][a1b1]";
      "[a1b1]";
      "[a1][b1]";
      "[a2][b2]";
      "[a1b1#a2]";
    ]

(* Section 5 / Theorem 21: evaluating PE-queries over tree instances *)

let thm21 () =
  print_header
    "Theorem 21 (PE evaluation is NP-hard): q_m over the tree instances";
  let widths = [ 6; 8; 10; 6; 6; 7; 10 ] in
  print_row widths [ "k"; "m"; "|q_m|"; "sat?"; "pe?"; "agree"; "time(s)" ];
  let nvars = 3 in
  let q = Pe.query_qm ~nvars in
  List.iter
    (fun bits ->
      let flags = Array.init 8 (fun i -> (bits lsr i) land 1 = 1) in
      let cnf = Dpll.all_clauses_3cnf nvars in
      let expected = Dpll.satisfiable (Dpll.remove_clauses cnf flags) in
      let alpha = Pe.qm_alpha_of_clause_flags ~nvars flags in
      let abox = Sat.tree_instance alpha in
      let t0 = Unix.gettimeofday () in
      let got = Pe.holds abox [ ("x", Sat.tree_root) ] q in
      let dt = Unix.gettimeofday () -. t0 in
      print_row widths
        [
          string_of_int nvars;
          string_of_int (Pe.qm_clause_count ~nvars);
          string_of_int (Pe.size q);
          string_of_bool expected;
          string_of_bool got;
          string_of_bool (expected = got);
          Printf.sprintf "%.3f" dt;
        ])
    [ 0; 1; 17; 85; 170; 254; 255 ]

(* Fig. 1(b): succinctness — PE-rewriting sizes vs NDL-rewriting sizes *)

let fig1b () =
  print_header
    "Fig. 1(b): size of PE-rewritings vs NDL-rewritings (complete instances)";
  let tbox = example11 () in
  let widths = [ 6; 10; 10; 10; 10 ] in
  List.iter
    (fun (i, letters) ->
      Printf.printf "\nSequence %d: %s\n" i letters;
      print_row widths [ "atoms"; "PE-size"; "PE-depth"; "Lin-NDL"; "Tw-NDL" ];
      for n = 1 to min !max_len (String.length letters) do
        let q = prefix_query letters n in
        let omq = Omq.make tbox q in
        let pe = Obda_rewriting.Pe_rewriter.rewrite tbox q in
        print_row widths
          [
            string_of_int n;
            string_of_int (Obda_rewriting.Pe_rewriter.size pe);
            string_of_int (Obda_rewriting.Pe_rewriter.matrix_depth pe);
            string_of_int (Ndl.num_clauses (Omq.rewrite ~over:`Complete Omq.Lin omq));
            string_of_int (Ndl.num_clauses (Omq.rewrite ~over:`Complete Omq.Tw omq));
          ]
      done)
    sequences;
  print_endline
    "(PE grows super-polynomially where the NDL rewritings stay linear — \
     the Fig. 1(b) gap)"

(* Adaptive (cost-based) strategy vs the fixed strategies *)

let adaptive () =
  print_header
    "Adaptive splitting (Section 6 future work): cost-based choice vs fixed";
  let tbox = example11 () in
  let ds = datasets ~scale:!scale tbox in
  let widths = [ 8; 6; 16; 10; 10 ] in
  print_row widths [ "dataset"; "atoms"; "chosen"; "est.cost"; "time(s)" ];
  List.iter
    (fun (dname, _, abox) ->
      List.iter
        (fun n ->
          let q = prefix_query sequence1 n in
          let c = Obda_rewriting.Adaptive.choose tbox q abox in
          let o = evaluate ~timeout:!timeout c.Obda_rewriting.Adaptive.query abox in
          print_row widths
            [
              dname;
              string_of_int n;
              c.Obda_rewriting.Adaptive.name;
              Printf.sprintf "%.0f" c.Obda_rewriting.Adaptive.cost;
              cell_of_outcome `Time o;
            ])
        [ 4; 8; 12; 15 ])
    ds

(* Splitting-strategy ablation (the Section 6 discussion: none of the three
   strategies dominates, and the choice of splitting points matters) *)

let ablation () =
  print_header
    "Ablation: splitting strategies (Lin root choice; Tw vs Tw* inlining)";
  let tbox = example11 () in
  let _, _, abox =
    build_dataset ~scale:!scale tbox (List.nth Obda_data.Generate.table2_params 1)
  in
  let widths = [ 7; 16; 9; 10; 10 ] in
  print_row widths [ "atoms"; "variant"; "clauses"; "time(s)"; "#tup" ];
  List.iter
    (fun n ->
      let q = prefix_query sequence1 n in
      let omq = Omq.make tbox q in
      let variants =
        [
          ( "Lin/root=x0",
            Obda_ndl.Star.complete_to_arbitrary_linear tbox
              (Obda_rewriting.Lin_rewriter.rewrite ~root:"x0" tbox q) );
          ( Printf.sprintf "Lin/root=x%d" n,
            Obda_ndl.Star.complete_to_arbitrary_linear tbox
              (Obda_rewriting.Lin_rewriter.rewrite
                 ~root:(Printf.sprintf "x%d" n) tbox q) );
          ( Printf.sprintf "Lin/root=x%d" (n / 2),
            Obda_ndl.Star.complete_to_arbitrary_linear tbox
              (Obda_rewriting.Lin_rewriter.rewrite
                 ~root:(Printf.sprintf "x%d" (n / 2)) tbox q) );
          ("Tw", Omq.rewrite Omq.Tw omq);
          ("Tw*", Obda_ndl.Optimize.inline_single_use (Omq.rewrite Omq.Tw omq));
        ]
      in
      List.iter
        (fun (name, query) ->
          let o = evaluate ~timeout:!timeout query abox in
          print_row widths
            [
              string_of_int n;
              name;
              string_of_int (Ndl.num_clauses query);
              cell_of_outcome `Time o;
              cell_of_outcome `Tuples o;
            ])
        variants)
    [ 4; 8; 12; 15 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table *)

let micro () =
  print_header "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let tbox = example11 () in
  let q8 = prefix_query sequence1 8 in
  let omq8 = Omq.make tbox q8 in
  let _, _, small_abox =
    build_dataset ~scale:0.02 tbox (List.hd Obda_data.Generate.table2_params)
  in
  let lin_q = Omq.rewrite Omq.Lin omq8 in
  let tests =
    [
      Test.make ~name:"fig1:classify"
        (Staged.stage (fun () -> Omq.classify omq8));
      Test.make ~name:"table1:rewrite-Lin(seq1,8)"
        (Staged.stage (fun () -> Omq.rewrite Omq.Lin omq8));
      Test.make ~name:"table1:rewrite-Log(seq1,8)"
        (Staged.stage (fun () -> Omq.rewrite Omq.Log omq8));
      Test.make ~name:"table1:rewrite-Tw(seq1,8)"
        (Staged.stage (fun () -> Omq.rewrite Omq.Tw omq8));
      Test.make ~name:"table2:generate-dataset1(small)"
        (Staged.stage (fun () ->
             build_dataset ~scale:0.02 tbox
               (List.hd Obda_data.Generate.table2_params)));
      Test.make ~name:"table3-5:eval-Lin(seq1,8,small)"
        (Staged.stage (fun () -> Obda_ndl.Eval.run lin_q small_abox));
      Test.make ~name:"thm17:sat-omq(2vars)"
        (Staged.stage (fun () ->
             Sat.satisfiable_via_omq
               { Dpll.nvars = 2; clauses = [ [ 1; 2 ]; [ -1 ] ] }));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let grouped = Test.make_grouped ~name:"obda" tests in
  let results = Benchmark.all cfg [ instance ] grouped in
  let analyzed = Analyze.all ols instance results in
  Hashtbl.iter
    (fun name est ->
      match Analyze.OLS.estimates est with
      | Some [ t ] -> Printf.printf "%-42s %14.0f ns/run\n" name t
      | _ -> Printf.printf "%-42s (no estimate)\n" name)
    analyzed

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the full Fig. 2 pipeline (rewrite + evaluate) under
   no sink (the default), the null sink, and the in-memory collector.  The
   disabled configuration is the one every untraced request runs in; its
   per-event cost is a single load-and-branch, and the comparison against
   the sink configurations bounds it from above. *)

let obs_overhead () =
  print_header
    "Telemetry overhead: Fig. 2 pipeline (Tw rewrite + eval) per sink";
  let module Obs = Obda_obs.Obs in
  let tbox = example11 () in
  let q = prefix_query sequence1 8 in
  let omq = Omq.make tbox q in
  let _, _, abox =
    build_dataset ~scale:0.02 tbox (List.hd Obda_data.Generate.table2_params)
  in
  let pipeline () =
    let query = Omq.rewrite Omq.Tw omq in
    ignore (Obda_ndl.Eval.run query abox)
  in
  let iterations = 40 in
  let time_config label install teardown =
    (* warm up (symbol tables, minor heap shape) before the timed runs *)
    for _ = 1 to 5 do
      pipeline ()
    done;
    install ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iterations do
      pipeline ()
    done;
    let per_run = (Unix.gettimeofday () -. t0) /. float_of_int iterations in
    teardown ();
    (label, per_run)
  in
  let configs =
    [
      time_config "disabled (no sink)" ignore ignore;
      time_config "null sink"
        (fun () -> Obs.install Obs.null_sink)
        Obs.uninstall;
      time_config "collector sink"
        (fun () -> Obs.install (Obs.Collector.sink (Obs.Collector.create ())))
        Obs.uninstall;
    ]
  in
  let _, baseline = List.hd configs in
  let widths = [ 20; 12; 10 ] in
  print_row widths [ "configuration"; "ms/run"; "overhead" ];
  List.iter
    (fun (label, per_run) ->
      print_row widths
        [
          label;
          Printf.sprintf "%.3f" (per_run *. 1000.);
          Printf.sprintf "%+.1f%%" ((per_run /. baseline -. 1.) *. 100.);
        ])
    configs;
  print_endline
    "(disabled is the default of every request; the deltas bound the cost \
     of the per-event branch)";
  (* the disabled path itself: one counter event is a load and a branch *)
  let n = 10_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Obs.incr "overhead.probe"
  done;
  let per_event = (Unix.gettimeofday () -. t0) /. float_of_int n in
  Printf.printf
    "disabled counter event: %.2f ns (%d events ~ %.4f ms per pipeline run)\n"
    (per_event *. 1e9) 1000
    (per_event *. 1000. *. 1000.);
  (* the fault-site guard when no --inject plan is armed: same shape, one
     load and one branch (acceptance: <= 5 ns per guarded site) *)
  let module Fault = Obda_runtime.Fault in
  assert (not (Fault.armed ()));
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Fault.hit Fault.chase_step
  done;
  let per_site = (Unix.gettimeofday () -. t0) /. float_of_int n in
  Printf.printf "disabled fault-site check: %.2f ns per guarded site\n"
    (per_site *. 1e9);
  (* the serving path's latency histograms: a disarmed record is the same
     load-and-branch as a counter event; an armed record is a frexp, three
     mantissa compares and two fetch-and-adds — no logarithm, no lock
     (acceptance: disarmed <= 5 ns, armed <= 50 ns per event) *)
  let module Histogram = Obda_obs.Histogram in
  let h = Histogram.create ~scale:1e9 "overhead.probe.hist" in
  let prev = Histogram.recording () in
  Histogram.set_enabled false;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Histogram.record h 0.000123
  done;
  let disarmed = (Unix.gettimeofday () -. t0) /. float_of_int n in
  Histogram.set_enabled true;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Histogram.record h 0.000123
  done;
  let armed = (Unix.gettimeofday () -. t0) /. float_of_int n in
  Histogram.set_enabled prev;
  Printf.printf
    "histogram record: %.2f ns disarmed, %.2f ns armed per event\n"
    (disarmed *. 1e9) (armed *. 1e9);
  record_float "hist_record_disarmed_ns" (disarmed *. 1e9);
  record_float "hist_record_armed_ns" (armed *. 1e9)

(* ------------------------------------------------------------------ *)
(* The service layer's amortisation claim: answering through a prepared
   query (rewrite once, evaluate many) vs re-running the cold pipeline
   per request, on the Fig. 2 OMQ sequence over a small dataset (so the
   rewrite dominates and the cache is what matters).  The cached-prepare
   column re-issues PREPARE before every ANSWER — the re-prepare is a
   content-addressed cache hit, so it should track the prepared column,
   not the cold one. *)

let service_cache () =
  print_header
    "service-cache: cold pipeline vs prepared vs cached re-prepare (Fig. 2 \
     sequence 1)";
  let module Session = Obda_service.Session in
  let module Obs = Obda_obs.Obs in
  let tbox = example11 () in
  let _, _, abox =
    build_dataset ~scale:0.01 tbox (List.hd Obda_data.Generate.table2_params)
  in
  let requests = 25 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let widths = [ 7; 11; 11; 11; 9; 9 ] in
  print_row widths
    [ "atoms"; "cold"; "prepared"; "cached"; "speedup"; "hit-rate" ];
  let total_speedup = ref 0. and rows = ref 0 in
  List.iter
    (fun n ->
      let cq = prefix_query sequence1 n in
      (* cold: a fresh session per request — parse-free, but every request
         pays classification + rewriting + consistency from scratch *)
      let cold =
        time (fun () ->
            for _ = 1 to requests do
              let s = Session.create () in
              Session.load_ontology s tbox;
              Session.load_data s abox;
              let p, _ = Session.prepare s ~name:"q" cq in
              ignore (Session.answer s p)
            done)
      in
      (* prepared: rewrite once, answer [requests] times; cached: a
         PREPARE + ANSWER pair per request on the same session, so every
         re-prepare is a content-addressed cache hit *)
      let session = Session.create () in
      Session.load_ontology session tbox;
      Session.load_data session abox;
      let (prepared_t, cached_t), collector =
        Obs.collecting (fun () ->
            let p, _ = Session.prepare session ~name:"q" cq in
            let prepared_t =
              time (fun () ->
                  for _ = 1 to requests do
                    ignore (Session.answer session p)
                  done)
            in
            let cached_t =
              time (fun () ->
                  for _ = 1 to requests do
                    let p, _ = Session.prepare session ~name:"q" cq in
                    ignore (Session.answer session p)
                  done)
            in
            (prepared_t, cached_t))
      in
      (* hit-rate from the telemetry collector: one miss for the initial
         prepare, a hit per cached re-prepare *)
      let hits = Obs.Collector.counter collector "service.cache.hit" in
      let misses = Obs.Collector.counter collector "service.cache.miss" in
      let speedup = cold /. prepared_t in
      total_speedup := !total_speedup +. speedup;
      incr rows;
      print_row widths
        [
          string_of_int n;
          Printf.sprintf "%.2fms" (cold /. float_of_int requests *. 1e3);
          Printf.sprintf "%.2fms" (prepared_t /. float_of_int requests *. 1e3);
          Printf.sprintf "%.2fms" (cached_t /. float_of_int requests *. 1e3);
          Printf.sprintf "%.1fx" speedup;
          Printf.sprintf "%d/%d" hits (hits + misses);
        ])
    [ 4; 6; 8; 10; 12 ];
  record_float "mean_speedup" (!total_speedup /. float_of_int !rows);
  Printf.printf
    "mean prepared-vs-cold speedup: %.1fx over %d query sizes (acceptance: \
     >= 5x)\n"
    (!total_speedup /. float_of_int !rows)
    !rows

(* ------------------------------------------------------------------ *)
(* Parallel evaluation scaling: one Tw rewriting of the Fig. 2 sequence,
   evaluated sequentially and on 2- and 4-worker pools over the largest
   Table 2 dataset.  The answer sets must be identical at every worker
   count (the partition merge re-sorts, so this is the byte-identical
   contract of `--jobs`); the speedup column is bounded by however many
   cores the machine actually has. *)

let par_scaling () =
  print_header
    "par-scaling: one Tw rewriting, 1/2/4 evaluation workers (largest \
     Table 2 dataset)";
  let module Pool = Obda_runtime.Pool in
  let tbox = example11 () in
  let largest =
    List.nth Obda_data.Generate.table2_params
      (List.length Obda_data.Generate.table2_params - 1)
  in
  let dname, _, abox = build_dataset ~scale:!scale tbox largest in
  Printf.printf "dataset %s: %d atoms over %d individuals, %d cores\n" dname
    (Obda_data.Abox.num_atoms abox)
    (Obda_data.Abox.num_individuals abox)
    (Domain.recommended_domain_count ());
  let widths = [ 7; 9; 10; 9; 10; 11 ] in
  print_row widths [ "atoms"; "workers"; "time(s)"; "speedup"; "#tup"; "identical" ];
  let speedup4 = ref [] in
  List.iter
    (fun n ->
      let q = prefix_query sequence1 n in
      let query = Omq.rewrite Omq.Tw (Omq.make tbox q) in
      let run jobs =
        let t0 = Unix.gettimeofday () in
        let r =
          if jobs = 1 then Eval.run query abox
          else Pool.with_pool ~jobs (fun pool -> Eval.run ~pool query abox)
        in
        (Unix.gettimeofday () -. t0, r)
      in
      let t1, r1 = run 1 in
      List.iter
        (fun jobs ->
          let t, r = if jobs = 1 then (t1, r1) else run jobs in
          let speedup = t1 /. t in
          if jobs = 4 then speedup4 := speedup :: !speedup4;
          print_row widths
            [
              string_of_int n;
              string_of_int jobs;
              Printf.sprintf "%.3f" t;
              Printf.sprintf "%.2fx" speedup;
              string_of_int r.Eval.generated_tuples;
              (if r.Eval.answers = r1.Eval.answers then "yes" else "NO");
            ])
        [ 1; 2; 4 ])
    [ 8; 12; 15 ];
  let mean =
    List.fold_left ( +. ) 0. !speedup4 /. float_of_int (List.length !speedup4)
  in
  record_float "mean_speedup_4w" mean;
  Printf.printf
    "mean 4-worker speedup: %.2fx on %d core(s) (acceptance: >= 2x given >= \
     4 cores)\n"
    mean
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Cost-based join planning + semi-naïve delta evaluation vs the naïve
   baseline (--naive: written-order heuristic, index-only access, full
   re-derivation per fixpoint round), on the Table 2 datasets.  Two legs
   per dataset: the Tw rewriting of the Fig. 2 sequence (planning reorders
   the rewriting's clause bodies), and a recursive transitive closure over
   the dataset's R edges (semi-naïve deltas bound re-derivation).  Answers
   must be byte-identical to the baseline and across 1/2/4 workers; the
   acceptance gate runs on the largest dataset. *)

let eval_plan () =
  print_header
    (Printf.sprintf
       "eval-plan: cost-based planning + semi-naïve evaluation vs the naïve \
        baseline (scale %g)"
       !scale);
  let module Pool = Obda_runtime.Pool in
  let module Eval = Obda_ndl.Eval in
  let tbox = example11 () in
  let ds = datasets ~scale:!scale tbox in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let seq_query =
    Omq.rewrite Omq.Tw (Omq.make tbox (prefix_query sequence1 12))
  in
  let tc_query =
    let v x = Ndl.Var x in
    let tc = Symbol.intern "TC" and r = Symbol.intern "R" in
    Ndl.make ~goal:tc ~goal_args:[ "x"; "y" ]
      [
        { Ndl.head = (tc, [ v "x"; v "y" ]); body = [ Ndl.Pred (r, [ v "x"; v "y" ]) ] };
        {
          Ndl.head = (tc, [ v "x"; v "z" ]);
          body =
            [ Ndl.Pred (tc, [ v "x"; v "y" ]); Ndl.Pred (r, [ v "y"; v "z" ]) ];
        };
      ]
  in
  let widths = [ 12; 10; 10; 12; 12; 7; 10 ] in
  print_row widths
    [
      "dataset/leg"; "naive(s)"; "plan(s)"; "naive-reads"; "plan-reads";
      "drop"; "identical";
    ]
  ;
  let identity_ok = ref true in
  let gate_failures = ref [] in
  let largest_naive = ref 0 and largest_planned = ref 0 in
  let n_datasets = List.length ds in
  List.iteri
    (fun di (dname, _, abox) ->
      List.iter
        (fun (leg, query) ->
          let tn, rn = time (fun () -> Eval.run ~naive:true query abox) in
          let tp, rp = time (fun () -> Eval.run query abox) in
          let identical =
            rp.Eval.answers = rn.Eval.answers
            && List.for_all
                 (fun jobs ->
                   Pool.with_pool ~jobs (fun pool ->
                       (Eval.run ~pool query abox).Eval.answers)
                   = rp.Eval.answers)
                 [ 2; 4 ]
          in
          if not identical then identity_ok := false;
          let drop =
            float_of_int rn.Eval.tuples_read
            /. float_of_int (max 1 rp.Eval.tuples_read)
          in
          let tag k = Printf.sprintf "%s.%s.%s" dname leg k in
          record_int (tag "naive_reads") rn.Eval.tuples_read;
          record_int (tag "planned_reads") rp.Eval.tuples_read;
          record_float (tag "naive_s") tn;
          record_float (tag "planned_s") tp;
          record_int (tag "answers") (List.length rp.Eval.answers);
          if di = n_datasets - 1 then begin
            (* acceptance gates, largest dataset.  The recursive leg is
               where semi-naïve evaluation must win outright: strictly
               fewer tuple reads AND less wall clock than full
               re-derivation.  On the non-recursive rewriting the legacy
               written-order heuristic is already near-optimal for this
               query shape, and the planner deliberately trades a handful
               of reads for time (scanning ≤16-tuple relations instead of
               probing), so the gate there is "no regression": within 1%
               of the baseline's reads.  The combined largest-dataset
               total must still drop strictly. *)
            largest_naive := !largest_naive + rn.Eval.tuples_read;
            largest_planned := !largest_planned + rp.Eval.tuples_read;
            if leg = "tc" then begin
              if rp.Eval.tuples_read >= rn.Eval.tuples_read then
                gate_failures :=
                  Printf.sprintf "tc: planned reads %d >= naive %d"
                    rp.Eval.tuples_read rn.Eval.tuples_read
                  :: !gate_failures;
              if tp >= tn then
                gate_failures :=
                  Printf.sprintf "tc: planned %.3fs >= naive %.3fs" tp tn
                  :: !gate_failures
            end
            else if
              float_of_int rp.Eval.tuples_read
              > 1.01 *. float_of_int rn.Eval.tuples_read
            then
              gate_failures :=
                Printf.sprintf "%s: planned reads %d regress past naive %d"
                  leg rp.Eval.tuples_read rn.Eval.tuples_read
                :: !gate_failures
          end;
          print_row widths
            [
              dname ^ "/" ^ leg;
              Printf.sprintf "%.3f" tn;
              Printf.sprintf "%.3f" tp;
              string_of_int rn.Eval.tuples_read;
              string_of_int rp.Eval.tuples_read;
              Printf.sprintf "%.1fx" drop;
              (if identical then "yes" else "NO");
            ])
        [ ("seq1", seq_query); ("tc", tc_query) ])
    ds;
  record_int "largest.naive_reads" !largest_naive;
  record_int "largest.planned_reads" !largest_planned;
  Printf.printf "largest dataset totals: %d planned reads vs %d naive\n"
    !largest_planned !largest_naive;
  if !largest_planned >= !largest_naive then
    gate_failures :=
      Printf.sprintf "largest-dataset total: planned reads %d >= naive %d"
        !largest_planned !largest_naive
      :: !gate_failures;
  if not !identity_ok then
    failwith "eval-plan: answers differ between engines or worker counts";
  match !gate_failures with
  | [] ->
    print_endline
      "acceptance: ok — semi-naïve evaluation reads strictly fewer tuples \
       (and is faster) than full re-derivation on the largest dataset's \
       recursive leg, planning does not regress the rewriting leg, and \
       answers are byte-identical at 1/2/4 workers"
  | fs -> failwith ("eval-plan acceptance gate: " ^ String.concat "; " fs)

let experiments =
  [
    ("fig1", fig1);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("thm15", thm15);
    ("thm16", thm16);
    ("thm17", thm17);
    ("thm22", thm22);
    ("thm21", thm21);
    ("fig1b", fig1b);
    ("adaptive", adaptive);
    ("ablation", ablation);
    ("micro", micro);
    ("obs-overhead", obs_overhead);
    ("service-cache", service_cache);
    ("par-scaling", par_scaling);
    ("eval-plan", eval_plan);
    ("serve-load", Serve_load.run);
  ]

let () =
  let chosen = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--timeout" :: v :: rest ->
      timeout := float_of_string v;
      parse rest
    | "--max-len" :: v :: rest ->
      max_len := int_of_string v;
      parse rest
    | "--max-cqs" :: v :: rest ->
      max_cqs := int_of_string v;
      parse rest
    | name :: rest when List.mem_assoc name experiments ->
      chosen := name :: !chosen;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s\nusage: main.exe [%s] [--scale X] [--timeout S] \
         [--max-len N] [--max-cqs N]\n"
        arg
        (String.concat "|" (List.map fst experiments));
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let to_run =
    if !chosen = [] then List.map fst experiments else List.rev !chosen
  in
  (* one broken experiment must not take down the remaining tables; every
     experiment — aborted or not — appends its timestamped row to
     BENCH_<experiment>.json *)
  List.iter
    (fun name ->
      reset_metrics ();
      let t0 = Unix.gettimeofday () in
      let status =
        try
          (List.assoc name experiments) ();
          "ok"
        with exn ->
          flush stdout;
          let msg =
            match Obda_runtime.Error.of_exn exn with
            | Some e -> Obda_runtime.Error.to_string e
            | None -> Printexc.to_string exn
          in
          Printf.printf "experiment %s aborted: %s\n%!" name msg;
          "aborted"
      in
      persist_experiment ~name ~duration:(Unix.gettimeofday () -. t0) ~status)
    to_run
