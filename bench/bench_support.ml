(* Shared infrastructure for the experiment harness: the OMQ(1,1,2)
   sequences of Section 6, dataset construction (Table 2), rewriting-size
   and evaluation measurements, and table printing. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval
module Optimize = Obda_ndl.Optimize
module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Obs = Obda_obs.Obs

(* ------------------------------------------------------------------ *)
(* The ontology of Example 11 and the three query sequences of Fig. 2 *)

let example11 () =
  Tbox.make
    [
      Tbox.Role_incl (Role.of_string "P", Role.of_string "S");
      Tbox.Role_incl (Role.of_string "P", Role.of_string "R-");
    ]

let sequence1 = "RRSRSRSRRSRRSSR"
let sequence2 = "SRRRRRSRSRRRRRR"
let sequence3 = "SRRSSRSRSRRSRRS"
let sequences = [ (1, sequence1); (2, sequence2); (3, sequence3) ]

(* the linear CQ over the first n letters, answer variables x0 and xn *)
let prefix_query letters n =
  let v i = Printf.sprintf "x%d" i in
  let atoms =
    List.init n (fun i ->
        Cq.Binary (Symbol.intern (String.make 1 letters.[i]), v i, v (i + 1)))
  in
  Cq.make ~answer:[ v 0; v n ] atoms

(* ------------------------------------------------------------------ *)
(* Algorithms of the experiment (the starred ones are our stand-ins for the
   systems of the paper; see DESIGN.md) *)

type algorithm =
  | Rapid_star
  | Clipper_star
  | Presto_star
  | Lin
  | Log
  | Tw
  | Tw_star

let algorithm_label = function
  | Rapid_star -> "Rapid*"
  | Clipper_star -> "Clipper*"
  | Presto_star -> "Presto*"
  | Lin -> "Lin"
  | Log -> "Log"
  | Tw -> "Tw"
  | Tw_star -> "Tw*"

let table1_algorithms = [ Rapid_star; Clipper_star; Presto_star; Lin; Log; Tw ]

let eval_algorithms =
  [ Rapid_star; Clipper_star; Presto_star; Lin; Log; Tw; Tw_star ]

exception Skipped of string

(* rewriting over arbitrary data instances, like the systems compared in the
   paper; [max_cqs] bounds the UCQ baselines (their 15-minute timeouts) and
   [budget] bounds one case so a runaway rewriting yields a table cell, not
   a dead harness *)
let rewrite ?budget ?(max_cqs = 20_000) alg omq =
  try
    match alg with
    | Clipper_star ->
      Obda_rewriting.Ucq_rewriter.rewrite ?budget ~max_cqs omq.Omq.tbox
        omq.Omq.cq
    | Rapid_star ->
      (* condensation is quadratic in the number of CQs: bail out like Rapid's
         timeouts in the paper *)
      let cqs =
        Obda_rewriting.Ucq_rewriter.rewrite_cqs ?budget ~max_cqs omq.Omq.tbox
          omq.Omq.cq
      in
      if List.length cqs > 1200 then raise (Skipped "too many CQs to condense")
      else
        Obda_rewriting.Ucq_rewriter.rewrite_condensed ?budget ~max_cqs
          omq.Omq.tbox omq.Omq.cq
    | Presto_star ->
      let complete_level =
        Obda_rewriting.Presto_like.rewrite ?budget ~max_subsets:max_cqs
          omq.Omq.tbox omq.Omq.cq
      in
      Obda_ndl.Star.complete_to_arbitrary omq.Omq.tbox complete_level
    | Lin -> Omq.rewrite ?budget Omq.Lin omq
    | Log -> Omq.rewrite ?budget Omq.Log omq
    | Tw -> Omq.rewrite ?budget Omq.Tw omq
    | Tw_star -> Optimize.inline_single_use (Omq.rewrite ?budget Omq.Tw omq)
  with
  | Obda_rewriting.Ucq_rewriter.Limit_reached
  | Obda_rewriting.Presto_like.Limit_reached -> raise (Skipped "limit")
  | Error.Obda_error (Error.Budget_exhausted _) -> raise (Skipped "timeout")
  | Error.Obda_error (Error.Not_applicable _) -> raise (Skipped "n/a")

(* The size columns come from the telemetry collector rather than from
   re-measuring the returned program: every rewriter reports its final
   [ndl.clauses] gauge, so the table shows exactly what the pipeline saw. *)
let rewriting_size ?budget ?max_cqs alg omq =
  match Obs.collecting (fun () -> rewrite ?budget ?max_cqs alg omq) with
  | exception Skipped _ -> None
  | q, c -> (
    match Obs.Collector.gauge_int c "ndl.clauses" with
    | Some n -> Some n
    | None -> Some (Ndl.num_clauses q))

(* ------------------------------------------------------------------ *)
(* Datasets of Table 2 *)

let marker tbox r = Tbox.exists_name tbox (Role.of_string r)

(* the fixed generator seed, printed in every harness row so a timeout cell
   identifies an exactly reproducible instance *)
let default_seed = 42

let build_dataset ?(seed = default_seed) ~scale tbox (name, params) =
  let params = if scale = 1.0 then params else Generate.scale scale params in
  let abox =
    Generate.erdos_renyi ~seed ~edge_pred:(Symbol.intern "R")
      ~concepts:[ marker tbox "P"; marker tbox "P-" ]
      params
  in
  (name, params, abox)

let datasets ?seed ~scale tbox =
  List.map (build_dataset ?seed ~scale tbox) Generate.table2_params

(* ------------------------------------------------------------------ *)
(* Timed evaluation *)

type eval_outcome =
  | Ok_result of { time : float; answers : int; tuples : int }
  | Timed_out of float
  | Not_available of string

let evaluate ~timeout query abox =
  (* both the legacy deadline thunk and a per-case budget: the budget also
     caps evaluation phases that predate the thunk's check sites *)
  let budget = Budget.create ~timeout () in
  let t0 = Unix.gettimeofday () in
  let deadline () = Unix.gettimeofday () -. t0 > timeout in
  (* answer/tuple counts come from the evaluator's own telemetry gauges *)
  match Obs.collecting (fun () -> Eval.run ~budget ~deadline query abox) with
  | _r, c ->
    Ok_result
      {
        time = Unix.gettimeofday () -. t0;
        answers =
          Option.value ~default:0 (Obs.Collector.gauge_int c "eval.answers");
        tuples =
          Option.value ~default:0
            (Obs.Collector.gauge_int c "eval.generated_tuples");
      }
  | exception (Eval.Timeout | Error.Obda_error (Error.Budget_exhausted _)) ->
    Timed_out timeout
  | exception Error.Obda_error e -> Not_available (Error.class_name e)

let evaluate_alg ~timeout ?max_cqs alg omq abox =
  match rewrite ~budget:(Budget.create ~timeout ()) ?max_cqs alg omq with
  | exception Skipped why -> Not_available why
  | query -> evaluate ~timeout query abox

(* ------------------------------------------------------------------ *)
(* Table printing *)

let print_row widths cells =
  let padded =
    List.map2
      (fun w c -> if String.length c >= w then c else String.make (w - String.length c) ' ' ^ c)
      widths cells
  in
  print_endline (String.concat "  " padded);
  (* flush per row: a crashed or killed case must not lose the table so far *)
  flush stdout

let print_header title =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline title;
  print_endline (String.make 78 '=')

let cell_of_option = function Some n -> string_of_int n | None -> "-"

(* ------------------------------------------------------------------ *)
(* Experiment persistence: the harness appends one JSON line per run to
   BENCH_<experiment>.json — timestamp, duration, status and whatever
   metrics the experiment recorded — so successive runs accumulate a
   comparable history next to the printed tables. *)

module Json = Obda_obs.Json

let current_metrics : (string * Json.t) list ref = ref []
let reset_metrics () = current_metrics := []
let record_metric key v = current_metrics := (key, v) :: !current_metrics
let record_int key n = record_metric key (Json.Int n)
let record_float key x = record_metric key (Json.Float x)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* provenance columns: which commit and machine produced a history row —
   without them two BENCH_*.json runs from different checkouts are not
   comparable *)
let git_rev =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let rev = try input_line ic with End_of_file -> "" in
       match (Unix.close_process_in ic, rev) with
       | Unix.WEXITED 0, rev when rev <> "" -> rev
       | _ -> "unknown"
     with _ -> "unknown")

let hostname = lazy (try Unix.gethostname () with _ -> "unknown")

let persist_experiment ~name ~duration ~status =
  let row =
    Json.Assoc
      (("ts", Json.String (iso8601 (Unix.time ())))
      :: ("experiment", Json.String name)
      :: ("git_rev", Json.String (Lazy.force git_rev))
      :: ("hostname", Json.String (Lazy.force hostname))
      :: ("status", Json.String status)
      :: ("duration_s", Json.Float duration)
      :: List.rev !current_metrics)
  in
  let path = "BENCH_" ^ name ^ ".json" in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  output_string oc (Json.to_string row);
  output_char oc '\n';
  close_out oc

let cell_of_outcome field = function
  | Ok_result r -> (
    match field with
    | `Time -> Printf.sprintf "%.3f" r.time
    | `Answers -> string_of_int r.answers
    | `Tuples -> string_of_int r.tuples)
  | Timed_out _ -> ( match field with `Time -> "timeout" | _ -> "-")
  | Not_available _ -> "-"
