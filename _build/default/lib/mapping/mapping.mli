(** GAV mappings M from a relational source to the ontology vocabulary
    (Section 1 / reduction (1) of the paper).

    A mapping is a set of rules [S(x…) ← body] whose heads are unary or
    binary ontology atoms and whose bodies are conjunctions over the source
    relations (plus equalities).  Two evaluation modes are provided:

    - {!materialise}: compute the ABox M(D) explicitly and proceed as usual
      ("in practice, both!" — materialisation);
    - {!unfold}: splice the mapping under an NDL-rewriting so the rewriting
      evaluates directly over the source ("so there is no need to
      materialise M(D)"). *)

open Obda_syntax
open Obda_data

type rule = {
  head : Symbol.t * string list;  (** a unary or binary ontology atom *)
  body : Obda_ndl.Ndl.atom list;  (** over the source relations *)
}

type t = rule list

val rule : string -> string list -> Obda_ndl.Ndl.atom list -> rule
(** Convenience constructor; validates that head variables occur in the body
    and the head arity is 1 or 2. *)

val validate : t -> (unit, string) result

val materialise : t -> Source.t -> Abox.t
(** The instance M(D). *)

val unfold : t -> Obda_ndl.Ndl.query -> Obda_ndl.Ndl.query
(** Replace the ontology's extensional predicates by their mapping
    definitions, yielding a program over the source schema. *)

val answers_virtual :
  t -> Obda_ndl.Ndl.query -> Source.t -> Symbol.t list list
(** Evaluate an (unfolded) rewriting directly over the source. *)
