(** A relational data source D: named n-ary relations over constants.

    This is the "actual structure of the data" of the paper's introduction —
    arbitrary-arity tables that end users never see; the GAV mapping
    ({!Mapping}) connects it to the ontology vocabulary. *)

open Obda_syntax

type t

val create : unit -> t

val add : t -> Symbol.t -> Symbol.t list -> unit
(** Add a tuple to a relation (the arity is fixed by the first tuple;
    raises [Invalid_argument] on a mismatch). *)

val add_row : t -> string -> string list -> unit
(** [add] with string names, for convenience. *)

val relations : t -> Symbol.t list
val arity : t -> Symbol.t -> int option
val tuples : t -> Symbol.t -> Symbol.t list list
val constants : t -> Symbol.t list
val num_tuples : t -> int

val edb_provider : t -> Obda_syntax.Symbol.t -> int -> Symbol.t list list option
(** For {!Obda_ndl.Eval.run}'s [?edb] argument: [Some tuples] for the
    source's relations, [None] otherwise. *)
