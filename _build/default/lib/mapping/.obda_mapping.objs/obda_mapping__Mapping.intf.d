lib/mapping/mapping.mli: Abox Obda_data Obda_ndl Obda_syntax Source Symbol
