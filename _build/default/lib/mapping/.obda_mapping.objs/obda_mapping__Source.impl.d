lib/mapping/source.ml: Format List Obda_syntax Option Symbol
