lib/mapping/source.mli: Obda_syntax Symbol
