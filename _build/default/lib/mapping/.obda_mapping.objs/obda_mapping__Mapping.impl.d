lib/mapping/mapping.ml: Abox List Obda_data Obda_ndl Obda_syntax Printf Source Symbol
