open Obda_syntax

type t = {
  rels : (Symbol.t list list ref * int) Symbol.Tbl.t;
  consts : unit Symbol.Tbl.t;
}

let create () = { rels = Symbol.Tbl.create 16; consts = Symbol.Tbl.create 64 }

let add src p tuple =
  let n = List.length tuple in
  (match Symbol.Tbl.find_opt src.rels p with
  | Some (rows, arity) ->
    if arity <> n then
      Format.kasprintf invalid_arg
        "Source.add: %a used with arities %d and %d" Symbol.pp p arity n;
    rows := tuple :: !rows
  | None -> Symbol.Tbl.add src.rels p (ref [ tuple ], n));
  List.iter
    (fun c -> if not (Symbol.Tbl.mem src.consts c) then Symbol.Tbl.add src.consts c ())
    tuple

let add_row src p row =
  add src (Symbol.intern p) (List.map Symbol.intern row)

let relations src =
  Symbol.Tbl.fold (fun p _ acc -> p :: acc) src.rels []
  |> List.sort Symbol.compare

let arity src p =
  Option.map (fun (_, n) -> n) (Symbol.Tbl.find_opt src.rels p)

let tuples src p =
  match Symbol.Tbl.find_opt src.rels p with
  | Some (rows, _) -> List.rev !rows
  | None -> []

let constants src =
  Symbol.Tbl.fold (fun c () acc -> c :: acc) src.consts []
  |> List.sort Symbol.compare

let num_tuples src =
  Symbol.Tbl.fold (fun _ (rows, _) acc -> acc + List.length !rows) src.rels 0

let edb_provider src p _arity =
  match Symbol.Tbl.find_opt src.rels p with
  | Some (rows, _) -> Some (List.rev !rows)
  | None -> None
