open Obda_syntax
open Obda_data
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval

type rule = { head : Symbol.t * string list; body : Ndl.atom list }
type t = rule list

let rule name vars body =
  let r = { head = (Symbol.intern name, vars); body } in
  let n = List.length vars in
  if n < 1 || n > 2 then
    invalid_arg "Mapping.rule: head must be unary or binary";
  let body_vars = List.concat_map Ndl.atom_vars body in
  List.iter
    (fun v ->
      if not (List.mem v body_vars) then
        invalid_arg
          (Printf.sprintf "Mapping.rule: head variable %s not in the body" v))
    vars;
  r

let validate rules =
  try
    List.iter (fun r -> ignore (rule (Symbol.name (fst r.head)) (snd r.head) r.body)) rules;
    Ok ()
  with Invalid_argument m -> Error m

let clauses_of rules =
  List.map
    (fun r ->
      {
        Ndl.head = (fst r.head, List.map (fun v -> Ndl.Var v) (snd r.head));
        body = r.body;
      })
    rules

let materialise rules src =
  match rules with
  | [] -> Abox.create ()
  | first :: _ ->
    let program =
      Ndl.make ~goal:(fst first.head)
        ~goal_args:(snd first.head)
        (clauses_of rules)
    in
    let result =
      Eval.run
        ~edb:(Source.edb_provider src)
        ~extra_domain:(Source.constants src)
        program (Abox.create ())
    in
    let abox = Abox.create () in
    Symbol.Map.iter
      (fun p rel ->
        List.iter
          (fun tuple ->
            match tuple with
            | [ c ] -> Abox.add_unary abox p c
            | [ c; d ] -> Abox.add_binary abox p c d
            | _ -> assert false)
          (Eval.relation_tuples rel))
      result.Eval.idb_relations;
    abox

let unfold rules (q : Ndl.query) =
  { q with Ndl.clauses = q.Ndl.clauses @ clauses_of rules }

let answers_virtual rules (q : Ndl.query) src =
  let unfolded = unfold rules q in
  (Eval.run
     ~edb:(Source.edb_provider src)
     ~extra_domain:(Source.constants src)
     unfolded (Abox.create ()))
    .Eval.answers
