open Obda_syntax
open Obda_data

type stats = { and_gates : int; or_gates : int; inputs : int; depth : int }

type ground = Symbol.t * int list

let boolean (q : Ndl.query) abox =
  if not (Ndl.is_skinny q) then invalid_arg "Circuit: program is not skinny";
  (match Ndl.arity_of q q.Ndl.goal with
  | Some 0 -> ()
  | _ -> invalid_arg "Circuit: goal must be 0-ary");
  let idb = Ndl.idb_preds q in
  let domain =
    List.map (fun (c : Abox.const) -> (c :> int)) (Abox.individuals abox)
  in
  let by_head = Symbol.Tbl.create 16 in
  List.iter
    (fun (c : Ndl.clause) ->
      let cur = Option.value ~default:[] (Symbol.Tbl.find_opt by_head (fst c.Ndl.head)) in
      Symbol.Tbl.replace by_head (fst c.Ndl.head) (c :: cur))
    q.Ndl.clauses;
  let memo : (ground, bool * int) Hashtbl.t = Hashtbl.create 256 in
  let and_gates = ref 0 and or_gates = ref 0 and inputs = ref 0 in
  (* truth and depth of an EDB input *)
  let input_value atom env =
    incr inputs;
    let value t =
      match t with
      | Ndl.Cst c -> Some (c :> int)
      | Ndl.Var v -> List.assoc_opt v env
    in
    match atom with
    | Ndl.Eq (t1, t2) -> (
      match (value t1, value t2) with Some a, Some b -> a = b | _ -> false)
    | Ndl.Dom t -> (
      match value t with Some c -> List.mem c domain | None -> false)
    | Ndl.Pred (p, [ t ]) -> (
      match value t with
      | Some c -> Abox.mem_unary abox p (Symbol.unsafe_of_int c)
      | None -> false)
    | Ndl.Pred (p, [ t1; t2 ]) -> (
      match (value t1, value t2) with
      | Some c, Some d ->
        Abox.mem_binary abox p (Symbol.unsafe_of_int c) (Symbol.unsafe_of_int d)
      | _ -> false)
    | Ndl.Pred _ -> false
  in
  (* enumerate assignments for the unbound variables of the body over the
     active domain (bounded width keeps this small) *)
  let rec assignments env vars k =
    match vars with
    | [] -> k env
    | v :: rest ->
      if List.mem_assoc v env then assignments env rest k
      else List.iter (fun c -> assignments ((v, c) :: env) rest k) domain
  in
  let rec gate ((p, args) as g : ground) : bool * int =
    match Hashtbl.find_opt memo g with
    | Some r -> r
    | None ->
      incr or_gates;
      let clauses = Option.value ~default:[] (Symbol.Tbl.find_opt by_head p) in
      let best = ref false and depth = ref 0 in
      List.iter
        (fun (c : Ndl.clause) ->
          (* unify the head with the ground atom *)
          let rec unify env ts args =
            match (ts, args) with
            | [], [] -> Some env
            | Ndl.Cst c' :: ts', a :: args' ->
              if (c' :> int) = a then unify env ts' args' else None
            | Ndl.Var v :: ts', a :: args' -> (
              match List.assoc_opt v env with
              | Some c' -> if c' = a then unify env ts' args' else None
              | None -> unify ((v, a) :: env) ts' args')
            | _ -> None
          in
          match unify [] (snd c.Ndl.head) args with
          | None -> ()
          | Some env ->
            let body_vars =
              List.concat_map Ndl.atom_vars c.Ndl.body
              |> List.sort_uniq String.compare
            in
            assignments env body_vars (fun env' ->
                incr and_gates;
                let conj_value = ref true and conj_depth = ref 0 in
                List.iter
                  (fun atom ->
                    match atom with
                    | Ndl.Pred (p', ts') when Symbol.Set.mem p' idb ->
                      let args' =
                        List.map
                          (fun t ->
                            match t with
                            | Ndl.Cst c' -> (c' :> int)
                            | Ndl.Var v -> List.assoc v env')
                          ts'
                      in
                      let v, d = gate (p', args') in
                      conj_value := !conj_value && v;
                      conj_depth := max !conj_depth d
                    | _ ->
                      if not (input_value atom env') then conj_value := false)
                  c.Ndl.body;
                if !conj_value then best := true;
                depth := max !depth (1 + !conj_depth)))
        clauses;
      let r = (!best, 1 + !depth) in
      Hashtbl.replace memo g r;
      r
  in
  let value, depth = gate (q.Ndl.goal, []) in
  (value, { and_gates = !and_gates; or_gates = !or_gates; inputs = !inputs; depth })
