(** From rewritings over complete data instances to rewritings over arbitrary
    data instances.

    [complete_to_arbitrary] is the generic ∗-transformation of Section 2:
    every EDB predicate S is replaced by an IDB predicate S∗ defined by the
    axioms of the ontology.  [complete_to_arbitrary_linear] is the
    linearity-preserving construction of Lemma 3, which expands each EDB atom
    into a chain of fresh predicates, increasing the width by at most 1. *)

open Obda_ontology

val complete_to_arbitrary : Tbox.t -> Ndl.query -> Ndl.query

val complete_to_arbitrary_linear : Tbox.t -> Ndl.query -> Ndl.query
(** Requires a linear input program; raises [Invalid_argument] otherwise. *)
