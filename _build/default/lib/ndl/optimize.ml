open Obda_syntax

let body_preds (c : Ndl.clause) =
  List.filter_map
    (function Ndl.Pred (p, _) -> Some p | Ndl.Eq _ | Ndl.Dom _ -> None)
    c.body

let prune ~edb (q : Ndl.query) =
  (* 1. keep only productive clauses: every non-EDB body predicate must have
        a productive defining clause *)
  let productive = Symbol.Tbl.create 16 in
  let changed = ref true in
  let viable (c : Ndl.clause) =
    List.for_all (fun p -> edb p || Symbol.Tbl.mem productive p) (body_preds c)
  in
  while !changed do
    changed := false;
    List.iter
      (fun (c : Ndl.clause) ->
        if (not (Symbol.Tbl.mem productive (fst c.head))) && viable c then begin
          Symbol.Tbl.add productive (fst c.head) ();
          changed := true
        end)
      q.clauses
  done;
  let clauses = List.filter viable q.clauses in
  (* 2. keep only clauses reachable from the goal *)
  let by_head = Symbol.Tbl.create 16 in
  List.iter
    (fun (c : Ndl.clause) ->
      let cur = Option.value ~default:[] (Symbol.Tbl.find_opt by_head (fst c.head)) in
      Symbol.Tbl.replace by_head (fst c.head) (c :: cur))
    clauses;
  let reachable = Symbol.Tbl.create 16 in
  let rec visit p =
    if not (Symbol.Tbl.mem reachable p) then begin
      Symbol.Tbl.add reachable p ();
      List.iter
        (fun c -> List.iter visit (body_preds c))
        (Option.value ~default:[] (Symbol.Tbl.find_opt by_head p))
    end
  in
  visit q.goal;
  let clauses =
    List.filter (fun (c : Ndl.clause) -> Symbol.Tbl.mem reachable (fst c.head)) clauses
  in
  { q with clauses }

(* ------------------------------------------------------------------ *)
(* Tw* inlining *)

module VarSet = Set.Make (String)

let clause_var_set (c : Ndl.clause) = VarSet.of_list (Ndl.clause_vars c)

(* substitute the body of [def] for an occurrence [Pred (p, args)]; fresh
   names for the non-head variables of [def] *)
let instantiate (def : Ndl.clause) args ~taken =
  let head_args = snd def.head in
  let subst = Hashtbl.create 8 in
  let extra_eqs = ref [] in
  List.iter2
    (fun h a ->
      match h with
      | Ndl.Var v -> (
        match Hashtbl.find_opt subst v with
        | None -> Hashtbl.add subst v a
        | Some a' -> if a <> a' then extra_eqs := Ndl.Eq (a, a') :: !extra_eqs)
      | Ndl.Cst c -> extra_eqs := Ndl.Eq (Ndl.Cst c, a) :: !extra_eqs)
    head_args args;
  (* fresh names for body-only variables *)
  let counter = ref 0 in
  let fresh base =
    let rec go n =
      let cand = Printf.sprintf "%s~i%d" base n in
      if VarSet.mem cand taken then go (n + 1) else cand
    in
    incr counter;
    go !counter
  in
  let rename v =
    match Hashtbl.find_opt subst v with
    | Some t -> t
    | None ->
      let t = Ndl.Var (fresh v) in
      Hashtbl.add subst v t;
      t
  in
  let sub_term = function Ndl.Var v -> rename v | Ndl.Cst _ as t -> t in
  let sub_atom = function
    | Ndl.Pred (p, ts) -> Ndl.Pred (p, List.map sub_term ts)
    | Ndl.Eq (t1, t2) -> Ndl.Eq (sub_term t1, sub_term t2)
    | Ndl.Dom t -> Ndl.Dom (sub_term t)
  in
  List.map sub_atom def.body @ !extra_eqs

let inline_single_use ?(max_uses = 2) (q : Ndl.query) =
  let rec fixpoint (q : Ndl.query) =
    let defs = Symbol.Tbl.create 16 in
    List.iter
      (fun (c : Ndl.clause) ->
        let cur = Option.value ~default:[] (Symbol.Tbl.find_opt defs (fst c.head)) in
        Symbol.Tbl.replace defs (fst c.head) (c :: cur))
      q.clauses;
    let uses = Symbol.Tbl.create 16 in
    List.iter
      (fun (c : Ndl.clause) ->
        List.iter
          (fun p ->
            Symbol.Tbl.replace uses p
              (1 + Option.value ~default:0 (Symbol.Tbl.find_opt uses p)))
          (body_preds c))
      q.clauses;
    let inlinable p =
      (not (Symbol.equal p q.goal))
      && (match Symbol.Tbl.find_opt defs p with Some [ _ ] -> true | _ -> false)
      && Option.value ~default:0 (Symbol.Tbl.find_opt uses p) <= max_uses
    in
    match
      List.find_map
        (fun (c : Ndl.clause) ->
          if inlinable (fst c.head) then Some (fst c.head) else None)
        q.clauses
    with
    | None -> q
    | Some p ->
      let def =
        match Symbol.Tbl.find_opt defs p with Some [ d ] -> d | _ -> assert false
      in
      let clauses =
        List.filter_map
          (fun (c : Ndl.clause) ->
            if Symbol.equal (fst c.head) p then None
            else begin
              let taken = ref (clause_var_set c) in
              let body =
                List.concat_map
                  (fun atom ->
                    match atom with
                    | Ndl.Pred (p', args) when Symbol.equal p' p ->
                      let new_atoms = instantiate def args ~taken:!taken in
                      taken :=
                        List.fold_left
                          (fun acc a ->
                            List.fold_left (fun acc v -> VarSet.add v acc) acc
                              (Ndl.atom_vars a))
                          !taken new_atoms;
                      new_atoms
                    | Ndl.Pred _ | Ndl.Eq _ | Ndl.Dom _ -> [ atom ])
                  c.body
              in
              Some { c with body }
            end)
          q.clauses
      in
      fixpoint { q with clauses }
  in
  fixpoint q
