(** The monotone Boolean circuit of Lemma 4: from a skinny NDL query and a
    data instance, build the semi-unbounded fan-in circuit whose gates are
    the ground atoms of the grounding (or-gates over clause bodies, and-gates
    of fan-in ≤ 2) and evaluate it.

    This realises the LOGCFL upper bound concretely: the circuit has
    polynomially many gates and depth O(d(Π,G)), so an NAuxPDA can evaluate
    it in logarithmic space and polynomial time (Lemmas 4–6).  Evaluation
    agrees with the bottom-up engine. *)


open Obda_data

type stats = {
  and_gates : int;
  or_gates : int;
  inputs : int;
  depth : int;  (** circuit depth in gates *)
}

val boolean : Ndl.query -> Abox.t -> bool * stats
(** For a skinny query with a 0-ary goal: the output of the circuit with
    output gate G(), plus its size/depth statistics.  Raises
    [Invalid_argument] if the program is not skinny or the goal is not
    0-ary.  (Non-Boolean goals can be handled by grounding the answer
    tuple; the tests use {!Skinny.transform} on Boolean rewritings.) *)
