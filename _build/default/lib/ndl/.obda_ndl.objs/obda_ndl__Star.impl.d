lib/ndl/star.ml: Array Concept Format List Ndl Obda_ontology Obda_syntax Option Printf Role Set String Symbol Tbox
