lib/ndl/star.mli: Ndl Obda_ontology Tbox
