lib/ndl/eval.mli: Abox Ndl Obda_data Obda_syntax Symbol
