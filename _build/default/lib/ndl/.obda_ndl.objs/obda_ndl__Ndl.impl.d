lib/ndl/ndl.ml: Format List Obda_syntax Option String Symbol
