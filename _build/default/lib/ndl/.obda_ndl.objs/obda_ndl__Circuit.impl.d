lib/ndl/circuit.ml: Abox Hashtbl List Ndl Obda_data Obda_syntax Option String Symbol
