lib/ndl/ndl.mli: Format Obda_syntax Symbol
