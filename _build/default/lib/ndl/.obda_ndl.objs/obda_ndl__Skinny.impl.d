lib/ndl/skinny.ml: Int List Ndl Obda_syntax Option Set String Symbol
