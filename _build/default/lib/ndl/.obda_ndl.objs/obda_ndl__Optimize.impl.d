lib/ndl/optimize.ml: Hashtbl List Ndl Obda_syntax Option Printf Set String Symbol
