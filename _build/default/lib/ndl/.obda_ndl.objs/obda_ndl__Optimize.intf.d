lib/ndl/optimize.mli: Ndl Obda_syntax Symbol
