lib/ndl/eval.ml: Abox Array Hashtbl Int List Ndl Obda_data Obda_syntax Option Printf Symbol
