lib/ndl/circuit.mli: Abox Ndl Obda_data
