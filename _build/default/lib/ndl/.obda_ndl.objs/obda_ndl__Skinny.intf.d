lib/ndl/skinny.mli: Ndl
