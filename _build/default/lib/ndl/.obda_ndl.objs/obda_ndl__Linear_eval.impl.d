lib/ndl/linear_eval.ml: Abox Hashtbl Int List Ndl Obda_data Obda_syntax Option Queue Symbol
