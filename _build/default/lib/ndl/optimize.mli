(** Semantics-preserving cleanups of NDL queries.

    [prune] removes clauses that can never fire (they use an IDB predicate
    with no productive definition) and predicates unreachable from the goal —
    the simplification used throughout Appendix A.6.

    [inline_single_use] is the Tw∗ optimisation of Appendix D.4: predicates
    defined by a single clause and used at most [max_uses] times in bodies
    are substituted away. *)

open Obda_syntax

val prune : edb:(Symbol.t -> bool) -> Ndl.query -> Ndl.query
(** [edb] recognises the extensional predicates (those allowed to have no
    defining clause). *)

val inline_single_use : ?max_uses:int -> Ndl.query -> Ndl.query
(** Default [max_uses] is 2. *)
