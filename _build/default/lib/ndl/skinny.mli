(** The skinny transformation of Lemma 5: any NDL query is equivalent to one
    whose clause bodies have at most two atoms, of depth at most
    sd(Π,G) = 2·d(Π,G) + log ν(G) + log eΠ.

    IDB conjunctions are binarised along a Huffman tree over the weight
    function ν (so the depth increase is log ν(G)); EDB conjunctions along a
    balanced tree (log eΠ). *)

val transform : Ndl.query -> Ndl.query
(** Equivalent skinny query; no-op on already skinny programs. *)
