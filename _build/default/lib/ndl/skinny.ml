open Obda_syntax

module VarSet = Set.Make (String)

let term_vars ts =
  List.fold_left
    (fun acc t -> match t with Ndl.Var v -> VarSet.add v acc | Ndl.Cst _ -> acc)
    VarSet.empty ts

let atom_vars a = term_vars (Ndl.atom_terms a)

let atoms_vars atoms =
  List.fold_left (fun acc a -> VarSet.union acc (atom_vars a)) VarSet.empty atoms

(* a binarisation tree over atoms *)
type tree = Leaf of Ndl.atom | Node of tree * tree

let rec tree_atoms = function
  | Leaf a -> [ a ]
  | Node (l, r) -> tree_atoms l @ tree_atoms r

let tree_vars t = atoms_vars (tree_atoms t)

(* balanced tree for EDB atoms *)
let rec balanced = function
  | [] -> invalid_arg "Skinny.balanced: empty"
  | [ a ] -> Leaf a
  | atoms ->
    let n = List.length atoms in
    let left = List.filteri (fun i _ -> i < n / 2) atoms in
    let right = List.filteri (fun i _ -> i >= n / 2) atoms in
    Node (balanced left, balanced right)

(* Huffman tree for IDB atoms, weighted by ν *)
let huffman weights atoms =
  let weight_of = function
    | Ndl.Pred (p, _) -> max 1 (Option.value ~default:1 (Symbol.Map.find_opt p weights))
    | Ndl.Eq _ | Ndl.Dom _ -> 1
  in
  let rec merge nodes =
    match List.sort (fun (w1, _) (w2, _) -> Int.compare w1 w2) nodes with
    | [] -> invalid_arg "Skinny.huffman: empty"
    | [ (_, t) ] -> t
    | (w1, t1) :: (w2, t2) :: rest -> merge ((w1 + w2, Node (t1, t2)) :: rest)
  in
  merge (List.map (fun a -> (weight_of a, Leaf a)) atoms)

(* Emit clauses realising [tree] with head [head]; fresh predicates carry the
   variables shared between their subtree and the outside. *)
let realise ~params ~head_param_vars ~emit ~fresh head tree =
  let rec go head outside_vars tree =
    match tree with
    | Leaf a -> emit { Ndl.head; body = [ a ] }
    | Node (l, r) ->
      let sub_pred name_hint subtree other_vars =
        match subtree with
        | Leaf a -> (a, fun () -> ())
        | Node _ ->
          let vs =
            VarSet.inter (tree_vars subtree)
              (VarSet.union other_vars outside_vars)
          in
          let ps, nps =
            List.partition (fun v -> VarSet.mem v head_param_vars) (VarSet.elements vs)
          in
          let args = List.map (fun v -> Ndl.Var v) (nps @ ps) in
          let p = fresh name_hint in
          params := Symbol.Map.add p (List.length ps) !params;
          ( Ndl.Pred (p, args),
            fun () -> go (p, args) (VarSet.union other_vars outside_vars) subtree )
      in
      let la, lk = sub_pred "l" l (tree_vars r) in
      let ra, rk = sub_pred "r" r (tree_vars l) in
      emit { Ndl.head; body = [ la; ra ] };
      lk ();
      rk ()
  in
  let _, head_args = head in
  go head (term_vars head_args) tree

let transform (q : Ndl.query) =
  if Ndl.is_skinny q then q
  else begin
    let idb = Ndl.idb_preds q in
    let weights = Ndl.weight q in
    let params = ref q.params in
    let out = ref [] in
    let emit c = out := c :: !out in
    let fresh hint = Symbol.fresh ("sk~" ^ hint) in
    let head_param_vars_of (c : Ndl.clause) =
      let p, args = c.head in
      let n = Option.value ~default:0 (Symbol.Map.find_opt p q.params) in
      let len = List.length args in
      List.filteri (fun i _ -> i >= len - n) args |> term_vars
    in
    List.iter
      (fun (c : Ndl.clause) ->
        if List.length c.body <= 2 then emit c
        else begin
          let head_param_vars = head_param_vars_of c in
          let idb_atoms, edb_atoms =
            List.partition
              (function
                | Ndl.Pred (p, _) -> Symbol.Set.mem p idb
                | Ndl.Eq _ | Ndl.Dom _ -> false)
              c.body
          in
          let tree =
            match (idb_atoms, edb_atoms) with
            | [], atoms -> balanced atoms
            | atoms, [] -> huffman weights atoms
            | _ -> Node (balanced edb_atoms, huffman weights idb_atoms)
          in
          realise ~params ~head_param_vars ~emit ~fresh c.head tree
        end)
      q.clauses;
    { q with clauses = List.rev !out; params = !params }
  end
