(** Bottom-up evaluation of nonrecursive datalog over a data instance.

    Every IDB predicate is fully materialised in dependence order, exactly
    like the RDFox configuration used in the paper's Appendix D (no magic
    sets).  The number of generated tuples is reported, matching the
    "generated tuples" columns of Tables 3–5. *)

open Obda_syntax
open Obda_data

exception Timeout

type relation
(** A set of constant tuples of fixed arity. *)

val relation_arity : relation -> int
val relation_size : relation -> int
val relation_tuples : relation -> Symbol.t list list

type result = {
  answers : Symbol.t list list;  (** tuples of the goal relation, sorted *)
  generated_tuples : int;  (** Σ sizes of all materialised IDB relations *)
  idb_relations : relation Symbol.Map.t;
}

val run :
  ?deadline:(unit -> bool) ->
  ?edb:(Symbol.t -> int -> Symbol.t list list option) ->
  ?extra_domain:Symbol.t list ->
  Ndl.query -> Abox.t -> result
(** Raises [Invalid_argument] on a recursive program and [Timeout] whenever
    [deadline ()] becomes true.

    [edb] supplies tuples for extensional predicates not stored in the ABox
    (e.g. the n-ary relations of a mapped data source); it is consulted
    first, with the ABox as fallback.  [extra_domain] extends the active
    domain (⊤) beyond ind(A). *)

val answers : Ndl.query -> Abox.t -> Symbol.t list list
val boolean : Ndl.query -> Abox.t -> bool
(** For a 0-ary goal: whether the goal is derivable. *)
