open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
open Obda_chase

type hypergraph = { n : int; edges : int list list }

let random ~seed ~n ~m ~max_edge =
  let rng = Random.State.make [| seed; n; m |] in
  let edge () =
    let size = 1 + Random.State.int rng (max 1 max_edge) in
    List.init size (fun _ -> 1 + Random.State.int rng n)
    |> List.sort_uniq Int.compare
  in
  { n; edges = List.init m (fun _ -> edge ()) }

let has_hitting_set h ~k =
  let rec choose from size =
    if size = 0 then [ [] ]
    else if from > h.n then []
    else
      List.map (fun s -> from :: s) (choose (from + 1) (size - 1))
      @ choose (from + 1) size
  in
  List.exists
    (fun subset ->
      List.for_all (fun e -> List.exists (fun v -> List.mem v subset) e) h.edges)
    (choose 1 k)

(* predicate names *)
let v_name l i = Symbol.intern (Printf.sprintf "V%d_%d" l i)
let e_name l j = Symbol.intern (Printf.sprintf "E%d_%d" l j)
let upsilon l i = Role.make (Symbol.intern (Printf.sprintf "ups%d_%d" l i))
let eta l j = Role.make (Symbol.intern (Printf.sprintf "eta%d_%d" l j))
let p_role = Role.make (Symbol.intern "P")

let tbox h ~k =
  let m = List.length h.edges in
  let axioms = ref [] in
  let add a = axioms := a :: !axioms in
  for l = 1 to k do
    (* V^{l-1}_i(x) → ∃z (P(z,x) ∧ V^l_{i'}(z))  for 0 ≤ i < i' ≤ n *)
    for i = 0 to h.n do
      for i' = i + 1 to h.n do
        add (Tbox.Concept_incl (Concept.Name (v_name (l - 1) i), Concept.Exists (upsilon l i')));
        ignore i'
      done
    done;
    for i' = 1 to h.n do
      add (Tbox.Role_incl (upsilon l i', Role.inv p_role));
      add
        (Tbox.Concept_incl
           (Concept.Exists (Role.inv (upsilon l i')), Concept.Name (v_name l i')))
    done;
    (* V^l_i ⊑ E^l_j for v_i ∈ e_j *)
    List.iteri
      (fun j0 e ->
        let j = j0 + 1 in
        List.iter
          (fun i ->
            add
              (Tbox.Concept_incl (Concept.Name (v_name l i), Concept.Name (e_name l j))))
          e)
      h.edges;
    (* E^l_j(x) → ∃z (P(x,z) ∧ E^{l-1}_j(z)) *)
    for j = 1 to m do
      add (Tbox.Concept_incl (Concept.Name (e_name l j), Concept.Exists (eta l j)));
      add (Tbox.Role_incl (eta l j, p_role));
      add
        (Tbox.Concept_incl
           (Concept.Exists (Role.inv (eta l j)), Concept.Name (e_name (l - 1) j)))
    done
  done;
  Tbox.make (List.rev !axioms)

let query h ~k =
  let m = List.length h.edges in
  let p = Symbol.intern "P" in
  let atoms = ref [] in
  for j = 1 to m do
    let z l = Printf.sprintf "z%d_%d" l j in
    (* P(y, z^{k-1}_j) *)
    atoms := Cq.Binary (p, "y", z (k - 1)) :: !atoms;
    for l = 1 to k - 1 do
      atoms := Cq.Binary (p, z l, z (l - 1)) :: !atoms
    done;
    atoms := Cq.Unary (e_name 0 j, z 0) :: !atoms
  done;
  Cq.make ~answer:[] (List.rev !atoms)

let omq h ~k = (tbox h ~k, query h ~k)

let abox () =
  let a = Abox.create () in
  Abox.add_unary a (v_name 0 0) (Symbol.intern "a");
  a

let answer_via_omq h ~k =
  let t, q = omq h ~k in
  Certain.boolean t (abox ()) q
