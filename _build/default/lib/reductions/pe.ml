open Obda_syntax
open Obda_data

type term = Var of string | Cst of Abox.const

type t =
  | Atom1 of Symbol.t * term
  | Atom2 of Symbol.t * term * term
  | Eqt of term * term
  | And of t list
  | Or of t list
  | Exists of string list * t

let rec size = function
  | Atom1 _ | Atom2 _ | Eqt _ -> 1
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs
  | Exists (_, f) -> 1 + size f

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Cst c -> Symbol.pp ppf c

let rec pp ppf = function
  | Atom1 (a, t) -> Format.fprintf ppf "%a(%a)" Symbol.pp a pp_term t
  | Atom2 (p, t1, t2) ->
    Format.fprintf ppf "%a(%a,%a)" Symbol.pp p pp_term t1 pp_term t2
  | Eqt (t1, t2) -> Format.fprintf ppf "%a = %a" pp_term t1 pp_term t2
  | And fs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
         pp)
      fs
  | Or fs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         pp)
      fs
  | Exists (vs, f) ->
    Format.fprintf ppf "exists %s. %a" (String.concat "," vs) pp f

(* ------------------------------------------------------------------ *)
(* Evaluation: a lazy stream of satisfying assignment extensions.
   Conjunctions pick the cheapest conjunct first (fewest unbound
   variables), which keeps the search close to linear on tree-shaped
   subformulas; the worst case is exponential, as Theorem 21 predicts. *)

let value env = function
  | Cst c -> Some c
  | Var v -> List.assoc_opt v env

let rec unbound_count env = function
  | Atom1 (_, t) -> ( match value env t with Some _ -> 0 | None -> 1)
  | Atom2 (_, t1, t2) | Eqt (t1, t2) ->
    (match value env t1 with Some _ -> 0 | None -> 1)
    + (match value env t2 with Some _ -> 0 | None -> 1)
  | And fs | Or fs ->
    List.fold_left (fun acc f -> min acc (unbound_count env f)) max_int fs
  | Exists (_, f) -> unbound_count env f

let rec sat abox env formula : (string * Abox.const) list Seq.t =
  match formula with
  | Atom1 (a, t) -> (
    match value env t with
    | Some c -> if Abox.mem_unary abox a c then Seq.return env else Seq.empty
    | None -> (
      match t with
      | Var v ->
        List.to_seq (Abox.unary_members abox a)
        |> Seq.map (fun c -> (v, c) :: env)
      | Cst _ -> assert false))
  | Atom2 (p, t1, t2) -> (
    match (value env t1, value env t2) with
    | Some c, Some d ->
      if Abox.mem_binary abox p c d then Seq.return env else Seq.empty
    | Some c, None -> (
      match t2 with
      | Var v ->
        List.to_seq (Abox.successors abox p c) |> Seq.map (fun d -> (v, d) :: env)
      | Cst _ -> assert false)
    | None, Some d -> (
      match t1 with
      | Var v ->
        List.to_seq (Abox.predecessors abox p d)
        |> Seq.map (fun c -> (v, c) :: env)
      | Cst _ -> assert false)
    | None, None -> (
      match (t1, t2) with
      | Var v1, Var v2 ->
        List.to_seq (Abox.binary_members abox p)
        |> Seq.map (fun (c, d) ->
               if v1 = v2 then if c = d then Some ((v1, c) :: env) else None
               else Some ((v1, c) :: (v2, d) :: env))
        |> Seq.filter_map Fun.id
      | _ -> assert false))
  | Eqt (t1, t2) -> (
    match (value env t1, value env t2) with
    | Some c, Some d -> if c = d then Seq.return env else Seq.empty
    | Some c, None -> (
      match t2 with Var v -> Seq.return ((v, c) :: env) | Cst _ -> assert false)
    | None, Some d -> (
      match t1 with Var v -> Seq.return ((v, d) :: env) | Cst _ -> assert false)
    | None, None -> (
      match (t1, t2) with
      | Var v1, Var v2 ->
        List.to_seq (Abox.individuals abox)
        |> Seq.map (fun c -> (v1, c) :: (v2, c) :: env)
      | _ -> assert false))
  | And [] -> Seq.return env
  | And fs ->
    (* cheapest conjunct first, with bounded lookahead (full rescans make
       the evaluation quadratic in the formula size) *)
    let rec pick best best_cost i = function
      | [] -> best
      | f :: rest ->
        if i >= 8 || best_cost = 0 then best
        else
          let c = unbound_count env f in
          if c < best_cost then pick (Some f) c (i + 1) rest
          else pick best best_cost (i + 1) rest
    in
    let f =
      match pick None max_int 0 fs with Some f -> f | None -> List.hd fs
    in
    let rest = List.filter (fun g -> g != f) fs in
    Seq.concat_map (fun env' -> sat abox env' (And rest)) (sat abox env f)
  | Or fs -> Seq.concat_map (fun f -> sat abox env f) (List.to_seq fs)
  | Exists (_, f) -> sat abox env f

let holds abox env f =
  match (sat abox env f) () with Seq.Nil -> false | Seq.Cons _ -> true

let eval abox f = holds abox [] f

(* ------------------------------------------------------------------ *)
(* The q_m construction of Theorem 28 *)

let p_minus = Symbol.intern "Pminus"
let p_plus = Symbol.intern "Pplus"
let b_zero = Symbol.intern "Bzero"

let log2_exact m =
  let rec go l acc =
    if acc = m then Some l else if acc > m then None else go (l + 1) (2 * acc)
  in
  go 0 1

let base_cnf nvars = Dpll.all_clauses_3cnf nvars

let padded_m nvars =
  let m0 = List.length (base_cnf nvars).Dpll.clauses in
  let rec up acc = if acc >= m0 then acc else up (2 * acc) in
  up 1

let qm_clause_count ~nvars = padded_m nvars

let qm_alpha_of_clause_flags ~nvars flags =
  let m = padded_m nvars in
  Array.init m (fun i ->
      if i < Array.length flags then flags.(i) else true)

let query_qm ~nvars =
  if nvars < 3 then invalid_arg "Pe.query_qm: need at least 3 variables";
  let k = nvars in
  let cnf = base_cnf nvars in
  let m = padded_m nvars in
  let ell = match log2_exact m with Some l -> l | None -> assert false in
  let clauses = Array.of_list cnf.Dpll.clauses in
  let x = Var "x" in
  let pm = [ p_minus; p_plus ] in
  let p_of_bit b = if b = 0 then p_minus else p_plus in
  let pany t1 t2 = Or (List.map (fun p -> Atom2 (p, t1, t2)) pm) in
  (* r: one fixed-label path per clause leaf *)
  let r_parts = ref [] in
  let all_vars = ref [] in
  let var name =
    all_vars := name :: !all_vars;
    name
  in
  for i = 1 to m do
    let z = var (Printf.sprintf "z%d" i) in
    let prev = ref x in
    for l = 0 to ell - 1 do
      let bit = ((i - 1) lsr l) land 1 in
      let next = if l = ell - 1 then Var z else Var (var (Printf.sprintf "y%d_%d" i l)) in
      r_parts := Atom2 (p_of_bit bit, !prev, next) :: !r_parts;
      prev := next
    done
  done;
  (* s: each propositional variable gets a leaf/internal mode choice *)
  let s_parts = ref [] in
  for i = 1 to k do
    let xi = var (Printf.sprintf "xv%d" i) in
    let xi' = var (Printf.sprintf "xn%d" i) in
    let prev = ref x in
    let last = ref x in
    for l = 1 to ell - 1 do
      let u = Var (var (Printf.sprintf "u%d_%d" i l)) in
      s_parts := pany !prev u :: !s_parts;
      prev := u;
      last := u
    done;
    let choice leaf internal =
      And
        [ pany !last (Var leaf); pany (Var internal) !last; Atom1 (b_zero, Var leaf) ]
    in
    s_parts := Or [ choice xi xi'; choice xi' xi ] :: !s_parts
  done;
  (* t: every clause is removed or satisfied *)
  let t_parts = ref [] in
  for i = 1 to m do
    let disjuncts =
      Atom1 (b_zero, Var (Printf.sprintf "z%d" i))
      ::
      (if i <= Array.length clauses then
         List.map
           (fun lit ->
             let v = abs lit in
             let name =
               if lit > 0 then Printf.sprintf "xv%d" v
               else Printf.sprintf "xn%d" v
             in
             Atom1 (b_zero, Var name))
           clauses.(i - 1)
       else [])
    in
    t_parts := Or disjuncts :: !t_parts
  done;
  Exists (List.rev !all_vars, And (!r_parts @ !s_parts @ !t_parts))

let qm_agrees ~nvars alpha =
  let cnf = base_cnf nvars in
  let flags = Array.sub alpha 0 (min (Array.length alpha) (List.length cnf.Dpll.clauses)) in
  let alpha_full = qm_alpha_of_clause_flags ~nvars flags in
  let abox = Sat.tree_instance alpha_full in
  let expected = Dpll.satisfiable (Dpll.remove_clauses cnf flags) in
  let got = holds abox [ ("x", Sat.tree_root) ] (query_qm ~nvars) in
  expected = got

let all_bindings abox ~vars f =
  let inds = Abox.individuals abox in
  let tuples = Hashtbl.create 16 in
  Seq.iter
    (fun env ->
      let rec expand acc = function
        | [] -> Hashtbl.replace tuples (List.rev acc) ()
        | v :: rest -> (
          match List.assoc_opt v env with
          | Some c -> expand (c :: acc) rest
          | None -> List.iter (fun c -> expand (c :: acc) rest) inds)
      in
      expand [] vars)
    (sat abox [] f);
  Hashtbl.fold (fun t () acc -> t :: acc) tuples []
  |> List.sort (List.compare Symbol.compare)
