(** The fixed-ontology NP-hardness construction of Section 5 (Theorems 17,
    19, 20): a single infinite-depth ontology T† such that answering the
    star-shaped Boolean OMQs (T†, q_ϕ) over {A(a)} decides satisfiability of
    the CNF ϕ. *)

open Obda_ontology
open Obda_cq
open Obda_data

val t_dagger : unit -> Tbox.t
(** The fixed ontology T† (in normal form, with the auxiliary roles
    υ₊, υ₋, η₊, η₋, η₀ of the Appendix C.1 proof). *)

val query_of_cnf : Dpll.cnf -> Cq.t
(** The star-shaped Boolean CQ q_ϕ: centre A(y), one P₊/P₋/P₀-ray of length
    k per clause, ending in B₀. *)

val abox : unit -> Abox.t
(** {A(a)}. *)

val satisfiable_via_omq : Dpll.cnf -> bool
(** T†, {A(a)} ⊨ q_ϕ, decided on the canonical model — equals
    [Dpll.satisfiable ϕ] by Theorem 17. *)

(** {1 Theorems 19–20: the modified query q̄_ϕ and the tree instances} *)

val qbar_of_cnf : Dpll.cnf -> Cq.t
(** q̄_ϕ(x) of Appendix C.2.  Requires the number of clauses to be a power of
    two (pad with repeated clauses if needed). *)

val tree_instance : bool array -> Abox.t
(** A^α_m: the full binary tree over P₋/P₊ of depth log₂ m with A at the
    root a and B₀ at the i-th leaf iff α_i. *)

val tree_root : Abox.const

val f_phi : Dpll.cnf -> bool array -> bool
(** f_ϕ(α): satisfiability of ϕ^{-α} (via DPLL). *)

val qbar_answer : Dpll.cnf -> bool array -> bool
(** T†, A^α_m ⊨ q̄_ϕ(a) — equals [f_phi ϕ α] by Lemma 26. *)
