open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
open Obda_chase

type token = A1 | B1 | A2 | B2 | Open | Close | Hash

let token_name = function
  | A1 -> "a1"
  | B1 -> "b1"
  | A2 -> "a2"
  | B2 -> "b2"
  | Open -> "["
  | Close -> "]"
  | Hash -> "#"

let tokenize s =
  let rec go i acc =
    if i >= String.length s then List.rev acc
    else
      match s.[i] with
      | '[' -> go (i + 1) (Open :: acc)
      | ']' -> go (i + 1) (Close :: acc)
      | '#' -> go (i + 1) (Hash :: acc)
      | ('a' | 'b') as c when i + 1 < String.length s -> (
        match (c, s.[i + 1]) with
        | 'a', '1' -> go (i + 2) (A1 :: acc)
        | 'a', '2' -> go (i + 2) (A2 :: acc)
        | 'b', '1' -> go (i + 2) (B1 :: acc)
        | 'b', '2' -> go (i + 2) (B2 :: acc)
        | _ -> invalid_arg "Cfl.tokenize: bad letter index")
      | _ -> invalid_arg "Cfl.tokenize: bad character"
  in
  go 0 []

let r_pred t = Symbol.intern ("Rcfl_" ^ token_name t)
let s_pred t = Symbol.intern ("Scfl_" ^ token_name t)
let a_pred = Symbol.intern "Acfl"
let d_pred = Symbol.intern "Dcfl"
let f_pred = Symbol.intern "Fcfl"
let e_pred = Symbol.intern "Ecfl"
let mk r = Role.make (Symbol.intern r)

let sigma0 = [ A1; B1; A2; B2 ]

let t_ddagger () =
  let incl c c' = Tbox.Concept_incl (c, c') in
  let name n = Concept.Name n in
  let ex r = Concept.Exists r in
  let exi r = Concept.Exists (Role.inv r) in
  let axioms = ref [] in
  let add a = axioms := a :: !axioms in
  (* (11): D(x) → ∃y (R_{ai}(x,y) ∧ S_{bi}(y,x) ∧ ∃z (S_{ai}(y,z) ∧
     R_{bi}(z,y) ∧ D(z))) for i = 1,2 *)
  List.iter
    (fun (ai, bi, i) ->
      let u = mk (Printf.sprintf "ucfl%d" i) in
      let w = mk (Printf.sprintf "wcfl%d" i) in
      add (incl (name d_pred) (ex u));
      add (Tbox.Role_incl (u, Role.make (r_pred ai)));
      add (Tbox.Role_incl (u, Role.inv (Role.make (s_pred bi))));
      add (incl (exi u) (ex w));
      add (Tbox.Role_incl (w, Role.make (s_pred ai)));
      add (Tbox.Role_incl (w, Role.inv (Role.make (r_pred bi))));
      add (incl (exi w) (name d_pred)))
    [ (A1, B1, 1); (A2, B2, 2) ];
  (* (16) *)
  add (incl (name a_pred) (name d_pred));
  (* (17): D → ∃y (R_[(x,y) ∧ S_[(y,x)) *)
  let g1 = mk "gcfl1" in
  add (incl (name d_pred) (ex g1));
  add (Tbox.Role_incl (g1, Role.make (r_pred Open)));
  add (Tbox.Role_incl (g1, Role.inv (Role.make (s_pred Open))));
  (* (18): D → ∃y (R_[ ∧ S_#⁻ ∧ ∃z (S_[ ∧ R_#⁻ ∧ F)) *)
  let g2 = mk "gcfl2" and g3 = mk "gcfl3" in
  add (incl (name d_pred) (ex g2));
  add (Tbox.Role_incl (g2, Role.make (r_pred Open)));
  add (Tbox.Role_incl (g2, Role.inv (Role.make (s_pred Hash))));
  add (incl (exi g2) (ex g3));
  add (Tbox.Role_incl (g3, Role.make (s_pred Open)));
  add (Tbox.Role_incl (g3, Role.inv (Role.make (r_pred Hash))));
  add (incl (exi g3) (name f_pred));
  (* (19): D → ∃y (R_] ∧ S_]⁻) *)
  let g4 = mk "gcfl4" in
  add (incl (name d_pred) (ex g4));
  add (Tbox.Role_incl (g4, Role.make (r_pred Close)));
  add (Tbox.Role_incl (g4, Role.inv (Role.make (s_pred Close))));
  (* (20): D → ∃y (R_# ∧ S_]⁻ ∧ ∃z (S_# ∧ R_]⁻ ∧ F)) *)
  let g5 = mk "gcfl5" and g6 = mk "gcfl6" in
  add (incl (name d_pred) (ex g5));
  add (Tbox.Role_incl (g5, Role.make (r_pred Hash)));
  add (Tbox.Role_incl (g5, Role.inv (Role.make (s_pred Close))));
  add (incl (exi g5) (ex g6));
  add (Tbox.Role_incl (g6, Role.make (s_pred Hash)));
  add (Tbox.Role_incl (g6, Role.inv (Role.make (r_pred Close))));
  add (incl (exi g6) (name f_pred));
  (* (21): F → ∃y (R_c(x,y) ∧ S_c(y,x)) for c ∈ Σ₀ ∪ {#} *)
  List.iter
    (fun c ->
      let f = mk ("fcfl_" ^ token_name c) in
      add (incl (name f_pred) (ex f));
      add (Tbox.Role_incl (f, Role.make (r_pred c)));
      add (Tbox.Role_incl (f, Role.inv (Role.make (s_pred c)))))
    (sigma0 @ [ Hash ]);
  Tbox.make (List.rev !axioms)

(* block-formedness (Appendix C.4) *)
let block_formed tokens =
  let rec go inside saw_content = function
    | [] -> not inside
    | Open :: rest -> if inside then false else go true false rest
    | Close :: rest -> (
      if (not inside) || not saw_content then false
      else match rest with [] -> true | Open :: _ -> go false false rest | _ -> false)
    | (A1 | B1 | A2 | B2 | Hash) :: rest ->
      if not inside then false else go inside true rest
  in
  match tokens with Open :: _ -> go false false tokens | _ -> false

let query_of_word word =
  let tokens = tokenize word in
  if tokens = [] || not (block_formed tokens) then
    (* the error query: never satisfiable over (T‡, {A(a)}) *)
    Cq.make ~answer:[] [ Cq.Unary (a_pred, "u0"); Cq.Unary (e_pred, "u0") ]
  else begin
    let atoms = ref [ Cq.Unary (a_pred, "u0") ] in
    let n = List.length tokens in
    List.iteri
      (fun i c ->
        let u = Printf.sprintf "u%d" i in
        let v = Printf.sprintf "v%d" i in
        let u' = Printf.sprintf "u%d" (i + 1) in
        atoms := Cq.Binary (s_pred c, v, u') :: Cq.Binary (r_pred c, u, v) :: !atoms)
      tokens;
    atoms := Cq.Unary (a_pred, Printf.sprintf "u%d" n) :: !atoms;
    Cq.make ~answer:[] (List.rev !atoms)
  end

(* B₀ membership: the two-pair Dyck language *)
let b0_member_tokens tokens =
  let rec go stack = function
    | [] -> stack = []
    | A1 :: rest -> go (1 :: stack) rest
    | A2 :: rest -> go (2 :: stack) rest
    | B1 :: rest -> ( match stack with 1 :: s -> go s rest | _ -> false)
    | B2 :: rest -> ( match stack with 2 :: s -> go s rest | _ -> false)
    | (Open | Close | Hash) :: _ -> false
  in
  go [] tokens

let b0_member word = b0_member_tokens (tokenize word)

let in_hardest_language word =
  let tokens = tokenize word in
  if not (block_formed tokens) then false
  else begin
    (* split into blocks, each block into #-separated choices *)
    let rec blocks acc current = function
      | [] -> List.rev acc
      | Open :: rest -> blocks acc [] rest
      | Close :: rest -> blocks (List.rev current :: acc) [] rest
      | t :: rest -> blocks acc (t :: current) rest
    in
    let split_choices block =
      List.fold_left
        (fun (done_, cur) t ->
          if t = Hash then (List.rev cur :: done_, []) else (done_, t :: cur))
        ([], []) block
      |> fun (done_, cur) -> List.rev (List.rev cur :: done_)
    in
    let choice_lists = List.map split_choices (blocks [] [] tokens) in
    let rec search prefix = function
      | [] -> b0_member_tokens (List.rev prefix)
      | choices :: rest ->
        List.exists
          (fun choice -> search (List.rev_append choice prefix) rest)
          choices
    in
    search [] choice_lists
  end

let abox () =
  let a = Abox.create () in
  Abox.add_unary a a_pred (Symbol.intern "a");
  a

let answer_via_omq word =
  let t = t_ddagger () in
  let q = query_of_word word in
  let depth = List.length (tokenize word) + 3 in
  Certain.boolean ~depth t (abox ()) q
