(** The W[2]-hardness reduction of Theorem 15: p-HittingSet ≤ answering
    OMQs with ontologies of depth 2k and tree-shaped (star) CQs.

    For a hypergraph H and parameter k, T^k_H generates from V⁰₀(a) a tree of
    depth k whose branches enumerate the size-k subsets of vertices, plus
    "pendants" for the hyperedges; the star CQ q^k_H maps into the canonical
    model iff H has a hitting set of size k. *)

open Obda_ontology
open Obda_cq
open Obda_data

type hypergraph = { n : int; edges : int list list }
(** Vertices are 1..n; each edge is a non-empty list of vertices. *)

val random : seed:int -> n:int -> m:int -> max_edge:int -> hypergraph

val has_hitting_set : hypergraph -> k:int -> bool
(** Brute force over the size-k vertex subsets. *)

val omq : hypergraph -> k:int -> Tbox.t * Cq.t
(** (T^k_H, q^k_H). *)

val abox : unit -> Abox.t
(** {V⁰₀(a)}. *)

val answer_via_omq : hypergraph -> k:int -> bool
(** T^k_H, {V⁰₀(a)} ⊨ q^k_H, decided on the canonical model. *)
