open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
open Obda_chase

type pgraph = { parts : int list list; edges : (int * int) list }

let num_vertices g = List.fold_left (fun acc p -> acc + List.length p) 0 g.parts

let random ~seed ~part_sizes ~edge_prob =
  let rng = Random.State.make [| seed |] in
  let parts, _ =
    List.fold_left
      (fun (parts, next) size ->
        (List.init size (fun i -> next + i) :: parts, next + size))
      ([], 1) part_sizes
  in
  let parts = List.rev parts in
  let all = List.concat parts in
  let edges =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun v ->
            if u < v && Random.State.float rng 1.0 < edge_prob then Some (u, v)
            else None)
          all)
      all
  in
  { parts; edges }

let adjacent g u v =
  u <> v
  && (List.mem (u, v) g.edges || List.mem (v, u) g.edges)

let has_partitioned_clique g =
  let rec choose chosen = function
    | [] -> true
    | part :: rest ->
      List.exists
        (fun v ->
          List.for_all (adjacent g v) chosen && choose (v :: chosen) rest)
        part
  in
  choose [] g.parts

(* roles and predicates *)
let l_role k j = Role.make (Symbol.intern (Printf.sprintf "L%d_%d" k j))
let u_role = Role.make (Symbol.intern "U")
let y_role = Role.make (Symbol.intern "Y")
let s_role = Role.make (Symbol.intern "S")
let pb_role = Role.make (Symbol.intern "PB")
let a_pred = Symbol.intern "A"
let b_pred = Symbol.intern "B"

(* vertex j occupies positions 2j-1 and 2j of each block *)
let positions_of j = [ (2 * j) - 1; 2 * j ]

let tbox g =
  let m = num_vertices g in
  let all = List.concat g.parts in
  let axioms = ref [] in
  let add a = axioms := a :: !axioms in
  let p = List.length g.parts in
  (* A ⊑ ∃L¹_j for v_j in the first part *)
  List.iter
    (fun j ->
      add (Tbox.Concept_incl (Concept.Name a_pred, Concept.Exists (l_role 1 j))))
    (List.nth g.parts 0);
  List.iter
    (fun j ->
      (* chains within a block *)
      for k = 1 to (2 * m) - 1 do
        add
          (Tbox.Concept_incl
             (Concept.Exists (Role.inv (l_role k j)), Concept.Exists (l_role (k + 1) j)))
      done;
      (* every L^k_j is a U-edge pointing back up *)
      for k = 1 to 2 * m do
        add (Tbox.Role_incl (l_role k j, Role.inv u_role))
      done;
      (* S at the selected vertex's own positions *)
      List.iter
        (fun k -> add (Tbox.Role_incl (l_role k j, Role.inv s_role)))
        (positions_of j);
      (* Y at the positions of the neighbours of v_j *)
      List.iter
        (fun j' ->
          if adjacent g j j' then
            List.iter
              (fun k -> add (Tbox.Role_incl (l_role k j, Role.inv y_role)))
              (positions_of j'))
        all)
    all;
  (* block transitions *)
  List.iteri
    (fun i part ->
      if i + 1 < p then
        let next = List.nth g.parts (i + 1) in
        List.iter
          (fun j ->
            List.iter
              (fun j' ->
                add
                  (Tbox.Concept_incl
                     ( Concept.Exists (Role.inv (l_role (2 * m) j)),
                       Concept.Exists (l_role 1 j') )))
              next)
          part)
    g.parts;
  (* end of the pth block *)
  List.iter
    (fun j ->
      add
        (Tbox.Concept_incl
           (Concept.Exists (Role.inv (l_role (2 * m) j)), Concept.Name b_pred)))
    (List.nth g.parts (p - 1));
  (* B ⊑ ∃PB with PB ⊑ U and PB ⊑ U⁻: the padding loop *)
  add (Tbox.Concept_incl (Concept.Name b_pred, Concept.Exists pb_role));
  add (Tbox.Role_incl (pb_role, u_role));
  add (Tbox.Role_incl (pb_role, Role.inv u_role));
  Tbox.make (List.rev !axioms)

let query g =
  let m = num_vertices g in
  let p = List.length g.parts in
  let atoms = ref [ Cq.Unary (b_pred, "y") ] in
  for i = 1 to p - 1 do
    (* branch i: U^{2M-2} (Y Y U^{2M-2})^i S S, from y outwards *)
    let letters =
      List.init ((2 * m) - 2) (fun _ -> u_role)
      @ List.concat
          (List.init i (fun _ ->
               [ y_role; y_role ] @ List.init ((2 * m) - 2) (fun _ -> u_role)))
      @ [ s_role; s_role ]
    in
    let prev = ref "y" in
    List.iteri
      (fun t rho ->
        let next = Printf.sprintf "b%d_%d" i t in
        let base = rho.Role.base in
        atoms := Cq.Binary (base, !prev, next) :: !atoms;
        prev := next)
      letters
  done;
  Cq.make ~answer:[] (List.rev !atoms)

let omq g = (tbox g, query g)

let abox () =
  let a = Abox.create () in
  Abox.add_unary a a_pred (Symbol.intern "a");
  a

let answer_via_omq g =
  let t, q = omq g in
  Certain.boolean t (abox ()) q
