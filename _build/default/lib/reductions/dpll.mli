(** A small DPLL SAT solver — the substrate used to check the SAT reductions
    of Section 5 (Theorems 17, 19, 20). *)

type lit = int
(** ±(v+1) for variable v (0-based): positive literal is v+1, negative
    is -(v+1).  A literal is never 0. *)

type cnf = { nvars : int; clauses : lit list list }

val pp : Format.formatter -> cnf -> unit

val satisfiable : cnf -> bool
(** DPLL with unit propagation and pure-literal elimination. *)

val solve : cnf -> bool array option
(** A satisfying assignment if any (index = variable). *)

val remove_clauses : cnf -> bool array -> cnf
(** [remove_clauses ϕ α] is ϕ^{-α}: the clauses χ_i with α_i = true removed
    (Section 5, Theorem 20). *)

val random_3cnf : seed:int -> nvars:int -> nclauses:int -> cnf

val all_clauses_3cnf : int -> cnf
(** Every 3-clause over the given number of variables — the ϕ_k of the proof
    of Theorem 28. *)
