(** The fixed-ontology LOGCFL-hardness construction of Theorem 22: a single
    ontology T‡ and a transducer from words w over
    Σ = {a1,b1,a2,b2,[,],#} to linear Boolean CQs q_w such that
    T‡, {A(a)} ⊨ q_w iff w belongs to Greibach's hardest context-free
    language L (in Sudborough's formulation). *)

open Obda_ontology
open Obda_cq
open Obda_data

val t_ddagger : unit -> Tbox.t
(** T‡: axioms (11) and (16)–(21) of Appendix C.4. *)

val query_of_word : string -> Cq.t
(** The linear Boolean CQ q_w.  Words use the characters 'a','b' (each
    followed by '1' or '2'), '[', ']' and '#'.  Non-block-formed words yield
    a query ending in the error predicate E (never satisfiable). *)

val b0_member : string -> bool
(** Membership in the base language B₀ (the two-pair Dyck language), by a
    stack automaton. *)

val in_hardest_language : string -> bool
(** Ground-truth membership in L: parse the blocks and try every choice
    combination (the instances used in tests are small). *)

val abox : unit -> Abox.t
val answer_via_omq : string -> bool
(** T‡, {A(a)} ⊨ q_w via the canonical model. *)
