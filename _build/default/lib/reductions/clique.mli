(** The W[1]-hardness reduction of Theorem 16: PartitionedClique ≤ answering
    OMQs with bounded-leaf tree-shaped CQs.

    For a graph G partitioned into V₁…V_p, the ontology T_G spawns from A(a)
    one branch per choice of a vertex from each part (p blocks of length 2M),
    marking selected positions with S and neighbours with Y; the CQ q_G is a
    star with p−1 branches checking evenly-spaced Y Y markers ending in S S.
    T_G, {A(a)} ⊨ q_G iff G has a clique with one vertex per part. *)

open Obda_ontology
open Obda_cq
open Obda_data

type pgraph = {
  parts : int list list;  (** partition of the vertices 1..M *)
  edges : (int * int) list;
}

val num_vertices : pgraph -> int

val random : seed:int -> part_sizes:int list -> edge_prob:float -> pgraph

val has_partitioned_clique : pgraph -> bool
(** Brute force over the choice of one vertex per part. *)

val omq : pgraph -> Tbox.t * Cq.t
(** (T_G, q_G). *)

val abox : unit -> Abox.t
(** {A(a)}. *)

val answer_via_omq : pgraph -> bool
