(** Positive existential (PE) formulas and the constructions of
    Theorems 20–21 / 28: evaluating PE-queries over the tree-shaped data
    instances A^α_m is NP-hard, which is why small PE-rewritings of the
    OMQs (T†, q̄_ϕ) may exist even though small polynomial-time-evaluable
    rewritings do not (unless NP ⊆ P/poly). *)

open Obda_data

type term = Var of string | Cst of Abox.const

type t =
  | Atom1 of Obda_syntax.Symbol.t * term  (** A(t) *)
  | Atom2 of Obda_syntax.Symbol.t * term * term  (** P(t,t') *)
  | Eqt of term * term  (** t = t' (over the active domain) *)
  | And of t list
  | Or of t list
  | Exists of string list * t

val size : t -> int
val pp : Format.formatter -> t -> unit

val holds : Abox.t -> (string * Abox.const) list -> t -> bool
(** Evaluation under a partial assignment of the free variables (backtracking
    over the existentials; exponential in general — Theorem 21 says this is
    unavoidable). *)

val eval : Abox.t -> t -> bool
(** [holds] with the empty assignment (sentences). *)

val all_bindings :
  Abox.t -> vars:string list -> t -> Abox.const list list
(** All tuples for the listed variables in satisfying assignments, sorted and
    deduplicated; variables left unbound by a satisfying assignment range
    over the individuals. *)

val query_qm : nvars:int -> t
(** The PE-query q_m(x) of Theorem 28 for the 3-CNF ϕ_k containing all
    3-clauses over [nvars] variables: over the tree instance A^α_m,
    q_m(root) holds iff ϕ_k^{-α} is satisfiable.  Requires [nvars] ≥ 3.
    The free variable is ["x"]. *)

val qm_clause_count : nvars:int -> int
(** m: the number of clauses of ϕ_k (padded to a power of two). *)

val qm_alpha_of_clause_flags : nvars:int -> bool array -> bool array
(** Pad a flag vector over the clauses of ϕ_k to the power-of-two length used
    by [query_qm] (padding entries are true = "removed"). *)

val qm_agrees : nvars:int -> bool array -> bool
(** The Theorem 28 equivalence on one instance: evaluates q_m(root) over
    A^α_m and compares with DPLL satisfiability of ϕ_k^{-α}. *)
