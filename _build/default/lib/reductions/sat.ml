open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
open Obda_chase

let p_plus = Symbol.intern "Pplus"
let p_minus = Symbol.intern "Pminus"
let p_zero = Symbol.intern "Pzero"
let a_pred = Symbol.intern "Asat"
let b_plus = Symbol.intern "Bplus"
let b_minus = Symbol.intern "Bminus"
let b_zero = Symbol.intern "Bzero"
let ups_plus = Role.make (Symbol.intern "upsPlus")
let ups_minus = Role.make (Symbol.intern "upsMinus")
let eta_plus = Role.make (Symbol.intern "etaPlus")
let eta_minus = Role.make (Symbol.intern "etaMinus")
let eta_zero = Role.make (Symbol.intern "etaZero")

let t_dagger () =
  let incl c c' = Tbox.Concept_incl (c, c') in
  let name n = Concept.Name n in
  let ex r = Concept.Exists r in
  let exi r = Concept.Exists (Role.inv r) in
  Tbox.make
    [
      (* A(x) → ∃y (P₊(y,x) ∧ P₀(y,x) ∧ B₋(y) ∧ A(y)) *)
      incl (name a_pred) (ex ups_plus);
      Tbox.Role_incl (ups_plus, Role.inv (Role.make p_plus));
      Tbox.Role_incl (ups_plus, Role.inv (Role.make p_zero));
      incl (exi ups_plus) (name b_minus);
      incl (exi ups_plus) (name a_pred);
      (* B₋(y) → ∃x' (P₋(y,x') ∧ B₀(x')) *)
      incl (name b_minus) (ex eta_minus);
      Tbox.Role_incl (eta_minus, Role.make p_minus);
      incl (exi eta_minus) (name b_zero);
      (* A(x) → ∃y (P₋(y,x) ∧ P₀(y,x) ∧ B₊(y) ∧ A(y)) *)
      incl (name a_pred) (ex ups_minus);
      Tbox.Role_incl (ups_minus, Role.inv (Role.make p_minus));
      Tbox.Role_incl (ups_minus, Role.inv (Role.make p_zero));
      incl (exi ups_minus) (name b_plus);
      incl (exi ups_minus) (name a_pred);
      (* B₊(y) → ∃x' (P₊(y,x') ∧ B₀(x')) *)
      incl (name b_plus) (ex eta_plus);
      Tbox.Role_incl (eta_plus, Role.make p_plus);
      incl (exi eta_plus) (name b_zero);
      (* B₀(x) → ∃y (P₊(x,y) ∧ P₋(x,y) ∧ P₀(x,y) ∧ B₀(y)) *)
      incl (name b_zero) (ex eta_zero);
      Tbox.Role_incl (eta_zero, Role.make p_plus);
      Tbox.Role_incl (eta_zero, Role.make p_minus);
      Tbox.Role_incl (eta_zero, Role.make p_zero);
      incl (exi eta_zero) (name b_zero);
    ]

(* drop tautological clauses and duplicate literals; the encoding needs one
   polarity per (variable, clause) *)
let normalise_cnf (c : Dpll.cnf) =
  let clauses =
    List.filter_map
      (fun clause ->
        let clause = List.sort_uniq Int.compare clause in
        if List.exists (fun l -> List.mem (-l) clause) clause then None
        else Some clause)
      c.Dpll.clauses
  in
  { c with Dpll.clauses }

let polarity clause v =
  (* v is 0-based *)
  if List.mem (v + 1) clause then `Plus
  else if List.mem (-(v + 1)) clause then `Minus
  else `Zero

let p_of = function `Plus -> p_plus | `Minus -> p_minus | `Zero -> p_zero

let query_of_cnf cnf =
  let cnf = normalise_cnf cnf in
  let k = cnf.Dpll.nvars in
  let atoms = ref [ Cq.Unary (a_pred, "y") ] in
  List.iteri
    (fun j clause ->
      let z l = if l = k then "y" else Printf.sprintf "z%d_%d" l j in
      for l = k downto 1 do
        let p = p_of (polarity clause (l - 1)) in
        atoms := Cq.Binary (p, z l, z (l - 1)) :: !atoms
      done;
      atoms := Cq.Unary (b_zero, z 0) :: !atoms)
    cnf.Dpll.clauses;
  Cq.make ~answer:[] (List.rev !atoms)

let abox () =
  let a = Abox.create () in
  Abox.add_unary a a_pred (Symbol.intern "a");
  a

let satisfiable_via_omq cnf =
  let cnf = normalise_cnf cnf in
  if cnf.Dpll.clauses = [] then true
  else
    let t = t_dagger () in
    let q = query_of_cnf cnf in
    Certain.boolean ~depth:((2 * cnf.Dpll.nvars) + 2) t (abox ()) q

(* ------------------------------------------------------------------ *)
(* Theorems 19-20: q̄_ϕ over the tree instances A^α_m *)

let log2_exact m =
  let rec go l acc = if acc = m then Some l else if acc > m then None else go (l + 1) (2 * acc) in
  go 0 1

let qbar_of_cnf cnf =
  let cnf = normalise_cnf cnf in
  let k = cnf.Dpll.nvars in
  let m = List.length cnf.Dpll.clauses in
  let ell =
    match log2_exact m with
    | Some l -> l
    | None -> invalid_arg "Sat.qbar_of_cnf: number of clauses must be 2^l"
  in
  let atoms = ref [] in
  (* P₀(y¹,x), P₀(y²,y¹), …, P₀(y^k, y^{k-1}) *)
  let ylevel l = if l = 0 then "x" else Printf.sprintf "yy%d" l in
  for l = 1 to k do
    atoms := Cq.Binary (p_zero, ylevel l, ylevel (l - 1)) :: !atoms
  done;
  List.iteri
    (fun j0 clause ->
      let j = j0 + 1 in
      let z l =
        if l = k then ylevel k
        else if l >= 0 then Printf.sprintf "z%d_%d" l j
        else Printf.sprintf "zm%d_%d" (-l) j
      in
      for l = k downto 1 do
        let p = p_of (polarity clause (l - 1)) in
        atoms := Cq.Binary (p, z l, z (l - 1)) :: !atoms
      done;
      (* descent guided by the bits of (j-1): bit l = 0 → P₋, 1 → P₊ *)
      for l = 0 to ell - 1 do
        let bit = ((j - 1) lsr l) land 1 in
        let p = if bit = 0 then p_minus else p_plus in
        atoms := Cq.Binary (p, z (-l), z (-l - 1)) :: !atoms
      done;
      atoms := Cq.Unary (b_zero, z (-ell)) :: !atoms)
    cnf.Dpll.clauses;
  Cq.make ~answer:[ "x" ] (List.rev !atoms)

let tree_root = Symbol.intern "a"

let tree_instance alpha =
  let m = Array.length alpha in
  let ell =
    match log2_exact m with
    | Some l -> l
    | None -> invalid_arg "Sat.tree_instance: |α| must be 2^l"
  in
  let a = Abox.create () in
  Abox.add_unary a a_pred tree_root;
  let node path = if path = "" then tree_root else Symbol.intern ("n" ^ path) in
  (* build the full binary tree: 0 = left = P₋, 1 = right = P₊ *)
  let rec build path depth =
    if depth < ell then begin
      Abox.add_binary a p_minus (node path) (node (path ^ "0"));
      Abox.add_binary a p_plus (node path) (node (path ^ "1"));
      build (path ^ "0") (depth + 1);
      build (path ^ "1") (depth + 1)
    end
  in
  build "" 0;
  (* leaf of clause j: bits of (j-1), LSB first (matching q̄_ϕ) *)
  for j = 1 to m do
    if alpha.(j - 1) then begin
      let path =
        String.concat ""
          (List.init ell (fun l -> string_of_int (((j - 1) lsr l) land 1)))
      in
      Abox.add_unary a b_zero (node path)
    end
  done;
  a

let f_phi cnf alpha =
  let cnf = normalise_cnf cnf in
  Dpll.satisfiable (Dpll.remove_clauses cnf alpha)

let qbar_answer cnf alpha =
  let cnf = normalise_cnf cnf in
  let q = qbar_of_cnf cnf in
  let m = List.length cnf.Dpll.clauses in
  let ell = match log2_exact m with Some l -> l | None -> assert false in
  let t = t_dagger () in
  let a = tree_instance alpha in
  let answers =
    Certain.answers ~depth:((2 * cnf.Dpll.nvars) + ell + 2) t a q
  in
  List.mem [ tree_root ] answers
