lib/reductions/sat.ml: Abox Array Certain Concept Cq Dpll Int List Obda_chase Obda_cq Obda_data Obda_ontology Obda_syntax Printf Role String Symbol Tbox
