lib/reductions/hitting_set.mli: Abox Cq Obda_cq Obda_data Obda_ontology Tbox
