lib/reductions/clique.mli: Abox Cq Obda_cq Obda_data Obda_ontology Tbox
