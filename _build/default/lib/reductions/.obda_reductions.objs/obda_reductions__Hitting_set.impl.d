lib/reductions/hitting_set.ml: Abox Certain Concept Cq Int List Obda_chase Obda_cq Obda_data Obda_ontology Obda_syntax Printf Random Role Symbol Tbox
