lib/reductions/clique.ml: Abox Certain Concept Cq List Obda_chase Obda_cq Obda_data Obda_ontology Obda_syntax Printf Random Role Symbol Tbox
