lib/reductions/pe.mli: Abox Format Obda_data Obda_syntax
