lib/reductions/dpll.ml: Array Format List Random String
