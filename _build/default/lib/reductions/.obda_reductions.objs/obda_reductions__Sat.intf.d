lib/reductions/sat.mli: Abox Cq Dpll Obda_cq Obda_data Obda_ontology Tbox
