lib/reductions/pe.ml: Abox Array Dpll Format Fun Hashtbl List Obda_data Obda_syntax Printf Sat Seq String Symbol
