lib/reductions/cfl.mli: Abox Cq Obda_cq Obda_data Obda_ontology Tbox
