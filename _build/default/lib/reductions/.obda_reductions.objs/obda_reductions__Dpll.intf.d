lib/reductions/dpll.mli: Format
