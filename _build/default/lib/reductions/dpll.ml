type lit = int
type cnf = { nvars : int; clauses : lit list list }

let pp ppf c =
  Format.fprintf ppf "%d vars:" c.nvars;
  List.iter
    (fun clause ->
      Format.fprintf ppf " (%s)"
        (String.concat "|" (List.map string_of_int clause)))
    c.clauses

(* assignment: 0 = unassigned, 1 = true, -1 = false *)
let rec dpll assignment clauses =
  (* unit propagation *)
  let value l =
    let v = assignment.(abs l - 1) in
    if v = 0 then 0 else if (l > 0 && v = 1) || (l < 0 && v = -1) then 1 else -1
  in
  let simplified =
    List.filter_map
      (fun clause ->
        if List.exists (fun l -> value l = 1) clause then None
        else Some (List.filter (fun l -> value l = 0) clause))
      clauses
  in
  if simplified = [] then true
  else if List.exists (fun c -> c = []) simplified then false
  else
    match List.find_opt (fun c -> List.length c = 1) simplified with
    | Some [ l ] ->
      assignment.(abs l - 1) <- (if l > 0 then 1 else -1);
      let r = dpll assignment simplified in
      if not r then assignment.(abs l - 1) <- 0;
      r
    | _ ->
      let l =
        match simplified with c :: _ -> List.hd c | [] -> assert false
      in
      let try_value v =
        assignment.(abs l - 1) <- v;
        let r = dpll assignment simplified in
        if not r then assignment.(abs l - 1) <- 0;
        r
      in
      try_value (if l > 0 then 1 else -1) || try_value (if l > 0 then -1 else 1)

let solve c =
  let assignment = Array.make (max 1 c.nvars) 0 in
  if dpll assignment c.clauses then
    Some (Array.map (fun v -> v = 1) assignment)
  else None

let satisfiable c = solve c <> None

let remove_clauses c alpha =
  {
    c with
    clauses =
      List.filteri (fun i _ -> i >= Array.length alpha || not alpha.(i)) c.clauses;
  }

let random_3cnf ~seed ~nvars ~nclauses =
  let rng = Random.State.make [| seed; nvars; nclauses |] in
  let clause () =
    List.init 3 (fun _ ->
        let v = Random.State.int rng nvars + 1 in
        if Random.State.bool rng then v else -v)
  in
  { nvars; clauses = List.init nclauses (fun _ -> clause ()) }

let all_clauses_3cnf nvars =
  let lits = List.init (2 * nvars) (fun i -> if i < nvars then i + 1 else -(i - nvars + 1)) in
  let clauses =
    List.concat_map
      (fun l1 ->
        List.concat_map
          (fun l2 ->
            List.filter_map
              (fun l3 ->
                if abs l1 < abs l2 && abs l2 < abs l3 then Some [ l1; l2; l3 ]
                else None)
              lits)
          lits)
      lits
  in
  { nvars; clauses }
