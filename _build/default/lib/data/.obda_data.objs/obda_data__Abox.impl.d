lib/data/abox.ml: Concept Format Hashtbl List Obda_ontology Obda_syntax Option Role Symbol Tbox
