lib/data/generate.mli: Abox Obda_syntax Symbol
