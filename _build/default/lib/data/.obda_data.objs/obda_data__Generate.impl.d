lib/data/generate.ml: Abox List Obda_syntax Printf Random Symbol
