lib/data/abox.mli: Concept Format Obda_ontology Obda_syntax Role Symbol Tbox
