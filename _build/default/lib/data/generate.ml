open Obda_syntax

type graph_params = {
  vertices : int;
  edge_prob : float;
  concept_prob : float;
}

let table2_params =
  [
    ("1.ttl", { vertices = 1_000; edge_prob = 0.050; concept_prob = 0.050 });
    ("2.ttl", { vertices = 5_000; edge_prob = 0.002; concept_prob = 0.004 });
    ("3.ttl", { vertices = 10_000; edge_prob = 0.002; concept_prob = 0.004 });
    ("4.ttl", { vertices = 20_000; edge_prob = 0.002; concept_prob = 0.010 });
  ]

let vertex_name i = Symbol.intern (Printf.sprintf "v%d" i)

let erdos_renyi ?(seed = 42) ~edge_pred ~concepts params =
  let rng = Random.State.make [| seed; params.vertices |] in
  let a = Abox.create () in
  let v = params.vertices in
  (* Sample the number of successors per vertex binomially via the geometric
     skipping trick, so generation is O(edges) rather than O(V^2). *)
  let p = params.edge_prob in
  let log1mp = if p >= 1.0 then neg_infinity else log (1.0 -. p) in
  for i = 0 to v - 1 do
    let ci = vertex_name i in
    List.iter
      (fun concept ->
        if Random.State.float rng 1.0 < params.concept_prob then
          Abox.add_unary a concept ci)
      concepts;
    if p > 0.0 then begin
      let j = ref (-1) in
      let continue = ref true in
      while !continue do
        let r = Random.State.float rng 1.0 in
        let skip =
          if log1mp = neg_infinity then 1
          else 1 + int_of_float (log (1.0 -. r) /. log1mp)
        in
        j := !j + skip;
        if !j >= v then continue := false
        else if !j <> i then Abox.add_binary a edge_pred ci (vertex_name !j)
      done
    end
  done;
  (* make sure every vertex is in ind(A) even if it got no atoms *)
  a

let scale factor params =
  let vertices = max 2 (int_of_float (float_of_int params.vertices *. factor)) in
  (* keep average degree V·p constant *)
  let edge_prob =
    min 1.0
      (params.edge_prob *. float_of_int params.vertices /. float_of_int vertices)
  in
  { params with vertices; edge_prob }

let vertex i = vertex_name i
