(** Random data instances for the experiments (Appendix D.2, Table 2). *)

open Obda_syntax

type graph_params = {
  vertices : int;  (** V *)
  edge_prob : float;  (** p: probability of a directed R-edge *)
  concept_prob : float;  (** q: probability of each marker concept at a vertex *)
}

val table2_params : (string * graph_params) list
(** The four datasets of Table 2 (names "1.ttl" … "4.ttl"). *)

val erdos_renyi :
  ?seed:int ->
  edge_pred:Symbol.t ->
  concepts:Symbol.t list ->
  graph_params ->
  Abox.t
(** An Erdős–Rényi instance: each ordered pair (u,v), u ≠ v, carries an
    [edge_pred] atom with probability p, and each vertex carries each of the
    marker [concepts] with probability q.  Deterministic for a fixed seed. *)

val scale : float -> graph_params -> graph_params
(** Scale the vertex count by the factor (probabilities adjusted to keep the
    average degree, so the graph shape is preserved at smaller size). *)

val vertex : int -> Symbol.t
(** [vertex i] is the interned name of the [i]-th generated vertex, handy in
    tests. *)
