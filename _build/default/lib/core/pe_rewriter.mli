(** Positive-existential (PE) rewritings (Fig. 1(b)).

    The tree-witness PE-rewriting of [37]: q_tw = ⋁_Θ ∃y (⋀ atoms outside Θ
    ∧ ⋀_{t∈Θ} tw_t), over the independent (atom-disjoint) sets Θ of tree
    witnesses — the formula counterpart of {!Presto_like}.  Its size can be
    super-polynomial (that is the point of Fig. 1(b)); comparing it with the
    linear-sized NDL-rewritings reproduces the figure's message. *)

open Obda_ontology
open Obda_cq

exception Limit_reached

type formula =
  | Atom of Cq.atom
  | Equal of Cq.var * Cq.var
  | And of formula list
  | Or of formula list

val size : formula -> int
(** Number of symbols (atoms + connectives), the |q′| of Section 2. *)

val pp : Format.formatter -> formula -> unit

val rewrite : ?max_subsets:int -> Tbox.t -> Cq.t -> formula
(** The PE-rewriting over complete data instances; the answer variables are
    free, every other variable is implicitly existentially quantified. *)

val matrix_depth : formula -> int
(** Alternation depth of the ∧/∨ matrix (the k of Π_k-rewritings). *)

val certain_answers :
  Tbox.t -> Cq.t -> formula -> Obda_data.Abox.t -> Obda_syntax.Symbol.t list list
(** Evaluate the PE-rewriting over the completion of the given instance
    (for testing: agrees with the NDL rewritings). *)
