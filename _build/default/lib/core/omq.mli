(** Ontology-mediated queries and the top-level rewriting/answering API.

    An OMQ is a pair Q(x) = (T, q(x)).  [classify] places it in the
    complexity landscape of Fig. 1; [rewrite] produces an NDL-rewriting with
    the requested algorithm (over complete or arbitrary data instances);
    [answer] evaluates a rewriting over an ABox, checking consistency
    first. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data

type t = { tbox : Tbox.t; cq : Cq.t }

val make : Tbox.t -> Cq.t -> t

type algorithm =
  | Tw  (** Section 3.4: tree witnesses, LOGCFL, any-depth ontology *)
  | Lin  (** Section 3.3: slices, NL, finite-depth ontology *)
  | Log  (** Section 3.2: tree decomposition, LOGCFL, finite-depth ontology *)
  | Ucq  (** PerfectRef baseline (Clipper star) *)
  | Ucq_condensed  (** PerfectRef + subsumption pruning (Rapid star) *)
  | Presto_like  (** flat tree-witness baseline (Presto star) *)

val all_algorithms : algorithm list
val algorithm_name : algorithm -> string

val applicable : algorithm -> t -> bool
(** Whether the algorithm's side conditions hold (tree shape, finite depth…). *)

type classification = {
  ontology_depth : Tbox.depth;
  treewidth : int;  (** upper bound from the decomposition *)
  tree_shaped : bool;
  leaves : int option;  (** for tree-shaped CQs *)
  linear : bool;
  classes : string list;
      (** the OMQ(·,·,·) classes of Fig. 1 the OMQ belongs to *)
}

val classify : t -> classification
val pp_classification : Format.formatter -> classification -> unit

val rewrite :
  ?over:[ `Complete | `Arbitrary ] ->
  ?consistency:bool ->
  algorithm -> t -> Obda_ndl.Ndl.query
(** Default [`Arbitrary].  The UCQ baselines are rewritings over arbitrary
    instances natively; Tw/Lin/Log are produced over complete instances and
    passed through the ∗-transformation (the linearity-preserving Lemma 3
    construction for Lin) when [`Arbitrary] is requested.

    With [~consistency:true] (and [`Arbitrary]), the ⊥-axioms of the
    ontology are compiled in following the remark at the end of Section 2:
    the program outputs every tuple over the active domain when (T,A) is
    inconsistent, so [Eval] alone computes certain answers on any data. *)

val answer :
  ?algorithm:algorithm -> t -> Abox.t -> Symbol.t list list
(** Certain answers via rewriting + NDL evaluation.  Defaults to [Tw] for
    tree-shaped CQs and [Log] otherwise.  If (T,A) is inconsistent, every
    tuple over ind(A) is returned (of the answer arity), per the convention
    at the end of Section 2. *)

val answer_certain : t -> Abox.t -> Symbol.t list list
(** Ground-truth answers via the canonical model (chase), for testing. *)
