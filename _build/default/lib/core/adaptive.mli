(** Cost-based rewriting selection — the "adaptable splitting strategy"
    sketched in the paper's concluding discussion (Section 6): none of the
    three optimal rewritings dominates, so use statistics of the relational
    tables to estimate the evaluation cost of candidate NDL programs and
    pick the cheapest.

    The cost model is a Selinger-style estimate: clauses are costed along
    the same greedy join order the evaluation engine uses, with EDB
    cardinalities taken from the data and IDB cardinalities propagated
    bottom-up through the dependence order. *)

open Obda_ontology
open Obda_cq
open Obda_data

type stats

val stats_of_abox : Abox.t -> stats
val cardinality : stats -> Obda_syntax.Symbol.t -> int option

val estimate_cost : stats -> Obda_ndl.Ndl.query -> float
(** Estimated number of intermediate tuples touched when materialising the
    program bottom-up. *)

type candidate = { name : string; query : Obda_ndl.Ndl.query; cost : float }

val candidates : Tbox.t -> Cq.t -> stats -> candidate list
(** Costed applicable variants: Lin with each endpoint (and the centre) as
    root, Log, Tw, and Tw* — all over arbitrary instances, sorted by
    estimated cost. *)

val choose : Tbox.t -> Cq.t -> Abox.t -> candidate
(** The cheapest candidate for this data. *)

val answer : Tbox.t -> Cq.t -> Abox.t -> Obda_syntax.Symbol.t list list
(** Answer with the chosen candidate. *)
