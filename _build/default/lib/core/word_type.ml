open Obda_syntax
open Obda_ontology
open Obda_cq
module Ndl = Obda_ndl.Ndl

type word = Role.t list

let pp_word ppf = function
  | [] -> Format.pp_print_string ppf "eps"
  | w ->
    Format.pp_print_string ppf
      (String.concat "." (List.map Role.to_string w))

let compare_word = List.compare Role.compare

type t = word Cq.Var_map.t

let candidates tbox ~max_depth = [] :: Tbox.words_up_to tbox max_depth

let last_letter = function [] -> None | w -> Some (List.nth w (List.length w - 1))

let locally_ok tbox q z w =
  match w with
  | [] -> true
  | _ ->
    (not (Cq.is_answer_var q z))
    && (match last_letter w with
       | Some rho ->
         List.for_all
           (fun a -> Tbox.null_satisfies tbox rho a)
           (Cq.unary_atoms_of q z)
       | None -> true)
    && List.for_all
         (fun p -> Tbox.reflexive tbox (Role.make p))
         (Cq.loop_atoms_of q z)

(* P(y,z) with y ↦ wy, z ↦ wz: (i) both ε; (ii) equal words and reflexive P;
   (iii) ρ ⊑ P with wz = wy·ρ or wy = wz·ρ⁻. *)
let pair_ok tbox p wy wz =
  let rho = Role.make p in
  match (wy, wz) with
  | [], [] -> true
  | _ ->
    (compare_word wy wz = 0 && Tbox.reflexive tbox rho)
    || (let ly = List.length wy and lz = List.length wz in
        if lz = ly + 1 && List.compare Role.compare wy (List.filteri (fun i _ -> i < ly) wz) = 0
        then
          match last_letter wz with
          | Some sigma -> Tbox.sub_role tbox ~sub:sigma ~sup:rho
          | None -> false
        else if ly = lz + 1
                && List.compare Role.compare wz (List.filteri (fun i _ -> i < lz) wy) = 0
        then
          match last_letter wy with
          | Some sigma -> Tbox.sub_role tbox ~sub:sigma ~sup:(Role.inv rho)
          | None -> false
        else false)

let compatible_on tbox q vars ty =
  let value z = Cq.Var_map.find_opt z ty in
  List.for_all
    (fun z ->
      match value z with None -> true | Some w -> locally_ok tbox q z w)
    vars
  && List.for_all
       (fun atom ->
         match atom with
         | Cq.Unary _ -> true
         | Cq.Binary (p, y, z) ->
           if y = z then true
           else if List.mem y vars && List.mem z vars then (
             match (value y, value z) with
             | Some wy, Some wz -> pair_ok tbox p wy wz
             | _ -> true)
           else true)
       (Cq.atoms q)

let at_atoms tbox q ~scope ~emit_for ty =
  let in_scope z = List.mem z scope in
  let value z = Option.value ~default:[] (Cq.Var_map.find_opt z ty) in
  let from_atoms =
    List.concat_map
      (fun atom ->
        match atom with
        | Cq.Unary (a, z) when in_scope z && emit_for z ->
          if value z = [] then [ Ndl.Pred (a, [ Ndl.Var z ]) ] else []
        | Cq.Binary (p, y, z)
          when y <> z && in_scope y && in_scope z && (emit_for y || emit_for z)
          ->
          if value y = [] && value z = [] then
            [ Ndl.Pred (p, [ Ndl.Var y; Ndl.Var z ]) ]
          else [ Ndl.Eq (Ndl.Var y, Ndl.Var z) ]
        | Cq.Binary (p, y, z) when y = z && in_scope z && emit_for z ->
          if value z = [] then [ Ndl.Pred (p, [ Ndl.Var z; Ndl.Var z ]) ]
          else []
        | Cq.Unary _ | Cq.Binary _ -> [])
      (Cq.atoms q)
  in
  let from_words =
    List.filter_map
      (fun z ->
        if not (emit_for z) then None
        else
          match value z with
          | [] -> None
          | rho :: _ ->
            Some (Ndl.Pred (Tbox.exists_name tbox rho, [ Ndl.Var z ])))
      scope
  in
  from_atoms @ from_words
