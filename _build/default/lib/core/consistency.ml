open Obda_syntax
open Obda_ontology
module Ndl = Obda_ndl.Ndl

let goal = Symbol.intern "Inconsistent!"

let role_atom rho t1 t2 =
  if Role.is_inverse rho then Ndl.Pred (rho.Role.base, [ t2; t1 ])
  else Ndl.Pred (rho.Role.base, [ t1; t2 ])

(* atoms witnessing that [u] satisfies the basic concept, with fresh
   existential variables supplied by [fresh] *)
let concept_atoms fresh u = function
  | Concept.Name a -> [ Ndl.Pred (a, [ u ]) ]
  | Concept.Exists rho -> [ role_atom rho u (Ndl.Var (fresh ())) ]
  | Concept.Top -> [ Ndl.Dom u ]

let clauses tbox =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "w!%d" !counter
  in
  let out = ref [] in
  let emit body = out := { Ndl.head = (goal, []); body } :: !out in
  let u = Ndl.Var "u" and v = Ndl.Var "v" in
  (* disjoint concepts: some individual satisfies both sides *)
  List.iter
    (fun (tau, tau') ->
      List.iter
        (fun b ->
          List.iter
            (fun b' -> emit (concept_atoms fresh u b @ concept_atoms fresh u b'))
            (Tbox.subconcepts_of tbox tau'))
        (Tbox.subconcepts_of tbox tau))
    (Tbox.disjoint_concept_axioms tbox);
  (* disjoint roles: some pair satisfies both sides *)
  List.iter
    (fun (rho, rho') ->
      List.iter
        (fun s ->
          List.iter
            (fun s' -> emit [ role_atom s u v; role_atom s' u v ])
            (Tbox.subroles_of tbox rho'))
        (Tbox.subroles_of tbox rho);
      (* reflexivity makes loops implicit *)
      if Tbox.reflexive tbox rho then
        List.iter
          (fun s' -> emit [ role_atom s' u u ])
          (Tbox.subroles_of tbox rho');
      if Tbox.reflexive tbox rho' then
        List.iter (fun s -> emit [ role_atom s u u ]) (Tbox.subroles_of tbox rho);
      if Tbox.reflexive tbox rho && Tbox.reflexive tbox rho' then
        emit [ Ndl.Dom u ])
    (Tbox.disjoint_role_axioms tbox);
  (* irreflexive roles *)
  List.iter
    (fun rho ->
      List.iter (fun s -> emit [ role_atom s u u ]) (Tbox.subroles_of tbox rho);
      if Tbox.reflexive tbox rho then emit [ Ndl.Dom u ])
    (Tbox.irreflexive_axioms tbox);
  !out

let query tbox = Ndl.make ~goal ~goal_args:[] (clauses tbox)

let guard_rewriting tbox (q : Ndl.query) =
  match clauses tbox with
  | [] -> q
  | cs ->
    let guard_clause =
      {
        Ndl.head = (q.Ndl.goal, List.map (fun v -> Ndl.Var v) q.Ndl.goal_args);
        body =
          Ndl.Pred (goal, [])
          :: List.map (fun v -> Ndl.Dom (Ndl.Var v)) q.Ndl.goal_args;
      }
    in
    { q with Ndl.clauses = q.Ndl.clauses @ cs @ [ guard_clause ] }
