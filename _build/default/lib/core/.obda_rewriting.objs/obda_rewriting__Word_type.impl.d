lib/core/word_type.ml: Cq Format List Obda_cq Obda_ndl Obda_ontology Obda_syntax Option Role String Tbox
