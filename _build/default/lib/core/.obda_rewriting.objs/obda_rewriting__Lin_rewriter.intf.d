lib/core/lin_rewriter.mli: Cq Obda_cq Obda_ndl Obda_ontology Tbox
