lib/core/tree_witness.ml: Canonical Certain Concept Cq Format List Obda_chase Obda_cq Obda_ontology Obda_syntax Role String Tbox Ugraph
