lib/core/adaptive.ml: Abox Cq Float Fun Lin_rewriter List Obda_cq Obda_data Obda_ndl Obda_syntax Omq Option Printf Set String Symbol Ugraph
