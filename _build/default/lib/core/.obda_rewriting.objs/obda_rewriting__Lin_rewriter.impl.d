lib/core/lin_rewriter.ml: Array Cq Hashtbl List Obda_cq Obda_ndl Obda_ontology Obda_syntax Printf Symbol Tbox Ugraph Word_type
