lib/core/consistency.mli: Obda_ndl Obda_ontology Obda_syntax Symbol Tbox
