lib/core/ucq_rewriter.mli: Cq Obda_cq Obda_ndl Obda_ontology Tbox
