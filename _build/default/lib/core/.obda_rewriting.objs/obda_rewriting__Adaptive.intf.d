lib/core/adaptive.mli: Abox Cq Obda_cq Obda_data Obda_ndl Obda_ontology Obda_syntax Tbox
