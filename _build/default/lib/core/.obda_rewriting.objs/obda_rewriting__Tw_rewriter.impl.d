lib/core/tw_rewriter.ml: Certain Concept Cq List Map Obda_chase Obda_cq Obda_ndl Obda_ontology Obda_syntax Printf String Symbol Tbox Tree_witness Ugraph
