lib/core/word_type.mli: Cq Format Obda_cq Obda_ndl Obda_ontology Obda_syntax Role Symbol Tbox
