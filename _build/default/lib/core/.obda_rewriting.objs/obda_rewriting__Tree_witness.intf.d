lib/core/tree_witness.mli: Cq Format Obda_cq Obda_ontology Obda_syntax Role Tbox
