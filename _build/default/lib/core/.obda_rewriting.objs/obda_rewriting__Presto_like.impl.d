lib/core/presto_like.ml: Certain Concept Cq List Obda_chase Obda_cq Obda_ndl Obda_ontology Obda_syntax Printf Symbol Tbox Tree_witness
