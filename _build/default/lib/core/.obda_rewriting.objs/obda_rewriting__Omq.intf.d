lib/core/omq.mli: Abox Cq Format Obda_cq Obda_data Obda_ndl Obda_ontology Obda_syntax Symbol Tbox
