lib/core/pe_rewriter.mli: Cq Format Obda_cq Obda_data Obda_ontology Obda_syntax Tbox
