lib/core/pe_rewriter.ml: Abox Cq Format Hashtbl List Obda_cq Obda_data Obda_ontology Obda_syntax Seq Symbol Tbox Tree_witness
