lib/core/log_rewriter.ml: Array Cq Format Fun Hashtbl List Obda_cq Obda_ndl Obda_ontology Obda_syntax Printf Set String Symbol Tbox Tree_decomposition Ugraph Word_type
