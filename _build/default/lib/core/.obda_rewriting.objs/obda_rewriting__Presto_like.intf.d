lib/core/presto_like.mli: Cq Obda_cq Obda_ndl Obda_ontology Tbox
