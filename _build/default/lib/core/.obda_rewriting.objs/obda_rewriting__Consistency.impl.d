lib/core/consistency.ml: Concept List Obda_ndl Obda_ontology Obda_syntax Printf Role Symbol Tbox
