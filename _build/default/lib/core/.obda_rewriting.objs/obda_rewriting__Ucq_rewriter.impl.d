lib/core/ucq_rewriter.ml: Array Concept Cq Hashtbl List Obda_cq Obda_ndl Obda_ontology Obda_syntax Printf Queue Role Symbol Tbox
