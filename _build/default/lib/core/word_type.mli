(** Types in the sense of Sections 3.2 and 3.3: partial maps from query
    variables to witness words of W_T (the empty word ε denotes "mapped to an
    individual constant"). *)

open Obda_syntax
open Obda_ontology
open Obda_cq

type word = Role.t list
(** In reading order; [] is ε. *)

val pp_word : Format.formatter -> word -> unit
val compare_word : word -> word -> int

type t = word Cq.Var_map.t
(** A type w; absent variables are outside dom(w). *)

val candidates : Tbox.t -> max_depth:int -> word list
(** ε together with all words of W_T of length ≤ [max_depth]. *)

val locally_ok : Tbox.t -> Cq.t -> Cq.var -> word -> bool
(** The per-variable conditions: answer variables get ε; A(z) ∈ q needs ε or
    a last letter ρ with T ⊨ ∃y ρ(y,x) → A(x); P(z,z) ∈ q needs ε or
    reflexive P. *)

val pair_ok : Tbox.t -> Symbol.t -> word -> word -> bool
(** [pair_ok T P wy wz]: whether an atom P(y,z) is consistent with y, z being
    mapped according to the two words — conditions (i)–(iii) of
    "compatible" in Section 3.2. *)

val compatible_on : Tbox.t -> Cq.t -> Cq.var list -> t -> bool
(** Whether the restriction of the type to the listed variables satisfies all
    local and pairwise conditions for the atoms within those variables. *)

val at_atoms :
  Tbox.t -> Cq.t -> scope:Cq.var list -> emit_for:(Cq.var -> bool) -> t ->
  Obda_ndl.Ndl.atom list
(** The conjunction At^s of Section 3.2 over the atoms of q within [scope]:
    (a) data atoms for ε-variables, (b) equalities when a variable is mapped
    into the anonymous part, (c) A_ρ(z) for variables whose word starts with
    ρ.  Only atoms having at least one variable satisfying [emit_for] are
    emitted (used by the Lin-rewriting to emit each atom exactly once), and
    (c) only for variables satisfying [emit_for]. *)
