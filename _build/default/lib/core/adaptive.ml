open Obda_syntax
open Obda_cq
open Obda_data
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval
module Star = Obda_ndl.Star
module Optimize = Obda_ndl.Optimize

type stats = { sizes : int Symbol.Tbl.t; domain : int }

let stats_of_abox abox =
  let sizes = Symbol.Tbl.create 32 in
  List.iter
    (fun p -> Symbol.Tbl.replace sizes p (List.length (Abox.unary_members abox p)))
    (Abox.unary_preds abox);
  List.iter
    (fun p ->
      Symbol.Tbl.replace sizes p (List.length (Abox.binary_members abox p)))
    (Abox.binary_preds abox);
  { sizes; domain = max 1 (Abox.num_individuals abox) }

let cardinality st p = Symbol.Tbl.find_opt st.sizes p

(* ------------------------------------------------------------------ *)
(* Cost model *)

module VarSet = Set.Make (String)

(* cost of one clause given a size oracle for its body predicates: walk the
   atoms greedily (most-bound first, as the engine does) and accumulate the
   estimated intermediate result sizes *)
let clause_cost st size_of (c : Ndl.clause) =
  let d = float_of_int st.domain in
  let remaining = ref c.Ndl.body in
  let bound = ref VarSet.empty in
  let bound_term = function
    | Ndl.Var v -> VarSet.mem v !bound
    | Ndl.Cst _ -> true
  in
  let bound_count a =
    List.length (List.filter bound_term (Ndl.atom_terms a))
  in
  let current = ref 1.0 in
  let cost = ref 0.0 in
  while !remaining <> [] do
    let atom =
      List.fold_left
        (fun best a ->
          match best with
          | None -> Some a
          | Some b -> if bound_count a > bound_count b then Some a else best)
        None !remaining
      |> Option.get
    in
    remaining := List.filter (fun a -> a != atom) !remaining;
    let size =
      match atom with
      | Ndl.Pred (p, ts) -> (
        match size_of p (List.length ts) with
        | Some s -> float_of_int (max 1 s)
        | None -> d (* unknown predicate: guess |domain| *))
      | Ndl.Eq _ -> 1.0
      | Ndl.Dom _ -> d
    in
    let b = bound_count atom in
    (* each bound position filters the relation by roughly 1/domain *)
    let multiplier = max (size /. (d ** float_of_int b)) 0.001 in
    current := !current *. multiplier;
    cost := !cost +. max !current 1.0;
    List.iter
      (fun v -> bound := VarSet.add v !bound)
      (Ndl.atom_vars atom)
  done;
  (!cost, max !current 0.001)

let estimate_cost st (q : Ndl.query) =
  match Ndl.topo_order q with
  | exception Invalid_argument _ -> infinity
  | order ->
    let idb_size : float Symbol.Tbl.t = Symbol.Tbl.create 16 in
    let size_of p arity =
      match Symbol.Tbl.find_opt idb_size p with
      | Some s -> Some (int_of_float (min s 1e9))
      | None -> (
        match cardinality st p with
        | Some s -> Some s
        | None ->
          if Symbol.Set.mem p (Ndl.idb_preds q) then None
          else Some (if arity = 1 then st.domain / 4 else st.domain) )
    in
    let by_head = Symbol.Tbl.create 16 in
    List.iter
      (fun (c : Ndl.clause) ->
        let cur =
          Option.value ~default:[] (Symbol.Tbl.find_opt by_head (fst c.Ndl.head))
        in
        Symbol.Tbl.replace by_head (fst c.Ndl.head) (c :: cur))
      q.Ndl.clauses;
    let total = ref 0.0 in
    List.iter
      (fun p ->
        let clauses = Option.value ~default:[] (Symbol.Tbl.find_opt by_head p) in
        let size = ref 0.0 in
        List.iter
          (fun c ->
            let cost, out = clause_cost st size_of c in
            total := !total +. cost;
            size := !size +. out)
          clauses;
        let arity =
          match clauses with
          | c :: _ -> List.length (snd c.Ndl.head)
          | [] -> 0
        in
        let cap = float_of_int st.domain ** float_of_int (max arity 1) in
        Symbol.Tbl.replace idb_size p (min !size cap))
      order;
    !total

(* ------------------------------------------------------------------ *)
(* Candidates *)

type candidate = { name : string; query : Ndl.query; cost : float }

let lin_variant tbox q root =
  Star.complete_to_arbitrary_linear tbox (Lin_rewriter.rewrite ~root tbox q)

let candidates tbox q st =
  let omq = Omq.make tbox q in
  let raw = ref [] in
  let add name query = raw := (name, query) :: !raw in
  if Omq.applicable Omq.Lin omq then begin
    let g = Cq.gaifman q in
    let leaves =
      List.filter
        (fun v -> Ugraph.degree g (Cq.var_index q v) <= 1)
        (Cq.vars q)
    in
    let centre = Cq.var_of_index q (Ugraph.centroid g (List.init (List.length (Cq.vars q)) Fun.id)) in
    let roots =
      List.sort_uniq String.compare
        ((match leaves with a :: b :: _ -> [ a; b ] | l -> l) @ [ centre ])
    in
    List.iter
      (fun r -> add (Printf.sprintf "Lin/root=%s" r) (lin_variant tbox q r))
      roots
  end;
  if Omq.applicable Omq.Log omq then add "Log" (Omq.rewrite Omq.Log omq);
  if Omq.applicable Omq.Tw omq then begin
    let tw = Omq.rewrite Omq.Tw omq in
    add "Tw" tw;
    add "Tw*" (Optimize.inline_single_use tw)
  end;
  List.map (fun (name, query) -> { name; query; cost = estimate_cost st query }) !raw
  |> List.sort (fun a b -> Float.compare a.cost b.cost)

let choose tbox q abox =
  match candidates tbox q (stats_of_abox abox) with
  | best :: _ -> best
  | [] -> invalid_arg "Adaptive.choose: no applicable rewriting"

let answer tbox q abox =
  let c = choose tbox q abox in
  Eval.answers c.query abox
