(** Handling ⊥ inside NDL-rewritings (the remark at the end of Section 2):
    subqueries that check whether the left-hand side of some axiom with ⊥
    holds, and output all tuples of constants if so. *)

open Obda_syntax
open Obda_ontology

val goal : Symbol.t
(** The 0-ary "inconsistent" predicate. *)

val clauses : Tbox.t -> Obda_ndl.Ndl.clause list
(** Clauses deriving {!goal} over arbitrary data instances whenever (T,A) is
    inconsistent. *)

val query : Tbox.t -> Obda_ndl.Ndl.query
(** The inconsistency check as a Boolean NDL query. *)

val guard_rewriting : Tbox.t -> Obda_ndl.Ndl.query -> Obda_ndl.Ndl.query
(** Extend a rewriting over arbitrary instances with clauses that output
    every tuple over the active domain when the data is inconsistent with
    the ontology. *)
