lib/chase/certain.ml: Array Canonical Cq Hashtbl List Obda_cq Obda_ontology Obda_syntax Role Symbol Ugraph
