lib/chase/canonical.mli: Abox Concept Format Obda_data Obda_ontology Obda_syntax Role Symbol Tbox
