lib/chase/canonical.ml: Abox Concept Format Lazy List Obda_data Obda_ontology Obda_syntax Role String Symbol Tbox
