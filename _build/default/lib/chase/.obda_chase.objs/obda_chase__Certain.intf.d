lib/chase/certain.mli: Abox Canonical Concept Cq Obda_cq Obda_data Obda_ontology Obda_syntax Symbol Tbox
