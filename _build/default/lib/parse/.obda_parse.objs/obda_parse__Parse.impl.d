lib/parse/parse.ml: Abox Concept Cq Format List Obda_cq Obda_data Obda_mapping Obda_ndl Obda_ontology Obda_syntax Printf Role String Symbol Tbox
