lib/parse/parse.mli: Abox Cq Obda_cq Obda_data Obda_mapping Obda_ontology Tbox
