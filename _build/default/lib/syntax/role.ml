type t = { base : Symbol.t; inverse : bool }

let make p = { base = p; inverse = false }

let of_string s =
  let n = String.length s in
  if n > 1 && s.[n - 1] = '-' then
    { base = Symbol.intern (String.sub s 0 (n - 1)); inverse = true }
  else { base = Symbol.intern s; inverse = false }

let inv r = { r with inverse = not r.inverse }
let is_inverse r = r.inverse

let compare r1 r2 =
  match Symbol.compare r1.base r2.base with
  | 0 -> Bool.compare r1.inverse r2.inverse
  | c -> c

let equal r1 r2 = compare r1 r2 = 0
let hash r = (Symbol.hash r.base * 2) + if r.inverse then 1 else 0
let to_string r = Symbol.name r.base ^ if r.inverse then "-" else ""
let pp ppf r = Format.pp_print_string ppf (to_string r)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
