lib/syntax/role.mli: Format Hashtbl Map Set Symbol
