lib/syntax/concept.ml: Format Map Role Set Symbol
