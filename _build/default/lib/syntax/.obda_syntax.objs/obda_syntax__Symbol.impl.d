lib/syntax/symbol.ml: Format Hashtbl Int Map Printf Set
