lib/syntax/role.ml: Bool Format Hashtbl Map Set String Symbol
