lib/syntax/symbol.mli: Format Hashtbl Map Set
