lib/syntax/concept.mli: Format Map Role Set Symbol
