type t = Top | Name of Symbol.t | Exists of Role.t

let compare c1 c2 =
  match (c1, c2) with
  | Top, Top -> 0
  | Top, _ -> -1
  | _, Top -> 1
  | Name a, Name b -> Symbol.compare a b
  | Name _, _ -> -1
  | _, Name _ -> 1
  | Exists r, Exists s -> Role.compare r s

let equal c1 c2 = compare c1 c2 = 0

let to_string = function
  | Top -> "top"
  | Name a -> Symbol.name a
  | Exists r -> "exists " ^ Role.to_string r

let pp ppf c = Format.pp_print_string ppf (to_string c)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
