(** Basic concepts of OWL 2 QL: the τ(x) of the paper's grammar
    [τ(x) ::= ⊤ | A(x) | ∃y ρ(x,y)]. *)

type t =
  | Top  (** ⊤ *)
  | Name of Symbol.t  (** a unary predicate A *)
  | Exists of Role.t  (** ∃y ρ(x,y) *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
