(** Roles: binary predicate names and their inverses.

    Following the paper's Section 2, [RT] contains every binary predicate [P]
    of an ontology together with its inverse [P-], and [inv] is an involution
    ([P-- = P]). *)

type t = { base : Symbol.t; inverse : bool }

val make : Symbol.t -> t
(** [make p] is the role [P] (not inverted). *)

val of_string : string -> t
(** [of_string "P"] is [P]; [of_string "P-"] is the inverse of [P]. *)

val inv : t -> t
(** [inv r] is the inverse role [r-]; [inv (inv r) = r]. *)

val is_inverse : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** [P] prints as ["P"], its inverse as ["P-"]. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
