type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let names : (int, string) Hashtbl.t = Hashtbl.create 1024
let next = ref 0

let intern s =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
    let i = !next in
    incr next;
    Hashtbl.add table s i;
    Hashtbl.add names i s;
    i

let name i = Hashtbl.find names i

let fresh prefix =
  let rec try_at n =
    let candidate = Printf.sprintf "%s#%d" prefix n in
    if Hashtbl.mem table candidate then try_at (n + 1) else intern candidate
  in
  try_at !next

let unsafe_of_int i = i
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp ppf i = Format.pp_print_string ppf (name i)
let count () = !next

module Set = Set.Make (Int)
module Map = Map.Make (Int)
module Tbl = Hashtbl.Make (Int)
