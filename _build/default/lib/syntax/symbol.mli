(** Globally interned names.

    Every predicate name, role name and individual constant in the library is
    interned to a small integer, so that relations and saturations can be
    computed over [int] keys.  The table only grows; symbols are never
    reclaimed. *)

type t = private int

val intern : string -> t
(** [intern s] returns the unique symbol for [s], creating it if needed. *)

val name : t -> string
(** [name t] is the string that was interned. *)

val fresh : string -> t
(** [fresh prefix] interns a name of the form [prefix#n] that has not been
    interned before.  Used for auxiliary predicates in rewritings. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val count : unit -> int
(** Number of symbols interned so far (for diagnostics). *)

val unsafe_of_int : int -> t
(** Re-tag an integer obtained from [(s :> int)].  Only for engine internals
    that round-trip symbols through integer-keyed stores. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
