lib/ontology/tbox.mli: Concept Format Obda_syntax Role Symbol
