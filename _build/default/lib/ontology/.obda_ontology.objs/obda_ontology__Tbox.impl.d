lib/ontology/tbox.ml: Concept Format Hashtbl List Obda_syntax Option Role Symbol
