open Obda_syntax

type axiom =
  | Concept_incl of Concept.t * Concept.t
  | Concept_disj of Concept.t * Concept.t
  | Role_incl of Role.t * Role.t
  | Role_disj of Role.t * Role.t
  | Reflexive of Role.t
  | Irreflexive of Role.t

let pp_axiom ppf = function
  | Concept_incl (c, c') ->
    Format.fprintf ppf "%a(x) -> %a(x)" Concept.pp c Concept.pp c'
  | Concept_disj (c, c') ->
    Format.fprintf ppf "%a(x), %a(x) -> false" Concept.pp c Concept.pp c'
  | Role_incl (r, r') ->
    Format.fprintf ppf "%a(x,y) -> %a(x,y)" Role.pp r Role.pp r'
  | Role_disj (r, r') ->
    Format.fprintf ppf "%a(x,y), %a(x,y) -> false" Role.pp r Role.pp r'
  | Reflexive r -> Format.fprintf ppf "refl %a" Role.pp r
  | Irreflexive r -> Format.fprintf ppf "irrefl %a" Role.pp r

type depth = Finite of int | Infinite

let pp_depth ppf = function
  | Finite d -> Format.fprintf ppf "%d" d
  | Infinite -> Format.fprintf ppf "inf"

type t = {
  input_axioms : axiom list;
  normal_size : int;
  role_set : Role.Set.t;  (* R_T, closed under inverse *)
  concepts : Symbol.Set.t;  (* all unary predicates, incl. A_ρ *)
  exists_names : Symbol.t Role.Map.t;
  exists_of_name : Role.t Symbol.Map.t;
  sup_roles : Role.Set.t Role.Map.t;  (* reflexive-transitive *)
  sub_roles : Role.Set.t Role.Map.t;
  reflexive_roles : Role.Set.t;
  sup_concepts : Concept.Set.t Concept.Map.t;  (* reflexive-transitive *)
  sub_concepts : Concept.Set.t Concept.Map.t;
  disj_concepts : (Concept.t * Concept.t) list;
  disj_roles : (Role.t * Role.t) list;
  irrefl : Role.t list;
  depth_memo : depth;
  declared_zero : bool;
}

(* ------------------------------------------------------------------ *)
(* Construction *)

let roles_of_axiom acc = function
  | Concept_incl (c, c') | Concept_disj (c, c') ->
    let add acc = function
      | Concept.Exists r -> Role.Set.add r acc
      | Concept.Top | Concept.Name _ -> acc
    in
    add (add acc c) c'
  | Role_incl (r, r') | Role_disj (r, r') ->
    Role.Set.add r (Role.Set.add r' acc)
  | Reflexive r | Irreflexive r -> Role.Set.add r acc

let concept_names_of_axiom acc = function
  | Concept_incl (c, c') | Concept_disj (c, c') ->
    let add acc = function
      | Concept.Name a -> Symbol.Set.add a acc
      | Concept.Top | Concept.Exists _ -> acc
    in
    add (add acc c) c'
  | Role_incl _ | Role_disj _ | Reflexive _ | Irreflexive _ -> acc

let exists_symbol r = Symbol.intern ("\xe2\x88\x83" ^ Role.to_string r)

(* Reflexive-transitive closure of a relation given by [succs], over [nodes].
   Returns the map node -> set of nodes reachable (including itself). *)
let reach_closure ~compare_elt:_ ~empty ~add ~mem ~fold_set:_ nodes succs =
  let closure_of n =
    let rec go seen frontier =
      match frontier with
      | [] -> seen
      | x :: rest ->
        if mem x seen then go seen rest
        else
          let seen = add x seen in
          go seen (List.rev_append (succs x) rest)
    in
    go empty [ n ]
  in
  List.map (fun n -> (n, closure_of n)) nodes

let build axioms_in =
  (* R_T closed under inverse *)
  let base_roles = List.fold_left roles_of_axiom Role.Set.empty axioms_in in
  let role_set =
    Role.Set.fold
      (fun r acc -> Role.Set.add r (Role.Set.add (Role.inv r) acc))
      base_roles Role.Set.empty
  in
  let roles = Role.Set.elements role_set in
  let exists_names =
    List.fold_left
      (fun m r -> Role.Map.add r (exists_symbol r) m)
      Role.Map.empty roles
  in
  let exists_of_name =
    Role.Map.fold
      (fun r a m -> Symbol.Map.add a r m)
      exists_names Symbol.Map.empty
  in
  (* role inclusion closure, with inverses *)
  let role_edges = Role.Tbl.create 16 in
  let add_role_edge r r' =
    let l = try Role.Tbl.find role_edges r with Not_found -> [] in
    Role.Tbl.replace role_edges r (r' :: l)
  in
  List.iter
    (function
      | Role_incl (r, r') ->
        add_role_edge r r';
        add_role_edge (Role.inv r) (Role.inv r')
      | Concept_incl _ | Concept_disj _ | Role_disj _ | Reflexive _
      | Irreflexive _ -> ())
    axioms_in;
  let role_succs r = try Role.Tbl.find role_edges r with Not_found -> [] in
  let sup_roles =
    reach_closure ~compare_elt:Role.compare ~empty:Role.Set.empty
      ~add:Role.Set.add ~mem:Role.Set.mem ~fold_set:Role.Set.fold roles
      role_succs
    |> List.fold_left (fun m (r, s) -> Role.Map.add r s m) Role.Map.empty
  in
  let sub_roles =
    Role.Map.fold
      (fun r sups m ->
        Role.Set.fold
          (fun r' m ->
            let cur =
              Option.value ~default:Role.Set.empty (Role.Map.find_opt r' m)
            in
            Role.Map.add r' (Role.Set.add r cur) m)
          sups m)
      sup_roles Role.Map.empty
  in
  let sup_roles_of r =
    match Role.Map.find_opt r sup_roles with
    | Some s -> s
    | None -> Role.Set.singleton r
  in
  (* reflexive roles: declared ones, their inverses, upward-closed *)
  let reflexive_roles =
    List.fold_left
      (fun acc -> function
        | Reflexive r ->
          Role.Set.union acc
            (Role.Set.union (sup_roles_of r) (sup_roles_of (Role.inv r)))
        | Concept_incl _ | Concept_disj _ | Role_incl _ | Role_disj _
        | Irreflexive _ -> acc)
      Role.Set.empty axioms_in
  in
  (* concept subsumption graph *)
  let concepts_in =
    List.fold_left concept_names_of_axiom Symbol.Set.empty axioms_in
  in
  let concepts =
    Role.Map.fold (fun _ a acc -> Symbol.Set.add a acc) exists_names concepts_in
  in
  let nodes =
    Concept.Top
    :: (Symbol.Set.elements concepts |> List.map (fun a -> Concept.Name a))
    @ List.map (fun r -> Concept.Exists r) roles
  in
  let concept_edges : (Concept.t, Concept.t list) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_cedge c c' =
    let l = try Hashtbl.find concept_edges c with Not_found -> [] in
    Hashtbl.replace concept_edges c (c' :: l)
  in
  List.iter
    (function
      | Concept_incl (c, c') -> add_cedge c c'
      | Concept_disj _ | Role_incl _ | Role_disj _ | Reflexive _
      | Irreflexive _ -> ())
    axioms_in;
  (* normalisation axioms A_ρ ↔ ∃ρ *)
  Role.Map.iter
    (fun r a ->
      add_cedge (Concept.Name a) (Concept.Exists r);
      add_cedge (Concept.Exists r) (Concept.Name a))
    exists_names;
  (* ∃ρ ⊑ ∃ρ' for ρ ⊑ ρ' *)
  List.iter
    (fun r ->
      Role.Set.iter
        (fun r' ->
          if not (Role.equal r r') then
            add_cedge (Concept.Exists r) (Concept.Exists r'))
        (sup_roles_of r))
    roles;
  (* reflexivity: ⊤ ⊑ ∃ρ and ⊤ ⊑ ∃ρ⁻ for reflexive ρ *)
  Role.Set.iter
    (fun r ->
      add_cedge Concept.Top (Concept.Exists r);
      add_cedge Concept.Top (Concept.Exists (Role.inv r)))
    reflexive_roles;
  let concept_succs c =
    let direct = try Hashtbl.find concept_edges c with Not_found -> [] in
    (* every concept is below ⊤ *)
    if Concept.equal c Concept.Top then direct else Concept.Top :: direct
  in
  let sup_concepts =
    reach_closure ~compare_elt:Concept.compare ~empty:Concept.Set.empty
      ~add:Concept.Set.add ~mem:Concept.Set.mem ~fold_set:Concept.Set.fold
      nodes concept_succs
    |> List.fold_left (fun m (c, s) -> Concept.Map.add c s m) Concept.Map.empty
  in
  let sub_concepts =
    Concept.Map.fold
      (fun c sups m ->
        Concept.Set.fold
          (fun c' m ->
            let cur =
              Option.value ~default:Concept.Set.empty (Concept.Map.find_opt c' m)
            in
            Concept.Map.add c' (Concept.Set.add c cur) m)
          sups m)
      sup_concepts Concept.Map.empty
  in
  let disj_concepts =
    List.filter_map
      (function Concept_disj (c, c') -> Some (c, c') | _ -> None)
      axioms_in
  in
  let disj_roles =
    List.filter_map
      (function Role_disj (r, r') -> Some (r, r') | _ -> None)
      axioms_in
  in
  let irrefl =
    List.filter_map (function Irreflexive r -> Some r | _ -> None) axioms_in
  in
  let declared_zero =
    List.for_all
      (function
        | Concept_incl (_, Concept.Exists _) | Reflexive _ -> false
        | Concept_incl _ | Concept_disj _ | Role_incl _ | Role_disj _
        | Irreflexive _ -> true)
      axioms_in
  in
  {
    input_axioms = axioms_in;
    normal_size = List.length axioms_in + (2 * List.length roles);
    role_set;
    concepts;
    exists_names;
    exists_of_name;
    sup_roles;
    sub_roles;
    reflexive_roles;
    sup_concepts;
    sub_concepts;
    disj_concepts;
    disj_roles;
    irrefl;
    depth_memo = Finite (-1) (* patched below *);
    declared_zero;
  }

(* ------------------------------------------------------------------ *)
(* Entailment *)

let axioms t = t.input_axioms
let size t = t.normal_size
let roles t = Role.Set.elements t.role_set
let concept_names t = Symbol.Set.elements t.concepts
let exists_name t r = Role.Map.find r t.exists_names
let exists_name_opt t r = Role.Map.find_opt r t.exists_names
let role_of_exists_name t a = Symbol.Map.find_opt a t.exists_of_name
let mem_role t r = Role.Set.mem r t.role_set

let superconcept_set t c =
  match Concept.Map.find_opt c t.sup_concepts with
  | Some s -> s
  | None -> Concept.Set.add c (Concept.Set.singleton Concept.Top)

let subconcept_set t c =
  match Concept.Map.find_opt c t.sub_concepts with
  | Some s -> s
  | None -> Concept.Set.singleton c

let subsumes t ~sub ~sup =
  Concept.equal sup Concept.Top
  || Concept.equal sub sup
  || Concept.Set.mem sup (superconcept_set t sub)

let superrole_set t r =
  match Role.Map.find_opt r t.sup_roles with
  | Some s -> s
  | None -> Role.Set.singleton r

let subrole_set t r =
  match Role.Map.find_opt r t.sub_roles with
  | Some s -> s
  | None -> Role.Set.singleton r

let sub_role t ~sub ~sup =
  Role.equal sub sup || Role.Set.mem sup (superrole_set t sub)

let reflexive t r = Role.Set.mem r t.reflexive_roles
let subconcepts_of t c = Concept.Set.elements (subconcept_set t c)
let superconcepts_of t c = Concept.Set.elements (superconcept_set t c)
let subroles_of t r = Role.Set.elements (subrole_set t r)
let superroles_of t r = Role.Set.elements (superrole_set t r)
let disjoint_concept_axioms t = t.disj_concepts
let disjoint_role_axioms t = t.disj_roles
let irreflexive_axioms t = t.irrefl

let has_bottom t =
  t.disj_concepts <> [] || t.disj_roles <> [] || t.irrefl <> []

(* ------------------------------------------------------------------ *)
(* W_T and depth *)

let can_start t r = mem_role t r && not (reflexive t r)

let can_follow t r r' =
  can_start t r'
  && subsumes t ~sub:(Concept.Exists (Role.inv r)) ~sup:(Concept.Exists r')
  && not (sub_role t ~sub:r ~sup:(Role.inv r'))

let compute_depth t =
  let starts = List.filter (can_start t) (roles t) in
  if starts = [] then Finite 0
  else
    (* longest path in the can_follow graph; Infinite iff it has a cycle
       (every non-reflexive role is a start, so any cycle is reachable). *)
    let memo = Role.Tbl.create 16 in
    let on_stack = Role.Tbl.create 16 in
    let exception Cycle in
    let rec longest r =
      match Role.Tbl.find_opt memo r with
      | Some d -> d
      | None ->
        if Role.Tbl.mem on_stack r then raise Cycle;
        Role.Tbl.add on_stack r ();
        let best =
          List.fold_left
            (fun acc r' ->
              if can_follow t r r' then max acc (longest r') else acc)
            0 starts
        in
        Role.Tbl.remove on_stack r;
        Role.Tbl.replace memo r (1 + best);
        1 + best
    in
    try Finite (List.fold_left (fun acc r -> max acc (longest r)) 0 starts)
    with Cycle -> Infinite

let make axioms_in =
  let t = build axioms_in in
  { t with depth_memo = compute_depth t }

let depth t = t.depth_memo
let declared_depth_zero t = t.declared_zero

let words_up_to t bound =
  let starts = List.filter (can_start t) (roles t) in
  let guard = 200_000 in
  let rec extend acc level len =
    if len >= bound || level = [] then acc
    else begin
      let next =
        List.concat_map
          (fun w ->
            match w with
            | [] -> assert false
            | last :: _ ->
              List.filter_map
                (fun r' ->
                  if can_follow t last r' then Some (r' :: w) else None)
                starts)
          level
      in
      if List.length acc + List.length next > guard then
        invalid_arg
          "Tbox.words_up_to: too many witness words (infinite-depth ontology?)";
      extend (List.rev_append next acc) next (len + 1)
    end
  in
  let level0 = List.map (fun r -> [ r ]) starts in
  let words_reversed = extend level0 level0 1 in
  List.rev_map List.rev words_reversed

(* ------------------------------------------------------------------ *)
(* Canonical-model labels *)

let null_satisfies t r a =
  subsumes t ~sub:(Concept.Exists (Role.inv r)) ~sup:(Concept.Name a)

let edge_satisfies t r s = sub_role t ~sub:r ~sup:s
