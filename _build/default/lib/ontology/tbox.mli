(** OWL 2 QL ontologies (TBoxes), their normalisation and saturation.

    A TBox is built from the axiom forms of the paper's Section 2.  [make]
    brings the ontology into normal form by adding, for every role ρ in its
    signature, a fresh concept name [A_ρ] with [A_ρ(x) ↔ ∃y ρ(x,y)], and
    saturates the concept- and role-inclusion graphs so that the entailment
    queries below run in constant-ish time. *)

open Obda_syntax

type axiom =
  | Concept_incl of Concept.t * Concept.t  (** ∀x (τ(x) → τ'(x)) *)
  | Concept_disj of Concept.t * Concept.t  (** ∀x (τ(x) ∧ τ'(x) → ⊥) *)
  | Role_incl of Role.t * Role.t  (** ∀xy (ρ(x,y) → ρ'(x,y)) *)
  | Role_disj of Role.t * Role.t  (** ∀xy (ρ(x,y) ∧ ρ'(x,y) → ⊥) *)
  | Reflexive of Role.t  (** ∀x ρ(x,x) *)
  | Irreflexive of Role.t  (** ∀x (ρ(x,x) → ⊥) *)

val pp_axiom : Format.formatter -> axiom -> unit

type t

val make : axiom list -> t
(** Normalise and saturate.  The input axioms need not mention the [A_ρ]
    names; they are created here. *)

val axioms : t -> axiom list
(** The axioms as given to [make] (without normalisation axioms). *)

val size : t -> int
(** Number of axioms after normalisation, a proxy for |T|. *)

val roles : t -> Role.t list
(** R_T: the roles occurring in the ontology, closed under inverse. *)

val concept_names : t -> Symbol.t list
(** All unary predicates, including the normalisation names A_ρ. *)

val exists_name : t -> Role.t -> Symbol.t
(** [exists_name t ρ] is the normalisation name A_ρ.  Raises [Not_found] if ρ
    is not in R_T. *)

val exists_name_opt : t -> Role.t -> Symbol.t option

val role_of_exists_name : t -> Symbol.t -> Role.t option
(** Inverse of [exists_name]. *)

val mem_role : t -> Role.t -> bool

(** {1 Entailment} *)

val subsumes : t -> sub:Concept.t -> sup:Concept.t -> bool
(** [subsumes t ~sub ~sup] iff T ⊨ ∀x (sub(x) → sup(x)). *)

val sub_role : t -> sub:Role.t -> sup:Role.t -> bool
(** [sub_role t ~sub ~sup] iff T ⊨ ∀xy (sub(x,y) → sup(x,y)). *)

val reflexive : t -> Role.t -> bool
(** [reflexive t ρ] iff T ⊨ ∀x ρ(x,x). *)

val subconcepts_of : t -> Concept.t -> Concept.t list
(** All basic concepts B with T ⊨ B ⊑ given (including itself). *)

val superconcepts_of : t -> Concept.t -> Concept.t list
val subroles_of : t -> Role.t -> Role.t list
val superroles_of : t -> Role.t -> Role.t list

val disjoint_concept_axioms : t -> (Concept.t * Concept.t) list
val disjoint_role_axioms : t -> (Role.t * Role.t) list
val irreflexive_axioms : t -> Role.t list

val has_bottom : t -> bool
(** Whether the ontology contains any ⊥-axiom (disjointness/irreflexivity). *)

(** {1 The witness words W_T and ontology depth} *)

val can_start : t -> Role.t -> bool
(** ρ may be a letter of a word in W_T: T ⊭ ρ(x,x). *)

val can_follow : t -> Role.t -> Role.t -> bool
(** [can_follow t ρ ρ'] iff ρρ' may appear consecutively in a word of W_T:
    T ⊨ ∃x ρ(x,y) → ∃z ρ'(y,z), T ⊭ ρ(x,y) → ρ'(y,x), and T ⊭ ρ'(x,x). *)

type depth = Finite of int | Infinite

val pp_depth : Format.formatter -> depth -> unit
val depth : t -> depth
(** Depth via W_T: [Finite 0] if W_T is empty, [Finite d] if the longest word
    has length d, [Infinite] if W_T is infinite. *)

val declared_depth_zero : t -> bool
(** True when no input axiom has ∃ on the right-hand side and there is no
    reflexivity axiom — the paper's "depth 0" modulo normalisation names. *)

val words_up_to : t -> int -> Role.t list list
(** All words of W_T of length ≤ the bound (the empty word is not in W_T and
    is not returned).  Raises [Invalid_argument] if the ontology has infinite
    depth and the bound exceeds 10 × the number of roles (runaway guard). *)

(** {1 Canonical-model labels}

    Unary and binary predicates holding around labelled nulls, as in the
    definition of C_{T,A} (Section 2). *)

val null_satisfies : t -> Role.t -> Symbol.t -> bool
(** [null_satisfies t ρ a]: the null w·ρ satisfies A, i.e.
    T ⊨ ∃y ρ(y,x) → A(x). *)

val edge_satisfies : t -> Role.t -> Role.t -> bool
(** [edge_satisfies t ρ σ]: the edge from w to w·ρ satisfies σ, i.e.
    T ⊨ ρ(x,y) → σ(x,y).  Same as [sub_role]. *)
