(** Tree decompositions of CQ Gaifman graphs (Section 3.2).

    A decomposition is a tree whose nodes carry bags of variables such that
    every variable and every Gaifman edge is covered by a bag, and the nodes
    containing any fixed variable induce a subtree. *)

type t = { bags : Cq.var list array; tree : Ugraph.t }

val width : t -> int
(** max bag size − 1. *)

val num_nodes : t -> int

val of_cq : Cq.t -> t
(** The natural width-1 decomposition for tree-shaped CQs (one node per
    Gaifman edge, as in Example 8), the min-fill heuristic otherwise.  The CQ
    must be connected. *)

val min_fill : Cq.t -> t
(** Min-fill elimination-ordering decomposition; exact on chordal graphs and
    a good upper bound in general. *)

val is_valid : Cq.t -> t -> bool
(** Checks the three conditions of the definition plus treeness. *)

val treewidth_upper_bound : Cq.t -> int
(** Width of [of_cq]. *)

val pp : Format.formatter -> t -> unit
