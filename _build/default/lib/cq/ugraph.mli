(** Small undirected graphs on vertices [0 .. n-1], used for Gaifman graphs
    and tree decompositions.  Self-loops and duplicate edges are ignored. *)

type t

val make : int -> (int * int) list -> t
val n : t -> int
val neighbours : t -> int -> int list
val degree : t -> int -> int
val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v]. *)

val has_edge : t -> int -> int -> bool
val is_connected : t -> bool
(** Vacuously true for the empty graph. *)

val is_tree : t -> bool
(** Connected with exactly [n - 1] edges ([n = 0] and [n = 1] are trees). *)

val components : t -> int list list
(** Connected components, each sorted. *)

val components_within : t -> int list -> int list list
(** Connected components of the subgraph induced by the given vertices. *)

val path : t -> int -> int -> int list option
(** Some simple path from the first vertex to the second (inclusive). *)

val bfs_layers : t -> int -> int list list
(** Vertices reachable from the root, grouped by distance: layer 0 is the
    root, layer [i] the vertices at distance [i]. *)

val centroid : t -> int list -> int
(** [centroid g vs] is a vertex of the induced subtree on [vs] (which must be
    connected and acyclic) whose removal leaves components of size ≤ ⌈|vs|/2⌉.
    Raises [Invalid_argument] on an empty vertex list. *)

val connected_subsets : t -> int list -> limit:int -> int list list
(** All non-empty subsets of the given vertices that induce a connected
    subgraph, each sorted.  Raises [Invalid_argument] when more than [limit]
    subsets would be produced. *)
