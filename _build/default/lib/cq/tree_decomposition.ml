module IntSet = Set.Make (Int)

type t = { bags : Cq.var list array; tree : Ugraph.t }

let width d =
  Array.fold_left (fun acc bag -> max acc (List.length bag)) 0 d.bags - 1

let num_nodes d = Array.length d.bags

(* Natural decomposition of a tree-shaped CQ: one node per Gaifman edge,
   adjacent iff the edges share a vertex along the tree. *)
let of_tree_cq q =
  let g = Cq.gaifman q in
  let edges = Ugraph.edges g in
  match edges with
  | [] ->
    (* single-variable query *)
    { bags = [| Cq.vars q |]; tree = Ugraph.make 1 [] }
  | _ ->
    let bags =
      Array.of_list
        (List.map
           (fun (u, v) -> [ Cq.var_of_index q u; Cq.var_of_index q v ])
           edges)
    in
    (* root the Gaifman tree at vertex 0; the decomposition parent of edge
       (parent v, v) is the edge (parent (parent v), parent v). *)
    let parent = Hashtbl.create 16 in
    let rec dfs u p =
      List.iter
        (fun w ->
          if w <> p then begin
            Hashtbl.replace parent w u;
            dfs w u
          end)
        (Ugraph.neighbours g u)
    in
    dfs 0 (-1);
    let edge_index = Hashtbl.create 16 in
    List.iteri (fun i (u, v) -> Hashtbl.replace edge_index (u, v) i) edges;
    let index_of u v = Hashtbl.find edge_index (min u v, max u v) in
    let root_chain = ref None in
    let dec_edges =
      List.filter_map
        (fun (u, v) ->
          (* (u,v) with child c and parent p: link to (p, parent p);
             edges incident to the root (no grandparent) are chained *)
          let child = if Hashtbl.find_opt parent v = Some u then v else u in
          let par = if child = v then u else v in
          match Hashtbl.find_opt parent par with
          | Some grand -> Some (index_of par child, index_of grand par)
          | None -> (
            let i = index_of par child in
            match !root_chain with
            | Some j ->
              root_chain := Some i;
              Some (i, j)
            | None ->
              root_chain := Some i;
              None))
        edges
    in
    { bags; tree = Ugraph.make (Array.length bags) dec_edges }

let min_fill q =
  let g = Cq.gaifman q in
  let n = Ugraph.n g in
  let adj = Array.init n (fun v -> IntSet.of_list (Ugraph.neighbours g v)) in
  let alive = Array.make n true in
  let elim_order = Array.make n (-1) in
  let elim_index = Array.make n (-1) in
  let bags = Array.make n [] in
  let fill_count v =
    let nbrs = IntSet.elements (IntSet.filter (fun u -> alive.(u)) adj.(v)) in
    let rec pairs acc = function
      | [] -> acc
      | x :: rest ->
        pairs
          (acc
          + List.length (List.filter (fun y -> not (IntSet.mem y adj.(x))) rest)
          )
          rest
    in
    pairs 0 nbrs
  in
  for step = 0 to n - 1 do
    (* pick the alive vertex with fewest fill-in edges *)
    let best = ref (-1) and best_fill = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let f = fill_count v in
        if f < !best_fill then begin
          best := v;
          best_fill := f
        end
      end
    done;
    let v = !best in
    let nbrs = IntSet.filter (fun u -> alive.(u)) adj.(v) in
    bags.(step) <- v :: IntSet.elements nbrs;
    elim_order.(step) <- v;
    elim_index.(v) <- step;
    (* make the neighbourhood a clique *)
    IntSet.iter
      (fun x ->
        IntSet.iter
          (fun y -> if x <> y then adj.(x) <- IntSet.add y adj.(x))
          nbrs)
      nbrs;
    alive.(v) <- false
  done;
  (* connect bag(step) to the bag of its earliest-eliminated neighbour *)
  let dec_edges = ref [] in
  let last_root = ref None in
  for step = 0 to n - 1 do
    match bags.(step) with
    | _ :: (_ :: _ as nbrs) ->
      let target =
        List.fold_left (fun acc u -> min acc elim_index.(u)) max_int nbrs
      in
      dec_edges := (step, target) :: !dec_edges
    | _ ->
      (* isolated at elimination time: root of its component; chain roots *)
      (match !last_root with
      | Some r -> dec_edges := (step, r) :: !dec_edges
      | None -> ());
      last_root := Some step
  done;
  let bags =
    Array.map (fun bag -> List.map (Cq.var_of_index q) bag) bags
  in
  { bags; tree = Ugraph.make n !dec_edges }

let of_cq q = if Cq.is_tree_shaped q then of_tree_cq q else min_fill q

let is_valid q d =
  let bag_sets = Array.map (fun b -> List.sort_uniq String.compare b) d.bags in
  let covers_var v = Array.exists (fun b -> List.mem v b) bag_sets in
  let covers_edge u v =
    Array.exists (fun b -> List.mem u b && List.mem v b) bag_sets
  in
  let vars_ok = List.for_all covers_var (Cq.vars q) in
  let atoms_ok =
    List.for_all
      (fun a ->
        match a with
        | Cq.Unary (_, z) -> covers_var z
        | Cq.Binary (_, y, z) -> covers_edge y z)
      (Cq.atoms q)
  in
  let connected_ok =
    List.for_all
      (fun v ->
        let nodes =
          Array.to_list bag_sets
          |> List.mapi (fun i b -> (i, b))
          |> List.filter_map (fun (i, b) -> if List.mem v b then Some i else None)
        in
        match Ugraph.components_within d.tree nodes with
        | [] | [ _ ] -> true
        | _ -> false)
      (Cq.vars q)
  in
  vars_ok && atoms_ok && connected_ok && Ugraph.is_tree d.tree

let treewidth_upper_bound q = width (of_cq q)

let pp ppf d =
  Array.iteri
    (fun i bag ->
      Format.fprintf ppf "bag %d: {%s}; " i (String.concat "," bag))
    d.bags;
  Format.fprintf ppf "edges: %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (Ugraph.edges d.tree)
