lib/cq/cq.ml: Format Lazy List Map Obda_syntax Printf Set String Symbol Ugraph
