lib/cq/ugraph.ml: Array Fun Hashtbl Int List Queue Set
