lib/cq/tree_decomposition.mli: Cq Format Ugraph
