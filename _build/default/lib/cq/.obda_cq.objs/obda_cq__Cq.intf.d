lib/cq/cq.mli: Format Map Obda_syntax Set Symbol Ugraph
