lib/cq/tree_decomposition.ml: Array Cq Format Hashtbl Int List Set String Ugraph
