lib/cq/ugraph.mli:
