open Obda_syntax

type var = string
type atom = Unary of Symbol.t * var | Binary of Symbol.t * var * var

let atom_vars = function
  | Unary (_, z) -> [ z ]
  | Binary (_, y, z) -> if y = z then [ y ] else [ y; z ]

let compare_atom a1 a2 =
  match (a1, a2) with
  | Unary (p, z), Unary (p', z') ->
    let c = Symbol.compare p p' in
    if c <> 0 then c else String.compare z z'
  | Unary _, Binary _ -> -1
  | Binary _, Unary _ -> 1
  | Binary (p, y, z), Binary (p', y', z') ->
    let c = Symbol.compare p p' in
    if c <> 0 then c
    else
      let c = String.compare y y' in
      if c <> 0 then c else String.compare z z'

let pp_atom ppf = function
  | Unary (p, z) -> Format.fprintf ppf "%a(%s)" Symbol.pp p z
  | Binary (p, y, z) -> Format.fprintf ppf "%a(%s,%s)" Symbol.pp p y z

module VarSet = Set.Make (String)
module VarMap = Map.Make (String)

type t = {
  answer : var list;
  atom_list : atom list;  (* sorted, deduplicated *)
  var_list : var list;  (* sorted *)
  index_of : int VarMap.t;
  graph : Ugraph.t Lazy.t;
}

let build_graph var_list index_of atom_list =
  let edges =
    List.filter_map
      (function
        | Binary (_, y, z) when y <> z ->
          Some (VarMap.find y index_of, VarMap.find z index_of)
        | Binary _ | Unary _ -> None)
      atom_list
  in
  Ugraph.make (List.length var_list) edges

let make ~answer atom_list =
  if atom_list = [] then invalid_arg "Cq.make: empty atom list";
  let rec has_dup = function
    | [] -> false
    | x :: rest -> List.mem x rest || has_dup rest
  in
  if has_dup answer then invalid_arg "Cq.make: duplicate answer variable";
  let var_set =
    List.fold_left
      (fun acc a -> List.fold_left (fun acc v -> VarSet.add v acc) acc (atom_vars a))
      VarSet.empty atom_list
  in
  List.iter
    (fun x ->
      if not (VarSet.mem x var_set) then
        invalid_arg
          (Printf.sprintf "Cq.make: answer variable %s occurs in no atom" x))
    answer;
  let var_list = VarSet.elements var_set in
  let index_of =
    List.fold_left
      (fun (m, i) v -> (VarMap.add v i m, i + 1))
      (VarMap.empty, 0) var_list
    |> fst
  in
  let atom_list = List.sort_uniq compare_atom atom_list in
  {
    answer;
    atom_list;
    var_list;
    index_of;
    graph = lazy (build_graph var_list index_of atom_list);
  }

let answer_vars q = q.answer
let atoms q = q.atom_list
let vars q = q.var_list
let is_answer_var q v = List.mem v q.answer
let existential_vars q = List.filter (fun v -> not (is_answer_var q v)) q.var_list
let is_boolean q = q.answer = []
let size q = List.length q.atom_list

let unary_atoms_of q z =
  List.filter_map
    (function Unary (p, z') when z' = z -> Some p | Unary _ | Binary _ -> None)
    q.atom_list

let loop_atoms_of q z =
  List.filter_map
    (function
      | Binary (p, y, z') when y = z && z' = z -> Some p
      | Binary _ | Unary _ -> None)
    q.atom_list

let binary_atoms_between q u v =
  List.filter_map
    (function
      | Binary (p, y, z) when (y = u && z = v) || (y = v && z = u) ->
        Some (p, y, z)
      | Binary _ | Unary _ -> None)
    q.atom_list

let var_index q v = VarMap.find v q.index_of
let var_of_index q i = List.nth q.var_list i
let gaifman q = Lazy.force q.graph
let is_connected q = Ugraph.is_connected (gaifman q)
let is_tree_shaped q = Ugraph.is_tree (gaifman q)

let num_leaves q =
  let g = gaifman q in
  let count = ref 0 in
  for v = 0 to Ugraph.n g - 1 do
    if Ugraph.degree g v <= 1 then incr count
  done;
  !count

let is_linear q = is_tree_shaped q && num_leaves q <= 2

let restrict_to q ~answer atom_list =
  let var_set =
    List.fold_left
      (fun acc a -> List.fold_left (fun acc v -> VarSet.add v acc) acc (atom_vars a))
      VarSet.empty atom_list
  in
  let answer = List.filter (fun x -> VarSet.mem x var_set) answer in
  ignore q;
  make ~answer atom_list

let connected_components q =
  let g = gaifman q in
  let comps = Ugraph.components g in
  match comps with
  | [] | [ _ ] -> [ q ]
  | _ ->
    List.map
      (fun comp ->
        let comp_vars =
          List.fold_left
            (fun acc i -> VarSet.add (var_of_index q i) acc)
            VarSet.empty comp
        in
        let comp_atoms =
          List.filter
            (fun a -> List.for_all (fun v -> VarSet.mem v comp_vars) (atom_vars a))
            q.atom_list
        in
        restrict_to q ~answer:q.answer comp_atoms)
      comps

module Var_map = Map.Make (String)
module Var_set = Set.Make (String)

let compare q1 q2 =
  let c = List.compare String.compare q1.answer q2.answer in
  if c <> 0 then c else List.compare compare_atom q1.atom_list q2.atom_list

let equal q1 q2 = compare q1 q2 = 0

let pp ppf q =
  Format.fprintf ppf "q(%s) :- %a"
    (String.concat "," q.answer)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_atom)
    q.atom_list
