module IntSet = Set.Make (Int)

type t = { n : int; adj : int list array }

let make n edge_list =
  let adj = Array.make (max n 0) [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      if u <> v then begin
        let key = (min u v, max u v) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          adj.(u) <- v :: adj.(u);
          adj.(v) <- u :: adj.(v)
        end
      end)
    edge_list;
  { n; adj }

let n g = g.n
let neighbours g v = g.adj.(v)
let degree g v = List.length g.adj.(v)

let edges g =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.rev !acc

let has_edge g u v = List.mem v g.adj.(u)

let components_within g vs =
  let vset = IntSet.of_list vs in
  let seen = Hashtbl.create 16 in
  let component root =
    let rec go acc = function
      | [] -> acc
      | v :: rest ->
        if Hashtbl.mem seen v then go acc rest
        else begin
          Hashtbl.add seen v ();
          let nbrs = List.filter (fun u -> IntSet.mem u vset) g.adj.(v) in
          go (v :: acc) (List.rev_append nbrs rest)
        end
    in
    go [] [ root ]
  in
  List.filter_map
    (fun v ->
      if Hashtbl.mem seen v then None
      else Some (List.sort Int.compare (component v)))
    (IntSet.elements vset)

let components g = components_within g (List.init g.n Fun.id)
let is_connected g = List.length (components g) <= 1

let is_tree g =
  let edge_count = List.length (edges g) in
  is_connected g && edge_count = g.n - 1 || g.n = 0

let path g src dst =
  if src = dst then Some [ src ]
  else begin
    let parent = Hashtbl.create 16 in
    Hashtbl.add parent src src;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun u ->
          if not (Hashtbl.mem parent u) then begin
            Hashtbl.add parent u v;
            if u = dst then found := true else Queue.add u queue
          end)
        g.adj.(v)
    done;
    if not !found then None
    else begin
      let rec backtrack v acc =
        if v = src then src :: acc else backtrack (Hashtbl.find parent v) (v :: acc)
      in
      Some (backtrack dst [])
    end
  end

let bfs_layers g root =
  let seen = Hashtbl.create 16 in
  Hashtbl.add seen root ();
  let rec go layers frontier =
    match frontier with
    | [] -> List.rev layers
    | _ ->
      let next =
        List.concat_map
          (fun v ->
            List.filter_map
              (fun u ->
                if Hashtbl.mem seen u then None
                else begin
                  Hashtbl.add seen u ();
                  Some u
                end)
              g.adj.(v))
          frontier
      in
      go (List.sort Int.compare frontier :: layers) next
  in
  go [] [ root ]

let centroid g vs =
  match vs with
  | [] -> invalid_arg "Ugraph.centroid: empty vertex set"
  | [ v ] -> v
  | _ ->
    let score v =
      let rest = List.filter (fun u -> u <> v) vs in
      List.fold_left
        (fun acc comp -> max acc (List.length comp))
        0
        (components_within g rest)
    in
    let best, _ =
      List.fold_left
        (fun (bv, bs) v ->
          let s = score v in
          if s < bs then (v, s) else (bv, bs))
        (List.hd vs, max_int)
        vs
    in
    best

let connected_subsets g vs ~limit =
  let vset = IntSet.of_list vs in
  let results = ref [] in
  let count = ref 0 in
  let emit s =
    incr count;
    if !count > limit then
      invalid_arg "Ugraph.connected_subsets: limit exceeded";
    results := IntSet.elements s :: !results
  in
  let rec enum set frontier forbidden =
    match IntSet.min_elt_opt frontier with
    | None -> emit set
    | Some v ->
      enum set (IntSet.remove v frontier) (IntSet.add v forbidden);
      let nbrs =
        List.filter
          (fun u ->
            IntSet.mem u vset
            && (not (IntSet.mem u set))
            && not (IntSet.mem u forbidden))
          g.adj.(v)
      in
      let frontier' =
        List.fold_left
          (fun f u -> IntSet.add u f)
          (IntSet.remove v frontier) nbrs
      in
      enum (IntSet.add v set) frontier' forbidden
  in
  let sorted = List.sort Int.compare (IntSet.elements vset) in
  List.iteri
    (fun i root ->
      let forbidden = IntSet.of_list (List.filteri (fun j _ -> j < i) sorted) in
      let frontier =
        IntSet.of_list
          (List.filter
             (fun u -> IntSet.mem u vset && not (IntSet.mem u forbidden))
             g.adj.(root))
      in
      enum (IntSet.singleton root) frontier forbidden)
    sorted;
  !results
