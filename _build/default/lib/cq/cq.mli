(** Conjunctive queries over unary and binary predicates.

    As in the paper (Section 2), CQs contain no constants, and we regard a CQ
    as the set of its atoms.  The Gaifman graph has the variables as vertices
    and an edge {u,v} for every binary atom P(u,v) with u ≠ v. *)

open Obda_syntax

type var = string

type atom =
  | Unary of Symbol.t * var  (** A(z) *)
  | Binary of Symbol.t * var * var  (** P(y,z) *)

val atom_vars : atom -> var list
val compare_atom : atom -> atom -> int
val pp_atom : Format.formatter -> atom -> unit

type t

val make : answer:var list -> atom list -> t
(** Raises [Invalid_argument] if the atom list is empty, an answer variable
    occurs in no atom, or the answer list has duplicates. *)

val answer_vars : t -> var list
val atoms : t -> atom list
val vars : t -> var list
(** All variables, sorted. *)

val existential_vars : t -> var list
val is_answer_var : t -> var -> bool
val is_boolean : t -> bool
val size : t -> int
(** Number of atoms. *)

val unary_atoms_of : t -> var -> Symbol.t list
(** The A with A(z) ∈ q for the given z. *)

val loop_atoms_of : t -> var -> Symbol.t list
(** The P with P(z,z) ∈ q for the given z. *)

val binary_atoms_between : t -> var -> var -> (Symbol.t * var * var) list
(** All binary atoms over exactly the two given (distinct) variables, with
    their original orientation. *)

(** {1 Topology} *)

val var_index : t -> var -> int
val var_of_index : t -> int -> var
val gaifman : t -> Ugraph.t
(** Vertices are variable indices. *)

val is_connected : t -> bool
val is_tree_shaped : t -> bool
val num_leaves : t -> int
(** Number of vertices of degree ≤ 1 of the Gaifman graph; meaningful for
    tree-shaped CQs. *)

val is_linear : t -> bool
(** Tree-shaped with at most two leaves. *)

val restrict_to : t -> answer:var list -> atom list -> t
(** A subquery of this CQ with the given atoms and answer variables; answer
    variables not occurring in the atoms are dropped. *)

val connected_components : t -> t list
(** The connected components, each with the induced answer variables.  A
    Boolean component keeps its (empty) answer tuple.  Isolated answer
    variables cannot arise since every variable occurs in an atom. *)

module Var_map : Map.S with type key = var
module Var_set : Set.S with type elt = var

val compare : t -> t -> int
(** Structural comparison of (answer tuple, sorted atom set) — used for
    memoising subqueries. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
