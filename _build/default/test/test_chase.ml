open Obda_syntax
open Obda_ontology
open Obda_chase
open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_canonical_elements () =
  let t = example11_tbox () in
  let a = abox_of_facts [ `B ("P", "c1", "c2") ] in
  let canon = Canonical.make t a ~depth:3 in
  (* c1 satisfies ∃P, ∃S, ∃R⁻ — but P(c1,c2) already witnesses those, and
     nulls are generated regardless of existing witnesses (the canonical
     model of Section 2 includes a·ρ whenever T,A ⊨ ∃y ρ(a,y)) *)
  check "more than 2 elements" true (Canonical.num_elements canon > 2);
  check_int "2 individuals" 2 (List.length (Canonical.individuals canon))

let test_canonical_satisfaction () =
  let t = example11_tbox () in
  let a = abox_of_facts [ `U ("dummy", "c1") ] in
  let ap_inv = Tbox.exists_name t (role "P-") in
  Obda_data.Abox.add_unary a ap_inv (sym "c1");
  let canon = Canonical.make t a ~depth:2 in
  let root = Canonical.Ind (sym "c1") in
  (* c1 has the null child c1·P⁻, reached downwards by P⁻, S⁻ and upwards by
     P, S; and R(c1, c1·P⁻) holds because P⁻ ⊑ R *)
  let succs = Canonical.role_successors canon (role "R") root in
  (* c1 has ∃P⁻, ∃S⁻ and ∃R among its concepts; its R-successor nulls are
     c1·P⁻ (since P⁻ ⊑ R) and c1·R *)
  let nulls =
    List.filter
      (function Canonical.Null _ -> true | Canonical.Ind _ -> false)
      succs
  in
  check "two null R-successors" true (List.length nulls = 2);
  let p_child = Canonical.Null (sym "c1", [ role "P-" ]) in
  check "c1·P⁻ among them" true
    (List.exists (fun e -> Canonical.compare_element e p_child = 0) nulls);
  check "S(c1·P⁻, c1)" true
    (Canonical.binary_holds canon (sym "S") p_child root);
  check "P(c1·P⁻, c1)" true
    (Canonical.binary_holds canon (sym "P") p_child root);
  check "not S(c1, c1·P⁻)" false
    (Canonical.binary_holds canon (sym "S") root p_child);
  check "c1·P⁻ satisfies A_P" true
    (Canonical.unary_holds canon (Tbox.exists_name t (role "P")) p_child)

let test_certain_answers_direct () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S"; "R" ] in
  (* plain data containing the full pattern *)
  let a =
    abox_of_facts
      [ `B ("R", "a", "b"); `B ("S", "b", "c"); `B ("R", "c", "d") ]
  in
  Alcotest.(check (list (list string)))
    "direct match"
    [ [ "a"; "d" ] ]
    (certain_answers (Obda_rewriting.Omq.make t q) a)

let test_certain_answers_anonymous () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S"; "R" ] in
  (* A_{P⁻}(a) generates the null a·P⁻ with R(a, a·P⁻), S(a·P⁻, a); together
     with R(a,b) this matches the query with x0=a, x3=b *)
  let a = abox_of_facts [ `B ("R", "a", "b") ] in
  Obda_data.Abox.add_unary a (Tbox.exists_name t (role "P-")) (sym "a");
  Alcotest.(check (list (list string)))
    "match through the anonymous part"
    [ [ "a"; "b" ] ]
    (certain_answers (Obda_rewriting.Omq.make t q) a)

let test_certain_answers_ap_end () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S"; "R" ] in
  (* R(a,b) with A_P(b): null b·P gives S(b, b·P)?  No: P(b, b·P) implies
     S(b, b·P) and R(b·P, b); query needs R(a,x1), S(x1,x2), R(x2,x3):
     x1 = b, S(b, b·P) ✓ (x2 = null), R(null, b) ✓ x3 = b. *)
  let a = abox_of_facts [ `B ("R", "a", "b") ] in
  Obda_data.Abox.add_unary a (Tbox.exists_name t (role "P")) (sym "b");
  Alcotest.(check (list (list string)))
    "A_P at the join point"
    [ [ "a"; "b" ] ]
    (certain_answers (Obda_rewriting.Omq.make t q) a)

let test_no_answer () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S"; "R" ] in
  let a = abox_of_facts [ `B ("R", "a", "b"); `B ("R", "b", "c") ] in
  check_int "no answers" 0
    (List.length (certain_answers (Obda_rewriting.Omq.make t q) a))

let test_boolean () =
  let t = example11_tbox () in
  let q = word_cq ~answer:`Boolean [ "S"; "R" ] in
  let a = abox_of_facts [ `B ("P", "a", "b") ] in
  (* P(a,b) implies S(a,b) and R(b,a): S·R path a→b→a exists *)
  check "Boolean yes" true (Certain.boolean t a q);
  let a2 = abox_of_facts [ `B ("S", "a", "b") ] in
  check "Boolean no" false (Certain.boolean t a2 q)

let test_entailed_from_concept () =
  let t = example11_tbox () in
  let q = word_cq ~answer:`Boolean [ "S"; "R" ] in
  (* from A_P(a): null a·P with S(a, aP), R(aP, a): q maps *)
  check "entailed from A_P" true
    (Certain.entailed_from_concept t
       (Concept.Name (Tbox.exists_name t (role "P")))
       q);
  check "not entailed from A_R" false
    (Certain.entailed_from_concept t
       (Concept.Name (Tbox.exists_name t (role "R")))
       q)

let test_infinite_depth_chase () =
  (* A ⊑ ∃P, ∃P⁻ ⊑ ∃P: infinite chain; certain answers still computable to
     bounded depth *)
  let t =
    Tbox.make
      [
        Tbox.Concept_incl (Concept.Name (sym "A"), Concept.Exists (role "P"));
        Tbox.Concept_incl (Concept.Exists (role "P-"), Concept.Exists (role "P"));
      ]
  in
  let q = word_cq ~answer:`First [ "P"; "P"; "P" ] in
  let a = abox_of_facts [ `U ("A", "a") ] in
  Alcotest.(check (list (list string)))
    "chain of nulls"
    [ [ "a" ] ]
    (certain_answers (Obda_rewriting.Omq.make t q) a)

let suites =
  [
    ( "chase",
      [
        Alcotest.test_case "canonical elements" `Quick test_canonical_elements;
        Alcotest.test_case "canonical satisfaction" `Quick
          test_canonical_satisfaction;
        Alcotest.test_case "certain answers (direct)" `Quick
          test_certain_answers_direct;
        Alcotest.test_case "certain answers (anonymous)" `Quick
          test_certain_answers_anonymous;
        Alcotest.test_case "certain answers (A_P end)" `Quick
          test_certain_answers_ap_end;
        Alcotest.test_case "no answer" `Quick test_no_answer;
        Alcotest.test_case "boolean" `Quick test_boolean;
        Alcotest.test_case "entailed from concept" `Quick
          test_entailed_from_concept;
        Alcotest.test_case "infinite chain" `Quick test_infinite_depth_chase;
      ] );
  ]
