open Obda_reductions

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* DPLL *)

let test_dpll_basics () =
  check "empty cnf sat" true (Dpll.satisfiable { Dpll.nvars = 2; clauses = [] });
  check "unit sat" true (Dpll.satisfiable { Dpll.nvars = 1; clauses = [ [ 1 ] ] });
  check "contradiction" false
    (Dpll.satisfiable { Dpll.nvars = 1; clauses = [ [ 1 ]; [ -1 ] ] });
  check "2-sat chain" true
    (Dpll.satisfiable
       { Dpll.nvars = 3; clauses = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ] });
  check "pigeonhole-ish unsat" false
    (Dpll.satisfiable
       {
         Dpll.nvars = 2;
         clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ];
       })

let brute_force_sat (c : Dpll.cnf) =
  let n = c.Dpll.nvars in
  let rec try_assign i assignment =
    if i = n then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let v = assignment.(abs l - 1) in
              if l > 0 then v else not v)
            clause)
        c.Dpll.clauses
    else
      List.exists
        (fun b ->
          assignment.(i) <- b;
          try_assign (i + 1) assignment)
        [ true; false ]
  in
  try_assign 0 (Array.make (max n 1) false)

let test_dpll_vs_brute =
  QCheck.Test.make ~count:200 ~name:"DPLL agrees with brute force"
    QCheck.(triple (int_bound 10_000) (int_range 1 5) (int_bound 12))
    (fun (seed, nvars, nclauses) ->
      let cnf = Dpll.random_3cnf ~seed ~nvars ~nclauses in
      Dpll.satisfiable cnf = brute_force_sat cnf)

(* ------------------------------------------------------------------ *)
(* Theorem 15: hitting set *)

let test_hitting_set_brute () =
  let h = { Hitting_set.n = 4; edges = [ [ 1; 3 ]; [ 2; 3 ]; [ 1; 2 ] ] } in
  check "hitting set of size 2 exists" true (Hitting_set.has_hitting_set h ~k:2);
  check "no hitting set of size 1" false (Hitting_set.has_hitting_set h ~k:1);
  let h2 = { Hitting_set.n = 3; edges = [ [ 1 ]; [ 2 ]; [ 3 ] ] } in
  check "disjoint singletons need k=3" false
    (Hitting_set.has_hitting_set h2 ~k:2)

let test_hitting_set_omq_example () =
  (* the example from the proof of Theorem 15 *)
  let h = { Hitting_set.n = 3; edges = [ [ 1; 3 ]; [ 2; 3 ]; [ 1; 2 ] ] } in
  check "paper example: k=2 yes" true (Hitting_set.answer_via_omq h ~k:2);
  check "brute force agrees" true (Hitting_set.has_hitting_set h ~k:2)

let test_hitting_set_reduction =
  QCheck.Test.make ~count:25 ~name:"Theorem 15: OMQ answer ≡ hitting set"
    QCheck.(quad (int_bound 10_000) (int_range 2 4) (int_range 1 3) (int_range 1 2))
    (fun (seed, n, m, k) ->
      QCheck.assume (n >= 2 && m >= 1 && k >= 1 && k <= n);
      let h = Hitting_set.random ~seed ~n ~m ~max_edge:3 in
      Hitting_set.answer_via_omq h ~k = Hitting_set.has_hitting_set h ~k)

(* ------------------------------------------------------------------ *)
(* Theorem 16: partitioned clique *)

let test_clique_brute () =
  let g =
    { Clique.parts = [ [ 1; 2 ]; [ 3 ]; [ 4; 5 ] ];
      edges = [ (1, 3); (3, 5); (1, 5) ] }
  in
  check "clique {1,3,5}" true (Clique.has_partitioned_clique g);
  let g' = { g with Clique.edges = [ (1, 3); (3, 5) ] } in
  check "no clique without (1,5)" false (Clique.has_partitioned_clique g')

let test_clique_reduction_example () =
  (* the example from the proof: V1={1,2}, V2={3}, V3={4,5},
     E={{1,3},{3,5}}: no triangle (1-5 and 3-4 missing, 3-5 present but
     1-5 absent) *)
  let g =
    { Clique.parts = [ [ 1; 2 ]; [ 3 ] ]; edges = [ (1, 3) ] }
  in
  check "p=2 clique exists" true (Clique.has_partitioned_clique g);
  check "OMQ agrees (yes)" true (Clique.answer_via_omq g);
  let g' = { g with Clique.edges = [] } in
  check "p=2 no edge" false (Clique.has_partitioned_clique g');
  check "OMQ agrees (no)" false (Clique.answer_via_omq g')

let test_clique_reduction =
  QCheck.Test.make ~count:8 ~name:"Theorem 16: OMQ answer ≡ partitioned clique"
    QCheck.(pair (int_bound 10_000) (int_range 0 100))
    (fun (seed, pct) ->
      let g =
        Clique.random ~seed ~part_sizes:[ 2; 2 ]
          ~edge_prob:(float_of_int pct /. 100.)
      in
      Clique.answer_via_omq g = Clique.has_partitioned_clique g)

(* ------------------------------------------------------------------ *)
(* Theorem 17: SAT via the fixed ontology T† *)

let test_sat_paper_example () =
  (* ϕ = (p1 ∨ p2) ∧ ¬p1 — satisfiable *)
  let cnf = { Dpll.nvars = 2; clauses = [ [ 1; 2 ]; [ -1 ] ] } in
  check "satisfiable" true (Dpll.satisfiable cnf);
  check "OMQ says yes" true (Sat.satisfiable_via_omq cnf);
  (* p1 ∧ ¬p1 — unsatisfiable *)
  let cnf2 = { Dpll.nvars = 1; clauses = [ [ 1 ]; [ -1 ] ] } in
  check "OMQ says no" false (Sat.satisfiable_via_omq cnf2)

let test_sat_reduction =
  QCheck.Test.make ~count:15 ~name:"Theorem 17: OMQ answer ≡ satisfiability"
    QCheck.(triple (int_bound 10_000) (int_range 1 3) (int_range 1 4))
    (fun (seed, nvars, nclauses) ->
      let cnf = Dpll.random_3cnf ~seed ~nvars ~nclauses in
      Sat.satisfiable_via_omq cnf = Dpll.satisfiable cnf)

let test_t_dagger_infinite () =
  check "T† has infinite depth" true
    (Obda_ontology.Tbox.depth (Sat.t_dagger ()) = Obda_ontology.Tbox.Infinite)

(* ------------------------------------------------------------------ *)
(* Lemma 26: q̄_ϕ over tree instances *)

let test_qbar_lemma26 =
  QCheck.Test.make ~count:10 ~name:"Lemma 26: q̄ϕ answer ≡ f_ϕ(α)"
    QCheck.(pair (int_bound 10_000) (int_bound 15))
    (fun (seed, alpha_bits) ->
      (* fixed small CNF with exactly 4 non-tautological clauses over 2 vars *)
      let cnf =
        { Dpll.nvars = 2; clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ] }
      in
      ignore seed;
      let alpha = Array.init 4 (fun i -> (alpha_bits lsr i) land 1 = 1) in
      Sat.qbar_answer cnf alpha = Sat.f_phi cnf alpha)

(* ------------------------------------------------------------------ *)
(* Theorem 22: the hardest CFL via T‡ *)

let test_b0 () =
  check "a1b1 ∈ B0" true (Cfl.b0_member "a1b1");
  check "a1a2b2b1 ∈ B0" true (Cfl.b0_member "a1a2b2b1");
  check "a1b1a2b2 ∈ B0" true (Cfl.b0_member "a1b1a2b2");
  check "a1b2 ∉ B0" false (Cfl.b0_member "a1b2");
  check "a1 ∉ B0" false (Cfl.b0_member "a1");
  check "b1a1 ∉ B0" false (Cfl.b0_member "b1a1");
  check "ε ∈ B0" true (Cfl.b0_member "")

let test_hardest_language_paper_examples () =
  (* (12)–(15) from Appendix C.4 *)
  check "(12) [a1a2#b2b1] ∉ L" false (Cfl.in_hardest_language "[a1a2#b2b1]");
  check "(13) [a1a2#b2b1][b2b1] ∈ L" true
    (Cfl.in_hardest_language "[a1a2#b2b1][b2b1]");
  check "(14) [a1a2#b2b1][a1b1] ∉ L" false
    (Cfl.in_hardest_language "[a1a2#b2b1][a1b1]");
  check "(15) [#a1a2#b2b1][a1b1] ∈ L" true
    (Cfl.in_hardest_language "[#a1a2#b2b1][a1b1]")

let test_cfl_omq_small () =
  List.iter
    (fun (w, expected) ->
      check
        (Printf.sprintf "OMQ on %s" w)
        expected (Cfl.answer_via_omq w);
      check
        (Printf.sprintf "ground truth on %s" w)
        expected (Cfl.in_hardest_language w))
    [
      ("[a1b1]", true);
      ("[a1#b1]", false);
      ("[a1][b1]", true);
      ("[a2][b1]", false);
      ("[a1b1#a2]", true);
      (* "[#a1]" is in L: x = ε, y = ε ∈ B0, z = #a1 *)
      ("[#a1]", true);
      ("[#a1][#b1]", true);
      ("a1b1", false);
      ("[a1b1", false);
    ]

let test_t_ddagger_infinite () =
  check "T‡ has infinite depth" true
    (Obda_ontology.Tbox.depth (Cfl.t_ddagger ()) = Obda_ontology.Tbox.Infinite)

let test_cfl_reduction =
  QCheck.Test.make ~count:20 ~name:"Theorem 22: OMQ answer ≡ w ∈ L"
    QCheck.(pair (int_bound 100_000) (int_range 1 3))
    (fun (seed, blocks) ->
      let rng = Random.State.make [| seed |] in
      let letters = [ "a1"; "b1"; "a2"; "b2"; "#" ] in
      let block () =
        let len = 1 + Random.State.int rng 3 in
        "["
        ^ String.concat ""
            (List.init len (fun _ ->
                 List.nth letters (Random.State.int rng 5)))
        ^ "]"
      in
      let w = String.concat "" (List.init blocks (fun _ -> block ())) in
      Cfl.answer_via_omq w = Cfl.in_hardest_language w)

let suites =
  [
    ( "reductions",
      [
        Alcotest.test_case "DPLL basics" `Quick test_dpll_basics;
        QCheck_alcotest.to_alcotest test_dpll_vs_brute;
        Alcotest.test_case "hitting set brute force" `Quick
          test_hitting_set_brute;
        Alcotest.test_case "hitting set OMQ (paper example)" `Quick
          test_hitting_set_omq_example;
        QCheck_alcotest.to_alcotest test_hitting_set_reduction;
        Alcotest.test_case "clique brute force" `Quick test_clique_brute;
        Alcotest.test_case "clique OMQ (examples)" `Quick
          test_clique_reduction_example;
        QCheck_alcotest.to_alcotest test_clique_reduction;
        Alcotest.test_case "SAT OMQ (paper example)" `Quick
          test_sat_paper_example;
        QCheck_alcotest.to_alcotest test_sat_reduction;
        Alcotest.test_case "T† infinite depth" `Quick test_t_dagger_infinite;
        QCheck_alcotest.to_alcotest test_qbar_lemma26;
        Alcotest.test_case "B0 membership" `Quick test_b0;
        Alcotest.test_case "hardest language (paper examples)" `Quick
          test_hardest_language_paper_examples;
        Alcotest.test_case "CFL OMQ (small words)" `Quick test_cfl_omq_small;
        Alcotest.test_case "T‡ infinite depth" `Quick test_t_ddagger_infinite;
        QCheck_alcotest.to_alcotest test_cfl_reduction;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Theorems 21 / 28: PE-queries over the tree instances *)

let test_pe_eval_basics () =
  let a =
    Helpers.abox_of_facts
      [ `U ("A", "c1"); `B ("R", "c1", "c2"); `B ("R", "c2", "c3") ]
  in
  let sym = Obda_syntax.Symbol.intern in
  check "atom holds" true (Pe.eval a (Pe.Atom1 (sym "A", Pe.Cst (sym "c1"))));
  check "exists chain" true
    (Pe.eval a
       (Pe.Exists
          ( [ "x"; "y" ],
            Pe.And
              [
                Pe.Atom2 (sym "R", Pe.Var "x", Pe.Var "y");
                Pe.Atom2 (sym "R", Pe.Var "y", Pe.Var "z");
                Pe.Atom1 (sym "A", Pe.Var "x");
              ] )));
  check "disjunction" true
    (Pe.eval a
       (Pe.Or
          [ Pe.Atom1 (sym "B", Pe.Cst (sym "c1")); Pe.Atom1 (sym "A", Pe.Cst (sym "c1")) ]));
  check "failure" false
    (Pe.eval a (Pe.Atom2 (sym "R", Pe.Cst (sym "c3"), Pe.Cst (sym "c1"))))

let test_qm_theorem28 =
  QCheck.Test.make ~count:12 ~name:"Theorem 28: q_m over A^α_m ≡ SAT(ϕ_k^-α)"
    QCheck.(int_bound 255)
    (fun bits ->
      let flags = Array.init 8 (fun i -> (bits lsr i) land 1 = 1) in
      Pe.qm_agrees ~nvars:3 flags)

let pe_suite =
  ( "pe",
    [
      Alcotest.test_case "PE evaluation basics" `Quick test_pe_eval_basics;
      QCheck_alcotest.to_alcotest test_qm_theorem28;
    ] )

let suites = suites @ [ pe_suite ]
