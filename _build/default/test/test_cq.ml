open Obda_cq
open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let star_cq k =
  (* star with centre c and k rays c -> l1..lk *)
  let atoms =
    List.init k (fun i -> Cq.Binary (sym "E", "c", Printf.sprintf "l%d" i))
  in
  Cq.make ~answer:[] atoms

let cycle_cq k =
  let v i = Printf.sprintf "v%d" (i mod k) in
  let atoms = List.init k (fun i -> Cq.Binary (sym "E", v i, v (i + 1))) in
  Cq.make ~answer:[] atoms

let test_topology () =
  let q = example8_cq () in
  check "connected" true (Cq.is_connected q);
  check "tree shaped" true (Cq.is_tree_shaped q);
  check "linear" true (Cq.is_linear q);
  check_int "2 leaves" 2 (Cq.num_leaves q);
  check_int "8 vars" 8 (List.length (Cq.vars q));
  let s = star_cq 4 in
  check "star is a tree" true (Cq.is_tree_shaped s);
  check_int "star has 4 leaves" 4 (Cq.num_leaves s);
  check "star not linear" false (Cq.is_linear s);
  let c = cycle_cq 5 in
  check "cycle not tree shaped" false (Cq.is_tree_shaped c);
  check "cycle connected" true (Cq.is_connected c)

let test_components () =
  let q =
    Cq.make ~answer:[ "x" ]
      [
        Cq.Binary (sym "E", "x", "y");
        Cq.Binary (sym "E", "u", "v");
        Cq.Unary (sym "A", "u");
      ]
  in
  check "disconnected" false (Cq.is_connected q);
  let comps = Cq.connected_components q in
  check_int "two components" 2 (List.length comps);
  let with_x =
    List.find (fun c -> List.mem "x" (Cq.vars c)) comps
  in
  check "x stays an answer variable" true (Cq.is_answer_var with_x "x");
  let boolean = List.find (fun c -> List.mem "u" (Cq.vars c)) comps in
  check "other component Boolean" true (Cq.is_boolean boolean)

let test_make_validation () =
  check "empty atoms rejected" true
    (try
       ignore (Cq.make ~answer:[] []);
       false
     with Invalid_argument _ -> true);
  check "dangling answer var rejected" true
    (try
       ignore (Cq.make ~answer:[ "z" ] [ Cq.Unary (sym "A", "x") ]);
       false
     with Invalid_argument _ -> true)

let test_tree_decomposition_of_tree () =
  let q = example8_cq () in
  let d = Tree_decomposition.of_cq q in
  check "valid" true (Tree_decomposition.is_valid q d);
  check_int "width 1" 1 (Tree_decomposition.width d);
  check_int "7 bags (one per edge)" 7 (Tree_decomposition.num_nodes d)

let test_tree_decomposition_cycle () =
  let q = cycle_cq 6 in
  let d = Tree_decomposition.of_cq q in
  check "valid on cycle" true (Tree_decomposition.is_valid q d);
  check_int "cycle treewidth 2" 2 (Tree_decomposition.width d)

let test_tree_decomposition_clique () =
  (* K4 has treewidth 3 *)
  let vars = [ "a"; "b"; "c"; "d" ] in
  let atoms =
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u < v then Some (Cq.Binary (sym "E", u, v)) else None) vars)
      vars
  in
  let q = Cq.make ~answer:[] atoms in
  let d = Tree_decomposition.of_cq q in
  check "valid on K4" true (Tree_decomposition.is_valid q d);
  check_int "K4 treewidth 3" 3 (Tree_decomposition.width d)

let test_centroid () =
  let q = word_cq [ "R"; "R"; "R"; "R"; "R"; "R" ] in
  let g = Cq.gaifman q in
  let all = List.init 7 Fun.id in
  let c = Ugraph.centroid g all in
  (* the centroid of a path of 7 vertices is the middle *)
  check_int "centroid of path" 3 c

let test_connected_subsets () =
  let q = word_cq [ "R"; "R"; "R" ] in
  let g = Cq.gaifman q in
  let all = List.init 4 Fun.id in
  let subsets = Ugraph.connected_subsets g all ~limit:1000 in
  (* a path of 4 vertices has 4 + 3 + 2 + 1 = 10 connected subsets *)
  check_int "connected subsets of P4" 10 (List.length subsets)

let test_qcheck_tree_decomposition_valid =
  QCheck.Test.make ~count:100 ~name:"min-fill decomposition always valid"
    QCheck.(pair (int_bound 8) (int_bound 30))
    (fun (n, extra) ->
      let n = n + 2 in
      let rng = Random.State.make [| n; extra |] in
      (* random connected graph: a random tree + [extra mod n] extra edges *)
      let v i = Printf.sprintf "v%d" i in
      let tree_atoms =
        List.init (n - 1) (fun i ->
            let parent = Random.State.int rng (i + 1) in
            Cq.Binary (sym "E", v parent, v (i + 1)))
      in
      let extra_atoms =
        List.init (extra mod n) (fun _ ->
            Cq.Binary
              (sym "E", v (Random.State.int rng n), v (Random.State.int rng n)))
      in
      let atoms =
        List.filter
          (function Cq.Binary (_, a, b) -> a <> b | _ -> true)
          (tree_atoms @ extra_atoms)
      in
      let q = Cq.make ~answer:[] atoms in
      Tree_decomposition.is_valid q (Tree_decomposition.of_cq q))

let suites =
  [
    ( "cq",
      [
        Alcotest.test_case "topology" `Quick test_topology;
        Alcotest.test_case "components" `Quick test_components;
        Alcotest.test_case "validation" `Quick test_make_validation;
        Alcotest.test_case "tree decomposition (tree)" `Quick
          test_tree_decomposition_of_tree;
        Alcotest.test_case "tree decomposition (cycle)" `Quick
          test_tree_decomposition_cycle;
        Alcotest.test_case "tree decomposition (K4)" `Quick
          test_tree_decomposition_clique;
        Alcotest.test_case "centroid" `Quick test_centroid;
        Alcotest.test_case "connected subsets" `Quick test_connected_subsets;
        QCheck_alcotest.to_alcotest test_qcheck_tree_decomposition_valid;
      ] );
  ]
