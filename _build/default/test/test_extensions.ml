(* Tests for the extension modules: PE-rewritings (Fig. 1(b)), ⊥-aware NDL
   rewritings (the Section 2 remark), and the cost-based adaptive strategy
   (the Section 6 future-work discussion). *)

open Obda_syntax
open Obda_ontology
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval
module Pe_rewriter = Obda_rewriting.Pe_rewriter
module Consistency = Obda_rewriting.Consistency
module Adaptive = Obda_rewriting.Adaptive
open Helpers

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* PE-rewriting *)

let pe_agreement =
  QCheck.Test.make ~count:30 ~name:"PE-rewriting agrees with chase"
    QCheck.(pair (int_bound 1000) (int_range 1 5))
    (fun (seed, n) ->
      let t = example11_tbox () in
      let letters =
        List.init n (fun i -> if (seed + i) mod 3 = 0 then "S" else "R")
      in
      let q = word_cq letters in
      let omq = Omq.make t q in
      let formula = Pe_rewriter.rewrite t q in
      let abox =
        random_abox ~seed ~consts:6
          ~unary:
            [ Symbol.name (Tbox.exists_name t (role "P"));
              Symbol.name (Tbox.exists_name t (role "P-")) ]
          ~binary:[ "R"; "S"; "P" ] ~unary_atoms:4 ~binary_atoms:12
      in
      let expected = certain_answers omq abox in
      let got = show_tuples (Pe_rewriter.certain_answers t q formula abox) in
      expected = got)

let pe_growth () =
  (* the PE-rewriting grows super-linearly on sequence 1 while the NDL ones
     stay linear — the Fig. 1(b) succinctness gap in miniature *)
  let t = example11_tbox () in
  let size_at n =
    let letters = List.init n (fun i -> String.make 1 "RRSRSRSRRSRRSSR".[i]) in
    Pe_rewriter.size (Pe_rewriter.rewrite t (word_cq letters))
  in
  let s6 = size_at 6 and s12 = size_at 12 in
  check "superlinear growth" true (s12 > 3 * s6);
  let ndl_at n =
    let letters = List.init n (fun i -> String.make 1 "RRSRSRSRRSRRSSR".[i]) in
    Ndl.num_clauses (Omq.rewrite Omq.Lin (Omq.make t (word_cq letters)))
  in
  let n6 = ndl_at 6 and n12 = ndl_at 12 in
  check "NDL stays linear" true (n12 <= (2 * n6) + 8)

let pe_matrix_depth () =
  let t = example11_tbox () in
  let f = Pe_rewriter.rewrite t (example8_cq ()) in
  check "matrix depth small" true (Pe_rewriter.matrix_depth f <= 4)

(* ------------------------------------------------------------------ *)
(* ⊥-aware rewriting *)

let bottom_tbox () =
  Tbox.make
    [
      Tbox.Role_incl (role "P", role "S");
      Tbox.Concept_disj (Concept.Name (sym "A"), Concept.Name (sym "B"));
      Tbox.Concept_disj
        (Concept.Name (sym "A"), Concept.Exists (role "S"));
      Tbox.Irreflexive (role "S");
    ]

let consistency_query_detects () =
  let t = bottom_tbox () in
  let q = Consistency.query t in
  check "consistent data: no" false
    (Eval.boolean q (abox_of_facts [ `U ("A", "c1"); `U ("B", "c2") ]));
  check "A,B clash detected" true
    (Eval.boolean q (abox_of_facts [ `U ("A", "c1"); `U ("B", "c1") ]));
  check "A ∧ ∃S clash detected" true
    (Eval.boolean q (abox_of_facts [ `U ("A", "c1"); `B ("S", "c1", "c2") ]));
  check "A ∧ ∃S via subrole P" true
    (Eval.boolean q (abox_of_facts [ `U ("A", "c1"); `B ("P", "c1", "c2") ]));
  check "irreflexive S violated via P(c,c)" true
    (Eval.boolean q (abox_of_facts [ `B ("P", "c1", "c1") ]))

let guarded_rewriting_matches_answer =
  QCheck.Test.make ~count:25
    ~name:"⊥-guarded rewriting = Omq.answer on any data"
    QCheck.(pair (int_bound 1000) (int_range 1 3))
    (fun (seed, n) ->
      let t = bottom_tbox () in
      let letters = List.init n (fun _ -> "S") in
      let q = word_cq ~answer:`First letters in
      let omq = Omq.make t q in
      let abox =
        random_abox ~seed ~consts:5 ~unary:[ "A"; "B" ] ~binary:[ "S"; "P" ]
          ~unary_atoms:3 ~binary_atoms:6
      in
      let guarded = Omq.rewrite ~consistency:true Omq.Tw omq in
      let via_guard = show_tuples (Eval.answers guarded abox) in
      let via_answer = answers_via Omq.Tw omq abox in
      via_guard = via_answer)

(* ------------------------------------------------------------------ *)
(* adaptive strategy *)

let adaptive_agrees =
  QCheck.Test.make ~count:20 ~name:"adaptive choice agrees with chase"
    QCheck.(pair (int_bound 1000) (int_range 1 6))
    (fun (seed, n) ->
      let t = example11_tbox () in
      let letters =
        List.init n (fun i -> if (seed + i) mod 4 = 0 then "S" else "R")
      in
      let q = word_cq letters in
      let omq = Omq.make t q in
      let abox =
        random_abox ~seed ~consts:6
          ~unary:[ Symbol.name (Tbox.exists_name t (role "P-")) ]
          ~binary:[ "R"; "S"; "P" ] ~unary_atoms:4 ~binary_atoms:12
      in
      show_tuples (Adaptive.answer t q abox) = certain_answers omq abox)

let adaptive_candidates () =
  let t = example11_tbox () in
  let q = example8_cq () in
  let abox =
    random_abox ~seed:1 ~consts:10 ~unary:[] ~binary:[ "R" ] ~unary_atoms:0
      ~binary_atoms:30
  in
  let cands = Adaptive.candidates t q (Adaptive.stats_of_abox abox) in
  check "several candidates" true (List.length cands >= 4);
  check "sorted by cost" true
    (let rec sorted = function
       | (a : Adaptive.candidate) :: (b :: _ as rest) ->
         a.Adaptive.cost <= b.Adaptive.cost && sorted rest
       | _ -> true
     in
     sorted cands);
  check "costs finite" true
    (List.for_all
       (fun (c : Adaptive.candidate) -> Float.is_finite c.Adaptive.cost)
       cands)

let cost_model_sanity () =
  let t = example11_tbox () in
  let q = example8_cq () in
  let small =
    random_abox ~seed:2 ~consts:5 ~unary:[] ~binary:[ "R" ] ~unary_atoms:0
      ~binary_atoms:10
  in
  let big =
    random_abox ~seed:2 ~consts:20 ~unary:[] ~binary:[ "R" ] ~unary_atoms:0
      ~binary_atoms:300
  in
  let lin = Omq.rewrite Omq.Lin (Omq.make t q) in
  let c_small = Adaptive.estimate_cost (Adaptive.stats_of_abox small) lin in
  let c_big = Adaptive.estimate_cost (Adaptive.stats_of_abox big) lin in
  check "more data costs more" true (c_big > c_small)

let suites =
  [
    ( "extensions",
      [
        QCheck_alcotest.to_alcotest pe_agreement;
        Alcotest.test_case "PE growth vs NDL growth" `Quick pe_growth;
        Alcotest.test_case "PE matrix depth" `Quick pe_matrix_depth;
        Alcotest.test_case "consistency query" `Quick consistency_query_detects;
        QCheck_alcotest.to_alcotest guarded_rewriting_matches_answer;
        QCheck_alcotest.to_alcotest adaptive_agrees;
        Alcotest.test_case "adaptive candidates" `Quick adaptive_candidates;
        Alcotest.test_case "cost model sanity" `Quick cost_model_sanity;
      ] );
  ]
