(* GAV mappings: materialisation vs unfolding (reduction (1) of the paper),
   on hand-written and randomised sources. *)

open Obda_syntax
open Obda_ontology
open Obda_mapping
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v x = Ndl.Var x
let src name ts = Ndl.Pred (sym name, ts)

let test_source_basics () =
  let d = Source.create () in
  Source.add_row d "t" [ "a"; "b"; "c" ];
  Source.add_row d "t" [ "a"; "b"; "c" ];
  Source.add_row d "t" [ "d"; "e"; "f" ];
  Source.add_row d "u" [ "a" ];
  check_int "arity" 3 (Option.get (Source.arity d (sym "t")));
  check_int "tuples kept (with duplicates)" 3
    (List.length (Source.tuples d (sym "t")));
  check_int "constants" 6 (List.length (Source.constants d));
  check "arity mismatch rejected" true
    (try
       Source.add_row d "t" [ "x" ];
       false
     with Invalid_argument _ -> true)

let test_rule_validation () =
  check "head var must occur in body" true
    (try
       ignore (Mapping.rule "A" [ "x" ] [ src "t" [ v "y" ] ]);
       false
     with Invalid_argument _ -> true);
  check "ternary head rejected" true
    (try
       ignore
         (Mapping.rule "A" [ "x"; "y"; "z" ] [ src "t" [ v "x"; v "y"; v "z" ] ]);
       false
     with Invalid_argument _ -> true)

let test_materialise () =
  let d = Source.create () in
  Source.add_row d "emp" [ "e1"; "research" ];
  Source.add_row d "emp" [ "e2"; "ops" ];
  Source.add_row d "mgr" [ "e1"; "e2" ];
  let m =
    [
      Mapping.rule "Employee" [ "x" ] [ src "emp" [ v "x"; v "d" ] ];
      Mapping.rule "managedBy" [ "x"; "y" ] [ src "mgr" [ v "x"; v "y" ] ];
      (* a join in the body: research employees with a manager *)
      Mapping.rule "Researcher" [ "x" ]
        [ src "emp" [ v "x"; Ndl.Cst (sym "research") ]; src "mgr" [ v "x"; v "y" ] ];
    ]
  in
  let md = Mapping.materialise m d in
  check "Employee(e1)" true (Obda_data.Abox.mem_unary md (sym "Employee") (sym "e1"));
  check "managedBy(e1,e2)" true
    (Obda_data.Abox.mem_binary md (sym "managedBy") (sym "e1") (sym "e2"));
  check "Researcher(e1)" true
    (Obda_data.Abox.mem_unary md (sym "Researcher") (sym "e1"));
  check "not Researcher(e2)" false
    (Obda_data.Abox.mem_unary md (sym "Researcher") (sym "e2"))

(* random end-to-end: materialise-then-answer = unfold-then-evaluate = chase
   over M(D) *)
let pipeline_agreement =
  QCheck.Test.make ~count:30 ~name:"materialise = unfold = chase"
    QCheck.(pair (int_bound 100_000) (int_range 1 4))
    (fun (seed, qlen) ->
      let rng = Random.State.make [| seed; 55 |] in
      let t = example11_tbox () in
      (* random 3-column source; map columns into R/S/P edges and markers *)
      let d = Source.create () in
      let const i = Printf.sprintf "k%d" i in
      for _ = 1 to 12 do
        Source.add_row d "tbl"
          [
            const (Random.State.int rng 5);
            const (Random.State.int rng 5);
            const (Random.State.int rng 3);
          ]
      done;
      let m =
        [
          Mapping.rule "R" [ "x"; "y" ] [ src "tbl" [ v "x"; v "y"; v "z" ] ];
          Mapping.rule "S" [ "y"; "z" ] [ src "tbl" [ v "x"; v "y"; v "z" ] ];
          Mapping.rule
            (Symbol.name (Tbox.exists_name t (role "P-")))
            [ "x" ]
            [ src "tbl" [ v "x"; v "y"; Ndl.Cst (sym (const 0)) ] ];
        ]
      in
      let letters =
        List.init qlen (fun i -> if (seed + i) mod 3 = 0 then "S" else "R")
      in
      let q = word_cq letters in
      let omq = Omq.make t q in
      let rewriting = Omq.rewrite Omq.Tw omq in
      let md = Mapping.materialise m d in
      let via_mat = Omq.answer omq md in
      let via_unfold = Mapping.answers_virtual m rewriting d in
      let via_chase = Omq.answer_certain omq md in
      via_mat = via_unfold && via_mat = via_chase)

let test_unfold_structure () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S" ] in
  let rewriting = Omq.rewrite Omq.Tw (Omq.make t q) in
  let m = [ Mapping.rule "R" [ "x"; "y" ] [ src "tbl" [ v "x"; v "y" ] ] ] in
  let unfolded = Mapping.unfold m rewriting in
  check "still nonrecursive" true (Ndl.is_nonrecursive unfolded);
  check_int "one clause added" (Ndl.num_clauses rewriting + 1)
    (Ndl.num_clauses unfolded);
  check "R is now intensional" true
    (Symbol.Set.mem (sym "R") (Ndl.idb_preds unfolded))

let suites =
  [
    ( "mapping",
      [
        Alcotest.test_case "source basics" `Quick test_source_basics;
        Alcotest.test_case "rule validation" `Quick test_rule_validation;
        Alcotest.test_case "materialisation" `Quick test_materialise;
        QCheck_alcotest.to_alcotest pipeline_agreement;
        Alcotest.test_case "unfolding structure" `Quick test_unfold_structure;
      ] );
  ]
