(* Shared fixtures for the test suites. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data

let sym = Symbol.intern
let role = Role.of_string

(* The ontology of Example 11:
   P(x,y) -> S(x,y),  P(x,y) -> R(y,x)   (plus normalisation axioms). *)
let example11_tbox () =
  Tbox.make
    [
      Tbox.Role_incl (role "P", role "S");
      Tbox.Role_incl (role "P", role "R-");
    ]

(* The linear CQ of Example 8 over the word RSRRSRR:
   q(x0,x7) :- R(x0,x1), S(x1,x2), ..., R(x6,x7). *)
let word_cq ?(answer = `Both) letters =
  let n = List.length letters in
  let v i = Printf.sprintf "x%d" i in
  let atoms =
    List.mapi (fun i p -> Cq.Binary (sym p, v i, v (i + 1))) letters
  in
  let answer =
    match answer with
    | `Both -> [ v 0; v n ]
    | `Boolean -> []
    | `First -> [ v 0 ]
  in
  Cq.make ~answer atoms

let example8_cq () = word_cq [ "R"; "S"; "R"; "R"; "S"; "R"; "R" ]

(* small ABox builders *)
let abox_of_facts facts =
  let a = Abox.create () in
  List.iter
    (function
      | `U (p, c) -> Abox.add_unary a (sym p) (sym c)
      | `B (p, c, d) -> Abox.add_binary a (sym p) (sym c) (sym d))
    facts;
  a

let tuple_list_testable =
  Alcotest.(list (list string))

let show_tuples ts = List.map (List.map Symbol.name) ts

(* deterministic random ABox over the given unary/binary predicate names *)
let random_abox ~seed ~consts ~unary ~binary ~unary_atoms ~binary_atoms =
  let rng = Random.State.make [| seed |] in
  let a = Abox.create () in
  let const i = sym (Printf.sprintf "c%d" i) in
  (* make sure all constants exist *)
  for i = 0 to consts - 1 do
    Abox.add_unary a (sym "AnyC") (const i)
  done;
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  for _ = 1 to unary_atoms do
    if unary <> [] then
      Abox.add_unary a (sym (pick unary)) (const (Random.State.int rng consts))
  done;
  for _ = 1 to binary_atoms do
    if binary <> [] then
      Abox.add_binary a
        (sym (pick binary))
        (const (Random.State.int rng consts))
        (const (Random.State.int rng consts))
  done;
  a

(* answers of an OMQ under a given algorithm, as string tuples *)
let answers_via alg omq abox =
  show_tuples (Obda_rewriting.Omq.answer ~algorithm:alg omq abox)

let certain_answers omq abox =
  show_tuples (Obda_rewriting.Omq.answer_certain omq abox)
