open Obda_syntax
open Obda_ontology
open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let t11 = lazy (example11_tbox ())

let test_roles () =
  let t = Lazy.force t11 in
  check_int "R_T has 6 roles (3 predicates and their inverses)" 6
    (List.length (Tbox.roles t))

let test_role_hierarchy () =
  let t = Lazy.force t11 in
  check "P ⊑ S" true (Tbox.sub_role t ~sub:(role "P") ~sup:(role "S"));
  check "P ⊑ R⁻" true (Tbox.sub_role t ~sub:(role "P") ~sup:(role "R-"));
  check "P⁻ ⊑ S⁻ (inverse closure)" true
    (Tbox.sub_role t ~sub:(role "P-") ~sup:(role "S-"));
  check "P⁻ ⊑ R" true (Tbox.sub_role t ~sub:(role "P-") ~sup:(role "R"));
  check "S ⊄ P" false (Tbox.sub_role t ~sub:(role "S") ~sup:(role "P"));
  check "R ⊄ S" false (Tbox.sub_role t ~sub:(role "R") ~sup:(role "S"))

let test_concept_hierarchy () =
  let t = Lazy.force t11 in
  check "∃P ⊑ ∃S" true
    (Tbox.subsumes t ~sub:(Concept.Exists (role "P"))
       ~sup:(Concept.Exists (role "S")));
  check "∃P ⊑ ∃R⁻" true
    (Tbox.subsumes t ~sub:(Concept.Exists (role "P"))
       ~sup:(Concept.Exists (role "R-")));
  check "A_P ↔ ∃P (normalisation)" true
    (Tbox.subsumes t
       ~sub:(Concept.Name (Tbox.exists_name t (role "P")))
       ~sup:(Concept.Exists (role "P"))
    && Tbox.subsumes t
         ~sub:(Concept.Exists (role "P"))
         ~sup:(Concept.Name (Tbox.exists_name t (role "P"))));
  check "everything ⊑ ⊤" true
    (Tbox.subsumes t ~sub:(Concept.Exists (role "R")) ~sup:Concept.Top)

let test_depth_example11 () =
  let t = Lazy.force t11 in
  (match Tbox.depth t with
  | Tbox.Finite 1 -> ()
  | d -> Alcotest.failf "expected depth 1, got %a" Tbox.pp_depth d);
  (* every single non-reflexive role is a word; nothing can follow *)
  check_int "6 words of length 1" 6 (List.length (Tbox.words_up_to t 3));
  List.iter
    (fun r ->
      List.iter
        (fun r' -> check "no followers" false (Tbox.can_follow t r r'))
        (Tbox.roles t))
    (Tbox.roles t)

let test_depth_two () =
  (* A ⊑ ∃P, ∃P⁻ ⊑ ∃S, S cannot be extended: depth 2 *)
  let t =
    Tbox.make
      [
        Tbox.Concept_incl (Concept.Name (sym "A"), Concept.Exists (role "P"));
        Tbox.Concept_incl
          (Concept.Exists (role "P-"), Concept.Exists (role "S"));
      ]
  in
  match Tbox.depth t with
  | Tbox.Finite 2 -> ()
  | d -> Alcotest.failf "expected depth 2, got %a" Tbox.pp_depth d

let test_depth_infinite () =
  (* ∃P⁻ ⊑ ∃P generates an infinite chain *)
  let t =
    Tbox.make
      [
        Tbox.Concept_incl (Concept.Exists (role "P-"), Concept.Exists (role "P"));
      ]
  in
  check "infinite depth" true (Tbox.depth t = Tbox.Infinite)

let test_depth_not_infinite_inverse_collapse () =
  (* ∃P⁻ ⊑ ∃P together with P ⊑ P⁻ means the chain folds back: the
     follower condition T ⊭ ρ(x,y) → ρ'(y,x) blocks the cycle *)
  let t =
    Tbox.make
      [
        Tbox.Concept_incl (Concept.Exists (role "P-"), Concept.Exists (role "P"));
        Tbox.Role_incl (role "P", role "P-");
      ]
  in
  check "depth finite when the successor folds back" true
    (match Tbox.depth t with Tbox.Finite _ -> true | Tbox.Infinite -> false)

let test_reflexivity () =
  let t =
    Tbox.make
      [ Tbox.Reflexive (role "R"); Tbox.Role_incl (role "R", role "S") ]
  in
  check "R reflexive" true (Tbox.reflexive t (role "R"));
  check "S reflexive (inherited)" true (Tbox.reflexive t (role "S"));
  check "R⁻ reflexive" true (Tbox.reflexive t (role "R-"));
  check "⊤ ⊑ ∃S" true
    (Tbox.subsumes t ~sub:Concept.Top ~sup:(Concept.Exists (role "S")));
  (* reflexive roles cannot start witness words *)
  check "refl role cannot start a word" false (Tbox.can_start t (role "R"));
  check "depth 0 (all roles reflexive)" true (Tbox.depth t = Tbox.Finite 0)

let test_null_labels () =
  let t = Lazy.force t11 in
  (* the null a·P⁻ satisfies A_{P} ... i.e. ∃y P(x,y)?  The null w·P⁻ has an
     incoming P⁻, so it satisfies ∃P: null_satisfies P⁻ A_P *)
  check "w·P⁻ satisfies A_P" true
    (Tbox.null_satisfies t (role "P-") (Tbox.exists_name t (role "P")));
  check "w·P satisfies A_{P⁻}" true
    (Tbox.null_satisfies t (role "P") (Tbox.exists_name t (role "P-")));
  check "edge P satisfies S" true (Tbox.edge_satisfies t (role "P") (role "S"));
  check "edge P satisfies R⁻" true
    (Tbox.edge_satisfies t (role "P") (role "R-"))

let test_declared_depth_zero () =
  let t =
    Tbox.make
      [ Tbox.Concept_incl (Concept.Name (sym "A"), Concept.Name (sym "B")) ]
  in
  check "declared depth zero" true (Tbox.declared_depth_zero t);
  (* Example 11 has no ∃ on any right-hand side, so it is "depth 0" in the
     declared sense, yet its W_T has words of length 1 via the normalisation
     names — exactly the situation of the paper's footnote 2. *)
  check "example 11 declared depth zero" true
    (Tbox.declared_depth_zero (Lazy.force t11));
  check "example 11 W_T depth 1" true
    (Tbox.depth (Lazy.force t11) = Tbox.Finite 1)

let test_bottom () =
  let t =
    Tbox.make
      [
        Tbox.Concept_disj (Concept.Name (sym "A"), Concept.Name (sym "B"));
        Tbox.Irreflexive (role "P");
      ]
  in
  check "has bottom" true (Tbox.has_bottom t);
  check "no bottom in example 11" false (Tbox.has_bottom (Lazy.force t11))

let suites =
  [
    ( "ontology",
      [
        Alcotest.test_case "roles" `Quick test_roles;
        Alcotest.test_case "role hierarchy" `Quick test_role_hierarchy;
        Alcotest.test_case "concept hierarchy" `Quick test_concept_hierarchy;
        Alcotest.test_case "depth of example 11" `Quick test_depth_example11;
        Alcotest.test_case "depth two" `Quick test_depth_two;
        Alcotest.test_case "infinite depth" `Quick test_depth_infinite;
        Alcotest.test_case "inverse collapse" `Quick
          test_depth_not_infinite_inverse_collapse;
        Alcotest.test_case "reflexivity" `Quick test_reflexivity;
        Alcotest.test_case "null labels" `Quick test_null_labels;
        Alcotest.test_case "declared depth zero" `Quick
          test_declared_depth_zero;
        Alcotest.test_case "bottom" `Quick test_bottom;
      ] );
  ]
