test/test_properties.ml: Abox Alcotest Concept Cq Format Helpers List Obda_cq Obda_data Obda_ndl Obda_ontology Obda_rewriting Obda_syntax Printf QCheck QCheck_alcotest Random Role String Symbol Tbox
