test/test_chase.ml: Alcotest Canonical Certain Concept Helpers List Obda_chase Obda_data Obda_ontology Obda_rewriting Obda_syntax Tbox
