test/test_cq.ml: Alcotest Cq Fun Helpers List Obda_cq Printf QCheck QCheck_alcotest Random Tree_decomposition Ugraph
