test/test_reductions.ml: Alcotest Array Cfl Clique Dpll Helpers Hitting_set List Obda_ontology Obda_reductions Obda_syntax Pe Printf QCheck QCheck_alcotest Random Sat String
