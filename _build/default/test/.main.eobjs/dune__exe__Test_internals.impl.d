test/test_internals.ml: Alcotest Cq Fun Helpers List Obda_cq Obda_ndl Obda_ontology Obda_rewriting Obda_syntax QCheck QCheck_alcotest Random Role Symbol Tbox Ugraph
