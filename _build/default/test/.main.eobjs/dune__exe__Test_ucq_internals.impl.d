test/test_ucq_internals.ml: Alcotest Concept Cq Helpers List Obda_cq Obda_data Obda_ndl Obda_ontology Obda_parse Obda_rewriting Obda_syntax QCheck QCheck_alcotest Random Role Symbol Tbox
