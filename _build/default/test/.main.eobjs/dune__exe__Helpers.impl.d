test/helpers.ml: Abox Alcotest Cq List Obda_cq Obda_data Obda_ontology Obda_rewriting Obda_syntax Printf Random Role Symbol Tbox
