test/test_appendix.ml: Abox Alcotest Helpers Lazy List Obda_data Obda_ndl Obda_ontology Obda_rewriting Obda_syntax Printf Symbol
