test/test_ontology.ml: Alcotest Concept Helpers Lazy List Obda_ontology Obda_syntax Tbox
