test/main.mli:
