test/test_parse.ml: Abox Alcotest Concept Cq Helpers List Obda_cq Obda_data Obda_mapping Obda_ontology Obda_parse Obda_rewriting Obda_syntax Parse Tbox
