test/test_data.ml: Abox Alcotest Concept Generate Helpers List Obda_data Obda_ontology Obda_syntax Tbox
