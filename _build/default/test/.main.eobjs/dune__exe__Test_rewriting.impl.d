test/test_rewriting.ml: Alcotest Concept Cq Gen Helpers List Obda_cq Obda_data Obda_ndl Obda_ontology Obda_rewriting Obda_syntax Printf QCheck QCheck_alcotest String Symbol Tbox
