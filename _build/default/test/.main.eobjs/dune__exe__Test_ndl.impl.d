test/test_ndl.ml: Alcotest Concept Helpers Obda_ndl Obda_ontology Obda_syntax Symbol Tbox
