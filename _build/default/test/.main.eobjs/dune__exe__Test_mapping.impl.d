test/test_mapping.ml: Alcotest Helpers List Mapping Obda_data Obda_mapping Obda_ndl Obda_ontology Obda_rewriting Obda_syntax Option Printf QCheck QCheck_alcotest Random Source Symbol Tbox
