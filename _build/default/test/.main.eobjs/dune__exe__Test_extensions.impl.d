test/test_extensions.ml: Alcotest Concept Float Helpers List Obda_ndl Obda_ontology Obda_rewriting Obda_syntax QCheck QCheck_alcotest String Symbol Tbox
