(* Focused tests of the PerfectRef-style UCQ rewriter and related pieces:
   subsumption, condensation, determinism, limits — plus parser round-trips
   on random ontologies and distribution checks for the data generator. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
module Ucq = Obda_rewriting.Ucq_rewriter
module Ndl = Obda_ndl.Ndl
open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* subsumption *)

let test_subsumes () =
  let q1 = Cq.make ~answer:[ "x" ] [ Cq.Binary (sym "R", "x", "y") ] in
  let q2 =
    Cq.make ~answer:[ "x" ]
      [ Cq.Binary (sym "R", "x", "y"); Cq.Unary (sym "A", "y") ]
  in
  check "more general subsumes more specific" true (Ucq.subsumes q1 q2);
  check "not vice versa" false (Ucq.subsumes q2 q1);
  let q3 = Cq.make ~answer:[ "x" ] [ Cq.Binary (sym "R", "x", "x") ] in
  check "R(x,y) subsumes R(x,x)" true (Ucq.subsumes q1 q3);
  check "R(x,x) does not subsume R(x,y)" false (Ucq.subsumes q3 q1);
  let q4 = Cq.make ~answer:[ "y" ] [ Cq.Binary (sym "R", "y", "z") ] in
  (* answer tuples are positional: q1 and q4 are the same query renamed *)
  check "alpha-equivalent queries subsume each other" true
    (Ucq.subsumes q1 q4 && Ucq.subsumes q4 q1)

let test_subsumes_respects_answers () =
  let q1 = Cq.make ~answer:[ "x"; "y" ] [ Cq.Binary (sym "R", "x", "y") ] in
  let q2 = Cq.make ~answer:[ "y"; "x" ] [ Cq.Binary (sym "R", "x", "y") ] in
  (* the answer tuples are reversed: no positional homomorphism on R *)
  check "reversed answers differ" false (Ucq.subsumes q1 q2)

(* ------------------------------------------------------------------ *)
(* rewriter behaviour *)

let test_deterministic () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S"; "R" ] in
  let c1 = List.length (Ucq.rewrite_cqs t q) in
  let c2 = List.length (Ucq.rewrite_cqs t q) in
  check_int "deterministic CQ count" c1 c2

let test_includes_original () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S" ] in
  let cqs = Ucq.rewrite_cqs t q in
  (* existential variables are canonically renamed, so compare up to
     mutual subsumption *)
  check "original CQ included" true
    (List.exists (fun c -> Ucq.subsumes c q && Ucq.subsumes q c) cqs)

let test_limit () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S"; "R"; "R"; "S"; "R"; "R"; "S" ] in
  check "limit raised" true
    (try
       ignore (Ucq.rewrite_cqs ~max_cqs:50 t q);
       false
     with Ucq.Limit_reached -> true)

let test_condensed_smaller () =
  let t = example11_tbox () in
  let q = word_cq [ "R"; "S"; "R" ] in
  let full = Ndl.num_clauses (Ucq.rewrite t q) in
  let condensed = Ndl.num_clauses (Ucq.rewrite_condensed t q) in
  check "condensation does not grow" true (condensed <= full);
  check "condensation keeps at least one CQ" true (condensed >= 1)

let condensed_agrees =
  QCheck.Test.make ~count:25 ~name:"condensed UCQ = full UCQ on data"
    QCheck.(pair (int_bound 1000) (int_range 1 4))
    (fun (seed, n) ->
      let t = example11_tbox () in
      let letters =
        List.init n (fun i -> if (seed + i) mod 3 = 0 then "S" else "R")
      in
      let q = word_cq letters in
      let abox =
        random_abox ~seed ~consts:5
          ~unary:
            [ Symbol.name (Tbox.exists_name t (role "P"));
              Symbol.name (Tbox.exists_name t (role "P-")) ]
          ~binary:[ "R"; "S"; "P" ] ~unary_atoms:4 ~binary_atoms:10
      in
      Obda_ndl.Eval.answers (Ucq.rewrite t q) abox
      = Obda_ndl.Eval.answers (Ucq.rewrite_condensed t q) abox)

(* ------------------------------------------------------------------ *)
(* parser round-trips on random ontologies *)

let parser_roundtrip =
  QCheck.Test.make ~count:50 ~name:"ontology printer/parser round-trip"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 99 |] in
      let pick l = List.nth l (Random.State.int rng (List.length l)) in
      let random_role () =
        let r = Role.of_string (pick [ "P"; "Q"; "RR" ]) in
        if Random.State.bool rng then Role.inv r else r
      in
      let random_concept () =
        match Random.State.int rng 3 with
        | 0 -> Concept.Name (sym (pick [ "A"; "B"; "C" ]))
        | 1 -> Concept.Exists (random_role ())
        | _ -> Concept.Top
      in
      let axiom () =
        match Random.State.int rng 6 with
        | 0 -> Tbox.Concept_incl (Concept.Name (sym (pick [ "A"; "B" ])), random_concept ())
        | 1 -> Tbox.Concept_incl (Concept.Exists (random_role ()), random_concept ())
        | 2 -> Tbox.Role_incl (random_role (), random_role ())
        | 3 -> Tbox.Reflexive (random_role ())
        | 4 ->
          Tbox.Concept_disj
            (Concept.Name (sym (pick [ "A"; "B" ])), Concept.Name (sym "C"))
        | _ -> Tbox.Irreflexive (random_role ())
      in
      let axioms = List.init (1 + Random.State.int rng 6) (fun _ -> axiom ()) in
      let t = Tbox.make axioms in
      let t' =
        Obda_parse.Parse.ontology_of_string
          (Obda_parse.Parse.ontology_to_string t)
      in
      (* semantic round-trip: same entailments on the shared signature *)
      List.for_all
        (fun r ->
          List.for_all
            (fun r' ->
              Tbox.sub_role t ~sub:r ~sup:r' = Tbox.sub_role t' ~sub:r ~sup:r')
            (Tbox.roles t))
        (Tbox.roles t)
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 Tbox.subsumes t ~sub:(Concept.Name a) ~sup:(Concept.Name b)
                 = Tbox.subsumes t' ~sub:(Concept.Name a) ~sup:(Concept.Name b))
               (Tbox.concept_names t))
           (Tbox.concept_names t)
      && Tbox.depth t = Tbox.depth t')

(* ------------------------------------------------------------------ *)
(* generator statistics *)

let test_generator_distribution () =
  let params =
    { Obda_data.Generate.vertices = 2000; edge_prob = 0.01; concept_prob = 0.2 }
  in
  let a =
    Obda_data.Generate.erdos_renyi ~seed:3 ~edge_pred:(sym "E")
      ~concepts:[ sym "M" ] params
  in
  let edges = List.length (Obda_data.Abox.binary_members a (sym "E")) in
  let marks = List.length (Obda_data.Abox.unary_members a (sym "M")) in
  (* expectations: 2000·1999·0.01 ≈ 39 980 and 2000·0.2 = 400 *)
  check "edges within 10%" true
    (float_of_int (abs (edges - 39_980)) < 4_000.0);
  check "marks within 20%" true (abs (marks - 400) < 80)

let suites =
  [
    ( "ucq-internals",
      [
        Alcotest.test_case "subsumption" `Quick test_subsumes;
        Alcotest.test_case "subsumption respects answer order" `Quick
          test_subsumes_respects_answers;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "includes the original CQ" `Quick
          test_includes_original;
        Alcotest.test_case "limit" `Quick test_limit;
        Alcotest.test_case "condensation shrinks" `Quick test_condensed_smaller;
        QCheck_alcotest.to_alcotest condensed_agrees;
        QCheck_alcotest.to_alcotest parser_roundtrip;
        Alcotest.test_case "generator distribution" `Quick
          test_generator_distribution;
      ] );
  ]
