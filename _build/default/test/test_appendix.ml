(* The "Rewritings Zoo" of Appendix A.6: the paper spells out, for the OMQ of
   Examples 8/11 (the 7-atom RSRRSRR query), a UCQ-rewriting, a
   Log-rewriting, a Lin-rewriting and a Tw-rewriting over complete data
   instances.  We transcribe them literally and check that, over completed
   ABoxes, they return exactly the certain answers — and hence agree with
   our generated rewritings. *)

open Obda_syntax
open Obda_data
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval
module Omq = Obda_rewriting.Omq
open Helpers

let v x = Ndl.Var x
let p name ts = Ndl.Pred (sym name, ts)
let eq a b = Ndl.Eq (v a, v b)

let tbox = lazy (example11_tbox ())
let ap () = Symbol.name (Obda_ontology.Tbox.exists_name (Lazy.force tbox) (role "P"))
let apinv () =
  Symbol.name (Obda_ontology.Tbox.exists_name (Lazy.force tbox) (role "P-"))

(* A.6.1: the 9-CQ UCQ rewriting over complete data instances *)
let ucq_a61 () =
  let g body = { Ndl.head = (sym "Gzoo1", [ v "x0"; v "x7" ]); body } in
  let rsr a b c d = [ p "R" [ v a; v b ]; p "S" [ v b; v c ]; p "R" [ v c; v d ] ] in
  let first = [
    rsr "x0" "x1" "x2" "x3";
    [ p (apinv ()) [ v "x0" ]; p "R" [ v "x0"; v "x3" ] ];
    [ p "R" [ v "x0"; v "x3" ]; p (ap ()) [ v "x3" ] ];
  ] in
  let second = [
    rsr "x3" "x4" "x5" "x6";
    [ p (apinv ()) [ v "x3" ]; p "R" [ v "x3"; v "x6" ] ];
    [ p "R" [ v "x3"; v "x6" ]; p (ap ()) [ v "x6" ] ];
  ] in
  let clauses =
    List.concat_map
      (fun b1 -> List.map (fun b2 -> g (b1 @ b2 @ [ p "R" [ v "x6"; v "x7" ] ])) second)
      first
  in
  Ndl.make ~goal:(sym "Gzoo1") ~goal_args:[ "x0"; "x7" ] clauses

(* A.6.2: the 8-rule Log rewriting *)
let log_a62 () =
  let clauses =
    [
      { Ndl.head = (sym "GeT", [ v "x0"; v "x7" ]);
        body = [ p "GD1e" [ v "x3"; v "x0" ]; p "R" [ v "x3"; v "x4" ];
                 p "GD2e" [ v "x4"; v "x7" ] ] };
      { Ndl.head = (sym "GeT", [ v "x0"; v "x7" ]);
        body = [ p "GD1e" [ v "x3"; v "x0" ]; p (apinv ()) [ v "x4" ];
                 eq "x3" "x4"; p "GD2p" [ v "x4"; v "x7" ] ] };
      { Ndl.head = (sym "GD1e", [ v "x3"; v "x0" ]);
        body = [ eq "x0" "x1"; p (apinv ()) [ v "x1" ]; eq "x1" "x2";
                 p "R" [ v "x2"; v "x3" ] ] };
      { Ndl.head = (sym "GD1e", [ v "x3"; v "x0" ]);
        body = [ p "R" [ v "x0"; v "x1" ]; eq "x1" "x2"; p (ap ()) [ v "x2" ];
                 eq "x2" "x3" ] };
      { Ndl.head = (sym "GD1e", [ v "x3"; v "x0" ]);
        body = [ p "R" [ v "x0"; v "x1" ]; p "S" [ v "x1"; v "x2" ];
                 p "R" [ v "x2"; v "x3" ] ] };
      { Ndl.head = (sym "GD2e", [ v "x4"; v "x7" ]);
        body = [ eq "x4" "x5"; p (ap ()) [ v "x5" ]; eq "x5" "x6";
                 p "R" [ v "x6"; v "x7" ] ] };
      { Ndl.head = (sym "GD2e", [ v "x4"; v "x7" ]);
        body = [ p "S" [ v "x4"; v "x5" ]; p "R" [ v "x5"; v "x6" ];
                 p "R" [ v "x6"; v "x7" ] ] };
      { Ndl.head = (sym "GD2p", [ v "x4"; v "x7" ]);
        body = [ p (apinv ()) [ v "x4" ]; eq "x4" "x5"; p "R" [ v "x5"; v "x6" ];
                 p "R" [ v "x6"; v "x7" ] ] };
    ]
  in
  Ndl.make ~goal:(sym "GeT") ~goal_args:[ "x0"; "x7" ] clauses

(* A.6.3: the 15-rule Lin rewriting (root x0) *)
let lin_a63 () =
  let clauses =
    [
      { Ndl.head = (sym "Gzl", [ v "x0"; v "x7" ]);
        body = [ p "G0e" [ v "x0"; v "x7" ] ] };
      { Ndl.head = (sym "G0e", [ v "x0"; v "x7" ]);
        body = [ p "R" [ v "x0"; v "x1" ]; p "G1e" [ v "x1"; v "x7" ] ] };
      { Ndl.head = (sym "G0e", [ v "x0"; v "x7" ]);
        body = [ eq "x0" "x1"; p (apinv ()) [ v "x1" ]; p "G1p" [ v "x1"; v "x7" ] ] };
      { Ndl.head = (sym "G1e", [ v "x1"; v "x7" ]);
        body = [ p "S" [ v "x1"; v "x2" ]; p "G2e" [ v "x2"; v "x7" ] ] };
      { Ndl.head = (sym "G1e", [ v "x1"; v "x7" ]);
        body = [ eq "x1" "x2"; p (ap ()) [ v "x2" ]; p "G2q" [ v "x2"; v "x7" ] ] };
      { Ndl.head = (sym "G1p", [ v "x1"; v "x7" ]);
        body = [ p (apinv ()) [ v "x1" ]; eq "x1" "x2"; p "G2e" [ v "x2"; v "x7" ] ] };
      { Ndl.head = (sym "G2e", [ v "x2"; v "x7" ]);
        body = [ p "R" [ v "x2"; v "x3" ]; p "G3e" [ v "x3"; v "x7" ] ] };
      { Ndl.head = (sym "G2q", [ v "x2"; v "x7" ]);
        body = [ p (ap ()) [ v "x2" ]; eq "x2" "x3"; p "G3e" [ v "x3"; v "x7" ] ] };
      { Ndl.head = (sym "G3e", [ v "x3"; v "x7" ]);
        body = [ p "R" [ v "x3"; v "x4" ]; p "G4e" [ v "x4"; v "x7" ] ] };
      { Ndl.head = (sym "G3e", [ v "x3"; v "x7" ]);
        body = [ eq "x3" "x4"; p (apinv ()) [ v "x4" ]; p "G4p" [ v "x4"; v "x7" ] ] };
      { Ndl.head = (sym "G4e", [ v "x4"; v "x7" ]);
        body = [ p "S" [ v "x4"; v "x5" ]; p "G5e" [ v "x5"; v "x7" ] ] };
      { Ndl.head = (sym "G4e", [ v "x4"; v "x7" ]);
        body = [ eq "x4" "x5"; p (ap ()) [ v "x5" ]; p "G5q" [ v "x5"; v "x7" ] ] };
      { Ndl.head = (sym "G4p", [ v "x4"; v "x7" ]);
        body = [ p (apinv ()) [ v "x4" ]; eq "x4" "x5"; p "G5e" [ v "x5"; v "x7" ] ] };
      { Ndl.head = (sym "G5e", [ v "x5"; v "x7" ]);
        body = [ p "R" [ v "x5"; v "x6" ]; p "G6e" [ v "x6"; v "x7" ] ] };
      { Ndl.head = (sym "G5q", [ v "x5"; v "x7" ]);
        body = [ p (ap ()) [ v "x5" ]; eq "x5" "x6"; p "G6e" [ v "x6"; v "x7" ] ] };
      { Ndl.head = (sym "G6e", [ v "x6"; v "x7" ]);
        body = [ p "R" [ v "x6"; v "x7" ] ] };
    ]
  in
  Ndl.make ~goal:(sym "Gzl") ~goal_args:[ "x0"; "x7" ] clauses

(* A.6.4: the 10-rule Tw rewriting (with the two typos of the appendix
   fixed: G35's first body is S(x3,x4),R(x4,x5)-shaped in our variable
   naming, and G57 spans x5..x7) *)
let tw_a64 () =
  let clauses =
    [
      { Ndl.head = (sym "G07", [ v "x0"; v "x7" ]);
        body = [ p "G03" [ v "x0"; v "x3" ]; p "G37" [ v "x3"; v "x7" ] ] };
      { Ndl.head = (sym "G03", [ v "x0"; v "x3" ]);
        body = [ p "R" [ v "x0"; v "x1" ]; p "G13" [ v "x1"; v "x3" ] ] };
      { Ndl.head = (sym "G03", [ v "x0"; v "x3" ]);
        body = [ p (apinv ()) [ v "x0" ]; eq "x0" "x2"; p "R" [ v "x2"; v "x3" ] ] };
      { Ndl.head = (sym "G13", [ v "x1"; v "x3" ]);
        body = [ p "S" [ v "x1"; v "x2" ]; p "R" [ v "x2"; v "x3" ] ] };
      { Ndl.head = (sym "G13", [ v "x1"; v "x3" ]);
        body = [ p (ap ()) [ v "x1" ]; eq "x1" "x3" ] };
      { Ndl.head = (sym "G37", [ v "x3"; v "x7" ]);
        body = [ p "G35" [ v "x3"; v "x5" ]; p "G57" [ v "x5"; v "x7" ] ] };
      { Ndl.head = (sym "G37", [ v "x3"; v "x7" ]);
        body = [ p "R" [ v "x3"; v "x4" ]; p (ap ()) [ v "x4" ]; eq "x4" "x6";
                 p "R" [ v "x6"; v "x7" ] ] };
      { Ndl.head = (sym "G35", [ v "x3"; v "x5" ]);
        body = [ p "R" [ v "x3"; v "x4" ]; p "S" [ v "x4"; v "x5" ] ] };
      { Ndl.head = (sym "G35", [ v "x3"; v "x5" ]);
        body = [ p (apinv ()) [ v "x3" ]; eq "x3" "x5" ] };
      { Ndl.head = (sym "G57", [ v "x5"; v "x7" ]);
        body = [ p "R" [ v "x5"; v "x6" ]; p "R" [ v "x6"; v "x7" ] ] };
    ]
  in
  Ndl.make ~goal:(sym "G07") ~goal_args:[ "x0"; "x7" ] clauses

(* ------------------------------------------------------------------ *)

let aboxes () =
  let t = Lazy.force tbox in
  [
    abox_of_facts
      [ `B ("R", "a", "b"); `B ("S", "b", "c"); `B ("R", "c", "d");
        `B ("R", "d", "e"); `B ("S", "e", "f"); `B ("R", "f", "g");
        `B ("R", "g", "h") ];
    abox_of_facts [ `B ("P", "b", "a"); `B ("R", "b", "c"); `B ("P", "d", "c");
                    `B ("R", "c", "e"); `B ("P", "f", "e"); `B ("R", "f", "g") ];
    (let a = abox_of_facts [ `B ("R", "a", "b"); `B ("R", "b", "c");
                             `B ("R", "c", "d") ] in
     Abox.add_unary a (Obda_ontology.Tbox.exists_name t (role "P-")) (sym "a");
     Abox.add_unary a (Obda_ontology.Tbox.exists_name t (role "P")) (sym "b");
     Abox.add_unary a (Obda_ontology.Tbox.exists_name t (role "P-")) (sym "c");
     a);
    random_abox ~seed:5 ~consts:8
      ~unary:
        [ Symbol.name (Obda_ontology.Tbox.exists_name t (role "P"));
          Symbol.name (Obda_ontology.Tbox.exists_name t (role "P-")) ]
      ~binary:[ "R"; "S"; "P" ] ~unary_atoms:6 ~binary_atoms:20;
  ]

let check_zoo name make_query () =
  let t = Lazy.force tbox in
  let q = example8_cq () in
  let omq = Omq.make t q in
  let zoo = make_query () in
  (match Ndl.check zoo with
  | Ok () -> ()
  | Error e -> Alcotest.failf "zoo program ill-formed: %s" e);
  List.iteri
    (fun i abox ->
      let completed = Abox.complete t abox in
      let expected = certain_answers omq abox in
      let got = show_tuples (Eval.answers zoo completed) in
      Alcotest.(check (list (list string)))
        (Printf.sprintf "%s on abox %d" name i)
        expected got)
    (aboxes ())

let clause_counts () =
  Alcotest.(check int) "A.6.1 has 9 CQs" 9 (Ndl.num_clauses (ucq_a61 ()));
  Alcotest.(check int) "A.6.2 has 8 rules" 8 (Ndl.num_clauses (log_a62 ()));
  Alcotest.(check int) "A.6.3 has 16 rules (goal + 15)" 16
    (Ndl.num_clauses (lin_a63 ()));
  Alcotest.(check int) "A.6.4 has 10 rules" 10 (Ndl.num_clauses (tw_a64 ()));
  (* structural claims of the appendix *)
  Alcotest.(check bool) "A.6.3 is linear" true (Ndl.is_linear (lin_a63 ()));
  Alcotest.(check bool) "A.6.1 is a UCQ (one goal, flat)" true
    (Ndl.depth (ucq_a61 ()) = 1)

let suites =
  [
    ( "appendix-a6",
      [
        Alcotest.test_case "clause counts" `Quick clause_counts;
        Alcotest.test_case "A.6.1 UCQ rewriting" `Quick
          (check_zoo "ucq" ucq_a61);
        Alcotest.test_case "A.6.2 Log rewriting" `Quick
          (check_zoo "log" log_a62);
        Alcotest.test_case "A.6.3 Lin rewriting" `Quick
          (check_zoo "lin" lin_a63);
        Alcotest.test_case "A.6.4 Tw rewriting" `Quick (check_zoo "tw" tw_a64);
      ] );
  ]
