bench/main.mli:
