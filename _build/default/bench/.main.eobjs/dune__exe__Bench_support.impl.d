bench/bench_support.ml: Cq Generate List Obda_cq Obda_data Obda_ndl Obda_ontology Obda_rewriting Obda_syntax Printf Role String Symbol Tbox Unix
