(* Quickstart: define an OWL 2 QL ontology, a conjunctive query and a data
   instance, produce an NDL-rewriting, and compute certain answers.

   Run with:  dune exec examples/quickstart.exe *)

module Parse = Obda_parse.Parse
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl

let () =
  (* The ontology of the paper's Example 11: every P-edge is an S-edge, and
     every P-edge is an R-edge read backwards. *)
  let ontology =
    Parse.ontology_of_string {|
      P(x,y) -> S(x,y)
      P(x,y) -> R(y,x)
    |}
  in
  (* A linear conjunctive query (a 3-atom prefix of Example 8). *)
  let query =
    Parse.query_of_string "q(x0,x3) <- R(x0,x1), S(x1,x2), R(x2,x3)"
  in
  (* A data instance.  Note that it has no S-atoms at all: the answers below
     exist only because of the ontology. *)
  let data = Parse.data_of_string "P(b,a)  R(b,c)  P(d,c)" in

  let omq = Omq.make ontology query in

  (* 1. Where does this OMQ sit in the complexity landscape (Fig. 1)? *)
  Format.printf "classification: %a@.@." Omq.pp_classification
    (Omq.classify omq);

  (* 2. The three optimal rewritings of the paper. *)
  List.iter
    (fun alg ->
      let rewriting = Omq.rewrite alg omq in
      Format.printf "%s rewriting: %d clauses, width %d, linear %b@."
        (Omq.algorithm_name alg)
        (Ndl.num_clauses rewriting) (Ndl.width rewriting)
        (Ndl.is_linear rewriting))
    [ Omq.Tw; Omq.Lin; Omq.Log ];
  Format.printf "@.";

  (* 3. Certain answers, via rewriting + NDL evaluation. *)
  let answers = Omq.answer omq data in
  Format.printf "certain answers:@.";
  List.iter
    (fun tuple ->
      Format.printf "  (%s)@."
        (String.concat ", " (List.map Obda_syntax.Symbol.name tuple)))
    answers;

  (* 4. They agree with the canonical-model (chase) semantics. *)
  assert (answers = Omq.answer_certain omq data);
  Format.printf "@.(verified against the canonical model)@."
