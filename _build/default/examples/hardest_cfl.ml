(* Recognising Greibach's hardest context-free language by OMQ answering
   (Section 5, Theorem 22): one fixed ontology T‡, one fixed data atom A(a),
   and a logspace transducer from words w to *linear* Boolean CQs q_w with
   T‡, {A(a)} ⊨ q_w iff w ∈ L.  Since every LOGCFL problem logspace-reduces
   to L, answering linear OMQs over (T‡, {A(a)}) is LOGCFL-hard.

   Run with:  dune exec examples/hardest_cfl.exe *)

open Obda_reductions
module Tbox = Obda_ontology.Tbox

let show w =
  let q = Cfl.query_of_word w in
  let expected = Cfl.in_hardest_language w in
  let t0 = Unix.gettimeofday () in
  let got = Cfl.answer_via_omq w in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "  %-24s  query: %2d atoms   in L: %-5b  OMQ: %-5b (%.3fs) %s\n"
    w
    (Obda_cq.Cq.size q)
    expected got dt
    (if expected = got then "✓" else "MISMATCH!");
  assert (expected = got)

let () =
  let t = Cfl.t_ddagger () in
  Format.printf
    "T‡: %d axioms, depth %a — a single ontology for all of LOGCFL@.@."
    (List.length (Tbox.axioms t))
    Tbox.pp_depth (Tbox.depth t);

  print_endline "the words (12)-(15) from the paper:";
  List.iter show
    [
      "[a1a2#b2b1]";
      "[a1a2#b2b1][b2b1]";
      "[a1a2#b2b1][a1b1]";
      "[#a1a2#b2b1][a1b1]";
    ];

  print_endline "\nbracket words (the base language B0 is the 2-pair Dyck language):";
  List.iter show [ "[a1b1]"; "[a2b2]"; "[a1a2b2b1]"; "[a1b2]"; "[b1a1]" ];

  print_endline "\nchoices within blocks (# separates the alternatives):";
  List.iter show [ "[a1#a2]"; "[a1#a2][b2]"; "[a1#a2][b1#b2]"; "[a1b1#a2b2]" ];

  print_endline "\nmalformed words map to the error query:";
  List.iter show [ "a1b1"; "[a1b1"; "[]" ];

  (* the queries really are linear *)
  let q = Cfl.query_of_word "[a1a2#b2b1][b2b1]" in
  Format.printf "@.q_w for the word (13) is %s with %d atoms@."
    (if Obda_cq.Cq.is_linear q then "a linear CQ" else "NOT linear!?")
    (Obda_cq.Cq.size q)
