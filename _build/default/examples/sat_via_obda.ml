(* Deciding propositional satisfiability by OMQ answering (Section 5,
   Theorem 17): the fixed infinite-depth ontology T† turns any CNF ϕ into a
   star-shaped Boolean CQ q_ϕ such that  T†, {A(a)} ⊨ q_ϕ  iff  ϕ is
   satisfiable.  The single data atom A(a) never changes — all the
   computational content lives in the query.

   Run with:  dune exec examples/sat_via_obda.exe *)

open Obda_reductions

let pp_cnf cnf =
  String.concat " ∧ "
    (List.map
       (fun clause ->
         "("
         ^ String.concat " ∨ "
             (List.map
                (fun l ->
                  if l > 0 then Printf.sprintf "p%d" l
                  else Printf.sprintf "¬p%d" (-l))
                clause)
         ^ ")")
       cnf.Dpll.clauses)

let examine cnf =
  let q = Sat.query_of_cnf cnf in
  let by_dpll = Dpll.satisfiable cnf in
  let by_omq = Sat.satisfiable_via_omq cnf in
  Printf.printf "%-40s  query: %2d atoms  DPLL: %-5b  OMQ: %-5b  %s\n"
    (pp_cnf cnf) (Obda_cq.Cq.size q) by_dpll by_omq
    (if by_dpll = by_omq then "✓" else "MISMATCH!");
  assert (by_dpll = by_omq)

let () =
  let t = Sat.t_dagger () in
  Format.printf "T† has %d axioms and depth %a — one fixed ontology for all \
                 of SAT@.@."
    (List.length (Obda_ontology.Tbox.axioms t))
    Obda_ontology.Tbox.pp_depth
    (Obda_ontology.Tbox.depth t);

  (* the example from the proof of Theorem 17: (p1 ∨ p2) ∧ ¬p1 *)
  examine { Dpll.nvars = 2; clauses = [ [ 1; 2 ]; [ -1 ] ] };

  (* a few more formulas *)
  examine { Dpll.nvars = 1; clauses = [ [ 1 ]; [ -1 ] ] };
  examine { Dpll.nvars = 2; clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ] ] };
  examine
    { Dpll.nvars = 2; clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ] };
  examine { Dpll.nvars = 3; clauses = [ [ 1; 2; 3 ]; [ -1; -2 ]; [ -3 ] ] };

  (* random 3-CNFs *)
  for seed = 1 to 5 do
    examine (Dpll.random_3cnf ~seed ~nvars:3 ~nclauses:5)
  done;

  print_newline ();
  (* Theorem 19/20 flavour: the modified query q̄_ϕ evaluated over the tree
     instances A^α_m computes the monotone function f_ϕ(α) = "ϕ without the
     α-marked clauses is satisfiable" (Lemma 26). *)
  let cnf =
    { Dpll.nvars = 2; clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ] }
  in
  Printf.printf "Lemma 26 on %s:\n" (pp_cnf cnf);
  for bits = 0 to 15 do
    let alpha = Array.init 4 (fun i -> (bits lsr i) land 1 = 1) in
    let fv = Sat.f_phi cnf alpha in
    let omq = Sat.qbar_answer cnf alpha in
    assert (fv = omq);
    if bits land 3 = 0 then
      Printf.printf "  α=%s  f_ϕ(α)=%b = OMQ answer ✓\n"
        (String.concat ""
           (List.map (fun b -> if b then "1" else "0") (Array.to_list alpha)))
        fv
  done;
  print_endline "all 16 α values agree"
