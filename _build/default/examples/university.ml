(* A classical OBDA scenario (Section 1 of the paper): end users query a
   university dataset through a familiar ontology vocabulary, without
   knowing how the data is laid out.  The ontology has finite depth (like
   the NPD FactPages ontology mentioned in Section 6), so all three optimal
   rewritings apply.

   Run with:  dune exec examples/university.exe *)

module Parse = Obda_parse.Parse
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl

let ontology_text =
  {|
# --- class hierarchy -------------------------------------------------
Professor(x) -> Faculty(x)
Lecturer(x) -> Faculty(x)
Faculty(x) -> Staff(x)
PhDStudent(x) -> Student(x)

# --- existential knowledge (this is what makes OBDA non-trivial) -----
# every professor teaches something
Professor(x) -> teaches(x,_)
# everything taught is a course
teaches(_,x) -> Course(x)
# every course is taught by someone: depth-generating the other way
Course(x) -> teaches(_,x)
# every PhD student has a supervisor, who is a professor
PhDStudent(x) -> supervisedBy(x,_)
supervisedBy(_,x) -> Professor(x)
# enrolment implies being a student
enrolledIn(x,_) -> Student(x)
enrolledIn(_,x) -> Course(x)

# --- role hierarchy ---------------------------------------------------
# lecturing a course is a form of teaching
lectures(x,y) -> teaches(x,y)

# --- constraints -------------------------------------------------------
Student(x), Professor(x) -> false
|}

let data_text =
  {|
Professor(turing)
lectures(turing, computability)
PhDStudent(kleene)
supervisedBy(kleene, church)
enrolledIn(kleene, computability)
enrolledIn(post, logic101)
Course(logic101)
Lecturer(rosser)
|}

let show_omq name ontology query_text data =
  let query = Parse.query_of_string query_text in
  let omq = Omq.make ontology query in
  Format.printf "--- %s@.    %s" name query_text;
  Format.printf "    classification: %a@." Omq.pp_classification
    (Omq.classify omq);
  List.iter
    (fun alg ->
      if Omq.applicable alg omq then begin
        let r = Omq.rewrite alg omq in
        Format.printf "    %-14s %3d clauses (width %d%s)@."
          (Omq.algorithm_name alg) (Ndl.num_clauses r) (Ndl.width r)
          (if Ndl.is_linear r then ", linear" else "")
      end)
    [ Omq.Tw; Omq.Lin; Omq.Log ];
  let answers = Omq.answer omq data in
  assert (answers = Omq.answer_certain omq data);
  if Obda_cq.Cq.is_boolean query then
    Format.printf "    answer: %s@.@."
      (if answers <> [] then "yes" else "no")
  else begin
    Format.printf "    answers:@.";
    List.iter
      (fun tuple ->
        Format.printf "      (%s)@."
          (String.concat ", " (List.map Obda_syntax.Symbol.name tuple)))
      answers;
    Format.printf "@."
  end

let () =
  let ontology = Parse.ontology_of_string ontology_text in
  let data = Parse.data_of_string data_text in
  Format.printf "University OBDA demo — ontology depth %a@.@."
    Obda_ontology.Tbox.pp_depth
    (Obda_ontology.Tbox.depth ontology);

  (* Who is staff?  The data never says "Staff" explicitly. *)
  show_omq "staff members" ontology "q(x) <- Staff(x)" data;

  (* Which students are enrolled in a course taught by a professor?
     [turing lectures computability ⊑ teaches; kleene is enrolled there.]
     Note the existential join through `teaches`. *)
  show_omq "students in professor-taught courses" ontology
    "q(x) <- Student(x), enrolledIn(x,y), teaches(z,y), Professor(z)" data;

  (* Is there a student with a supervisor who teaches something?
     kleene's supervisor church is a Professor, so the ontology *infers*
     that church teaches something — no teaching fact for church exists. *)
  show_omq "supervised student with teaching supervisor" ontology
    "q(x) <- supervisedBy(x,y), teaches(y,z)" data;

  (* A Boolean query answered purely in the anonymous part: is any course
     taught by anyone?  logic101 is a course, so the ontology invents a
     teacher for it. *)
  show_omq "is anything taught?" ontology "q() <- teaches(x,y), Course(y)" data;

  (* Consistency matters: adding Student(turing) clashes with
     Professor(turing). *)
  let bad =
    Parse.data_of_string (data_text ^ "\nStudent(turing)")
  in
  Format.printf "consistent data: %b;  after adding Student(turing): %b@."
    (Obda_data.Abox.consistent ontology data)
    (Obda_data.Abox.consistent ontology bad)
