(* The full OBDA pipeline of the paper's introduction: end users query a
   *relational* data source D through an ontology T, connected by a GAV
   mapping M.  A certain answer is any a with T, M(D) ⊨ q(a), and reduction
   (1) lets us compute it by evaluating an NDL-rewriting — either over the
   materialised instance M(D), or directly over D after unfolding the
   rewriting through M ("so there is no need to materialise M(D)").

   Run with:  dune exec examples/obda_pipeline.exe *)

open Obda_mapping
module Parse = Obda_parse.Parse
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl

let () =
  (* --- the data source: a tiny HR database with n-ary tables ----------- *)
  let d = Source.create () in
  (* employees(id, name, dept, manager_id) *)
  Source.add_row d "employees" [ "e1"; "ada"; "research"; "e2" ];
  Source.add_row d "employees" [ "e2"; "grace"; "research"; "e2" ];
  Source.add_row d "employees" [ "e3"; "alan"; "ops"; "e2" ];
  (* contracts(emp_id, project, role) *)
  Source.add_row d "contracts" [ "e1"; "warp"; "lead" ];
  Source.add_row d "contracts" [ "e3"; "warp"; "member" ];
  (* grants(project, sponsor) *)
  Source.add_row d "grants" [ "warp"; "esa" ];

  (* --- the ontology the users see -------------------------------------- *)
  let tbox =
    Parse.ontology_of_string
      {|
        Manager(x)   -> Employee(x)
        worksOn(x,_) -> Employee(x)
        worksOn(_,x) -> Project(x)
        # every project has someone working on it (an existential!)
        Project(x)   -> worksOn(_,x)
        Funded(x)    -> Project(x)
      |}
  in

  (* --- the GAV mapping M ------------------------------------------------ *)
  let v x = Ndl.Var x in
  let src name ts = Ndl.Pred (Obda_syntax.Symbol.intern name, ts) in
  let m =
    [
      Mapping.rule "Employee" [ "x" ]
        [ src "employees" [ v "x"; v "n"; v "d"; v "m" ] ];
      Mapping.rule "Manager" [ "x" ]
        [ src "employees" [ v "e"; v "n"; v "d"; v "x" ] ];
      Mapping.rule "worksOn" [ "x"; "p" ]
        [ src "contracts" [ v "x"; v "p"; v "r" ] ];
      Mapping.rule "Project" [ "p" ] [ src "grants" [ v "p"; v "s" ] ];
      Mapping.rule "Funded" [ "p" ] [ src "grants" [ v "p"; v "s" ] ];
    ]
  in
  (match Mapping.validate m with Ok () -> () | Error e -> failwith e);

  (* --- a user query in the ontology vocabulary ------------------------- *)
  let q =
    Parse.query_of_string "q(x) <- Employee(x), worksOn(x,p), Funded(p)"
  in
  let omq = Omq.make tbox q in
  let rewriting = Omq.rewrite Omq.Tw omq in
  Format.printf "rewriting: %d clauses (Tw)@." (Ndl.num_clauses rewriting);

  (* mode 1: materialise M(D), then evaluate *)
  let md = Mapping.materialise m d in
  Format.printf "M(D) has %d atoms over %d individuals@."
    (Obda_data.Abox.num_atoms md)
    (Obda_data.Abox.num_individuals md);
  let via_materialisation = Omq.answer omq md in

  (* mode 2: unfold the rewriting through M and evaluate over D directly *)
  let via_unfolding = Mapping.answers_virtual m rewriting d in

  Format.printf "answers via materialisation: %s@."
    (String.concat " "
       (List.map
          (fun t -> String.concat "," (List.map Obda_syntax.Symbol.name t))
          via_materialisation));
  Format.printf "answers via unfolding:       %s@."
    (String.concat " "
       (List.map
          (fun t -> String.concat "," (List.map Obda_syntax.Symbol.name t))
          via_unfolding));
  assert (via_materialisation = via_unfolding);

  (* the chase agrees too *)
  assert (via_materialisation = Omq.answer_certain omq md);
  Format.printf "@.both modes agree with the canonical model ✓@.";

  (* A Boolean query that needs the ontology's existential: is there a
     project somebody works on?  "warp" qualifies directly; any Funded
     project would qualify even with no contracts row, thanks to
     Project ⊑ ∃worksOn⁻. *)
  let q2 = Parse.query_of_string "q() <- worksOn(x,p), Project(p)" in
  let omq2 = Omq.make tbox q2 in
  let r2 = Omq.rewrite Omq.Tw omq2 in
  let yes = Mapping.answers_virtual m r2 d <> [] in
  Format.printf "somebody works on a project: %b@." yes;
  assert (yes = (Omq.answer_certain omq2 md <> []))
