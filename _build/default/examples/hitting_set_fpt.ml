(* The parameterised-complexity lens of Section 4: the W[2]-hardness
   reduction of Theorem 15 in action.  A hypergraph H and budget k become an
   OMQ (T^k_H, q^k_H) over the one-atom data instance {V⁰₀(a)}: the ontology
   depth is 2k and the query is a star with one ray per hyperedge, so the
   parameter k really sits in the ontology depth, as the theorem requires.

   Run with:  dune exec examples/hitting_set_fpt.exe *)

open Obda_reductions
module Tbox = Obda_ontology.Tbox

let show h k =
  let tbox, query = Hitting_set.omq h ~k in
  let expected = Hitting_set.has_hitting_set h ~k in
  let t0 = Unix.gettimeofday () in
  let got = Hitting_set.answer_via_omq h ~k in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  k=%d: ontology %4d axioms (depth %s), query %2d atoms -> hitting set: \
     %-5b OMQ: %-5b (%.3fs) %s\n"
    k
    (List.length (Tbox.axioms tbox))
    (Format.asprintf "%a" Tbox.pp_depth (Tbox.depth tbox))
    (Obda_cq.Cq.size query) expected got dt
    (if expected = got then "✓" else "MISMATCH!");
  assert (expected = got)

let pp_hypergraph (h : Hitting_set.hypergraph) =
  Printf.printf "hypergraph: %d vertices, edges %s\n" h.Hitting_set.n
    (String.concat " "
       (List.map
          (fun e -> "{" ^ String.concat "," (List.map string_of_int e) ^ "}")
          h.Hitting_set.edges))

let () =
  (* the example used in the proof of Theorem 15 *)
  let h = { Hitting_set.n = 3; edges = [ [ 1; 3 ]; [ 2; 3 ]; [ 1; 2 ] ] } in
  pp_hypergraph h;
  List.iter (fun k -> show h k) [ 1; 2; 3 ];
  print_newline ();

  (* disjoint singleton edges force k = |E| *)
  let h2 = { Hitting_set.n = 4; edges = [ [ 1 ]; [ 2 ]; [ 3 ] ] } in
  pp_hypergraph h2;
  List.iter (fun k -> show h2 k) [ 2; 3 ];
  print_newline ();

  (* random instances; note how the cost grows with k (the parameter sits in
     the exponent — Theorem 15 says this is unavoidable unless W[2] = FPT) *)
  List.iter
    (fun (seed, n, m) ->
      let h = Hitting_set.random ~seed ~n ~m ~max_edge:3 in
      pp_hypergraph h;
      List.iter (fun k -> show h k) [ 1; 2; 3 ];
      print_newline ())
    [ (7, 4, 3); (9, 5, 4) ]
