examples/hitting_set_fpt.ml: Format Hitting_set List Obda_cq Obda_ontology Obda_reductions Printf String Unix
