examples/university.mli:
