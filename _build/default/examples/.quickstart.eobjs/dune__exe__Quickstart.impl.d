examples/quickstart.ml: Format List Obda_ndl Obda_parse Obda_rewriting Obda_syntax String
