examples/university.ml: Format List Obda_cq Obda_data Obda_ndl Obda_ontology Obda_parse Obda_rewriting Obda_syntax String
