examples/hitting_set_fpt.mli:
