examples/quickstart.mli:
