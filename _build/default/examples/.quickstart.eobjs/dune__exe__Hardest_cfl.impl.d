examples/hardest_cfl.ml: Cfl Format List Obda_cq Obda_ontology Obda_reductions Printf Unix
