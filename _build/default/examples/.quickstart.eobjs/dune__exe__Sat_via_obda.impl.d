examples/sat_via_obda.ml: Array Dpll Format List Obda_cq Obda_ontology Obda_reductions Printf Sat String
