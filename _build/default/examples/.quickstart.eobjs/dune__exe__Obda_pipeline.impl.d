examples/obda_pipeline.ml: Format List Mapping Obda_data Obda_mapping Obda_ndl Obda_parse Obda_rewriting Obda_syntax Source String
