examples/sat_via_obda.mli:
