examples/hardest_cfl.mli:
