#!/bin/sh
# Serve smoke: boot the network server on a Unix socket, drive 8
# concurrent clients with mixed ASSERT/RETRACT + ANSWER traffic, check
# that trivial load sheds nothing, then SIGTERM the server and check the
# graceful drain exits 143.
set -e
cd "$(dirname "$0")/.."

dune build bin/obda.exe
OBDA=_build/default/bin/obda.exe

dir=$(mktemp -d)
sock="$dir/obda.sock"

"$OBDA" serve --socket "$sock" --connections 8 \
  -o test/corpus/good.onto -d test/corpus/good.data &
server=$!
trap 'kill "$server" 2>/dev/null; rm -rf "$dir"' EXIT

# readiness: PING through the retrying client until the server answers
# (no sleep-and-stat race — the pong proves the serve loop is live)
if ! pong=$(printf 'PING\nQUIT\n' | "$OBDA" client --retry 50 --socket "$sock"); then
  echo "server never answered a PING on $sock" >&2
  exit 1
fi
case "$pong" in
  "OK pong rev="*) ;;
  *) echo "unexpected PING response: $pong" >&2; exit 1 ;;
esac

# one client prepares; 8 concurrent clients then issue mixed traffic
printf 'PREPARE q q(x) <- A(x)\nQUIT\n' \
  | "$OBDA" client --socket "$sock" > "$dir/prep.out"

pids=
for c in 1 2 3 4 5 6 7 8; do
  printf 'ASSERT A(s%d)\nANSWER q\nRETRACT A(s%d)\nANSWER q\nQUIT\n' "$c" "$c" \
    | "$OBDA" client --socket "$sock" > "$dir/c$c.out" &
  pids="$pids $!"
done
for p in $pids; do
  wait "$p"
done

# no client may have been shed or errored at this load
if grep -h '^ERR' "$dir/prep.out" "$dir"/c*.out; then
  echo "unexpected ERR under trivial load" >&2
  exit 1
fi

# the server's own books agree: zero requests shed
printf 'STATS\nQUIT\n' | "$OBDA" client --socket "$sock" > "$dir/stats.out"
if ! grep -q '^server\.requests\.shed 0$' "$dir/stats.out"; then
  echo "requests shed at trivial load:" >&2
  cat "$dir/stats.out" >&2
  exit 1
fi

# METRICS: the exposition must be non-empty and parse — an OK status
# announcing the line count, obda_-prefixed sample names, and a
# histogram _count for the request latencies the traffic just recorded
printf 'METRICS\nQUIT\n' | "$OBDA" client --socket "$sock" > "$dir/metrics.out"
if ! grep -q '^OK metrics=[1-9]' "$dir/metrics.out"; then
  echo "METRICS did not announce a non-empty exposition:" >&2
  cat "$dir/metrics.out" >&2
  exit 1
fi
if ! grep -q '^obda_[a-z_]* [0-9.eE+-]*$' "$dir/metrics.out"; then
  echo "METRICS exposition has no parsable samples:" >&2
  cat "$dir/metrics.out" >&2
  exit 1
fi
if ! grep -q '^obda_serve_answer_latency_count [1-9]' "$dir/metrics.out"; then
  echo "METRICS exposition lacks the answer-latency histogram:" >&2
  cat "$dir/metrics.out" >&2
  exit 1
fi
# every non-status, non-comment line must be "name value" or
# "name{le=...} value" with a numeric (or +Inf) value
if awk '/^OK metrics=/ || /^OK bye$/ || /^#/ { next }
        !/^[A-Za-z_][A-Za-z0-9_]*(\{le="[^"]*"\})? (\+Inf|-?[0-9.eE+-]+)$/ { bad = 1; print "unparsable: " $0 > "/dev/stderr" }
        END { exit bad }' "$dir/metrics.out"; then :; else
  echo "METRICS exposition failed to re-parse" >&2
  exit 1
fi

# obda top renders a one-shot dashboard against the live socket
"$OBDA" top --socket "$sock" --count 1 > "$dir/top.out"
if ! grep -q 'requests' "$dir/top.out" || ! grep -q 'p50' "$dir/top.out"; then
  echo "obda top rendered no dashboard:" >&2
  cat "$dir/top.out" >&2
  exit 1
fi

# graceful shutdown: SIGTERM drains and exits 143
kill -TERM "$server"
set +e
wait "$server"
code=$?
set -e
trap 'rm -rf "$dir"' EXIT
if [ "$code" -ne 143 ]; then
  echo "expected exit 143 after SIGTERM, got $code" >&2
  exit 1
fi

echo "serve smoke: 8 clients served, 0 requests shed, METRICS parsed, top rendered, SIGTERM drained with exit 143"
