#!/bin/sh
# Crash smoke: boot the network server with a durable data dir, apply
# acknowledged traffic, kill -9 the server mid-stream, restart it on the
# same dir, and check that every acknowledged mutation survived — the
# durability guarantee, end to end through a real SIGKILL.
set -e
cd "$(dirname "$0")/.."

dune build bin/obda.exe
OBDA=_build/default/bin/obda.exe

dir=$(mktemp -d)
sock="$dir/obda.sock"
data="$dir/state"

"$OBDA" serve --socket "$sock" --data-dir "$data" --durability always \
  -o test/corpus/good.onto -d test/corpus/good.data 2> "$dir/server1.err" &
server=$!
trap 'kill -9 "$server" 2>/dev/null; rm -rf "$dir"' EXIT

# readiness: PING through the retrying client
printf 'PING\nQUIT\n' | "$OBDA" client --retry 50 --socket "$sock" > /dev/null

# phase 1: acknowledged baseline traffic, then capture the answer set
printf 'PREPARE q q(x) <- A(x)\nASSERT A(base1) A(base2)\nRETRACT A(base2)\nQUIT\n' \
  | "$OBDA" client --socket "$sock" > "$dir/phase1.out"
if grep -q '^ERR' "$dir/phase1.out"; then
  echo "phase-1 traffic errored:" >&2
  cat "$dir/phase1.out" >&2
  exit 1
fi
printf 'ANSWER q\nQUIT\n' | "$OBDA" client --socket "$sock" \
  | grep -v '^OK' | sort > "$dir/answers.before"

# checkpoint the phase-1 state: the prepared registry survives restarts
# through checkpoints (the WAL carries data mutations only), and the
# restart below then exercises checkpoint restore + WAL tail replay
printf 'CHECKPOINT\nQUIT\n' | "$OBDA" client --socket "$sock" > "$dir/ckpt1.out"
if ! grep -q '^OK checkpoint seq=' "$dir/ckpt1.out"; then
  echo "phase-1 CHECKPOINT failed:" >&2
  cat "$dir/ckpt1.out" >&2
  exit 1
fi

# phase 2: a long assert stream; SIGKILL the server while it runs.
# Every line the client got an "OK asserted" back for was fsynced to the
# WAL before that OK was sent — those must survive the kill.
i=0
while [ "$i" -lt 5000 ]; do
  i=$((i + 1))
  printf 'ASSERT A(s%d)\n' "$i"
done | "$OBDA" client --socket "$sock" > "$dir/stream.out" 2> /dev/null &
stream=$!
sleep 0.2
kill -9 "$server"
set +e
wait "$server" 2> /dev/null
wait "$stream" 2> /dev/null
set -e
acked=$(grep -c '^OK asserted' "$dir/stream.out" || true)
echo "crash smoke: SIGKILL after $acked acknowledged stream asserts"

# restart on the same data dir — no -o/-d: ontology, data and the
# prepared registry must all come back from the checkpoint + WAL replay.
# (Fresh socket path: SIGKILL left the old file behind.)
sock="$dir/obda2.sock"
"$OBDA" serve --socket "$sock" --data-dir "$data" 2> "$dir/server2.err" &
server=$!
printf 'PING\nQUIT\n' | "$OBDA" client --retry 50 --socket "$sock" > /dev/null

printf 'ANSWER q\nQUIT\n' | "$OBDA" client --socket "$sock" \
  | grep -v '^OK' | sort > "$dir/answers.after"

# every phase-1 answer must still be there
while read -r a; do
  [ -z "$a" ] && continue
  if ! grep -qx "$a" "$dir/answers.after"; then
    echo "acknowledged answer $a lost across the crash" >&2
    exit 1
  fi
done < "$dir/answers.before"

# every acknowledged stream assert must still be there; later ones may
# or may not have been acked before the kill, but nothing beyond the
# stream may appear
i=0
while [ "$i" -lt "$acked" ]; do
  i=$((i + 1))
  if ! grep -qx "s$i" "$dir/answers.after"; then
    echo "acknowledged fact A(s$i) lost across the crash" >&2
    exit 1
  fi
done
extra=$(grep -c '^s' "$dir/answers.after" || true)
if [ "$extra" -gt 500 ]; then
  echo "recovered more stream facts than were ever sent ($extra)" >&2
  exit 1
fi

# the prepared query itself survived (the ANSWER above proved it), and a
# forced CHECKPOINT compacts the replayed log
printf 'CHECKPOINT\nQUIT\n' | "$OBDA" client --socket "$sock" > "$dir/ckpt.out"
if ! grep -q '^OK checkpoint seq=' "$dir/ckpt.out"; then
  echo "CHECKPOINT verb failed:" >&2
  cat "$dir/ckpt.out" >&2
  exit 1
fi

# graceful shutdown this time, then the offline dry run agrees
kill -TERM "$server"
set +e
wait "$server"
code=$?
set -e
trap 'rm -rf "$dir"' EXIT
if [ "$code" -ne 143 ]; then
  echo "expected exit 143 after SIGTERM, got $code" >&2
  exit 1
fi
"$OBDA" recover "$data" > "$dir/recover.out"
if ! grep -q '^checkpoint:  seq' "$dir/recover.out"; then
  echo "obda recover found no checkpoint after the drain:" >&2
  cat "$dir/recover.out" >&2
  exit 1
fi

total=$(grep -cx '.*' "$dir/answers.after")
echo "crash smoke: $acked acked stream asserts + baseline all recovered after kill -9 ($total answers), CHECKPOINT + recover OK"
