#!/bin/sh
# Tier-1 gate: everything that must stay green on every commit.
# (runtest pulls in the unit suites plus @runtest-obs, @runtest-chaos and
# @runtest-service; the corpus alias is listed explicitly so a failure
# names the right gate.)
set -e
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune build @runtest-corpus
