(* The obda command-line tool: classify OMQs, produce NDL-rewritings and
   answer queries over data files, all in the textual format of Obda_parse. *)

open Cmdliner
module Omq = Obda_rewriting.Omq
module Ndl = Obda_ndl.Ndl
module Parse = Obda_parse.Parse
module Error = Obda_runtime.Error
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Obs = Obda_obs.Obs

let algorithm_conv =
  let parse s =
    match Omq.algorithm_of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown algorithm %s" s))
  in
  let print ppf alg = Format.pp_print_string ppf (Omq.algorithm_name alg) in
  Arg.conv (parse, print)

let ontology_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "o"; "ontology" ] ~docv:"FILE" ~doc:"Ontology file.")

let query_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "q"; "query" ] ~docv:"FILE" ~doc:"Conjunctive query file.")

let data_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Data (ABox) file.")

let algorithm_arg ~default =
  Arg.(
    value
    & opt (some algorithm_conv) default
    & info [ "a"; "algorithm" ] ~docv:"ALG"
        ~doc:"Rewriting algorithm: tw, lin, log, ucq, ucq-condensed, presto.")

let load_omq ontology query =
  let tbox = Parse.ontology_of_file ontology in
  let cq = Parse.query_of_file query in
  Omq.make tbox cq

(* The first stderr line is the machine-readable rendering
   ([class=... key=value ...]); parse errors additionally get a human caret
   display of the offending line. *)
let report_error e =
  Printf.eprintf "obda: %s\n" (Error.to_string e);
  (match e with
  | Error.Parse_error { loc; source_line = Some src; _ } ->
    Printf.eprintf "  | %s\n" src;
    (match loc.Error.column with
    | Some c when c >= 1 -> Printf.eprintf "  | %s^\n" (String.make (c - 1) ' ')
    | _ -> ())
  | _ -> ());
  exit (Error.exit_code e)

(* EPIPE surfaces as [Sys_error "...: Broken pipe"] rather than through the
   signal handler: the runtime only runs OCaml signal code at safepoints, so
   the failed write usually raises first.  Either path exits 141. *)
let is_broken_pipe msg =
  let suffix = "Broken pipe" in
  let n = String.length msg and l = String.length suffix in
  n >= l && String.sub msg (n - l) l = suffix

let handle_errors f =
  try f () with
  | Sys_error msg when is_broken_pipe msg -> exit 141
  | exn -> (
    match Error.of_exn exn with
    | Some e -> report_error e
    | None -> report_error (Error.Internal (Printexc.to_string exn)))

(* Shared resource-budget flags; every limit violation exits with code 4. *)
let budget_term =
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock allowance for the whole request.  Exceeding it \
             terminates with exit code 4.")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Cap on the work units (chase firings, rewriting expansions, \
             evaluation joins) the request may perform.")
  in
  let max_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-size" ] ~docv:"N"
          ~doc:
            "Cap on the output units (clauses, tuples, chase elements) the \
             request may produce.")
  in
  let make timeout max_steps max_size =
    Budget.create ?timeout ?max_steps ?max_size ()
  in
  Term.(const make $ timeout $ max_steps $ max_size)

(* Evaluation parallelism, shared by [answer] and [serve].  The default
   comes from OBDA_JOBS so an unchanged invocation (the test corpus, CI)
   can exercise the parallel path; 1 = the sequential engine. *)
let jobs_term =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "OBDA_JOBS")
        ~doc:
          "Evaluate NDL rewritings on $(docv) worker domains.  Answers are \
           byte-identical for any $(docv); the default 1 is the sequential \
           engine.")

(* Run [f] with a worker pool when [jobs > 1] (shut down afterwards), with
   [None] — the sequential engine — otherwise. *)
let with_jobs jobs f =
  if jobs < 1 then begin
    prerr_endline "obda: --jobs must be >= 1";
    exit 124
  end
  else if jobs = 1 then f None
  else Obda_runtime.Pool.with_pool ~jobs (fun p -> f (Some p))

(* ------------------------------------------------------------------ *)
(* Fault injection (chaos testing), shared by the pipeline commands. *)

let inject_conv =
  let parse s =
    match Fault.parse_plan s with
    | Ok plan -> Ok plan
    | Error msg -> Error (`Msg msg)
  in
  let print ppf plan = Format.pp_print_string ppf (Fault.plan_to_string plan) in
  Arg.conv (parse, print)

let inject_term =
  Arg.(
    value
    & opt (some inject_conv) None
    & info [ "inject" ] ~docv:"PLAN"
        ~doc:
          "Arm a deterministic fault-injection plan: comma-separated \
           SITE@SPEC[=CLASS] directives, where SPEC is an activation number \
           (or nth:N), every:K, or random:P:SEED, and CLASS is one of \
           parse, not-applicable, budget, inconsistent, internal (default: \
           the site's own class).  See $(b,obda chaos-list) for the sites.  \
           Example: --inject 'chase.step@17=budget'.")

(* Arm after the sinks are installed; the [at_exit] handler registered here
   runs BEFORE the telemetry teardown (LIFO), so the plan is disarmed — and
   the activations that fired are reported for replay — before any guarded
   sink write of the final flush could itself be injected. *)
let arm_faults = function
  | None -> ()
  | Some plan ->
    Fault.arm plan;
    at_exit (fun () ->
        let fired = Fault.fired () in
        Fault.disarm ();
        try
          List.iter
            (fun (s, n) ->
              Printf.eprintf "# fault: fired %s@%d\n" (Fault.site_name s) n)
            fired;
          flush stderr
        with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Telemetry flags, shared by the pipeline commands. *)

type telemetry = {
  trace : string option;  (* JSON-lines destination; "-" = stderr *)
  metrics_json : string option;  (* JSON-lines destination; "-" = stdout *)
  stats : bool;
}

let telemetry_term =
  let trace =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a JSON-lines trace of the request (one object per \
             pipeline span as it completes, then one per final metric) to \
             $(docv); without $(docv), or with -, write to stderr.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the spans and metrics of the request as JSON lines to \
             $(docv) (- for stdout).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print a human-readable telemetry summary (span tree, metric \
             table, budget headroom) on stderr when the request finishes.")
  in
  let make trace metrics_json stats = { trace; metrics_json; stats } in
  Term.(const make $ trace $ metrics_json $ stats)

let pp_budget_headroom ppf budget =
  if not (Budget.is_limited budget) then
    Format.fprintf ppf "budget: unlimited@."
  else begin
    let lim = Budget.limits budget in
    (match (lim.Budget.max_steps, Budget.steps_remaining budget) with
    | Some l, Some r ->
      Format.fprintf ppf "budget.steps: %d spent, %d remaining of %d@."
        (Budget.steps_spent budget) r l
    | _ -> ());
    (match (lim.Budget.max_size, Budget.size_remaining budget) with
    | Some l, Some r ->
      Format.fprintf ppf "budget.size: %d spent, %d remaining of %d@."
        (Budget.size_spent budget) r l
    | _ -> ());
    match (lim.Budget.timeout, Budget.wall_remaining budget) with
    | Some l, Some r ->
      Format.fprintf ppf "budget.wall: %.3fs remaining of %.3fs@." r l
    | _ -> ()
  end

(* Install the requested sinks and register teardown with [at_exit], so the
   trace is flushed and the summary printed on every exit path —
   [report_error] terminates via [Stdlib.exit], which does not unwind
   [Fun.protect] but does run [at_exit] handlers. *)
let init_telemetry ?(budget = Budget.none) t =
  if t.trace = None && t.metrics_json = None && not t.stats then ()
  else begin
    let to_close = ref [] in
    let writer dest ~dash =
      match dest with
      | "-" ->
        fun line ->
          output_string dash line;
          output_char dash '\n'
      | path ->
        let oc = open_out path in
        to_close := oc :: !to_close;
        fun line ->
          output_string oc line;
          output_char oc '\n'
    in
    let sinks = ref [] in
    (match t.trace with
    | Some dest -> sinks := Obs.json_sink (writer dest ~dash:stderr) :: !sinks
    | None -> ());
    (match t.metrics_json with
    | Some dest -> sinks := Obs.json_sink (writer dest ~dash:stdout) :: !sinks
    | None -> ());
    let collector = if t.stats then Some (Obs.Collector.create ()) else None in
    (match collector with
    | Some c -> sinks := Obs.Collector.sink c :: !sinks
    | None -> ());
    Obs.install (Obs.tee !sinks);
    let torn_down = ref false in
    at_exit (fun () ->
        if not !torn_down then begin
          torn_down := true;
          Obs.uninstall ();
          (* stdout/stderr may be a pipe closed by the consumer: the flush
             must never abort the remaining teardown *)
          (try
             match collector with
             | Some c ->
               Format.eprintf "%a" Obs.Collector.pp c;
               pp_budget_headroom Format.err_formatter budget;
               Format.pp_print_flush Format.err_formatter ()
             | None -> ()
           with Sys_error _ -> ());
          (try flush stdout with Sys_error _ -> ());
          (try flush stderr with Sys_error _ -> ());
          List.iter (fun oc -> try close_out oc with Sys_error _ -> ()) !to_close
        end)
  end

(* ------------------------------------------------------------------ *)

let classify_cmd =
  let run ontology query =
    handle_errors (fun () ->
        let omq = load_omq ontology query in
        let c = Omq.classify omq in
        Format.printf "%a@." Omq.pp_classification c;
        Format.printf "applicable algorithms:";
        List.iter
          (fun alg ->
            if Omq.applicable alg omq then
              Format.printf " %s" (Omq.algorithm_name alg))
          Omq.all_algorithms;
        Format.printf "@.")
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Place the OMQ in the complexity landscape of the paper's Fig. 1.")
    Term.(const run $ ontology_arg $ query_arg)

let rewrite_cmd =
  let run ontology query algorithm over_complete budget inject telemetry =
    handle_errors (fun () ->
        init_telemetry ~budget telemetry;
        arm_faults inject;
        let omq = load_omq ontology query in
        let alg =
          match algorithm with
          | Some a -> a
          | None -> Omq.default_algorithm omq
        in
        if not (Omq.applicable alg omq) then
          Error.not_applicable ~algorithm:(Omq.algorithm_name alg)
            "side conditions do not hold for this OMQ";
        let over = if over_complete then `Complete else `Arbitrary in
        let q = Omq.rewrite ~budget ~over alg omq in
        Format.printf "%a" Ndl.pp q;
        if telemetry.stats then
          Format.printf
            "# clauses=%d size=%d depth=%d width=%d linear=%b skinny-depth=%.1f@."
            (Ndl.num_clauses q) (Ndl.size q) (Ndl.depth q) (Ndl.width q)
            (Ndl.is_linear q) (Ndl.skinny_depth q))
  in
  let over_complete =
    Arg.(
      value & flag
      & info [ "complete" ]
          ~doc:"Produce the rewriting over complete data instances (skip the \
                ∗-transformation).")
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Print an NDL-rewriting of the OMQ.")
    Term.(
      const run $ ontology_arg $ query_arg
      $ algorithm_arg ~default:None
      $ over_complete $ budget_term $ inject_term $ telemetry_term)

let answer_cmd =
  let run ontology query data mapping source algorithm use_chase budget jobs
      fallback retry fail_inconsistent explain naive inject telemetry =
    handle_errors (fun () ->
        init_telemetry ~budget telemetry;
        arm_faults inject;
        let omq = load_omq ontology query in
        let on_inconsistent = if fail_inconsistent then `Error else `All_tuples in
        let answers =
          with_jobs jobs @@ fun pool ->
          match (mapping, source) with
          | Some mf, Some sf ->
            (* virtual OBDA: unfold the rewriting through the mapping and
               evaluate directly over the relational source *)
            let m = Parse.mapping_of_file mf in
            let src = Parse.source_of_file sf in
            let alg =
              match algorithm with
              | Some a -> a
              | None -> Omq.default_algorithm omq
            in
            let rewriting = Omq.rewrite ~budget alg omq in
            Obda_mapping.Mapping.answers_virtual m rewriting src
          | None, None -> (
            match data with
            | Some d ->
              let abox = Parse.data_of_file d in
              if explain && not use_chase then
                List.iter
                  (fun line -> Printf.eprintf "# plan: %s\n" line)
                  (Omq.explain ~budget ~naive ?algorithm omq abox);
              if use_chase then
                Omq.answer_certain ~budget ~on_inconsistent omq abox
              else if fallback || retry > 0 then begin
                let chain =
                  if fallback then Option.map Omq.default_chain algorithm
                  else
                    (* --retry alone: retry the one requested algorithm *)
                    Some
                      [
                        (match algorithm with
                        | Some a -> a
                        | None -> Omq.default_algorithm omq);
                      ]
                in
                let r =
                  Omq.answer_with_fallback ?pool ~budget
                    ~retry:{ Omq.max_retries = retry; escalation = 2. }
                    ?chain ~on_inconsistent omq abox
                in
                let attempt_name (a : Omq.attempt) =
                  if a.Omq.trial > 1 then
                    Printf.sprintf "%s (trial %d)"
                      (Omq.algorithm_name a.Omq.algorithm) a.Omq.trial
                  else Omq.algorithm_name a.Omq.algorithm
                in
                (match r.Omq.attempts with
                | [] | [ { Omq.outcome = Ok (); _ } ] ->
                  (* nothing fell through: stay quiet *)
                  ()
                | attempts ->
                  List.iter
                    (fun (a : Omq.attempt) ->
                      match a.Omq.outcome with
                      | Error e ->
                        Printf.eprintf "# fallback: %s failed after %.3fs: %s\n"
                          (attempt_name a) a.Omq.duration (Error.to_string e)
                      | Ok () ->
                        Printf.eprintf "# fallback: answered by %s in %.3fs\n"
                          (attempt_name a) a.Omq.duration)
                    attempts);
                r.Omq.answers
              end
              else
                Omq.answer ?pool ~budget ~naive ~on_inconsistent ?algorithm omq
                  abox
            | None ->
              prerr_endline "answer: provide -d, or --mapping with --source";
              exit 1)
          | _ ->
            prerr_endline "answer: --mapping and --source go together";
            exit 1
        in
        if Obda_cq.Cq.is_boolean omq.Omq.cq then
          print_endline (if answers <> [] then "yes" else "no")
        else
          List.iter
            (fun tuple ->
              print_endline
                (String.concat "," (List.map Obda_syntax.Symbol.name tuple)))
            answers)
  in
  let use_chase =
    Arg.(
      value & flag
      & info [ "chase" ]
          ~doc:"Answer on the canonical model instead of via rewriting.")
  in
  let data_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Data (ABox) file.")
  in
  let mapping =
    Arg.(
      value
      & opt (some file) None
      & info [ "m"; "mapping" ] ~docv:"FILE" ~doc:"GAV mapping file.")
  in
  let source =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "source" ] ~docv:"FILE"
          ~doc:"Relational source file (used with --mapping).")
  in
  let fallback =
    Arg.(
      value & flag
      & info [ "fallback" ]
          ~doc:
            "When the requested algorithm is not applicable or runs out of \
             budget, fall back to the always-applicable baselines (with -d).  \
             The attempts are reported on stderr as comment lines.")
  in
  let retry =
    Arg.(
      value & opt int 0
      & info [ "retry" ] ~docv:"N"
          ~doc:
            "Retry an algorithm whose step/size sub-budget ran out up to \
             $(docv) times, doubling the sub-budget limits each trial; the \
             --timeout wall deadline still bounds the whole request.  \
             Without --fallback the chain is just the requested algorithm.")
  in
  let fail_inconsistent =
    Arg.(
      value & flag
      & info [ "fail-inconsistent" ]
          ~doc:
            "Exit with code 5 when the data is inconsistent with the \
             ontology, instead of returning every tuple over the active \
             domain (the paper's convention).")
  in
  let explain_flag =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the evaluator's chosen atom order and per-atom access \
             strategy for every clause of the rewriting as '# plan:' \
             comment lines on stderr (with -d; ignored with --chase or \
             --mapping).")
  in
  let naive_flag =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Evaluate with the legacy engine — written-order heuristic, \
             maintained-index probes only, naive fixpoint — instead of the \
             cost-based planner and semi-naive evaluation (the eval-plan \
             bench baseline).")
  in
  Cmd.v
    (Cmd.info "answer"
       ~doc:
         "Certain answers of the OMQ over a data file, or over a relational \
          source through a GAV mapping.")
    Term.(
      const run $ ontology_arg $ query_arg $ data_opt $ mapping $ source
      $ algorithm_arg ~default:None
      $ use_chase $ budget_term $ jobs_term $ fallback $ retry
      $ fail_inconsistent $ explain_flag $ naive_flag $ inject_term
      $ telemetry_term)

let stats_cmd =
  let run ontology =
    handle_errors (fun () ->
        let tbox = Parse.ontology_of_file ontology in
        let module Tbox = Obda_ontology.Tbox in
        Format.printf "axioms: %d (with normalisation: %d)@."
          (List.length (Tbox.axioms tbox))
          (Tbox.size tbox);
        Format.printf "roles (R_T): %d@." (List.length (Tbox.roles tbox));
        Format.printf "concept names: %d@."
          (List.length (Tbox.concept_names tbox));
        Format.printf "depth: %a@." Tbox.pp_depth (Tbox.depth tbox);
        Format.printf "has bottom: %b@." (Tbox.has_bottom tbox))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Ontology statistics (depth, signature, …).")
    Term.(const run $ ontology_arg)

let gen_data_cmd =
  (* wrapped in [handle_errors] so a consumer closing the pipe early
     ([obda gen-data | head]) exits 141, not with a backtrace *)
  let run vertices edge_prob concept_prob seed =
    handle_errors (fun () ->
        let abox =
          Obda_data.Generate.erdos_renyi ~seed
            ~edge_pred:(Obda_syntax.Symbol.intern "R")
            ~concepts:
              [ Obda_syntax.Symbol.intern "A"; Obda_syntax.Symbol.intern "B" ]
            { Obda_data.Generate.vertices; edge_prob; concept_prob }
        in
        print_string (Parse.data_to_string abox);
        flush stdout)
  in
  let vertices =
    Arg.(value & opt int 1000 & info [ "vertices" ] ~docv:"V" ~doc:"Vertices.")
  in
  let edge_prob =
    Arg.(
      value & opt float 0.05
      & info [ "edge-prob" ] ~docv:"P" ~doc:"Directed edge probability.")
  in
  let concept_prob =
    Arg.(
      value & opt float 0.05
      & info [ "concept-prob" ] ~docv:"Q" ~doc:"Concept marker probability.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "gen-data"
       ~doc:"Generate an Erdős–Rényi data instance (Table 2 of the paper).")
    Term.(const run $ vertices $ edge_prob $ concept_prob $ seed)

let chase_cmd =
  let run ontology data depth budget inject telemetry =
    handle_errors (fun () ->
        init_telemetry ~budget telemetry;
        arm_faults inject;
        let tbox = Parse.ontology_of_file ontology in
        let abox = Parse.data_of_file data in
        let canon = Obda_chase.Canonical.make ~budget tbox abox ~depth in
        Format.printf "canonical model to depth %d: %d elements@." depth
          (Obda_chase.Canonical.num_elements canon);
        List.iter
          (fun e ->
            let labels =
              List.filter
                (fun a -> Obda_chase.Canonical.unary_holds canon a e)
                (Obda_ontology.Tbox.concept_names tbox)
            in
            Format.printf "  %a : {%s}@." Obda_chase.Canonical.pp_element e
              (String.concat ", "
                 (List.map Obda_syntax.Symbol.name labels)))
          (Obda_chase.Canonical.elements canon))
  in
  let depth =
    Arg.(
      value & opt int 3
      & info [ "depth" ] ~docv:"D" ~doc:"Materialisation depth for nulls.")
  in
  Cmd.v
    (Cmd.info "chase"
       ~doc:"Print the canonical model C_{T,A} to a bounded null depth.")
    Term.(const run $ ontology_arg $ data_arg $ depth $ budget_term
          $ inject_term $ telemetry_term)

(* --tcp HOST:PORT (or just PORT, meaning 127.0.0.1). *)
let tcp_conv =
  let parse s =
    match int_of_string_opt s with
    | Some port -> Ok ("127.0.0.1", port)
    | None -> (
      match String.rindex_opt s ':' with
      | None -> Error (`Msg "expected HOST:PORT or PORT")
      | Some i -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        with
        | Some port -> Ok (host, port)
        | None -> Error (`Msg "expected HOST:PORT or PORT")))
  in
  let print ppf (host, port) = Format.fprintf ppf "%s:%d" host port in
  Arg.conv (parse, print)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some tcp_conv) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"TCP endpoint ($(docv), or just PORT for 127.0.0.1).")

let server_address socket tcp =
  match (socket, tcp) with
  | Some _, Some _ ->
    prerr_endline "obda: --socket and --tcp are mutually exclusive";
    exit 124
  | Some path, None -> Some (Obda_service.Server.Unix_socket path)
  | None, Some (host, port) -> Some (Obda_service.Server.Tcp (host, port))
  | None, None -> None

let serve_cmd =
  let module Service = Obda_service in
  let run ontology data script cache_entries cache_size socket tcp connections
      backlog max_inflight idle_timeout request_timeout access_log slow_ms
      data_dir durability checkpoint_every budget jobs inject telemetry =
    handle_errors (fun () ->
        init_telemetry ~budget telemetry;
        arm_faults inject;
        if data_dir = None && (durability <> None || checkpoint_every <> None)
        then begin
          prerr_endline
            "obda: --durability and --checkpoint-every need --data-dir";
          exit 124
        end;
        (match checkpoint_every with
        | Some n when n < 1 ->
          prerr_endline "obda: --checkpoint-every must be >= 1";
          exit 124
        | _ -> ());
        let wal_policy =
          match durability with
          | None -> Service.Wal.Always
          | Some spec -> (
            match Service.Wal.sync_policy_of_string spec with
            | Ok p -> p
            | Error msg ->
              Printf.eprintf "obda: --durability: %s\n" msg;
              exit 124)
        in
        if jobs < 1 then begin
          prerr_endline "obda: --jobs must be >= 1";
          exit 124
        end;
        let address = server_address socket tcp in
        if address <> None && jobs > 1 then begin
          prerr_endline
            "obda: the network server requires --jobs 1; use --connections N \
             to parallelise across connections";
          exit 124
        end;
        (* The serving path always measures: per-verb latency/size
           histograms feed the METRICS verb in every serve mode. *)
        Obda_obs.Histogram.set_enabled true;
        (* --slow-ms alone still wants its slow-query lines somewhere:
           imply an access log on stderr. *)
        (match
           match access_log with
           | None when slow_ms <> None -> Some "-"
           | dest -> dest
         with
        | None -> ()
        | Some dest ->
          let write =
            match dest with
            | "-" ->
              fun line ->
                output_string stderr line;
                output_char stderr '\n';
                flush stderr
            | path ->
              let oc =
                open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
              in
              at_exit (fun () -> try close_out oc with Sys_error _ -> ());
              fun line ->
                output_string oc line;
                output_char oc '\n';
                (* flushed per line so tail -f (and the smoke script)
                   observe requests as they complete *)
                flush oc
          in
          Service.Serve.set_access_log ?slow_ms write);
        let session =
          Service.Session.create ~budget ?cache_entries
            ?cache_weight:cache_size ~jobs ()
        in
        let wal = ref None in
        Fun.protect
          ~finally:(fun () ->
            (match !wal with
            | Some w ->
              (* a final checkpoint makes the next start instant (empty
                 replay); best-effort — the WAL alone already carries
                 every acknowledged mutation *)
              (try ignore (Service.Serve.checkpoint_now session w)
               with _ -> ());
              Service.Serve.detach_wal session;
              Service.Wal.close w
            | None -> ());
            Service.Session.close session)
          (fun () ->
            (match data_dir with
            | None -> ()
            | Some dir ->
              let w, recovered =
                Service.Wal.open_ ~policy:wal_policy ?checkpoint_every dir
              in
              wal := Some w;
              List.iter
                (fun warning -> Printf.eprintf "obda: wal: %s\n%!" warning)
                recovered.Service.Wal.warnings;
              (* restore recovered state BEFORE hooking mutations to the
                 log, so the restore itself is not re-appended *)
              (match recovered.Service.Wal.tbox with
              | Some tbox -> Service.Session.load_ontology session tbox
              | None -> ());
              if
                recovered.Service.Wal.checkpoint_seq <> None
                || recovered.Service.Wal.replayed > 0
              then
                Service.Session.load_data session recovered.Service.Wal.abox;
              List.iter
                (fun (name, algorithm, cq_text) ->
                  ignore
                    (Service.Session.prepare session ~name ~algorithm
                       (Parse.query_of_string cq_text)))
                recovered.Service.Wal.prepared;
              Service.Serve.attach_wal session w;
              Printf.eprintf
                "obda: durable session in %s (policy=%s, checkpoint=%s, \
                 replayed=%d record%s)\n\
                 %!"
                dir
                (Service.Wal.sync_policy_to_string wal_policy)
                (match recovered.Service.Wal.checkpoint_seq with
                | Some seq -> Printf.sprintf "seq %d" seq
                | None -> "none")
                recovered.Service.Wal.replayed
                (if recovered.Service.Wal.replayed = 1 then "" else "s"));
            (match ontology with
            | Some file ->
              Service.Session.load_ontology session
                (Parse.ontology_of_file file)
            | None -> ());
            (match data with
            | Some file ->
              Service.Session.load_data session (Parse.data_of_file file)
            | None -> ());
            match address with
            | Some address ->
              if script <> None then begin
                prerr_endline "obda: --script does not combine with a socket";
                exit 124
              end;
              let server =
                Service.Server.create ?connections ?backlog ?max_inflight
                  ?idle_timeout ?request_timeout address session
              in
              (* graceful shutdown: stop accepting, drain requests in
                 flight, then exit through the normal teardown with the
                 conventional 128+signal code *)
              List.iter
                (fun (signal, code) ->
                  try
                    Sys.set_signal signal
                      (Sys.Signal_handle
                         (fun _ -> Service.Server.request_stop server ~code))
                  with Invalid_argument _ | Sys_error _ -> ())
                [ (Sys.sigint, 130); (Sys.sigterm, 143) ];
              Printf.eprintf "obda: serving on %s (connections=%d)\n%!"
                (Service.Server.address_string
                   (Service.Server.address server))
                (Option.value connections ~default:4);
              let on_drain =
                Option.map
                  (fun w () ->
                    ignore (Service.Serve.checkpoint_now session w))
                  !wal
              in
              let code = Service.Server.run ?on_drain server in
              if code <> 0 then begin
                (* exit bypasses Fun.protect: close the log here so the
                   SIGTERM drain checkpoint is followed by a final sync *)
                (match !wal with
                | Some w ->
                  Service.Serve.detach_wal session;
                  Service.Wal.close w
                | None -> ());
                exit code
              end
            | None -> (
              match script with
              | Some file ->
                let ic = open_in file in
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () -> Service.Serve.run_channels session ic stdout)
              | None -> Service.Serve.run_channels session stdin stdout)))
  in
  let ontology =
    Arg.(
      value
      & opt (some file) None
      & info [ "o"; "ontology" ] ~docv:"FILE" ~doc:"Preload an ontology file.")
  in
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Preload a data (ABox) file.")
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Replay a protocol script from $(docv) instead of reading \
             requests from stdin.")
  in
  let cache_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Bound the rewriting cache to $(docv) entries (LRU eviction).")
  in
  let cache_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-size" ] ~docv:"N"
          ~doc:
            "Bound the rewriting cache to a total of $(docv) NDL atoms \
             across resident rewritings (LRU eviction).")
  in
  let connections =
    Arg.(
      value
      & opt (some int) None
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "Serve up to $(docv) connections concurrently (default 4; \
             socket mode).")
  in
  let backlog =
    Arg.(
      value
      & opt (some int) None
      & info [ "backlog" ] ~docv:"N"
          ~doc:
            "Bound the accepted-but-unclaimed connection queue to $(docv) \
             (default 16); beyond it connections are shed with ERR \
             class=overloaded.")
  in
  let max_inflight =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admit at most $(docv) concurrently executing requests (default: \
             --connections); excess requests get an in-protocol ERR \
             class=overloaded and the connection stays open.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Close a connection that sends no request for $(docv) seconds \
             (after an ERR class=budget line).")
  in
  let request_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock cap per request, combined with the session --timeout \
             (the tighter deadline wins).")
  in
  let access_log =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per request to $(docv) (id, connection, \
             verb, data revision, outcome class, duration, cache hit/miss); \
             without $(docv), or with -, write to stderr.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Also log the span tree of every request that takes at least \
             $(docv) milliseconds (to the --access-log destination; stderr \
             if none was given).  While armed, request spans are routed to \
             the slow-query collector instead of --trace sinks.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Durable session state in $(docv): every effective mutation is \
             appended to a write-ahead log before its OK line, checkpoints \
             snapshot the full session (CHECKPOINT verb or \
             --checkpoint-every), and on restart the newest checkpoint is \
             restored and the log tail replayed — a torn final record (a \
             crash mid-append) is truncated with a warning, never refused.")
  in
  let durability =
    Arg.(
      value
      & opt (some string) None
      & info [ "durability" ] ~docv:"POLICY"
          ~doc:
            "WAL sync policy: $(b,always) (fsync per record, the default), \
             $(b,interval:MS) (fsync at most once per window), $(b,never) \
             (leave syncing to the OS).  Requires --data-dir.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Write a checkpoint and truncate the log after every $(docv) \
             WAL records.  Requires --data-dir.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve queries over a long-lived session: a newline-delimited \
          protocol (LOAD, PREPARE, ANSWER, BATCH, ASSERT, RETRACT, STATS, \
          METRICS, QUIT) on stdin/stdout, with prepared queries backed by a \
          content-addressed rewriting cache.  Each request runs under a \
          fresh sub-budget of the session budget; failures are reported as \
          in-protocol ERR lines, leaving the session usable.  With --jobs N \
          evaluation (ANSWER, and BATCH queries) runs on N worker domains \
          with byte-identical responses.  With --socket or --tcp the \
          protocol is served over the network instead: --connections \
          concurrent clients against one shared session, every \
          ANSWER/BATCH isolated on a copy-on-write ABox snapshot, with \
          admission control, idle/request timeouts and graceful drain on \
          SIGTERM/SIGINT.  With --data-dir the session is durable: a \
          write-ahead log captures every mutation before its OK, \
          checkpoints compact it, and a restart (even after kill -9) \
          recovers exactly the acknowledged state.")
    Term.(
      const run $ ontology $ data $ script $ cache_entries $ cache_size
      $ socket_arg $ tcp_arg $ connections $ backlog $ max_inflight
      $ idle_timeout $ request_timeout $ access_log $ slow_ms $ data_dir
      $ durability $ checkpoint_every $ budget_term $ jobs_term $ inject_term
      $ telemetry_term)

let client_cmd =
  let module Service = Obda_service in
  let run socket tcp script retry =
    handle_errors (fun () ->
        if retry < 0 then begin
          prerr_endline "obda: --retry must be >= 0";
          exit 124
        end;
        let address =
          match server_address socket tcp with
          | Some a -> a
          | None ->
            prerr_endline "obda: client needs --socket or --tcp";
            exit 124
        in
        let client =
          try Service.Client.connect ~retries:retry address
          with Unix.Unix_error (e, _, _) ->
            Printf.eprintf "obda: cannot connect to %s: %s\n"
              (Service.Server.address_string address)
              (Unix.error_message e);
            exit 1
        in
        Fun.protect
          ~finally:(fun () -> Service.Client.close client)
          (fun () ->
            let serve_input ic =
              let rec loop () =
                match In_channel.input_line ic with
                | None -> ()
                | Some line ->
                  let responses = Service.Client.request client line in
                  List.iter print_endline responses;
                  flush stdout;
                  let quit =
                    match responses with [ "OK bye" ] -> true | _ -> false
                  in
                  if not quit then loop ()
              in
              loop ()
            in
            match script with
            | Some file ->
              let ic = open_in file in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> serve_input ic)
            | None -> serve_input stdin))
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Send the request lines of $(docv) instead of reading from \
             stdin.")
  in
  let retry =
    Arg.(
      value & opt int 0
      & info [ "retry" ] ~docv:"N"
          ~doc:
            "Retry a refused connection (server not yet bound) up to \
             $(docv) times with exponential backoff and jitter — the \
             readiness poll of the smoke scripts: obda client --retry 20 \
             <<< PING.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Connect to a running obda serve socket and exchange protocol \
          lines: requests from stdin (or --script), responses to stdout.")
    Term.(const run $ socket_arg $ tcp_arg $ script $ retry)

(* ------------------------------------------------------------------ *)
(* obda top: poll METRICS and render a refreshing terminal dashboard. *)

(* One METRICS exposition parsed into plain samples and histograms.  A
   histogram is its cumulative (upper-bound, count) buckets in ascending
   order — enough to answer quantile queries client-side. *)
type metrics_sample = {
  values : (string, float) Hashtbl.t;
  hists : (string, (float * int) list) Hashtbl.t;
}

let parse_le s =
  if s = "+Inf" then Some infinity else float_of_string_opt s

let parse_metrics lines =
  let values = Hashtbl.create 64 in
  let hists = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | None -> ()
        | Some sp -> (
          let name = String.sub line 0 sp in
          let value =
            float_of_string_opt
              (String.sub line (sp + 1) (String.length line - sp - 1))
          in
          match value with
          | None -> ()
          | Some v -> (
            match String.index_opt name '{' with
            | None -> Hashtbl.replace values name v
            | Some brace ->
              let base = String.sub name 0 brace in
              let suffix = "_bucket" in
              if String.length base > String.length suffix
                 && String.sub base
                      (String.length base - String.length suffix)
                      (String.length suffix)
                    = suffix
              then begin
                let hist =
                  String.sub base 0 (String.length base - String.length suffix)
                in
                let labels =
                  String.sub name (brace + 1) (String.length name - brace - 1)
                in
                let le_prefix = "le=\"" in
                match
                  if String.starts_with ~prefix:le_prefix labels then
                    match String.index_opt labels '}' with
                    | Some close when close >= String.length le_prefix + 1 ->
                      parse_le
                        (String.sub labels (String.length le_prefix)
                           (close - String.length le_prefix - 1))
                    | _ -> None
                  else None
                with
                | None -> ()
                | Some le ->
                  let prev =
                    Option.value (Hashtbl.find_opt hists hist) ~default:[]
                  in
                  Hashtbl.replace hists hist ((le, int_of_float v) :: prev)
              end)))
    lines;
  (* buckets arrived in ascending le order and were prepended *)
  Hashtbl.filter_map_inplace (fun _ b -> Some (List.rev b)) hists;
  { values; hists }

(* Quantile over cumulative exposition buckets, same convention as
   [Obda_obs.Histogram.quantile]: upper bound of the bucket holding the
   rank-[ceil (q * total)] smallest value. *)
let sample_quantile sample name q =
  match Hashtbl.find_opt sample.hists name with
  | None | Some [] -> None
  | Some buckets ->
    let total =
      List.fold_left (fun acc (_, cum) -> max acc cum) 0 buckets
    in
    if total = 0 then None
    else begin
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
      List.find_map
        (fun (le, cum) -> if cum >= rank then Some le else None)
        buckets
    end

let top_cmd =
  let module Service = Obda_service in
  let run socket tcp interval count =
    handle_errors (fun () ->
        let address =
          match server_address socket tcp with
          | Some a -> a
          | None ->
            prerr_endline "obda: top needs --socket or --tcp";
            exit 124
        in
        if interval <= 0. then begin
          prerr_endline "obda: --interval must be > 0";
          exit 124
        end;
        (* a fresh connection per poll: a shed or idle-closed connection
           never wedges the dashboard *)
        let poll () =
          let client =
            try Service.Client.connect address
            with Unix.Unix_error (e, _, _) ->
              Printf.eprintf "obda: cannot connect to %s: %s\n"
                (Service.Server.address_string address)
                (Unix.error_message e);
              exit 1
          in
          Fun.protect
            ~finally:(fun () -> Service.Client.close client)
            (fun () ->
              (* PING first: it is admission-exempt, so it distinguishes
                 "alive but saturated" (pong, then possibly an overloaded
                 METRICS) from "dead" (no pong at all) *)
              (match Service.Client.request client "PING" with
              | pong :: _ when String.starts_with ~prefix:"OK pong" pong -> ()
              | pong :: _ ->
                Printf.eprintf "obda: liveness probe failed: %s\n" pong;
                exit 1
              | [] ->
                prerr_endline "obda: no pong (server gone?)";
                exit 1);
              match Service.Client.request client "METRICS" with
              | first :: rest
                when String.starts_with ~prefix:"OK metrics=" first ->
                parse_metrics rest
              | first :: _ ->
                Printf.eprintf "obda: unexpected METRICS response: %s\n" first;
                exit 1
              | [] ->
                prerr_endline "obda: empty METRICS response (server gone?)";
                exit 1)
        in
        let fv sample name = Hashtbl.find_opt sample.values name in
        let fmt_count sample name =
          match fv sample name with
          | Some v -> Printf.sprintf "%.0f" v
          | None -> "-"
        in
        let fmt_q sample name q =
          match sample_quantile sample name q with
          | Some le when le = infinity -> "    >max"
          | Some le -> Printf.sprintf "%8.3f" (le *. 1000.)
          | None -> "       -"
        in
        let render ~prev ~dt sample =
          let served = fv sample "obda_server_requests_served" in
          let rate =
            match (served, prev, dt) with
            | Some now, Some prev_sample, Some dt when dt > 0. -> (
              match fv prev_sample "obda_server_requests_served" with
              | Some before when now >= before ->
                Printf.sprintf "%.1f req/s" ((now -. before) /. dt)
              | _ -> "-")
            | Some now, None, _ -> (
              (* first sample: average over the server's whole uptime *)
              match fv sample "obda_server_uptime_s" with
              | Some up when up > 0. ->
                Printf.sprintf "%.1f req/s avg" (now /. up)
              | _ -> "-")
            | _ -> "-"
          in
          let hit_rate =
            match
              (fv sample "obda_cache_hits", fv sample "obda_cache_misses")
            with
            | Some h, Some m when h +. m > 0. ->
              Printf.sprintf "%.1f%%" (100. *. h /. (h +. m))
            | _ -> "-"
          in
          let revisions =
            match
              ( fv sample "obda_server_snapshot_revisions_lo",
                fv sample "obda_server_snapshot_revisions_hi" )
            with
            | Some lo, Some hi -> Printf.sprintf "%.0f-%.0f" lo hi
            | _ -> "-"
          in
          Printf.printf "obda top — %s    uptime %ss\n"
            (Service.Server.address_string address)
            (match fv sample "obda_server_uptime_s" with
            | Some v -> Printf.sprintf "%.1f" v
            | None -> "-");
          Printf.printf
            "requests     served %-8s in-flight %-6s shed %-6s %s\n"
            (fmt_count sample "obda_server_requests_served")
            (fmt_count sample "obda_server_requests_inflight")
            (fmt_count sample "obda_server_requests_shed")
            rate;
          Printf.printf
            "connections  accepted %-6s active %-9s shed %s\n"
            (fmt_count sample "obda_server_connections_accepted")
            (fmt_count sample "obda_server_connections_active")
            (fmt_count sample "obda_server_connections_shed");
          Printf.printf
            "cache        hits %-10s misses %-9s hit-rate %s\n"
            (fmt_count sample "obda_cache_hits")
            (fmt_count sample "obda_cache_misses")
            hit_rate;
          Printf.printf
            "data         atoms %-9s revision %-7s snapshots %s\n"
            (fmt_count sample "obda_data_atoms")
            (fmt_count sample "obda_data_revision")
            revisions;
          Printf.printf "latency (ms)        p50      p95      p99\n";
          (* the whole-server row comes from the STATS quantile gauges
             (the merged per-connection histogram is not in the registry);
             per-verb rows from the registry histogram buckets *)
          let gauge_ms name =
            match fv sample name with
            | Some v -> Printf.sprintf "%8.3f" v
            | None -> "       -"
          in
          Printf.printf "  %-12s %s %s %s\n" "server"
            (gauge_ms "obda_server_p50_ms")
            (gauge_ms "obda_server_p95_ms")
            (gauge_ms "obda_server_p99_ms");
          List.iter
            (fun (label, hist) ->
              Printf.printf "  %-12s %s %s %s\n" label
                (fmt_q sample hist 0.50) (fmt_q sample hist 0.95)
                (fmt_q sample hist 0.99))
            [
              ("ANSWER", "obda_serve_answer_latency");
              ("BATCH", "obda_serve_batch_latency");
              ("ASSERT/RETR", "obda_serve_mutate_latency");
            ];
          flush stdout
        in
        let rec loop n prev t_prev =
          let sample = poll () in
          let now = Unix.gettimeofday () in
          let dt = Option.map (fun t -> now -. t) t_prev in
          (* clear between refreshes, never before the only render *)
          if prev <> None then print_string "\027[2J\027[H";
          render ~prev ~dt sample;
          if count = 0 || n < count then begin
            Unix.sleepf interval;
            loop (n + 1) (Some sample) (Some now)
          end
        in
        loop 1 None None)
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh period between METRICS polls (default 2).")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Render $(docv) samples and exit; 0 (the default) refreshes \
             until interrupted.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running obda serve socket: polls the METRICS \
          verb and renders request/connection/shed counts, request rate, \
          cache hit-rate, snapshot revision span and per-verb latency \
          quantiles (from the server's merged histograms).  Requires \
          --socket or --tcp.")
    Term.(const run $ socket_arg $ tcp_arg $ interval $ count)

let recover_cmd =
  let module Service = Obda_service in
  let run dir repair inject telemetry =
    handle_errors (fun () ->
        init_telemetry telemetry;
        arm_faults inject;
        let r = Service.Wal.recover ~repair dir in
        List.iter
          (fun warning -> Printf.eprintf "obda: wal: %s\n%!" warning)
          r.Service.Wal.warnings;
        Printf.printf "data dir:    %s\n" dir;
        Printf.printf "checkpoint:  %s\n"
          (match r.Service.Wal.checkpoint_seq with
          | Some seq -> Printf.sprintf "seq %d" seq
          | None -> "none");
        Printf.printf "replayed:    %d record%s\n" r.Service.Wal.replayed
          (if r.Service.Wal.replayed = 1 then "" else "s");
        if r.Service.Wal.skipped > 0 then
          Printf.printf "skipped:     %d record%s at or below the checkpoint\n"
            r.Service.Wal.skipped
            (if r.Service.Wal.skipped = 1 then "" else "s");
        (match r.Service.Wal.torn_bytes with
        | 0 -> ()
        | n when repair ->
          Printf.printf "torn tail:   %d byte%s truncated\n" n
            (if n = 1 then "" else "s")
        | n ->
          Printf.printf
            "torn tail:   %d byte%s (crash mid-append; --repair truncates, \
             obda serve repairs on start)\n"
            n
            (if n = 1 then "" else "s"));
        Printf.printf "last seq:    %d\n" r.Service.Wal.last_seq;
        Printf.printf "state:       %d atoms, revision %d, ontology %s, %d \
                       prepared quer%s\n"
          (Obda_data.Abox.num_atoms r.Service.Wal.abox)
          (Obda_data.Abox.revision r.Service.Wal.abox)
          (match r.Service.Wal.tbox with Some _ -> "yes" | None -> "no")
          (List.length r.Service.Wal.prepared)
          (if List.length r.Service.Wal.prepared = 1 then "y" else "ies"))
  in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"The --data-dir of an obda serve session.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Physically truncate a torn final record from the log (what \
             obda serve does on start); without it the tear is only \
             reported.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Inspect a durable session directory without starting a server: \
          validate the checkpoints and write-ahead log, report what a \
          restart would restore (checkpoint sequence, replayed records, \
          torn-tail bytes) and exit non-zero on interior corruption.  A \
          dry run by default; --repair truncates a torn final record.")
    Term.(const run $ dir $ repair $ inject_term $ telemetry_term)

let chaos_list_cmd =
  let run () =
    Printf.printf "# %-26s %-8s %-15s %s\n" "site" "layer" "class" "exit";
    List.iter
      (fun s ->
        Printf.printf "%-28s %-8s %-15s %d\n" (Fault.site_name s)
          (Fault.site_layer s)
          (Fault.cls_name (Fault.site_default s))
          (Fault.cls_exit_code (Fault.site_default s)))
      (Fault.sites ())
  in
  Cmd.v
    (Cmd.info "chaos-list"
       ~doc:
         "List the registered fault-injection sites: plan name, pipeline \
          layer, default error class and the exit code an injected fault of \
          that class produces.")
    Term.(const run $ const ())

(* Terminate through [exit] so the [at_exit] teardown still flushes the
   telemetry sinks; 130/143/141 are the conventional 128+signal codes.
   (SIGPIPE usually surfaces as [Sys_error] first — see [is_broken_pipe] —
   but an explicit handler covers writes the runtime retries.) *)
let install_signal_handlers () =
  List.iter
    (fun (signal, code) ->
      try Sys.set_signal signal (Sys.Signal_handle (fun _ -> exit code))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, 130); (Sys.sigterm, 143); (Sys.sigpipe, 141) ]

let main =
  Cmd.group
    (Cmd.info "obda" ~version:"1.0.0"
       ~doc:
         "Optimal NDL-rewritings for OWL 2 QL ontology-mediated queries \
          (Bienvenu et al., PODS 2017).")
    [
      classify_cmd;
      rewrite_cmd;
      answer_cmd;
      stats_cmd;
      gen_data_cmd;
      chase_cmd;
      serve_cmd;
      client_cmd;
      top_cmd;
      recover_cmd;
      chaos_list_cmd;
    ]

let () =
  install_signal_handlers ();
  exit (Cmd.eval main)
