(** The typed error taxonomy of the OBDA pipeline.

    Every failure the public API can signal is one of the constructors of
    [t], carried by the single exception [Obda_error].  Callers that need
    structured recovery (the CLI, the fallback chain in [Omq], the bench
    harness) match on the payload; nothing in the pipeline raises bare
    [Failure]/[Invalid_argument] for an input-dependent condition. *)

type resource =
  | Wall_clock  (** [spent]/[limit] in milliseconds *)
  | Steps  (** work units counted by [Budget.step] *)
  | Size  (** output atoms/tuples counted by [Budget.grow] *)

type location = {
  file : string option;
  line : int;  (** 1-based; 0 when the line is unknown (whole-file errors) *)
  column : int option;  (** 1-based *)
}

type t =
  | Parse_error of {
      loc : location;
      msg : string;
      source_line : string option;  (** the offending input line, verbatim *)
    }
  | Not_applicable of { algorithm : string; reason : string }
      (** the algorithm's side conditions (tree shape, finite depth, bounded
          type space…) do not hold for this OMQ *)
  | Budget_exhausted of { resource : resource; spent : int; limit : int }
  | Inconsistent_data of { reason : string }
  | Internal of string

exception Obda_error of t

val parse_error :
  ?file:string ->
  ?column:int ->
  ?source_line:string ->
  line:int ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Raise [Obda_error (Parse_error _)] with a formatted message. *)

val not_applicable :
  algorithm:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val internal : ('a, Format.formatter, unit, 'b) format4 -> 'a

val exit_code : t -> int
(** The CLI exit code of each class: parse = 2, not applicable = 3, budget
    exhausted = 4, inconsistent data = 5, internal = 1. *)

val class_name : t -> string
(** Short class slug: ["parse"], ["not-applicable"], ["budget"],
    ["inconsistent"], ["internal"]. *)

val resource_name : resource -> string

val to_string : t -> string
(** Machine-readable one-line rendering:
    [class=parse file=q.cq line=3 column=7 msg="unexpected character '%'"]. *)

val pp : Format.formatter -> t -> unit

val of_exn : exn -> t option
(** Map an arbitrary exception onto the taxonomy: [Obda_error] payloads pass
    through, [Invalid_argument]/[Failure] become [Internal], everything else
    is [None]. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching everything [of_exn] recognises. *)
