type cls = Parse | Not_applicable | Budget | Inconsistent | Internal

let cls_name = function
  | Parse -> "parse"
  | Not_applicable -> "not-applicable"
  | Budget -> "budget"
  | Inconsistent -> "inconsistent"
  | Internal -> "internal"

let cls_of_string s =
  match String.lowercase_ascii s with
  | "parse" -> Some Parse
  | "not-applicable" | "not_applicable" -> Some Not_applicable
  | "budget" -> Some Budget
  | "inconsistent" -> Some Inconsistent
  | "internal" -> Some Internal
  | _ -> None

let cls_exit_code = function
  | Parse -> 2
  | Not_applicable -> 3
  | Budget -> 4
  | Inconsistent -> 5
  | Internal -> 1

type site = { id : int; name : string; layer : string; default : cls }

let site_name s = s.name
let site_layer s = s.layer
let site_default s = s.default

(* The registry is static and lives entirely in this module: a site exists
   whether or not the instrumented module was ever linked, so chaos-list and
   the exhaustiveness check in the chaos suite see the full set. *)
let registry = ref []
let n_sites = ref 0

let register ~layer ~default name =
  let s = { id = !n_sites; name; layer; default } in
  incr n_sites;
  registry := s :: !registry;
  s

let chase_step = register ~layer:"chase" ~default:Budget "chase.step"
let chase_null = register ~layer:"chase" ~default:Budget "chase.null"
let rewrite_tw_emit = register ~layer:"rewrite" ~default:Budget "rewrite.tw.emit"
let rewrite_lin_emit =
  register ~layer:"rewrite" ~default:Budget "rewrite.lin.emit"
let rewrite_log_emit =
  register ~layer:"rewrite" ~default:Budget "rewrite.log.emit"
let rewrite_ucq_emit =
  register ~layer:"rewrite" ~default:Budget "rewrite.ucq.emit"
let rewrite_ucq_condensed_emit =
  register ~layer:"rewrite" ~default:Budget "rewrite.ucq_condensed.emit"
let rewrite_presto_emit =
  register ~layer:"rewrite" ~default:Budget "rewrite.presto.emit"
let eval_ndl_round = register ~layer:"eval" ~default:Budget "eval.ndl.round"
let eval_linear_round =
  register ~layer:"eval" ~default:Budget "eval.linear.round"
let parse_tbox = register ~layer:"parse" ~default:Parse "parse.tbox"
let parse_cq = register ~layer:"parse" ~default:Parse "parse.cq"
let parse_abox = register ~layer:"parse" ~default:Parse "parse.abox"
let obs_sink_write = register ~layer:"obs" ~default:Internal "obs.sink.write"
let service_request = register ~layer:"service" ~default:Budget "service.request"
let service_cache = register ~layer:"service" ~default:Internal "service.cache"
let serve_accept = register ~layer:"serve" ~default:Internal "serve.accept"
let serve_connection =
  register ~layer:"serve" ~default:Internal "serve.connection"
let abox_snapshot = register ~layer:"data" ~default:Internal "abox.snapshot"
let obs_export = register ~layer:"obs" ~default:Internal "obs.export"
let wal_append = register ~layer:"wal" ~default:Internal "wal.append"
let wal_sync = register ~layer:"wal" ~default:Internal "wal.sync"
let wal_recover = register ~layer:"wal" ~default:Internal "wal.recover"

let sites () = List.rev !registry
let find_site name = List.find_opt (fun s -> s.name = name) !registry

type selector = Nth of int | Every of int | Random of { prob : float; seed : int }
type directive = { site : site; selector : selector; fault : cls }

let directive ?fault site selector =
  { site; selector; fault = Option.value fault ~default:site.default }

(* ------------------------------------------------------------------ *)
(* Plan language *)

let selector_to_string = function
  | Nth n -> string_of_int n
  | Every k -> Printf.sprintf "every:%d" k
  | Random { prob; seed } -> Printf.sprintf "random:%g:%d" prob seed

let plan_to_string plan =
  String.concat ","
    (List.map
       (fun d ->
         let base =
           Printf.sprintf "%s@%s" d.site.name (selector_to_string d.selector)
         in
         if d.fault = d.site.default then base
         else base ^ "=" ^ cls_name d.fault)
       plan)

let parse_selector spec =
  let fail () = Error (Printf.sprintf "bad selector %S" spec) in
  let pos_int s =
    match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None
  in
  match String.split_on_char ':' spec with
  | [ n ] | [ "nth"; n ] -> (
    match pos_int n with Some n -> Ok (Nth n) | None -> fail ())
  | [ "every"; k ] -> (
    match pos_int k with Some k -> Ok (Every k) | None -> fail ())
  | "random" :: p :: rest -> (
    let seed =
      match rest with
      | [] -> Some 0
      | [ s ] -> int_of_string_opt s
      | _ -> None
    in
    match (float_of_string_opt p, seed) with
    | Some prob, Some seed when prob >= 0. && prob <= 1. ->
      Ok (Random { prob; seed })
    | _ -> fail ())
  | _ -> fail ()

let parse_directive s =
  let ( let* ) = Result.bind in
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "missing '@' in directive %S" s)
  | Some i ->
    let name = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let spec, cls_part =
      match String.index_opt rest '=' with
      | None -> (rest, None)
      | Some j ->
        ( String.sub rest 0 j,
          Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
    in
    let* site =
      match find_site name with
      | Some site -> Ok site
      | None -> Error (Printf.sprintf "unknown fault site %S" name)
    in
    let* selector = parse_selector spec in
    let* fault =
      match cls_part with
      | None -> Ok site.default
      | Some c -> (
        match cls_of_string c with
        | Some cls -> Ok cls
        | None -> Error (Printf.sprintf "unknown error class %S" c))
    in
    Ok { site; selector; fault }

let parse_plan s =
  let ( let* ) = Result.bind in
  let parts =
    List.filter
      (fun p -> p <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  if parts = [] then Error "empty plan"
  else
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
        let* d = parse_directive p in
        if List.exists (fun d' -> d'.site.id = d.site.id) acc then
          Error
            (Printf.sprintf "duplicate directive for site %S" d.site.name)
        else loop (d :: acc) rest
    in
    loop [] parts

(* ------------------------------------------------------------------ *)
(* Arming and firing *)

type state = {
  by_site : directive option array;
  rngs : Random.State.t option array;
  counts : int array;
  mutable fired_rev : (site * int) list;
}

(* single global slot, same shape as [Obs.current]: the disabled path of
   [hit] is one load and one branch *)
let current : state option ref = ref None

let arm plan =
  let n = !n_sites in
  let st =
    {
      by_site = Array.make n None;
      rngs = Array.make n None;
      counts = Array.make n 0;
      fired_rev = [];
    }
  in
  List.iter
    (fun d ->
      st.by_site.(d.site.id) <- Some d;
      match d.selector with
      | Random { seed; _ } ->
        st.rngs.(d.site.id) <- Some (Random.State.make [| seed |])
      | Nth _ | Every _ -> ())
    plan;
  current := Some st

let disarm () = current := None
let armed () = !current <> None

let activations site =
  match !current with None -> 0 | Some st -> st.counts.(site.id)

let fired () =
  match !current with None -> [] | Some st -> List.rev st.fired_rev

let injected_error site activation = function
  | Budget ->
    (* raised on Steps so the fault is transient for the retry policy *)
    Error.Budget_exhausted
      { resource = Error.Steps; spent = activation; limit = activation - 1 }
  | Internal ->
    Error.Internal
      (Printf.sprintf "fault injected at %s activation %d" site.name
         activation)
  | Parse ->
    Error.Parse_error
      {
        loc = { Error.file = None; line = 0; column = None };
        msg =
          Printf.sprintf "fault injected at %s activation %d" site.name
            activation;
        source_line = None;
      }
  | Inconsistent ->
    Error.Inconsistent_data
      {
        reason =
          Printf.sprintf "fault injected at %s activation %d" site.name
            activation;
      }
  | Not_applicable ->
    Error.Not_applicable
      {
        algorithm = site.name;
        reason = Printf.sprintf "fault injected at activation %d" activation;
      }

let hit_armed st site =
  let n = st.counts.(site.id) + 1 in
  st.counts.(site.id) <- n;
  match st.by_site.(site.id) with
  | None -> ()
  | Some d ->
    let fire =
      match d.selector with
      | Nth k -> n = k
      | Every k -> n mod k = 0
      | Random { prob; _ } -> (
        (* one draw per activation, fired or not: the PRNG stream — hence
           the whole run — is a pure function of the seed *)
        match st.rngs.(site.id) with
        | Some rng -> Random.State.float rng 1.0 < prob
        | None -> false)
    in
    if fire then begin
      st.fired_rev <- (site, n) :: st.fired_rev;
      raise (Error.Obda_error (injected_error site n d.fault))
    end

let hit site =
  match !current with None -> () | Some st -> hit_armed st site
