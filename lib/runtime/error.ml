type resource = Wall_clock | Steps | Size

type location = { file : string option; line : int; column : int option }

type t =
  | Parse_error of {
      loc : location;
      msg : string;
      source_line : string option;
    }
  | Not_applicable of { algorithm : string; reason : string }
  | Budget_exhausted of { resource : resource; spent : int; limit : int }
  | Inconsistent_data of { reason : string }
  | Internal of string

exception Obda_error of t

let parse_error ?file ?column ?source_line ~line fmt =
  Format.kasprintf
    (fun msg ->
      raise
        (Obda_error
           (Parse_error { loc = { file; line; column }; msg; source_line })))
    fmt

let not_applicable ~algorithm fmt =
  Format.kasprintf
    (fun reason -> raise (Obda_error (Not_applicable { algorithm; reason })))
    fmt

let internal fmt =
  Format.kasprintf (fun msg -> raise (Obda_error (Internal msg))) fmt

let exit_code = function
  | Parse_error _ -> 2
  | Not_applicable _ -> 3
  | Budget_exhausted _ -> 4
  | Inconsistent_data _ -> 5
  | Internal _ -> 1

let class_name = function
  | Parse_error _ -> "parse"
  | Not_applicable _ -> "not-applicable"
  | Budget_exhausted _ -> "budget"
  | Inconsistent_data _ -> "inconsistent"
  | Internal _ -> "internal"

let resource_name = function
  | Wall_clock -> "wall-clock-ms"
  | Steps -> "steps"
  | Size -> "size"

let to_string e =
  match e with
  | Parse_error { loc; msg; _ } ->
    let file = match loc.file with Some f -> Printf.sprintf " file=%s" f | None -> "" in
    let line = if loc.line > 0 then Printf.sprintf " line=%d" loc.line else "" in
    let col =
      match loc.column with Some c -> Printf.sprintf " column=%d" c | None -> ""
    in
    Printf.sprintf "class=parse%s%s%s msg=%S" file line col msg
  | Not_applicable { algorithm; reason } ->
    Printf.sprintf "class=not-applicable algorithm=%s reason=%S" algorithm reason
  | Budget_exhausted { resource; spent; limit } ->
    Printf.sprintf "class=budget resource=%s spent=%d limit=%d"
      (resource_name resource) spent limit
  | Inconsistent_data { reason } ->
    Printf.sprintf "class=inconsistent reason=%S" reason
  | Internal msg -> Printf.sprintf "class=internal msg=%S" msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let of_exn = function
  | Obda_error e -> Some e
  | Invalid_argument msg | Failure msg -> Some (Internal msg)
  | _ -> None

let protect f =
  try Ok (f ())
  with exn -> ( match of_exn exn with Some e -> Error e | None -> raise exn)
