(* A small reusable pool of worker domains.

   Spawning a domain costs tens of microseconds, far too much to pay per
   evaluation stratum, so the pool keeps [jobs - 1] domains parked on a
   condition variable and reuses them across [run] calls.  The caller
   participates as worker 0, which keeps [jobs = 1] exactly the sequential
   engine: no domains are spawned and [run t f] is just [f 0]. *)

type cell =
  | Idle
  | Task of (unit -> unit)
  | Done of exn option
  | Stop

type worker = {
  m : Mutex.t;
  cv : Condition.t;
  mutable cell : cell;
}

type t = {
  jobs : int;
  workers : worker array;  (* length jobs - 1; worker i runs index i + 1 *)
  handles : unit Domain.t array;
  mutable closed : bool;
}

let worker_loop w =
  let rec loop () =
    Mutex.lock w.m;
    let rec wait () =
      match w.cell with
      | Task _ | Stop -> ()
      | Idle | Done _ ->
        Condition.wait w.cv w.m;
        wait ()
    in
    wait ();
    match w.cell with
    | Stop -> Mutex.unlock w.m
    | Task f ->
      Mutex.unlock w.m;
      let outcome = match f () with () -> None | exception e -> Some e in
      Mutex.lock w.m;
      w.cell <- Done outcome;
      Condition.broadcast w.cv;
      Mutex.unlock w.m;
      loop ()
    | Idle | Done _ -> assert false
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let workers =
    Array.init (jobs - 1) (fun _ ->
        { m = Mutex.create (); cv = Condition.create (); cell = Idle })
  in
  let handles =
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers
  in
  { jobs; workers; handles; closed = false }

let jobs t = t.jobs

(* Barrier hooks: run on every participating domain (caller included)
   after its task body finishes, before [run] returns — the merge point
   for domain-local telemetry shards (Obs.Histogram registers its drain
   here at module-initialisation time).  Hooks run even when the task
   raised, so partially recorded telemetry still merges; a hook must be
   cheap and its own exceptions are swallowed. *)
let barrier_hooks : (unit -> unit) list ref = ref []
let on_barrier f = barrier_hooks := f :: !barrier_hooks
let run_barrier_hooks () =
  List.iter (fun f -> try f () with _ -> ()) !barrier_hooks

let submit w f =
  Mutex.lock w.m;
  (match w.cell with
  | Idle -> w.cell <- Task f
  | Task _ | Done _ | Stop -> assert false);
  Condition.broadcast w.cv;
  Mutex.unlock w.m

let await w =
  Mutex.lock w.m;
  let rec wait () =
    match w.cell with
    | Done outcome ->
      w.cell <- Idle;
      outcome
    | Idle | Task _ ->
      Condition.wait w.cv w.m;
      wait ()
    | Stop -> assert false
  in
  let outcome = wait () in
  Mutex.unlock w.m;
  outcome

(* Run one worker's share, then its barrier hooks — whether or not the
   share raised, so telemetry shards merge even on a failing run. *)
let run_share f i =
  match f i with
  | () ->
    run_barrier_hooks ();
    None
  | exception e ->
    run_barrier_hooks ();
    Some e

let run t f =
  if t.closed then invalid_arg "Pool.run: pool is shut down";
  if t.jobs = 1 then (
    match run_share f 0 with Some e -> raise e | None -> ())
  else begin
    Array.iteri
      (fun i w ->
        submit w (fun () ->
            match run_share f (i + 1) with
            | Some e -> raise e
            | None -> ()))
      t.workers;
    let own = run_share f 0 in
    (* always drain every worker, even if some failed, so the pool is
       reusable; report the first failure by worker index (caller first) *)
    let outcomes = Array.map await t.workers in
    match own with
    | Some e -> raise e
    | None -> (
      match Array.fold_left (fun acc o -> match acc with Some _ -> acc | None -> o) None outcomes with
      | Some e -> raise e
      | None -> ())
  end

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun w ->
        Mutex.lock w.m;
        w.cell <- Stop;
        Condition.broadcast w.cv;
        Mutex.unlock w.m)
      t.workers;
    Array.iter Domain.join t.handles
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
