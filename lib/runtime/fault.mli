(** Deterministic fault injection for the rewrite/chase/eval pipeline.

    Every place where the pipeline can legitimately fail under resource
    pressure is a named {e fault site}: the chase apply-step and null
    creation, the per-rule emission point of each of the six rewriters, the
    round boundaries of both evaluators, the three parser entry points, the
    trace-sink write, and the query service's request dispatch and
    rewriting-cache lookup.  A site is a [Fault.hit] call guarded — exactly
    like the [Obs] global-sink branch — by a single load-and-branch on
    {!armed}, so the machinery costs nothing when no plan is armed.

    A {e plan} selects which activation of which site raises which error
    class.  Plans are deterministic: the [Nth]/[Every] selectors count
    activations, and the seeded [Random] selector draws from its own
    [Random.State], so a run is replayed exactly by re-arming the same plan
    (the activations that actually fired are recorded in {!fired}).

    Injected faults are ordinary {!Error.Obda_error} exceptions of the
    selected class, so they travel through the very same recovery paths —
    budget handling, fallback chain, CLI exit codes — as organic failures.
    This is what the chaos suite ([test/test_chaos.ml]) verifies site by
    site. *)

(** The error class an injected fault raises, mirroring {!Error.t}. *)
type cls = Parse | Not_applicable | Budget | Inconsistent | Internal

val cls_name : cls -> string
(** ["parse"], ["not-applicable"], ["budget"], ["inconsistent"],
    ["internal"] — the same slugs as {!Error.class_name}. *)

val cls_of_string : string -> cls option
(** Inverse of {!cls_name}; also accepts the bare constructor spelling in
    any case. *)

val cls_exit_code : cls -> int
(** The CLI exit code of the class ({!Error.exit_code}). *)

(** {1 Sites} *)

type site
(** A registered fault site.  The registry is static: all sites are declared
    below, so [chaos-list] and the chaos suite's exhaustiveness check never
    depend on which modules happen to have been initialised. *)

val site_name : site -> string
(** Dotted name used in plans, e.g. ["chase.step"]. *)

val site_layer : site -> string
(** The pipeline layer owning the site: ["chase"], ["rewrite"], ["eval"],
    ["parse"], ["obs"], ["service"], ["serve"], ["data"] or ["wal"]. *)

val site_default : site -> cls
(** The class a plan directive injects when it does not name one. *)

val sites : unit -> site list
(** All registered sites, in registration order. *)

val find_site : string -> site option

val chase_step : site
val chase_null : site
val rewrite_tw_emit : site
val rewrite_lin_emit : site
val rewrite_log_emit : site
val rewrite_ucq_emit : site
val rewrite_ucq_condensed_emit : site
val rewrite_presto_emit : site
val eval_ndl_round : site
val eval_linear_round : site
val parse_tbox : site
val parse_cq : site
val parse_abox : site
val obs_sink_write : site

val service_request : site
(** Guard at the top of every serve-loop request dispatch; an injected
    fault there surfaces as an in-protocol [ERR] line, not a process
    exit — the session must stay usable. *)

val service_cache : site
(** Guard on every rewriting-cache lookup of the query service. *)

val serve_accept : site
(** Guard in the network server's accept loop, hit once per accepted
    connection before it is admitted: an injected fault sheds exactly that
    connection (one [ERR] line, then close) and the listener keeps
    accepting. *)

val serve_connection : site
(** Guard at the top of every connection handler: an injected fault
    terminates exactly that connection with an [ERR] line — neighbouring
    connections and the listener are unaffected. *)

val abox_snapshot : site
(** Guard on every copy-on-write ABox freeze ({!Obda_data.Abox.snapshot}
    via the session): an injected fault surfaces as the in-protocol [ERR]
    of the [ANSWER]/[BATCH] that requested the snapshot, leaving the
    session usable. *)

val obs_export : site
(** Guard on every METRICS exposition render: an injected fault surfaces
    as the in-protocol [ERR] of the [METRICS] request that asked for it,
    leaving the session and connection usable. *)

val wal_append : site
(** Guard on every write-ahead-log record append (before the record's
    bytes reach the log): an injected fault surfaces as the in-protocol
    [ERR] of the mutation that would have been logged, so the client never
    sees an [OK] for an unlogged mutation — the acknowledged prefix stays
    exactly the recoverable prefix. *)

val wal_sync : site
(** Guard on every WAL fsync (the [always] policy syncs per record, the
    [interval] policy per elapsed window): an injected fault fails the
    mutation whose append requested the sync, leaving the session usable. *)

val wal_recover : site
(** Guard at the top of WAL/checkpoint recovery ([obda serve --data-dir],
    [obda recover]): an injected fault aborts startup with the typed error
    and its exit code, exactly like organic corruption that cannot be
    truncated away. *)

(** {1 Plans} *)

type selector =
  | Nth of int  (** fire on exactly the [n]-th activation (1-based) *)
  | Every of int  (** fire on every [k]-th activation *)
  | Random of { prob : float; seed : int }
      (** fire each activation independently with probability [prob], drawn
          from a dedicated PRNG seeded with [seed] *)

type directive = { site : site; selector : selector; fault : cls }

val directive : ?fault:cls -> site -> selector -> directive
(** [fault] defaults to the site's {!site_default}. *)

val parse_plan : string -> (directive list, string) result
(** Parse the [--inject] plan language: a comma-separated list of
    [SITE@SPEC] or [SITE@SPEC=CLASS] directives where [SPEC] is
    - [N] or [nth:N] — the [Nth] selector;
    - [every:K] — the [Every] selector;
    - [random:P:SEED] (or [random:P], seed 0) — the [Random] selector.

    Example: ["chase.step@17=budget,parse.cq@1"].  At most one directive per
    site; a duplicate is a parse error. *)

val plan_to_string : directive list -> string
(** Re-render a plan in the [parse_plan] syntax (round-trips). *)

(** {1 Arming and firing} *)

val arm : directive list -> unit
(** Install a plan.  Resets all activation counters, PRNG states and the
    {!fired} record; replaces any previously armed plan. *)

val disarm : unit -> unit
(** Remove the armed plan, restoring the zero-cost disabled path.  Teardown
    code (telemetry flushes, [at_exit]) should disarm first so its own
    guarded sites cannot fire. *)

val armed : unit -> bool

val hit : site -> unit
(** The guard placed at each site.  When no plan is armed this is one load
    and one branch; when armed it counts the activation and, if the site's
    directive selects it, raises {!Error.Obda_error} with the directive's
    class (for [Budget]: [Budget_exhausted] on [Steps], so the injected
    fault is transient in the retry sense). *)

val activations : site -> int
(** Activations of [site] observed since the plan was armed ([0] when
    disarmed — counting only happens under an armed plan). *)

val fired : unit -> (site * int) list
(** The [(site, activation)] pairs that actually fired since {!arm}, in
    chronological order — with [Random] selectors this is the record that
    makes a run replayable as [site@N] directives. *)
