type t = {
  deadline : float option;  (* absolute, Unix.gettimeofday *)
  timeout_ms : int;  (* original allowance, for error reports *)
  max_steps : int option;
  max_size : int option;
  mutable steps : int;
  mutable size : int;
}

(* consult the wall clock only every [mask + 1] steps *)
let mask = 0x3FF

let create ?timeout ?max_steps ?max_size () =
  let deadline, timeout_ms =
    match timeout with
    | Some s -> (Some (Unix.gettimeofday () +. s), int_of_float (s *. 1000.))
    | None -> (None, 0)
  in
  { deadline; timeout_ms; max_steps; max_size; steps = 0; size = 0 }

let none =
  {
    deadline = None;
    timeout_ms = 0;
    max_steps = None;
    max_size = None;
    steps = 0;
    size = 0;
  }

let is_limited b =
  b.deadline <> None || b.max_steps <> None || b.max_size <> None

let sub ?timeout b =
  match timeout with
  | None -> { b with steps = 0; size = 0 }
  | Some s ->
    (* per-request wall allowance: the tighter of [now + s] and the
       parent's own deadline, so a request timeout can never extend the
       session's total time envelope *)
    let d = Unix.gettimeofday () +. s in
    let deadline, timeout_ms =
      match b.deadline with
      | Some pd when pd < d -> (Some pd, b.timeout_ms)
      | _ -> (Some d, int_of_float (s *. 1000.))
    in
    { b with deadline; timeout_ms; steps = 0; size = 0 }

let sub_scaled ~factor b =
  if factor < 1. then invalid_arg "Budget.sub_scaled: factor < 1";
  let scale limit =
    max 1 (int_of_float (Float.ceil (float_of_int limit *. factor)))
  in
  {
    b with
    steps = 0;
    size = 0;
    max_steps = Option.map scale b.max_steps;
    max_size = Option.map scale b.max_size;
  }

let slice ~parts b =
  if parts < 1 then invalid_arg "Budget.slice: parts < 1";
  let per limit = max 1 ((limit + parts - 1) / parts) in
  {
    b with
    steps = 0;
    size = 0;
    max_steps = Option.map per b.max_steps;
    max_size = Option.map per b.max_size;
  }

let absorb b ~from =
  if b != none then begin
    b.steps <- b.steps + from.steps;
    b.size <- b.size + from.size
  end

let exhausted resource spent limit =
  raise (Error.Obda_error (Error.Budget_exhausted { resource; spent; limit }))

let check_deadline b =
  match b.deadline with
  | Some d ->
    let now = Unix.gettimeofday () in
    if now > d then
      exhausted Error.Wall_clock
        (b.timeout_ms + int_of_float ((now -. d) *. 1000.))
        b.timeout_ms
  | None -> ()

let step b =
  b.steps <- b.steps + 1;
  (match b.max_steps with
  | Some limit -> if b.steps > limit then exhausted Error.Steps b.steps limit
  | None -> ());
  if b.steps land mask = 0 then check_deadline b

let grow ?(by = 1) b =
  b.size <- b.size + by;
  match b.max_size with
  | Some limit -> if b.size > limit then exhausted Error.Size b.size limit
  | None -> ()

let steps_spent b = b.steps
let size_spent b = b.size

type limits = {
  timeout : float option;
  max_steps : int option;
  max_size : int option;
}

let limits b =
  {
    timeout =
      (match b.deadline with
      | Some _ -> Some (float_of_int b.timeout_ms /. 1000.)
      | None -> None);
    max_steps = b.max_steps;
    max_size = b.max_size;
  }

let steps_remaining b =
  Option.map (fun limit -> max 0 (limit - b.steps)) b.max_steps

let size_remaining b =
  Option.map (fun limit -> max 0 (limit - b.size)) b.max_size

let wall_remaining b =
  Option.map (fun d -> Float.max 0. (d -. Unix.gettimeofday ())) b.deadline

let wall_exhausted b =
  match b.deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false
