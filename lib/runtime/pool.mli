(** A reusable pool of worker domains for data-parallel evaluation.

    A pool of [jobs] workers keeps [jobs - 1] domains parked between calls;
    the calling domain participates as worker 0.  With [jobs = 1] no
    domains exist at all and {!run} degenerates to a plain call — the
    guarantee behind "[--jobs 1] is byte-identical to the sequential
    engine".

    The pool makes no scheduling decisions: {!run} hands every worker its
    index and the caller is responsible for partitioning the work (the NDL
    evaluator hash-partitions the facts of each clause's first body atom).

    The symbol interner and the telemetry sink are mutex-guarded, so
    worker bodies may intern and observe (the network server's connection
    workers do both).  The fault registry's activation counters are still
    single-domain: deterministic fault plans require sequential request
    execution, and the evaluator keeps [observe:false] inside workers so
    per-clause counters stay exact. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] domains).  Raises
    [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f 0 .. f (jobs - 1)] concurrently, [f 0] on the
    calling domain, and returns when all have finished.  If any call
    raises, the remaining workers still run to completion (the pool stays
    reusable) and the first exception — caller's first, then by worker
    index — is re-raised.  Not reentrant: at most one [run] per pool at a
    time.  Raises [Invalid_argument] after {!shutdown}. *)

val on_barrier : (unit -> unit) -> unit
(** Register a process-wide barrier hook: {!run} calls it on every
    participating domain (the caller included) after that domain's share
    of the work finishes — even a share that raised — and before [run]
    returns.  This is the merge point for domain-local telemetry: the
    telemetry library registers its histogram-shard drain here at
    module-initialisation time.  Hooks must be cheap; exceptions they
    raise are swallowed. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run [f], and {!shutdown} even on exceptions. *)
