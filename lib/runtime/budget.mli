(** Per-request resource budgets.

    A budget is created once per request (CLI invocation, server request,
    bench row) and threaded through the hot loops of the pipeline: chase
    materialisation, clause generation in the rewriters, and NDL fixpoint
    evaluation.  Each loop iteration calls {!step}; each unit of output
    (clause, tuple, chase element) calls {!grow}.  Both are cheap: the step
    counter is a single increment, and the wall clock is only consulted
    every [2^10] steps.

    Exhaustion raises
    [Error.Obda_error (Error.Budget_exhausted _)] so a runaway rewriting or
    evaluation terminates promptly instead of hanging or exhausting
    memory. *)

type t

val create : ?timeout:float -> ?max_steps:int -> ?max_size:int -> unit -> t
(** [timeout] is a wall-clock allowance in seconds, converted to an absolute
    deadline at creation time.  Omitted resources are unlimited. *)

val none : t
(** A shared budget with no limits; threading [none] never raises.  This is
    the default of every [?budget] parameter in the pipeline. *)

val is_limited : t -> bool

val sub : ?timeout:float -> t -> t
(** A fresh budget for one attempt of a fallback chain: the step and size
    counters restart from zero with the same limits, but the absolute
    wall-clock deadline is shared with the parent, so retrying a request
    never extends its total time allowance.  With [timeout] (seconds) the
    sub-budget additionally gets a deadline of [now + timeout], clamped to
    the parent's own deadline — the per-request wall timeout of the
    network server. *)

val sub_scaled : factor:float -> t -> t
(** Like {!sub}, but the step and size {e limits} are multiplied by
    [factor] (rounded up, floor 1) — the escalated sub-budget of a retry.
    The wall-clock deadline is still shared verbatim, so escalation can
    never extend the request's total time allowance.  Raises
    [Invalid_argument] when [factor < 1]. *)

val slice : parts:int -> t -> t
(** A per-worker share of a budget: the step and size limits are divided by
    [parts] (rounded up, floor 1), the counters restart from zero, and the
    absolute wall-clock deadline is shared verbatim — so [parts] slices
    running concurrently are bounded, in aggregate, by (approximately) the
    parent's limits and exactly by its deadline.  Raises [Invalid_argument]
    when [parts < 1]. *)

val absorb : t -> from:t -> unit
(** Add the step and size counters spent in [from] (a slice or sub-budget)
    back into the parent, without enforcing the parent's limits — for
    reporting, so [steps_spent]/[size_spent] on the parent reflect work done
    by workers.  A no-op on {!none} (which is shared). *)

val step : t -> unit
(** Count one unit of work; raises [Budget_exhausted] when the step budget
    is spent or (checked every 1024 steps) the deadline has passed. *)

val grow : ?by:int -> t -> unit
(** Count [by] (default 1) units of output; raises [Budget_exhausted] when
    the output-size cap is exceeded. *)

val check_deadline : t -> unit
(** Consult the wall clock immediately (for coarse-grained loops whose
    iterations are individually expensive). *)

val steps_spent : t -> int
val size_spent : t -> int

(** {2 Introspection}

    Read-only views of a budget's configuration and headroom, for
    telemetry and the CLI [--stats] report. *)

type limits = {
  timeout : float option;  (** the original allowance in seconds *)
  max_steps : int option;
  max_size : int option;
}

val limits : t -> limits
(** The limits this budget was created with ([None] = unlimited). *)

val steps_remaining : t -> int option
(** Steps left before exhaustion; [None] when unlimited. *)

val size_remaining : t -> int option

val wall_remaining : t -> float option
(** Seconds until the deadline (clamped at 0); [None] when no timeout. *)

val wall_exhausted : t -> bool
(** [true] once the deadline has passed ([false] when no timeout): the gate
    that stops a retry policy from starting another attempt. *)
