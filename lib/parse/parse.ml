open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data

module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault

let fail line fmt = Error.parse_error ~line fmt
let fail_at line column fmt = Error.parse_error ~line ~column fmt

let lines_of s = String.split_on_char '\n' s

(* Annotate parse errors escaping [f] with the file name and the verbatim
   offending line, neither of which the line-level parsers know about.
   [Invalid_argument] from the AST smart constructors (duplicate answer
   variables in [Cq.make], clashing arities in [Tbox.make]…) is an input
   problem too, so it joins the parse class rather than escaping as an
   internal error. *)
let with_source ?file s f =
  try f () with
  | Error.Obda_error (Error.Parse_error { loc; msg; source_line }) ->
    let source_line =
      match source_line with
      | Some _ as sl -> sl
      | None ->
        (* line 0 marks a whole-file error: there is no line to quote (and
           [nth_opt] rejects the negative index) *)
        if loc.Error.line < 1 then None
        else (
          match List.nth_opt (lines_of s) (loc.Error.line - 1) with
          | Some l when String.trim l <> "" -> Some l
          | _ -> None)
    in
    let file = match loc.Error.file with Some _ as f -> f | None -> file in
    raise
      (Error.Obda_error
         (Error.Parse_error { loc = { loc with Error.file }; msg; source_line }))
  | Invalid_argument msg ->
    raise
      (Error.Obda_error
         (Error.Parse_error
            {
              loc = { Error.file; line = 0; column = None };
              msg;
              source_line = None;
            }))

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Ident of string
  | Lpar
  | Rpar
  | Comma
  | Arrow  (* -> *)
  | Larrow  (* <- *)
  | Underscore

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let tokenize_line line_no s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\r' | '.' -> go (i + 1) acc
      | '#' -> List.rev acc (* comment *)
      | '(' -> go (i + 1) (Lpar :: acc)
      | ')' -> go (i + 1) (Rpar :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '-' when i + 1 < n && s.[i + 1] = '>' -> go (i + 2) (Arrow :: acc)
      | '<' when i + 1 < n && s.[i + 1] = '-' -> go (i + 2) (Larrow :: acc)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        (* a trailing '-' belongs to the identifier (inverse role) unless it
           starts an arrow *)
        let j =
          if !j < n && s.[!j] = '-' && not (!j + 1 < n && s.[!j + 1] = '>') then
            !j + 1
          else !j
        in
        let word = String.sub s i (j - i) in
        let tok = if word = "_" then Underscore else Ident word in
        go j (tok :: acc)
      | c -> fail_at line_no (i + 1) "unexpected character '%c'" c
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Atom-level parsing *)

type parg = Var of string | Anon

type patom =
  | Punary of string * parg
  | Pbinary of string * parg * parg
  | Pfalse
  | Prefl of string
  | Pirrefl of string

(* parse one atom starting at the token list; returns (atom, rest) *)
let rec parse_atom line toks =
  match toks with
  | Ident "false" :: rest -> (Pfalse, rest)
  | Ident "refl" :: Ident r :: rest -> (Prefl r, rest)
  | Ident "irrefl" :: Ident r :: rest -> (Pirrefl r, rest)
  | Ident name :: Lpar :: rest -> (
    let arg line = function
      | Ident v -> Var v
      | Underscore -> Anon
      | _ -> fail line "expected a variable or _"
    in
    match rest with
    | a1 :: Rpar :: rest' -> (Punary (name, arg line a1), rest')
    | a1 :: Comma :: a2 :: Rpar :: rest' ->
      (Pbinary (name, arg line a1, arg line a2), rest')
    | _ -> fail line "malformed atom after %s(" name)
  | Ident name :: _ -> fail line "expected ( after %s" name
  | _ -> fail line "expected an atom"

and parse_atom_list line toks =
  let atom, rest = parse_atom line toks in
  match rest with
  | Comma :: rest' ->
    let atoms, rest'' = parse_atom_list line rest' in
    (atom :: atoms, rest'')
  | _ -> ([ atom ], rest)

(* ------------------------------------------------------------------ *)
(* Ontology *)

(* interpret a parsed atom as a basic concept at a given variable, if
   possible: A(x) ↦ (x, A); P(x,_) ↦ (x, ∃P); P(_,x) ↦ (x, ∃P⁻);
   top(x) ↦ ⊤ *)
let as_concept line = function
  | Punary ("top", Var x) -> Some (x, Concept.Top)
  | Punary (a, Var x) -> Some (x, Concept.Name (Symbol.intern a))
  | Pbinary (p, Var x, Anon) -> Some (x, Concept.Exists (Role.of_string p))
  | Pbinary (p, Anon, Var x) ->
    Some (x, Concept.Exists (Role.inv (Role.of_string p)))
  | Punary (_, Anon) -> fail line "underscore not allowed here"
  | _ -> None

let as_role = function
  | Pbinary (p, Var x, Var y) when x <> y -> Some (x, y, Role.of_string p)
  | _ -> None

let axiom_of_line line toks =
  let lhs_toks, rhs_toks =
    let rec split acc = function
      | Arrow :: rest -> (List.rev acc, Some rest)
      | t :: rest -> split (t :: acc) rest
      | [] -> (List.rev acc, None)
    in
    split [] toks
  in
  match rhs_toks with
  | None -> (
    (* keyword axioms *)
    match parse_atom line lhs_toks with
    | Prefl r, [] -> Tbox.Reflexive (Role.of_string r)
    | Pirrefl r, [] -> Tbox.Irreflexive (Role.of_string r)
    | _ -> fail line "expected an axiom of the form lhs -> rhs")
  | Some rhs_toks -> (
    let lhs, lrest = parse_atom_list line lhs_toks in
    if lrest <> [] then fail line "junk after left-hand side";
    let rhs, rrest = parse_atom_list line rhs_toks in
    if rrest <> [] then fail line "junk after right-hand side";
    match (lhs, rhs) with
    | [ l ], [ Pfalse ] -> (
      match l with
      | Pbinary (p, Var x, Var y) when x = y ->
        Tbox.Irreflexive (Role.of_string p)
      | _ -> fail line "only ρ(x,x) -> false is a single-atom ⊥-axiom")
    | [ l1; l2 ], [ Pfalse ] -> (
      match (as_concept line l1, as_concept line l2) with
      | Some (x1, c1), Some (x2, c2) when x1 = x2 -> Tbox.Concept_disj (c1, c2)
      | _ -> (
        match (as_role l1, as_role l2) with
        | Some (x1, y1, r1), Some (x2, y2, r2) when x1 = x2 && y1 = y2 ->
          Tbox.Role_disj (r1, r2)
        | Some (x1, y1, r1), Some (x2, y2, r2) when x1 = y2 && y1 = x2 ->
          Tbox.Role_disj (r1, Role.inv r2)
        | _ -> fail line "malformed disjointness axiom"))
    | [ l ], [ r ] -> (
      match (l, r) with
      | Pbinary (p, Var x, Var y), _ when x = y -> (
        match r with
        | Pfalse -> Tbox.Irreflexive (Role.of_string p)
        | _ -> fail line "ρ(x,x) may only imply false")
      | _, Pbinary (p, Var x, Var y) when x = y && l = Punary ("top", Var x) ->
        Tbox.Reflexive (Role.of_string p)
      | _ -> (
        match (as_role l, as_role r) with
        | Some (x1, y1, r1), Some (x2, y2, r2) when x1 = x2 && y1 = y2 ->
          Tbox.Role_incl (r1, r2)
        | Some (x1, y1, r1), Some (x2, y2, r2) when x1 = y2 && y1 = x2 ->
          Tbox.Role_incl (r1, Role.inv r2)
        | _ -> (
          match (as_concept line l, as_concept line r) with
          | Some (x1, c1), Some (x2, c2) when x1 = x2 -> Tbox.Concept_incl (c1, c2)
          | _ -> fail line "malformed axiom")))
    | _ -> fail line "malformed axiom")

let ontology_of_string ?file s =
  with_source ?file s @@ fun () ->
  Fault.hit Fault.parse_tbox;
  let axioms =
    List.concat
      (List.mapi
         (fun i line ->
           let toks = tokenize_line (i + 1) line in
           if toks = [] then [] else [ axiom_of_line (i + 1) toks ])
         (lines_of s))
  in
  Tbox.make axioms

(* ------------------------------------------------------------------ *)
(* Query *)

let query_of_string ?file s =
  with_source ?file s @@ fun () ->
  Fault.hit Fault.parse_cq;
  let toks =
    List.concat (List.mapi (fun i line -> tokenize_line (i + 1) line) (lines_of s))
  in
  let fresh_counter = ref 0 in
  let fresh () =
    incr fresh_counter;
    Printf.sprintf "_fresh%d" !fresh_counter
  in
  match toks with
  | Ident _ :: Lpar :: _ -> (
    (* head: q(x,y) <- ... ; also allow q() for Boolean *)
    let rec answer_vars acc = function
      | Rpar :: Larrow :: rest -> (List.rev acc, rest)
      | Ident v :: (Comma :: _ as rest) -> answer_vars (v :: acc) (List.tl rest)
      | Ident v :: rest -> answer_vars (v :: acc) rest
      | _ -> fail 1 "malformed query head"
    in
    let head_rest =
      match toks with _ :: Lpar :: rest -> rest | _ -> assert false
    in
    let answer, body_toks = answer_vars [] head_rest in
    let patoms, rest = parse_atom_list 1 body_toks in
    if rest <> [] then fail 1 "junk after the query body";
    let var = function Var v -> v | Anon -> fresh () in
    let atoms =
      List.map
        (function
          | Punary (a, z) -> Cq.Unary (Symbol.intern a, var z)
          | Pbinary (p, y, z) -> Cq.Binary (Symbol.intern p, var y, var z)
          | Pfalse | Prefl _ | Pirrefl _ -> fail 1 "unexpected keyword in query")
        patoms
    in
    Cq.make ~answer atoms)
  | _ -> fail 1 "expected q(vars) <- atoms"

(* ------------------------------------------------------------------ *)
(* Data *)

let data_of_string ?file s =
  with_source ?file s @@ fun () ->
  Fault.hit Fault.parse_abox;
  let a = Abox.create () in
  List.iteri
    (fun i line ->
      let rec consume toks =
        if toks = [] then ()
        else begin
          let atom, rest = parse_atom (i + 1) toks in
          (match atom with
          | Punary (p, Var c) -> Abox.add_unary a (Symbol.intern p) (Symbol.intern c)
          | Pbinary (p, Var c, Var d) ->
            Abox.add_binary a (Symbol.intern p) (Symbol.intern c) (Symbol.intern d)
          | _ -> fail (i + 1) "facts must be ground");
          consume rest
        end
      in
      consume (tokenize_line (i + 1) line))
    (lines_of s);
  a

(* ------------------------------------------------------------------ *)
(* Mappings and sources *)

(* one rule per line: Head(vars) <- src1(args), src2(args), ... *)
let mapping_of_string ?file s =
  with_source ?file s @@ fun () ->
  let module Ndl = Obda_ndl.Ndl in
  let rule_of_line line_no toks =
    match toks with
    | [] -> None
    | _ ->
      let rec split acc = function
        | Larrow :: rest -> (List.rev acc, rest)
        | t :: rest -> split (t :: acc) rest
        | [] -> fail line_no "expected <- in a mapping rule"
      in
      let head_toks, body_toks = split [] toks in
      let head, hrest = parse_atom line_no head_toks in
      if hrest <> [] then fail line_no "junk after the rule head";
      let head_pred, head_vars =
        match head with
        | Punary (p, Var x) -> (p, [ x ])
        | Pbinary (p, Var x, Var y) -> (p, [ x; y ])
        | _ -> fail line_no "mapping heads must be unary or binary atoms"
      in
      (* body atoms may have any arity (source relations) *)
      let counter = ref 0 in
      let term = function
        | Ident v -> Ndl.Var v
        | Underscore ->
          incr counter;
          Ndl.Var (Printf.sprintf "_m%d" !counter)
        | _ -> fail line_no "expected a variable or _"
      in
      let rec nary_atoms acc = function
        | [] -> List.rev acc
        | Ident name :: Lpar :: rest ->
          let rec args acc' = function
            | t :: Comma :: more -> args (term t :: acc') more
            | t :: Rpar :: more -> (List.rev (term t :: acc'), more)
            | _ -> fail line_no "malformed source atom in the rule body"
          in
          let ts, rest' = args [] rest in
          let atom = Ndl.Pred (Symbol.intern name, ts) in
          (match rest' with
          | Comma :: more -> nary_atoms (atom :: acc) more
          | [] -> List.rev (atom :: acc)
          | _ -> fail line_no "junk after the rule body")
        | _ -> fail line_no "expected a source atom"
      in
      let body = nary_atoms [] body_toks in
      Some (Obda_mapping.Mapping.rule head_pred head_vars body)
  in
  List.concat
    (List.mapi
       (fun i line ->
         match rule_of_line (i + 1) (tokenize_line (i + 1) line) with
         | Some r -> [ r ]
         | None -> [])
       (lines_of s))

(* n-ary ground rows; reuse the tokenizer but allow any arity *)
let source_of_string ?file s =
  with_source ?file s @@ fun () ->
  let src = Obda_mapping.Source.create () in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      let rec consume toks =
        match toks with
        | [] -> ()
        | Ident name :: Lpar :: rest ->
          let rec args acc = function
            | Ident c :: Comma :: more -> args (c :: acc) more
            | Ident c :: Rpar :: more -> (List.rev (c :: acc), more)
            | _ -> fail line_no "malformed source row"
          in
          let row, rest' = args [] rest in
          Obda_mapping.Source.add_row src name row;
          consume rest'
        | _ -> fail line_no "expected relation(row,...)"
      in
      consume (tokenize_line line_no line))
    (lines_of s);
  src

(* ------------------------------------------------------------------ *)
(* Files *)

let read_file path =
  match open_in path with
  | exception Sys_error msg ->
    raise
      (Error.Obda_error
         (Error.Parse_error
            {
              loc = { Error.file = Some path; line = 0; column = None };
              msg;
              source_line = None;
            }))
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s

let ontology_of_file path = ontology_of_string ~file:path (read_file path)
let mapping_of_file path = mapping_of_string ~file:path (read_file path)
let source_of_file path = source_of_string ~file:path (read_file path)
let query_of_file path = query_of_string ~file:path (read_file path)
let data_of_file path = data_of_string ~file:path (read_file path)

(* ------------------------------------------------------------------ *)
(* Printers *)

let concept_str ~var = function
  | Concept.Top -> Printf.sprintf "top(%s)" var
  | Concept.Name a -> Printf.sprintf "%s(%s)" (Symbol.name a) var
  | Concept.Exists r ->
    if Role.is_inverse r then
      Printf.sprintf "%s(_,%s)" (Symbol.name r.Role.base) var
    else Printf.sprintf "%s(%s,_)" (Symbol.name r.Role.base) var

let role_str r x y =
  if Role.is_inverse r then
    Printf.sprintf "%s(%s,%s)" (Symbol.name r.Role.base) y x
  else Printf.sprintf "%s(%s,%s)" (Symbol.name r.Role.base) x y

let axiom_str = function
  | Tbox.Concept_incl (c, c') ->
    Printf.sprintf "%s -> %s" (concept_str ~var:"x" c) (concept_str ~var:"x" c')
  | Tbox.Concept_disj (c, c') ->
    Printf.sprintf "%s, %s -> false" (concept_str ~var:"x" c)
      (concept_str ~var:"x" c')
  | Tbox.Role_incl (r, r') ->
    Printf.sprintf "%s -> %s" (role_str r "x" "y") (role_str r' "x" "y")
  | Tbox.Role_disj (r, r') ->
    Printf.sprintf "%s, %s -> false" (role_str r "x" "y") (role_str r' "x" "y")
  | Tbox.Reflexive r -> Printf.sprintf "refl %s" (Role.to_string r)
  | Tbox.Irreflexive r -> Printf.sprintf "irrefl %s" (Role.to_string r)

let ontology_to_string t =
  String.concat "\n" (List.map axiom_str (Tbox.axioms t)) ^ "\n"

let query_to_string q =
  Printf.sprintf "q(%s) <- %s\n"
    (String.concat "," (Cq.answer_vars q))
    (String.concat ", "
       (List.map
          (fun atom ->
            match atom with
            | Cq.Unary (a, z) -> Printf.sprintf "%s(%s)" (Symbol.name a) z
            | Cq.Binary (p, y, z) ->
              Printf.sprintf "%s(%s,%s)" (Symbol.name p) y z)
          (Cq.atoms q)))

let data_to_string a =
  String.concat "\n"
    (List.map
       (fun fact ->
         match fact with
         | Abox.Concept_assertion (p, c) ->
           Printf.sprintf "%s(%s)." (Symbol.name p) (Symbol.name c)
         | Abox.Role_assertion (p, c, d) ->
           Printf.sprintf "%s(%s,%s)." (Symbol.name p) (Symbol.name c)
             (Symbol.name d))
       (Abox.to_facts a))
  ^ "\n"
