(** A small textual format for ontologies, queries and data.

    Ontology files: one axiom per line, [#] starts a comment.
    {v
      A(x) -> B(x)            # concept inclusion
      A(x) -> P(x,_)          # A ⊑ ∃P     (underscore = existential)
      P(_,x) -> B(x)          # ∃P⁻ ⊑ B
      P(x,_) -> S(x,_)        # ∃P ⊑ ∃S
      P(x,y) -> S(x,y)        # role inclusion
      P(x,y) -> R(y,x)        # P ⊑ R⁻
      refl P                  # ∀x P(x,x)
      irrefl P
      A(x), B(x) -> false     # disjoint concepts
      P(x,y), S(x,y) -> false # disjoint roles
    v}

    Query files: a single rule
    {v q(x,y) <- R(x,z), A(z), S(z,y) v}

    Data files: whitespace-separated facts, with optional periods:
    {v A(a). R(a,b). S(b,c) v} *)

open Obda_ontology
open Obda_cq
open Obda_data

(** All parsers report failures by raising
    [Obda_runtime.Error.Obda_error (Parse_error _)] with a 1-based line
    (and, for lexical errors, column) location.  The [?file] argument and
    the verbatim offending line are recorded in the payload so the CLI can
    print a caret diagnostic.  Arity clashes and malformed query heads
    detected by the AST smart constructors are reported as parse errors
    too. *)

val ontology_of_string : ?file:string -> string -> Tbox.t
val query_of_string : ?file:string -> string -> Cq.t
val data_of_string : ?file:string -> string -> Abox.t
val ontology_of_file : string -> Tbox.t
val query_of_file : string -> Cq.t
val data_of_file : string -> Abox.t

val mapping_of_string : ?file:string -> string -> Obda_mapping.Mapping.t
(** Mapping files: one GAV rule per line,
    {v Employee(x) <- employees(x,n,d,m)
       worksOn(x,p) <- contracts(x,p,r) v} *)

val source_of_string : ?file:string -> string -> Obda_mapping.Source.t
(** Source files: whitespace-separated ground rows of any arity:
    {v employees(e1,ada,research,e2). contracts(e1,warp,lead) v} *)

val mapping_of_file : string -> Obda_mapping.Mapping.t
val source_of_file : string -> Obda_mapping.Source.t

val ontology_to_string : Tbox.t -> string
(** Round-trips through [ontology_of_string]. *)

val query_to_string : Cq.t -> string
val data_to_string : Abox.t -> string
