open Obda_syntax

type term = Var of string | Cst of Symbol.t

let compare_term t1 t2 =
  match (t1, t2) with
  | Var v1, Var v2 -> String.compare v1 v2
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1
  | Cst c1, Cst c2 -> Symbol.compare c1 c2

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Cst c -> Symbol.pp ppf c

type atom = Pred of Symbol.t * term list | Eq of term * term | Dom of term

let atom_terms = function
  | Pred (_, ts) -> ts
  | Eq (t1, t2) -> [ t1; t2 ]
  | Dom t -> [ t ]

let atom_vars a =
  List.filter_map (function Var v -> Some v | Cst _ -> None) (atom_terms a)

let pp_terms ppf ts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    pp_term ppf ts

let pp_atom ppf = function
  | Pred (p, ts) -> Format.fprintf ppf "%a(%a)" Symbol.pp p pp_terms ts
  | Eq (t1, t2) -> Format.fprintf ppf "%a = %a" pp_term t1 pp_term t2
  | Dom t -> Format.fprintf ppf "top(%a)" pp_term t

type clause = { head : Symbol.t * term list; body : atom list }

let clause_vars c =
  let head_vars =
    List.filter_map (function Var v -> Some v | Cst _ -> None) (snd c.head)
  in
  List.sort_uniq String.compare
    (head_vars @ List.concat_map atom_vars c.body)

let pp_clause ppf c =
  let p, ts = c.head in
  Format.fprintf ppf "%a(%a) <- %a" Symbol.pp p pp_terms ts
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_atom)
    c.body

type query = {
  clauses : clause list;
  goal : Symbol.t;
  goal_args : string list;
  params : int Symbol.Map.t;
}

let make ?(params = Symbol.Map.empty) ~goal ~goal_args clauses =
  { clauses; goal; goal_args; params }

let pp ppf q =
  Format.fprintf ppf "goal %a(%s)@." Symbol.pp q.goal
    (String.concat "," q.goal_args);
  List.iter (fun c -> Format.fprintf ppf "%a@." pp_clause c) q.clauses

let num_clauses q = List.length q.clauses

let size q =
  List.fold_left (fun acc c -> acc + 1 + List.length c.body) 0 q.clauses

let idb_preds q =
  List.fold_left
    (fun acc c -> Symbol.Set.add (fst c.head) acc)
    Symbol.Set.empty q.clauses

let edb_preds q =
  let idb = idb_preds q in
  List.fold_left
    (fun acc c ->
      List.fold_left
        (fun acc a ->
          match a with
          | Pred (p, _) when not (Symbol.Set.mem p idb) -> Symbol.Set.add p acc
          | Pred _ | Eq _ | Dom _ -> acc)
        acc c.body)
    Symbol.Set.empty q.clauses

let arity_of q p =
  let check_atom = function
    | Pred (p', ts) when Symbol.equal p p' -> Some (List.length ts)
    | Pred _ | Eq _ | Dom _ -> None
  in
  List.find_map
    (fun c ->
      if Symbol.equal (fst c.head) p then Some (List.length (snd c.head))
      else List.find_map check_atom c.body)
    q.clauses

(* dependence graph restricted to IDB predicates *)
let idb_deps q =
  let idb = idb_preds q in
  let deps = Symbol.Tbl.create 16 in
  Symbol.Set.iter (fun p -> Symbol.Tbl.replace deps p Symbol.Set.empty) idb;
  List.iter
    (fun c ->
      let p = fst c.head in
      let cur = Symbol.Tbl.find deps p in
      let extra =
        List.fold_left
          (fun acc a ->
            match a with
            | Pred (p', _) when Symbol.Set.mem p' idb -> Symbol.Set.add p' acc
            | Pred _ | Eq _ | Dom _ -> acc)
          Symbol.Set.empty c.body
      in
      Symbol.Tbl.replace deps p (Symbol.Set.union cur extra))
    q.clauses;
  deps

let topo_order_opt q =
  let deps = idb_deps q in
  let visiting = Symbol.Tbl.create 16 in
  let done_ = Symbol.Tbl.create 16 in
  let order = ref [] in
  let exception Recursive in
  let rec visit p =
    if Symbol.Tbl.mem done_ p then ()
    else if Symbol.Tbl.mem visiting p then raise Recursive
    else begin
      Symbol.Tbl.add visiting p ();
      Symbol.Set.iter visit (Symbol.Tbl.find deps p);
      Symbol.Tbl.remove visiting p;
      Symbol.Tbl.add done_ p ();
      order := p :: !order
    end
  in
  try
    Symbol.Tbl.iter (fun p _ -> visit p) deps;
    Some (List.rev !order)
  with Recursive -> None

let is_nonrecursive q = topo_order_opt q <> None

(* Tarjan's SCC algorithm over the IDB dependence graph.  Components are
   emitted dependencies-first (an SCC is completed only after every SCC it
   depends on), which is exactly the stratum evaluation order.  Predicates
   are visited in [Symbol.compare] order so the result is deterministic. *)
let strata q =
  let deps = idb_deps q in
  let index = Symbol.Tbl.create 16 in
  let lowlink = Symbol.Tbl.create 16 in
  let on_stack = Symbol.Tbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let preds =
    Symbol.Tbl.fold (fun p _ acc -> p :: acc) deps []
    |> List.sort Symbol.compare
  in
  let rec strong p =
    Symbol.Tbl.replace index p !counter;
    Symbol.Tbl.replace lowlink p !counter;
    incr counter;
    stack := p :: !stack;
    Symbol.Tbl.replace on_stack p ();
    Symbol.Set.iter
      (fun d ->
        if Symbol.Tbl.mem deps d then
          if not (Symbol.Tbl.mem index d) then begin
            strong d;
            Symbol.Tbl.replace lowlink p
              (min (Symbol.Tbl.find lowlink p) (Symbol.Tbl.find lowlink d))
          end
          else if Symbol.Tbl.mem on_stack d then
            Symbol.Tbl.replace lowlink p
              (min (Symbol.Tbl.find lowlink p) (Symbol.Tbl.find index d)))
      (Symbol.Tbl.find deps p);
    if Symbol.Tbl.find lowlink p = Symbol.Tbl.find index p then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | d :: rest ->
          stack := rest;
          Symbol.Tbl.remove on_stack d;
          if Symbol.equal d p then d :: acc else pop (d :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun p -> if not (Symbol.Tbl.mem index p) then strong p) preds;
  List.rev_map
    (fun scc ->
      let scc = List.sort Symbol.compare scc in
      let recursive =
        match scc with
        | [ p ] -> Symbol.Set.mem p (Symbol.Tbl.find deps p)
        | _ -> true
      in
      (scc, recursive))
    !sccs

let topo_order q =
  match topo_order_opt q with
  | Some o -> o
  | None -> invalid_arg "Ndl.topo_order: recursive program"

let depth q =
  let idb = idb_preds q in
  (* clauses grouped by head *)
  let by_head = Symbol.Tbl.create 16 in
  List.iter
    (fun c ->
      let cur = Option.value ~default:[] (Symbol.Tbl.find_opt by_head (fst c.head)) in
      Symbol.Tbl.replace by_head (fst c.head) (c :: cur))
    q.clauses;
  let memo = Symbol.Tbl.create 16 in
  let rec longest p =
    if not (Symbol.Set.mem p idb) then 0
    else
      match Symbol.Tbl.find_opt memo p with
      | Some d -> d
      | None ->
        let clauses = Option.value ~default:[] (Symbol.Tbl.find_opt by_head p) in
        let d =
          List.fold_left
            (fun acc c ->
              List.fold_left
                (fun acc a ->
                  match a with
                  | Pred (p', _) -> max acc (1 + longest p')
                  | Eq _ | Dom _ -> acc)
                acc c.body)
            0 clauses
        in
        Symbol.Tbl.replace memo p d;
        d
  in
  longest q.goal

let is_linear q =
  let idb = idb_preds q in
  List.for_all
    (fun c ->
      let idb_atoms =
        List.filter
          (function Pred (p, _) -> Symbol.Set.mem p idb | Eq _ | Dom _ -> false)
          c.body
      in
      List.length idb_atoms <= 1)
    q.clauses

let is_skinny q = List.for_all (fun c -> List.length c.body <= 2) q.clauses

let max_edb_atoms_per_clause q =
  let idb = idb_preds q in
  List.fold_left
    (fun acc c ->
      let n =
        List.length
          (List.filter
             (function
               | Pred (p, _) -> not (Symbol.Set.mem p idb)
               | Eq _ | Dom _ -> true)
             c.body)
      in
      max acc n)
    0 q.clauses

let param_vars_of_atom q p ts =
  let n = Option.value ~default:0 (Symbol.Map.find_opt p q.params) in
  let len = List.length ts in
  List.filteri (fun i _ -> i >= len - n) ts
  |> List.filter_map (function Var v -> Some v | Cst _ -> None)

let width q =
  let idb = idb_preds q in
  List.fold_left
    (fun acc c ->
      let p, ts = c.head in
      let param_vars =
        param_vars_of_atom q p ts
        @ List.concat_map
            (fun a ->
              match a with
              | Pred (p', ts') when Symbol.Set.mem p' idb ->
                param_vars_of_atom q p' ts'
              | Pred _ | Eq _ | Dom _ -> [])
            c.body
      in
      let params = List.sort_uniq String.compare param_vars in
      let non_params =
        List.filter (fun v -> not (List.mem v params)) (clause_vars c)
      in
      max acc (List.length non_params))
    0 q.clauses

let weight q =
  let idb = idb_preds q in
  let order = topo_order q in
  let by_head = Symbol.Tbl.create 16 in
  List.iter
    (fun c ->
      let cur = Option.value ~default:[] (Symbol.Tbl.find_opt by_head (fst c.head)) in
      Symbol.Tbl.replace by_head (fst c.head) (c :: cur))
    q.clauses;
  List.fold_left
    (fun acc p ->
      let clauses = Option.value ~default:[] (Symbol.Tbl.find_opt by_head p) in
      let v =
        List.fold_left
          (fun acc_c c ->
            let s =
              List.fold_left
                (fun s a ->
                  match a with
                  | Pred (p', _) when Symbol.Set.mem p' idb ->
                    s + Option.value ~default:0 (Symbol.Map.find_opt p' acc)
                  | Pred _ | Eq _ | Dom _ -> s)
                0 c.body
            in
            max acc_c s)
          1 clauses
      in
      Symbol.Map.add p v acc)
    Symbol.Map.empty order

let skinny_depth q =
  let nu = weight q in
  let nu_goal =
    float_of_int (max 1 (Option.value ~default:1 (Symbol.Map.find_opt q.goal nu)))
  in
  let e = float_of_int (max 1 (max_edb_atoms_per_clause q)) in
  (2.0 *. float_of_int (depth q)) +. (log nu_goal /. log 2.0) +. (log e /. log 2.0)

let check q =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* head variables occur in bodies *)
  List.iter
    (fun c ->
      let body_vars = List.concat_map atom_vars c.body in
      List.iter
        (function
          | Var v ->
            if not (List.mem v body_vars) then
              err "head variable %s of %a does not occur in the body" v
                Symbol.pp (fst c.head)
          | Cst _ -> ())
        (snd c.head))
    q.clauses;
  (* consistent arities *)
  let arities = Symbol.Tbl.create 16 in
  let note p n =
    match Symbol.Tbl.find_opt arities p with
    | Some n' when n <> n' -> err "predicate %a used with arities %d and %d" Symbol.pp p n n'
    | Some _ -> ()
    | None -> Symbol.Tbl.add arities p n
  in
  List.iter
    (fun c ->
      note (fst c.head) (List.length (snd c.head));
      List.iter
        (function Pred (p, ts) -> note p (List.length ts) | Eq _ | Dom _ -> ())
        c.body)
    q.clauses;
  if not (is_nonrecursive q) then err "program is recursive";
  if not (Symbol.Set.mem q.goal (idb_preds q)) then
    err "goal %a has no defining clause" Symbol.pp q.goal;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* ------------------------------------------------------------------ *)

let observe ?(prefix = "ndl") q =
  if Obda_obs.Obs.enabled () then begin
    let set suffix v = Obda_obs.Obs.set_int (prefix ^ "." ^ suffix) v in
    set "clauses" (num_clauses q);
    set "size" (size q);
    set "depth" (depth q);
    set "width" (width q);
    Obda_obs.Obs.set_float (prefix ^ ".skinny_depth") (skinny_depth q)
  end;
  q
