(** Cost-based join planning for compiled NDL clause bodies.

    A clause body is compiled to a sequence of {!step}s: the planner
    estimates per-atom cardinality from relation sizes and bound-variable
    selectivity (distinct-key counts off the evaluator's existing indexes
    when one is built, a domain-based estimate otherwise), greedily
    reorders the atoms to minimise the estimated intermediate result, and
    picks an access strategy per atom.  Plans are pure data: every probe
    position is static, so the evaluator's parallel prepass can build
    every index a plan needs before workers start. *)

open Obda_syntax

(** {1 Compiled atoms} *)

type cterm = CV of int | CC of int
(** A clause term after variable numbering: variable slot or constant. *)

type catom =
  | CPred of Symbol.t * cterm array
  | CEq of cterm * cterm
  | CDom of cterm

(** {1 Plans} *)

type strategy =
  | Scan  (** enumerate all tuples, filter inline — tiny or unbound atoms *)
  | Index
      (** probe the relation's maintained incremental index on the bound
          positions; build-once amortised across clauses and rounds, so it
          beats a fresh hash table whenever probes are selective *)
  | Hash
      (** build a transient hash table on the bound positions, once per
          clause evaluation, never registered on the relation — for
          transient relations (semi-naïve deltas) where a maintained index
          would be rebuilt every round *)

type step = {
  atom : catom;
  probe : int list;
      (** positions bound when the step runs (ascending); [[]] for
          non-predicate atoms and unbound scans *)
  strategy : strategy;  (** meaningful for [CPred] steps *)
  est_matches : float;  (** estimated matching tuples per probe *)
}

type t = {
  steps : step list;
  est_reads : float;  (** estimated tuples read by the whole body *)
  reordered : bool;  (** the order differs from the written body *)
}

(** {1 Statistics sources} *)

type stats = {
  card : Symbol.t -> int;  (** current cardinality of a relation *)
  distinct : Symbol.t -> int list -> int option;
      (** exact distinct-key count from an already-built index, if any *)
  transient : Symbol.t -> bool;
      (** relations replaced wholesale between evaluations (deltas) *)
  domain : int;  (** size of the active domain *)
}

val scan_cutoff : int
(** Relations at or below this cardinality are always scanned: probing —
    let alone building anything — loses to walking a handful of tuples. *)

val make : stats -> nvars:int -> catom list -> t
(** Cost-based plan: greedy reorder plus per-atom strategy choice. *)

val trivial : nvars:int -> catom list -> t
(** Wrap an externally ordered body with no reordering and the legacy
    strategy (always probe the maintained index): the naïve baseline. *)

val describe : names:string array -> t -> string
(** One-line rendering of the chosen order and strategies, for
    [--explain]: variable slots are shown via [names]. *)
