open Obda_syntax
open Obda_ontology
module Obs = Obda_obs.Obs

let role_atom rho t1 t2 =
  if Role.is_inverse rho then Ndl.Pred (rho.Role.base, [ t2; t1 ])
  else Ndl.Pred (rho.Role.base, [ t1; t2 ])

let star_symbol p = Symbol.intern (Symbol.name p ^ "*")

(* Defining clauses for A*(x): one per basic concept entailed to imply A. *)
let unary_star_clauses tbox a =
  let astar = star_symbol a in
  let x = Ndl.Var "x" and y = Ndl.Var "y" in
  List.filter_map
    (fun sub ->
      match sub with
      | Concept.Name a' ->
        Some { Ndl.head = (astar, [ x ]); body = [ Ndl.Pred (a', [ x ]) ] }
      | Concept.Exists rho ->
        Some { Ndl.head = (astar, [ x ]); body = [ role_atom rho x y ] }
      | Concept.Top ->
        Some { Ndl.head = (astar, [ x ]); body = [ Ndl.Dom x ] })
    (Tbox.subconcepts_of tbox (Concept.Name a))

(* Defining clauses for P*(x,y). *)
let binary_star_clauses tbox p =
  let pstar = star_symbol p in
  let x = Ndl.Var "x" and y = Ndl.Var "y" in
  let rho = Role.make p in
  let from_roles =
    List.map
      (fun sub -> { Ndl.head = (pstar, [ x; y ]); body = [ role_atom sub x y ] })
      (Tbox.subroles_of tbox rho)
  in
  let from_refl =
    if Tbox.reflexive tbox rho then
      [ { Ndl.head = (pstar, [ x; x ]); body = [ Ndl.Dom x ] } ]
    else []
  in
  from_roles @ from_refl

let complete_to_arbitrary tbox (q : Ndl.query) =
  Obs.with_span "rewrite.star" (fun () ->
  let idb = Ndl.idb_preds q in
  let edb_with_arity =
    List.fold_left
      (fun acc (c : Ndl.clause) ->
        List.fold_left
          (fun acc atom ->
            match atom with
            | Ndl.Pred (p, ts) when not (Symbol.Set.mem p idb) ->
              Symbol.Map.add p (List.length ts) acc
            | Ndl.Pred _ | Ndl.Eq _ | Ndl.Dom _ -> acc)
          acc c.body)
      Symbol.Map.empty q.clauses
  in
  let replaced =
    List.map
      (fun (c : Ndl.clause) ->
        let body =
          List.map
            (fun atom ->
              match atom with
              | Ndl.Pred (p, ts) when Symbol.Map.mem p edb_with_arity ->
                Ndl.Pred (star_symbol p, ts)
              | Ndl.Pred _ | Ndl.Eq _ | Ndl.Dom _ -> atom)
            c.body
        in
        { c with body })
      q.clauses
  in
  let star_clauses =
    Symbol.Map.fold
      (fun p arity acc ->
        let cs =
          match arity with
          | 1 -> unary_star_clauses tbox p
          | 2 -> binary_star_clauses tbox p
          | _ -> invalid_arg "Star: EDB predicate of arity > 2"
        in
        cs @ acc)
      edb_with_arity []
  in
  Ndl.observe { q with clauses = replaced @ star_clauses })

(* ------------------------------------------------------------------ *)
(* Lemma 3: the linearity-preserving variant *)

(* the υ(E) alternatives: each is a small list of atoms over the variables of
   E plus possibly one fresh variable *)
let upsilon tbox fresh_var atom =
  match atom with
  | Ndl.Pred (a, [ z ]) ->
    List.map
      (fun sub ->
        match sub with
        | Concept.Name a' -> [ Ndl.Pred (a', [ z ]) ]
        | Concept.Exists rho -> [ role_atom rho z (Ndl.Var (fresh_var ())) ]
        | Concept.Top -> [ Ndl.Dom z ])
      (Tbox.subconcepts_of tbox (Concept.Name a))
  | Ndl.Pred (p, [ t1; t2 ]) ->
    let rho = Role.make p in
    let from_roles =
      List.map (fun sub -> [ role_atom sub t1 t2 ]) (Tbox.subroles_of tbox rho)
    in
    let from_refl =
      if Tbox.reflexive tbox rho then [ [ Ndl.Eq (t1, t2); Ndl.Dom t1 ] ]
      else []
    in
    from_roles @ from_refl
  | Ndl.Dom _ -> [ [ atom ] ]
  | Ndl.Pred _ | Ndl.Eq _ ->
    Format.kasprintf invalid_arg "Star.upsilon: unexpected atom %a" Ndl.pp_atom
      atom

module VarSet = Set.Make (String)

let term_vars ts =
  List.fold_left
    (fun acc t -> match t with Ndl.Var v -> VarSet.add v acc | Ndl.Cst _ -> acc)
    VarSet.empty ts

let atom_var_set a = term_vars (Ndl.atom_terms a)
let atoms_var_set atoms =
  List.fold_left (fun acc a -> VarSet.union acc (atom_var_set a)) VarSet.empty atoms

let complete_to_arbitrary_linear tbox (q : Ndl.query) =
  Obs.with_span "rewrite.star" (fun () ->
  if not (Ndl.is_linear q) then
    invalid_arg "Star.complete_to_arbitrary_linear: program not linear";
  let idb = Ndl.idb_preds q in
  let params = ref q.params in
  let counter = ref 0 in
  let clause_out = ref [] in
  let emit c = clause_out := c :: !clause_out in
  let transform (c : Ndl.clause) =
    let head_pred, head_args = c.head in
    let idb_atoms, rest =
      List.partition
        (function
          | Ndl.Pred (p, _) -> Symbol.Set.mem p idb
          | Ndl.Eq _ | Ndl.Dom _ -> false)
        c.body
    in
    let eq_atoms, edb_atoms =
      List.partition (function Ndl.Eq _ -> true | _ -> false) rest
    in
    if edb_atoms = [] then emit c
    else begin
      (* parameter variables of the head: its trailing parameter positions *)
      let n_params =
        Option.value ~default:0 (Symbol.Map.find_opt head_pred q.params)
      in
      let len = List.length head_args in
      let head_param_vars =
        List.filteri (fun i _ -> i >= len - n_params) head_args |> term_vars
      in
      let head_vars = term_vars head_args in
      let eq_vars = atoms_var_set eq_atoms in
      let edb_arr = Array.of_list edb_atoms in
      let n = Array.length edb_arr in
      (* needed_after.(i): variables needed strictly after processing edb i *)
      let needed_after = Array.make (n + 1) (VarSet.union head_vars eq_vars) in
      for i = n - 1 downto 0 do
        needed_after.(i) <-
          VarSet.union needed_after.(i + 1) (atom_var_set edb_arr.(i))
      done;
      let fresh_var () =
        incr counter;
        Printf.sprintf "y~%d" !counter
      in
      let fresh_pred i =
        let p = Symbol.fresh (Symbol.name head_pred ^ "~" ^ string_of_int i) in
        p
      in
      (* available vars after step i: vars of I and of E_1..E_i *)
      let rec avail i =
        if i = 0 then atoms_var_set idb_atoms
        else VarSet.union (avail (i - 1)) (atom_var_set edb_arr.(i - 1))
      in
      let args_of vset =
        (* non-parameters first, then parameters, so trailing positions are
           parameters *)
        let vs = VarSet.elements vset in
        let ps, nps = List.partition (fun v -> VarSet.mem v head_param_vars) vs in
        (List.map (fun v -> Ndl.Var v) (nps @ ps), List.length ps)
      in
      let stage_pred i =
        (* predicate carrying the join state after EDB atom i *)
        let vset = VarSet.inter (avail i) needed_after.(i) in
        let args, nparams = args_of vset in
        let p = fresh_pred i in
        params := Symbol.Map.add p nparams !params;
        (p, args)
      in
      let stages = Array.init (n + 1) stage_pred in
      (* stage 0: carry over the IDB atom (or nothing) *)
      (match idb_atoms with
      | [] -> ()
      | [ i_atom ] ->
        let p0, a0 = stages.(0) in
        emit { Ndl.head = (p0, a0); body = [ i_atom ] }
      | _ -> assert false);
      (* chain steps *)
      for i = 1 to n do
        let pi, ai = stages.(i) in
        let prev =
          if i = 1 && idb_atoms = [] then []
          else
            let pprev, aprev = stages.(i - 1) in
            [ Ndl.Pred (pprev, aprev) ]
        in
        List.iter
          (fun alternative ->
            emit { Ndl.head = (pi, ai); body = prev @ alternative })
          (upsilon tbox fresh_var edb_arr.(i - 1))
      done;
      (* final clause: equalities *)
      let pn, an = stages.(n) in
      emit { Ndl.head = c.head; body = Ndl.Pred (pn, an) :: eq_atoms }
    end
  in
  List.iter transform q.clauses;
  Ndl.observe { q with clauses = List.rev !clause_out; params = !params })
