(** Nonrecursive datalog (NDL) programs and queries (Section 2).

    A datalog program is a finite set of clauses [head ← body] where the body
    may contain predicate atoms, equalities, and the active-domain atom ⊤(x).
    Predicates occurring in heads are IDB, the rest EDB.  A program is
    nonrecursive when its dependence graph is acyclic. *)

open Obda_syntax

type term = Var of string | Cst of Symbol.t

val compare_term : term -> term -> int
val pp_term : Format.formatter -> term -> unit

type atom =
  | Pred of Symbol.t * term list
  | Eq of term * term  (** z = z' *)
  | Dom of term  (** ⊤(z): active-domain membership *)

val atom_terms : atom -> term list
val atom_vars : atom -> string list
val pp_atom : Format.formatter -> atom -> unit

type clause = { head : Symbol.t * term list; body : atom list }

val clause_vars : clause -> string list
val pp_clause : Format.formatter -> clause -> unit

type query = {
  clauses : clause list;
  goal : Symbol.t;
  goal_args : string list;  (** the answer variables x of G(x) *)
  params : int Symbol.Map.t;
      (** for ordered queries: number of trailing parameter positions of each
          IDB predicate (absent ⇒ 0) *)
}

val make :
  ?params:int Symbol.Map.t -> goal:Symbol.t -> goal_args:string list ->
  clause list -> query

val pp : Format.formatter -> query -> unit
val num_clauses : query -> int
val size : query -> int
(** Total number of atoms (head + body) — a proxy for |Π|. *)

(** {1 Analysis} *)

val idb_preds : query -> Symbol.Set.t
val edb_preds : query -> Symbol.Set.t
val arity_of : query -> Symbol.t -> int option
(** Arity of a predicate as used in the program. *)

val is_nonrecursive : query -> bool

val topo_order : query -> Symbol.t list
(** IDB predicates, dependencies first.  Raises [Invalid_argument] if the
    program is recursive. *)

val strata : query -> (Symbol.t list * bool) list
(** Strongly connected components of the IDB dependence graph in
    dependencies-first order, each with a flag telling whether the stratum
    is recursive (more than one predicate, or a self-dependent singleton).
    For a nonrecursive program this is [topo_order] as singletons, all
    flagged [false].  Deterministic: components and their members are in
    [Symbol.compare] order. *)

val depth : query -> int
(** d(Π,G): longest dependence path from the goal (counting edges; EDB
    predicates are sinks). *)

val is_linear : query -> bool
(** At most one IDB atom per body. *)

val is_skinny : query -> bool
(** At most two atoms per body. *)

val max_edb_atoms_per_clause : query -> int

val width : query -> int
(** w(Π,G): maximum number of non-parameter variables in a clause, where the
    parameter variables of a clause are those in the trailing parameter
    positions of its head and of the IDB atoms of its body. *)

val weight : query -> int Symbol.Map.t
(** The pointwise-minimal weight function ν: ν(EDB) = 0, and for IDB Q,
    ν(Q) = max(1, max over clauses of Σ ν(body)). *)

val skinny_depth : query -> float
(** sd(Π,G) = 2·d(Π,G) + log₂ ν(G) + log₂ eΠ (Section 3.1.2), using the
    minimal weight function. *)

(** {1 Well-formedness} *)

val check : query -> (unit, string) result
(** Head variables occur in bodies; [=] only in bodies; program nonrecursive;
    consistent arities. *)

val observe : ?prefix:string -> query -> query
(** Record the program's size statistics as telemetry gauges
    ([<prefix>.clauses/size/depth/width/skinny_depth], default prefix
    ["ndl"]) and return it unchanged.  A no-op (the statistics are not even
    computed) when no telemetry sink is installed; gauges are last-write-
    wins, so the final stage of a rewriting pipeline determines the
    reported values. *)
