open Obda_syntax
open Obda_data
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Pool = Obda_runtime.Pool
module Obs = Obda_obs.Obs

exception Timeout

(* ------------------------------------------------------------------ *)
(* Relations *)

module Key = struct
  type t = int list

  let equal = List.equal Int.equal
  let hash = Hashtbl.hash
end

module KeyTbl = Hashtbl.Make (Key)

type relation = {
  arity : int;
  tuples : (int array, unit) Hashtbl.t;
  mutable indexes : (int list * int array list KeyTbl.t) list;
      (* sorted position list -> key values -> matching tuples *)
  mutable index_builds : int;
      (* full-scan index constructions — additions maintain existing
         indexes incrementally, so this stays at one per position list *)
  mutable sorted_view : Symbol.t list list option;
      (* memoised [relation_tuples] result, invalidated on mutation *)
}

let relation_create arity =
  {
    arity;
    tuples = Hashtbl.create 64;
    indexes = [];
    index_builds = 0;
    sorted_view = None;
  }

let relation_arity r = r.arity
let relation_size r = Hashtbl.length r.tuples

let relation_tuples r =
  match r.sorted_view with
  | Some view -> view
  | None ->
    let view =
      Hashtbl.fold (fun t () acc -> Array.to_list t :: acc) r.tuples []
      |> List.sort (List.compare Int.compare)
      |> List.map (List.map Symbol.unsafe_of_int)
    in
    r.sorted_view <- Some view;
    view

let relation_add r tuple =
  if Hashtbl.mem r.tuples tuple then false
  else begin
    Hashtbl.add r.tuples tuple ();
    r.sorted_view <- None;
    (* keep existing indexes in sync *)
    List.iter
      (fun (positions, tbl) ->
        let key = List.map (fun p -> tuple.(p)) positions in
        let cur = Option.value ~default:[] (KeyTbl.find_opt tbl key) in
        KeyTbl.replace tbl key (tuple :: cur))
      r.indexes;
    true
  end

let relation_index r positions =
  match List.assoc_opt positions r.indexes with
  | Some tbl -> tbl
  | None ->
    let tbl = KeyTbl.create (max 64 (Hashtbl.length r.tuples)) in
    Hashtbl.iter
      (fun tuple () ->
        let key = List.map (fun p -> tuple.(p)) positions in
        let cur = Option.value ~default:[] (KeyTbl.find_opt tbl key) in
        KeyTbl.replace tbl key (tuple :: cur))
      r.tuples;
    r.indexes <- (positions, tbl) :: r.indexes;
    r.index_builds <- r.index_builds + 1;
    tbl

let relation_lookup r positions key =
  if positions = [] then
    Hashtbl.fold (fun t () acc -> t :: acc) r.tuples []
  else
    let tbl = relation_index r positions in
    Option.value ~default:[] (KeyTbl.find_opt tbl key)

(* ------------------------------------------------------------------ *)
(* Compiled clauses *)

type cterm = Plan.cterm = CV of int | CC of int

type catom = Plan.catom =
  | CPred of Symbol.t * cterm array
  | CEq of cterm * cterm
  | CDom of cterm

let compile_clause (c : Ndl.clause) =
  let vars = Ndl.clause_vars c in
  let index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace index v i) vars;
  let cterm = function
    | Ndl.Var v -> CV (Hashtbl.find index v)
    | Ndl.Cst c -> CC (c :> int)
  in
  let catom = function
    | Ndl.Pred (p, ts) -> CPred (p, Array.of_list (List.map cterm ts))
    | Ndl.Eq (t1, t2) -> CEq (cterm t1, cterm t2)
    | Ndl.Dom t -> CDom (cterm t)
  in
  let head = Array.of_list (List.map cterm (snd c.head)) in
  (List.length vars, Array.of_list vars, head, List.map catom c.body)

type compiled = {
  nvars : int;
  names : string array;
  head : cterm array;
  plan : Plan.t;
}

(* ------------------------------------------------------------------ *)
(* Evaluation *)

type result = {
  answers : Symbol.t list list;
  generated_tuples : int;
  tuples_read : int;
  idb_relations : relation Symbol.Map.t;
}

type env = {
  relations : relation Symbol.Tbl.t;  (* EDB (from the ABox) and IDB *)
  abox : Abox.t;
  external_edb : Symbol.t -> int -> Symbol.t list list option;
  domain : int array;
  domain_set : (int, unit) Hashtbl.t;
  deadline : unit -> bool;
  budget : Budget.t;
  observe : bool;
      (* when false — worker domains, unobserved batch runs — the evaluator
         must not touch the global telemetry sink or the fault registry *)
  explain : (string -> unit) option;
  mutable ticks : int;
  mutable reads : int;
      (* tuples delivered from relation storage or domain sweeps — the
         engine-work measure the eval-plan bench gates on.  First-atom
         candidates rejected by a worker's partition filter are not
         counted, so the total is identical at every worker count *)
}

let tick env =
  env.ticks <- env.ticks + 1;
  Budget.step env.budget;
  if env.ticks land 0xFFF = 0 && env.deadline () then raise Timeout

let get_relation env p ~arity =
  match Symbol.Tbl.find_opt env.relations p with
  | Some r -> r
  | None ->
    (* an EDB predicate: the external source first, then the ABox *)
    let r = relation_create arity in
    (match env.external_edb p arity with
    | Some tuples ->
      List.iter
        (fun tuple ->
          ignore
            (relation_add r
               (Array.of_list (List.map (fun (c : Symbol.t) -> (c :> int)) tuple))))
        tuples
    | None -> (
      match arity with
      | 1 ->
        List.iter
          (fun (c : Symbol.t) -> ignore (relation_add r [| (c :> int) |]))
          (Abox.unary_members env.abox p)
      | 2 ->
        List.iter
          (fun ((c : Symbol.t), (d : Symbol.t)) ->
            ignore (relation_add r [| (c :> int); (d :> int) |]))
          (Abox.binary_members env.abox p)
      | 0 -> ()
      | n -> invalid_arg (Printf.sprintf "Eval: EDB predicate of arity %d" n)));
    Symbol.Tbl.replace env.relations p r;
    r

(* The naïve baseline's static atom order: repeatedly pick the cheapest
   atom given the variables bound so far (bound count first, then smaller
   relations), exactly the pre-planner heuristic. *)
let order_atoms env nvars atoms =
  let bound = Array.make nvars false in
  let term_bound = function CV i -> bound.(i) | CC _ -> true in
  let score = function
    | CEq (t1, t2) ->
      if term_bound t1 || term_bound t2 then max_int else -1000
    | CDom t -> if term_bound t then max_int - 1 else -100
    | CPred (p, ts) ->
      let bound_count =
        Array.fold_left (fun acc t -> if term_bound t then acc + 1 else acc) 0 ts
      in
      let size =
        match Symbol.Tbl.find_opt env.relations p with
        | Some r -> relation_size r
        | None -> 0 (* EDB not yet materialised; assume large-ish *)
      in
      (bound_count * 1_000_000) - min size 999_999
  in
  let bind_atom = function
    | CEq (t1, t2) | CPred (_, [| t1; t2 |]) ->
      (match t1 with CV i -> bound.(i) <- true | CC _ -> ());
      (match t2 with CV i -> bound.(i) <- true | CC _ -> ())
    | CDom t | CPred (_, [| t |]) -> (
      match t with CV i -> bound.(i) <- true | CC _ -> ())
    | CPred (_, ts) ->
      Array.iter (function CV i -> bound.(i) <- true | CC _ -> ()) ts
  in
  let rec pick acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let best =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if score a > score b then Some a else best)
          None remaining
      in
      let a = Option.get best in
      bind_atom a;
      pick (a :: acc) (List.filter (fun a' -> a' != a) remaining)
  in
  pick [] atoms

(* Planner statistics, read off the evaluator's current state: exact
   relation sizes, exact distinct-key counts whenever an index on those
   positions has already been built, the active-domain size otherwise. *)
let stats_of_env env ~transient =
  {
    Plan.card =
      (fun p ->
        match Symbol.Tbl.find_opt env.relations p with
        | Some r -> relation_size r
        | None -> 0);
    distinct =
      (fun p probe ->
        match Symbol.Tbl.find_opt env.relations p with
        | Some r -> Option.map KeyTbl.length (List.assoc_opt probe r.indexes)
        | None -> None);
    transient = (fun p -> Symbol.Set.mem p transient);
    domain = Array.length env.domain;
  }

let compile_and_plan env ~naive ~transient (c : Ndl.clause) =
  let nvars, names, head, body = compile_clause c in
  let plan =
    if naive then
      (* legacy order first (its scoring expects lazily materialised EDB
         sizes), then materialise, preserving the pre-planner behaviour *)
      let ordered = Plan.trivial ~nvars (order_atoms env nvars body) in
      List.iter
        (function
          | CPred (p, ts) -> ignore (get_relation env p ~arity:(Array.length ts))
          | CEq _ | CDom _ -> ())
        body;
      ordered
    else begin
      List.iter
        (function
          | CPred (p, ts) -> ignore (get_relation env p ~arity:(Array.length ts))
          | CEq _ | CDom _ -> ())
        body;
      Plan.make (stats_of_env env ~transient) ~nvars body
    end
  in
  (match env.explain with
  | Some f ->
    let hp, hts = c.head in
    let args =
      String.concat ","
        (List.map (fun t -> Format.asprintf "%a" Ndl.pp_term t) hts)
    in
    f
      (Printf.sprintf "%s(%s) <- %s" (Symbol.name hp) args
         (Plan.describe ~names plan))
  | None -> ());
  { nvars; names; head; plan }

(* Evaluate one compiled clause into [target].  [keep], if given, is a
   partition filter consulted only at the clause's first step: for a leading
   [CPred] it receives the hash of each candidate tuple, for a leading
   domain sweep (unbound [CDom], unbound–unbound [CEq]) the domain constant.
   A worker passing [keep] sees a disjoint slice of the first step's search
   space; the union over workers is exactly the sequential enumeration. *)
let eval_compiled env target ?keep cc =
  let { nvars; head; plan; _ } = cc in
  let accept = match keep with None -> fun _ -> true | Some k -> k in
  let binding = Array.make nvars (-1) in
  let value = function CV i -> binding.(i) | CC c -> c in
  let is_bound = function CV i -> binding.(i) >= 0 | CC _ -> true in
  let nsteps = List.length plan.Plan.steps in
  (* transient hash tables ([Hash] steps), built on first probe of this
     clause evaluation and never registered on the relation *)
  let hashes = Array.make (max 1 nsteps) None in
  let emit () =
    let tuple =
      Array.map
        (fun t ->
          let v = value t in
          assert (v >= 0);
          v)
        head
    in
    if relation_add target tuple then begin
      Budget.grow env.budget;
      if env.observe then Obs.incr "eval.derived_facts"
    end
  in
  let rec go ~first si steps =
    tick env;
    match steps with
    | [] -> emit ()
    | (step : Plan.step) :: rest -> (
      match step.atom with
      | CEq (t1, t2) -> (
        match (is_bound t1, is_bound t2) with
        | true, true -> if value t1 = value t2 then go ~first:false (si + 1) rest
        | true, false -> (
          match t2 with
          | CV i ->
            binding.(i) <- value t1;
            go ~first:false (si + 1) rest;
            binding.(i) <- -1
          | CC _ -> assert false)
        | false, true -> (
          match t1 with
          | CV i ->
            binding.(i) <- value t2;
            go ~first:false (si + 1) rest;
            binding.(i) <- -1
          | CC _ -> assert false)
        | false, false -> (
          (* last resort: both sides range over the active domain *)
          match (t1, t2) with
          | CV i, CV j ->
            Array.iter
              (fun c ->
                if (not first) || accept c then begin
                  env.reads <- env.reads + 1;
                  binding.(i) <- c;
                  binding.(j) <- c;
                  go ~first:false (si + 1) rest;
                  binding.(i) <- -1;
                  binding.(j) <- -1
                end)
              env.domain;
            binding.(i) <- -1;
            binding.(j) <- -1
          | _ -> assert false))
      | CDom t ->
        if is_bound t then begin
          (* membership in the active domain *)
          if Hashtbl.mem env.domain_set (value t) then
            go ~first:false (si + 1) rest
        end
        else (
          match t with
          | CV i ->
            Array.iter
              (fun c ->
                if (not first) || accept c then begin
                  env.reads <- env.reads + 1;
                  binding.(i) <- c;
                  go ~first:false (si + 1) rest
                end)
              env.domain;
            binding.(i) <- -1
          | CC _ -> assert false)
      | CPred (p, ts) ->
        let arity = Array.length ts in
        let r = get_relation env p ~arity in
        let matches =
          match step.strategy with
          | Plan.Scan ->
            (* unbound atom or tiny relation: enumerate everything and let
               [bind] filter any probed positions inline *)
            Hashtbl.fold (fun t () acc -> t :: acc) r.tuples []
          | Plan.Index ->
            let key = List.map (fun i -> value ts.(i)) step.probe in
            relation_lookup r step.probe key
          | Plan.Hash ->
            let tbl =
              match hashes.(si) with
              | Some tbl -> tbl
              | None ->
                let tbl = KeyTbl.create (max 16 (relation_size r)) in
                Hashtbl.iter
                  (fun tuple () ->
                    let key = List.map (fun i -> tuple.(i)) step.probe in
                    let cur =
                      Option.value ~default:[] (KeyTbl.find_opt tbl key)
                    in
                    KeyTbl.replace tbl key (tuple :: cur))
                  r.tuples;
                hashes.(si) <- Some tbl;
                tbl
            in
            let key = List.map (fun i -> value ts.(i)) step.probe in
            Option.value ~default:[] (KeyTbl.find_opt tbl key)
        in
        List.iter
          (fun tuple ->
            if (not first) || accept (Hashtbl.hash tuple) then begin
              env.reads <- env.reads + 1;
              (* bind the unbound positions, checking intra-atom repetitions *)
              let rec bind i undo =
                if i = arity then begin
                  go ~first:false (si + 1) rest;
                  List.iter (fun j -> binding.(j) <- -1) undo
                end
                else
                  match ts.(i) with
                  | CC c -> if tuple.(i) = c then bind (i + 1) undo else List.iter (fun j -> binding.(j) <- -1) undo
                  | CV j ->
                    if binding.(j) >= 0 then
                      if binding.(j) = tuple.(i) then bind (i + 1) undo
                      else List.iter (fun j' -> binding.(j') <- -1) undo
                    else begin
                      binding.(j) <- tuple.(i);
                      bind (i + 1) (j :: undo)
                    end
              in
              bind 0 []
            end)
          matches)
  in
  go ~first:true 0 plan.Plan.steps

(* ------------------------------------------------------------------ *)
(* Parallel batch evaluation.

   Plans are computed once per clause on the main domain, so the set of
   bound positions at every step is static: a prepass can materialise every
   EDB relation and build every index an [Index] step will probe — leaving
   the worker domains with pure reads of [env.relations] ([Hash] steps
   build their transient tables in worker-local memory).  Workers derive
   into worker-local relations (budgeted by a [Budget.slice] each) and the
   caller merges them into the batch's target relations: the barrier
   between strata, and between semi-naïve rounds. *)

let prepare_clause env cc =
  List.iter
    (fun (step : Plan.step) ->
      match step.atom with
      | CPred (p, ts) ->
        let r = get_relation env p ~arity:(Array.length ts) in
        if step.strategy = Plan.Index && step.probe <> [] then
          ignore (relation_index r step.probe)
      | CEq _ | CDom _ -> ())
    cc.plan.Plan.steps

(* How a clause's first-step search space is split across workers.  A
   leading [CPred] enumerates tuples (partition by tuple hash); a leading
   domain sweep enumerates constants (partition by constant).  Anything
   else — a leading bound [CEq]/[CDom], an empty body — explores a
   constant-size space, so the whole clause goes to one worker. *)
type scheme = Enum_tuples | Enum_domain | Whole

let scheme_of_plan (plan : Plan.t) =
  match plan.steps with
  | { atom = CPred _; _ } :: _ -> Enum_tuples
  | { atom = CEq (CV _, CV _); _ } :: _ ->
    Enum_domain (* nothing bound at the first step: a domain sweep *)
  | { atom = CDom (CV _); _ } :: _ -> Enum_domain
  | _ -> Whole

(* Evaluate [assignments] — (target index, compiled clause) pairs — into
   [targets], in parallel when a pool with more than one worker is given.
   [count_derived] controls whether the merge reports "eval.derived_facts"
   (the semi-naïve driver counts additions to the full relations itself). *)
let eval_batch env ?(count_derived = true) pool targets assignments =
  match pool with
  | Some pool when Pool.jobs pool > 1 && assignments <> [] ->
    let jobs = Pool.jobs pool in
    List.iter (fun (_, cc) -> prepare_clause env cc) assignments;
    let work = Array.of_list assignments in
    let schemes = Array.map (fun (_, cc) -> scheme_of_plan cc.plan) work in
    let locals =
      Array.init jobs (fun _ ->
          Array.map (fun (t : relation) -> relation_create t.arity) targets)
    in
    let slices =
      Array.init jobs (fun _ -> Budget.slice ~parts:jobs env.budget)
    in
    let wenvs =
      Array.init jobs (fun w ->
          { env with budget = slices.(w); observe = false; ticks = 0; reads = 0 })
    in
    Pool.run pool (fun w ->
        let wenv = wenvs.(w) in
        let keep h = (h land max_int) mod jobs = w in
        Array.iteri
          (fun ci (ti, cc) ->
            match schemes.(ci) with
            | Whole -> if ci mod jobs = w then eval_compiled wenv locals.(w).(ti) cc
            | Enum_tuples | Enum_domain ->
              eval_compiled wenv locals.(w).(ti) ~keep cc)
          work);
    (* merge: worker budgets and read counts back into the parent, worker
       derivations into the target relations (deduplicating across workers) *)
    Array.iter (fun s -> Budget.absorb env.budget ~from:s) slices;
    Array.iter (fun wenv -> env.reads <- env.reads + wenv.reads) wenvs;
    let added = ref 0 in
    Array.iteri
      (fun w wlocals ->
        Array.iteri
          (fun ti local ->
            Hashtbl.iter
              (fun tuple () ->
                if relation_add targets.(ti) tuple then incr added)
              local.tuples)
          wlocals;
        if env.observe && Obs.enabled () then
          Obs.count
            (Printf.sprintf "eval.worker%d.derived" w)
            (Array.fold_left (fun acc l -> acc + relation_size l) 0 wlocals))
      locals;
    if env.observe then begin
      if count_derived then Obs.count "eval.derived_facts" !added;
      Obs.incr "eval.parallel_rounds"
    end
  | _ ->
    List.iter (fun (ti, cc) -> eval_compiled env targets.(ti) cc) assignments

(* ------------------------------------------------------------------ *)
(* Compiled programs and the plan cache.

   The stratum structure (from [Ndl.strata]) and the clause groupings are
   data-independent and built upfront; per-clause plans are filled in
   lazily during the first evaluation, when the relations a clause reads
   have their true sizes (a fixpoint's delta variants are planned after
   round 0, against the actual base deltas).  A [plan_cache] keeps the
   whole compiled program across runs of the same query value: [Prepared]
   queries replan only when the store size drifts past a threshold. *)

type cstraight = {
  spred : Symbol.t;
  sarity : int;
  sclauses : Ndl.clause list;
  mutable sccs : compiled list option;
}

type cfixpoint = {
  fpreds : (Symbol.t * int) array;
  fdelta : Symbol.t array;  (* delta symbol per predicate, aligned *)
  ftransient : Symbol.Set.t;  (* the delta symbols, for the planner *)
  fbase_clauses : (int * Ndl.clause) list;
  fvariant_clauses : (int * Ndl.clause) list;
  mutable fbase : (int * compiled) list option;
  mutable fvariants : (int * compiled) list option;
}

type cstratum = CStraight of cstraight | CFixpoint of cfixpoint

type cached = {
  cfor : Ndl.query;  (* physical identity of the planned query *)
  cnaive : bool;
  catoms : int;  (* ABox size at plan time, for the replan threshold *)
  cstrata : cstratum array;
}

type plan_cache = { mutable slot : cached option }

let plan_cache () = { slot = None }

let replan_factor = 2.0
(* a cached plan survives while |ABox| stays within this factor of its
   plan-time size in either direction *)

(* One delta variant per in-stratum body atom: that atom probes the delta
   relation, every other atom the full one. *)
let delta_variants scc delta_of (c : Ndl.clause) =
  let rec go prefix acc = function
    | [] -> List.rev acc
    | (Ndl.Pred (p, ts) as a) :: rest when Symbol.Set.mem p scc ->
      let variant =
        {
          c with
          Ndl.body =
            List.rev_append prefix
              (Ndl.Pred (Symbol.Map.find p delta_of, ts) :: rest);
        }
      in
      go (a :: prefix) (variant :: acc) rest
    | a :: rest -> go (a :: prefix) acc rest
  in
  go [] [] c.Ndl.body

let skeleton ~naive ~atoms (q : Ndl.query) =
  let by_head = Symbol.Tbl.create 16 in
  List.iter
    (fun (c : Ndl.clause) ->
      let cur =
        Option.value ~default:[] (Symbol.Tbl.find_opt by_head (fst c.head))
      in
      Symbol.Tbl.replace by_head (fst c.head) (c :: cur))
    q.clauses;
  let clauses_of p =
    List.rev (Option.value ~default:[] (Symbol.Tbl.find_opt by_head p))
  in
  let arity_of = function
    | (c : Ndl.clause) :: _ -> List.length (snd c.head)
    | [] -> 0
  in
  let cstrata =
    List.map
      (fun (preds, recursive) ->
        match (preds, recursive) with
        | [ p ], false ->
          let clauses = clauses_of p in
          CStraight
            { spred = p; sarity = arity_of clauses; sclauses = clauses; sccs = None }
        | preds, _ ->
          let scc = Symbol.Set.of_list preds in
          let fpreds =
            Array.of_list
              (List.map (fun p -> (p, arity_of (clauses_of p))) preds)
          in
          let fdelta =
            Array.map
              (fun (p, _) -> Symbol.fresh ("delta:" ^ Symbol.name p))
              fpreds
          in
          let delta_of =
            snd
              (Array.fold_left
                 (fun (i, m) (p, _) ->
                   (i + 1, Symbol.Map.add p fdelta.(i) m))
                 (0, Symbol.Map.empty) fpreds)
          in
          let ftransient =
            Array.fold_left
              (fun acc d -> Symbol.Set.add d acc)
              Symbol.Set.empty fdelta
          in
          let base_clauses =
            List.concat
              (List.mapi
                 (fun i (p, _) ->
                   List.map (fun c -> (i, c)) (clauses_of p))
                 (Array.to_list fpreds))
          in
          let variant_clauses =
            List.concat_map
              (fun (i, c) ->
                List.map (fun v -> (i, v)) (delta_variants scc delta_of c))
              base_clauses
          in
          CFixpoint
            {
              fpreds;
              fdelta;
              ftransient;
              fbase_clauses = base_clauses;
              fvariant_clauses = variant_clauses;
              fbase = None;
              fvariants = None;
            })
      (Ndl.strata q)
  in
  { cfor = q; cnaive = naive; catoms = atoms; cstrata = Array.of_list cstrata }

let cache_disposition ?plan ~naive (q : Ndl.query) abox =
  match plan with
  | None -> `Uncached
  | Some cache -> (
    match cache.slot with
    | Some cp when cp.cfor == q && cp.cnaive = naive ->
      let ratio =
        float_of_int (Abox.num_atoms abox) /. float_of_int (max 1 cp.catoms)
      in
      if ratio >= 1.0 /. replan_factor && ratio <= replan_factor then `Hit
      else `Replan
    | Some _ -> `Replan
    | None -> `Fresh)

(* ------------------------------------------------------------------ *)
(* Stratum drivers *)

let round_marker env =
  if env.observe then begin
    Fault.hit Fault.eval_ndl_round;
    Obs.incr "eval.rounds"
  end

let eval_straight env pool ~naive (st : cstraight) =
  round_marker env;
  let target = relation_create st.sarity in
  (* register first so in-stratum references resolve to the (empty) target *)
  Symbol.Tbl.replace env.relations st.spred target;
  let ccs =
    match st.sccs with
    | Some ccs -> ccs
    | None ->
      let ccs =
        List.map
          (compile_and_plan env ~naive ~transient:Symbol.Set.empty)
          st.sclauses
      in
      st.sccs <- Some ccs;
      ccs
  in
  eval_batch env pool [| target |] (List.map (fun cc -> (0, cc)) ccs)

(* Semi-naïve fixpoint for a recursive stratum (naïve re-derivation when
   [naive]).  Derivation happens into per-round accumulators under an
   unobserved child environment; the driver itself counts the genuinely new
   tuples and fires the per-round fault site / counters, so telemetry means
   the same thing it does on the straight path. *)
let eval_fixpoint env pool ~naive (fx : cfixpoint) =
  let qenv = { env with observe = false } in
  let fulls =
    Array.map
      (fun (p, arity) ->
        let r = relation_create arity in
        Symbol.Tbl.replace env.relations p r;
        r)
      fx.fpreds
  in
  let fresh_accs () = Array.map (fun (r : relation) -> relation_create r.arity) fulls in
  let merge accs =
    let added = ref 0 in
    let deltas =
      Array.mapi
        (fun i (acc : relation) ->
          let delta = relation_create acc.arity in
          Hashtbl.iter
            (fun tuple () ->
              if relation_add fulls.(i) tuple then begin
                incr added;
                ignore (relation_add delta tuple)
              end)
            acc.tuples;
          delta)
        accs
    in
    if env.observe then Obs.count "eval.derived_facts" !added;
    (deltas, !added)
  in
  let compile_assignments ~naive clauses =
    List.map
      (fun (ti, c) ->
        (ti, compile_and_plan qenv ~naive ~transient:fx.ftransient c))
      clauses
  in
  let base_ccs =
    match fx.fbase with
    | Some ccs -> ccs
    | None ->
      let ccs = compile_assignments ~naive fx.fbase_clauses in
      fx.fbase <- Some ccs;
      ccs
  in
  if naive then begin
    (* naïve fixpoint: re-derive every clause from the full relations *)
    let rec loop () =
      round_marker env;
      let accs = fresh_accs () in
      eval_batch qenv ~count_derived:false pool accs base_ccs;
      let _, added = merge accs in
      if added > 0 then loop ()
    in
    loop ()
  end
  else begin
    round_marker env;
    let acc0 = fresh_accs () in
    eval_batch qenv ~count_derived:false pool acc0 base_ccs;
    let deltas0, added0 = merge acc0 in
    if added0 > 0 then begin
      let register deltas =
        Array.iteri
          (fun i d -> Symbol.Tbl.replace qenv.relations fx.fdelta.(i) d)
          deltas
      in
      register deltas0;
      (* delta variants are planned once, here, against the true round-0
         sizes of the full and delta relations *)
      let variant_ccs =
        match fx.fvariants with
        | Some ccs -> ccs
        | None ->
          let ccs = compile_assignments ~naive:false fx.fvariant_clauses in
          fx.fvariants <- Some ccs;
          ccs
      in
      let rec loop deltas =
        register deltas;
        round_marker env;
        let accs = fresh_accs () in
        eval_batch qenv ~count_derived:false pool accs variant_ccs;
        let deltas', added = merge accs in
        if added > 0 then loop deltas'
      in
      loop deltas0;
      (* the delta views are dead past the fixpoint *)
      Array.iter (fun d -> Symbol.Tbl.remove qenv.relations d) fx.fdelta
    end
  end;
  env.reads <- qenv.reads;
  env.ticks <- qenv.ticks

(* ------------------------------------------------------------------ *)

let plan_gauges cstrata =
  let index_probes = ref 0
  and hash_joins = ref 0
  and scans = ref 0
  and reordered = ref 0 in
  let note (cc : compiled) =
    if cc.plan.Plan.reordered then incr reordered;
    List.iter
      (fun (s : Plan.step) ->
        match s.atom with
        | CPred _ -> (
          match s.strategy with
          | Plan.Index -> incr index_probes
          | Plan.Hash -> incr hash_joins
          | Plan.Scan -> incr scans)
        | CEq _ | CDom _ -> ())
      cc.plan.Plan.steps
  in
  Array.iter
    (function
      | CStraight st -> List.iter note (Option.value ~default:[] st.sccs)
      | CFixpoint fx ->
        List.iter (fun (_, cc) -> note cc) (Option.value ~default:[] fx.fbase);
        List.iter
          (fun (_, cc) -> note cc)
          (Option.value ~default:[] fx.fvariants))
    cstrata;
  Obs.set_int "eval.plan.index_probes" !index_probes;
  Obs.set_int "eval.plan.hash_joins" !hash_joins;
  Obs.set_int "eval.plan.scans" !scans;
  Obs.set_int "eval.plan.reordered" !reordered

let run_unobserved ?pool ?plan ~naive ~observe ~budget ~deadline ~edb
    ~extra_domain ~explain (q : Ndl.query) abox =
  let idb = Ndl.idb_preds q in
  let domain =
    Array.of_list
      (List.sort_uniq Int.compare
         (List.map
            (fun (c : Abox.const) -> (c :> int))
            (Abox.individuals abox @ extra_domain)))
  in
  let domain_set = Hashtbl.create (Array.length domain * 2) in
  Array.iter (fun c -> Hashtbl.replace domain_set c ()) domain;
  let env =
    {
      relations = Symbol.Tbl.create 64;
      abox;
      external_edb = edb;
      domain;
      domain_set;
      deadline;
      budget;
      observe;
      explain;
      ticks = 0;
      reads = 0;
    }
  in
  let disposition = cache_disposition ?plan ~naive q abox in
  let program =
    match (disposition, plan) with
    | `Hit, Some cache -> Option.get cache.slot
    | (`Replan | `Fresh), Some cache ->
      let cp = skeleton ~naive ~atoms:(Abox.num_atoms abox) q in
      cache.slot <- Some cp;
      cp
    | _ -> skeleton ~naive ~atoms:(Abox.num_atoms abox) q
  in
  if observe then begin
    match disposition with
    | `Hit -> Obs.incr "eval.plan.cache_hits"
    | `Replan -> Obs.incr "eval.plan.replans"
    | `Fresh | `Uncached -> ()
  end;
  Array.iter
    (function
      | CStraight st -> eval_straight env pool ~naive st
      | CFixpoint fx -> eval_fixpoint env pool ~naive fx)
    program.cstrata;
  let idb_relations =
    Symbol.Set.fold
      (fun p acc ->
        match Symbol.Tbl.find_opt env.relations p with
        | Some r -> Symbol.Map.add p r acc
        | None -> acc)
      idb Symbol.Map.empty
  in
  let generated_tuples =
    Symbol.Map.fold (fun _ r acc -> acc + relation_size r) idb_relations 0
  in
  let answers =
    match Symbol.Map.find_opt q.goal idb_relations with
    | Some r -> relation_tuples r
    | None -> []
  in
  if observe && Obs.enabled () then begin
    Obs.set_int "eval.answers" (List.length answers);
    Obs.set_int "eval.generated_tuples" generated_tuples;
    Obs.count "eval.tuples_read" env.reads;
    plan_gauges program.cstrata;
    (match pool with
    | Some p when Pool.jobs p > 1 -> Obs.set_int "eval.workers" (Pool.jobs p)
    | _ -> ());
    if Budget.is_limited budget then begin
      Obs.set_int "budget.steps" (Budget.steps_spent budget);
      Obs.set_int "budget.size" (Budget.size_spent budget)
    end
  end;
  { answers; generated_tuples; tuples_read = env.reads; idb_relations }

let run ?pool ?plan ?(naive = false) ?(observe = true) ?(budget = Budget.none)
    ?(deadline = fun () -> false) ?(edb = fun _ _ -> None)
    ?(extra_domain = []) ?explain q abox =
  if observe then
    let attrs =
      let plan_attr =
        if naive then "naive"
        else
          match cache_disposition ?plan ~naive q abox with
          | `Hit -> "cached"
          | `Replan -> "replanned"
          | `Fresh | `Uncached -> "fresh"
      in
      ("plan", plan_attr)
      ::
      (match pool with
      | Some p when Pool.jobs p > 1 -> [ ("workers", string_of_int (Pool.jobs p)) ]
      | _ -> [])
    in
    Obs.with_span ~attrs "eval.ndl" (fun () ->
        run_unobserved ?pool ?plan ~naive ~observe ~budget ~deadline ~edb
          ~extra_domain ~explain q abox)
  else
    run_unobserved ?pool ?plan ~naive ~observe ~budget ~deadline ~edb
      ~extra_domain ~explain q abox

let answers ?pool ?observe ?budget ?plan ?naive q abox =
  (run ?pool ?observe ?budget ?plan ?naive q abox).answers

let boolean q abox =
  match (run q abox).answers with [] -> false | _ :: _ -> true

let explain ?(naive = false) ?(edb = fun _ _ -> None) q abox =
  let lines = ref [] in
  ignore
    (run ~observe:false ~naive ~edb ~explain:(fun s -> lines := s :: !lines) q
       abox);
  List.rev !lines

(* Testing hooks: the unit suite pins the relation-internals contract —
   indexes are built by one full scan per position list and then maintained
   incrementally, and the sorted tuple view is memoised until the next
   mutation. *)
module Internal = struct
  let relation_create = relation_create

  let relation_add r tuple =
    relation_add r (Array.of_list (List.map (fun (c : Symbol.t) -> (c :> int)) tuple))

  let relation_lookup r positions key =
    List.map
      (fun t -> List.map Symbol.unsafe_of_int (Array.to_list t))
      (relation_lookup r positions
         (List.map (fun (c : Symbol.t) -> (c :> int)) key))

  let index_builds r = r.index_builds
  let index_positions r = List.map fst r.indexes
  let sorted_view_memoised r = r.sorted_view <> None
end
