open Obda_syntax
open Obda_data
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Pool = Obda_runtime.Pool
module Obs = Obda_obs.Obs

exception Timeout

(* ------------------------------------------------------------------ *)
(* Relations *)

module Key = struct
  type t = int list

  let equal = List.equal Int.equal
  let hash = Hashtbl.hash
end

module KeyTbl = Hashtbl.Make (Key)

type relation = {
  arity : int;
  tuples : (int array, unit) Hashtbl.t;
  mutable indexes : (int list * int array list KeyTbl.t) list;
      (* sorted position list -> key values -> matching tuples *)
  mutable index_builds : int;
      (* full-scan index constructions — additions maintain existing
         indexes incrementally, so this stays at one per position list *)
  mutable sorted_view : Symbol.t list list option;
      (* memoised [relation_tuples] result, invalidated on mutation *)
}

let relation_create arity =
  {
    arity;
    tuples = Hashtbl.create 64;
    indexes = [];
    index_builds = 0;
    sorted_view = None;
  }

let relation_arity r = r.arity
let relation_size r = Hashtbl.length r.tuples

let relation_tuples r =
  match r.sorted_view with
  | Some view -> view
  | None ->
    let view =
      Hashtbl.fold (fun t () acc -> Array.to_list t :: acc) r.tuples []
      |> List.sort (List.compare Int.compare)
      |> List.map (List.map Symbol.unsafe_of_int)
    in
    r.sorted_view <- Some view;
    view

let relation_add r tuple =
  if Hashtbl.mem r.tuples tuple then false
  else begin
    Hashtbl.add r.tuples tuple ();
    r.sorted_view <- None;
    (* keep existing indexes in sync *)
    List.iter
      (fun (positions, tbl) ->
        let key = List.map (fun p -> tuple.(p)) positions in
        let cur = Option.value ~default:[] (KeyTbl.find_opt tbl key) in
        KeyTbl.replace tbl key (tuple :: cur))
      r.indexes;
    true
  end

let relation_index r positions =
  match List.assoc_opt positions r.indexes with
  | Some tbl -> tbl
  | None ->
    let tbl = KeyTbl.create (max 64 (Hashtbl.length r.tuples)) in
    Hashtbl.iter
      (fun tuple () ->
        let key = List.map (fun p -> tuple.(p)) positions in
        let cur = Option.value ~default:[] (KeyTbl.find_opt tbl key) in
        KeyTbl.replace tbl key (tuple :: cur))
      r.tuples;
    r.indexes <- (positions, tbl) :: r.indexes;
    r.index_builds <- r.index_builds + 1;
    tbl

let relation_lookup r positions key =
  if positions = [] then
    Hashtbl.fold (fun t () acc -> t :: acc) r.tuples []
  else
    let tbl = relation_index r positions in
    Option.value ~default:[] (KeyTbl.find_opt tbl key)

(* ------------------------------------------------------------------ *)
(* Compiled clauses *)

type cterm = CV of int | CC of int

type catom =
  | CPred of Symbol.t * cterm array
  | CEq of cterm * cterm
  | CDom of cterm

let compile_clause (c : Ndl.clause) =
  let vars = Ndl.clause_vars c in
  let index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace index v i) vars;
  let cterm = function
    | Ndl.Var v -> CV (Hashtbl.find index v)
    | Ndl.Cst c -> CC (c :> int)
  in
  let catom = function
    | Ndl.Pred (p, ts) -> CPred (p, Array.of_list (List.map cterm ts))
    | Ndl.Eq (t1, t2) -> CEq (cterm t1, cterm t2)
    | Ndl.Dom t -> CDom (cterm t)
  in
  let head = Array.of_list (List.map cterm (snd c.head)) in
  (List.length vars, head, List.map catom c.body)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

type result = {
  answers : Symbol.t list list;
  generated_tuples : int;
  idb_relations : relation Symbol.Map.t;
}

type env = {
  relations : relation Symbol.Tbl.t;  (* EDB (from the ABox) and IDB *)
  abox : Abox.t;
  external_edb : Symbol.t -> int -> Symbol.t list list option;
  domain : int array;
  domain_set : (int, unit) Hashtbl.t;
  deadline : unit -> bool;
  budget : Budget.t;
  observe : bool;
      (* when false — worker domains, unobserved batch runs — the evaluator
         must not touch the global telemetry sink or the fault registry *)
  mutable ticks : int;
}

let tick env =
  env.ticks <- env.ticks + 1;
  Budget.step env.budget;
  if env.ticks land 0xFFF = 0 && env.deadline () then raise Timeout

let get_relation env p ~arity =
  match Symbol.Tbl.find_opt env.relations p with
  | Some r -> r
  | None ->
    (* an EDB predicate: the external source first, then the ABox *)
    let r = relation_create arity in
    (match env.external_edb p arity with
    | Some tuples ->
      List.iter
        (fun tuple ->
          ignore
            (relation_add r
               (Array.of_list (List.map (fun (c : Symbol.t) -> (c :> int)) tuple))))
        tuples
    | None -> (
      match arity with
      | 1 ->
        List.iter
          (fun (c : Symbol.t) -> ignore (relation_add r [| (c :> int) |]))
          (Abox.unary_members env.abox p)
      | 2 ->
        List.iter
          (fun ((c : Symbol.t), (d : Symbol.t)) ->
            ignore (relation_add r [| (c :> int); (d :> int) |]))
          (Abox.binary_members env.abox p)
      | 0 -> ()
      | n -> invalid_arg (Printf.sprintf "Eval: EDB predicate of arity %d" n)));
    Symbol.Tbl.replace env.relations p r;
    r

(* Choose a static atom order for a clause: repeatedly pick the cheapest
   atom given the variables bound so far. *)
let order_atoms env nvars atoms =
  let bound = Array.make nvars false in
  let term_bound = function CV i -> bound.(i) | CC _ -> true in
  let score = function
    | CEq (t1, t2) ->
      if term_bound t1 || term_bound t2 then max_int else -1000
    | CDom t -> if term_bound t then max_int - 1 else -100
    | CPred (p, ts) ->
      let bound_count =
        Array.fold_left (fun acc t -> if term_bound t then acc + 1 else acc) 0 ts
      in
      let size =
        match Symbol.Tbl.find_opt env.relations p with
        | Some r -> relation_size r
        | None -> 0 (* EDB not yet materialised; assume large-ish *)
      in
      (bound_count * 1_000_000) - min size 999_999
  in
  let bind_atom = function
    | CEq (t1, t2) | CPred (_, [| t1; t2 |]) ->
      (match t1 with CV i -> bound.(i) <- true | CC _ -> ());
      (match t2 with CV i -> bound.(i) <- true | CC _ -> ())
    | CDom t | CPred (_, [| t |]) -> (
      match t with CV i -> bound.(i) <- true | CC _ -> ())
    | CPred (_, ts) ->
      Array.iter (function CV i -> bound.(i) <- true | CC _ -> ()) ts
  in
  let rec pick acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let best =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if score a > score b then Some a else best)
          None remaining
      in
      let a = Option.get best in
      bind_atom a;
      pick (a :: acc) (List.filter (fun a' -> a' != a) remaining)
  in
  pick [] atoms

type compiled = { nvars : int; head : cterm array; body : catom list }

let compile_and_order env (c : Ndl.clause) =
  let nvars, head, body = compile_clause c in
  { nvars; head; body = order_atoms env nvars body }

(* Evaluate one compiled clause into [target].  [keep], if given, is a
   partition filter consulted only at the clause's first atom: for a leading
   [CPred] it receives the hash of each candidate tuple, for a leading
   domain sweep (unbound [CDom], unbound–unbound [CEq]) the domain constant.
   A worker passing [keep] sees a disjoint slice of the first atom's search
   space; the union over workers is exactly the sequential enumeration. *)
let eval_compiled env target ?keep { nvars; head; body } =
  let accept = match keep with None -> fun _ -> true | Some k -> k in
  let binding = Array.make nvars (-1) in
  let value = function CV i -> binding.(i) | CC c -> c in
  let is_bound = function CV i -> binding.(i) >= 0 | CC _ -> true in
  let emit () =
    let tuple =
      Array.map
        (fun t ->
          let v = value t in
          assert (v >= 0);
          v)
        head
    in
    if relation_add target tuple then begin
      Budget.grow env.budget;
      if env.observe then Obs.incr "eval.derived_facts"
    end
  in
  let rec go ~first atoms =
    tick env;
    match atoms with
    | [] -> emit ()
    | CEq (t1, t2) :: rest -> (
      match (is_bound t1, is_bound t2) with
      | true, true -> if value t1 = value t2 then go ~first:false rest
      | true, false -> (
        match t2 with
        | CV i ->
          binding.(i) <- value t1;
          go ~first:false rest;
          binding.(i) <- -1
        | CC _ -> assert false)
      | false, true -> (
        match t1 with
        | CV i ->
          binding.(i) <- value t2;
          go ~first:false rest;
          binding.(i) <- -1
        | CC _ -> assert false)
      | false, false -> (
        (* last resort: both sides range over the active domain *)
        match (t1, t2) with
        | CV i, CV j ->
          Array.iter
            (fun c ->
              if (not first) || accept c then begin
                binding.(i) <- c;
                binding.(j) <- c;
                go ~first:false rest;
                binding.(i) <- -1;
                binding.(j) <- -1
              end)
            env.domain;
          binding.(i) <- -1;
          binding.(j) <- -1
        | _ -> assert false))
    | CDom t :: rest ->
      if is_bound t then begin
        (* membership in the active domain *)
        if Hashtbl.mem env.domain_set (value t) then go ~first:false rest
      end
      else (
        match t with
        | CV i ->
          Array.iter
            (fun c ->
              if (not first) || accept c then begin
                binding.(i) <- c;
                go ~first:false rest
              end)
            env.domain;
          binding.(i) <- -1
        | CC _ -> assert false)
    | CPred (p, ts) :: rest ->
      let arity = Array.length ts in
      let r = get_relation env p ~arity in
      (* bound positions and their key *)
      let positions = ref [] and key = ref [] in
      Array.iteri
        (fun i t ->
          if is_bound t then begin
            positions := i :: !positions;
            key := value t :: !key
          end)
        ts;
      let positions = List.rev !positions and key = List.rev !key in
      let matches = relation_lookup r positions key in
      List.iter
        (fun tuple ->
          if (not first) || accept (Hashtbl.hash tuple) then
            (* bind the unbound positions, checking intra-atom repetitions *)
            let rec bind i undo =
              if i = arity then begin
                go ~first:false rest;
                List.iter (fun j -> binding.(j) <- -1) undo
              end
              else
                match ts.(i) with
                | CC c -> if tuple.(i) = c then bind (i + 1) undo else List.iter (fun j -> binding.(j) <- -1) undo
                | CV j ->
                  if binding.(j) >= 0 then
                    if binding.(j) = tuple.(i) then bind (i + 1) undo
                    else List.iter (fun j' -> binding.(j') <- -1) undo
                  else begin
                    binding.(j) <- tuple.(i);
                    bind (i + 1) (j :: undo)
                  end
            in
            bind 0 [])
        matches
  in
  go ~first:true body

let eval_clause env target c = eval_compiled env target (compile_and_order env c)

(* ------------------------------------------------------------------ *)
(* Parallel stratum evaluation.

   After [order_atoms] the set of bound variables at each body atom is
   static: when [go] reaches an atom, exactly the variables of earlier
   atoms are bound.  So the index positions every [CPred] atom will probe
   are known before evaluation starts, and a prepass on the calling domain
   can materialise every EDB relation and build every index the workers
   will read — leaving the worker domains with pure reads of
   [env.relations].  Workers derive into worker-local relations (budgeted
   by a [Budget.slice] each) and the caller merges them into the stratum's
   global relation: the barrier between strata of [Ndl.topo_order]. *)

let prepare_clause env { nvars; body; _ } =
  let bound = Array.make nvars false in
  List.iter
    (fun atom ->
      (match atom with
      | CPred (p, ts) ->
        let r = get_relation env p ~arity:(Array.length ts) in
        let positions = ref [] in
        Array.iteri
          (fun i t ->
            match t with
            | CC _ -> positions := i :: !positions
            | CV j -> if bound.(j) then positions := i :: !positions)
          ts;
        let positions = List.rev !positions in
        if positions <> [] then ignore (relation_index r positions)
      | CEq _ | CDom _ -> ());
      (* every variable of an atom is bound once [go] moves past it *)
      match atom with
      | CPred (_, ts) ->
        Array.iter (function CV j -> bound.(j) <- true | CC _ -> ()) ts
      | CEq (t1, t2) ->
        List.iter
          (function CV j -> bound.(j) <- true | CC _ -> ())
          [ t1; t2 ]
      | CDom t -> ( match t with CV j -> bound.(j) <- true | CC _ -> ()))
    body

(* How a clause's first-atom search space is split across workers.  A
   leading [CPred] enumerates tuples (partition by tuple hash); a leading
   domain sweep enumerates constants (partition by constant).  Anything
   else — a leading bound [CEq]/[CDom], an empty body — explores a
   constant-size space, so the whole clause goes to one worker. *)
type scheme = Enum_tuples | Enum_domain | Whole

let scheme_of_body = function
  | CPred _ :: _ -> Enum_tuples
  | CEq (CV _, CV _) :: _ -> Enum_domain (* nothing bound at the first atom *)
  | CDom (CV _) :: _ -> Enum_domain
  | _ -> Whole

let eval_stratum_parallel env pool target clauses =
  let jobs = Pool.jobs pool in
  let work =
    Array.of_list
      (List.map
         (fun c ->
           let cc = compile_and_order env c in
           prepare_clause env cc;
           cc)
         clauses)
  in
  let schemes = Array.map (fun cc -> scheme_of_body cc.body) work in
  let locals = Array.init jobs (fun _ -> relation_create target.arity) in
  let slices = Array.init jobs (fun _ -> Budget.slice ~parts:jobs env.budget) in
  Pool.run pool (fun w ->
      let wenv =
        { env with budget = slices.(w); observe = false; ticks = 0 }
      in
      let keep h = (h land max_int) mod jobs = w in
      Array.iteri
        (fun ci cc ->
          match schemes.(ci) with
          | Whole -> if ci mod jobs = w then eval_compiled wenv locals.(w) cc
          | Enum_tuples | Enum_domain -> eval_compiled wenv locals.(w) ~keep cc)
        work);
  (* merge: worker budgets back into the parent for reporting, worker
     derivations into the stratum relation (deduplicating across workers) *)
  Array.iter (fun s -> Budget.absorb env.budget ~from:s) slices;
  let added = ref 0 in
  Array.iteri
    (fun w local ->
      let before = relation_size target in
      Hashtbl.iter
        (fun tuple () -> ignore (relation_add target tuple))
        local.tuples;
      added := !added + (relation_size target - before);
      if env.observe && Obs.enabled () then
        Obs.count
          (Printf.sprintf "eval.worker%d.derived" w)
          (relation_size local))
    locals;
  if env.observe then begin
    Obs.count "eval.derived_facts" !added;
    Obs.incr "eval.parallel_rounds"
  end

let run_unobserved ?pool ~observe ~budget ~deadline ~edb ~extra_domain
    (q : Ndl.query) abox =
  let order = Ndl.topo_order q in
  let idb = Ndl.idb_preds q in
  let domain =
    Array.of_list
      (List.sort_uniq Int.compare
         (List.map
            (fun (c : Abox.const) -> (c :> int))
            (Abox.individuals abox @ extra_domain)))
  in
  let domain_set = Hashtbl.create (Array.length domain * 2) in
  Array.iter (fun c -> Hashtbl.replace domain_set c ()) domain;
  let env =
    {
      relations = Symbol.Tbl.create 64;
      abox;
      external_edb = edb;
      domain;
      domain_set;
      deadline;
      budget;
      observe;
      ticks = 0;
    }
  in
  (* group clauses by head *)
  let by_head = Symbol.Tbl.create 16 in
  List.iter
    (fun (c : Ndl.clause) ->
      let cur = Option.value ~default:[] (Symbol.Tbl.find_opt by_head (fst c.head)) in
      Symbol.Tbl.replace by_head (fst c.head) (c :: cur))
    q.clauses;
  List.iter
    (fun p ->
      (* one materialisation round per IDB predicate (dependencies first) *)
      if observe then begin
        Fault.hit Fault.eval_ndl_round;
        Obs.incr "eval.rounds"
      end;
      let clauses = Option.value ~default:[] (Symbol.Tbl.find_opt by_head p) in
      let arity =
        match clauses with
        | c :: _ -> List.length (snd c.Ndl.head)
        | [] -> 0
      in
      let target = relation_create arity in
      (* register first so self-references would be caught by topo_order *)
      Symbol.Tbl.replace env.relations p target;
      let clauses = List.rev clauses in
      match pool with
      | Some pool when Pool.jobs pool > 1 && clauses <> [] ->
        eval_stratum_parallel env pool target clauses
      | _ -> List.iter (fun c -> eval_clause env target c) clauses)
    order;
  let idb_relations =
    Symbol.Set.fold
      (fun p acc ->
        match Symbol.Tbl.find_opt env.relations p with
        | Some r -> Symbol.Map.add p r acc
        | None -> acc)
      idb Symbol.Map.empty
  in
  let generated_tuples =
    Symbol.Map.fold (fun _ r acc -> acc + relation_size r) idb_relations 0
  in
  let answers =
    match Symbol.Map.find_opt q.goal idb_relations with
    | Some r -> relation_tuples r
    | None -> []
  in
  if observe && Obs.enabled () then begin
    Obs.set_int "eval.answers" (List.length answers);
    Obs.set_int "eval.generated_tuples" generated_tuples;
    (match pool with
    | Some p when Pool.jobs p > 1 -> Obs.set_int "eval.workers" (Pool.jobs p)
    | _ -> ());
    if Budget.is_limited budget then begin
      Obs.set_int "budget.steps" (Budget.steps_spent budget);
      Obs.set_int "budget.size" (Budget.size_spent budget)
    end
  end;
  { answers; generated_tuples; idb_relations }

let run ?pool ?(observe = true) ?(budget = Budget.none)
    ?(deadline = fun () -> false) ?(edb = fun _ _ -> None)
    ?(extra_domain = []) q abox =
  if observe then
    let attrs =
      match pool with
      | Some p when Pool.jobs p > 1 -> [ ("workers", string_of_int (Pool.jobs p)) ]
      | _ -> []
    in
    Obs.with_span ~attrs "eval.ndl" (fun () ->
        run_unobserved ?pool ~observe ~budget ~deadline ~edb ~extra_domain q
          abox)
  else
    run_unobserved ?pool ~observe ~budget ~deadline ~edb ~extra_domain q abox

let answers ?pool ?observe ?budget q abox =
  (run ?pool ?observe ?budget q abox).answers

let boolean q abox =
  match (run q abox).answers with [] -> false | _ :: _ -> true

(* Testing hooks: the unit suite pins the relation-internals contract —
   indexes are built by one full scan per position list and then maintained
   incrementally, and the sorted tuple view is memoised until the next
   mutation. *)
module Internal = struct
  let relation_create = relation_create

  let relation_add r tuple =
    relation_add r (Array.of_list (List.map (fun (c : Symbol.t) -> (c :> int)) tuple))

  let relation_lookup r positions key =
    List.map
      (fun t -> List.map Symbol.unsafe_of_int (Array.to_list t))
      (relation_lookup r positions
         (List.map (fun (c : Symbol.t) -> (c :> int)) key))

  let index_builds r = r.index_builds
  let sorted_view_memoised r = r.sorted_view <> None
end
