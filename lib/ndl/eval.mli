(** Bottom-up evaluation of datalog over a data instance.

    Every IDB predicate is fully materialised in dependence order, exactly
    like the RDFox configuration used in the paper's Appendix D (no magic
    sets).  Nonrecursive strata take a single pass; a recursive stratum
    (the engine accepts recursive programs, though the paper's rewritings
    never produce them) runs a semi-naïve fixpoint: per round, every
    recursive clause is rewritten into delta variants — one per in-stratum
    body atom, that atom probing the stratum's delta relation — so rounds
    only join against newly derived tuples.  Clause bodies are reordered
    and given per-atom access strategies by the cost model in {!Plan};
    [naive] restores the legacy written-order/index-only engine as a
    baseline.  The number of generated tuples is reported, matching the
    "generated tuples" columns of Tables 3–5; [tuples_read] counts the
    tuples the matcher pulled from storage, the measure the [eval-plan]
    bench gates on. *)

open Obda_syntax
open Obda_data

exception Timeout

type relation
(** A set of constant tuples of fixed arity. *)

val relation_arity : relation -> int
val relation_size : relation -> int
val relation_tuples : relation -> Symbol.t list list

type result = {
  answers : Symbol.t list list;  (** tuples of the goal relation, sorted *)
  generated_tuples : int;  (** Σ sizes of all materialised IDB relations *)
  tuples_read : int;
      (** tuples delivered from relation storage and domain sweeps;
          identical at every worker count *)
  idb_relations : relation Symbol.Map.t;
}

type plan_cache
(** Holds a compiled, planned program across runs of the same query value
    (physical identity).  A cached plan is reused until the ABox size
    drifts past a 2× threshold in either direction, at which point the
    next run replans (counted by the ["eval.plan.replans"] telemetry
    counter).  Concurrent runs sharing a cache (the server's ANSWER path)
    race only on which thread's plans get memoised: plans are immutable
    data valid for any instance, so a lost race costs duplicated planning
    work, never wrong answers. *)

val plan_cache : unit -> plan_cache
(** A fresh, empty cache — typically one per prepared query. *)

val run :
  ?pool:Obda_runtime.Pool.t ->
  ?plan:plan_cache ->
  ?naive:bool ->
  ?observe:bool ->
  ?budget:Obda_runtime.Budget.t ->
  ?deadline:(unit -> bool) ->
  ?edb:(Symbol.t -> int -> Symbol.t list list option) ->
  ?extra_domain:Symbol.t list ->
  ?explain:(string -> unit) ->
  Ndl.query -> Abox.t -> result
(** Raises [Timeout] whenever [deadline ()] becomes true.

    [plan] caches the compiled program (clause order, per-atom strategies,
    the fixpoint's delta variants) across runs; without it every run plans
    afresh.  [naive = true] selects the legacy baseline: written-order
    heuristic, maintained-index probes only, and a naïve fixpoint that
    re-derives every recursive clause from the full relations each round.

    [explain] receives one line per planned clause (chosen order, per-atom
    strategy, cardinality estimates) as plans are computed; a cached run
    computes no plans and emits nothing.

    [pool] enables the parallel driver: for every stratum of [Ndl.strata]
    — and every round of a recursive stratum's fixpoint — clause bodies
    are evaluated concurrently by the pool's workers (the first planned
    atom's search space is hash-partitioned across workers) and the
    derived relations are merged at the stratum or round barrier.  Plans
    are computed once per clause on the main domain, so workers know every
    index position statically and perform pure reads of the shared
    relations.  Answers are byte-identical to the sequential engine for
    any worker count (relations are sets and the answer view is sorted).
    Each worker runs under a [Budget.slice] of [budget], so step/size caps
    and the wall deadline still bind globally (a budget error from a
    worker reports its slice's limits).  A pool with one worker, or no
    pool, is exactly the sequential engine.

    [observe = false] runs without touching the global telemetry sink or
    the fault registry — required when the caller itself runs on a worker
    domain (the service layer's BATCH path); those globals are
    single-domain.

    [budget] is checked on every matcher step (a budget step per visited
    search node, a size unit per materialised tuple); exhaustion raises
    [Obda_runtime.Error.Obda_error (Budget_exhausted _)].  The legacy
    [deadline] thunk is kept for callers that manage their own clock.

    [edb] supplies tuples for extensional predicates not stored in the ABox
    (e.g. the n-ary relations of a mapped data source); it is consulted
    first, with the ABox as fallback.  [extra_domain] extends the active
    domain (⊤) beyond ind(A). *)

val answers :
  ?pool:Obda_runtime.Pool.t ->
  ?observe:bool ->
  ?budget:Obda_runtime.Budget.t ->
  ?plan:plan_cache ->
  ?naive:bool -> Ndl.query -> Abox.t -> Symbol.t list list

val boolean : Ndl.query -> Abox.t -> bool
(** For a 0-ary goal: whether the goal is derivable. *)

val explain :
  ?naive:bool ->
  ?edb:(Symbol.t -> int -> Symbol.t list list option) ->
  Ndl.query -> Abox.t -> string list
(** Evaluate the query (unobserved) and return one line per planned clause
    describing the chosen atom order and access strategies.  Evaluation is
    required for honest plans: later strata are planned against the true
    sizes of the relations the earlier ones materialised. *)

(** Testing hooks for the relation internals.  The evaluator's performance
    contract, pinned by the unit suite: an index over a position list is
    built by a full scan exactly once per relation and maintained
    incrementally by additions — semi-naïve re-rounds must not rebuild it —
    and {!relation_tuples} memoises its sorted view until the next
    mutation. *)
module Internal : sig
  val relation_create : int -> relation
  val relation_add : relation -> Symbol.t list -> bool
  val relation_lookup : relation -> int list -> Symbol.t list -> Symbol.t list list

  val index_builds : relation -> int
  (** Number of full-scan index constructions performed on this relation. *)

  val index_positions : relation -> int list list
  (** The position lists currently indexed, one entry per index. *)

  val sorted_view_memoised : relation -> bool
  (** Whether a memoised {!relation_tuples} view is currently live. *)
end
