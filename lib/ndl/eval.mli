(** Bottom-up evaluation of nonrecursive datalog over a data instance.

    Every IDB predicate is fully materialised in dependence order, exactly
    like the RDFox configuration used in the paper's Appendix D (no magic
    sets).  The number of generated tuples is reported, matching the
    "generated tuples" columns of Tables 3–5. *)

open Obda_syntax
open Obda_data

exception Timeout

type relation
(** A set of constant tuples of fixed arity. *)

val relation_arity : relation -> int
val relation_size : relation -> int
val relation_tuples : relation -> Symbol.t list list

type result = {
  answers : Symbol.t list list;  (** tuples of the goal relation, sorted *)
  generated_tuples : int;  (** Σ sizes of all materialised IDB relations *)
  idb_relations : relation Symbol.Map.t;
}

val run :
  ?pool:Obda_runtime.Pool.t ->
  ?observe:bool ->
  ?budget:Obda_runtime.Budget.t ->
  ?deadline:(unit -> bool) ->
  ?edb:(Symbol.t -> int -> Symbol.t list list option) ->
  ?extra_domain:Symbol.t list ->
  Ndl.query -> Abox.t -> result
(** Raises [Invalid_argument] on a recursive program and [Timeout] whenever
    [deadline ()] becomes true.

    [pool] enables the parallel driver: for every stratum of
    [Ndl.topo_order], clause bodies are evaluated concurrently by the
    pool's workers — the first body atom's search space is hash-partitioned
    across workers — and the derived relations are merged at the stratum
    barrier.  Answers are byte-identical to the sequential engine for any
    worker count (relations are sets and the answer view is sorted).  Each
    worker runs under a [Budget.slice] of [budget], so step/size caps and
    the wall deadline still bind globally (a budget error from a worker
    reports its slice's limits).  A pool with one worker, or no pool, is
    exactly the sequential engine.

    [observe = false] runs without touching the global telemetry sink or
    the fault registry — required when the caller itself runs on a worker
    domain (the service layer's BATCH path); those globals are
    single-domain.

    [budget] is checked on every matcher step (a budget step per visited
    search node, a size unit per materialised tuple); exhaustion raises
    [Obda_runtime.Error.Obda_error (Budget_exhausted _)].  The legacy
    [deadline] thunk is kept for callers that manage their own clock.

    [edb] supplies tuples for extensional predicates not stored in the ABox
    (e.g. the n-ary relations of a mapped data source); it is consulted
    first, with the ABox as fallback.  [extra_domain] extends the active
    domain (⊤) beyond ind(A). *)

val answers :
  ?pool:Obda_runtime.Pool.t ->
  ?observe:bool ->
  ?budget:Obda_runtime.Budget.t -> Ndl.query -> Abox.t -> Symbol.t list list
val boolean : Ndl.query -> Abox.t -> bool
(** For a 0-ary goal: whether the goal is derivable. *)

(** Testing hooks for the relation internals.  The evaluator's performance
    contract, pinned by the unit suite: an index over a position list is
    built by a full scan exactly once per relation and maintained
    incrementally by additions, and {!relation_tuples} memoises its sorted
    view until the next mutation. *)
module Internal : sig
  val relation_create : int -> relation
  val relation_add : relation -> Symbol.t list -> bool
  val relation_lookup : relation -> int list -> Symbol.t list -> Symbol.t list list

  val index_builds : relation -> int
  (** Number of full-scan index constructions performed on this relation. *)

  val sorted_view_memoised : relation -> bool
  (** Whether a memoised {!relation_tuples} view is currently live. *)
end
