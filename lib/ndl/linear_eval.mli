(** Evaluation of linear NDL queries by reachability in the grounding graph
    — the construction in the proof of Theorem 2, witnessing that linear NDL
    of bounded width is in NL.

    The vertices of the grounding graph are ground IDB atoms; there is an
    edge from Q(c) to Q'(c') when some ground clause derives Q'(c') from
    Q(c) and data atoms.  A goal atom holds iff it is reachable from the set
    X of atoms derivable by IDB-free ground clauses.  Answers agree with the
    bottom-up engine ({!Eval}); this module exists to realise the paper's
    NL algorithm and to cross-check the engine. *)

open Obda_syntax
open Obda_data

val answers :
  ?budget:Obda_runtime.Budget.t -> Ndl.query -> Abox.t -> Symbol.t list list
(** Raises [Obda_runtime.Error.Obda_error (Not_applicable _)] if the program
    is not linear, and [Budget_exhausted] when the reachability frontier
    outgrows the given budget. *)

type graph_stats = {
  vertices : int;  (** ground IDB atoms considered *)
  edges : int;
  sources : int;  (** the set X of Theorem 2 *)
}

val grounding_graph_stats : Ndl.query -> Abox.t -> graph_stats
