open Obda_syntax
open Obda_data
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Error = Obda_runtime.Error
module Obs = Obda_obs.Obs

type ground = Symbol.t * int list

(* backtracking matcher for a conjunction of EDB atoms over the data *)
let rec solutions ?(budget = Budget.none) abox domain env atoms k =
  Budget.step budget;
  match atoms with
  | [] -> k env
  | _ ->
    let bound_term env = function
      | Ndl.Var v -> List.mem_assoc v env
      | Ndl.Cst _ -> true
    in
    let score a =
      List.length (List.filter (bound_term env) (Ndl.atom_terms a))
    in
    let atom =
      List.fold_left
        (fun best a ->
          match best with
          | None -> Some a
          | Some b -> if score a > score b then Some a else best)
        None atoms
      |> Option.get
    in
    let rest = List.filter (fun a -> a != atom) atoms in
    let value env = function
      | Ndl.Var v -> List.assoc_opt v env
      | Ndl.Cst c -> Some (c :> int)
    in
    let continue_with env = solutions ~budget abox domain env rest k in
    let bind env t c =
      match t with
      | Ndl.Cst c' -> if (c' :> int) = c then Some env else None
      | Ndl.Var v -> (
        match List.assoc_opt v env with
        | Some c' -> if c' = c then Some env else None
        | None -> Some ((v, c) :: env))
    in
    (match atom with
    | Ndl.Eq (t1, t2) -> (
      match (value env t1, value env t2) with
      | Some c, _ -> (
        match bind env t2 c with Some env -> continue_with env | None -> ())
      | None, Some d -> (
        match bind env t1 d with Some env -> continue_with env | None -> ())
      | None, None ->
        List.iter
          (fun c ->
            match bind env t1 c with
            | Some env1 -> (
              match bind env1 t2 c with
              | Some env2 -> continue_with env2
              | None -> ())
            | None -> ())
          domain)
    | Ndl.Dom t -> (
      match value env t with
      | Some c -> if List.mem c domain then continue_with env
      | None ->
        List.iter
          (fun c ->
            match bind env t c with
            | Some env -> continue_with env
            | None -> ())
          domain)
    | Ndl.Pred (p, [ t ]) -> (
      match value env t with
      | Some c ->
        if Abox.mem_unary abox p (Symbol.unsafe_of_int c) then continue_with env
      | None ->
        List.iter
          (fun c ->
            match bind env t ((c : Symbol.t) :> int) with
            | Some env -> continue_with env
            | None -> ())
          (Abox.unary_members abox p))
    | Ndl.Pred (p, [ t1; t2 ]) -> (
      match (value env t1, value env t2) with
      | Some c, Some d ->
        if Abox.mem_binary abox p (Symbol.unsafe_of_int c) (Symbol.unsafe_of_int d)
        then continue_with env
      | Some c, None ->
        List.iter
          (fun d ->
            match bind env t2 ((d : Symbol.t) :> int) with
            | Some env -> continue_with env
            | None -> ())
          (Abox.successors abox p (Symbol.unsafe_of_int c))
      | None, Some d ->
        List.iter
          (fun c ->
            match bind env t1 ((c : Symbol.t) :> int) with
            | Some env -> continue_with env
            | None -> ())
          (Abox.predecessors abox p (Symbol.unsafe_of_int d))
      | None, None ->
        List.iter
          (fun ((c : Symbol.t), (d : Symbol.t)) ->
            match bind env t1 (c :> int) with
            | Some env1 -> (
              match bind env1 t2 (d :> int) with
              | Some env2 -> continue_with env2
              | None -> ())
            | None -> ())
          (Abox.binary_members abox p))
    | Ndl.Pred (_, _) -> invalid_arg "Linear_eval: EDB arity > 2")

let ground_head env (p, ts) : ground =
  ( p,
    List.map
      (fun t ->
        match t with
        | Ndl.Cst c -> (c :> int)
        | Ndl.Var v -> (
          match List.assoc_opt v env with
          | Some c -> c
          | None -> invalid_arg "Linear_eval: unsafe head variable"))
      ts )

let run_unobserved ~budget (q : Ndl.query) abox =
  if not (Ndl.is_linear q) then
    Error.not_applicable ~algorithm:"Linear_eval" "program is not linear";
  let idb = Ndl.idb_preds q in
  let domain =
    List.map (fun (c : Abox.const) -> (c :> int)) (Abox.individuals abox)
  in
  let split_body (c : Ndl.clause) =
    List.partition
      (function Ndl.Pred (p, _) -> Symbol.Set.mem p idb | Ndl.Eq _ | Ndl.Dom _ -> false)
      c.Ndl.body
  in
  (* clauses indexed by the IDB predicate they consume *)
  let consumers : (Ndl.clause * Ndl.atom) list Symbol.Tbl.t =
    Symbol.Tbl.create 16
  in
  let source_clauses = ref [] in
  List.iter
    (fun (c : Ndl.clause) ->
      match split_body c with
      | [], _ -> source_clauses := c :: !source_clauses
      | [ (Ndl.Pred (p, _) as a) ], _ ->
        let cur = Option.value ~default:[] (Symbol.Tbl.find_opt consumers p) in
        Symbol.Tbl.replace consumers p ((c, a) :: cur)
      | _ -> assert false)
    q.Ndl.clauses;
  let reached : (ground, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let edges = ref 0 in
  let sources = ref 0 in
  let push g =
    if not (Hashtbl.mem reached g) then begin
      Budget.grow budget;
      Obs.incr "linear_eval.derived_facts";
      Hashtbl.add reached g ();
      Queue.add g queue
    end
  in
  (* the set X: heads of IDB-free ground clauses *)
  List.iter
    (fun (c : Ndl.clause) ->
      solutions ~budget abox domain [] c.Ndl.body (fun env ->
          incr sources;
          push (ground_head env c.Ndl.head)))
    !source_clauses;
  (* forward reachability *)
  while not (Queue.is_empty queue) do
    Fault.hit Fault.eval_linear_round;
    Budget.step budget;
    Obs.incr "linear_eval.rounds";
    let p, args = Queue.pop queue in
    List.iter
      (fun ((c : Ndl.clause), atom) ->
        match atom with
        | Ndl.Pred (_, ts) ->
          (* unify the IDB atom with the reached ground atom *)
          let rec unify env ts args =
            match (ts, args) with
            | [], [] -> Some env
            | t :: ts', a :: args' -> (
              match t with
              | Ndl.Cst c' -> if (c' :> int) = a then unify env ts' args' else None
              | Ndl.Var v -> (
                match List.assoc_opt v env with
                | Some c' -> if c' = a then unify env ts' args' else None
                | None -> unify ((v, a) :: env) ts' args'))
            | _ -> None
          in
          (match unify [] ts args with
          | None -> ()
          | Some env ->
            let _, edb = split_body c in
            solutions ~budget abox domain env edb (fun env' ->
                incr edges;
                push (ground_head env' c.Ndl.head)))
        | Ndl.Eq _ | Ndl.Dom _ -> assert false)
      (Option.value ~default:[] (Symbol.Tbl.find_opt consumers p))
  done;
  if Obs.enabled () then begin
    Obs.set_int "linear_eval.vertices" (Hashtbl.length reached);
    Obs.set_int "linear_eval.edges" !edges;
    Obs.set_int "linear_eval.sources" !sources;
    if Budget.is_limited budget then begin
      Obs.set_int "budget.steps" (Budget.steps_spent budget);
      Obs.set_int "budget.size" (Budget.size_spent budget)
    end
  end;
  (reached, !edges, !sources)

let run ?(budget = Budget.none) q abox =
  Obs.with_span "eval.linear" (fun () -> run_unobserved ~budget q abox)

let answers ?budget q abox =
  let reached, _, _ = run ?budget q abox in
  Hashtbl.fold
    (fun (p, args) () acc ->
      if Symbol.equal p q.Ndl.goal then args :: acc else acc)
    reached []
  |> List.sort (List.compare Int.compare)
  |> List.map (List.map Symbol.unsafe_of_int)

type graph_stats = { vertices : int; edges : int; sources : int }

let grounding_graph_stats q abox =
  let reached, edges, sources = run q abox in
  { vertices = Hashtbl.length reached; edges; sources }
