open Obda_syntax

type cterm = CV of int | CC of int

type catom =
  | CPred of Symbol.t * cterm array
  | CEq of cterm * cterm
  | CDom of cterm

type strategy = Scan | Index | Hash

type step = {
  atom : catom;
  probe : int list;
  strategy : strategy;
  est_matches : float;
}

type t = { steps : step list; est_reads : float; reordered : bool }

type stats = {
  card : Symbol.t -> int;
  distinct : Symbol.t -> int list -> int option;
  transient : Symbol.t -> bool;
  domain : int;
}

let scan_cutoff = 16

let term_bound bound = function CV j -> bound.(j) | CC _ -> true

let atom_probe bound ts =
  let probe = ref [] in
  Array.iteri
    (fun i t ->
      match t with
      | CC _ -> probe := i :: !probe
      | CV j -> if bound.(j) then probe := i :: !probe)
    ts;
  List.rev !probe

let bind bound = function
  | CPred (_, ts) ->
    Array.iter (function CV j -> bound.(j) <- true | CC _ -> ()) ts
  | CEq (t1, t2) ->
    List.iter (function CV j -> bound.(j) <- true | CC _ -> ()) [ t1; t2 ]
  | CDom t -> ( match t with CV j -> bound.(j) <- true | CC _ -> ())

(* Distinct keys under [probe]: exact when the evaluator already holds an
   index on those positions, otherwise capped at |domain|^|probe| — every
   key component ranges over the active domain. *)
let est_distinct stats p probe card =
  match stats.distinct p probe with
  | Some d when d > 0 -> float_of_int d
  | _ ->
    let dom = float_of_int (max 1 stats.domain) in
    Float.max 1.0
      (Float.min
         (float_of_int (max 1 card))
         (dom ** float_of_int (List.length probe)))

(* Access strategy for a predicate atom probed on [probe].  A maintained
   index is build-once and amortised across clauses and rounds, so it wins
   whenever the relation persists — the case where a fresh hash table beats
   it (selective probes never touching most build work) does not arise,
   because the build is already sunk.  A transient relation (a semi-naïve
   delta, replaced every round) would force one full-scan index build per
   round, so there the per-evaluation hash table wins; and at [scan_cutoff]
   tuples or below, walking the relation beats any table. *)
let choose_strategy stats p probe card =
  if probe = [] || card <= scan_cutoff then Scan
  else if stats.transient p then Hash
  else Index

let make stats ~nvars atoms =
  let bound = Array.make nvars false in
  let dom = float_of_int (max 1 stats.domain) in
  let indexed = List.mapi (fun i a -> (i, a)) atoms in
  let score rows (_, a) =
    match a with
    | CPred (p, ts) ->
      let probe = atom_probe bound ts in
      let card = stats.card p in
      let m =
        if probe = [] then float_of_int card
        else float_of_int card /. est_distinct stats p probe card
      in
      let strategy = choose_strategy stats p probe card in
      let reads =
        match strategy with
        | Scan -> rows *. float_of_int card
        | Index -> rows *. m
        | Hash -> float_of_int card +. (rows *. m)
      in
      (rows *. m, reads, { atom = a; probe; strategy; est_matches = m })
    | CEq _ | CDom _ ->
      (* unbound equality / domain atom: a full sweep of the domain *)
      ( rows *. dom,
        rows *. dom,
        { atom = a; probe = []; strategy = Scan; est_matches = dom } )
  in
  let rec pick rows est_reads acc order remaining =
    match remaining with
    | [] -> (List.rev acc, est_reads, List.rev order)
    | _ -> (
      (* a bound equality or domain atom is a free filter: take it now *)
      let filter =
        List.find_opt
          (fun (_, a) ->
            match a with
            | CEq (t1, t2) -> term_bound bound t1 || term_bound bound t2
            | CDom t -> term_bound bound t
            | CPred _ -> false)
          remaining
      in
      match filter with
      | Some ((i, a) as chosen) ->
        bind bound a;
        let step =
          { atom = a; probe = []; strategy = Scan; est_matches = 1.0 }
        in
        pick rows est_reads (step :: acc) (i :: order)
          (List.filter (fun x -> x != chosen) remaining)
      | None ->
        let best =
          List.fold_left
            (fun best cand ->
              let out, reads, _ = score rows cand in
              match best with
              | None -> Some (cand, out, reads)
              | Some (_, bout, breads) ->
                if out < bout || (out = bout && reads < breads) then
                  Some (cand, out, reads)
                else best)
            None remaining
        in
        let ((i, a) as chosen), out, reads = Option.get best in
        let _, _, step = score rows chosen in
        bind bound a;
        pick out (est_reads +. reads) (step :: acc) (i :: order)
          (List.filter (fun x -> x != chosen) remaining))
  in
  let steps, est_reads, order = pick 1.0 0.0 [] [] indexed in
  let reordered = order <> List.sort Int.compare order in
  { steps; est_reads; reordered }

let trivial ~nvars atoms =
  let bound = Array.make nvars false in
  let steps =
    List.map
      (fun a ->
        let step =
          match a with
          | CPred (_, ts) ->
            let probe = atom_probe bound ts in
            {
              atom = a;
              probe;
              strategy = (if probe = [] then Scan else Index);
              est_matches = 0.0;
            }
          | CEq _ | CDom _ ->
            { atom = a; probe = []; strategy = Scan; est_matches = 0.0 }
        in
        bind bound a;
        step)
      atoms
  in
  { steps; est_reads = 0.0; reordered = false }

let describe ~names plan =
  let term = function
    | CV i -> names.(i)
    | CC c -> Symbol.name (Symbol.unsafe_of_int c)
  in
  let atom_str = function
    | CPred (p, ts) ->
      Printf.sprintf "%s(%s)" (Symbol.name p)
        (String.concat "," (Array.to_list (Array.map term ts)))
    | CEq (t1, t2) -> Printf.sprintf "%s = %s" (term t1) (term t2)
    | CDom t -> Printf.sprintf "top(%s)" (term t)
  in
  let positions probe = String.concat "," (List.map string_of_int probe) in
  let step_str s =
    match s.atom with
    | CPred _ ->
      let strat =
        match s.strategy with
        | Scan -> "scan"
        | Index -> Printf.sprintf "index[%s]" (positions s.probe)
        | Hash -> Printf.sprintf "hash[%s]" (positions s.probe)
      in
      Printf.sprintf "%s{%s~%.3g}" (atom_str s.atom) strat s.est_matches
    | CEq _ | CDom _ -> atom_str s.atom
  in
  Printf.sprintf "%s%s  est_reads=%.3g"
    (String.concat " , " (List.map step_str plan.steps))
    (if plan.reordered then "  (reordered)" else "")
    plan.est_reads
