(** Service sessions.

    A session holds a resident ontology, a mutable ABox store, the
    prepared queries registered so far and the content-addressed rewriting
    {!Cache} behind them.  Consistency of (T, A) is checked lazily and
    memoised per (generation, revision) — generation bumps on every load,
    revision on every effective mutation — so answering many queries over
    unchanged data runs the chase-based check once.

    Sessions are safe to share across domains: every mutation happens
    under an internal lock, and reads that feed evaluation go through
    {!freeze}, an O(1) copy-on-write snapshot of the ABox
    ({!Obda_data.Abox.snapshot}).  An [ANSWER]/[BATCH] evaluated via
    {!answer_at} sees exactly the frozen revision, no matter how many
    [ASSERT]/[RETRACT] writers advance the live store concurrently. *)

module Omq := Obda_rewriting.Omq

type t

val create :
  ?budget:Obda_runtime.Budget.t ->
  ?cache_entries:int ->
  ?cache_weight:int ->
  ?jobs:int ->
  unit -> t
(** A fresh session with an empty ABox and no ontology.  [budget] is the
    session-wide resource envelope ({!budget}); [cache_entries] /
    [cache_weight] bound the rewriting cache.  [jobs] (default 1) is the
    evaluation parallelism: with [jobs > 1] a worker {!Obda_runtime.Pool}
    is created on first use and every {!answer} (and the serve loop's
    [BATCH] verb) evaluates on it — answers are byte-identical to
    [jobs = 1].  The network server requires [jobs = 1] (it parallelises
    across connections instead; the pool's [run] is not reentrant).
    Raises [Invalid_argument] when [jobs < 1]. *)

val budget : t -> Obda_runtime.Budget.t
val cache : t -> Cache.t
val tbox : t -> Obda_ontology.Tbox.t option
val abox : t -> Obda_data.Abox.t

val jobs : t -> int

val pool : t -> Obda_runtime.Pool.t option
(** The session's worker pool — [None] for a [jobs = 1] session, otherwise
    created (once) on first call. *)

val close : t -> unit
(** Shut down the worker pool, if one was created.  The session remains
    usable: the next {!pool} call recreates it.  Idempotent. *)

val count_request : t -> unit
val requests : t -> int

val load_ontology : t -> Obda_ontology.Tbox.t -> unit
(** Replace the resident ontology.  Drops all prepared queries (they were
    rewritten against the old TBox), bumps the generation and clears the
    consistency memo; the rewriting cache survives, since its keys digest
    the TBox. *)

val load_data : t -> Obda_data.Abox.t -> unit
(** Replace the data store (bumps the generation). *)

val assert_fact : t -> Obda_data.Abox.fact -> bool
(** Add one fact; [false] if it was already present (no revision bump). *)

val retract_fact : t -> Obda_data.Abox.fact -> bool
(** Remove one fact; [false] if it was absent. *)

val assert_facts : t -> Obda_data.Abox.fact list -> int * int
(** Add a list of facts atomically — one lock acquisition, so a concurrent
    {!freeze} observes either none or all of them.  Returns [(added,
    atoms)]: the number actually added and the post-apply store size,
    both observed under the lock so the pair is consistent even with
    concurrent writers. *)

val retract_facts : t -> Obda_data.Abox.fact list -> int * int
(** Remove a list of facts atomically; returns [(removed, atoms)] as for
    {!assert_facts}. *)

(** {1 Snapshots} *)

type snapshot
(** A frozen view of the session's data: the copy-on-write ABox snapshot,
    its revision, the generation and the TBox it was taken under.  Reading
    a snapshot needs no synchronisation. *)

val freeze : t -> snapshot
(** Take a snapshot of the current store (O(1); under the session lock).
    Guarded by the [abox.snapshot] fault site.  Updates the served
    revision span reported by {!frozen_span}. *)

val snapshot_abox : snapshot -> Obda_data.Abox.t
val snapshot_revision : snapshot -> int

val frozen_span : t -> (int * int) option
(** [Some (lo, hi)] — the smallest and largest ABox revision ever handed
    out by {!freeze}; [None] before the first freeze.  The [STATS] server
    rows render this as the snapshot revision span. *)

val consistent_at : t -> snapshot -> bool
(** Whether (T, A) is consistent at the snapshot's revision, from the
    (generation, revision) memo when available, recomputed on the frozen
    tables (under a [chase.consistency] span) otherwise.  With no ontology
    loaded this is trivially [true]. *)

val consistent : t -> bool
(** {!consistent_at} on a fresh {!freeze} of the live store. *)

val consistency_cached : t -> bool option
(** The memoised verdict for the live store's current (generation,
    revision), or [None] if the next {!consistent} call will recompute. *)

val prepare :
  ?budget:Obda_runtime.Budget.t ->
  t ->
  name:string ->
  ?algorithm:Omq.algorithm ->
  Obda_cq.Cq.t ->
  Prepared.t * [ `Hit | `Miss ]
(** Parse-free half of [PREPARE]: classify, rewrite through the cache and
    register under [name] (replacing any previous binding), all under the
    session lock.  Raises [Obda_error (Internal _)] when no ontology is
    loaded. *)

val find_prepared : t -> string -> Prepared.t option
val prepared_names : t -> string list

val answer_at :
  ?budget:Obda_runtime.Budget.t ->
  t -> Prepared.t -> snapshot -> Obda_syntax.Symbol.t list list
(** Certain answers of a prepared query over the frozen snapshot: the
    memoised consistency check at the snapshot's revision, then NDL
    evaluation of the stored rewriting — no re-parsing, no re-rewriting,
    and no lock held during evaluation.  On inconsistent (T, A), every
    tuple over ind(A) of the query's arity, per the convention at the end
    of Section 2 of the paper. *)

val answer :
  ?budget:Obda_runtime.Budget.t -> t -> Prepared.t -> Obda_syntax.Symbol.t list list
(** {!answer_at} on a fresh {!freeze} of the live store. *)

val set_stats_hook : t -> (unit -> (string * string) list) -> unit
(** Register extra rows appended to {!stats} — the network server's
    uptime/connection/shed/revision-span rows.  Plain sessions have no
    hook, so existing [STATS] fixtures keep their exact row count. *)

val uptime : t -> float
(** Seconds since the session was created — the [PING] verb's uptime. *)

(** {1 Durability}

    A session with a WAL hook logs every effective mutation {e before}
    applying it, under the session lock: a hook that raises (a full disk,
    an injected [wal.append]/[wal.sync] fault) leaves the store untouched
    and surfaces as that request's [ERR], so a client-acknowledged
    mutation is always a logged one. *)

type wal_hook = {
  on_mutation : Wal.mutation -> revision:int -> unit;
      (** called under the session lock with the effective mutation (the
          deduplicated facts that will actually change the store; the full
          TBox/ABox for loads) and the post-mutation revision *)
  wal_rows : unit -> (string * string) list;
      (** the [server.wal.*] rows appended to {!stats} (called under the
          session lock) *)
}

val set_wal_hook : t -> wal_hook -> unit
(** Install the durability hook.  Install it {e after} restoring
    recovered state into the session, or the restore would re-log its own
    replay. *)

val clear_wal_hook : t -> unit

val with_checkpoint_state :
  t ->
  (tbox:Obda_ontology.Tbox.t option ->
  abox:Obda_data.Abox.t ->
  prepared:(string * Omq.algorithm * string) list ->
  'a) ->
  'a
(** Run [f] under the session lock with the live state: the TBox, the
    ABox (not a copy — [f] must only read it) and the prepared registry
    as (name, algorithm, query text) triples sorted by name.  This is the
    checkpoint capture: because WAL appends also run under the lock, a
    checkpoint written inside [f] can truncate the log with no append
    lost in between. *)

val stats : t -> (string * string) list
(** Observable session state as ordered key/value pairs (the [STATS]
    verb): request count, ontology/data sizes, data revision, consistency
    memo state, prepared count and cache statistics — plus the rows of the
    {!set_stats_hook} hook, when one is registered. *)
