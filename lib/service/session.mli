(** Service sessions.

    A session holds a resident ontology, a mutable ABox store, the
    prepared queries registered so far and the content-addressed rewriting
    {!Cache} behind them.  Consistency of (T, A) is checked lazily and
    memoised against {!Obda_data.Abox.revision}: answering many queries
    over unchanged data runs the chase-based check once, and any
    [ASSERT]/[RETRACT]/[LOAD] invalidates the memo by bumping the
    revision. *)

module Omq := Obda_rewriting.Omq

type t

val create :
  ?budget:Obda_runtime.Budget.t ->
  ?cache_entries:int ->
  ?cache_weight:int ->
  ?jobs:int ->
  unit -> t
(** A fresh session with an empty ABox and no ontology.  [budget] is the
    session-wide resource envelope ({!budget}); [cache_entries] /
    [cache_weight] bound the rewriting cache.  [jobs] (default 1) is the
    evaluation parallelism: with [jobs > 1] a worker {!Obda_runtime.Pool}
    is created on first use and every {!answer} (and the serve loop's
    [BATCH] verb) evaluates on it — answers are byte-identical to
    [jobs = 1].  Raises [Invalid_argument] when [jobs < 1]. *)

val budget : t -> Obda_runtime.Budget.t
val cache : t -> Cache.t
val tbox : t -> Obda_ontology.Tbox.t option
val abox : t -> Obda_data.Abox.t

val jobs : t -> int

val pool : t -> Obda_runtime.Pool.t option
(** The session's worker pool — [None] for a [jobs = 1] session, otherwise
    created (once) on first call. *)

val close : t -> unit
(** Shut down the worker pool, if one was created.  The session remains
    usable: the next {!pool} call recreates it.  Idempotent. *)

val count_request : t -> unit
val requests : t -> int

val load_ontology : t -> Obda_ontology.Tbox.t -> unit
(** Replace the resident ontology.  Drops all prepared queries (they were
    rewritten against the old TBox) and the consistency memo; the
    rewriting cache survives, since its keys digest the TBox. *)

val load_data : t -> Obda_data.Abox.t -> unit
(** Replace the data store. *)

val assert_fact : t -> Obda_data.Abox.fact -> bool
(** Add one fact; [false] if it was already present (no revision bump). *)

val retract_fact : t -> Obda_data.Abox.fact -> bool
(** Remove one fact; [false] if it was absent. *)

val consistent : t -> bool
(** Whether (T, A) is consistent, from the memo when the ABox revision is
    unchanged, recomputed (under a [chase.consistency] span) otherwise.
    With no ontology loaded this is trivially [true]. *)

val consistency_cached : t -> bool option
(** The memoised verdict, or [None] if the next {!consistent} call will
    recompute. *)

val prepare :
  ?budget:Obda_runtime.Budget.t ->
  t ->
  name:string ->
  ?algorithm:Omq.algorithm ->
  Obda_cq.Cq.t ->
  Prepared.t * [ `Hit | `Miss ]
(** Parse-free half of [PREPARE]: classify, rewrite through the cache and
    register under [name] (replacing any previous binding).  Raises
    [Obda_error (Internal _)] when no ontology is loaded. *)

val find_prepared : t -> string -> Prepared.t option
val prepared_names : t -> string list

val answer :
  ?budget:Obda_runtime.Budget.t -> t -> Prepared.t -> Obda_syntax.Symbol.t list list
(** Certain answers of a prepared query over the current store: the
    memoised consistency check, then NDL evaluation of the stored
    rewriting — no re-parsing, no re-rewriting, on the session's worker
    pool when [jobs > 1].  On inconsistent (T, A), every tuple over ind(A)
    of the query's arity, per the convention at the end of Section 2 of
    the paper. *)

val stats : t -> (string * string) list
(** Observable session state as ordered key/value pairs (the [STATS]
    verb): request count, ontology/data sizes, data revision, consistency
    memo state, prepared count and cache statistics. *)
