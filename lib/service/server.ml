(* The concurrent network server.

   One domain pool of [connections + 1] workers: worker 0 runs the accept
   loop, the rest pull accepted descriptors from a bounded queue and drive
   the serve loop over them.  The shared [Session] serialises mutation under
   its own lock; readers evaluate against copy-on-write [freeze] snapshots,
   so connections never block each other on evaluation.

   Shutdown is cooperative: [request_stop] only writes an atomic (safe from
   a signal handler), the accept loop polls it on a 0.1 s [select] tick and
   stops accepting, connection workers notice it between requests, finish
   the request in flight, and close.  Pending-but-unserved descriptors are
   closed unserved. *)

module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault
module Pool = Obda_runtime.Pool
module Obs = Obda_obs.Obs
module Histogram = Obda_obs.Histogram

type address = Unix_socket of string | Tcp of string * int

type t = {
  session : Session.t;
  listener : Unix.file_descr;
  unlink : string option; (* unix-socket path to remove on close *)
  connections : int;
  backlog : int;
  max_inflight : int;
  idle_timeout : float option;
  request_timeout : float option;
  stop_code : int Atomic.t; (* -1 while running; exit code once stopped *)
  m : Mutex.t;
  cv : Condition.t;
  pending : Unix.file_descr Queue.t;
  mutable accepted : int;
  mutable active : int;
  mutable inflight : int;
  mutable served : int;
  mutable shed_requests : int;
  mutable shed_connections : int;
  mutable started : float;
  mutable conn_seq : int; (* connection ids, 1-based *)
  conn_hists : (int, Histogram.t) Hashtbl.t;
      (* live per-connection request-latency histograms (seconds); merged
         with [closed_hist] on demand by [stats_rows] *)
  closed_hist : Histogram.t; (* absorbed when a connection closes *)
}

let tick = 0.1

(* ------------------------------------------------------------------ *)
(* Low-level I/O.  SIGPIPE is ignored while the server runs, so writes to
   a hung-up peer raise [EPIPE]; the per-connection handler treats any
   [Unix_error] as the end of that connection. *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_lines fd lines =
  write_all fd (String.concat "" (List.map (fun l -> l ^ "\n") lines))

(* Best-effort single line (shed paths): the peer may already be gone. *)
let send_line_opt fd line = try send_lines fd [ line ] with _ -> ()

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* ------------------------------------------------------------------ *)
(* Construction *)

let stopping t = Atomic.get t.stop_code >= 0

let create ?(connections = 4) ?(backlog = 16) ?max_inflight ?idle_timeout
    ?request_timeout address session =
  if connections < 1 then invalid_arg "Server.create: connections < 1";
  if backlog < 1 then invalid_arg "Server.create: backlog < 1";
  if Session.jobs session <> 1 then
    invalid_arg
      "Server.create: session must have jobs = 1 (the server parallelises \
       across connections)";
  let max_inflight = Option.value max_inflight ~default:connections in
  if max_inflight < 0 then invalid_arg "Server.create: max_inflight < 0";
  let listener, unlink =
    match address with
    | Unix_socket path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      (fd, Some path)
    | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (try
         let addr =
           try Unix.inet_addr_of_string host
           with _ -> (
             match Unix.gethostbyname host with
             | { Unix.h_addr_list = [||]; _ } ->
               Error.internal "cannot resolve host %S" host
             | { Unix.h_addr_list; _ } -> h_addr_list.(0))
         in
         Unix.bind fd (Unix.ADDR_INET (addr, port))
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      (fd, None)
  in
  Unix.listen listener (max backlog 16);
  {
    session;
    listener;
    unlink;
    connections;
    backlog;
    max_inflight;
    idle_timeout;
    request_timeout;
    stop_code = Atomic.make (-1);
    m = Mutex.create ();
    cv = Condition.create ();
    pending = Queue.create ();
    accepted = 0;
    active = 0;
    inflight = 0;
    served = 0;
    shed_requests = 0;
    shed_connections = 0;
    started = Unix.gettimeofday ();
    conn_seq = 0;
    conn_hists = Hashtbl.create 16;
    closed_hist = Histogram.create ~scale:1e9 "server.request.latency";
  }

let address t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_UNIX path -> Unix_socket path
  | Unix.ADDR_INET (host, port) -> Tcp (Unix.string_of_inet_addr host, port)

let address_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let session t = t.session

(* One atomic write, nothing else: safe from a signal handler even when
   the interrupted code holds the server mutex.  The accept loop notices
   on its next select tick and broadcasts to the parked workers. *)
let request_stop t ~code =
  ignore (Atomic.compare_and_set t.stop_code (-1) code)

let stop t = request_stop t ~code:0

(* ------------------------------------------------------------------ *)
(* Stats rows (appended to the session's STATS response via the hook) *)

let stats_rows t =
  Mutex.lock t.m;
  let accepted = t.accepted
  and active = t.active
  and inflight = t.inflight
  and served = t.served
  and shed_requests = t.shed_requests
  and shed_connections = t.shed_connections
  (* per-connection histograms combine here: closed connections were
     absorbed into [closed_hist] (under this mutex), live ones merge
     bucket-wise (exact, order-independent) into a scratch histogram.
     Merging under the mutex excludes the close-time absorption, so a
     request is never counted both live and closed. *)
  and merged =
    let merged = Histogram.create ~scale:1e9 "server.request.latency" in
    Histogram.merge_into ~into:merged t.closed_hist;
    Hashtbl.iter (fun _ h -> Histogram.merge_into ~into:merged h) t.conn_hists;
    merged
  in
  Mutex.unlock t.m;
  let snap = Histogram.snapshot merged in
  let quantile_ms q = Histogram.quantile snap q *. 1000. in
  [
    ("server.uptime-s", Printf.sprintf "%.1f" (Unix.gettimeofday () -. t.started));
    ("server.connections.accepted", string_of_int accepted);
    ("server.connections.active", string_of_int active);
    ("server.connections.shed", string_of_int shed_connections);
    ("server.requests.served", string_of_int served);
    ("server.requests.shed", string_of_int shed_requests);
    ("server.requests.inflight", string_of_int inflight);
    ( "server.snapshot.revisions",
      match Session.frozen_span t.session with
      | None -> "-"
      | Some (lo, hi) -> Printf.sprintf "%d-%d" lo hi );
    ("server.p50-ms", Printf.sprintf "%.3f" (quantile_ms 0.50));
    ("server.p95-ms", Printf.sprintf "%.3f" (quantile_ms 0.95));
    ("server.p99-ms", Printf.sprintf "%.3f" (quantile_ms 0.99));
  ]

(* ------------------------------------------------------------------ *)
(* Admission control: a bounded budget of requests being executed.  The
   check-and-increment is one lock acquisition, so the budget can never be
   oversubscribed; QUIT/EXIT (and blank/comment lines) are exempt, so a
   client can always leave an overloaded server cleanly. *)

(* [Ok ()] when admitted; [Error inflight] with the observed in-flight
   count when shed, so the overload diagnostic reports what was actually
   seen rather than echoing the limit. *)
let try_admit t =
  Mutex.lock t.m;
  let inflight = t.inflight in
  let ok = inflight < t.max_inflight in
  if ok then t.inflight <- t.inflight + 1
  else t.shed_requests <- t.shed_requests + 1;
  Mutex.unlock t.m;
  if ok then Ok () else Error inflight

let release t =
  Mutex.lock t.m;
  t.inflight <- t.inflight - 1;
  t.served <- t.served + 1;
  Mutex.unlock t.m

let admission_exempt line =
  let line = String.trim line in
  line = ""
  || line.[0] = '#'
  ||
  let verb =
    match String.index_opt line ' ' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match String.uppercase_ascii verb with
  (* PING too: a liveness probe must answer even on an overloaded server —
     that is what distinguishes "alive but saturated" from "dead" *)
  | "QUIT" | "EXIT" | "PING" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-connection buffered reader with idle-timeout and stop polling *)

type conn = {
  fd : Unix.file_descr;
  id : int; (* 1-based connection id, tagged onto access-log lines *)
  hist : Histogram.t; (* this connection's request latencies (seconds) *)
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable at_eof : bool;
}

(* Pop one complete line off the buffer, keeping the remainder. *)
let extract_line c =
  let s = Buffer.contents c.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear c.buf;
    Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
    Some (strip_cr (String.sub s 0 i))

(* Next input line.  [`Line _] may also be a final unterminated fragment:
   a stream that ends mid-line still hands the fragment to the serve loop,
   then the following call reports [`Eof] — truncated scripts end the
   session cleanly, exactly like a missing QUIT. *)
let read_line t c =
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) t.idle_timeout
  in
  let rec loop () =
    if stopping t then `Stopped
    else
      match extract_line c with
      | Some line -> `Line line
      | None ->
        if c.at_eof then
          if Buffer.length c.buf > 0 then begin
            let line = strip_cr (Buffer.contents c.buf) in
            Buffer.clear c.buf;
            `Line line
          end
          else `Eof
        else if
          match deadline with
          | Some d -> Unix.gettimeofday () > d
          | None -> false
        then `Idle
        else begin
          (match Unix.select [ c.fd ] [] [] tick with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | _ ->
            let n = Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) in
            if n = 0 then c.at_eof <- true
            else Buffer.add_subbytes c.buf c.chunk 0 n);
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection handling *)

let handle_request t c line =
  if admission_exempt line then begin
    let lines, stop = Serve.handle_line ~conn:c.id t.session line in
    send_lines c.fd lines;
    stop
  end
  else
    match try_admit t with
    | Error inflight ->
      Obs.incr "serve.request.shed";
      send_lines c.fd
        [
          Printf.sprintf "ERR class=overloaded inflight=%d limit=%d" inflight
            t.max_inflight;
        ];
      false
    | Ok () ->
      Fun.protect
        ~finally:(fun () -> release t)
        (fun () ->
          let budget =
            Budget.sub ?timeout:t.request_timeout (Session.budget t.session)
          in
          (* server-side request latency: execution plus the response
             write, as this connection observed it *)
          let t0 = Unix.gettimeofday () in
          let lines, stop = Serve.handle_line ~budget ~conn:c.id t.session line in
          send_lines c.fd lines;
          Histogram.record c.hist (Unix.gettimeofday () -. t0);
          stop)

let handle_connection t fd =
  let c =
    Mutex.lock t.m;
    t.active <- t.active + 1;
    t.conn_seq <- t.conn_seq + 1;
    let c =
      { fd; id = t.conn_seq;
        hist = Histogram.create ~scale:1e9 "server.request.latency";
        buf = Buffer.create 256; chunk = Bytes.create 4096; at_eof = false }
    in
    Hashtbl.replace t.conn_hists c.id c.hist;
    Mutex.unlock t.m;
    c
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with _ -> ());
      Mutex.lock t.m;
      (* absorb this connection's latencies as the live entry drops —
         both under the mutex, so STATS quantiles never lose (or double
         count) a closing connection *)
      Histogram.merge_into ~into:t.closed_hist c.hist;
      Hashtbl.remove t.conn_hists c.id;
      t.active <- t.active - 1;
      Mutex.unlock t.m)
    (fun () ->
      try
        (* [serve.connection] kills exactly this connection: the raise is
           caught below, the descriptor closes, the server keeps serving. *)
        Fault.hit Fault.serve_connection;
        let rec loop () =
          match read_line t c with
          | `Eof | `Stopped -> ()
          | `Idle ->
            send_line_opt fd
              (Printf.sprintf "ERR class=budget resource=idle-seconds used=%g limit=%g"
                 (Option.get t.idle_timeout) (Option.get t.idle_timeout))
          | `Line line -> if not (handle_request t c line) then loop ()
        in
        loop ()
      with
      | Error.Obda_error e -> send_line_opt fd ("ERR " ^ Error.to_string e)
      | Unix.Unix_error _ | Sys_error _ ->
        (* peer hung up mid-write (EPIPE/ECONNRESET): just drop it *)
        ())

(* ------------------------------------------------------------------ *)
(* Accept loop (worker 0) and connection workers *)

let enqueue t fd =
  Mutex.lock t.m;
  t.accepted <- t.accepted + 1;
  let pending = Queue.length t.pending in
  let room = pending < t.backlog in
  if room then begin
    Queue.push fd t.pending;
    Condition.signal t.cv
  end
  else t.shed_connections <- t.shed_connections + 1;
  Mutex.unlock t.m;
  if not room then begin
    Obs.incr "serve.connection.shed";
    send_line_opt fd
      (Printf.sprintf "ERR class=overloaded pending=%d backlog=%d" pending
         t.backlog);
    try Unix.close fd with _ -> ()
  end

let shed_faulted t fd e =
  Mutex.lock t.m;
  t.accepted <- t.accepted + 1;
  t.shed_connections <- t.shed_connections + 1;
  Mutex.unlock t.m;
  send_line_opt fd ("ERR " ^ Error.to_string e);
  (try Unix.close fd with _ -> ())

let accept_loop t =
  let rec loop () =
    if stopping t then ()
    else begin
      (match Unix.select [ t.listener ] [] [] tick with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept ~cloexec:true t.listener with
        | exception
            Unix.Unix_error
              ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                | Unix.ECONNABORTED ),
                _,
                _ ) ->
          ()
        | fd, _ -> (
          Obs.incr "serve.connection.accepted";
          (* [serve.accept] sheds exactly this connection — the listener
             itself survives and keeps accepting. *)
          match Fault.hit Fault.serve_accept with
          | () -> enqueue t fd
          | exception Error.Obda_error e -> shed_faulted t fd e)));
      loop ()
    end
  in
  (* An accept-loop failure must not strand parked workers: whether the
     loop stopped cleanly or raised (e.g. EMFILE on accept), wake every
     parked worker so they observe the stop and drain — the broadcast runs
     before any exception propagates to [Pool.run]. *)
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      Condition.broadcast t.cv;
      Mutex.unlock t.m)
    (fun () ->
      try loop ()
      with e ->
        request_stop t ~code:1;
        raise e)

(* Next accepted descriptor, or [None] once stopping.  On stop, queued
   descriptors are closed unserved — only requests already executing
   drain. *)
let dequeue t =
  Mutex.lock t.m;
  let rec wait () =
    if stopping t then None
    else if not (Queue.is_empty t.pending) then Some (Queue.pop t.pending)
    else begin
      Condition.wait t.cv t.m;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.m;
  r

let worker_loop t =
  let rec loop () =
    match dequeue t with
    | None -> ()
    | Some fd ->
      handle_connection t fd;
      loop ()
  in
  loop ()

let drain_pending t =
  Mutex.lock t.m;
  let fds = Queue.fold (fun acc fd -> fd :: acc) [] t.pending in
  Queue.clear t.pending;
  Mutex.unlock t.m;
  List.iter (fun fd -> try Unix.close fd with _ -> ()) fds

let close t =
  (try Unix.close t.listener with _ -> ());
  match t.unlink with
  | Some path -> ( try Unix.unlink path with _ -> ())
  | None -> ()

let run ?on_drain t =
  t.started <- Unix.gettimeofday ();
  Session.set_stats_hook t.session (fun () -> stats_rows t);
  (* The serving path always measures: per-verb registry histograms and
     the per-connection STATS quantiles are part of the server surface. *)
  let prev_recording = Histogram.recording () in
  Histogram.set_enabled true;
  (* Writes to a hung-up peer must raise EPIPE, not kill the process. *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let pool = Pool.create ~jobs:(t.connections + 1) in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown pool;
      drain_pending t;
      (* the drain hook runs once every connection worker has finished —
         no request is in flight — and before the listener closes: the
         durability checkpoint on SIGTERM.  Its failure must not turn a
         graceful drain into a crash; the WAL still holds every record. *)
      (match on_drain with
      | Some f -> (
        try f ()
        with e ->
          Printf.eprintf "obda: drain hook failed: %s\n%!"
            (Printexc.to_string e))
      | None -> ());
      close t;
      (match prev_sigpipe with
      | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
      | None -> ());
      Histogram.set_enabled prev_recording;
      Obs.flush ())
    (fun () ->
      Pool.run pool (fun w -> if w = 0 then accept_loop t else worker_loop t));
  match Atomic.get t.stop_code with -1 | 0 -> 0 | code -> code
