(* A service session: resident ontology, mutable data store, prepared
   queries and the rewriting cache. *)

module Omq = Obda_rewriting.Omq
module Tbox = Obda_ontology.Tbox
module Abox = Obda_data.Abox
module Eval = Obda_ndl.Eval
module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Pool = Obda_runtime.Pool
module Obs = Obda_obs.Obs

type t = {
  mutable tbox : Tbox.t option;
  mutable abox : Abox.t;
  mutable consistency : (int * bool) option;
      (* ABox revision at the last check, and its verdict.  The pair is
         valid only while the revision matches: any ASSERT/RETRACT/LOAD
         bumps the revision and implicitly invalidates it. *)
  prepared : (string, Prepared.t) Hashtbl.t;
  cache : Cache.t;
  budget : Budget.t;
  jobs : int;
  mutable pool : Pool.t option;
      (* created on first use so a [--jobs 1] session never spawns domains *)
  mutable requests : int;
}

let create ?(budget = Budget.none) ?cache_entries ?cache_weight ?(jobs = 1) ()
    =
  if jobs < 1 then invalid_arg "Session.create: jobs < 1";
  {
    tbox = None;
    abox = Abox.create ();
    consistency = None;
    prepared = Hashtbl.create 16;
    cache = Cache.create ?max_entries:cache_entries ?max_weight:cache_weight ();
    budget;
    jobs;
    pool = None;
    requests = 0;
  }

let budget t = t.budget
let cache t = t.cache
let tbox t = t.tbox
let abox t = t.abox
let jobs t = t.jobs

let pool t =
  if t.jobs <= 1 then None
  else
    match t.pool with
    | Some _ as p -> p
    | None ->
      let p = Pool.create ~jobs:t.jobs in
      t.pool <- Some p;
      Some p

let close t =
  (match t.pool with Some p -> Pool.shutdown p | None -> ());
  t.pool <- None

let count_request t = t.requests <- t.requests + 1
let requests t = t.requests

let load_ontology t tbox =
  t.tbox <- Some tbox;
  (* Prepared queries were rewritten against the previous TBox. *)
  Hashtbl.reset t.prepared;
  t.consistency <- None

let load_data t abox =
  t.abox <- abox;
  t.consistency <- None

let assert_fact t fact =
  if Abox.mem_fact t.abox fact then false
  else begin
    Abox.add_fact t.abox fact;
    true
  end

let retract_fact t fact = Abox.remove_fact t.abox fact

let consistent t =
  match t.tbox with
  | None -> true
  | Some tbox ->
    let rev = Abox.revision t.abox in
    (match t.consistency with
    | Some (r, verdict) when r = rev -> verdict
    | _ ->
      let verdict =
        Obs.with_span "chase.consistency" (fun () ->
            Abox.consistent tbox t.abox)
      in
      t.consistency <- Some (rev, verdict);
      verdict)

let consistency_cached t =
  match (t.tbox, t.consistency) with
  | None, _ -> Some true
  | Some _, Some (r, verdict) when r = Abox.revision t.abox -> Some verdict
  | _ -> None

let require_tbox t =
  match t.tbox with
  | Some tbox -> tbox
  | None -> Error.internal "no ontology loaded (use LOAD ONTOLOGY first)"

let prepare ?budget t ~name ?algorithm cq =
  let tbox = require_tbox t in
  let prepared, origin =
    Prepared.prepare ?budget ~cache:t.cache ~name ?algorithm tbox cq
  in
  Hashtbl.replace t.prepared name prepared;
  (prepared, origin)

let find_prepared t name = Hashtbl.find_opt t.prepared name

let prepared_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.prepared []
  |> List.sort compare

let answer ?budget t p =
  if not (consistent t) then Omq.all_tuples t.abox (Prepared.arity p)
  else Eval.answers ?pool:(pool t) ?budget (Prepared.rewriting p) t.abox

let stats t =
  let cache = t.cache in
  let consistency =
    match consistency_cached t with
    | Some true -> "yes"
    | Some false -> "no"
    | None -> "unknown"
  in
  [
    ("requests", string_of_int t.requests);
    ("jobs", string_of_int t.jobs);
    ("ontology.loaded", if t.tbox = None then "no" else "yes");
    ( "ontology.axioms",
      match t.tbox with
      | None -> "0"
      | Some tb -> string_of_int (List.length (Tbox.axioms tb)) );
    ("data.atoms", string_of_int (Abox.num_atoms t.abox));
    ("data.individuals", string_of_int (Abox.num_individuals t.abox));
    ("data.revision", string_of_int (Abox.revision t.abox));
    ("consistent", consistency);
    ("prepared", string_of_int (Hashtbl.length t.prepared));
    ("cache.entries", string_of_int (Cache.length cache));
    ("cache.weight", string_of_int (Cache.weight cache));
    ("cache.hits", string_of_int (Cache.hits cache));
    ("cache.misses", string_of_int (Cache.misses cache));
    ("cache.evictions", string_of_int (Cache.evictions cache));
  ]
