(* A service session: resident ontology, mutable data store, prepared
   queries and the rewriting cache.

   Sessions are shared by the concurrent network server, so every state
   transition — loads, fact mutations, prepared-registry and cache updates,
   consistency-memo writes — happens under the session lock.  Reads that
   feed evaluation go through [freeze]: an O(1) copy-on-write ABox snapshot
   taken under the lock, after which evaluation proceeds with no lock held
   at all.  The consistency memo is keyed by (generation, revision) —
   generation bumps on every LOAD — so verdicts computed against different
   frozen revisions never collide. *)

module Omq = Obda_rewriting.Omq
module Tbox = Obda_ontology.Tbox
module Abox = Obda_data.Abox
module Eval = Obda_ndl.Eval
module Parse = Obda_parse.Parse
module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault
module Pool = Obda_runtime.Pool
module Obs = Obda_obs.Obs

type wal_hook = {
  on_mutation : Wal.mutation -> revision:int -> unit;
      (* invoked under the session lock, BEFORE the mutation is applied:
         a raise leaves the store untouched and surfaces as the request's
         ERR, so acknowledged always implies logged *)
  wal_rows : unit -> (string * string) list;
      (* the server.wal.* STATS rows, read under the session lock *)
}

type t = {
  lock : Mutex.t;
  mutable tbox : Tbox.t option;
  mutable abox : Abox.t;
  mutable generation : int;
      (* bumped on LOAD ONTOLOGY / LOAD DATA: revisions of different
         stores (or against different TBoxes) must not share memo slots *)
  consistency : (int * int, bool) Hashtbl.t;
      (* (generation, revision) -> verdict; bounded (reset over
         [memo_bound]), idempotent to racing writers *)
  prepared : (string, Prepared.t) Hashtbl.t;
  cache : Cache.t;
  budget : Budget.t;
  jobs : int;
  mutable pool : Pool.t option;
      (* created on first use so a [--jobs 1] session never spawns domains *)
  mutable requests : int;
  mutable frozen_span : (int * int) option;
      (* min/max ABox revision ever served through [freeze] *)
  mutable stats_hook : (unit -> (string * string) list) option;
  mutable wal : wal_hook option;
  created : float;
}

let memo_bound = 128

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let create ?(budget = Budget.none) ?cache_entries ?cache_weight ?(jobs = 1) ()
    =
  if jobs < 1 then invalid_arg "Session.create: jobs < 1";
  {
    lock = Mutex.create ();
    tbox = None;
    abox = Abox.create ();
    generation = 0;
    consistency = Hashtbl.create 16;
    prepared = Hashtbl.create 16;
    cache = Cache.create ?max_entries:cache_entries ?max_weight:cache_weight ();
    budget;
    jobs;
    pool = None;
    requests = 0;
    frozen_span = None;
    stats_hook = None;
    wal = None;
    created = Unix.gettimeofday ();
  }

let budget t = t.budget
let cache t = t.cache
let tbox t = t.tbox
let abox t = t.abox
let jobs t = t.jobs

let pool t =
  if t.jobs <= 1 then None
  else
    with_lock t (fun () ->
        match t.pool with
        | Some _ as p -> p
        | None ->
          let p = Pool.create ~jobs:t.jobs in
          t.pool <- Some p;
          Some p)

let close t =
  let p = with_lock t (fun () -> let p = t.pool in t.pool <- None; p) in
  match p with Some p -> Pool.shutdown p | None -> ()

let count_request t = with_lock t (fun () -> t.requests <- t.requests + 1)
let requests t = t.requests

let set_stats_hook t hook = with_lock t (fun () -> t.stats_hook <- Some hook)
let set_wal_hook t hook = with_lock t (fun () -> t.wal <- Some hook)
let clear_wal_hook t = with_lock t (fun () -> t.wal <- None)
let uptime t = Unix.gettimeofday () -. t.created

(* Log under the lock, before applying: a WAL failure leaves the store
   untouched and the request unacknowledged, so the recoverable prefix is
   exactly the acknowledged prefix. *)
let wal_log t mutation ~revision =
  match t.wal with
  | Some hook -> hook.on_mutation mutation ~revision
  | None -> ()

let load_ontology t tbox =
  with_lock t (fun () ->
      wal_log t (Wal.Load_ontology tbox) ~revision:(Abox.revision t.abox);
      t.tbox <- Some tbox;
      (* Prepared queries were rewritten against the previous TBox. *)
      Hashtbl.reset t.prepared;
      t.generation <- t.generation + 1;
      Hashtbl.reset t.consistency)

let load_data t abox =
  with_lock t (fun () ->
      wal_log t (Wal.Load_data abox) ~revision:(Abox.revision abox);
      t.abox <- abox;
      t.generation <- t.generation + 1;
      Hashtbl.reset t.consistency)

let assert_facts t facts =
  with_lock t (fun () ->
      (* the facts that will actually change the store, deduplicated:
         these are what the WAL records and what [added] counts *)
      let effective =
        List.rev
          (List.fold_left
             (fun acc fact ->
               if Abox.mem_fact t.abox fact || List.mem fact acc then acc
               else fact :: acc)
             [] facts)
      in
      let added = List.length effective in
      if added > 0 then
        wal_log t (Wal.Assert effective)
          ~revision:(Abox.revision t.abox + added);
      List.iter (Abox.add_fact t.abox) effective;
      (added, Abox.num_atoms t.abox))

let retract_facts t facts =
  with_lock t (fun () ->
      let effective =
        List.rev
          (List.fold_left
             (fun acc fact ->
               if Abox.mem_fact t.abox fact && not (List.mem fact acc) then
                 fact :: acc
               else acc)
             [] facts)
      in
      let removed = List.length effective in
      if removed > 0 then
        wal_log t (Wal.Retract effective)
          ~revision:(Abox.revision t.abox + removed);
      List.iter (fun fact -> ignore (Abox.remove_fact t.abox fact)) effective;
      (removed, Abox.num_atoms t.abox))

(* Checkpoint capture: hand the callback a consistent view — and run it to
   completion — under the session lock.  WAL appends also happen under the
   lock, so nothing can slip between the state the callback serializes and
   the log truncation it performs. *)
let with_checkpoint_state t f =
  with_lock t (fun () ->
      let prepared =
        Hashtbl.fold
          (fun name p acc ->
            (name, Prepared.algorithm p,
             Parse.query_to_string (Prepared.omq p).Omq.cq)
            :: acc)
          t.prepared []
        |> List.sort compare
      in
      f ~tbox:t.tbox ~abox:t.abox ~prepared)

let assert_fact t fact = fst (assert_facts t [ fact ]) = 1
let retract_fact t fact = fst (retract_facts t [ fact ]) = 1

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type snapshot = {
  sdata : Abox.t;
  srev : int;
  sgen : int;
  stbox : Tbox.t option;
}

let snapshot_abox s = s.sdata
let snapshot_revision s = s.srev

let freeze t =
  Fault.hit Fault.abox_snapshot;
  with_lock t (fun () ->
      let rev = Abox.revision t.abox in
      t.frozen_span <-
        (match t.frozen_span with
        | None -> Some (rev, rev)
        | Some (lo, hi) -> Some (min lo rev, max hi rev));
      {
        sdata = Abox.snapshot t.abox;
        srev = rev;
        sgen = t.generation;
        stbox = t.tbox;
      })

let frozen_span t = with_lock t (fun () -> t.frozen_span)

let consistent_at t (s : snapshot) =
  match s.stbox with
  | None -> true
  | Some tbox -> (
    let key = (s.sgen, s.srev) in
    match with_lock t (fun () -> Hashtbl.find_opt t.consistency key) with
    | Some verdict -> verdict
    | None ->
      (* computed outside the lock on the frozen tables; racing readers of
         the same revision compute the same verdict, so the blind replace
         below is idempotent *)
      let verdict =
        Obs.with_span "chase.consistency" (fun () ->
            Abox.consistent tbox s.sdata)
      in
      with_lock t (fun () ->
          if Hashtbl.length t.consistency >= memo_bound then
            Hashtbl.reset t.consistency;
          Hashtbl.replace t.consistency key verdict);
      verdict)

let consistent t = consistent_at t (freeze t)

let consistency_cached t =
  match t.tbox with
  | None -> Some true
  | Some _ ->
    with_lock t (fun () ->
        Hashtbl.find_opt t.consistency
          (t.generation, Abox.revision t.abox))

let require_tbox t =
  match t.tbox with
  | Some tbox -> tbox
  | None -> Error.internal "no ontology loaded (use LOAD ONTOLOGY first)"

let prepare ?budget t ~name ?algorithm cq =
  let tbox = require_tbox t in
  with_lock t (fun () ->
      let prepared, origin =
        Prepared.prepare ?budget ~cache:t.cache ~name ?algorithm tbox cq
      in
      Hashtbl.replace t.prepared name prepared;
      (prepared, origin))

let find_prepared t name =
  with_lock t (fun () -> Hashtbl.find_opt t.prepared name)

let prepared_names t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.prepared [])
  |> List.sort compare

let answer_at ?budget t p s =
  if not (consistent_at t s) then Omq.all_tuples s.sdata (Prepared.arity p)
  else
    Eval.answers ?pool:(pool t) ?budget ~plan:(Prepared.plan p)
      (Prepared.rewriting p) s.sdata

let answer ?budget t p = answer_at ?budget t p (freeze t)

let stats t =
  (* Capture the hook under the lock (it is written under the lock by
     [set_stats_hook]), but invoke it only after release: the server's
     hook takes its own mutex, and holding both invites lock-order
     trouble. *)
  let base, hook =
    with_lock t (fun () ->
        let cache = t.cache in
        let wal_rows =
          match t.wal with Some h -> h.wal_rows () | None -> []
        in
        let consistency =
          match
            if t.tbox = None then Some true
            else
              Hashtbl.find_opt t.consistency
                (t.generation, Abox.revision t.abox)
          with
          | Some true -> "yes"
          | Some false -> "no"
          | None -> "unknown"
        in
        ( [
            ("requests", string_of_int t.requests);
            ("jobs", string_of_int t.jobs);
            ("ontology.loaded", if t.tbox = None then "no" else "yes");
            ( "ontology.axioms",
              match t.tbox with
              | None -> "0"
              | Some tb -> string_of_int (List.length (Tbox.axioms tb)) );
            ("data.atoms", string_of_int (Abox.num_atoms t.abox));
            ("data.individuals", string_of_int (Abox.num_individuals t.abox));
            ("data.revision", string_of_int (Abox.revision t.abox));
            ("consistent", consistency);
            ("prepared", string_of_int (Hashtbl.length t.prepared));
            ("cache.entries", string_of_int (Cache.length cache));
            ("cache.weight", string_of_int (Cache.weight cache));
            ("cache.hits", string_of_int (Cache.hits cache));
            ("cache.misses", string_of_int (Cache.misses cache));
            ("cache.evictions", string_of_int (Cache.evictions cache));
          ]
          @ wal_rows,
          t.stats_hook ))
  in
  match hook with None -> base | Some hook -> base @ hook ()
