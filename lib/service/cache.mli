(** Content-addressed LRU cache for NDL rewritings.

    Keys are {!Obda_rewriting.Omq.digest} strings, so two textually
    different but canonically equal OMQs share a slot.  The cache is
    bounded by an entry count and/or a total weight (the sum of
    {!Obda_ndl.Ndl.size} over resident rewritings); the least recently
    used entries are evicted when either bound is exceeded.

    Every lookup passes the [service.cache] fault-injection site and bumps
    the [service.cache.hit] / [service.cache.miss] / [service.cache.evict]
    telemetry counters. *)

type t

val create : ?max_entries:int -> ?max_weight:int -> unit -> t
(** Omitted bounds are unlimited.  Raises [Invalid_argument] on a bound
    below 1. *)

val find_or_add :
  t -> key:string -> (unit -> Obda_ndl.Ndl.query) ->
  Obda_ndl.Ndl.query * [ `Hit | `Miss ]
(** Return the cached rewriting for [key], or run [build], cache its
    result and return it.  A hit refreshes the entry's recency (a no-op
    when the entry is already most recent); a miss may evict
    least-recently-used entries (never the one just inserted).
    Exceptions from [build] propagate and leave the cache — entries,
    counters and telemetry alike — unchanged: a failed build is neither a
    hit nor a miss. *)

val mem : t -> string -> bool
val length : t -> int
val weight : t -> int
(** Σ {!Obda_ndl.Ndl.size} of resident rewritings. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val relinks : t -> int
(** Recency-list splices performed by hits: a repeated hit on the MRU
    entry takes the fast path and does not relink. *)

val keys_mru_first : t -> string list
(** Resident keys, most recently used first (for tests and STATS). *)
