(** Blocking client for the {!Serve} newline protocol.

    One request line in, one complete response out — the reader uses the
    counts announced on status lines ([OK answers=N], [OK stats=N],
    [OK metrics=N], [OK batch=K] with per-query [answers=N] headers) to
    know how many payload lines to consume, so it needs no timeouts and
    never over-reads.  Not thread-safe: use one client per thread. *)

type t

val connect : ?retries:int -> Server.address -> t
(** Raises [Unix.Unix_error] when the server is not there.  [retries]
    (default 0) retries a refused connection ([ECONNREFUSED], or
    [ENOENT] for a not-yet-bound Unix socket path) up to that many extra
    times with exponential backoff — 50 ms doubling to a 2 s cap, plus
    up to 25% jitter — the readiness poll of [obda client --retry] and
    the smoke scripts.  Other errors are raised immediately. *)

val close : t -> unit

val send : t -> string -> unit
(** Write one request line (the newline is appended). *)

val read_response : t -> string list
(** Read one complete response: the status line plus its announced
    payload lines.  [[]] on a closed connection; a truncated response
    returns the lines that did arrive. *)

val request : t -> string -> string list
(** {!send} then {!read_response}. *)
