(** The newline-delimited request language of [obda serve].

    One request per line; verbs are case-insensitive, blank lines and
    [#]-comments are skipped:
    {v
      LOAD ONTOLOGY <file>
      LOAD DATA <file>
      PREPARE <name> [ALG <algorithm>] <query>
      ANSWER <name>
      BATCH <name> [<name> ...]
      ASSERT <fact> [<fact> ...]
      RETRACT <fact> [<fact> ...]
      STATS
      METRICS
      PING
      CHECKPOINT
      QUIT
    v}
    Queries and facts use the textual format of {!Obda_parse.Parse}. *)

module Omq := Obda_rewriting.Omq

type request =
  | Load_ontology of string
  | Load_data of string
  | Prepare of { name : string; algorithm : Omq.algorithm option; cq : string }
  | Answer of string
  | Batch of string list
      (** prepared query names, answered in one request — concurrently
          when the session has [jobs > 1] *)
  | Assert_facts of string  (** unparsed fact text, one or more facts *)
  | Retract_facts of string
  | Stats
  | Metrics
      (** Prometheus-style text exposition of counters, gauges and latency
          histograms — the feed of [obda top] *)
  | Ping
      (** liveness probe: [OK pong rev=<revision> uptime=<seconds>] —
          readiness polling for scripts and the [obda top] probe *)
  | Checkpoint
      (** force a durability checkpoint now; [ERR class=internal] when the
          server runs without [--data-dir] *)
  | Quit

val parse : string -> (request option, string) result
(** [Ok None] for blank/comment lines; [Error msg] for malformed
    requests.  Query and fact payloads are returned verbatim — parsing
    them (which can itself fail with located parse errors) happens at
    execution time. *)

val verb : request -> string
(** The canonical verb name, for telemetry span attributes. *)
