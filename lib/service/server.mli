(** The concurrent network server: the {!Serve} request loop over a Unix
    or TCP socket, N connections at a time against one shared {!Session}.

    Concurrency model — one domain pool of [connections + 1] workers:
    worker 0 accepts, the others each drive one connection's serve loop.
    The shared session must have [jobs = 1] (enforced by {!create}); the
    server gets its parallelism across connections, and every [ANSWER] /
    [BATCH] evaluates against a copy-on-write {!Session.freeze} snapshot,
    so writers on other connections never tear an answer set.

    Robustness:
    - {b Admission control} — at most [max_inflight] requests execute at
      once; excess requests are shed with an in-protocol
      [ERR class=overloaded] line (the connection stays open).  [QUIT] /
      [EXIT], [PING] and blank/comment lines are exempt, so clients can
      always leave and liveness probes answer even under saturation.  A full pending-connection queue (> [backlog]) sheds the
      whole connection the same way.
    - {b Timeouts} — [idle_timeout] closes a connection that sends nothing
      (after an [ERR class=budget resource=idle-seconds] line);
      [request_timeout] caps each request's wall clock via
      {!Obda_runtime.Budget.sub}'s deadline.
    - {b Graceful shutdown} — {!request_stop} is async-signal-safe (one
      atomic write): the accept loop stops accepting, requests in flight
      finish, connections close, queued-but-unserved descriptors are
      dropped, telemetry is flushed, and {!run} returns the requested
      exit code.

    Fault sites: [serve.accept] sheds exactly one incoming connection
    (listener survives), [serve.connection] kills exactly one established
    connection (server keeps serving), [abox.snapshot] fails the freeze
    inside one request (in-protocol [ERR]). *)

type address = Unix_socket of string | Tcp of string * int

type t

val create :
  ?connections:int ->
  ?backlog:int ->
  ?max_inflight:int ->
  ?idle_timeout:float ->
  ?request_timeout:float ->
  address ->
  Session.t ->
  t
(** Bind and listen immediately (clients may connect before {!run} starts
    accepting).  [connections] (default 4) concurrent connection workers;
    [backlog] (default 16) bounds the accepted-but-unclaimed queue;
    [max_inflight] (default [connections]) bounds concurrently executing
    requests; timeouts are in seconds (default: none).  [Tcp (host, 0)]
    binds an ephemeral port — read it back with {!address}.  Raises
    [Invalid_argument] on a [jobs <> 1] session or nonsensical bounds,
    and [Unix.Unix_error] when binding fails (stale socket file, port in
    use). *)

val run : ?on_drain:(unit -> unit) -> t -> int
(** Serve until {!request_stop}.  Installs the STATS hook (see
    {!stats_rows}), ignores [SIGPIPE] for the duration, then runs the
    accept loop and connection workers on an internal domain pool.
    Returns the exit code passed to {!request_stop} (0 for {!stop});
    the listener is closed and a Unix socket path unlinked on the way
    out.  [on_drain] runs after every connection worker has finished
    (no request in flight) and before the listener closes — the hook
    for a final durability checkpoint on graceful shutdown; an
    exception from it is reported to stderr but does not change the
    exit code.  Not reentrant. *)

val request_stop : t -> code:int -> unit
(** Begin graceful shutdown; {!run} will return [code] (the first call
    wins).  One atomic write — async-signal-safe, callable from a
    [Sys.signal] handler, another domain or a thread; the accept loop
    notices within one poll tick (0.1 s) and wakes the parked workers. *)

val stop : t -> unit
(** [request_stop ~code:0]. *)

val address : t -> address
(** The bound address, with an ephemeral TCP port resolved to its actual
    value. *)

val address_string : address -> string
(** ["unix:PATH"] or ["tcp:HOST:PORT"] — log/display form. *)

val session : t -> Session.t

val stats_rows : t -> (string * string) list
(** The server rows appended to [STATS] via {!Session.set_stats_hook}:
    [server.uptime-s], [server.connections.accepted] / [.active] /
    [.shed], [server.requests.served] / [.shed] / [.inflight],
    [server.snapshot.revisions] (the {!Session.frozen_span} as ["lo-hi"],
    or ["-"] before the first freeze), and [server.p50-ms] / [.p95-ms] /
    [.p99-ms] — request-latency quantiles from the per-connection
    histograms (closed connections absorbed at close time, live ones
    merged on demand; see {!Obda_obs.Histogram}). *)
