(* Write-ahead log + checkpoints: the durability layer behind
   [obda serve --data-dir].

   Every effective mutation is appended as one CRC32-framed record before
   the client sees its OK line; a checkpoint serializes the full session
   state (ontology text, canonical ABox blob, prepared-query registry) to
   [checkpoint.<seq>] and truncates the log.  Recovery restores the newest
   valid checkpoint and replays the log tail, truncating a torn final
   record (a crash mid-append is normal operation) but refusing corrupt
   interior records (bytes that were once acknowledged and then rotted are
   not silently droppable).

   Concurrency: appends and checkpoints are driven from under the session
   lock (the mutation hook and [Serve]'s checkpoint path both hold it), so
   this module needs no lock of its own — log order is mutation order, and
   a checkpoint can never race an append.  [recover] runs single-threaded
   at startup. *)

module Abox = Obda_data.Abox
module Tbox = Obda_ontology.Tbox
module Omq = Obda_rewriting.Omq
module Parse = Obda_parse.Parse
module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault
module Obs = Obda_obs.Obs
module Histogram = Obda_obs.Histogram

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — table-driven,
   self-contained: the toolchain has no checksum library and the format
   must not depend on one. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Sync policy *)

type sync_policy = Always | Interval of float | Never

let sync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
    let ms = String.sub s 9 (String.length s - 9) in
    match float_of_string_opt ms with
    | Some ms when ms > 0. -> Ok (Interval (ms /. 1000.))
    | _ -> Error (Printf.sprintf "bad sync interval %S (want interval:MS)" ms))
  | _ ->
    Error
      (Printf.sprintf "unknown durability policy %S (always|interval:MS|never)"
         s)

let sync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval s -> Printf.sprintf "interval:%g" (s *. 1000.)

(* ------------------------------------------------------------------ *)
(* Record payloads.

   A payload is a one-line header [<op> seq=<n> rev=<r>] followed by the
   mutation's content in the ordinary textual data/ontology format, so a
   WAL is inspectable with [od]/[less] and replay reuses the battle-tested
   parsers.  LOAD records inline the full serialized content — never the
   file path the client named, which may change or vanish. *)

type mutation =
  | Assert of Abox.fact list
  | Retract of Abox.fact list
  | Load_ontology of Tbox.t
  | Load_data of Abox.t

let op_name = function
  | Assert _ -> "assert"
  | Retract _ -> "retract"
  | Load_ontology _ -> "load-ontology"
  | Load_data _ -> "load-data"

let mutation_body = function
  | Assert facts | Retract facts -> Parse.data_to_string (Abox.of_facts facts)
  | Load_ontology tbox -> Parse.ontology_to_string tbox
  | Load_data abox -> Parse.data_to_string abox

let encode_payload ~seq ~revision mutation =
  Printf.sprintf "%s seq=%d rev=%d\n%s" (op_name mutation) seq revision
    (mutation_body mutation)

type record = { rseq : int; rrev : int; rop : string; rbody : string }

let decode_payload ~offset payload =
  let header, body =
    match String.index_opt payload '\n' with
    | Some i ->
      ( String.sub payload 0 i,
        String.sub payload (i + 1) (String.length payload - i - 1) )
    | None -> (payload, "")
  in
  let int_field key tokens =
    let prefix = key ^ "=" in
    List.find_map
      (fun tok ->
        if String.starts_with ~prefix tok then
          int_of_string_opt
            (String.sub tok (String.length prefix)
               (String.length tok - String.length prefix))
        else None)
      tokens
  in
  match String.split_on_char ' ' header with
  | op :: fields -> (
    match (int_field "seq" fields, int_field "rev" fields) with
    | Some rseq, Some rrev -> { rseq; rrev; rop = op; rbody = body }
    | _ ->
      Error.internal "WAL record at offset %d has a malformed header %S" offset
        header)
  | [] -> Error.internal "WAL record at offset %d is empty" offset

(* ------------------------------------------------------------------ *)
(* Binary framing: u32le payload length, u32le CRC32(payload), payload. *)

let frame_header_bytes = 8

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let get_u32 s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let frame payload =
  let buf = Buffer.create (String.length payload + frame_header_bytes) in
  put_u32 buf (String.length payload);
  put_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* File helpers *)

let wal_file dir = Filename.concat dir "wal.log"
let checkpoint_prefix = "checkpoint."
let checkpoint_file dir seq = Filename.concat dir (checkpoint_prefix ^ string_of_int seq)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Directory entry durability for renames/creates (best-effort: some
   filesystems refuse fsync on a directory fd). *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let mkdir_p dir =
  let rec go dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
    then begin
      go (Filename.dirname dir);
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* Checkpoint files present in [dir], newest (highest covered seq) first. *)
let checkpoints dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           if String.starts_with ~prefix:checkpoint_prefix name then
             Option.map
               (fun seq -> (seq, Filename.concat dir name))
               (int_of_string_opt
                  (String.sub name
                     (String.length checkpoint_prefix)
                     (String.length name - String.length checkpoint_prefix)))
           else None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

(* ------------------------------------------------------------------ *)
(* Checkpoint format: magic "OBCK" + version byte, u32 covered seq, one
   optional ontology section, the ABox blob, the prepared registry
   (name \t algorithm \t query text), and a trailing whole-file CRC32. *)

let ckpt_magic = "OBCK"
let ckpt_version = 1

(* The machine spelling accepted by [Omq.algorithm_of_string] — the
   display form ([Omq.algorithm_name], e.g. "Clipper*(UCQ)") does not
   round-trip. *)
let algorithm_token = function
  | Omq.Tw -> "tw"
  | Omq.Lin -> "lin"
  | Omq.Log -> "log"
  | Omq.Ucq -> "ucq"
  | Omq.Ucq_condensed -> "ucq-condensed"
  | Omq.Presto_like -> "presto"

let encode_checkpoint ~seq ~tbox ~abox ~prepared =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ckpt_magic;
  Buffer.add_char buf (Char.chr ckpt_version);
  put_u32 buf seq;
  (match tbox with
  | None -> Buffer.add_char buf '\000'
  | Some tbox ->
    Buffer.add_char buf '\001';
    let text = Parse.ontology_to_string tbox in
    put_u32 buf (String.length text);
    Buffer.add_string buf text);
  let blob = Abox.serialize abox in
  put_u32 buf (String.length blob);
  Buffer.add_string buf blob;
  put_u32 buf (List.length prepared);
  List.iter
    (fun (name, algorithm, cq) ->
      let entry =
        String.concat "\t" [ name; algorithm_token algorithm; cq ]
      in
      put_u32 buf (String.length entry);
      Buffer.add_string buf entry)
    prepared;
  let body = Buffer.contents buf in
  let crc = Buffer.create 4 in
  put_u32 crc (crc32 body);
  body ^ Buffer.contents crc

exception Invalid_checkpoint of string

let invalid_ckpt fmt = Printf.ksprintf (fun m -> raise (Invalid_checkpoint m)) fmt

(* [seq, tbox option, abox, prepared triples].  Raises [Invalid_checkpoint]
   on any structural or checksum defect. *)
let decode_checkpoint s =
  let n = String.length s in
  let header = String.length ckpt_magic + 1 in
  if n < header + 8 then invalid_ckpt "file too short (%d bytes)" n;
  if String.sub s 0 (String.length ckpt_magic) <> ckpt_magic then
    invalid_ckpt "bad magic";
  if Char.code s.[String.length ckpt_magic] <> ckpt_version then
    invalid_ckpt "unsupported version %d" (Char.code s.[String.length ckpt_magic]);
  let body = String.sub s 0 (n - 4) in
  let stored_crc = get_u32 s (n - 4) in
  if crc32 body <> stored_crc then
    invalid_ckpt "checksum mismatch (stored %08x, computed %08x)" stored_crc
      (crc32 body);
  let pos = ref header in
  let need k what =
    if !pos + k > n - 4 then invalid_ckpt "truncated %s section" what
  in
  let u32 what =
    need 4 what;
    let v = get_u32 s !pos in
    pos := !pos + 4;
    v
  in
  let str len what =
    need len what;
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  let seq = u32 "seq" in
  need 1 "ontology flag";
  let has_ontology = s.[!pos] <> '\000' in
  incr pos;
  let tbox =
    if has_ontology then
      Some (Parse.ontology_of_string (str (u32 "ontology") "ontology"))
    else None
  in
  let abox =
    let blob = str (u32 "data") "data" in
    try Abox.deserialize blob
    with Abox.Corrupt msg -> invalid_ckpt "ABox blob: %s" msg
  in
  let n_prepared = u32 "prepared count" in
  let prepared =
    List.init n_prepared (fun i ->
        let entry = str (u32 "prepared entry") "prepared entry" in
        match String.split_on_char '\t' entry with
        | name :: alg :: rest when rest <> [] -> (
          match Omq.algorithm_of_string alg with
          | Some algorithm -> (name, algorithm, String.concat "\t" rest)
          | None -> invalid_ckpt "prepared entry %d: unknown algorithm %S" i alg)
        | _ -> invalid_ckpt "prepared entry %d is malformed" i)
  in
  if !pos <> n - 4 then invalid_ckpt "trailing garbage";
  (seq, tbox, abox, prepared)

(* ------------------------------------------------------------------ *)
(* Recovery *)

type recovered = {
  checkpoint_seq : int option;
  replayed : int;
  skipped : int;
  torn_bytes : int;
  warnings : string list;
  last_seq : int;
  tbox : Tbox.t option;
  abox : Abox.t;
  prepared : (string * Omq.algorithm * string) list;
}

(* Scan the framed log: complete records up to the first defect.  A defect
   whose record extends to (or past) end-of-file is a torn tail — the
   expected debris of a crash mid-append; anything corrupt with further
   bytes behind it was durable once and is a hard error. *)
let scan_wal path =
  if not (Sys.file_exists path) then ([], 0, 0)
  else begin
    let s = read_file path in
    let n = String.length s in
    let rec go offset acc =
      if offset = n then (List.rev acc, offset, 0)
      else if n - offset < frame_header_bytes then
        (List.rev acc, offset, n - offset)
      else begin
        let plen = get_u32 s offset in
        let stored_crc = get_u32 s (offset + 4) in
        if plen > n - offset - frame_header_bytes then
          (List.rev acc, offset, n - offset)
        else begin
          let payload = String.sub s (offset + frame_header_bytes) plen in
          let next = offset + frame_header_bytes + plen in
          if crc32 payload <> stored_crc then
            if next = n then (List.rev acc, offset, n - offset)
            else
              Error.internal
                "corrupt WAL: record at offset %d fails its checksum with %d \
                 bytes following it (stored %08x, computed %08x) — refusing \
                 to replay past acknowledged-then-damaged data"
                offset (n - next) stored_crc (crc32 payload)
          else go next ((offset, payload) :: acc)
        end
      end
    in
    go 0 []
  end

let apply_record state record =
  let tbox, abox, prepared = !state in
  match record.rop with
  | "assert" ->
    List.iter (Abox.add_fact abox) (Abox.to_facts (Parse.data_of_string record.rbody))
  | "retract" ->
    List.iter
      (fun f -> ignore (Abox.remove_fact abox f))
      (Abox.to_facts (Parse.data_of_string record.rbody))
  | "load-ontology" ->
    (* a reload drops the prepared registry, exactly like the live path *)
    state := (Some (Parse.ontology_of_string record.rbody), abox, [])
  | "load-data" -> state := (tbox, Parse.data_of_string record.rbody, prepared)
  | op -> Error.internal "WAL record has unknown operation %S" op

let recover ?(repair = false) dir =
  Fault.hit Fault.wal_recover;
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt in
  (* newest valid checkpoint; invalid ones are skipped with a warning *)
  let rec restore = function
    | [] -> (None, (None, Abox.create (), []))
    | (seq, path) :: older -> (
      match decode_checkpoint (read_file path) with
      | stored_seq, tbox, abox, prepared ->
        if stored_seq <> seq then
          warn "checkpoint %s claims seq %d (named %d)" path stored_seq seq;
        (Some seq, (tbox, abox, prepared))
      | exception Invalid_checkpoint msg ->
        warn "skipping invalid checkpoint %s: %s" path msg;
        restore older
      | exception Sys_error msg ->
        warn "skipping unreadable checkpoint %s: %s" path msg;
        restore older)
  in
  let all = checkpoints dir in
  let checkpoint_seq, (tbox, abox, prepared) = restore all in
  if all <> [] && checkpoint_seq = None then
    Error.internal
      "data dir %s has %d checkpoint file(s) but none is valid — refusing \
       to silently restart empty"
      dir (List.length all);
  let records, valid_end, torn_bytes = scan_wal (wal_file dir) in
  if torn_bytes > 0 then
    warn
      "WAL tail torn at offset %d: dropping %d trailing byte(s) of an \
       unacknowledged record"
      valid_end torn_bytes;
  let floor = Option.value checkpoint_seq ~default:0 in
  let state = ref (tbox, abox, prepared) in
  let replayed = ref 0 and skipped = ref 0 and last_seq = ref floor in
  List.iter
    (fun (offset, payload) ->
      let record = decode_payload ~offset payload in
      last_seq := max !last_seq record.rseq;
      if record.rseq <= floor then incr skipped
      else begin
        apply_record state record;
        incr replayed;
        Obs.incr "wal.replayed"
      end)
    records;
  if repair && torn_bytes > 0 then begin
    let fd = Unix.openfile (wal_file dir) [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        Unix.ftruncate fd valid_end;
        Unix.fsync fd)
  end;
  let tbox, abox, prepared = !state in
  {
    checkpoint_seq;
    replayed = !replayed;
    skipped = !skipped;
    torn_bytes;
    warnings = List.rev !warnings;
    last_seq = !last_seq;
    tbox;
    abox;
    prepared;
  }

(* ------------------------------------------------------------------ *)
(* The live log *)

type t = {
  dir : string;
  policy : sync_policy;
  checkpoint_every : int option;
  fd : Unix.file_descr;
  mutable seq : int;
  mutable ckpt_seq : int;  (* highest seq covered by a checkpoint *)
  mutable since_checkpoint : int;
  mutable last_sync : float;
  mutable dirty : bool;
  mutable broken : bool;
      (* a failed append may have left a partial frame: further appends
         would bury it under valid records and turn a recoverable torn
         tail into fatal interior corruption — so the log refuses them *)
  mutable appended : int;
  mutable synced : int;
  mutable bytes : int;
  mutable checkpoints_written : int;
  mutable replayed_at_open : int;
}

let h_sync = Histogram.registered ~scale:1e9 "serve.wal.sync.latency"

let open_ ?(policy = Always) ?checkpoint_every dir =
  (match checkpoint_every with
  | Some n when n < 1 -> invalid_arg "Wal.open_: checkpoint_every < 1"
  | _ -> ());
  mkdir_p dir;
  let recovered = recover ~repair:true dir in
  let fd =
    Unix.openfile (wal_file dir)
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  in
  ( {
      dir;
      policy;
      checkpoint_every;
      fd;
      seq = recovered.last_seq;
      ckpt_seq = Option.value recovered.checkpoint_seq ~default:0;
      since_checkpoint = recovered.replayed;
      last_sync = Unix.gettimeofday ();
      dirty = false;
      broken = false;
      appended = 0;
      synced = 0;
      bytes = 0;
      checkpoints_written = 0;
      replayed_at_open = recovered.replayed;
    },
    recovered )

let dir t = t.dir
let policy t = t.policy
let last_seq t = t.seq

let sync t =
  if t.dirty then begin
    Fault.hit Fault.wal_sync;
    let t0 = Unix.gettimeofday () in
    Unix.fsync t.fd;
    Histogram.record h_sync (Unix.gettimeofday () -. t0);
    t.dirty <- false;
    t.last_sync <- Unix.gettimeofday ();
    t.synced <- t.synced + 1;
    Obs.incr "wal.synced"
  end

let maybe_sync t =
  match t.policy with
  | Always -> sync t
  | Never -> ()
  | Interval s -> if Unix.gettimeofday () -. t.last_sync >= s then sync t

let append t mutation ~revision =
  if t.broken then
    Error.internal
      "WAL %s is broken by an earlier failed append; restart to recover"
      (wal_file t.dir);
  Fault.hit Fault.wal_append;
  let seq = t.seq + 1 in
  let framed = frame (encode_payload ~seq ~revision mutation) in
  let size_before = (Unix.fstat t.fd).Unix.st_size in
  let prev_dirty = t.dirty in
  (match write_all t.fd framed with
  | () -> ()
  | exception e ->
    t.broken <- true;
    raise e);
  t.seq <- seq;
  t.dirty <- true;
  t.appended <- t.appended + 1;
  t.bytes <- t.bytes + String.length framed;
  t.since_checkpoint <- t.since_checkpoint + 1;
  match maybe_sync t with
  | () -> Obs.incr "wal.appended"
  | exception e ->
    (* Written but not durable: the client will see this mutation's ERR
       and the store will not apply it, so the record must not survive
       into recovery — roll the append back.  If even the rollback fails
       the log is broken (refusing further appends), which a restart
       repairs as a torn tail. *)
    (match Unix.ftruncate t.fd size_before with
    | () ->
      t.seq <- seq - 1;
      t.dirty <- prev_dirty;
      t.appended <- t.appended - 1;
      t.bytes <- t.bytes - String.length framed;
      t.since_checkpoint <- t.since_checkpoint - 1
    | exception _ -> t.broken <- true);
    raise e

let due_checkpoint t =
  match t.checkpoint_every with
  | Some n -> t.since_checkpoint >= n
  | None -> false

let checkpoint t ~tbox ~abox ~prepared =
  (* everything appended so far must be durable before the log truncates *)
  sync t;
  let seq = t.seq in
  let content = encode_checkpoint ~seq ~tbox ~abox ~prepared in
  let final = checkpoint_file t.dir seq in
  let tmp = final ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      write_all fd content;
      Unix.fsync fd);
  Unix.rename tmp final;
  fsync_dir t.dir;
  (* the new checkpoint is durable: retire its predecessors and the tail *)
  List.iter
    (fun (s, path) -> if s <> seq then try Sys.remove path with Sys_error _ -> ())
    (checkpoints t.dir);
  Unix.ftruncate t.fd 0;
  Unix.fsync t.fd;
  t.dirty <- false;
  t.ckpt_seq <- seq;
  t.since_checkpoint <- 0;
  t.checkpoints_written <- t.checkpoints_written + 1;
  Obs.incr "wal.checkpointed";
  seq

let close t =
  (try sync t with _ -> ());
  try Unix.close t.fd with _ -> ()

let stats_rows t =
  [
    ("server.wal.seq", string_of_int t.seq);
    ("server.wal.appended", string_of_int t.appended);
    ("server.wal.bytes", string_of_int t.bytes);
    ("server.wal.syncs", string_of_int t.synced);
    ("server.wal.checkpoints", string_of_int t.checkpoints_written);
    ("server.wal.replayed", string_of_int t.replayed_at_open);
  ]
