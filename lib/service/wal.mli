(** Write-ahead log + checkpoints: durability for [obda serve].

    A session opened with a data dir appends every {e effective} mutation
    ([ASSERT]/[RETRACT] of facts that actually changed the store,
    [LOAD ONTOLOGY]/[LOAD DATA]) to [<dir>/wal.log] {e before} the client
    sees its [OK] line.  Each record is framed as
    [u32le length · u32le CRC32(payload) · payload], where the payload is
    a [<op> seq=<n> rev=<r>] header line followed by the mutation's
    content in the ordinary textual formats (LOAD records inline the full
    serialized content, never a file path).  [seq] is the log's own
    monotone sequence number — unlike {!Obda_data.Abox.revision}, which
    resets when [LOAD DATA] installs a fresh store — and [rev] is the
    post-mutation revision, kept for diagnostics.

    A {e checkpoint} serializes the whole session state — ontology text,
    canonical ABox blob ({!Obda_data.Abox.serialize}) and the
    prepared-query registry — to [<dir>/checkpoint.<seq>] (written to a
    temp file, fsynced, renamed), retires older checkpoints and truncates
    the log.  {e Recovery} restores the newest valid checkpoint and
    replays the log tail, skipping records at or below the checkpoint's
    sequence number.  A torn final record (a crash mid-append) is
    truncated with a warning — the server never refuses to start over it —
    while a corrupt {e interior} record raises a typed
    [Obda_error (Internal _)]: bytes that were once acknowledged and then
    damaged must not be silently dropped.

    Fault sites: [wal.append] guards every record append, [wal.sync]
    every fsync, [wal.recover] the recovery entry point.  Telemetry:
    [wal.appended]/[wal.synced]/[wal.replayed]/[wal.checkpointed]
    counters and the [serve.wal.sync.latency] histogram.

    Appends and checkpoints must be externally serialised — the session
    drives both from under its lock, making log order mutation order —
    and {!recover} runs single-threaded at startup; the module has no
    internal lock. *)

module Omq := Obda_rewriting.Omq

val crc32 : string -> int
(** IEEE CRC32 (the zlib/PNG polynomial), table-driven.  Exposed for the
    format tests. *)

(** {1 Sync policy} *)

type sync_policy =
  | Always  (** fsync after every appended record *)
  | Interval of float
      (** fsync at most once per window (seconds): an append syncs only
          when the window since the last sync has elapsed *)
  | Never  (** leave syncing to the OS (and {!close}/{!checkpoint}) *)

val sync_policy_of_string : string -> (sync_policy, string) result
(** The [--durability] spellings: ["always"], ["never"], ["interval:MS"]
    (milliseconds, converted to seconds). *)

val sync_policy_to_string : sync_policy -> string

(** {1 Mutations} *)

type mutation =
  | Assert of Obda_data.Abox.fact list  (** the effectively-added facts *)
  | Retract of Obda_data.Abox.fact list  (** the effectively-removed facts *)
  | Load_ontology of Obda_ontology.Tbox.t
  | Load_data of Obda_data.Abox.t

(** {1 Recovery} *)

type recovered = {
  checkpoint_seq : int option;
      (** sequence number of the restored checkpoint, if any *)
  replayed : int;  (** WAL records applied on top of it *)
  skipped : int;  (** records at or below the checkpoint's sequence *)
  torn_bytes : int;  (** trailing bytes of a torn final record *)
  warnings : string list;
  last_seq : int;  (** highest sequence number observed *)
  tbox : Obda_ontology.Tbox.t option;
  abox : Obda_data.Abox.t;
  prepared : (string * Omq.algorithm * string) list;
      (** prepared-query registry as (name, algorithm, query text) *)
}

val recover : ?repair:bool -> string -> recovered
(** Restore the newest valid checkpoint in the dir and replay the WAL
    tail.  Invalid checkpoint files are skipped (with a warning) in
    favour of older ones; if checkpoints exist but none is valid, or an
    interior WAL record is corrupt, raises a typed
    [Obda_error (Internal _)].  With [repair] (default [false]) a torn
    final record is physically truncated from the log; without it the
    tear is only reported — the dry-run mode of [obda recover].  A
    missing or empty dir recovers to the empty state.  Guarded by the
    [wal.recover] fault site. *)

(** {1 The live log} *)

type t

val open_ : ?policy:sync_policy -> ?checkpoint_every:int -> string -> t * recovered
(** Create the dir if needed, run {!recover}[ ~repair:true], and open the
    log for appending.  [policy] defaults to [Always];
    [checkpoint_every n] arms {!due_checkpoint} after [n] records
    (raises [Invalid_argument] when [n < 1]).  The returned {!recovered}
    state is the caller's to install into its session {e before} hooking
    the session's mutations to {!append}. *)

val append : t -> mutation -> revision:int -> unit
(** Frame and append one record (next sequence number, tagged with the
    post-mutation [revision]), then sync per the policy.  Guarded by the
    [wal.append] (and, when syncing, [wal.sync]) fault sites; called
    under the session lock {e before} the mutation's [OK] is sent, so a
    raise here surfaces as the request's [ERR] and the mutation is never
    acknowledged.  A failed {e sync} rolls the freshly written record
    back (truncate to the pre-append length), keeping recovery exactly
    the acknowledged prefix.  After a failed write — or a failed
    rollback — the log marks itself broken and refuses further appends:
    a partial frame buried under later records would turn a recoverable
    torn tail into fatal interior corruption. *)

val sync : t -> unit
(** Force an fsync of any unsynced appends (no-op when clean). *)

val due_checkpoint : t -> bool
(** Whether [checkpoint_every] records have accumulated since the last
    checkpoint (or recovery). *)

val checkpoint :
  t ->
  tbox:Obda_ontology.Tbox.t option ->
  abox:Obda_data.Abox.t ->
  prepared:(string * Omq.algorithm * string) list ->
  int
(** Write a checkpoint of the given state, retire older checkpoint files
    and truncate the log; returns the covered sequence number.  The
    caller must hold the session lock (no append may interleave between
    capturing the state and truncating the log). *)

val close : t -> unit
(** Final sync (best-effort) and close. *)

val dir : t -> string
val policy : t -> sync_policy

val last_seq : t -> int
(** Highest sequence number assigned so far. *)

val stats_rows : t -> (string * string) list
(** The [server.wal.*] STATS rows: sequence number, records/bytes
    appended, fsyncs, checkpoints written and records replayed at open. *)
