(** Prepared ontology-mediated queries.

    [prepare] runs the expensive front half of query answering once —
    classify, pick an algorithm, rewrite to NDL — and stores the result
    under a client-chosen name.  The rewriting itself is obtained through
    the session's content-addressed {!Cache}, so preparing the same OMQ
    again (under any name) reuses the cached rewriting instead of
    rewriting anew. *)

module Omq := Obda_rewriting.Omq

type t

val prepare :
  ?budget:Obda_runtime.Budget.t ->
  cache:Cache.t ->
  name:string ->
  ?algorithm:Omq.algorithm ->
  Obda_ontology.Tbox.t ->
  Obda_cq.Cq.t ->
  t * [ `Hit | `Miss ]
(** Build a prepared query over the given TBox.  The algorithm defaults to
    {!Omq.default_algorithm}; an inapplicable explicit algorithm raises
    [Obda_error (Not_applicable _)].  The rewriting is produced over
    arbitrary instances ([`Arbitrary]) and fetched through [cache] keyed
    by {!Omq.digest}; the second component says whether it was a cache
    hit. *)

val name : t -> string
val omq : t -> Omq.t
val algorithm : t -> Omq.algorithm
val digest : t -> string
val rewriting : t -> Obda_ndl.Ndl.query
val classification : t -> Omq.classification

val plan : t -> Obda_ndl.Eval.plan_cache
(** The prepared query's evaluation-plan cache: [rewriting] is stable
    across ANSWER calls, so the evaluator reuses its compiled plans until
    the store size drifts past the replan threshold.  Note the cached
    rewriting may be shared across prepared queries (the content-addressed
    {!Cache}), but each prepared query plans independently. *)

val arity : t -> int
(** Number of answer variables. *)
