(* Request execution and the serve loop. *)

module Omq = Obda_rewriting.Omq
module Tbox = Obda_ontology.Tbox
module Cq = Obda_cq.Cq
module Abox = Obda_data.Abox
module Ndl = Obda_ndl.Ndl
module Parse = Obda_parse.Parse
module Symbol = Obda_syntax.Symbol
module Eval = Obda_ndl.Eval
module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault
module Pool = Obda_runtime.Pool
module Obs = Obda_obs.Obs
module Histogram = Obda_obs.Histogram
module Exposition = Obda_obs.Exposition
module Json = Obda_obs.Json

(* ------------------------------------------------------------------ *)
(* Request-scoped telemetry.

   Every parsed request gets a monotonically increasing id (process-wide,
   so ids from concurrent connections interleave but never collide), is
   timed into a per-verb latency histogram, and — when the access log is
   enabled — leaves one JSON line behind.  Histograms live in the
   process-wide registry, so a METRICS render sees every verb's
   distribution no matter which connection served it. *)

let next_request_id = Atomic.make 1

let h_answer = Histogram.registered ~scale:1e9 "serve.answer.latency"
let h_batch = Histogram.registered ~scale:1e9 "serve.batch.latency"
let h_mutate = Histogram.registered ~scale:1e9 "serve.mutate.latency"
let h_answer_count = Histogram.registered ~scale:1. "serve.answer.count"
let h_bytes_out = Histogram.registered ~scale:1. "serve.response.bytes"

let latency_histogram = function
  | "ANSWER" -> Some h_answer
  | "BATCH" -> Some h_batch
  | "ASSERT" | "RETRACT" -> Some h_mutate
  | _ -> None

(* Per-query evaluation latency inside a BATCH: workers record into their
   domain-local shard ([observe:false] only mutes the single-slot Obs
   sink), and the shards merge into this registry target at the Pool
   barrier. *)
let batch_query_latency = "serve.batch.query.latency"
let _ = Histogram.registered ~scale:1e9 batch_query_latency

type access_log = {
  write : string -> unit;  (** one complete JSON line, no trailing newline *)
  slow_ms : float option;
}

let access_log : access_log option ref = ref None
let access_log_mutex = Mutex.create ()
let access_log_errors = Atomic.make 0

let set_access_log ?slow_ms write = access_log := Some { write; slow_ms }
let clear_access_log () = access_log := None
let access_log_error_count () = Atomic.get access_log_errors

(* ------------------------------------------------------------------ *)
(* Durability: the process's WAL, when [--data-dir] armed one.  Appends
   ride the session's mutation hook (under the session lock); this slot
   only serves the CHECKPOINT verb and the --checkpoint-every trigger. *)

let durability : Wal.t option ref = ref None

let checkpoint_now session wal =
  Session.with_checkpoint_state session (fun ~tbox ~abox ~prepared ->
      Wal.checkpoint wal ~tbox ~abox ~prepared)

let attach_wal session wal =
  durability := Some wal;
  Session.set_wal_hook session
    {
      Session.on_mutation =
        (fun mutation ~revision -> Wal.append wal mutation ~revision);
      wal_rows = (fun () -> Wal.stats_rows wal);
    }

let detach_wal session =
  durability := None;
  Session.clear_wal_hook session

(* The --checkpoint-every trigger, after a mutation was acknowledged.  A
   failed automatic checkpoint must not fail the already-applied request:
   the WAL still holds every record, so durability is intact — count it,
   warn, and let the next trigger retry. *)
let auto_checkpoint session =
  match !durability with
  | Some wal when Wal.due_checkpoint wal -> (
    try ignore (checkpoint_now session wal)
    with e ->
      Obs.incr "wal.checkpoint.errors";
      Printf.eprintf "obda: automatic checkpoint failed: %s\n%!"
        (match e with
        | Error.Obda_error err -> Error.to_string err
        | e -> Printexc.to_string e))
  | _ -> ()

let origin_string = function `Hit -> "hit" | `Miss -> "miss"

let tuple_string tuple =
  String.concat "," (List.map Symbol.name tuple)

let exec ?budget session (req : Protocol.request) =
  match req with
  | Protocol.Load_ontology file ->
    let tbox = Parse.ontology_of_file file in
    Session.load_ontology session tbox;
    [
      Format.asprintf "OK ontology axioms=%d depth=%a"
        (List.length (Tbox.axioms tbox))
        Tbox.pp_depth (Tbox.depth tbox);
    ]
  | Protocol.Load_data file ->
    let abox = Parse.data_of_file file in
    Session.load_data session abox;
    [
      Printf.sprintf "OK data atoms=%d individuals=%d"
        (Abox.num_atoms abox) (Abox.num_individuals abox);
    ]
  | Protocol.Prepare { name; algorithm; cq } ->
    let cq = Parse.query_of_string cq in
    let prepared, origin = Session.prepare ?budget session ~name ?algorithm cq in
    [
      Printf.sprintf "OK prepared name=%s algorithm=%s cache=%s clauses=%d digest=%s"
        name
        (Omq.algorithm_name (Prepared.algorithm prepared))
        (origin_string origin)
        (Ndl.num_clauses (Prepared.rewriting prepared))
        (Prepared.digest prepared);
    ]
  | Protocol.Answer name ->
    let prepared =
      match Session.find_prepared session name with
      | Some p -> p
      | None -> Error.internal "no prepared query named %S" name
    in
    (* snapshot isolation: evaluate against a frozen revision, so
       concurrent writers on other connections never tear this answer *)
    let snap = Session.freeze session in
    let answers = Session.answer_at ?budget session prepared snap in
    if Prepared.arity prepared = 0 then
      [ Printf.sprintf "OK boolean=%b" (answers <> []) ]
    else
      Printf.sprintf "OK answers=%d" (List.length answers)
      :: List.map tuple_string answers
  | Protocol.Batch names ->
    let lookup name =
      match Session.find_prepared session name with
      | Some p -> (name, p)
      | None -> Error.internal "no prepared query named %S" name
    in
    (* resolve every name before evaluating anything, so an unknown name
       fails the whole request without spending evaluation budget *)
    let work = Array.of_list (List.map lookup names) in
    let n = Array.length work in
    (* one frozen revision for the whole batch: every query of the request
       sees the same data, whatever concurrent writers do *)
    let snap = Session.freeze session in
    let consistent = Session.consistent_at session snap in
    let abox = Session.snapshot_abox snap in
    (* one sub-allowance per query (the wall deadline stays shared), taken
       on the calling domain before any worker starts *)
    let budgets =
      Array.map (fun _ -> Option.map Budget.sub budget) work
    in
    let results = Array.make n [] in
    let failures = Array.make n None in
    (* Pool workers record into their domain-local shard (merged into the
       registry at the Pool barrier); the sequential path records into the
       registry target directly — there is no barrier to drain a shard. *)
    let eval_one ~observe ~shard i =
      let _, p = work.(i) in
      let t0 = Unix.gettimeofday () in
      results.(i) <-
        (if not consistent then Omq.all_tuples abox (Prepared.arity p)
         else
           Eval.answers ~observe ?budget:budgets.(i) (Prepared.rewriting p)
             abox);
      if Histogram.recording () then
        Histogram.record
          (if shard then Histogram.local ~scale:1e9 batch_query_latency
           else Histogram.registered ~scale:1e9 batch_query_latency)
          (Unix.gettimeofday () -. t0)
    in
    (match Session.pool session with
    | Some pool when Pool.jobs pool > 1 && not (Fault.armed ()) ->
      (* queries round-robin across workers; [observe:false] because the
         telemetry sink and fault registry are single-domain.  An armed
         fault plan forces the sequential path so activation counts stay
         deterministic. *)
      let jobs = Pool.jobs pool in
      Pool.run pool (fun w ->
          let i = ref w in
          while !i < n do
            (try eval_one ~observe:false ~shard:true !i
             with e -> failures.(!i) <- Some e);
            i := !i + jobs
          done);
      (* all queries ran to completion; report the first failure by batch
         position, matching the sequential path's first-error semantics *)
      Array.iter (function Some e -> raise e | None -> ()) failures
    | _ -> for i = 0 to n - 1 do eval_one ~observe:true ~shard:false i done);
    Printf.sprintf "OK batch=%d" n
    :: List.concat
         (List.mapi
            (fun i (name, p) ->
              let answers = results.(i) in
              if Prepared.arity p = 0 then
                [ Printf.sprintf "OK name=%s boolean=%b" name (answers <> []) ]
              else
                Printf.sprintf "OK name=%s answers=%d" name
                  (List.length answers)
                :: List.map tuple_string answers)
            (Array.to_list work))
  | Protocol.Assert_facts text ->
    (* parse outside the session lock; apply atomically, so a concurrent
       freeze sees all of this request's facts or none of them *)
    let facts = Abox.to_facts (Parse.data_of_string text) in
    (* the post-apply atom count comes from inside the mutation's lock
       scope, so it reports exactly this request's effect even with
       concurrent writers on other connections *)
    let added, atoms = Session.assert_facts session facts in
    [ Printf.sprintf "OK asserted added=%d atoms=%d" added atoms ]
  | Protocol.Retract_facts text ->
    let facts = Abox.to_facts (Parse.data_of_string text) in
    let removed, atoms = Session.retract_facts session facts in
    [ Printf.sprintf "OK retracted removed=%d atoms=%d" removed atoms ]
  | Protocol.Stats ->
    let stats = Session.stats session in
    Printf.sprintf "OK stats=%d" (List.length stats)
    :: List.map (fun (k, v) -> Printf.sprintf "%s %s" k v) stats
  | Protocol.Metrics ->
    (* stats rows (session + server hook) as counters/gauges, plus every
       registered histogram; the render is guarded by [obs.export] *)
    let text = Exposition.render (Session.stats session) in
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
    in
    Printf.sprintf "OK metrics=%d" (List.length lines) :: lines
  | Protocol.Ping ->
    [
      Printf.sprintf "OK pong rev=%d uptime=%.1f"
        (Abox.revision (Session.abox session))
        (Session.uptime session);
    ]
  | Protocol.Checkpoint -> (
    match !durability with
    | None ->
      Error.internal
        "no durability configured (start obda serve with --data-dir)"
    | Some wal ->
      let seq = checkpoint_now session wal in
      [ Printf.sprintf "OK checkpoint seq=%d" seq ])
  | Protocol.Quit -> [ "OK bye" ]

let protocol_error msg line =
  Error.Parse_error
    {
      loc = { file = None; line = 0; column = None };
      msg;
      source_line = Some line;
    }

(* Substring scan over a (short) response status line, for the cache
   hit/miss field of the access log. *)
let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  go 0

let cache_origin = function
  | first :: _ when contains_sub first "cache=hit" -> Some "hit"
  | first :: _ when contains_sub first "cache=miss" -> Some "miss"
  | _ -> None

let span_json (s : Obs.span) =
  Json.Assoc
    [
      ("name", Json.String s.name);
      ("depth", Json.Int s.depth);
      ("duration_ms", Json.Float (s.duration *. 1000.));
      ( "outcome",
        Json.String
          (match s.outcome with
          | Obs.Completed -> "ok"
          | Obs.Failed cls -> cls) );
    ]

(* One access-log line per parsed request; a request slower than
   [slow_ms] leaves a second ["slow"] line carrying its span tree. *)
let log_request ~id ~conn ~verb ~revision ~outcome ~duration ~lines ~spans =
  match !access_log with
  | None -> ()
  | Some { write; slow_ms } ->
    let duration_ms = duration *. 1000. in
    let access =
      Json.Assoc
        ([
           ("type", Json.String "access");
           ("id", Json.Int id);
           ("conn", Json.Int conn);
           ("verb", Json.String verb);
           ("revision", Json.Int revision);
           ("outcome", Json.String outcome);
           ("duration_ms", Json.Float duration_ms);
         ]
        @
        match cache_origin lines with
        | Some origin -> [ ("cache", Json.String origin) ]
        | None -> [])
    in
    let slow =
      match slow_ms with
      | Some threshold when duration_ms >= threshold ->
        [
          Json.Assoc
            [
              ("type", Json.String "slow");
              ("id", Json.Int id);
              ("duration_ms", Json.Float duration_ms);
              ("spans", Json.List (List.map span_json spans));
            ];
        ]
      | _ -> []
    in
    (* one lock per request keeps lines whole across connection domains *)
    Mutex.lock access_log_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock access_log_mutex)
      (fun () ->
        (* a dead log destination (ENOSPC, closed pipe) must never take a
           connection — or the server — down with it: count the failure
           and disable logging to that destination for good *)
        try List.iter (fun j -> write (Json.to_string j)) (access :: slow)
        with _ ->
          Atomic.incr access_log_errors;
          Obs.incr "serve.access_log.errors";
          access_log := None)

let record_histograms ~verb ~lines =
  if Histogram.recording () then begin
    (match lines with
    | first :: tuples when verb = "ANSWER" && not (contains_sub first "boolean=")
      ->
      Histogram.record h_answer_count (float_of_int (List.length tuples))
    | _ -> ());
    let bytes =
      List.fold_left (fun n l -> n + String.length l + 1) 0 lines
    in
    Histogram.record h_bytes_out (float_of_int bytes)
  end

(* Execute one input line.  Returns the response lines and whether the
   loop should stop.  Every parsed request gets a process-unique id
   (carried as the [request] span attribute and in the access log), runs
   under a fresh sub-budget of the session budget (own step/size
   allowance, shared wall deadline) and a [service.request] span, and is
   timed into the per-verb latency histograms; typed errors become
   in-protocol [ERR] lines, so a failed request — including a
   budget-exhausted one — leaves the session alive and usable.  [conn] is
   the server's connection id (0 for channel/script serving). *)
let handle_line ?budget ?(conn = 0) session line =
  match Protocol.parse line with
  | Ok None -> ([], false)
  | Error msg ->
    Session.count_request session;
    ([ "ERR " ^ Error.to_string (protocol_error msg line) ], false)
  | Ok (Some req) ->
    Session.count_request session;
    let stop = req = Protocol.Quit in
    let budget =
      match budget with
      | Some b -> b
      | None -> Budget.sub (Session.budget session)
    in
    let id = Atomic.fetch_and_add next_request_id 1 in
    let verb = Protocol.verb req in
    let run () =
      Error.protect (fun () ->
          Obs.with_span "service.request"
            ~attrs:[ ("verb", verb); ("request", string_of_int id) ]
            (fun () ->
              Fault.hit Fault.service_request;
              exec ~budget session req))
    in
    let slow_armed =
      match !access_log with
      | Some { slow_ms = Some _; _ } -> true
      | _ -> false
    in
    let t0 = Unix.gettimeofday () in
    (* With --slow-ms armed, route this request's spans to a private
       collector so a slow request can dump its tree.  The Obs slot is
       process-wide, so under concurrent connections the attribution is
       best-effort — same caveat as the rest of the span pillar. *)
    let result, spans =
      if slow_armed then
        let result, collector = Obs.collecting run in
        (result, Obs.Collector.spans collector)
      else (run (), [])
    in
    let duration = Unix.gettimeofday () -. t0 in
    let lines, outcome =
      match result with
      | Ok lines -> (lines, "ok")
      | Error e -> ([ "ERR " ^ Error.to_string e ], Error.class_name e)
    in
    (match latency_histogram verb with
    | Some h -> Histogram.record h duration
    | None -> ());
    record_histograms ~verb ~lines;
    log_request ~id ~conn ~verb
      ~revision:(Abox.revision (Session.abox session))
      ~outcome ~duration ~lines ~spans;
    (* a mutation just acknowledged may have tripped --checkpoint-every *)
    (match (result, verb) with
    | Ok _, ("ASSERT" | "RETRACT" | "LOAD") -> auto_checkpoint session
    | _ -> ());
    (lines, stop)

let run session ~input ~output =
  let rec loop () =
    match input () with
    | None -> ()
    | Some line ->
      let lines, stop = handle_line session line in
      List.iter output lines;
      if not stop then loop ()
  in
  loop ()

(* [In_channel.input_line] splits on ['\n'] only, so a CRLF client (or a
   CRLF [--script] fixture) would hand every request a trailing ['\r'];
   strip it at the read site, mirroring the data-format parsers. *)
let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let run_channels session ic oc =
  run session
    ~input:(fun () -> Option.map strip_cr (In_channel.input_line ic))
    ~output:(fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)
