(* Request execution and the serve loop. *)

module Omq = Obda_rewriting.Omq
module Tbox = Obda_ontology.Tbox
module Cq = Obda_cq.Cq
module Abox = Obda_data.Abox
module Ndl = Obda_ndl.Ndl
module Parse = Obda_parse.Parse
module Symbol = Obda_syntax.Symbol
module Eval = Obda_ndl.Eval
module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault
module Pool = Obda_runtime.Pool
module Obs = Obda_obs.Obs

let origin_string = function `Hit -> "hit" | `Miss -> "miss"

let tuple_string tuple =
  String.concat "," (List.map Symbol.name tuple)

let exec ?budget session (req : Protocol.request) =
  match req with
  | Protocol.Load_ontology file ->
    let tbox = Parse.ontology_of_file file in
    Session.load_ontology session tbox;
    [
      Format.asprintf "OK ontology axioms=%d depth=%a"
        (List.length (Tbox.axioms tbox))
        Tbox.pp_depth (Tbox.depth tbox);
    ]
  | Protocol.Load_data file ->
    let abox = Parse.data_of_file file in
    Session.load_data session abox;
    [
      Printf.sprintf "OK data atoms=%d individuals=%d"
        (Abox.num_atoms abox) (Abox.num_individuals abox);
    ]
  | Protocol.Prepare { name; algorithm; cq } ->
    let cq = Parse.query_of_string cq in
    let prepared, origin = Session.prepare ?budget session ~name ?algorithm cq in
    [
      Printf.sprintf "OK prepared name=%s algorithm=%s cache=%s clauses=%d digest=%s"
        name
        (Omq.algorithm_name (Prepared.algorithm prepared))
        (origin_string origin)
        (Ndl.num_clauses (Prepared.rewriting prepared))
        (Prepared.digest prepared);
    ]
  | Protocol.Answer name ->
    let prepared =
      match Session.find_prepared session name with
      | Some p -> p
      | None -> Error.internal "no prepared query named %S" name
    in
    (* snapshot isolation: evaluate against a frozen revision, so
       concurrent writers on other connections never tear this answer *)
    let snap = Session.freeze session in
    let answers = Session.answer_at ?budget session prepared snap in
    if Prepared.arity prepared = 0 then
      [ Printf.sprintf "OK boolean=%b" (answers <> []) ]
    else
      Printf.sprintf "OK answers=%d" (List.length answers)
      :: List.map tuple_string answers
  | Protocol.Batch names ->
    let lookup name =
      match Session.find_prepared session name with
      | Some p -> (name, p)
      | None -> Error.internal "no prepared query named %S" name
    in
    (* resolve every name before evaluating anything, so an unknown name
       fails the whole request without spending evaluation budget *)
    let work = Array.of_list (List.map lookup names) in
    let n = Array.length work in
    (* one frozen revision for the whole batch: every query of the request
       sees the same data, whatever concurrent writers do *)
    let snap = Session.freeze session in
    let consistent = Session.consistent_at session snap in
    let abox = Session.snapshot_abox snap in
    (* one sub-allowance per query (the wall deadline stays shared), taken
       on the calling domain before any worker starts *)
    let budgets =
      Array.map (fun _ -> Option.map Budget.sub budget) work
    in
    let results = Array.make n [] in
    let failures = Array.make n None in
    let eval_one ~observe i =
      let _, p = work.(i) in
      results.(i) <-
        (if not consistent then Omq.all_tuples abox (Prepared.arity p)
         else
           Eval.answers ~observe ?budget:budgets.(i) (Prepared.rewriting p)
             abox)
    in
    (match Session.pool session with
    | Some pool when Pool.jobs pool > 1 && not (Fault.armed ()) ->
      (* queries round-robin across workers; [observe:false] because the
         telemetry sink and fault registry are single-domain.  An armed
         fault plan forces the sequential path so activation counts stay
         deterministic. *)
      let jobs = Pool.jobs pool in
      Pool.run pool (fun w ->
          let i = ref w in
          while !i < n do
            (try eval_one ~observe:false !i
             with e -> failures.(!i) <- Some e);
            i := !i + jobs
          done);
      (* all queries ran to completion; report the first failure by batch
         position, matching the sequential path's first-error semantics *)
      Array.iter (function Some e -> raise e | None -> ()) failures
    | _ -> for i = 0 to n - 1 do eval_one ~observe:true i done);
    Printf.sprintf "OK batch=%d" n
    :: List.concat
         (List.mapi
            (fun i (name, p) ->
              let answers = results.(i) in
              if Prepared.arity p = 0 then
                [ Printf.sprintf "OK name=%s boolean=%b" name (answers <> []) ]
              else
                Printf.sprintf "OK name=%s answers=%d" name
                  (List.length answers)
                :: List.map tuple_string answers)
            (Array.to_list work))
  | Protocol.Assert_facts text ->
    (* parse outside the session lock; apply atomically, so a concurrent
       freeze sees all of this request's facts or none of them *)
    let facts = Abox.to_facts (Parse.data_of_string text) in
    (* the post-apply atom count comes from inside the mutation's lock
       scope, so it reports exactly this request's effect even with
       concurrent writers on other connections *)
    let added, atoms = Session.assert_facts session facts in
    [ Printf.sprintf "OK asserted added=%d atoms=%d" added atoms ]
  | Protocol.Retract_facts text ->
    let facts = Abox.to_facts (Parse.data_of_string text) in
    let removed, atoms = Session.retract_facts session facts in
    [ Printf.sprintf "OK retracted removed=%d atoms=%d" removed atoms ]
  | Protocol.Stats ->
    let stats = Session.stats session in
    Printf.sprintf "OK stats=%d" (List.length stats)
    :: List.map (fun (k, v) -> Printf.sprintf "%s %s" k v) stats
  | Protocol.Quit -> [ "OK bye" ]

let protocol_error msg line =
  Error.Parse_error
    {
      loc = { file = None; line = 0; column = None };
      msg;
      source_line = Some line;
    }

(* Execute one input line.  Returns the response lines and whether the
   loop should stop.  Every parsed request runs under a fresh sub-budget
   of the session budget (own step/size allowance, shared wall deadline)
   and a [service.request] span; typed errors become in-protocol [ERR]
   lines, so a failed request — including a budget-exhausted one — leaves
   the session alive and usable. *)
let handle_line ?budget session line =
  match Protocol.parse line with
  | Ok None -> ([], false)
  | Error msg ->
    Session.count_request session;
    ([ "ERR " ^ Error.to_string (protocol_error msg line) ], false)
  | Ok (Some req) ->
    Session.count_request session;
    let stop = req = Protocol.Quit in
    let budget =
      match budget with
      | Some b -> b
      | None -> Budget.sub (Session.budget session)
    in
    (match
       Error.protect (fun () ->
           Obs.with_span "service.request"
             ~attrs:[ ("verb", Protocol.verb req) ]
             (fun () ->
               Fault.hit Fault.service_request;
               exec ~budget session req))
     with
    | Ok lines -> (lines, stop)
    | Error e -> ([ "ERR " ^ Error.to_string e ], stop))

let run session ~input ~output =
  let rec loop () =
    match input () with
    | None -> ()
    | Some line ->
      let lines, stop = handle_line session line in
      List.iter output lines;
      if not stop then loop ()
  in
  loop ()

(* [In_channel.input_line] splits on ['\n'] only, so a CRLF client (or a
   CRLF [--script] fixture) would hand every request a trailing ['\r'];
   strip it at the read site, mirroring the data-format parsers. *)
let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let run_channels session ic oc =
  run session
    ~input:(fun () -> Option.map strip_cr (In_channel.input_line ic))
    ~output:(fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)
