(* Content-addressed LRU cache for NDL rewritings. *)

module Ndl = Obda_ndl.Ndl
module Fault = Obda_runtime.Fault
module Obs = Obda_obs.Obs

type entry = {
  key : string;
  query : Ndl.query;
  weight : int;
  mutable prev : entry option;  (* towards the MRU end *)
  mutable next : entry option;  (* towards the LRU end *)
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  max_entries : int option;
  max_weight : int option;
  mutable weight : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable relinks : int;
      (* recency-list splices performed by [touch]; a hit on the entry
         already at the MRU position must not relink (the fast path) *)
}

let create ?max_entries ?max_weight () =
  let check name = function
    | Some n when n < 1 ->
      invalid_arg (Printf.sprintf "Cache.create: %s must be >= 1" name)
    | _ -> ()
  in
  check "max_entries" max_entries;
  check "max_weight" max_weight;
  {
    tbl = Hashtbl.create 64;
    mru = None;
    lru = None;
    max_entries;
    max_weight;
    weight = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    relinks = 0;
  }

let length t = Hashtbl.length t.tbl
let weight t = t.weight
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let relinks t = t.relinks
let mem t key = Hashtbl.mem t.tbl key

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

(* [t.mru != Some e] would compare against a freshly boxed [Some], which is
   physically unequal every time — the fast path would never fire.  Match
   and compare the entries themselves. *)
let touch t e =
  match t.mru with
  | Some m when m == e -> ()
  | _ ->
    unlink t e;
    push_front t e;
    t.relinks <- t.relinks + 1

let over_bounds t =
  (match t.max_entries with
  | Some n -> Hashtbl.length t.tbl > n
  | None -> false)
  || match t.max_weight with Some w -> t.weight > w | None -> false

(* Evict from the LRU end until within bounds.  The freshly inserted entry
   is never evicted, so a single oversized rewriting still gets cached (and
   will be the first to go when the next insertion arrives). *)
let rec evict_over_bounds t ~keep =
  if over_bounds t then
    match t.lru with
    | Some e when e != keep ->
      unlink t e;
      Hashtbl.remove t.tbl e.key;
      t.weight <- t.weight - e.weight;
      t.evictions <- t.evictions + 1;
      Obs.incr "service.cache.evict";
      evict_over_bounds t ~keep
    | _ -> ()

let find_or_add t ~key build =
  Fault.hit Fault.service_cache;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.hits <- t.hits + 1;
    Obs.incr "service.cache.hit";
    touch t e;
    (e.query, `Hit)
  | None ->
    (* count the miss only once [build] has succeeded: a failed build adds
       no entry, so it must not skew the hit rate or the telemetry *)
    let query = build () in
    t.misses <- t.misses + 1;
    Obs.incr "service.cache.miss";
    let e = { key; query; weight = Ndl.size query; prev = None; next = None } in
    Hashtbl.replace t.tbl key e;
    push_front t e;
    t.weight <- t.weight + e.weight;
    evict_over_bounds t ~keep:e;
    (query, `Miss)

let keys_mru_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some e -> go (e.key :: acc) e.next
  in
  go [] t.mru
