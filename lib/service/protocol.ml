(* The newline-delimited request language of [obda serve]. *)

module Omq = Obda_rewriting.Omq

type request =
  | Load_ontology of string
  | Load_data of string
  | Prepare of { name : string; algorithm : Omq.algorithm option; cq : string }
  | Answer of string
  | Batch of string list
  | Assert_facts of string
  | Retract_facts of string
  | Stats
  | Metrics
  | Ping
  | Checkpoint
  | Quit

let verb = function
  | Load_ontology _ | Load_data _ -> "LOAD"
  | Prepare _ -> "PREPARE"
  | Answer _ -> "ANSWER"
  | Batch _ -> "BATCH"
  | Assert_facts _ -> "ASSERT"
  | Retract_facts _ -> "RETRACT"
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Ping -> "PING"
  | Checkpoint -> "CHECKPOINT"
  | Quit -> "QUIT"

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim s = String.trim s

(* First whitespace-delimited token and the (trimmed) remainder. *)
let split_word s =
  let n = String.length s in
  let rec word i = if i < n && not (is_space s.[i]) then word (i + 1) else i in
  let stop = word 0 in
  let token = String.sub s 0 stop in
  let rest = trim (String.sub s stop (n - stop)) in
  (token, rest)

let keyword_is k token = String.uppercase_ascii token = k

let parse line =
  let line = trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let verb, rest = split_word line in
    match String.uppercase_ascii verb with
    | "LOAD" ->
      let kind, path = split_word rest in
      if path = "" then Error "LOAD needs a kind (ONTOLOGY|DATA) and a file"
      else if keyword_is "ONTOLOGY" kind then Ok (Some (Load_ontology path))
      else if keyword_is "DATA" kind then Ok (Some (Load_data path))
      else Error (Printf.sprintf "LOAD kind must be ONTOLOGY or DATA, got %S" kind)
    | "PREPARE" ->
      let name, rest = split_word rest in
      if name = "" || rest = "" then
        Error "PREPARE needs a name and a query, e.g. PREPARE q1 q(x) <- A(x)"
      else
        let maybe_alg, after_alg = split_word rest in
        if keyword_is "ALG" maybe_alg then
          let alg, cq = split_word after_alg in
          match Omq.algorithm_of_string alg with
          | None -> Error (Printf.sprintf "unknown algorithm %S" alg)
          | Some _ when cq = "" -> Error "PREPARE needs a query after ALG <alg>"
          | Some a -> Ok (Some (Prepare { name; algorithm = Some a; cq }))
        else Ok (Some (Prepare { name; algorithm = None; cq = rest }))
    | "ANSWER" ->
      let name, extra = split_word rest in
      if name = "" then Error "ANSWER needs a prepared query name"
      else if extra <> "" then
        Error (Printf.sprintf "ANSWER takes a single name, got extra %S" extra)
      else Ok (Some (Answer name))
    | "BATCH" ->
      if rest = "" then
        Error "BATCH needs one or more prepared query names"
      else
        let rec names acc s =
          let name, rest = split_word s in
          if name = "" then List.rev acc else names (name :: acc) rest
        in
        Ok (Some (Batch (names [] rest)))
    | "ASSERT" ->
      if rest = "" then Error "ASSERT needs at least one fact, e.g. ASSERT A(a)"
      else Ok (Some (Assert_facts rest))
    | "RETRACT" ->
      if rest = "" then Error "RETRACT needs at least one fact"
      else Ok (Some (Retract_facts rest))
    | "STATS" ->
      if rest <> "" then Error "STATS takes no arguments" else Ok (Some Stats)
    | "METRICS" ->
      if rest <> "" then Error "METRICS takes no arguments"
      else Ok (Some Metrics)
    | "PING" ->
      if rest <> "" then Error "PING takes no arguments" else Ok (Some Ping)
    | "CHECKPOINT" ->
      if rest <> "" then Error "CHECKPOINT takes no arguments"
      else Ok (Some Checkpoint)
    | "QUIT" | "EXIT" ->
      if rest <> "" then Error "QUIT takes no arguments" else Ok (Some Quit)
    | v -> Error (Printf.sprintf "unknown verb %S" v)
