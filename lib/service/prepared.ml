(* A named OMQ, parsed/classified/rewritten once at PREPARE time. *)

module Omq = Obda_rewriting.Omq
module Tbox = Obda_ontology.Tbox
module Cq = Obda_cq.Cq
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval
module Error = Obda_runtime.Error

type t = {
  name : string;
  omq : Omq.t;
  algorithm : Omq.algorithm;
  digest : string;
  rewriting : Ndl.query;
  classification : Omq.classification;
  plan : Eval.plan_cache;
      (* per-prepared-query evaluation plans: the rewriting object is
         stable across ANSWER calls, so plans survive until the store
         drifts past the evaluator's replan threshold *)
}

let name p = p.name
let omq p = p.omq
let algorithm p = p.algorithm
let digest p = p.digest
let rewriting p = p.rewriting
let classification p = p.classification
let plan p = p.plan
let arity p = List.length (Cq.answer_vars p.omq.cq)

let prepare ?budget ~cache ~name ?algorithm tbox cq =
  let omq = Omq.make tbox cq in
  let algorithm =
    match algorithm with Some a -> a | None -> Omq.default_algorithm omq
  in
  if not (Omq.applicable algorithm omq) then
    Error.not_applicable
      ~algorithm:(Omq.algorithm_name algorithm)
      "side conditions fail for this OMQ";
  let digest = Omq.digest ~over:`Arbitrary algorithm omq in
  let rewriting, origin =
    Cache.find_or_add cache ~key:digest (fun () ->
        Omq.rewrite ?budget ~over:`Arbitrary algorithm omq)
  in
  let prepared =
    {
      name;
      omq;
      algorithm;
      digest;
      rewriting;
      classification = Omq.classify omq;
      plan = Eval.plan_cache ();
    }
  in
  (prepared, origin)
