(* A small blocking client for the newline protocol: connect, send one
   request line, read the complete (possibly multi-line) response.  Used by
   [obda client], the load generator and the tests. *)

module Error = Obda_runtime.Error

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable at_eof : bool;
}

let connect_once address =
  let fd =
    match (address : Server.address) with
    | Server.Unix_socket path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
    | Server.Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         let addr =
           try Unix.inet_addr_of_string host
           with _ -> (
             match Unix.gethostbyname host with
             | { Unix.h_addr_list = [||]; _ } ->
               Error.internal "cannot resolve host %S" host
             | { Unix.h_addr_list; _ } -> h_addr_list.(0))
         in
         Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
  in
  { fd; buf = Buffer.create 256; chunk = Bytes.create 4096; at_eof = false }

(* "Not there yet" — the two errors a just-started server produces while
   its socket is still being bound: connection refused (TCP, or a Unix
   socket file that exists but nobody listens on) and a missing socket
   path.  Anything else (EACCES, unresolvable host...) is a real error
   and retrying would only hide it. *)
let transient = function
  | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> true
  | _ -> false

let connect ?(retries = 0) address =
  (* Exponential backoff from 50 ms, doubling to a 2 s cap, with up to
     25% jitter so a fleet of pollers does not reconverge in lockstep.
     The jitter source is the clock's sub-millisecond residue — no need
     to disturb the global [Random] state for this. *)
  let rec go attempt delay =
    match connect_once address with
    | t -> t
    | exception e when transient e && attempt < retries ->
      let jitter = delay *. 0.25 *. Float.rem (Unix.gettimeofday () *. 997.) 1.0 in
      Unix.sleepf (delay +. jitter);
      go (attempt + 1) (Float.min (delay *. 2.) 2.0)
  in
  go 0 0.05

let close t = try Unix.close t.fd with _ -> ()

let send t line =
  let s = line ^ "\n" in
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write t.fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let extract_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear t.buf;
    Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
    Some (strip_cr (String.sub s 0 i))

let read_line t =
  let rec loop () =
    match extract_line t with
    | Some line -> Some line
    | None ->
      if t.at_eof then
        if Buffer.length t.buf > 0 then begin
          let line = strip_cr (Buffer.contents t.buf) in
          Buffer.clear t.buf;
          Some line
        end
        else None
      else begin
        (match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 -> t.at_eof <- true
        | n -> Buffer.add_subbytes t.buf t.chunk 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      end
  in
  loop ()

(* [key=N] field of a status line, if present. *)
let int_field line key =
  let prefix = key ^ "=" in
  String.split_on_char ' ' line
  |> List.find_map (fun tok ->
         if String.starts_with ~prefix tok then
           int_of_string_opt
             (String.sub tok (String.length prefix)
                (String.length tok - String.length prefix))
         else None)

let read_extra t n acc =
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match read_line t with
      | None -> List.rev acc (* truncated response: return what we have *)
      | Some line -> go (n - 1) (line :: acc)
  in
  go n acc

(* The payload length announced by a status line: [OK answers=N],
   [OK stats=N] and [OK metrics=N] are all followed by N lines. *)
let announced_lines first =
  List.find_map
    (fun key ->
      if String.starts_with ~prefix:("OK " ^ key ^ "=") first then
        int_field first key
      else None)
    [ "answers"; "stats"; "metrics" ]

(* Read one complete response.  Payload length is announced by the status
   line: [OK answers=N], [OK stats=N] and [OK metrics=N] are followed by
   N lines; [OK batch=K] by K per-query headers, each [OK name=...
   answers=N] header by its own N tuple lines.  Everything else is a
   single line. *)
let read_response t =
  match read_line t with
  | None -> []
  | Some first ->
    let payload =
      match announced_lines first with
      | Some n -> read_extra t n []
      | None ->
      if String.starts_with ~prefix:"OK batch=" first then
        match int_field first "batch" with
        | None -> []
        | Some k ->
          let rec queries k acc =
            if k = 0 then List.rev acc
            else
              match read_line t with
              | None -> List.rev acc
              | Some header ->
                let tuples =
                  match int_field header "answers" with
                  | Some n -> read_extra t n []
                  | None -> []
                in
                queries (k - 1) (List.rev_append (header :: tuples) acc)
          in
          queries k []
      else []
    in
    first :: payload

let request t line =
  send t line;
  read_response t
