(** The serve loop: execute {!Protocol} requests against a {!Session}.

    Responses are newline-delimited: every request yields one [OK ...]
    status line (possibly followed by payload lines — answer tuples,
    stats) or a single [ERR class=... ...] line rendering the typed error
    that aborted it.  Errors are in-protocol: a failed request, including
    a budget-exhausted one, leaves the session alive. *)

val exec :
  ?budget:Obda_runtime.Budget.t ->
  Session.t -> Protocol.request -> string list
(** Execute one request, returning its response lines.  Raises
    [Obda_error] on failure (parse errors in payloads, unknown prepared
    names, budget exhaustion, inapplicable algorithms...).

    [ANSWER] and [BATCH] evaluate against a {!Session.freeze} snapshot —
    one frozen ABox revision per request — so concurrent [ASSERT]/
    [RETRACT]/[LOAD] traffic on other connections can never tear an
    answer set.  [ASSERT]/[RETRACT] apply all facts of the request
    atomically under the session lock.

    [BATCH] answers several prepared queries in one request — concurrently
    on the session pool when the session has [jobs > 1] (each query under
    its own [Budget.sub] of the request budget; an armed fault plan forces
    the sequential path so activation counts stay deterministic).  Every
    name is resolved before anything is evaluated, the response interleaves
    one [OK name=... answers=N] (or [boolean=...]) header with its tuples
    per query in request order, and the first failing query (by batch
    position) fails the whole request.  Responses are byte-identical for
    any [jobs]. *)

val handle_line :
  ?budget:Obda_runtime.Budget.t ->
  ?conn:int -> Session.t -> string -> string list * bool
(** Parse and execute one input line under a [service.request] telemetry
    span (with [verb] and monotonically assigned [request] id attributes),
    mapping errors to [ERR] lines.  The request budget defaults to a fresh
    {!Obda_runtime.Budget.sub} of the session budget; the network server
    passes one with a per-request wall deadline instead, plus its
    connection id as [conn] (0 otherwise — it tags access-log lines).
    When {!Obda_obs.Histogram.recording} is armed, the request is timed
    into the per-verb registry histograms ([serve.answer.latency],
    [serve.batch.latency], [serve.mutate.latency]) along with
    [serve.answer.count] and [serve.response.bytes]; [BATCH] additionally
    times each query into [serve.batch.query.latency] (via per-worker
    domain shards on the pooled path).  The boolean is [true] when the
    loop should stop ([QUIT]).  Blank and comment lines yield no
    response. *)

(** {1 Access log} *)

val set_access_log : ?slow_ms:float -> (string -> unit) -> unit
(** Enable the structured access log: one JSON line per parsed request is
    passed (without trailing newline) to the writer —
    [{"type":"access","id":...,"conn":...,"verb":"ANSWER","revision":...,
    "outcome":"ok","duration_ms":...,"cache":"hit"}] ([outcome] is the
    error class for failed requests; [cache] appears on [PREPARE]
    responses).  With [slow_ms], a request at least that slow writes a
    second [{"type":"slow",...}] line carrying its collected span tree;
    while armed, request spans are routed to the slow-query collector
    rather than any installed telemetry sink.  Writes are serialised under
    an internal mutex, so concurrent connections never interleave lines.
    Process-wide; last call wins. *)

val clear_access_log : unit -> unit

val access_log_error_count : unit -> int
(** Write failures absorbed so far (process-wide).  A failed write — full
    disk, closed pipe — increments this and the [serve.access_log.errors]
    counter and disables the access log; it never fails the request, the
    connection or the server. *)

(** {1 Durability} *)

val attach_wal : Session.t -> Wal.t -> unit
(** Arm durability: install the session's WAL hook (every effective
    mutation is appended — under the session lock, before its [OK] — and
    the [server.wal.*] STATS rows appear) and register the log as the
    target of the [CHECKPOINT] verb and the [--checkpoint-every] trigger.
    Call {e after} restoring recovered state into the session.
    Process-wide; last call wins. *)

val detach_wal : Session.t -> unit

val checkpoint_now : Session.t -> Wal.t -> int
(** Capture the session state under its lock and write a checkpoint
    ({!Wal.checkpoint}); returns the covered sequence number. *)

val run :
  Session.t ->
  input:(unit -> string option) ->
  output:(string -> unit) -> unit
(** Drive {!handle_line} until [input] returns [None] or a [QUIT] is
    executed. *)

val run_channels : Session.t -> in_channel -> out_channel -> unit
(** {!run} over channels, flushing after every response line — the
    engine of [obda serve].  A trailing ['\r'] is stripped from every
    input line, so CRLF clients and CRLF script fixtures are accepted. *)
