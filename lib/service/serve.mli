(** The serve loop: execute {!Protocol} requests against a {!Session}.

    Responses are newline-delimited: every request yields one [OK ...]
    status line (possibly followed by payload lines — answer tuples,
    stats) or a single [ERR class=... ...] line rendering the typed error
    that aborted it.  Errors are in-protocol: a failed request, including
    a budget-exhausted one, leaves the session alive. *)

val exec :
  ?budget:Obda_runtime.Budget.t ->
  Session.t -> Protocol.request -> string list
(** Execute one request, returning its response lines.  Raises
    [Obda_error] on failure (parse errors in payloads, unknown prepared
    names, budget exhaustion, inapplicable algorithms...).

    [ANSWER] and [BATCH] evaluate against a {!Session.freeze} snapshot —
    one frozen ABox revision per request — so concurrent [ASSERT]/
    [RETRACT]/[LOAD] traffic on other connections can never tear an
    answer set.  [ASSERT]/[RETRACT] apply all facts of the request
    atomically under the session lock.

    [BATCH] answers several prepared queries in one request — concurrently
    on the session pool when the session has [jobs > 1] (each query under
    its own [Budget.sub] of the request budget; an armed fault plan forces
    the sequential path so activation counts stay deterministic).  Every
    name is resolved before anything is evaluated, the response interleaves
    one [OK name=... answers=N] (or [boolean=...]) header with its tuples
    per query in request order, and the first failing query (by batch
    position) fails the whole request.  Responses are byte-identical for
    any [jobs]. *)

val handle_line :
  ?budget:Obda_runtime.Budget.t -> Session.t -> string -> string list * bool
(** Parse and execute one input line under a [service.request] telemetry
    span (with a [verb] attribute), mapping errors to [ERR] lines.  The
    request budget defaults to a fresh {!Obda_runtime.Budget.sub} of the
    session budget; the network server passes one with a per-request wall
    deadline instead.  The boolean is [true] when the loop should stop
    ([QUIT]).  Blank and comment lines yield no response. *)

val run :
  Session.t ->
  input:(unit -> string option) ->
  output:(string -> unit) -> unit
(** Drive {!handle_line} until [input] returns [None] or a [QUIT] is
    executed. *)

val run_channels : Session.t -> in_channel -> out_channel -> unit
(** {!run} over channels, flushing after every response line — the
    engine of [obda serve].  A trailing ['\r'] is stripped from every
    input line, so CRLF clients and CRLF script fixtures are accepted. *)
