module Error = Obda_runtime.Error
module Fault = Obda_runtime.Fault

type value = Int of int | Float of float
type outcome = Completed | Failed of string

type span = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  attrs : (string * string) list;
  start : float;
  duration : float;
  outcome : outcome;
}

type kind = Counter | Gauge

type sink = {
  on_span : span -> unit;
  on_metric : kind -> string -> value -> unit;
  on_flush : unit -> unit;
}

type open_span = {
  oid : int;
  oparent : int option;
  odepth : int;
  oname : string;
  oattrs : (string * string) list;
  ostart : float;  (* absolute *)
}

type state = {
  sink : sink;
  t0 : float;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, value) Hashtbl.t;
  mutable stack : open_span list;
  mutable next_id : int;
}

(* The single telemetry slot.  [None] is the fast path: every recording
   entry point starts with one load and branch on this reference.  The
   enabled path is guarded by [lock]: the network server records spans and
   counters from several domains at once, and serialising the bookkeeping
   (and the sink writes, which become line-atomic) is what keeps the
   single-slot design safe there.  Under concurrency the span stack is
   global, so parent attribution across simultaneous connections is
   approximate — every span is still emitted exactly once with correct
   timing. *)
let current : state option ref = ref None
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let enabled () = !current <> None
let now () = Unix.gettimeofday ()

let install sink =
  locked (fun () ->
      current :=
        Some
          {
            sink;
            t0 = now ();
            counters = Hashtbl.create 32;
            gauges = Hashtbl.create 32;
            stack = [];
            next_id = 0;
          })

let flush () =
  match !current with
  | None -> ()
  | Some _ ->
    locked (fun () ->
        match !current with
        | None -> ()
        | Some st ->
          let items =
            Hashtbl.fold
              (fun k r acc -> (k, Counter, Int !r) :: acc)
              st.counters []
          in
          let items =
            Hashtbl.fold (fun k v acc -> (k, Gauge, v) :: acc) st.gauges items
          in
          List.iter
            (fun (k, kind, v) -> st.sink.on_metric kind k v)
            (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) items);
          st.sink.on_flush ())

let uninstall () =
  match !current with
  | None -> ()
  | Some _ ->
    flush ();
    current := None

(* ------------------------------------------------------------------ *)
(* Recording *)

let outcome_of_exn exn =
  match Error.of_exn exn with
  | Some e -> Failed (Error.class_name e)
  | None -> Failed "exception"

let with_span ?(attrs = []) name f =
  match !current with
  | None -> f ()
  | Some st ->
    let o, id, parent, depth =
      locked (fun () ->
          let id = st.next_id in
          st.next_id <- id + 1;
          let parent, depth =
            match st.stack with
            | [] -> (None, 0)
            | o :: _ -> (Some o.oid, o.odepth + 1)
          in
          let o =
            { oid = id; oparent = parent; odepth = depth; oname = name;
              oattrs = attrs; ostart = now () }
          in
          st.stack <- o :: st.stack;
          (o, id, parent, depth))
    in
    let close outcome =
      locked (fun () ->
          (* pop to (and including) this span, tolerating unbalanced inner
             spans left open by a non-local exit *)
          (match !current with
          | Some st' when st' == st ->
            let rec pop = function
              | top :: rest ->
                if top.oid = id then st.stack <- rest
                else pop rest
              | [] -> st.stack <- []
            in
            pop st.stack
          | _ -> ());
          let t1 = now () in
          st.sink.on_span
            {
              id;
              parent;
              depth;
              name;
              attrs;
              start = o.ostart -. st.t0;
              duration = t1 -. o.ostart;
              outcome;
            })
    in
    (match f () with
    | v ->
      close Completed;
      v
    | exception exn ->
      close (outcome_of_exn exn);
      raise exn)

let count name by =
  match !current with
  | None -> ()
  | Some st ->
    locked (fun () ->
        match Hashtbl.find_opt st.counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.add st.counters name (ref by))

let incr name = count name 1

let set_int name v =
  match !current with
  | None -> ()
  | Some st -> locked (fun () -> Hashtbl.replace st.gauges name (Int v))

let set_float name v =
  match !current with
  | None -> ()
  | Some st -> locked (fun () -> Hashtbl.replace st.gauges name (Float v))

let counter_value name =
  match !current with
  | None -> 0
  | Some st ->
    locked (fun () ->
        match Hashtbl.find_opt st.counters name with Some r -> !r | None -> 0)

let gauge_value name =
  match !current with
  | None -> None
  | Some st -> locked (fun () -> Hashtbl.find_opt st.gauges name)

(* ------------------------------------------------------------------ *)
(* Sinks *)

let null_sink =
  { on_span = (fun _ -> ()); on_metric = (fun _ _ _ -> ()); on_flush = ignore }

let tee sinks =
  {
    on_span = (fun s -> List.iter (fun k -> k.on_span s) sinks);
    on_metric =
      (fun kind name v -> List.iter (fun k -> k.on_metric kind name v) sinks);
    on_flush = (fun () -> List.iter (fun k -> k.on_flush ()) sinks);
  }

let ms seconds = Float (seconds *. 1000.)

let json_of_value = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f

let json_sink ?(spans = true) ?(metrics = true) write =
  (* every line of a JSON sink is one guarded trace-sink write *)
  let write line =
    Fault.hit Fault.obs_sink_write;
    write line
  in
  let on_span sp =
    if spans then
      let outcome_fields =
        match sp.outcome with
        | Completed -> [ ("outcome", Json.String "ok") ]
        | Failed cls ->
          [ ("outcome", Json.String "error"); ("error_class", Json.String cls) ]
      in
      let fields =
        [
          ("type", Json.String "span");
          ("id", Json.Int sp.id);
        ]
        @ (match sp.parent with
          | Some p -> [ ("parent", Json.Int p) ]
          | None -> [])
        @ [
            ("depth", Json.Int sp.depth);
            ("name", Json.String sp.name);
          ]
        @ (match sp.attrs with
          | [] -> []
          | attrs ->
            [
              ( "attrs",
                Json.Assoc (List.map (fun (k, v) -> (k, Json.String v)) attrs)
              );
            ])
        @ [
            ("start_ms", json_of_value (ms sp.start));
            ("duration_ms", json_of_value (ms sp.duration));
          ]
        @ outcome_fields
      in
      write (Json.to_string (Json.Assoc fields))
  in
  let on_metric kind name v =
    if metrics then
      write
        (Json.to_string
           (Json.Assoc
              [
                ("type", Json.String "metric");
                ( "kind",
                  Json.String
                    (match kind with Counter -> "counter" | Gauge -> "gauge") );
                ("name", Json.String name);
                ("value", json_of_value v);
              ]))
  in
  { on_span; on_metric; on_flush = ignore }

module Collector = struct
  type t = {
    mutable cspans : span list;  (* reverse completion order *)
    ccounters : (string, int) Hashtbl.t;
    cgauges : (string, value) Hashtbl.t;
  }

  let create () =
    { cspans = []; ccounters = Hashtbl.create 16; cgauges = Hashtbl.create 16 }

  let sink c =
    {
      on_span = (fun s -> c.cspans <- s :: c.cspans);
      on_metric =
        (fun kind name v ->
          match (kind, v) with
          | Counter, Int n -> Hashtbl.replace c.ccounters name n
          | Counter, Float _ -> ()  (* counters are always integral *)
          | Gauge, v -> Hashtbl.replace c.cgauges name v);
      on_flush = ignore;
    }

  let spans c = List.rev c.cspans

  let counter c name =
    Option.value ~default:0 (Hashtbl.find_opt c.ccounters name)

  let gauge c name = Hashtbl.find_opt c.cgauges name

  let gauge_int c name =
    match gauge c name with
    | Some (Int n) -> Some n
    | Some (Float _) | None -> None

  let gauge_float c name =
    match gauge c name with
    | Some (Float f) -> Some f
    | Some (Int n) -> Some (float_of_int n)
    | None -> None

  let metrics c =
    let items =
      Hashtbl.fold (fun k n acc -> (k, Counter, Int n) :: acc) c.ccounters []
    in
    let items =
      Hashtbl.fold (fun k v acc -> (k, Gauge, v) :: acc) c.cgauges items
    in
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) items

  let value_to_string = function
    | Int n -> string_of_int n
    | Float f -> Printf.sprintf "%.2f" f

  let pp ppf c =
    (* start order = id order; render the tree by nesting depth *)
    let by_start =
      List.sort (fun a b -> Int.compare a.id b.id) (spans c)
    in
    if by_start <> [] then begin
      Format.fprintf ppf "spans:@.";
      List.iter
        (fun sp ->
          let label =
            match sp.attrs with
            | [] -> sp.name
            | attrs ->
              sp.name ^ " "
              ^ String.concat " "
                  (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
          in
          Format.fprintf ppf "  %s%-*s %8.2fms  %s@."
            (String.make (2 * sp.depth) ' ')
            (max 1 (40 - (2 * sp.depth)))
            label
            (sp.duration *. 1000.)
            (match sp.outcome with
            | Completed -> "ok"
            | Failed cls -> "error:" ^ cls))
        by_start
    end;
    let ms = metrics c in
    if ms <> [] then begin
      Format.fprintf ppf "metrics:@.";
      List.iter
        (fun (name, kind, v) ->
          Format.fprintf ppf "  %-40s %10s  (%s)@." name (value_to_string v)
            (match kind with Counter -> "counter" | Gauge -> "gauge"))
        ms
    end
end

let collecting f =
  let saved = !current in
  let c = Collector.create () in
  install (Collector.sink c);
  let restore () =
    flush ();
    current := saved
  in
  match f () with
  | v ->
    restore ();
    (v, c)
  | exception exn ->
    restore ();
    raise exn
