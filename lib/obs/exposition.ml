(* Prometheus-style text exposition of the running service.

   One render = the caller's stats rows (counters and gauges) followed by
   every histogram in the process-wide registry, as the standard
   line-oriented format:

     # TYPE obda_requests counter
     obda_requests 42
     # TYPE obda_serve_answer_latency histogram
     obda_serve_answer_latency_bucket{le="0.000244141"} 3
     obda_serve_answer_latency_bucket{le="+Inf"} 17
     obda_serve_answer_latency_sum 0.0123
     obda_serve_answer_latency_count 17

   Buckets are cumulative and only the non-empty ones are written (plus
   the mandatory +Inf line), so a render stays small even though each
   histogram has hundreds of buckets.  Latency histograms record seconds.

   The render is guarded by the [obs.export] fault site: an injected
   fault surfaces as the in-protocol ERR of the METRICS request, leaving
   the session and connection usable — the chaos suite proves it. *)

module Fault = Obda_runtime.Fault

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "obda_" ^ Bytes.to_string b

(* Stats rows whose value only ever increases — everything else is a
   gauge. *)
let counter_rows =
  [
    "requests"; "cache.hits"; "cache.misses"; "cache.evictions";
    "server.connections.accepted"; "server.connections.shed";
    "server.requests.served"; "server.requests.shed";
  ]

let row_kind key = if List.mem key counter_rows then "counter" else "gauge"

(* ["lo-hi"] span rows (the snapshot revision span) become two samples. *)
let span_value v =
  match String.index_opt v '-' with
  | Some i when i > 0 -> (
    match
      ( int_of_string_opt (String.sub v 0 i),
        int_of_string_opt (String.sub v (i + 1) (String.length v - i - 1)) )
    with
    | Some lo, Some hi -> Some (lo, hi)
    | _ -> None)
  | _ -> None

(* A stats row as exposition samples: numbers pass through, yes/no become
   1/0, span rows split into _lo/_hi, anything else ("unknown", "-") is
   unrepresentable and skipped. *)
let row_samples (key, value) =
  let name = sanitize key in
  let sample v = [ (row_kind key, name, v) ] in
  match float_of_string_opt value with
  | Some v -> sample v
  | None -> (
    match String.lowercase_ascii value with
    | "yes" | "true" -> sample 1.
    | "no" | "false" -> sample 0.
    | _ -> (
      match span_value value with
      | Some (lo, hi) ->
        [
          ("gauge", name ^ "_lo", float_of_int lo);
          ("gauge", name ^ "_hi", float_of_int hi);
        ]
      | None -> []))

let add_histogram buf (s : Histogram.snapshot) =
  let name = sanitize s.sname in
  Printf.bprintf buf "# TYPE %s histogram\n" name;
  let cumulative = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 && i < Histogram.buckets - 1 then begin
        cumulative := !cumulative + n;
        Printf.bprintf buf "%s_bucket{le=\"%.9g\"} %d\n" name
          (Histogram.bucket_upper i) !cumulative
      end)
    s.scounts;
  Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" name s.total;
  Printf.bprintf buf "%s_sum %.9g\n" name s.sum;
  Printf.bprintf buf "%s_count %d\n" name s.total

let render rows =
  Fault.hit Fault.obs_export;
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      List.iter
        (fun (kind, name, v) ->
          Printf.bprintf buf "# TYPE %s %s\n" name kind;
          Printf.bprintf buf "%s %.9g\n" name v)
        (row_samples row))
    rows;
  List.iter (add_histogram buf) (Histogram.snapshots ());
  Buffer.contents buf
