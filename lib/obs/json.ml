type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        print_to buf item)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        print_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  print_to buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_failure of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_failure (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "malformed \\u escape"
  in
  (* encode a code point as UTF-8 (surrogate pairs are combined by the caller) *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          let cp = hex4 () in
          let cp =
            (* combine a high surrogate with the following low surrogate *)
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
               && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              else fail "unpaired surrogate"
            end
            else cp
          in
          add_utf8 buf cp
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let repr = String.sub s start (!pos - start) in
    let has_frac = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') repr in
    if has_frac then
      match float_of_string_opt repr with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt repr with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt repr with
        | Some f -> Float f
        | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Assoc (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_failure msg -> Error msg

(* ------------------------------------------------------------------ *)

let member k = function
  | Assoc fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
