(** Prometheus-style text exposition — the payload of the [METRICS]
    protocol verb and the feed of [obda top].

    A render turns the caller's stats rows into counter/gauge samples
    (numbers pass through; [yes]/[no] become 1/0; ["lo-hi"] revision spans
    split into [_lo]/[_hi] samples; non-numeric placeholders are skipped)
    and appends every histogram in the {!Histogram} registry as cumulative
    [_bucket{le="..."}] lines with [_sum] and [_count].  Sample names are
    the row/histogram names with non-alphanumerics replaced by ['_'] and
    an [obda_] prefix.  Latency histograms record seconds. *)

val render : (string * string) list -> string
(** Render the exposition text ([# TYPE] comments plus samples, one per
    line, trailing newline).  Guarded by the [obs.export] fault site: an
    armed fault raises the injected [Obda_error] before anything is
    rendered. *)

val sanitize : string -> string
(** The exposition name of a row or histogram ([obda_] prefix, ['_'] for
    anything outside [[A-Za-z0-9_]]). *)
