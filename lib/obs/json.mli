(** A minimal JSON value type with a printer and a parser.

    The telemetry sinks emit JSON-lines traces and the test-suite/corpus
    runner round-trip them; depending on an external JSON library for that
    would be the only third-party dependency of the observability layer, so
    this ~150-line implementation keeps [Obda_obs] self-contained.  It
    supports the full JSON grammar except that numbers are split into [Int]
    and [Float] on parsing (a number parses as [Int] when it is written
    without fraction or exponent and fits in an OCaml [int]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact single-line rendering with full string escaping; floats are
    printed with ["%.17g"] so they round-trip, except non-finite values,
    which JSON cannot represent and which are rendered as [null]. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error. *)

(** {2 Accessors} — small conveniences for tests and tools. *)

val member : string -> t -> t option
(** [member k (Assoc ...)] is the value bound to [k], if any. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
