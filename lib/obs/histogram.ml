(* Fixed log-bucketed histograms: the third telemetry pillar.

   Spans tell you where one request spent its time; counters tell you how
   much total work was done; histograms tell you how latency and size are
   *distributed* under concurrency — the quantity ROADMAP perf items move.

   Design constraints, in order:
   - recording must be lock-free and shareable across domains (the server
     records from every connection worker), so buckets are [int Atomic.t];
   - the disabled path must cost one load and one branch, the same ≤5 ns
     discipline [Obs] and [Fault] already pin in the obs-overhead bench;
   - merging must be exact and associative (bucket-wise integer sums), so
     per-worker and per-connection histograms combine in any order.

   Buckets are logarithmic with ratio 2^(1/4) (~19% relative width): value
   [v] lands in the bucket whose upper bound is the smallest [2^(k/4) >= v].
   The bucket index is computed from [Float.frexp] and three mantissa
   comparisons — no [log] call on the record path. *)

(* Bucket i (0 <= i < buckets - 1) holds values in (2^((i-offset-1)/4),
   2^((i-offset)/4)]; bucket 0 additionally absorbs everything below its
   bound and the last bucket is the +Inf overflow.  offset = 120 puts
   bucket 0's upper bound at 2^-30 (~1 ns when recording seconds) and the
   last finite bound at 2^39.5 (~7.8e11 — flexible enough for seconds or
   bytes). *)
let buckets = 280
let offset = 120

let ratio = Float.pow 2. 0.25

let bucket_upper i =
  if i >= buckets - 1 then Float.infinity
  else Float.pow 2. (float_of_int (i - offset) /. 4.)

(* Mantissa thresholds 2^(-3/4), 2^(-1/2), 2^(-1/4): with [frexp v = (m, e)]
   and m in [0.5, 1), ceil(4 * log2 v) = 4e + s where s is -4 for m = 0.5,
   then -3 / -2 / -1 / 0 per quarter-octave. *)
let m34 = Float.pow 2. (-0.75)
let m12 = Float.pow 2. (-0.5)
let m14 = Float.pow 2. (-0.25)

let bucket_of v =
  if not (v > 0.) then 0 (* <= 0 and NaN clamp low *)
  else begin
    let m, e = Float.frexp v in
    let s =
      if m <= 0.5 then -4
      else if m <= m34 then -3
      else if m <= m12 then -2
      else if m <= m14 then -1
      else 0
    in
    let i = offset + (4 * e) + s in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i
  end

type t = {
  name : string;
  scale : float; (* sum is accumulated in integer units of 1/scale *)
  counts : int Atomic.t array;
  sum : int Atomic.t;
}

(* One process-global flag, read with a plain atomic load: disarmed
   [record] is a load and a branch, exactly like [Fault.hit] with no plan
   armed.  Enabled by the server / bench / CLI, not by library code. *)
let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let recording () = Atomic.get enabled

let create ?(scale = 1e6) name =
  {
    name;
    scale;
    counts = Array.init buckets (fun _ -> Atomic.make 0);
    sum = Atomic.make 0;
  }

let name t = t.name

let record_unconditionally t v =
  ignore (Atomic.fetch_and_add t.counts.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add t.sum (int_of_float ((v *. t.scale) +. 0.5)))

let record t v =
  if Atomic.get enabled then record_unconditionally t v

let merge_into ~into src =
  for i = 0 to buckets - 1 do
    let n = Atomic.get src.counts.(i) in
    if n > 0 then ignore (Atomic.fetch_and_add into.counts.(i) n)
  done;
  let s = Atomic.get src.sum in
  if s <> 0 then ignore (Atomic.fetch_and_add into.sum s)

let reset t =
  for i = 0 to buckets - 1 do
    Atomic.set t.counts.(i) 0
  done;
  Atomic.set t.sum 0

type snapshot = {
  sname : string;
  scounts : int array;
  total : int;
  sum : float; (* in recorded-value units *)
}

let snapshot t =
  let scounts = Array.map Atomic.get t.counts in
  {
    sname = t.name;
    scounts;
    total = Array.fold_left ( + ) 0 scounts;
    sum = float_of_int (Atomic.get t.sum) /. t.scale;
  }

(* Smallest value [u] such that at least [ceil (q * total)] recorded values
   are <= u — the upper bound of the bucket holding the rank-[ceil (q *
   total)] smallest recorded value.  Any exact recorded value at that rank
   lies in (u / ratio, u], which is the "one bucket's relative error"
   contract the serve-load harness asserts. *)
let quantile s q =
  if s.total = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int s.total))) in
    let rec find i acc =
      if i >= buckets - 1 then bucket_upper i
      else
        let acc = acc + s.scounts.(i) in
        if acc >= rank then bucket_upper i else find (i + 1) acc
    in
    find 0 0
  end

(* ------------------------------------------------------------------ *)
(* The process-wide named-histogram registry: what METRICS exposes. *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let registered ?scale name =
  Mutex.lock registry_mutex;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
      let t = create ?scale name in
      Hashtbl.add registry name t;
      t
  in
  Mutex.unlock registry_mutex;
  t

let snapshots () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.map snapshot all
  |> List.sort (fun a b -> compare a.sname b.sname)

(* ------------------------------------------------------------------ *)
(* Domain-local shards.

   Pool workers run with [observe:false] because the Obs sink is a single
   mutex-guarded slot — but histograms are their own pillar: a worker
   records into a private per-domain shard (uncontended atomics), and the
   shards merge into the registry at the Pool barrier, where [Pool.run]
   calls the hook below on every participating domain. *)

let shards : (string, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let local ?scale name =
  let tbl = Domain.DLS.get shards in
  match Hashtbl.find_opt tbl name with
  | Some t -> t
  | None ->
    (* make sure the merge target exists with the same scale *)
    ignore (registered ?scale name);
    let t = create ?scale name in
    Hashtbl.add tbl name t;
    t

let drain_local () =
  let tbl = Domain.DLS.get shards in
  Hashtbl.iter
    (fun name shard ->
      merge_into ~into:(registered ~scale:shard.scale name) shard;
      reset shard)
    tbl

let () = Obda_runtime.Pool.on_barrier drain_local
