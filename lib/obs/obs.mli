(** Pipeline telemetry: hierarchical spans, counters/gauges, pluggable sinks.

    The pipeline (chase, the six rewriters, both NDL evaluators) reports
    what it does through this module: {!with_span} brackets a stage and
    records wall time, nesting and outcome; {!incr}/{!count} accumulate
    event counts (clauses emitted, tuples derived, chase elements
    materialised); {!set_int}/{!set_float} record final quantities of a run
    (program size/width/depth, answer counts, budget headroom).

    Telemetry is {b disabled by default}: with no sink installed every
    entry point is a single load-and-branch on {!val-enabled}, so the hot
    loops pay one predictable branch per event and nothing allocates.  A
    sink is installed per request ({!install}/{!uninstall}, or the
    {!collecting} bracket); the state is a process-wide single slot, like
    the similarly-scoped loggers of the OCaml ecosystem — concurrent
    requests would need one process (or domain) each.

    Metric names are dot-separated, lowercase, stable — they are part of
    the CLI surface (see README "Observability" for the full table and the
    paper quantity each corresponds to, e.g. [ndl.size] ↔ the size columns
    of Table 1). *)

type value = Int of int | Float of float

type outcome =
  | Completed
  | Failed of string
      (** the [Obda_runtime.Error.class_name] of the raised [Obda_error]
          (["parse"], ["not-applicable"], ["budget"], ["inconsistent"],
          ["internal"]), or ["exception"] for a foreign exception *)

type span = {
  id : int;  (** unique per installed sink, in span-opening order *)
  parent : int option;
  depth : int;  (** nesting level; 0 for a root span *)
  name : string;
  attrs : (string * string) list;
  start : float;  (** seconds since the sink was installed *)
  duration : float;  (** seconds *)
  outcome : outcome;
}

type kind = Counter | Gauge

type sink = {
  on_span : span -> unit;  (** called when a span closes *)
  on_metric : kind -> string -> value -> unit;
      (** called once per metric with its final value, at {!flush} time *)
  on_flush : unit -> unit;
}

(** {1 Recording — the instrumented pipeline calls these} *)

val enabled : unit -> bool
(** Whether a sink is installed.  Instrumentation whose event {e payload}
    is costly to compute (e.g. [Ndl.width]) guards on this explicitly; the
    recording functions below already no-op when disabled. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span around it.  The span's
    outcome is [Completed] on normal return and [Failed class] when [f]
    raises (the exception is re-raised).  When disabled this is
    [f ()] after one branch. *)

val incr : string -> unit
(** Add 1 to a counter. *)

val count : string -> int -> unit
(** Add [n] to a counter. *)

val set_int : string -> int -> unit
(** Set a gauge (last write wins — pipeline stages overwrite, so after a
    multi-stage rewriting the gauge describes the final program). *)

val set_float : string -> float -> unit

(** {1 Sink management} *)

val install : sink -> unit
(** Install [sink], making telemetry enabled.  Replaces (without flushing)
    any previously installed sink; use {!uninstall} first to flush. *)

val uninstall : unit -> unit
(** Flush final metric values to the sink and disable telemetry.  No-op
    when disabled. *)

val flush : unit -> unit
(** Push current metric totals to the sink ([on_metric] per metric, then
    [on_flush]) without uninstalling. *)

val counter_value : string -> int
(** Current total of a counter (0 when absent or disabled). *)

val gauge_value : string -> value option

(** {1 Sinks} *)

val null_sink : sink
(** Discards everything — for measuring dispatch overhead. *)

val tee : sink list -> sink

val json_sink : ?spans:bool -> ?metrics:bool -> (string -> unit) -> sink
(** A JSON-lines writer: each completed span and each flushed metric
    becomes one JSON object passed (without trailing newline) to the given
    writer.  Span lines:
    [{"type":"span","id":3,"parent":1,"depth":1,"name":"rewrite.tw",
      "attrs":{...},"start_ms":0.21,"duration_ms":4.75,"outcome":"ok"}]
    (failed spans have ["outcome":"error","error_class":"budget"]).
    Metric lines: [{"type":"metric","kind":"counter","name":"ndl.clauses_emitted","value":42}].
    [spans]/[metrics] (default both [true]) select which events are
    written. *)

(** An in-memory sink: collects completed spans and final metric values
    for programmatic access (the bench harness) and the human [--stats]
    rendering. *)
module Collector : sig
  type t

  val create : unit -> t
  val sink : t -> sink

  val spans : t -> span list
  (** In completion order (a parent closes after its children). *)

  val counter : t -> string -> int
  (** Total of a counter, 0 when absent.  Populated at {!flush}. *)

  val gauge : t -> string -> value option
  val gauge_int : t -> string -> int option
  val gauge_float : t -> string -> float option

  val metrics : t -> (string * kind * value) list
  (** All flushed metrics, sorted by name. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable summary: the span tree (indented by nesting, with
      durations and outcomes) followed by the metrics table. *)
end

val collecting : (unit -> 'a) -> 'a * Collector.t
(** [collecting f] installs a fresh collector, runs [f], flushes, restores
    the previously installed sink (if any), and returns [f]'s result with
    the filled collector.  Events inside the bracket go only to the inner
    collector.  Exceptions from [f] propagate after the sink is restored. *)
