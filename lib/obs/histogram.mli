(** Mergeable log-bucketed latency/size histograms — the third telemetry
    pillar, next to spans and counters.

    A histogram is a fixed array of [2^(1/4)]-ratio log buckets (about 19%
    relative width) plus a running sum.  Recording is lock-free (atomic
    bucket increments), so one histogram can be shared across the server's
    connection domains; merging is an exact bucket-wise integer sum, so it
    is associative and commutative — per-worker shards combine at the
    {!Obda_runtime.Pool} barrier and per-connection histograms combine in
    [Server.stats] in any order with the same result.

    Recording is {b off by default}: {!record} with the global flag clear
    is one atomic load and one branch (the same ≤5 ns discipline the
    obs-overhead bench pins for [Obs] and [Fault]).  The server, the CLI
    serve path and the benches call {!set_enabled}; library code never
    does. *)

type t

val create : ?scale:float -> string -> t
(** A standalone histogram.  [scale] (default 1e6) is the integer
    resolution of the running sum — use [1e9] when recording seconds so
    the sum is exact to the nanosecond, [1.] when recording integer sizes. *)

val name : t -> string

val record : t -> float -> unit
(** Record one value (no-op unless {!set_enabled}).  Non-positive and NaN
    values clamp into the lowest bucket. *)

val set_enabled : bool -> unit
(** Arm or disarm recording process-wide. *)

val recording : unit -> bool

val merge_into : into:t -> t -> unit
(** Add [src]'s buckets and sum into [into] (atomically per bucket; exact). *)

val reset : t -> unit

(** {1 Buckets} *)

val buckets : int
(** Number of buckets, including the [+Inf] overflow bucket. *)

val bucket_of : float -> int

val bucket_upper : int -> float
(** Upper bound of a bucket; [infinity] for the overflow bucket.  A
    recorded value [v] satisfies
    [bucket_upper (bucket_of v) /. ratio < v <= bucket_upper (bucket_of v)]
    (away from the clamped extremes). *)

val ratio : float
(** The bucket ratio [2^(1/4)] — one bucket's relative error. *)

(** {1 Snapshots and quantiles} *)

type snapshot = {
  sname : string;
  scounts : int array;  (** per-bucket counts, length {!buckets} *)
  total : int;
  sum : float;  (** in recorded-value units *)
}

val snapshot : t -> snapshot

val quantile : snapshot -> float -> float
(** [quantile s q] for [q] in [0, 1]: the upper bound of the bucket
    holding the rank-[ceil (q * total)] smallest recorded value — so the
    exact value at that rank lies within one bucket ratio below the
    returned bound.  [0.] on an empty snapshot; monotone in [q]. *)

(** {1 The process-wide registry} *)

val registered : ?scale:float -> string -> t
(** Find or create the named histogram in the process-wide registry — the
    set the METRICS exposition renders. *)

val snapshots : unit -> snapshot list
(** Snapshots of every registered histogram, sorted by name. *)

(** {1 Domain-local shards} *)

val local : ?scale:float -> string -> t
(** The calling domain's private shard for [name] (created on first use,
    along with its {!registered} merge target).  Pool workers record into
    shards without contending on the shared registry histograms. *)

val drain_local : unit -> unit
(** Merge the calling domain's shards into their registry targets and
    reset them.  Registered as a {!Obda_runtime.Pool.on_barrier} hook at
    module-initialisation time, so every [Pool.run] drains automatically. *)
