type t = int

(* The interner is global mutable state shared by every domain that parses
   or prints: the network server hands concurrent connections to worker
   domains, so the string<->id maps are guarded by a mutex.  The hot paths
   of evaluation (compare/equal/hash on the int ids) never touch the
   tables and stay lock-free. *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let names : (int, string) Hashtbl.t = Hashtbl.create 1024
let next = ref 0

let intern s =
  with_lock (fun () ->
      match Hashtbl.find_opt table s with
      | Some i -> i
      | None ->
        let i = !next in
        incr next;
        Hashtbl.add table s i;
        Hashtbl.add names i s;
        i)

let name i = with_lock (fun () -> Hashtbl.find names i)

(* inlined interning: [with_lock] is not reentrant *)
let fresh prefix =
  with_lock (fun () ->
      let rec try_at n =
        let candidate = Printf.sprintf "%s#%d" prefix n in
        if Hashtbl.mem table candidate then try_at (n + 1)
        else begin
          let i = !next in
          incr next;
          Hashtbl.add table candidate i;
          Hashtbl.add names i candidate;
          i
        end
      in
      try_at !next)

let unsafe_of_int i = i
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp ppf i = Format.pp_print_string ppf (name i)
let count () = with_lock (fun () -> !next)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
module Tbl = Hashtbl.Make (Int)
