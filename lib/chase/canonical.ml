open Obda_syntax
open Obda_ontology
open Obda_data
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Obs = Obda_obs.Obs

type element = Ind of Abox.const | Null of Abox.const * Role.t list

let word = function Ind _ -> [] | Null (_, w) -> List.rev w

let compare_element e1 e2 =
  match (e1, e2) with
  | Ind a, Ind b -> Symbol.compare a b
  | Ind _, Null _ -> -1
  | Null _, Ind _ -> 1
  | Null (a, w), Null (b, v) ->
    let c = Symbol.compare a b in
    if c <> 0 then c else List.compare Role.compare w v

let pp_element ppf = function
  | Ind a -> Symbol.pp ppf a
  | Null (a, w) ->
    Format.fprintf ppf "%a%s" Symbol.pp a
      (String.concat ""
         (List.rev_map (fun r -> "." ^ Role.to_string r) w))

type t = {
  tbox : Tbox.t;
  complete : Abox.t;  (* the ABox closed under T over ind(A) *)
  depth : int;
  all_elements : element list;  (* individuals first, then nulls by level *)
  root : Abox.const option;  (* for [of_concept] *)
}

let generate_elements ~budget tbox complete depth =
  let inds = Abox.individuals complete in
  let made a w =
    (* one chase step and one materialised element per null *)
    Fault.hit Fault.chase_null;
    Budget.step budget;
    Budget.grow budget;
    Obs.incr "chase.nulls";
    Null (a, w)
  in
  let starts a =
    Fault.hit Fault.chase_step;
    List.filter_map
      (fun r ->
        if
          Tbox.can_start tbox r
          && Abox.satisfies_concept tbox complete a (Concept.Exists r)
        then Some (made a [ r ])
        else None)
      (Tbox.roles tbox)
  in
  let extend e =
    Fault.hit Fault.chase_step;
    match e with
    | Ind _ -> []
    | Null (a, (last :: _ as w)) ->
      List.filter_map
        (fun r ->
          if Tbox.can_follow tbox last r then Some (made a (r :: w)) else None)
        (Tbox.roles tbox)
    | Null (_, []) -> assert false
  in
  let level0 = List.concat_map starts inds in
  let rec go acc level n =
    if n >= depth || level = [] then List.rev acc
    else
      let next = List.concat_map extend level in
      go (List.rev_append next acc) next (n + 1)
  in
  List.map (fun a -> Ind a) inds @ go (List.rev level0) level0 1

(* the workhorse, shared with [of_concept]: no span, so the many tiny
   auxiliary chases of the tree-witness machinery don't flood a trace *)
let make_unobserved ?(budget = Budget.none) tbox abox ~depth =
  let complete = Abox.complete tbox abox in
  let all_elements = generate_elements ~budget tbox complete depth in
  { tbox; complete; depth; all_elements; root = None }

let make ?budget tbox abox ~depth =
  Obs.with_span "chase.materialise" (fun () ->
      let c = make_unobserved ?budget tbox abox ~depth in
      if Obs.enabled () then begin
        Obs.set_int "chase.elements" (List.length c.all_elements);
        Obs.set_int "chase.depth" depth
      end;
      c)

let concept_root_name = lazy (Symbol.intern "@root")

let of_concept ?budget tbox concept ~depth =
  let a = Lazy.force concept_root_name in
  let abox = Abox.create () in
  (match concept with
  | Concept.Name p -> Abox.add_unary abox p a
  | Concept.Exists r ->
    (* assert the normalisation name A_ρ when available, otherwise a fresh
       successor — both make [a] satisfy ∃ρ *)
    (match Tbox.exists_name_opt tbox r with
    | Some ar -> Abox.add_unary abox ar a
    | None -> Abox.add_role abox r a (Symbol.intern "@aux"))
  | Concept.Top -> Abox.add_unary abox (Symbol.intern "@top_marker") a);
  let c = make_unobserved ?budget tbox abox ~depth in
  { c with root = Some a }

let root_of_concept_model t =
  match t.root with
  | Some a -> Ind a
  | None -> invalid_arg "Canonical.root_of_concept_model"

let tbox t = t.tbox
let elements t = t.all_elements
let num_elements t = List.length t.all_elements

let individuals t =
  List.filter (function Ind _ -> true | Null _ -> false) t.all_elements

let unary_holds t a = function
  | Ind c -> Abox.satisfies_concept t.tbox t.complete c (Concept.Name a)
  | Null (_, last :: _) -> Tbox.null_satisfies t.tbox last a
  | Null (_, []) -> assert false

(* C ⊨ P(u,v) iff (i) both individuals and T,A ⊨ P(a,b); (ii) u = v and
   T ⊨ P(x,x); (iii) T ⊨ ρ ⊑ P with v = u·ρ or u = v·ρ⁻. *)
let binary_holds t p u v =
  let rho = Role.make p in
  let refl = Tbox.reflexive t.tbox rho in
  match (u, v) with
  | Ind a, Ind b ->
    (a = b && refl)
    || List.exists
         (fun sub -> Abox.mem_role t.complete sub a b)
         (Tbox.subroles_of t.tbox rho)
    || Abox.mem_role t.complete rho a b
  | _ when compare_element u v = 0 -> refl
  | Ind a, Null (b, [ r ]) -> a = b && Tbox.edge_satisfies t.tbox r rho
  | Null (b, [ r ]), Ind a -> a = b && Tbox.edge_satisfies t.tbox r (Role.inv rho)
  | Null (a, w), Null (b, r :: w') when a = b && List.compare Role.compare w' w = 0
    ->
    (* v = u·r *)
    Tbox.edge_satisfies t.tbox r rho
  | Null (a, r :: w), Null (b, w') when a = b && List.compare Role.compare w w' = 0
    ->
    (* u = v·r,  so P(u,v) iff r ⊑ P⁻ *)
    Tbox.edge_satisfies t.tbox r (Role.inv rho)
  | _ -> false

let parent_of = function
  | Null (a, [ _ ]) -> Some (Ind a)
  | Null (a, _ :: w) -> Some (Null (a, w))
  | Null (_, []) | Ind _ -> None

let child_roles t = function
  | Ind a ->
    if t.depth < 1 then []
    else
      List.filter
        (fun r ->
          Tbox.can_start t.tbox r
          && Abox.satisfies_concept t.tbox t.complete a (Concept.Exists r))
        (Tbox.roles t.tbox)
  | Null (_, (last :: _ as w)) ->
    if List.length w >= t.depth then []
    else List.filter (fun r -> Tbox.can_follow t.tbox last r) (Tbox.roles t.tbox)
  | Null (_, []) -> []

let extend_with u r =
  match u with
  | Ind a -> Null (a, [ r ])
  | Null (a, w) -> Null (a, r :: w)

(* all v with C ⊨ ρ(u,v), ρ possibly inverse *)
let role_successors t rho u =
  let refl_part = if Tbox.reflexive t.tbox rho then [ u ] else [] in
  let abox_part =
    match u with
    | Ind a ->
      let direct =
        List.concat_map
          (fun sub -> Abox.role_successors t.complete sub a)
          (Tbox.subroles_of t.tbox rho)
      in
      List.map (fun b -> Ind b) (List.sort_uniq Symbol.compare direct)
    | Null _ -> []
  in
  let children =
    List.filter_map
      (fun r ->
        if Tbox.edge_satisfies t.tbox r rho then Some (extend_with u r)
        else None)
      (child_roles t u)
  in
  let parent =
    match u with
    | Null (_, r :: _) ->
      if Tbox.edge_satisfies t.tbox r (Role.inv rho) then
        match parent_of u with Some p -> [ p ] | None -> []
      else []
    | Null (_, []) | Ind _ -> []
  in
  List.sort_uniq compare_element (refl_part @ abox_part @ children @ parent)
