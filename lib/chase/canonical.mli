(** The canonical model C_{T,A} (Section 2), materialised to a bounded depth
    of labelled nulls.

    Elements are the individuals of the ABox and the labelled nulls
    a·ρ₁…ρₙ with ρ₁…ρₙ ∈ W_T and T,A ⊨ ∃y ρ₁(a,y).  Depth [d] keeps the
    nulls with n ≤ d, which suffices for answering CQs with at most d
    variables. *)

open Obda_syntax
open Obda_ontology
open Obda_data

type element =
  | Ind of Abox.const
  | Null of Abox.const * Role.t list
      (** [Null (a, w)] is a·ρ₁…ρₙ with [w = [ρₙ; …; ρ₁]] (reversed). *)

val word : element -> Role.t list
(** The word ρ₁…ρₙ in reading order ([] for individuals). *)

val compare_element : element -> element -> int
val pp_element : Format.formatter -> element -> unit

type t

val make : ?budget:Obda_runtime.Budget.t -> Tbox.t -> Abox.t -> depth:int -> t
(** Materialisation counts one budget step (and one unit of output size) per
    labelled null, so a deep chase under a step or size budget raises
    [Budget_exhausted] instead of exhausting memory. *)

val of_concept :
  ?budget:Obda_runtime.Budget.t -> Tbox.t -> Concept.t -> depth:int -> t
(** [of_concept T τ ~depth] is C_{T,{A(a)}} for a single fresh individual
    asserted to satisfy τ (τ a concept name or ∃ρ). *)

val root_of_concept_model : t -> element
(** The individual [a] of [of_concept]. *)

val tbox : t -> Tbox.t
val elements : t -> element list
val num_elements : t -> int
val individuals : t -> element list

val unary_holds : t -> Symbol.t -> element -> bool
(** C_{T,A} ⊨ A(u). *)

val binary_holds : t -> Symbol.t -> element -> element -> bool
(** C_{T,A} ⊨ P(u,v). *)

val role_successors : t -> Role.t -> element -> element list
(** All v with C ⊨ ρ(u,v) (within the materialised depth). *)
