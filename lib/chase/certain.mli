(** Certain answers by homomorphism search into the canonical model — the
    ground-truth OMQ answering oracle used by tests, and the
    [T,{A(a)} ⊨ q] decision procedure used by the Tw-rewriting.

    Intended for small instances; the benchmarks use the NDL engine. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data

type assignment = (Cq.var * Canonical.element) list

val find_hom :
  ?pin:(Cq.var * Canonical.element) list ->
  ?admissible:(Cq.var -> Canonical.element -> bool) ->
  Canonical.t ->
  Cq.t ->
  assignment option
(** A homomorphism from the CQ into the canonical model mapping answer
    variables to individuals, each pinned variable to its given element, and
    every variable to an [admissible] element. *)

val all_answer_tuples :
  ?budget:Obda_runtime.Budget.t -> Canonical.t -> Cq.t -> Symbol.t list list
(** All certain answers (tuples over ind(A)), sorted and deduplicated. *)

val answers :
  ?budget:Obda_runtime.Budget.t ->
  ?depth:int ->
  Tbox.t ->
  Abox.t ->
  Cq.t ->
  Symbol.t list list
(** [answers T A q]: the certain answers to the OMQ (T,q) over A, computed on
    the canonical model materialised to depth
    min(depth(T), |var(q)| + |R_T|), which is sufficient; [depth] may lower
    it when a smaller bound is known.  For Boolean q the result is [[[]]] for
    "yes" and [[]] for "no". *)

val boolean :
  ?budget:Obda_runtime.Budget.t -> ?depth:int -> Tbox.t -> Abox.t -> Cq.t -> bool
(** T,A ⊨ q for Boolean q (raises [Invalid_argument] on non-Boolean q). *)

val certain : Tbox.t -> Abox.t -> Cq.t -> Symbol.t list -> bool
(** Whether the tuple is a certain answer. *)

val entailed_from_concept : Tbox.t -> Concept.t -> Cq.t -> bool
(** [entailed_from_concept T τ q] iff T, {τ(a)} ⊨ q for Boolean q — used for
    the [G_q0 ← A(x)] clauses of the Tw-rewriting (Section 3.4). *)
