open Obda_syntax
open Obda_cq
module Budget = Obda_runtime.Budget

type assignment = (Cq.var * Canonical.element) list

(* Static variable order: repeatedly pick the unordered variable with the
   most already-ordered Gaifman neighbours (ties: answer variables first). *)
let variable_order q =
  let g = Cq.gaifman q in
  let vars = Array.of_list (Cq.vars q) in
  let n = Array.length vars in
  let ordered = Array.make n false in
  let order = ref [] in
  for _ = 1 to n do
    let best = ref (-1) and best_score = ref (-1) in
    for i = 0 to n - 1 do
      if not ordered.(i) then begin
        let nbrs = Ugraph.neighbours g i in
        let s = 2 * List.length (List.filter (fun j -> ordered.(j)) nbrs) in
        let s = if Cq.is_answer_var q vars.(i) then s + 1 else s in
        if s > !best_score then begin
          best := i;
          best_score := s
        end
      end
    done;
    ordered.(!best) <- true;
    order := vars.(!best) :: !order
  done;
  Array.of_list (List.rev !order)

let search ?(budget = Budget.none) ?(pin = []) ?(admissible = fun _ _ -> true)
    canon q ~on_solution =
  let order = variable_order q in
  let n = Array.length order in
  let assignment : (Cq.var, Canonical.element) Hashtbl.t = Hashtbl.create 16 in
  let assigned v = Hashtbl.find_opt assignment v in
  let ok_locally v e =
    (match List.assoc_opt v pin with
    | Some p -> Canonical.compare_element p e = 0
    | None -> true)
    && admissible v e
    && (match e with
       | Canonical.Ind _ -> true
       | Canonical.Null _ -> not (Cq.is_answer_var q v))
    && List.for_all (fun a -> Canonical.unary_holds canon a e) (Cq.unary_atoms_of q v)
    && List.for_all (fun p -> Canonical.binary_holds canon p e e) (Cq.loop_atoms_of q v)
  in
  let ok_with_assigned v e =
    List.for_all
      (fun atom ->
        match atom with
        | Cq.Unary _ -> true
        | Cq.Binary (p, y, z) ->
          if y = v && z = v then true (* checked in ok_locally *)
          else if y = v then (
            match assigned z with
            | Some ez -> Canonical.binary_holds canon p e ez
            | None -> true)
          else if z = v then (
            match assigned y with
            | Some ey -> Canonical.binary_holds canon p ey e
            | None -> true)
          else true)
      (Cq.atoms q)
  in
  let candidates v =
    (* use a binary atom linking v to an assigned variable if possible *)
    let linked =
      List.find_map
        (fun atom ->
          match atom with
          | Cq.Binary (p, y, z) when y = v && z <> v -> (
            match assigned z with
            | Some ez ->
              Some (Canonical.role_successors canon (Role.inv (Role.make p)) ez)
            | None -> None)
          | Cq.Binary (p, y, z) when z = v && y <> v -> (
            match assigned y with
            | Some ey -> Some (Canonical.role_successors canon (Role.make p) ey)
            | None -> None)
          | Cq.Binary _ | Cq.Unary _ -> None)
        (Cq.atoms q)
    in
    match linked with
    | Some cands -> cands
    | None ->
      if Cq.is_answer_var q v then Canonical.individuals canon
      else Canonical.elements canon
  in
  let stop = ref false in
  let rec go i =
    if !stop then ()
    else if i = n then on_solution assignment stop
    else begin
      let v = order.(i) in
      List.iter
        (fun e ->
          Budget.step budget;
          if (not !stop) && ok_locally v e && ok_with_assigned v e then begin
            Hashtbl.replace assignment v e;
            go (i + 1);
            Hashtbl.remove assignment v
          end)
        (candidates v)
    end
  in
  go 0

let find_hom ?pin ?admissible canon q =
  let result = ref None in
  search ?pin ?admissible canon q ~on_solution:(fun assignment stop ->
      result :=
        Some (Hashtbl.fold (fun v e acc -> (v, e) :: acc) assignment []);
      stop := true);
  !result

let all_answer_tuples ?budget canon q =
  let tuples = Hashtbl.create 16 in
  search ?budget canon q ~on_solution:(fun assignment _stop ->
      let tuple =
        List.map
          (fun x ->
            match Hashtbl.find assignment x with
            | Canonical.Ind c -> c
            | Canonical.Null _ -> assert false)
          (Cq.answer_vars q)
      in
      Hashtbl.replace tuples tuple ());
  Hashtbl.fold (fun t () acc -> t :: acc) tuples []
  |> List.sort (List.compare Symbol.compare)

(* A sufficient materialisation depth: components anchored at an individual
   stay within |var(q)| of it; a fully-anonymous component lies in the
   subtree below its shallowest image element w, and that subtree only
   depends on the last role of w, so the hom can be translated below the
   shallowest realisable word with that tail — of length ≤ |R_T|.  For
   finite-depth ontologies the full anonymous part is itself a cap. *)
let default_depth tbox q =
  let base =
    List.length (Cq.vars q) + List.length (Obda_ontology.Tbox.roles tbox)
  in
  match Obda_ontology.Tbox.depth tbox with
  | Obda_ontology.Tbox.Finite d -> min d base
  | Obda_ontology.Tbox.Infinite -> base

let answers ?budget ?depth tbox abox q =
  Obda_obs.Obs.with_span "chase.certain" (fun () ->
      let depth =
        match depth with Some d -> d | None -> default_depth tbox q
      in
      let canon = Canonical.make ?budget tbox abox ~depth in
      all_answer_tuples ?budget canon q)

let boolean ?budget ?depth tbox abox q =
  if not (Cq.is_boolean q) then invalid_arg "Certain.boolean: non-Boolean CQ";
  answers ?budget ?depth tbox abox q <> []

let certain tbox abox q tuple = List.mem tuple (answers tbox abox q)

let entailed_from_concept tbox concept q =
  let depth = default_depth tbox q in
  let canon = Canonical.of_concept tbox concept ~depth in
  match find_hom canon q with Some _ -> true | None -> false
