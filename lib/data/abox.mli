(** Data instances (ABoxes): finite sets of unary and binary ground atoms,
    with indexes for evaluation. *)

open Obda_syntax
open Obda_ontology

type const = Symbol.t

type fact =
  | Concept_assertion of Symbol.t * const  (** A(a) *)
  | Role_assertion of Symbol.t * const * const  (** P(a,b) *)

val pp_fact : Format.formatter -> fact -> unit

type t

val create : unit -> t
val copy : t -> t
val of_facts : fact list -> t
val to_facts : t -> fact list
val add_unary : t -> Symbol.t -> const -> unit
val add_binary : t -> Symbol.t -> const -> const -> unit

val add_role : t -> Role.t -> const -> const -> unit
(** [add_role a ρ c d] adds P(c,d) if ρ = P and P(d,c) if ρ = P⁻. *)

val add_fact : t -> fact -> unit

val remove_unary : t -> Symbol.t -> const -> bool
(** [true] iff the atom was present (and is now gone). *)

val remove_binary : t -> Symbol.t -> const -> const -> bool
val remove_fact : t -> fact -> bool

val revision : t -> int
(** A counter bumped on every effective mutation (add or remove of an atom
    not already in / still in the instance).  Two observations of the same
    revision on the same instance guarantee the data has not changed in
    between — the change-detection hook behind cached consistency checks
    and the query service's dirty tracking. *)

val snapshot : t -> t
(** An O(1) copy-on-write snapshot: the result shares the live instance's
    tables and carries its current {!revision}.  The first effective
    mutation on either side — original or snapshot — copies the shared
    tables before writing, so a snapshot is immutable for as long as its
    holder does not mutate it, no matter what happens to the original.
    This is the isolation mechanism behind the query service: every
    [ANSWER]/[BATCH] evaluates against a frozen revision while concurrent
    writers advance the live store to new ones.  Snapshots of snapshots
    are equally O(1).

    Mutation and snapshotting on the same instance must still be
    serialised externally (the service session holds its lock around
    both); the guarantee is that a snapshot taken under that discipline
    can then be {e read} from any number of domains with no further
    synchronisation, because the tables it points at are never written
    again. *)

val mem_unary : t -> Symbol.t -> const -> bool
val mem_binary : t -> Symbol.t -> const -> const -> bool
val mem_role : t -> Role.t -> const -> const -> bool
val mem_fact : t -> fact -> bool

val individuals : t -> const list
(** ind(A), sorted. *)

val num_individuals : t -> int
val num_atoms : t -> int
val unary_preds : t -> Symbol.t list
val binary_preds : t -> Symbol.t list
val unary_members : t -> Symbol.t -> const list
val binary_members : t -> Symbol.t -> (const * const) list

val successors : t -> Symbol.t -> const -> const list
(** [{b | P(a,b) ∈ A}]. *)

val predecessors : t -> Symbol.t -> const -> const list

val role_successors : t -> Role.t -> const -> const list
(** ρ-successors, resolving inverses. *)

val pp : Format.formatter -> t -> unit

(** {1 Binary serialization}

    A self-contained canonical binary encoding, used by the service
    layer's checkpoint files.  Symbols are written as a length-prefixed
    string dictionary (interned symbols are process-local and must never
    cross a process boundary raw), atoms as dictionary indices; predicates
    and members are sorted, so equal instances — whatever their insertion
    history — serialize to identical bytes. *)

exception Corrupt of string
(** Raised by {!deserialize} on a malformed blob: bad magic, unsupported
    version, truncation, out-of-range dictionary index or trailing
    garbage. *)

val serialize : t -> string
(** The instance as a versioned binary blob (magic ["OBAX"], format
    version byte, dictionary, unary then binary relations).  The
    {!revision} counter is {e not} encoded: a {!deserialize}d instance is
    a fresh store whose revision counts its own insertions. *)

val deserialize : string -> t
(** Inverse of {!serialize} up to revision history.  Raises {!Corrupt} on
    malformed input. *)

(** {1 Interaction with an ontology} *)

val satisfies_concept : Tbox.t -> t -> const -> Concept.t -> bool
(** [satisfies_concept T A a τ] iff T,A ⊨ τ(a) — ABox-level instance check. *)

val complete : Tbox.t -> t -> t
(** The complete (w.r.t. the TBox) extension of the instance: all entailed
    ground atoms over ind(A) whose predicates appear in the TBox or the
    instance are added (including the normalisation predicates A_ρ). *)

val is_complete : Tbox.t -> t -> bool

val consistent : Tbox.t -> t -> bool
(** Whether (T, A) has a model, i.e. no disjointness or irreflexivity axiom
    is violated. *)
