open Obda_syntax
open Obda_ontology

type const = Symbol.t

type fact =
  | Concept_assertion of Symbol.t * const
  | Role_assertion of Symbol.t * const * const

let pp_fact ppf = function
  | Concept_assertion (a, c) -> Format.fprintf ppf "%a(%a)" Symbol.pp a Symbol.pp c
  | Role_assertion (p, c, d) ->
    Format.fprintf ppf "%a(%a,%a)" Symbol.pp p Symbol.pp c Symbol.pp d

(* Per-predicate storage.  Unary: set of constants.  Binary: set of pairs
   plus forward and backward adjacency. *)
type unary_rel = unit Symbol.Tbl.t

type binary_rel = {
  pairs : (const * const, unit) Hashtbl.t;
  fwd : const list Symbol.Tbl.t;
  bwd : const list Symbol.Tbl.t;
}

type t = {
  mutable unary : unary_rel Symbol.Tbl.t;
  mutable binary : binary_rel Symbol.Tbl.t;
  mutable inds : unit Symbol.Tbl.t;
  mutable atom_count : int;
  mutable revision : int;
      (* bumped on every effective mutation: change detection for consumers
         that cache work derived from the instance (consistency checks,
         materialisations) *)
  mutable shared : bool;
      (* the tables are shared with at least one [snapshot]; the next
         mutation must [unshare] first (copy-on-write) *)
}

let create () =
  {
    unary = Symbol.Tbl.create 16;
    binary = Symbol.Tbl.create 16;
    inds = Symbol.Tbl.create 64;
    atom_count = 0;
    revision = 0;
    shared = false;
  }

let revision a = a.revision

(* O(1) freeze: both records now point at the same tables, and both carry
   [shared = true], so whichever side is mutated first pays the copy. *)
let snapshot a =
  a.shared <- true;
  {
    unary = a.unary;
    binary = a.binary;
    inds = a.inds;
    atom_count = a.atom_count;
    revision = a.revision;
    shared = true;
  }

let copy_binary_rel rel =
  {
    pairs = Hashtbl.copy rel.pairs;
    fwd = Symbol.Tbl.copy rel.fwd;
    bwd = Symbol.Tbl.copy rel.bwd;
  }

(* First mutation after a [snapshot]: replace the shared tables with private
   copies.  Two levels deep — the outer per-predicate tables and the inner
   relation tables — but not the adjacency lists, which are immutable. *)
let unshare a =
  if a.shared then begin
    let unary = Symbol.Tbl.create (max 16 (Symbol.Tbl.length a.unary)) in
    Symbol.Tbl.iter
      (fun p rel -> Symbol.Tbl.add unary p (Symbol.Tbl.copy rel))
      a.unary;
    let binary = Symbol.Tbl.create (max 16 (Symbol.Tbl.length a.binary)) in
    Symbol.Tbl.iter
      (fun p rel -> Symbol.Tbl.add binary p (copy_binary_rel rel))
      a.binary;
    a.unary <- unary;
    a.binary <- binary;
    a.inds <- Symbol.Tbl.copy a.inds;
    a.shared <- false
  end

let note_ind a c = if not (Symbol.Tbl.mem a.inds c) then Symbol.Tbl.add a.inds c ()

(* Every mutator tests for effectiveness on the (possibly shared) tables
   first — a no-op add or remove must not pay the copy — and only then
   unshares and re-resolves the relation from the private tables. *)

let add_unary a p c =
  let present =
    match Symbol.Tbl.find_opt a.unary p with
    | Some rel -> Symbol.Tbl.mem rel c
    | None -> false
  in
  if not present then begin
    unshare a;
    let rel =
      match Symbol.Tbl.find_opt a.unary p with
      | Some r -> r
      | None ->
        let r = Symbol.Tbl.create 64 in
        Symbol.Tbl.add a.unary p r;
        r
    in
    Symbol.Tbl.add rel c ();
    a.atom_count <- a.atom_count + 1;
    a.revision <- a.revision + 1;
    note_ind a c
  end

let add_binary a p c d =
  let present =
    match Symbol.Tbl.find_opt a.binary p with
    | Some rel -> Hashtbl.mem rel.pairs (c, d)
    | None -> false
  in
  if not present then begin
    unshare a;
    let rel =
      match Symbol.Tbl.find_opt a.binary p with
      | Some r -> r
      | None ->
        let r =
          {
            pairs = Hashtbl.create 64;
            fwd = Symbol.Tbl.create 64;
            bwd = Symbol.Tbl.create 64;
          }
        in
        Symbol.Tbl.add a.binary p r;
        r
    in
    Hashtbl.add rel.pairs (c, d) ();
    let push tbl k v =
      let cur = Option.value ~default:[] (Symbol.Tbl.find_opt tbl k) in
      Symbol.Tbl.replace tbl k (v :: cur)
    in
    push rel.fwd c d;
    push rel.bwd d c;
    a.atom_count <- a.atom_count + 1;
    a.revision <- a.revision + 1;
    note_ind a c;
    note_ind a d
  end

let add_role a (r : Role.t) c d =
  if Role.is_inverse r then add_binary a r.Role.base d c
  else add_binary a r.Role.base c d

(* Removal is rare (interactive retraction), so recomputing the individual
   set from scratch keeps the common read paths simple. *)
let recompute_inds a =
  Symbol.Tbl.reset a.inds;
  Symbol.Tbl.iter
    (fun _ rel -> Symbol.Tbl.iter (fun c () -> note_ind a c) rel)
    a.unary;
  Symbol.Tbl.iter
    (fun _ rel ->
      Hashtbl.iter
        (fun (c, d) () ->
          note_ind a c;
          note_ind a d)
        rel.pairs)
    a.binary

let remove_unary a p c =
  match Symbol.Tbl.find_opt a.unary p with
  | Some rel when Symbol.Tbl.mem rel c ->
    unshare a;
    let rel = Option.get (Symbol.Tbl.find_opt a.unary p) in
    Symbol.Tbl.remove rel c;
    a.atom_count <- a.atom_count - 1;
    a.revision <- a.revision + 1;
    recompute_inds a;
    true
  | _ -> false

let remove_binary a p c d =
  match Symbol.Tbl.find_opt a.binary p with
  | Some rel when Hashtbl.mem rel.pairs (c, d) ->
    unshare a;
    let rel = Option.get (Symbol.Tbl.find_opt a.binary p) in
    Hashtbl.remove rel.pairs (c, d);
    let drop tbl k v =
      let cur = Option.value ~default:[] (Symbol.Tbl.find_opt tbl k) in
      Symbol.Tbl.replace tbl k (List.filter (fun x -> not (Symbol.equal x v)) cur)
    in
    drop rel.fwd c d;
    drop rel.bwd d c;
    a.atom_count <- a.atom_count - 1;
    a.revision <- a.revision + 1;
    recompute_inds a;
    true
  | _ -> false

let add_fact a = function
  | Concept_assertion (p, c) -> add_unary a p c
  | Role_assertion (p, c, d) -> add_binary a p c d

let remove_fact a = function
  | Concept_assertion (p, c) -> remove_unary a p c
  | Role_assertion (p, c, d) -> remove_binary a p c d

let mem_unary a p c =
  match Symbol.Tbl.find_opt a.unary p with
  | Some rel -> Symbol.Tbl.mem rel c
  | None -> false

let mem_binary a p c d =
  match Symbol.Tbl.find_opt a.binary p with
  | Some rel -> Hashtbl.mem rel.pairs (c, d)
  | None -> false

let mem_role a (r : Role.t) c d =
  if Role.is_inverse r then mem_binary a r.Role.base d c
  else mem_binary a r.Role.base c d

let mem_fact a = function
  | Concept_assertion (p, c) -> mem_unary a p c
  | Role_assertion (p, c, d) -> mem_binary a p c d

let individuals a =
  Symbol.Tbl.fold (fun c () acc -> c :: acc) a.inds []
  |> List.sort Symbol.compare

let num_individuals a = Symbol.Tbl.length a.inds
let num_atoms a = a.atom_count

let unary_preds a =
  Symbol.Tbl.fold (fun p _ acc -> p :: acc) a.unary [] |> List.sort Symbol.compare

let binary_preds a =
  Symbol.Tbl.fold (fun p _ acc -> p :: acc) a.binary []
  |> List.sort Symbol.compare

let unary_members a p =
  match Symbol.Tbl.find_opt a.unary p with
  | Some rel -> Symbol.Tbl.fold (fun c () acc -> c :: acc) rel []
  | None -> []

let binary_members a p =
  match Symbol.Tbl.find_opt a.binary p with
  | Some rel -> Hashtbl.fold (fun pr () acc -> pr :: acc) rel.pairs []
  | None -> []

let successors a p c =
  match Symbol.Tbl.find_opt a.binary p with
  | Some rel -> Option.value ~default:[] (Symbol.Tbl.find_opt rel.fwd c)
  | None -> []

let predecessors a p c =
  match Symbol.Tbl.find_opt a.binary p with
  | Some rel -> Option.value ~default:[] (Symbol.Tbl.find_opt rel.bwd c)
  | None -> []

let role_successors a (r : Role.t) c =
  if Role.is_inverse r then predecessors a r.Role.base c
  else successors a r.Role.base c

let to_facts a =
  let unary =
    Symbol.Tbl.fold
      (fun p rel acc ->
        Symbol.Tbl.fold (fun c () acc -> Concept_assertion (p, c) :: acc) rel acc)
      a.unary []
  in
  Symbol.Tbl.fold
    (fun p rel acc ->
      Hashtbl.fold
        (fun (c, d) () acc -> Role_assertion (p, c, d) :: acc)
        rel.pairs acc)
    a.binary unary

let of_facts facts =
  let a = create () in
  List.iter
    (function
      | Concept_assertion (p, c) -> add_unary a p c
      | Role_assertion (p, c, d) -> add_binary a p c d)
    facts;
  a

let copy a = of_facts (to_facts a)

let pp ppf a =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    pp_fact ppf (to_facts a)

(* ------------------------------------------------------------------ *)
(* Binary serialization.

   Symbols are process-local interned integers, so the wire format carries
   its own dictionary: every symbol used by the instance is written once as
   a length-prefixed string, and atoms reference dictionary indices.  The
   output is canonical — predicates and members are sorted — so equal
   instances serialize to equal bytes regardless of insertion order.
   [Marshal] would be both unsafe (symbols do not survive a process
   boundary) and non-canonical. *)

let magic = "OBAX"
let format_version = 1

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let serialize a =
  let unary =
    List.map
      (fun p -> (p, List.sort Symbol.compare (unary_members a p)))
      (unary_preds a)
  in
  let binary =
    List.map
      (fun p -> (p, List.sort compare (binary_members a p)))
      (binary_preds a)
  in
  (* dictionary in first-use order over the sorted atom stream *)
  let index = Hashtbl.create 64 in
  let dict_rev = ref [] in
  let intern s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length index in
      Hashtbl.add index s i;
      dict_rev := s :: !dict_rev;
      i
  in
  List.iter
    (fun (p, cs) ->
      ignore (intern p);
      List.iter (fun c -> ignore (intern c)) cs)
    unary;
  List.iter
    (fun (p, pairs) ->
      ignore (intern p);
      List.iter
        (fun (c, d) ->
          ignore (intern c);
          ignore (intern d))
        pairs)
    binary;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr format_version);
  put_u32 buf (Hashtbl.length index);
  List.iter
    (fun s ->
      let name = Symbol.name s in
      put_u32 buf (String.length name);
      Buffer.add_string buf name)
    (List.rev !dict_rev);
  put_u32 buf (List.length unary);
  List.iter
    (fun (p, cs) ->
      put_u32 buf (intern p);
      put_u32 buf (List.length cs);
      List.iter (fun c -> put_u32 buf (intern c)) cs)
    unary;
  put_u32 buf (List.length binary);
  List.iter
    (fun (p, pairs) ->
      put_u32 buf (intern p);
      put_u32 buf (List.length pairs);
      List.iter
        (fun (c, d) ->
          put_u32 buf (intern c);
          put_u32 buf (intern d))
        pairs)
    binary;
  Buffer.contents buf

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let deserialize s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then
      corrupt "truncated ABox blob: %s at offset %d" what !pos
  in
  let get_u32 what =
    need 4 what;
    let b i = Char.code s.[!pos + i] in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    pos := !pos + 4;
    if v < 0 then corrupt "negative length for %s" what;
    v
  in
  let get_str n what =
    need n what;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  need (String.length magic + 1) "header";
  if String.sub s 0 (String.length magic) <> magic then
    corrupt "bad ABox magic (not an OBAX blob)";
  pos := String.length magic;
  let version = Char.code s.[!pos] in
  incr pos;
  if version <> format_version then
    corrupt "unsupported ABox format version %d (expected %d)" version
      format_version;
  let nsyms = get_u32 "dictionary size" in
  let dict =
    Array.init nsyms (fun i ->
        let len = get_u32 "dictionary entry length" in
        Symbol.intern (get_str len (Printf.sprintf "dictionary entry %d" i)))
  in
  let sym what =
    let i = get_u32 what in
    if i >= nsyms then corrupt "dictionary index %d out of range for %s" i what;
    dict.(i)
  in
  let a = create () in
  let n_unary = get_u32 "unary predicate count" in
  for _ = 1 to n_unary do
    let p = sym "unary predicate" in
    let n = get_u32 "unary member count" in
    for _ = 1 to n do
      add_unary a p (sym "unary member")
    done
  done;
  let n_binary = get_u32 "binary predicate count" in
  for _ = 1 to n_binary do
    let p = sym "binary predicate" in
    let n = get_u32 "binary member count" in
    for _ = 1 to n do
      let c = sym "binary member" in
      let d = sym "binary member" in
      add_binary a p c d
    done
  done;
  if !pos <> String.length s then
    corrupt "trailing garbage after ABox blob (offset %d of %d)" !pos
      (String.length s);
  a

(* ------------------------------------------------------------------ *)
(* Ontology interaction *)

(* The basic concepts directly witnessed at [c] by the data. *)
let seed_concepts tbox a c =
  let from_unary =
    List.filter_map
      (fun p -> if mem_unary a p c then Some (Concept.Name p) else None)
      (unary_preds a)
  in
  let from_binary =
    List.concat_map
      (fun p ->
        let out = if successors a p c <> [] then [ Concept.Exists (Role.make p) ] else [] in
        let inc =
          if predecessors a p c <> [] then
            [ Concept.Exists (Role.inv (Role.make p)) ]
          else []
        in
        out @ inc)
      (binary_preds a)
  in
  let from_refl =
    List.concat_map
      (fun r ->
        if Tbox.reflexive tbox r then
          [ Concept.Exists r; Concept.Exists (Role.inv r) ]
        else [])
      (Tbox.roles tbox)
  in
  (Concept.Top :: from_unary) @ from_binary @ from_refl

let satisfies_concept tbox a c tau =
  List.exists
    (fun seed -> Tbox.subsumes tbox ~sub:seed ~sup:tau)
    (seed_concepts tbox a c)

(* T,A ⊨ ρ(c,d)? — ground role membership under the role hierarchy. *)
let satisfies_role tbox a rho c d =
  (c = d && Tbox.reflexive tbox rho)
  || List.exists (fun sub -> mem_role a sub c d) (Tbox.subroles_of tbox rho)
  || mem_role a rho c d

let complete tbox a =
  let out = copy a in
  let inds = individuals a in
  (* unary closure *)
  List.iter
    (fun c ->
      let seeds = seed_concepts tbox a c in
      List.iter
        (fun seed ->
          List.iter
            (fun sup ->
              match sup with
              | Concept.Name p -> add_unary out p c
              | Concept.Top | Concept.Exists _ -> ())
            (Tbox.superconcepts_of tbox seed))
        seeds)
    inds;
  (* binary closure under the role hierarchy *)
  List.iter
    (fun p ->
      List.iter
        (fun (c, d) ->
          List.iter
            (fun sup ->
              if not (Role.equal sup (Role.make p)) then add_role out sup c d)
            (Tbox.superroles_of tbox (Role.make p)))
        (binary_members a p))
    (binary_preds a);
  (* reflexive roles: loops at every individual *)
  List.iter
    (fun r ->
      if Tbox.reflexive tbox r && not (Role.is_inverse r) then
        List.iter (fun c -> add_role out r c c) inds)
    (Tbox.roles tbox);
  out

let is_complete tbox a =
  let completed = complete tbox a in
  num_atoms completed = num_atoms a

let consistent tbox a =
  let inds = individuals a in
  let concept_clash =
    List.exists
      (fun (tau, tau') ->
        List.exists
          (fun c ->
            satisfies_concept tbox a c tau && satisfies_concept tbox a c tau')
          inds)
      (Tbox.disjoint_concept_axioms tbox)
  in
  let role_pairs rho =
    List.concat_map
      (fun sub ->
        let base = sub.Role.base in
        List.map
          (fun (c, d) -> if Role.is_inverse sub then (d, c) else (c, d))
          (binary_members a base))
      (Tbox.subroles_of tbox rho)
  in
  let role_clash =
    List.exists
      (fun (rho, rho') ->
        (* both reflexive is also a clash on any individual *)
        (Tbox.reflexive tbox rho && Tbox.reflexive tbox rho' && inds <> [])
        || List.exists (fun (c, d) -> satisfies_role tbox a rho' c d) (role_pairs rho))
      (Tbox.disjoint_role_axioms tbox)
  in
  let irrefl_clash =
    List.exists
      (fun rho ->
        (Tbox.reflexive tbox rho && inds <> [])
        || List.exists (fun c -> satisfies_role tbox a rho c c) inds)
      (Tbox.irreflexive_axioms tbox)
  in
  not (concept_clash || role_clash || irrefl_clash)
